// Package netdecomp implements a Linial–Saks style randomized network
// decomposition: a partition of the vertices into clusters of weak diameter
// O(log n), colored with O(log n) colors so that no two adjacent clusters
// share a color. This is the substrate of the Ghaffari–Kuhn–Maus (STOC
// 2017) baseline algorithm reproduced in internal/gkm: the paper being
// reproduced (Chang–Li, PODC 2023) improves on exactly this construction.
//
// The construction iterates the Elkin–Neiman exponential-shift
// decomposition: phase c clusters a constant fraction of the remaining
// vertices (mutually non-adjacent clusters, diameter O(log n)) and assigns
// them color c; deleted vertices go to the next phase. After O(log n)
// phases every vertex is clustered with probability 1 - 1/poly(n); any
// stragglers become singleton clusters in fresh colors (each singleton is
// trivially a cluster, at the cost of extra colors — rare).
package netdecomp

import (
	"context"

	"repro/internal/graph"
	"repro/internal/ldd"
	"repro/internal/xrand"
)

// Decomposition is a colored network decomposition.
type Decomposition struct {
	// ClusterOf[v] is a dense cluster id.
	ClusterOf []int32
	// ColorOf[v] is the color of v's cluster, in [0, NumColors).
	ColorOf []int32
	// NumClusters and NumColors are the respective counts.
	NumClusters int
	NumColors   int
	// Rounds is the LOCAL round complexity charged.
	Rounds int
}

// Params configures the decomposition.
type Params struct {
	// Lambda is the per-phase Elkin–Neiman parameter; it controls the
	// cluster diameter bound 8 ln(ñ)/Lambda and the per-phase survival
	// rate e^(-Lambda). Zero means 0.5 (diameter O(log n), half survive).
	Lambda float64
	// NTilde is the known upper bound on n; zero means n.
	NTilde int
	// Seed drives the randomness.
	Seed uint64
	// Workers bounds the worker pool of the per-phase Elkin–Neiman passes
	// (see ldd.ENParams.Workers); <= 0 means GOMAXPROCS. The decomposition
	// is bit-identical for every worker count.
	Workers int
}

// Decompose computes the colored decomposition of g.
func Decompose(g *graph.Graph, p Params) *Decomposition {
	d, _ := DecomposeCtx(context.Background(), g, p)
	return d
}

// DecomposeCtx is Decompose with cancellation: the context is checked once
// per phase (each phase is one Elkin–Neiman pass over the residual graph,
// which itself checks the context at a coarse stride).
func DecomposeCtx(ctx context.Context, g *graph.Graph, p Params) (*Decomposition, error) {
	n := g.N()
	lambda := p.Lambda
	if lambda <= 0 {
		lambda = 0.5
	}
	nTilde := p.NTilde
	if nTilde < n {
		nTilde = n
	}
	d := &Decomposition{
		ClusterOf: make([]int32, n),
		ColorOf:   make([]int32, n),
	}
	for v := range d.ClusterOf {
		d.ClusterOf[v] = -1
		d.ColorOf[v] = -1
	}
	alive := make([]bool, n)
	remaining := 0
	for v := 0; v < n; v++ {
		alive[v] = true
		remaining++
	}
	// O(log n) phases suffice whp; 4*log2(ñ)+8 is a generous cap.
	maxPhases := 8
	for s := nTilde; s > 0; s >>= 1 {
		maxPhases += 4
	}
	rng := xrand.New(p.Seed)
	rounds := 0
	color := int32(0)
	ws := ldd.AcquireWorkspace()
	defer ldd.ReleaseWorkspace(ws)
	for phase := 0; phase < maxPhases && remaining > 0; phase++ {
		en, err := ldd.ElkinNeimanWSCtx(ctx, g, alive, ldd.ENParams{
			Lambda:  lambda,
			NTilde:  nTilde,
			Seed:    rng.Split(uint64(phase) + 0xde0).Uint64(),
			Workers: p.Workers,
		}, ws)
		if err != nil {
			return nil, err
		}
		rounds += en.Rounds
		clustered := 0
		for v := 0; v < n; v++ {
			if !alive[v] || en.ClusterOf[v] < 0 {
				continue
			}
			d.ClusterOf[v] = int32(d.NumClusters) + en.ClusterOf[v]
			d.ColorOf[v] = color
			alive[v] = false
			clustered++
		}
		if clustered > 0 {
			d.NumClusters += en.NumClusters
			color++
			remaining -= clustered
		}
	}
	// Stragglers: singleton clusters, each in its own fresh color so the
	// same-color non-adjacency invariant cannot break.
	for v := 0; v < n; v++ {
		if alive[v] {
			d.ClusterOf[v] = int32(d.NumClusters)
			d.NumClusters++
			d.ColorOf[v] = color
			color++
		}
	}
	d.NumColors = int(color)
	d.Rounds = rounds
	return d, nil
}

// Validate checks the defining invariants: every vertex clustered, and any
// two adjacent vertices in different clusters have different cluster colors.
func (d *Decomposition) Validate(g *graph.Graph) bool {
	for _, c := range d.ClusterOf {
		if c < 0 {
			return false
		}
	}
	ok := true
	g.Edges(func(u, v int) {
		if d.ClusterOf[u] != d.ClusterOf[v] && d.ColorOf[u] == d.ColorOf[v] {
			ok = false
		}
	})
	return ok
}

// Clusters materializes cluster vertex lists.
func (d *Decomposition) Clusters() [][]int32 {
	out := make([][]int32, d.NumClusters)
	for v, c := range d.ClusterOf {
		out[c] = append(out[c], int32(v))
	}
	return out
}

// ClustersByColor groups cluster ids by color.
func (d *Decomposition) ClustersByColor() [][]int32 {
	colorOfCluster := make([]int32, d.NumClusters)
	for i := range colorOfCluster {
		colorOfCluster[i] = -1
	}
	for v, c := range d.ClusterOf {
		colorOfCluster[c] = d.ColorOf[v]
	}
	out := make([][]int32, d.NumColors)
	for cid, col := range colorOfCluster {
		if col >= 0 {
			out[col] = append(out[col], int32(cid))
		}
	}
	return out
}
