package netdecomp

import (
	"math"
	"testing"

	"repro/internal/graph/gen"
	"repro/internal/xrand"
)

func TestValidDecomposition(t *testing.T) {
	g := gen.Grid(20, 20)
	for seed := uint64(0); seed < 5; seed++ {
		d := Decompose(g, Params{Seed: seed})
		if !d.Validate(g) {
			t.Fatalf("seed %d: invalid decomposition", seed)
		}
		if d.NumColors < 1 {
			t.Fatal("no colors")
		}
	}
}

func TestColorCountLogarithmic(t *testing.T) {
	g := gen.Torus(30, 30)
	d := Decompose(g, Params{Seed: 1})
	bound := int(6*math.Log2(float64(g.N()))) + 8
	if d.NumColors > bound {
		t.Fatalf("colors = %d > %d", d.NumColors, bound)
	}
}

func TestClusterDiameter(t *testing.T) {
	g := gen.Cycle(2000)
	d := Decompose(g, Params{Seed: 2, Lambda: 0.5})
	bound := int(8*math.Log(float64(g.N()))/0.5) + 1
	for _, cluster := range d.Clusters() {
		if len(cluster) == 0 {
			continue
		}
		if wd := g.WeakDiameter(cluster); wd == -1 || wd > bound {
			t.Fatalf("cluster weak diameter %d > %d", wd, bound)
		}
	}
}

func TestEveryVertexClustered(t *testing.T) {
	g := gen.GNP(300, 0.02, xrand.New(3))
	d := Decompose(g, Params{Seed: 3})
	for v, c := range d.ClusterOf {
		if c < 0 {
			t.Fatalf("vertex %d unclustered", v)
		}
		if d.ColorOf[v] < 0 {
			t.Fatalf("vertex %d uncolored", v)
		}
	}
}

func TestClustersByColor(t *testing.T) {
	g := gen.Grid(10, 10)
	d := Decompose(g, Params{Seed: 4})
	byColor := d.ClustersByColor()
	if len(byColor) != d.NumColors {
		t.Fatalf("byColor groups %d != colors %d", len(byColor), d.NumColors)
	}
	total := 0
	for _, ids := range byColor {
		total += len(ids)
	}
	if total != d.NumClusters {
		t.Fatalf("cluster ids by color %d != clusters %d", total, d.NumClusters)
	}
}

func TestDeterminism(t *testing.T) {
	g := gen.Cycle(300)
	d1 := Decompose(g, Params{Seed: 9})
	d2 := Decompose(g, Params{Seed: 9})
	for v := range d1.ClusterOf {
		if d1.ClusterOf[v] != d2.ClusterOf[v] || d1.ColorOf[v] != d2.ColorOf[v] {
			t.Fatal("nondeterministic")
		}
	}
}
