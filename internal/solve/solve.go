// Package solve implements the local optimizers that run inside the clusters
// produced by the decomposition algorithms. In the LOCAL model, once a
// cluster has gathered its topology, "solve the local problem optimally" is
// a free local computation; on real hardware it is not, so this package
// provides a dispatcher that picks the cheapest exact method available —
//
//   - weighted tree DP when the cluster's constraint graph is a forest,
//   - Hopcroft–Karp/König when it is bipartite with unit weights,
//   - branch-and-bound when the cluster is small,
//
// and falls back to a greedy heuristic otherwise, reporting which path ran
// so experiments can flag non-exact local solves (see DESIGN.md).
//
// Local-problem semantics follow Section 2 of the paper: for packing, the
// restriction to S sets all outside variables to zero and enforces every
// constraint (Observation 2.1); for covering, only constraints entirely
// inside S are enforced (Observation 2.2).
package solve

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/ilp"
	"repro/internal/matching"
	"repro/internal/treedp"
)

// Method identifies which solver produced a local solution.
type Method int

const (
	// MethodTreeDP is exact weighted dynamic programming on a forest.
	MethodTreeDP Method = iota + 1
	// MethodBipartite is exact unweighted König/Hopcroft–Karp.
	MethodBipartite
	// MethodBranchBound is exact branch-and-bound.
	MethodBranchBound
	// MethodGreedy is the non-exact fallback.
	MethodGreedy
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodTreeDP:
		return "treedp"
	case MethodBipartite:
		return "bipartite"
	case MethodBranchBound:
		return "branch-and-bound"
	case MethodGreedy:
		return "greedy"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Exact reports whether the method guarantees an optimal local solution.
func (m Method) Exact() bool { return m != MethodGreedy }

// Options tunes the dispatcher.
type Options struct {
	// MaxExactVars bounds the cluster size passed to branch-and-bound.
	// Zero means the default (30).
	MaxExactVars int
	// DisableStructure skips the tree/bipartite fast paths (used by the
	// ablation benchmarks to time pure branch-and-bound/greedy).
	DisableStructure bool
	// ForceGreedy skips every exact method (greedy-only ablation).
	ForceGreedy bool
}

func (o Options) maxExact() int {
	if o.MaxExactVars <= 0 {
		return 30
	}
	return o.MaxExactVars
}

// ErrInfeasibleLocal is returned when a covering cluster contains an
// unsatisfiable constraint (which implies the global instance is
// infeasible, since the constraint lies fully inside the cluster).
var ErrInfeasibleLocal = errors.New("solve: local covering instance infeasible")

// PackingLocal solves the packing problem restricted to the cluster: it
// returns a full-length solution with ones only on cluster variables,
// feasible for every constraint of inst, maximizing the weight within the
// cluster (exactly when the reported method is exact). Duplicate cluster
// entries are tolerated.
func PackingLocal(inst *ilp.Instance, cluster []int32, opt Options) (ilp.Solution, int64, Method) {
	sol, val, m, _ := packingLocal(inst, cluster, opt, nil)
	return sol, val, m
}

// PackingLocalCtx is PackingLocal with cancellation: the branch-and-bound
// search polls the context at a coarse node stride (the structured fast
// paths are polynomial and run to completion). On cancellation it returns
// the context's error and no solution.
func PackingLocalCtx(ctx context.Context, inst *ilp.Instance, cluster []int32, opt Options) (ilp.Solution, int64, Method, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, 0, err
	}
	sol, val, m, ok := packingLocal(inst, cluster, opt, ctx.Done())
	if !ok {
		return nil, 0, 0, ctxError(ctx)
	}
	return sol, val, m, nil
}

// ctxError reports why a done channel fired, defaulting to Canceled.
func ctxError(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return context.Canceled
}

func packingLocal(inst *ilp.Instance, cluster []int32, opt Options, done <-chan struct{}) (ilp.Solution, int64, Method, bool) {
	inCluster := make([]bool, inst.NumVars())
	vars := dedup(cluster, inCluster)
	if len(vars) == 0 {
		return inst.NewSolution(), 0, MethodBranchBound, true
	}

	if !opt.ForceGreedy && !opt.DisableStructure {
		if sol, val, m, ok := packingStructured(inst, vars, inCluster); ok {
			return sol, val, m, true
		}
	}
	if !opt.ForceGreedy && len(vars) <= opt.maxExact() {
		sol, val, ok := packingBB(inst, vars, inCluster, done)
		return sol, val, MethodBranchBound, ok
	}
	sol, val := GreedyPacking(inst, vars)
	return sol, val, MethodGreedy, true
}

// CoveringLocal solves the covering problem restricted to the cluster: it
// returns a full-length solution with ones only on cluster variables that
// satisfies every constraint fully contained in the cluster, minimizing
// weight (exactly when the method is exact).
func CoveringLocal(inst *ilp.Instance, cluster []int32, opt Options) (ilp.Solution, int64, Method, error) {
	return coveringLocal(inst, cluster, opt, nil)
}

// CoveringLocalCtx is CoveringLocal with cancellation (see
// PackingLocalCtx).
func CoveringLocalCtx(ctx context.Context, inst *ilp.Instance, cluster []int32, opt Options) (ilp.Solution, int64, Method, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, 0, err
	}
	sol, val, m, err := coveringLocal(inst, cluster, opt, ctx.Done())
	if errors.Is(err, context.Canceled) {
		// Branch-and-bound aborted on the done channel; surface the
		// context's own error (DeadlineExceeded vs Canceled).
		return nil, 0, 0, ctxError(ctx)
	}
	return sol, val, m, err
}

func coveringLocal(inst *ilp.Instance, cluster []int32, opt Options, done <-chan struct{}) (ilp.Solution, int64, Method, error) {
	inCluster := make([]bool, inst.NumVars())
	vars := dedup(cluster, inCluster)
	local := inst.LocalConstraints(inCluster)
	// Infeasibility check: all-ones on the cluster must satisfy everything.
	all := inst.NewSolution()
	for _, v := range vars {
		all[v] = true
	}
	if ok, j := inst.FeasibleOn(all, local); !ok {
		return nil, 0, 0, fmt.Errorf("%w: constraint %d", ErrInfeasibleLocal, j)
	}
	if len(local) == 0 {
		return inst.NewSolution(), 0, MethodBranchBound, nil
	}

	if !opt.ForceGreedy && !opt.DisableStructure {
		if sol, val, m, ok := coveringStructured(inst, vars, inCluster, local); ok {
			return sol, val, m, nil
		}
	}
	if !opt.ForceGreedy && len(vars) <= opt.maxExact() {
		sol, val, ok := coveringBB(inst, vars, inCluster, local, done)
		if !ok {
			return nil, 0, 0, context.Canceled
		}
		return sol, val, MethodBranchBound, nil
	}
	sol, val := GreedyCovering(inst, vars, local)
	return sol, val, MethodGreedy, nil
}

func dedup(cluster []int32, mark []bool) []int32 {
	vars := make([]int32, 0, len(cluster))
	for _, v := range cluster {
		if v < 0 || int(v) >= len(mark) || mark[v] {
			continue
		}
		mark[v] = true
		vars = append(vars, v)
	}
	return vars
}

// --- Structure detection -------------------------------------------------

// isRank2Unit reports whether the instance is in edge form: every
// constraint has at most 2 terms, all coefficients 1, all rhs 1. This is
// the MIS (packing) / vertex-cover (covering) shape the fast paths handle.
func isRank2Unit(inst *ilp.Instance) bool {
	for j := 0; j < inst.NumConstraints(); j++ {
		c := inst.Constraint(j)
		if len(c.Terms) > 2 || c.B != 1 {
			return false
		}
		for _, t := range c.Terms {
			if t.Coeff != 1 {
				return false
			}
		}
	}
	return true
}

// clusterGraph builds the conflict graph on the cluster variables: an edge
// for every rank-2 constraint with both endpoints in the cluster. Returns
// the graph plus the position index of each variable.
func clusterGraph(inst *ilp.Instance, vars []int32, inCluster []bool) (*graph.Graph, map[int32]int) {
	pos := make(map[int32]int, len(vars))
	for i, v := range vars {
		pos[v] = i
	}
	b := graph.NewBuilder(len(vars))
	seen := make(map[int32]bool)
	for _, v := range vars {
		for _, cj := range inst.ConstraintsOf(int(v)) {
			if seen[cj] {
				continue
			}
			seen[cj] = true
			c := inst.Constraint(int(cj))
			if len(c.Terms) == 2 && inCluster[c.Terms[0].Var] && inCluster[c.Terms[1].Var] {
				b.AddEdge(pos[int32(c.Terms[0].Var)], pos[int32(c.Terms[1].Var)])
			}
		}
	}
	return b.Build(), pos
}

func unitWeights(inst *ilp.Instance, vars []int32) bool {
	for _, v := range vars {
		if inst.Weight(int(v)) != 1 {
			return false
		}
	}
	return true
}

// packingStructured handles the MIS shape exactly when the cluster's
// conflict graph is a forest (any weights) or bipartite (unit weights).
// The method label is reported by whichever path succeeded — re-deriving
// it afterwards would mean rebuilding the cluster graph and running a
// girth check per local solve, which used to dominate the solver's
// allocation profile.
func packingStructured(inst *ilp.Instance, vars []int32, inCluster []bool) (ilp.Solution, int64, Method, bool) {
	if !isRank2Unit(inst) {
		return nil, 0, 0, false
	}
	g, _ := clusterGraph(inst, vars, inCluster)
	w := make([]int64, len(vars))
	for i, v := range vars {
		w[i] = inst.Weight(int(v))
	}
	if set, val, err := treedp.MaxIndependentSet(g, w); err == nil {
		return liftSolution(inst, vars, set), val, MethodTreeDP, true
	}
	if unitWeights(inst, vars) {
		if r := matching.BipartiteAuto(g); r != nil {
			return liftSolution(inst, vars, r.MaxIndependentSet), int64(len(r.MaxIndependentSet)), MethodBipartite, true
		}
	}
	return nil, 0, 0, false
}

// coveringStructured handles the vertex-cover shape exactly under the same
// structural conditions. Only inside-edges matter (Observation 2.2), which
// is exactly what clusterGraph builds; rank-1 constraints (x_v >= 1) force
// their variable and are handled by pre-assignment.
func coveringStructured(inst *ilp.Instance, vars []int32, inCluster []bool, local []int32) (ilp.Solution, int64, Method, bool) {
	if !isRank2Unit(inst) {
		return nil, 0, 0, false
	}
	forced := make(map[int32]bool)
	for _, cj := range local {
		c := inst.Constraint(int(cj))
		if len(c.Terms) == 1 {
			forced[int32(c.Terms[0].Var)] = true
		}
	}
	g, _ := clusterGraph(inst, vars, inCluster)
	w := make([]int64, len(vars))
	for i, v := range vars {
		w[i] = inst.Weight(int(v))
		if forced[v] {
			w[i] = 0 // free to take; we add it regardless below
		}
	}
	var sol ilp.Solution
	var val int64
	var method Method
	if cover, cval, err := treedp.MinVertexCover(g, w); err == nil {
		sol = liftSolution(inst, vars, cover)
		val = cval
		method = MethodTreeDP
	} else if unitWeights(inst, vars) && len(forced) == 0 {
		r := matching.BipartiteAuto(g)
		if r == nil {
			return nil, 0, 0, false
		}
		sol = liftSolution(inst, vars, r.MinVertexCover)
		val = int64(len(r.MinVertexCover))
		method = MethodBipartite
	} else {
		return nil, 0, 0, false
	}
	for v := range forced {
		if !sol[v] {
			sol[v] = true
		}
	}
	// Recompute the true weight including forced vertices.
	val = 0
	for _, v := range vars {
		if sol[v] {
			val += inst.Weight(int(v))
		}
	}
	return sol, val, method, true
}

func liftSolution(inst *ilp.Instance, vars []int32, localIdx []int32) ilp.Solution {
	sol := inst.NewSolution()
	for _, i := range localIdx {
		sol[vars[i]] = true
	}
	return sol
}

// --- Branch and bound: packing -------------------------------------------

// bbCheckMask sets the cancellation polling stride of the branch-and-bound
// searches: one non-blocking channel poll every 1024 explored nodes.
const bbCheckMask = 1023

func packingBB(inst *ilp.Instance, vars []int32, inCluster []bool, done <-chan struct{}) (ilp.Solution, int64, bool) {
	// Order variables by weight descending for tighter bounds.
	order := append([]int32(nil), vars...)
	sort.Slice(order, func(i, j int) bool {
		return inst.Weight(int(order[i])) > inst.Weight(int(order[j]))
	})
	suffix := make([]int64, len(order)+1)
	for i := len(order) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + inst.Weight(int(order[i]))
	}
	// Residual capacity per constraint touching the cluster.
	resIdx := map[int32]int{}
	var res []float64
	var consID []int32
	for _, v := range order {
		for _, cj := range inst.ConstraintsOf(int(v)) {
			if _, ok := resIdx[cj]; !ok {
				resIdx[cj] = len(res)
				res = append(res, inst.Constraint(int(cj)).B)
				consID = append(consID, cj)
			}
		}
	}
	// Start from the greedy solution so pruning has a bound immediately.
	bestSol, bestVal := GreedyPacking(inst, vars)
	cur := inst.NewSolution()
	nodes := 0
	aborted := false
	var rec func(i int, val int64)
	rec = func(i int, val int64) {
		if done != nil {
			if nodes&bbCheckMask == 0 && stopped(done) {
				aborted = true
			}
			nodes++
			if aborted {
				return
			}
		}
		if val > bestVal {
			bestVal = val
			bestSol = cur.Clone()
		}
		if i == len(order) || val+suffix[i] <= bestVal {
			return
		}
		v := order[i]
		// Branch x_v = 1 if capacities allow.
		fits := true
		for _, cj := range inst.ConstraintsOf(int(v)) {
			ri := resIdx[cj]
			coeff := coeffOf(inst, cj, v)
			if coeff > res[ri]+1e-9 {
				fits = false
				break
			}
		}
		if fits {
			for _, cj := range inst.ConstraintsOf(int(v)) {
				res[resIdx[cj]] -= coeffOf(inst, cj, v)
			}
			cur[v] = true
			rec(i+1, val+inst.Weight(int(v)))
			cur[v] = false
			for _, cj := range inst.ConstraintsOf(int(v)) {
				res[resIdx[cj]] += coeffOf(inst, cj, v)
			}
		}
		// Branch x_v = 0.
		rec(i+1, val)
	}
	rec(0, 0)
	_ = consID
	return bestSol, bestVal, !aborted
}

// stopped polls a done channel without blocking.
func stopped(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

func coeffOf(inst *ilp.Instance, cj int32, v int32) float64 {
	c := inst.Constraint(int(cj))
	lo, hi := 0, len(c.Terms)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.Terms[mid].Var < int(v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(c.Terms) && c.Terms[lo].Var == int(v) {
		return c.Terms[lo].Coeff
	}
	return 0
}

// --- Branch and bound: covering ------------------------------------------

func coveringBB(inst *ilp.Instance, vars []int32, inCluster []bool, local []int32, done <-chan struct{}) (ilp.Solution, int64, bool) {
	order := append([]int32(nil), vars...)
	sort.Slice(order, func(i, j int) bool {
		return inst.Weight(int(order[i])) < inst.Weight(int(order[j]))
	})
	posOf := make(map[int32]int, len(order))
	for i, v := range order {
		posOf[v] = i
	}
	// deficits[k]: remaining requirement of local constraint k.
	deficit := make([]float64, len(local))
	localIdx := make(map[int32]int, len(local))
	for k, cj := range local {
		deficit[k] = inst.Constraint(int(cj)).B
		localIdx[cj] = k
	}
	// maxCover[k][i]: how much constraint k can still gain from variables at
	// order positions >= i.
	maxCover := make([][]float64, len(local))
	for k, cj := range local {
		row := make([]float64, len(order)+1)
		c := inst.Constraint(int(cj))
		contrib := make([]float64, len(order))
		for _, t := range c.Terms {
			if p, ok := posOf[int32(t.Var)]; ok {
				contrib[p] += t.Coeff
			}
		}
		for i := len(order) - 1; i >= 0; i-- {
			row[i] = row[i+1] + contrib[i]
		}
		maxCover[k] = row
	}
	bestSol, bestVal := GreedyCovering(inst, vars, local)
	cur := inst.NewSolution()
	nodes := 0
	aborted := false
	var rec func(i int, val int64, unmet int)
	rec = func(i int, val int64, unmet int) {
		if done != nil {
			if nodes&bbCheckMask == 0 && stopped(done) {
				aborted = true
			}
			nodes++
			if aborted {
				return
			}
		}
		if val >= bestVal {
			return
		}
		if unmet == 0 {
			bestVal = val
			bestSol = cur.Clone()
			return
		}
		if i == len(order) {
			return
		}
		// Prune: some constraint can no longer be met.
		for k := range local {
			if deficit[k] > 1e-9 && maxCover[k][i] < deficit[k]-1e-9 {
				return
			}
		}
		v := order[i]
		// Branch x_v = 1.
		newlyMet := 0
		for _, cj := range inst.ConstraintsOf(int(v)) {
			k, ok := localIdx[cj]
			if !ok {
				continue
			}
			before := deficit[k]
			deficit[k] -= coeffOf(inst, cj, v)
			if before > 1e-9 && deficit[k] <= 1e-9 {
				newlyMet++
			}
		}
		cur[v] = true
		rec(i+1, val+inst.Weight(int(v)), unmet-newlyMet)
		cur[v] = false
		for _, cj := range inst.ConstraintsOf(int(v)) {
			if k, ok := localIdx[cj]; ok {
				deficit[k] += coeffOf(inst, cj, v)
			}
		}
		// Branch x_v = 0.
		rec(i+1, val, unmet)
	}
	unmet := 0
	for k := range deficit {
		if deficit[k] > 1e-9 {
			unmet++
		}
	}
	if unmet == 0 {
		return inst.NewSolution(), 0, true
	}
	rec(0, 0, unmet)
	return bestSol, bestVal, !aborted
}

// --- Greedy fallbacks -----------------------------------------------------

// GreedyPacking adds cluster variables in weight-descending order whenever
// no constraint would be violated. The result is feasible for the whole
// instance (zero extension, Observation 2.1).
func GreedyPacking(inst *ilp.Instance, vars []int32) (ilp.Solution, int64) {
	order := append([]int32(nil), vars...)
	sort.Slice(order, func(i, j int) bool {
		wi, wj := inst.Weight(int(order[i])), inst.Weight(int(order[j]))
		if wi != wj {
			return wi > wj
		}
		return order[i] < order[j]
	})
	res := map[int32]float64{}
	sol := inst.NewSolution()
	var val int64
	for _, v := range order {
		fits := true
		for _, cj := range inst.ConstraintsOf(int(v)) {
			r, ok := res[cj]
			if !ok {
				r = inst.Constraint(int(cj)).B
			}
			if coeffOf(inst, cj, v) > r+1e-9 {
				fits = false
				break
			}
		}
		if !fits {
			continue
		}
		for _, cj := range inst.ConstraintsOf(int(v)) {
			r, ok := res[cj]
			if !ok {
				r = inst.Constraint(int(cj)).B
			}
			res[cj] = r - coeffOf(inst, cj, v)
		}
		sol[v] = true
		val += inst.Weight(int(v))
	}
	return sol, val
}

// GreedyCovering is the classic weighted greedy set-multicover heuristic:
// repeatedly take the variable minimizing weight per unit of residual
// deficit covered, until every local constraint is satisfied. Callers must
// have verified feasibility (all-ones satisfies the local constraints).
func GreedyCovering(inst *ilp.Instance, vars []int32, local []int32) (ilp.Solution, int64) {
	deficit := make(map[int32]float64, len(local))
	for _, cj := range local {
		if b := inst.Constraint(int(cj)).B; b > 0 {
			deficit[cj] = b
		}
	}
	sol := inst.NewSolution()
	var val int64
	taken := make(map[int32]bool, len(vars))
	for len(deficit) > 0 {
		bestV := int32(-1)
		bestRatio := 0.0
		for _, v := range vars {
			if taken[v] {
				continue
			}
			covered := 0.0
			for _, cj := range inst.ConstraintsOf(int(v)) {
				if d, ok := deficit[cj]; ok {
					c := coeffOf(inst, cj, v)
					if c > d {
						c = d
					}
					covered += c
				}
			}
			if covered <= 0 {
				continue
			}
			ratio := float64(inst.Weight(int(v))) / covered
			if bestV == -1 || ratio < bestRatio {
				bestV, bestRatio = v, ratio
			}
		}
		if bestV == -1 {
			break // cannot make progress; caller verified feasibility, so
			// this only happens with zero-coefficient anomalies
		}
		taken[bestV] = true
		sol[bestV] = true
		val += inst.Weight(int(bestV))
		for _, cj := range inst.ConstraintsOf(int(bestV)) {
			if d, ok := deficit[cj]; ok {
				d -= coeffOf(inst, cj, bestV)
				if d <= 1e-9 {
					delete(deficit, cj)
				} else {
					deficit[cj] = d
				}
			}
		}
	}
	return sol, val
}
