package solve

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/ilp"
	"repro/internal/xrand"
)

// misILP builds the MIS packing instance for a graph with given weights.
func misILP(t testing.TB, g *graph.Graph, w []int64) *ilp.Instance {
	t.Helper()
	if w == nil {
		w = make([]int64, g.N())
		for i := range w {
			w[i] = 1
		}
	}
	b := ilp.NewBuilder(ilp.Packing, w)
	g.Edges(func(u, v int) {
		b.AddConstraint([]ilp.Term{{Var: u, Coeff: 1}, {Var: v, Coeff: 1}}, 1)
	})
	inst, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// vcILP builds the vertex-cover covering instance.
func vcILP(t testing.TB, g *graph.Graph, w []int64) *ilp.Instance {
	t.Helper()
	if w == nil {
		w = make([]int64, g.N())
		for i := range w {
			w[i] = 1
		}
	}
	b := ilp.NewBuilder(ilp.Covering, w)
	g.Edges(func(u, v int) {
		b.AddConstraint([]ilp.Term{{Var: u, Coeff: 1}, {Var: v, Coeff: 1}}, 1)
	})
	inst, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// mdsILP builds the dominating-set covering instance.
func mdsILP(t testing.TB, g *graph.Graph) *ilp.Instance {
	t.Helper()
	w := make([]int64, g.N())
	for i := range w {
		w[i] = 1
	}
	b := ilp.NewBuilder(ilp.Covering, w)
	for v := 0; v < g.N(); v++ {
		terms := []ilp.Term{{Var: v, Coeff: 1}}
		for _, u := range g.Neighbors(v) {
			terms = append(terms, ilp.Term{Var: int(u), Coeff: 1})
		}
		b.AddConstraint(terms, 1)
	}
	inst, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func allVars(n int) []int32 {
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = int32(i)
	}
	return vs
}

// brutePackingLocal enumerates all subsets of the cluster.
func brutePackingLocal(inst *ilp.Instance, cluster []int32) int64 {
	var best int64
	n := len(cluster)
	for mask := 0; mask < 1<<n; mask++ {
		sol := inst.NewSolution()
		var val int64
		for i, v := range cluster {
			if mask&(1<<i) != 0 {
				sol[v] = true
				val += inst.Weight(int(v))
			}
		}
		if ok, _ := inst.Feasible(sol); ok && val > best {
			best = val
		}
	}
	return best
}

func bruteCoveringLocal(inst *ilp.Instance, cluster []int32) int64 {
	in := make([]bool, inst.NumVars())
	for _, v := range cluster {
		in[v] = true
	}
	local := inst.LocalConstraints(in)
	best := int64(1) << 60
	n := len(cluster)
	for mask := 0; mask < 1<<n; mask++ {
		sol := inst.NewSolution()
		var val int64
		for i, v := range cluster {
			if mask&(1<<i) != 0 {
				sol[v] = true
				val += inst.Weight(int(v))
			}
		}
		if ok, _ := inst.FeasibleOn(sol, local); ok && val < best {
			best = val
		}
	}
	return best
}

func TestPackingTreePath(t *testing.T) {
	g := gen.Path(9)
	inst := misILP(t, g, nil)
	sol, val, m := PackingLocal(inst, allVars(9), Options{})
	if m != MethodTreeDP {
		t.Fatalf("method = %v, want treedp", m)
	}
	if val != 5 {
		t.Fatalf("P9 MIS = %d", val)
	}
	if ok, _ := inst.Feasible(sol); !ok {
		t.Fatal("infeasible")
	}
}

func TestPackingBipartiteCycle(t *testing.T) {
	g := gen.Cycle(12)
	inst := misILP(t, g, nil)
	_, val, m := PackingLocal(inst, allVars(12), Options{})
	if m != MethodBipartite {
		t.Fatalf("method = %v, want bipartite", m)
	}
	if val != 6 {
		t.Fatalf("C12 MIS = %d", val)
	}
}

func TestPackingOddCycleBB(t *testing.T) {
	g := gen.Cycle(11)
	inst := misILP(t, g, nil)
	_, val, m := PackingLocal(inst, allVars(11), Options{})
	if m != MethodBranchBound {
		t.Fatalf("method = %v, want branch-and-bound", m)
	}
	if val != 5 {
		t.Fatalf("C11 MIS = %d", val)
	}
}

func TestPackingGreedyFallback(t *testing.T) {
	g := gen.Cycle(51)
	inst := misILP(t, g, nil)
	_, val, m := PackingLocal(inst, allVars(51), Options{MaxExactVars: 20})
	if m != MethodGreedy {
		t.Fatalf("method = %v, want greedy", m)
	}
	if val < 17 { // greedy on a cycle achieves at least n/3
		t.Fatalf("greedy MIS = %d", val)
	}
}

func TestPackingForceGreedy(t *testing.T) {
	g := gen.Path(5)
	inst := misILP(t, g, nil)
	_, _, m := PackingLocal(inst, allVars(5), Options{ForceGreedy: true})
	if m != MethodGreedy {
		t.Fatalf("ForceGreedy ignored: %v", m)
	}
}

func TestPackingPartialCluster(t *testing.T) {
	// Cluster = left half of a path; constraints crossing the boundary must
	// still be respected by the zero extension (they are, trivially).
	g := gen.Path(10)
	inst := misILP(t, g, nil)
	cluster := []int32{0, 1, 2, 3, 4}
	sol, val, _ := PackingLocal(inst, cluster, Options{})
	if val != 3 { // MIS of P5
		t.Fatalf("half-path MIS = %d", val)
	}
	for v := 5; v < 10; v++ {
		if sol[v] {
			t.Fatal("solution set a variable outside the cluster")
		}
	}
	if ok, _ := inst.Feasible(sol); !ok {
		t.Fatal("zero extension infeasible")
	}
}

func TestPackingEmptyCluster(t *testing.T) {
	inst := misILP(t, gen.Path(4), nil)
	sol, val, _ := PackingLocal(inst, nil, Options{})
	if val != 0 || sol.CountOnes() != 0 {
		t.Fatal("empty cluster should give empty solution")
	}
}

func TestPackingWeightedTree(t *testing.T) {
	g := gen.Star(5)
	w := []int64{10, 1, 1, 1, 1} // heavy center beats the 4 leaves
	inst := misILP(t, g, w)
	sol, val, m := PackingLocal(inst, allVars(5), Options{})
	if m != MethodTreeDP {
		t.Fatalf("method = %v", m)
	}
	if val != 10 || !sol[0] {
		t.Fatalf("weighted star MIS = %d, sol[0]=%v", val, sol[0])
	}
}

func TestPackingBBRandomAgainstBrute(t *testing.T) {
	rng := xrand.New(15)
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(8)
		// Random general packing instance: random coefficients/rhs.
		w := make([]int64, n)
		for i := range w {
			w[i] = 1 + int64(rng.Intn(6))
		}
		b := ilp.NewBuilder(ilp.Packing, w)
		cons := 2 + rng.Intn(5)
		for j := 0; j < cons; j++ {
			var terms []ilp.Term
			for v := 0; v < n; v++ {
				if rng.Bernoulli(0.5) {
					terms = append(terms, ilp.Term{Var: v, Coeff: float64(1 + rng.Intn(3))})
				}
			}
			b.AddConstraint(terms, float64(rng.Intn(5)))
		}
		inst, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		sol, val, m := PackingLocal(inst, allVars(n), Options{DisableStructure: true})
		if m != MethodBranchBound {
			t.Fatalf("trial %d: method %v", trial, m)
		}
		if want := brutePackingLocal(inst, allVars(n)); val != want {
			t.Fatalf("trial %d: bb=%d brute=%d", trial, val, want)
		}
		if ok, j := inst.Feasible(sol); !ok {
			t.Fatalf("trial %d: infeasible at %d", trial, j)
		}
	}
}

func TestCoveringTreeVC(t *testing.T) {
	g := gen.Path(9)
	inst := vcILP(t, g, nil)
	sol, val, m, err := CoveringLocal(inst, allVars(9), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m != MethodTreeDP {
		t.Fatalf("method = %v", m)
	}
	if val != 4 { // MVC of P9
		t.Fatalf("P9 MVC = %d", val)
	}
	if ok, _ := inst.Feasible(sol); !ok {
		t.Fatal("cover infeasible")
	}
}

func TestCoveringBipartiteVC(t *testing.T) {
	g := gen.CompleteBipartite(3, 5)
	inst := vcILP(t, g, nil)
	_, val, m, err := CoveringLocal(inst, allVars(8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m != MethodBipartite {
		t.Fatalf("method = %v", m)
	}
	if val != 3 {
		t.Fatalf("K(3,5) MVC = %d", val)
	}
}

func TestCoveringPartialClusterDropsCrossEdges(t *testing.T) {
	// Covering restricted to {0,1,2} of P6 only enforces edges inside.
	g := gen.Path(6)
	inst := vcILP(t, g, nil)
	sol, val, _, err := CoveringLocal(inst, []int32{0, 1, 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if val != 1 { // edges {0,1},{1,2}: vertex 1 covers both
		t.Fatalf("local MVC = %d", val)
	}
	if !sol[1] {
		t.Fatal("expected vertex 1 in cover")
	}
}

func TestCoveringMDSSmallBB(t *testing.T) {
	g := gen.Cycle(9)
	inst := mdsILP(t, g)
	_, val, m, err := CoveringLocal(inst, allVars(9), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m != MethodBranchBound {
		t.Fatalf("method = %v", m)
	}
	if val != 3 { // gamma(C9) = 3
		t.Fatalf("C9 MDS = %d", val)
	}
}

func TestCoveringGreedyFallback(t *testing.T) {
	g := gen.Cycle(60)
	inst := mdsILP(t, g)
	sol, val, m, err := CoveringLocal(inst, allVars(60), Options{MaxExactVars: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m != MethodGreedy {
		t.Fatalf("method = %v", m)
	}
	if ok, _ := inst.Feasible(sol); !ok {
		t.Fatal("greedy cover infeasible")
	}
	if val < 20 || val > 40 { // gamma(C60)=20; greedy within 2x here
		t.Fatalf("greedy MDS = %d", val)
	}
}

func TestCoveringInfeasibleLocal(t *testing.T) {
	// Constraint requires 2 from a single variable with coeff 1: impossible.
	b := ilp.NewBuilder(ilp.Covering, []int64{1})
	b.AddConstraint([]ilp.Term{{Var: 0, Coeff: 1}}, 2)
	inst, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, err = CoveringLocal(inst, []int32{0}, Options{})
	if !errors.Is(err, ErrInfeasibleLocal) {
		t.Fatalf("err = %v, want ErrInfeasibleLocal", err)
	}
}

func TestCoveringForcedRank1(t *testing.T) {
	// x_2 >= 1 forces vertex 2 even in the tree fast path.
	g := gen.Path(5)
	w := []int64{1, 1, 1, 1, 1}
	b := ilp.NewBuilder(ilp.Covering, w)
	g.Edges(func(u, v int) {
		b.AddConstraint([]ilp.Term{{Var: u, Coeff: 1}, {Var: v, Coeff: 1}}, 1)
	})
	b.AddConstraint([]ilp.Term{{Var: 2, Coeff: 1}}, 1)
	inst, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sol, _, _, err := CoveringLocal(inst, allVars(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol[2] {
		t.Fatal("forced variable not taken")
	}
	if ok, _ := inst.Feasible(sol); !ok {
		t.Fatal("infeasible")
	}
}

func TestCoveringBBRandomAgainstBrute(t *testing.T) {
	rng := xrand.New(25)
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(8)
		w := make([]int64, n)
		for i := range w {
			w[i] = 1 + int64(rng.Intn(6))
		}
		b := ilp.NewBuilder(ilp.Covering, w)
		cons := 2 + rng.Intn(5)
		for j := 0; j < cons; j++ {
			var terms []ilp.Term
			total := 0.0
			for v := 0; v < n; v++ {
				if rng.Bernoulli(0.6) {
					c := float64(1 + rng.Intn(3))
					terms = append(terms, ilp.Term{Var: v, Coeff: c})
					total += c
				}
			}
			if len(terms) == 0 {
				continue
			}
			// rhs at most the max achievable so the instance is feasible.
			b.AddConstraint(terms, float64(rng.Intn(int(total)+1)))
		}
		inst, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		sol, val, m, err := CoveringLocal(inst, allVars(n), Options{DisableStructure: true})
		if err != nil {
			t.Fatal(err)
		}
		if m != MethodBranchBound {
			t.Fatalf("trial %d: method %v", trial, m)
		}
		if want := bruteCoveringLocal(inst, allVars(n)); val != want {
			t.Fatalf("trial %d: bb=%d brute=%d", trial, val, want)
		}
		if ok, j := inst.Feasible(sol); !ok {
			t.Fatalf("trial %d: infeasible at %d", trial, j)
		}
	}
}

func TestGreedyCoveringAlwaysFeasible(t *testing.T) {
	rng := xrand.New(35)
	for trial := 0; trial < 30; trial++ {
		g := gen.GNP(30, 0.15, rng)
		inst := mdsILP(t, g)
		vars := allVars(30)
		in := make([]bool, 30)
		for _, v := range vars {
			in[v] = true
		}
		local := inst.LocalConstraints(in)
		sol, _ := GreedyCovering(inst, vars, local)
		if ok, j := inst.FeasibleOn(sol, local); !ok {
			t.Fatalf("trial %d: greedy cover violates %d", trial, j)
		}
	}
}

func TestMethodString(t *testing.T) {
	for _, m := range []Method{MethodTreeDP, MethodBipartite, MethodBranchBound, MethodGreedy} {
		if m.String() == "" {
			t.Fatal("empty method string")
		}
	}
	if MethodGreedy.Exact() {
		t.Fatal("greedy must not be exact")
	}
	if !MethodTreeDP.Exact() || !MethodBranchBound.Exact() {
		t.Fatal("exact methods mislabeled")
	}
	if Method(0).String() == "" {
		t.Fatal("unknown method should print")
	}
}

func BenchmarkPackingBB20(b *testing.B) {
	g := gen.Cycle(21)
	inst := misILP(b, g, nil)
	vars := allVars(21)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = PackingLocal(inst, vars, Options{DisableStructure: true})
	}
}

func BenchmarkCoveringGreedy(b *testing.B) {
	rng := xrand.New(1)
	g := gen.GNP(200, 0.05, rng)
	inst := mdsILP(b, g)
	vars := allVars(200)
	in := make([]bool, 200)
	for _, v := range vars {
		in[v] = true
	}
	local := inst.LocalConstraints(in)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = GreedyCovering(inst, vars, local)
	}
}
