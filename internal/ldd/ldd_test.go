package ldd

import (
	"math"
	"testing"

	"repro/internal/graph/gen"
	"repro/internal/hypergraph"
)

func TestENSeparationAndDiameter(t *testing.T) {
	g := gen.Grid(25, 30)
	for seed := uint64(0); seed < 5; seed++ {
		p := ENParams{Lambda: 0.2, Seed: seed}
		d := ElkinNeiman(g, nil, p)
		if ok, u, v := d.ValidateSeparation(g); !ok {
			t.Fatalf("seed %d: clusters adjacent at %d-%d", seed, u, v)
		}
		bound := int(8 * math.Log(float64(g.N())) / 0.2)
		if sd := d.MaxStrongDiameter(g); sd == -1 || sd > bound {
			t.Fatalf("seed %d: strong diameter %d exceeds %d", seed, sd, bound)
		}
	}
}

func TestENCoversEveryVertex(t *testing.T) {
	// Every vertex is either clustered or deleted; cluster ids dense.
	g := gen.Cycle(50)
	d := ElkinNeiman(g, nil, ENParams{Lambda: 0.3, Seed: 7})
	seen := make([]bool, d.NumClusters)
	for _, c := range d.ClusterOf {
		if c >= 0 {
			seen[c] = true
		}
	}
	for id, s := range seen {
		if !s {
			t.Fatalf("cluster id %d unused", id)
		}
	}
}

func TestENDeletionRate(t *testing.T) {
	// Average deleted fraction over trials should be near <= 1 - e^-lambda
	// (plus slack); measured on a long cycle where boundary effects matter.
	g := gen.Cycle(2000)
	lambda := 0.2
	total := 0
	const trials = 20
	for seed := uint64(0); seed < trials; seed++ {
		d := ElkinNeiman(g, nil, ENParams{Lambda: lambda, Seed: seed})
		total += d.UnclusteredCount()
	}
	mean := float64(total) / float64(trials) / float64(g.N())
	bound := 1 - math.Exp(-lambda) // ~0.181
	if mean > bound*1.3 {
		t.Fatalf("mean deleted fraction %.4f far above bound %.4f", mean, bound)
	}
	if mean == 0 {
		t.Fatal("no deletions at all over 20 trials is implausible on a long cycle")
	}
}

func TestENAliveMask(t *testing.T) {
	g := gen.Path(30)
	alive := make([]bool, 30)
	for i := 5; i < 25; i++ {
		alive[i] = true
	}
	d := ElkinNeiman(g, alive, ENParams{Lambda: 0.3, Seed: 1})
	for v := 0; v < 30; v++ {
		if (v < 5 || v >= 25) && d.ClusterOf[v] != Unclustered {
			t.Fatalf("dead vertex %d clustered", v)
		}
	}
}

func TestENDistributedMatchesOracle(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    int
	}{{"cycle", 60}, {"grid", 0}, {"cliquepath", 0}} {
		var g = gen.Cycle(60)
		switch tc.name {
		case "grid":
			g = gen.Grid(8, 8)
		case "cliquepath":
			g = gen.CliquePlusPath(10, 15)
		}
		for seed := uint64(0); seed < 4; seed++ {
			p := ENParams{Lambda: 0.25, Seed: seed}
			oracle := ElkinNeiman(g, nil, p)
			dist, stats, err := ElkinNeimanDistributed(g, p, seed%2 == 0)
			if err != nil {
				t.Fatalf("%s seed %d: %v", tc.name, seed, err)
			}
			if stats.Messages == 0 {
				t.Fatalf("%s: no messages exchanged", tc.name)
			}
			if len(oracle.ClusterOf) != len(dist.ClusterOf) {
				t.Fatal("length mismatch")
			}
			for v := range oracle.ClusterOf {
				if oracle.ClusterOf[v] != dist.ClusterOf[v] {
					t.Fatalf("%s seed %d: vertex %d oracle=%d distributed=%d",
						tc.name, seed, v, oracle.ClusterOf[v], dist.ClusterOf[v])
				}
			}
		}
	}
}

func TestENDistributedIsLocalNotCongest(t *testing.T) {
	// The label batches exceed O(log n) bits on dense graphs — the protocol
	// is a LOCAL-model protocol; the audit must notice.
	g := gen.Complete(40)
	_, stats, err := ElkinNeimanDistributed(g, ENParams{Lambda: 0.2, Seed: 3}, true)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxMessageBits == 0 {
		t.Fatal("no sized messages recorded")
	}
}

func TestMPXClustersEverything(t *testing.T) {
	g := gen.Torus(12, 12)
	r := MPX(g, ENParams{Lambda: 0.2, Seed: 5})
	for v, c := range r.ClusterOf {
		if c == Unclustered {
			t.Fatalf("MPX left vertex %d unclustered", v)
		}
	}
	// Cut edges: endpoints must be in different clusters.
	for _, e := range r.CutEdges {
		if r.ClusterOf[e[0]] == r.ClusterOf[e[1]] {
			t.Fatal("cut edge inside a cluster")
		}
	}
	// Non-cut edges connect same-cluster endpoints by definition; verify by
	// counting.
	cut := map[[2]int]bool{}
	for _, e := range r.CutEdges {
		cut[e] = true
	}
	g.Edges(func(u, v int) {
		if !cut[[2]int{u, v}] && r.ClusterOf[u] != r.ClusterOf[v] {
			t.Fatalf("inter-cluster edge %d-%d not cut", u, v)
		}
	})
}

func TestMPXExpectedCutFraction(t *testing.T) {
	g := gen.Torus(20, 20)
	lambda := 0.1
	total := 0
	const trials = 20
	for seed := uint64(0); seed < trials; seed++ {
		r := MPX(g, ENParams{Lambda: lambda, Seed: seed})
		total += len(r.CutEdges)
	}
	frac := float64(total) / float64(trials) / float64(g.M())
	// Theory: O(lambda) per edge; allow generous constant.
	if frac > 6*lambda {
		t.Fatalf("cut fraction %.4f >> O(lambda=%.2f)", frac, lambda)
	}
}

func TestSparseCoverCoversHyperedges(t *testing.T) {
	// The Lemma C.2 cover runs on the hypergraph's primal (communication)
	// graph, where co-edge vertices are adjacent — that adjacency is what
	// makes the "within 1 of the best" window cover whole hyperedges.
	g := gen.Grid(12, 12)
	h := hypergraph.ClosedNeighborhoods(g)
	primal := h.Primal()
	for seed := uint64(0); seed < 5; seed++ {
		c := SparseCover(primal, nil, ENParams{Lambda: 0.4, Seed: seed})
		if ok, e := VerifyCover(h, c); !ok {
			t.Fatalf("seed %d: hyperedge %d uncovered", seed, e)
		}
		bound := int(8*math.Log(float64(primal.N()))/0.4) + 1
		if wd := c.MaxWeakDiameter(primal); wd == -1 || wd > bound {
			t.Fatalf("seed %d: weak diameter %d > %d", seed, wd, bound)
		}
	}
}

func TestSparseCoverMultiplicity(t *testing.T) {
	// Mean multiplicity should be near E[Geometric(e^-lambda)] = e^lambda.
	g := gen.Cycle(3000)
	lambda := 0.3
	var sum float64
	const trials = 10
	for seed := uint64(0); seed < trials; seed++ {
		c := SparseCover(g, nil, ENParams{Lambda: lambda, Seed: seed})
		sum += c.MeanMultiplicity()
	}
	mean := sum / trials
	want := math.Exp(lambda) // ~1.35
	if mean > want*1.25 || mean < 1 {
		t.Fatalf("mean multiplicity %.3f, want near %.3f", mean, want)
	}
}

func TestSparseCoverEveryVertexCovered(t *testing.T) {
	g := gen.Path(100)
	c := SparseCover(g, nil, ENParams{Lambda: 0.5, Seed: 2})
	for v := 0; v < g.N(); v++ {
		if c.Multiplicity(v) < 1 {
			t.Fatalf("vertex %d in no cluster", v)
		}
	}
	if c.MaxMultiplicity() < 1 {
		t.Fatal("max multiplicity")
	}
}

func TestGrowCarveOnPath(t *testing.T) {
	g := gen.Path(30)
	alive := make([]bool, 30)
	for i := range alive {
		alive[i] = true
	}
	oc := GrowCarve(g, 0, 5, 10, alive)
	if oc == nil {
		t.Fatal("nil outcome for alive centre")
	}
	// Layers from vertex 0 on a path have exactly one vertex each, so any
	// j* in [5,10] deletes one vertex and removes j* vertices.
	if len(oc.Deleted) != 1 {
		t.Fatalf("deleted %d vertices, want 1", len(oc.Deleted))
	}
	if oc.JStar < 5 || oc.JStar > 10 {
		t.Fatalf("jStar = %d outside window", oc.JStar)
	}
	if len(oc.Removed) != oc.JStar {
		t.Fatalf("removed %d, want %d", len(oc.Removed), oc.JStar)
	}
}

func TestGrowCarvePicksSparsestLayer(t *testing.T) {
	// Caterpillar: spine with legs; layer sizes from spine end differ.
	// Construct explicit: star center 0 with long path; layers from path end
	// have size 1 until they hit the star.
	g := gen.Star(20) // center 0, 19 leaves: layers from a leaf: 1,1,18
	alive := make([]bool, g.N())
	for i := range alive {
		alive[i] = true
	}
	oc := GrowCarve(g, 1, 1, 2, alive) // from leaf 1: layer1={0} size 1, layer2=rest size 18
	if oc.JStar != 1 {
		t.Fatalf("jStar = %d, want 1 (sparsest layer)", oc.JStar)
	}
	if len(oc.Deleted) != 1 || oc.Deleted[0] != 0 {
		t.Fatalf("deleted = %v, want the center", oc.Deleted)
	}
}

func TestGrowCarveExhaustedComponent(t *testing.T) {
	g := gen.Path(5)
	alive := make([]bool, 5)
	for i := range alive {
		alive[i] = true
	}
	oc := GrowCarve(g, 2, 10, 20, alive)
	if len(oc.Deleted) != 0 {
		t.Fatal("exhausted component should delete nothing")
	}
	if len(oc.Removed) != 5 {
		t.Fatalf("removed %d, want whole component", len(oc.Removed))
	}
}

func TestGrowCarveDeadCentre(t *testing.T) {
	g := gen.Path(5)
	alive := make([]bool, 5)
	if GrowCarve(g, 2, 1, 2, alive) != nil {
		t.Fatal("dead centre should return nil")
	}
}

func TestDeriveIntervals(t *testing.T) {
	d := derive(1000, Params{Epsilon: 0.2})
	if d.T != 7 { // ceil(log2(100)) = 7
		t.Fatalf("t = %d, want 7", d.T)
	}
	if len(d.Intervals) != d.T+1 {
		t.Fatalf("intervals = %d", len(d.Intervals))
	}
	// Intervals are disjoint, equal length R, descending, with a_{i} > b_{i+1}.
	for i, iv := range d.Intervals {
		if iv[1]-iv[0]+1 != d.R {
			t.Fatalf("interval %d has length %d, want R=%d", i, iv[1]-iv[0]+1, d.R)
		}
		if i > 0 {
			prev := d.Intervals[i-1]
			if iv[1] >= prev[0] {
				t.Fatalf("intervals %d and %d overlap: %v %v", i-1, i, prev, iv)
			}
		}
	}
	// Last interval is [R+1, 2R].
	last := d.Intervals[len(d.Intervals)-1]
	if last[0] != d.R+1 || last[1] != 2*d.R {
		t.Fatalf("phase-2 interval = %v", last)
	}
}

func TestDeriveSkipPhase2(t *testing.T) {
	d := derive(100000, Params{Epsilon: 0.2, SkipPhase2: true})
	base := derive(100000, Params{Epsilon: 0.2})
	if d.T <= base.T {
		t.Fatalf("covering-mode t = %d should exceed %d", d.T, base.T)
	}
}

func TestChangLiSeparationAndValidity(t *testing.T) {
	cases := []struct {
		name  string
		scale float64
		eps   float64
	}{
		{"paperScale", 1, 0.3},
		{"smallScale", 0.002, 0.3},
	}
	g := gen.Cycle(3000)
	for _, c := range cases {
		for seed := uint64(0); seed < 3; seed++ {
			d := ChangLi(g, Params{Epsilon: c.eps, Seed: seed, Scale: c.scale})
			if ok, u, v := d.ValidateSeparation(g); !ok {
				t.Fatalf("%s seed %d: adjacent clusters at %d-%d", c.name, seed, u, v)
			}
			if d.Rounds <= 0 {
				t.Fatalf("%s: nonpositive rounds", c.name)
			}
			// Every vertex is clustered or unclustered; ids dense.
			for _, cid := range d.ClusterOf {
				if cid < -1 || int(cid) >= d.NumClusters {
					t.Fatalf("%s: bad cluster id %d", c.name, cid)
				}
			}
		}
	}
}

func TestChangLiPaperConstantsQuality(t *testing.T) {
	// With the paper's constants, the unclustered bound eps*n must hold on
	// every trial (that is the whole point of Theorem 1.1). On graphs whose
	// diameter is below R the algorithm degenerates to whole-component
	// clusters with zero deletions, which satisfies the bound exactly.
	eps := 0.25
	gs := []struct {
		name string
	}{{"grid"}, {"cliquepath"}, {"torus"}}
	for _, tc := range gs {
		var g = gen.Grid(30, 30)
		switch tc.name {
		case "cliquepath":
			g = gen.CliquePlusPath(100, 200)
		case "torus":
			g = gen.Torus(20, 30)
		}
		for seed := uint64(0); seed < 10; seed++ {
			d := ChangLi(g, Params{Epsilon: eps, Seed: seed})
			if frac := d.UnclusteredFraction(); frac > eps {
				t.Fatalf("%s seed %d: unclustered fraction %.4f > eps %.2f",
					tc.name, seed, frac, eps)
			}
			if ok, u, v := d.ValidateSeparation(g); !ok {
				t.Fatalf("%s seed %d: adjacent clusters %d-%d", tc.name, seed, u, v)
			}
		}
	}
}

func TestChangLiDeterministic(t *testing.T) {
	g := gen.Cycle(1000)
	p := Params{Epsilon: 0.3, Seed: 42, Scale: 0.005}
	d1 := ChangLi(g, p)
	d2 := ChangLi(g, p)
	for v := range d1.ClusterOf {
		if d1.ClusterOf[v] != d2.ClusterOf[v] {
			t.Fatalf("nondeterministic at vertex %d", v)
		}
	}
	if d1.Rounds != d2.Rounds {
		t.Fatal("round count nondeterministic")
	}
}

func TestChangLiSkipPhase2(t *testing.T) {
	g := gen.Cycle(2000)
	d := ChangLi(g, Params{Epsilon: 0.3, Seed: 1, Scale: 0.002, SkipPhase2: true})
	if ok, u, v := d.ValidateSeparation(g); !ok {
		t.Fatalf("adjacent clusters %d-%d", u, v)
	}
}

func TestChangLiSmallScaleExercisesPhases(t *testing.T) {
	// With a small scale on a long cycle the carve window is well inside the
	// graph, so Phase 1/2 must actually remove and delete vertices.
	g := gen.Cycle(4000)
	d := ChangLi(g, Params{Epsilon: 0.3, Seed: 3, Scale: 0.002})
	if d.NumClusters < 2 {
		t.Fatalf("expected multiple clusters, got %d", d.NumClusters)
	}
}

func TestBlackboxSeparationAndQuality(t *testing.T) {
	g := gen.Cycle(2000)
	for seed := uint64(0); seed < 3; seed++ {
		d := Blackbox(g, BlackboxParams{Epsilon: 0.25, Seed: seed, Scale: 0.01})
		if ok, u, v := d.ValidateSeparation(g); !ok {
			t.Fatalf("seed %d: adjacent clusters %d-%d", seed, u, v)
		}
		if d.Rounds <= 0 {
			t.Fatal("no rounds charged")
		}
	}
}

func TestBlackboxClustersMostVertices(t *testing.T) {
	g := gen.Grid(40, 40)
	d := Blackbox(g, BlackboxParams{Epsilon: 0.3, Seed: 1, Scale: 0.05})
	if frac := d.UnclusteredFraction(); frac > 0.3 {
		t.Fatalf("unclustered fraction %.3f > eps", frac)
	}
}

func TestSequentialLDD(t *testing.T) {
	g := gen.Cycle(500)
	mask := make([]bool, g.N())
	for i := range mask {
		mask[i] = true
	}
	eps := 0.2
	clusters, deleted := SequentialLDD(g, mask, eps)
	// Partition check.
	seen := make([]int, g.N())
	total := 0
	for _, c := range clusters {
		for _, v := range c {
			seen[v]++
			total++
		}
	}
	for _, v := range deleted {
		seen[v]++
		total++
	}
	if total != g.N() {
		t.Fatalf("partition covers %d of %d", total, g.N())
	}
	for v, s := range seen {
		if s != 1 {
			t.Fatalf("vertex %d covered %d times", v, s)
		}
	}
	// Deleted fraction <= eps (the per-cluster boundary is <= eps * cluster).
	if float64(len(deleted)) > eps*float64(g.N())+1 {
		t.Fatalf("deleted %d > eps*n", len(deleted))
	}
	// Diameter bound.
	bound := int(2*math.Log(float64(g.N()))/math.Log1p(eps)) + 2
	for _, c := range clusters {
		if sd := g.StrongDiameter(c); sd == -1 || sd > bound {
			t.Fatalf("cluster diameter %d > %d", sd, bound)
		}
	}
}

func TestRepairDiameter(t *testing.T) {
	// Build a decomposition with one giant cluster (the whole cycle) and
	// repair it down to the ideal bound.
	g := gen.Cycle(1000)
	d := &Decomposition{ClusterOf: make([]int32, g.N()), NumClusters: 1}
	eps := 0.3
	target := 80
	r := RepairDiameter(g, d, eps, target)
	if ok, u, v := r.ValidateSeparation(g); !ok {
		t.Fatalf("repair broke separation at %d-%d", u, v)
	}
	if sd := r.MaxStrongDiameter(g); sd == -1 || sd > target {
		t.Fatalf("post-repair diameter %d > %d", sd, target)
	}
	// The repair deletes at most ~eps/2 of the repaired cluster.
	if frac := r.UnclusteredFraction(); frac > eps {
		t.Fatalf("repair deleted %.3f > eps", frac)
	}
	if r.NumClusters < 2 {
		t.Fatal("giant cluster not split")
	}
}

func TestRepairLeavesSmallClustersAlone(t *testing.T) {
	g := gen.Path(10)
	d := &Decomposition{ClusterOf: make([]int32, 10), NumClusters: 1}
	r := RepairDiameter(g, d, 0.3, 100)
	if r.NumClusters != 1 || r.UnclusteredCount() != 0 {
		t.Fatal("small cluster should be untouched")
	}
}

func BenchmarkElkinNeimanCycle(b *testing.B) {
	g := gen.Cycle(5000)
	for i := 0; i < b.N; i++ {
		_ = ElkinNeiman(g, nil, ENParams{Lambda: 0.2, Seed: uint64(i)})
	}
}

func BenchmarkChangLiCycle(b *testing.B) {
	g := gen.Cycle(3000)
	for i := 0; i < b.N; i++ {
		_ = ChangLi(g, Params{Epsilon: 0.3, Seed: uint64(i), Scale: 0.002})
	}
}

func TestENShiftsClipped(t *testing.T) {
	// Lemma C.1: T_v >= 4 ln(ñ)/λ is reset to 0, so every realized shift
	// sits strictly below the broadcast horizon.
	p := ENParams{Lambda: 0.1, NTilde: 500, Seed: 3}
	shifts, maxT := enShiftsOwned(500, p)
	for v, s := range shifts {
		if s < 0 || s >= maxT {
			t.Fatalf("shift[%d] = %v outside [0, %v)", v, s, maxT)
		}
	}
	// With λ = 4 ln(ñ) / maxT and 500 draws, some reset should occur over
	// a few seeds for large λ; check the reset path executes.
	resets := 0
	for seed := uint64(0); seed < 50; seed++ {
		pp := ENParams{Lambda: 5, NTilde: 4, Seed: seed}
		sh, mt := enShiftsOwned(3, pp)
		for _, s := range sh {
			if s == 0 {
				resets++
			}
		}
		_ = mt
	}
	if resets == 0 {
		t.Log("no zero shifts observed (possible but unlikely); not fatal")
	}
}

// TestChangLiParallelBitIdentical verifies the worker-pool fan-out of the
// per-vertex ball sizes and per-iteration carves: seeded decompositions are
// bit-identical for any worker count.
func TestChangLiParallelBitIdentical(t *testing.T) {
	for _, n := range []int{60, 173} {
		g := gen.Cycle(n)
		for _, seed := range []uint64{1, 5, 23} {
			seq := ChangLi(g, Params{Epsilon: 0.25, Seed: seed, Scale: 0.01, Workers: 1})
			parl := ChangLi(g, Params{Epsilon: 0.25, Seed: seed, Scale: 0.01, Workers: 5})
			if seq.NumClusters != parl.NumClusters || seq.Rounds != parl.Rounds {
				t.Fatalf("n=%d seed=%d: summary mismatch: seq %+v par %+v", n, seed, seq, parl)
			}
			for v := range seq.ClusterOf {
				if seq.ClusterOf[v] != parl.ClusterOf[v] {
					t.Fatalf("n=%d seed=%d: cluster of %d differs: %d vs %d",
						n, seed, v, seq.ClusterOf[v], parl.ClusterOf[v])
				}
			}
		}
	}
}
