package ldd

import (
	"math"

	"repro/internal/graph"
	"repro/internal/local"
)

// This file implements the Miller–Peng–Xu clustering as a CONGEST-model
// protocol, addressing the direction raised in the paper's conclusion
// (Section 6): the LOCAL implementations here exchange label batches of
// unbounded size, but MPX's best-source rule needs only ONE label per
// vertex per round — (source id, value) in O(log n) bits — because a vertex
// only ever relays an improvement of its own best label. The engine's
// CONGEST audit verifies the bound, and a test checks bit-equality with the
// oracle MPX implementation.

// mpxMsg is a single (source, value) label: id + value ≈ 96 bits, within
// the conventional CONGEST budget for the graph sizes exercised.
type mpxMsg label

// SizeBits implements local.Sizer.
func (mpxMsg) SizeBits() int { return 96 }

// mpxMachine keeps only the best label seen, relaying improvements.
type mpxMachine struct {
	degree  int
	horizon int
	best    label
	send    bool
}

func (m *mpxMachine) Round(round int, inbox []local.Message) ([]local.Message, bool) {
	for _, msg := range inbox {
		if msg == nil {
			continue
		}
		l := label(msg.(mpxMsg))
		// Strict improvement, with the oracle's tie-break (smaller source).
		if l.value > m.best.value || (l.value == m.best.value && l.source < m.best.source) {
			m.best = l
			m.send = true
		}
	}
	var out []local.Message
	if m.send {
		m.send = false
		nv := m.best.value - 1
		if nv >= 0 { // labels below 0 can never win anywhere
			out = make([]local.Message, m.degree)
			batch := mpxMsg(label{source: m.best.source, value: nv})
			for i := range out {
				out[i] = batch
			}
		}
	}
	return out, round >= m.horizon
}

// MPXDistributed runs the Miller–Peng–Xu clustering as a CONGEST protocol
// on the engine and returns the result plus engine statistics. Output is
// bit-identical to MPX(g, p) for the same parameters.
func MPXDistributed(g *graph.Graph, p ENParams, sequential bool) (*MPXResult, local.Stats, error) {
	n := g.N()
	shifts, maxT := enShiftsOwned(n, p)
	horizon := int(math.Ceil(maxT)) + 3
	machines := make([]*mpxMachine, n)
	stats, err := local.Run(local.Config{
		Graph: g,
		NewMachine: func(v int) local.Machine {
			m := &mpxMachine{
				degree:  g.Degree(v),
				horizon: horizon,
				best:    label{source: int32(v), value: shifts[v]},
				send:    true,
			}
			machines[v] = m
			return m
		},
		MaxRounds:  horizon + 2,
		Sequential: sequential,
	})
	if err != nil {
		return nil, stats, err
	}
	clusterOf := make([]int32, n)
	for v, m := range machines {
		clusterOf[v] = m.best.source
	}
	res := &MPXResult{}
	g.Edges(func(u, v int) {
		if clusterOf[u] != clusterOf[v] {
			res.CutEdges = append(res.CutEdges, [2]int{u, v})
		}
	})
	num := relabel(clusterOf)
	res.Decomposition = Decomposition{
		ClusterOf:   clusterOf,
		NumClusters: num,
		Rounds:      stats.Rounds,
	}
	return res, stats, nil
}
