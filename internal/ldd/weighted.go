package ldd

import (
	"context"
	"math"

	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/par"
	"repro/internal/xrand"
)

// This file implements the weighted extension of the Theorem 1.1
// decomposition sketched in the "Alternative Approach" discussion at the
// end of Section 4: given vertex weights w'(v), the deleted weight is at
// most an ε fraction of the total weight, with high probability. The
// structure is identical to ChangLi; the three weight-sensitive choices
// are:
//
//   - n_v becomes the ball *weight* (the sampling rate of a vertex is
//     proportional to its own weight relative to its neighborhood weight,
//     mirroring the W(P_C)/W(S_C) rates of Section 4);
//   - Grow-and-Carve deletes the *lightest* layer instead of the smallest;
//   - the quality metric is deleted weight over total weight.

// weightedCarve runs Algorithm 1 with layer weight as the cut criterion,
// gathering layers on the caller's traversal workspace.
func weightedCarve(g *graph.Graph, v int, a, b int, alive []bool, w []int64, ws *graph.Workspace) *CarveOutcome {
	if a < 1 {
		a = 1
	}
	if b < a {
		b = a
	}
	layers := g.BallLayersWithWorkspace(ws, v, b, alive)
	if layers == nil {
		return nil
	}
	if len(layers) <= a {
		var removed []int32
		for _, l := range layers {
			removed = append(removed, l...)
		}
		return &CarveOutcome{Removed: removed, JStar: len(layers)}
	}
	layerWeight := func(j int) int64 {
		var s int64
		for _, u := range layers[j] {
			s += w[u]
		}
		return s
	}
	jStar, best := -1, int64(-1)
	for j := a; j <= b && j < len(layers); j++ {
		lw := layerWeight(j)
		if best == -1 || lw < best {
			best = lw
			jStar = j
		}
	}
	out := &CarveOutcome{JStar: jStar, Deleted: append([]int32(nil), layers[jStar]...)}
	for j := 0; j < jStar; j++ {
		out.Removed = append(out.Removed, layers[j]...)
	}
	return out
}

// ChangLiWeighted computes a low-diameter decomposition where the deleted
// *weight* is at most ε·Σw with high probability. Weights must be
// nonnegative; nil weights degrade to ChangLi. Zero-weight vertices are
// never sampled as centres but are clustered or deleted like any other.
func ChangLiWeighted(g *graph.Graph, w []int64, p Params) *Decomposition {
	d, _ := ChangLiWeightedCtx(context.Background(), g, w, p)
	return d
}

// ChangLiWeightedCtx is ChangLiWeighted with cancellation (see ChangLiCtx).
func ChangLiWeightedCtx(ctx context.Context, g *graph.Graph, w []int64, p Params) (*Decomposition, error) {
	if w == nil {
		return ChangLiCtx(ctx, g, p)
	}
	n := g.N()
	d := derive(n, p)
	eps := p.Epsilon
	if eps <= 0 {
		eps = 0.5
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	removed := make([]bool, n)
	deletedMark := make([]bool, n)
	var rc local.RoundCounter

	// Ball weights at radius 4tR (component weight shortcut, as in ChangLi).
	rc.StartPhase()
	rc.Charge(min(d.EstimateRadius, n))
	rc.EndPhase()
	ballW, err := ballWeights(ctx, g, alive, d.EstimateRadius, w, p.Workers)
	if err != nil {
		return nil, err
	}

	workers := par.Workers(p.Workers)
	wss := acquireGraphWorkspaces(workers)
	defer releaseGraphWorkspaces(wss)
	var centres []int32
	iterations := d.T
	if !p.SkipPhase2 {
		iterations = d.T + 1
	}
	for i := 1; i <= iterations; i++ {
		interval := d.Intervals[i-1]
		isPhase2 := !p.SkipPhase2 && i == d.T+1
		rc.StartPhase()
		centres = centres[:0]
		for v := 0; v < n; v++ {
			if !alive[v] || w[v] <= 0 {
				continue
			}
			// p_{v,i} = 2^i * w(v) * ln ñ / W(N^{4tR}(v)): the per-unit-weight
			// analogue of the ChangLi rate.
			prob := math.Exp2(float64(i)) * float64(w[v]) * d.LnTilde / math.Max(float64(ballW[v]), 1)
			if isPhase2 {
				prob *= math.Log(20 / eps)
			}
			if prob > 1 {
				prob = 1
			}
			if xrand.Stream(p.Seed, v, uint64(0x3e1+i)).Bernoulli(prob) {
				centres = append(centres, int32(v))
			}
		}
		outcomes := make([]*CarveOutcome, len(centres))
		err := par.ForEachCtx(ctx, workers, len(centres), func(wk, j int) {
			outcomes[j] = weightedCarve(g, int(centres[j]), interval[0], interval[1], alive, w, wss[wk])
		})
		if err != nil {
			return nil, err
		}
		for _, oc := range outcomes {
			if oc != nil {
				rc.Charge(interval[1])
			}
		}
		rc.EndPhase()
		applyCarves(outcomes, alive, removed, deletedMark)
	}

	en, err := ElkinNeimanCtx(ctx, g, alive, ENParams{
		Lambda: eps / 10,
		NTilde: d.NTilde,
		Seed:   xrand.New(p.Seed).Split(phase3Label + 1).Uint64(),
	})
	if err != nil {
		return nil, err
	}
	rc.Charge(en.Rounds)

	clusterOf := make([]int32, n)
	for v := range clusterOf {
		clusterOf[v] = Unclustered
	}
	comp, count := g.ComponentsAlive(removed)
	for v := 0; v < n; v++ {
		if removed[v] {
			clusterOf[v] = comp[v]
		}
	}
	for v := 0; v < n; v++ {
		if alive[v] && en.ClusterOf[v] >= 0 {
			clusterOf[v] = int32(count) + en.ClusterOf[v]
		}
	}
	num := relabel(clusterOf)
	return &Decomposition{ClusterOf: clusterOf, NumClusters: num, Rounds: rc.Total()}, nil
}

// ballWeights computes W(N^radius(v)) in the alive-induced subgraph, with
// the whole-component shortcut of ballSizes and the same worker fan-out.
func ballWeights(ctx context.Context, g *graph.Graph, alive []bool, radius int, w []int64, workers int) ([]int64, error) {
	n := g.N()
	out := make([]int64, n)
	cws := graph.AcquireWorkspace()
	defer graph.ReleaseWorkspace(cws)
	comp, count := g.ComponentsAliveWithWorkspace(cws, alive)
	compW := make([]int64, count)
	compSize := make([]int, count)
	for v := 0; v < n; v++ {
		if comp[v] >= 0 {
			compW[comp[v]] += w[v]
			compSize[comp[v]]++
		}
	}
	workers = par.Workers(workers)
	wss := acquireGraphWorkspaces(workers)
	defer releaseGraphWorkspaces(wss)
	err := par.ForEachCtx(ctx, workers, n, func(wk, v int) {
		if alive != nil && !alive[v] {
			return
		}
		c := comp[v]
		if radius >= compSize[c] {
			out[v] = compW[c]
			return
		}
		var s int64
		for _, u := range g.BallAliveWithWorkspace(wss[wk], v, radius, alive) {
			s += w[u]
		}
		out[v] = s
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DeletedWeight returns the total weight of unclustered vertices — the
// quantity ChangLiWeighted bounds by ε·Σw.
func (dec *Decomposition) DeletedWeight(w []int64) int64 {
	var s int64
	for v, c := range dec.ClusterOf {
		if c == Unclustered && v < len(w) {
			s += w[v]
		}
	}
	return s
}
