package ldd

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/xrand"
)

func TestWeightedNilFallsBack(t *testing.T) {
	g := gen.Cycle(300)
	p := Params{Epsilon: 0.3, Seed: 1}
	dw := ChangLiWeighted(g, nil, p)
	du := ChangLi(g, p)
	for v := range dw.ClusterOf {
		if (dw.ClusterOf[v] == Unclustered) != (du.ClusterOf[v] == Unclustered) {
			t.Fatal("nil-weight run diverged from unweighted")
		}
	}
}

func TestWeightedSeparationAndBound(t *testing.T) {
	g := gen.Cycle(1500)
	rng := xrand.New(4)
	w := make([]int64, g.N())
	var total int64
	for i := range w {
		w[i] = 1 + int64(rng.Intn(9))
		total += w[i]
	}
	eps := 0.25
	for seed := uint64(0); seed < 5; seed++ {
		d := ChangLiWeighted(g, w, Params{Epsilon: eps, Seed: seed})
		if ok, u, v := d.ValidateSeparation(g); !ok {
			t.Fatalf("seed %d: adjacent clusters %d-%d", seed, u, v)
		}
		if del := d.DeletedWeight(w); float64(del) > eps*float64(total) {
			t.Fatalf("seed %d: deleted weight %d > eps * total (%d)", seed, del, total)
		}
	}
}

func TestWeightedProtectsHeavyVertices(t *testing.T) {
	// A long cycle with a few very heavy vertices and a small carve scale:
	// the deleted weight must stay within the eps budget even though
	// unweighted carving would delete vertices blindly.
	g := gen.Cycle(2000)
	w := make([]int64, g.N())
	var total int64
	for i := range w {
		w[i] = 1
		if i%100 == 0 {
			w[i] = 500
		}
		total += w[i]
	}
	eps := 0.3
	for seed := uint64(0); seed < 3; seed++ {
		d := ChangLiWeighted(g, w, Params{Epsilon: eps, Seed: seed, Scale: 0.002})
		if ok, _, _ := d.ValidateSeparation(g); !ok {
			t.Fatalf("seed %d: separation broken", seed)
		}
		if del := d.DeletedWeight(w); float64(del) > eps*float64(total) {
			t.Fatalf("seed %d: deleted weight %d > %.0f", seed, del, eps*float64(total))
		}
	}
}

func TestWeightedZeroWeights(t *testing.T) {
	// All-zero weights: nothing is sampled; Phase 3 still runs and the
	// result is a valid decomposition with zero deleted weight trivially.
	g := gen.Grid(10, 10)
	w := make([]int64, g.N())
	d := ChangLiWeighted(g, w, Params{Epsilon: 0.3, Seed: 2})
	if ok, _, _ := d.ValidateSeparation(g); !ok {
		t.Fatal("separation broken")
	}
	if d.DeletedWeight(w) != 0 {
		t.Fatal("zero weights deleted nonzero weight")
	}
}

func TestWeightedCarvePicksLightestLayer(t *testing.T) {
	// Star from a leaf: layer 1 = {center} can be heavy, layer 2 = other
	// leaves light. The weighted carve must cut the cheaper layer 2 even
	// though it has more vertices.
	g := gen.Star(20)
	w := make([]int64, g.N())
	w[0] = 1000 // heavy center
	for i := 1; i < g.N(); i++ {
		w[i] = 1
	}
	alive := make([]bool, g.N())
	for i := range alive {
		alive[i] = true
	}
	oc := weightedCarve(g, 1, 1, 2, alive, w, graph.NewWorkspace(g.N()))
	if oc.JStar != 2 {
		t.Fatalf("jStar = %d, want 2 (the light layer)", oc.JStar)
	}
	for _, v := range oc.Deleted {
		if v == 0 {
			t.Fatal("heavy center deleted")
		}
	}
}

// TestChangLiWeightedParallelBitIdentical mirrors the unweighted
// cross-check for the weighted fan-out (ball weights + per-iteration
// carves): seeded runs are bit-identical for any worker count.
func TestChangLiWeightedParallelBitIdentical(t *testing.T) {
	g := gen.Cycle(150)
	w := make([]int64, g.N())
	for i := range w {
		w[i] = int64(1 + i%5)
	}
	for _, seed := range []uint64{3, 17} {
		seq := ChangLiWeighted(g, w, Params{Epsilon: 0.25, Seed: seed, Scale: 0.01, Workers: 1})
		parl := ChangLiWeighted(g, w, Params{Epsilon: 0.25, Seed: seed, Scale: 0.01, Workers: 5})
		if seq.NumClusters != parl.NumClusters || seq.Rounds != parl.Rounds {
			t.Fatalf("seed=%d: summary mismatch: seq %+v par %+v", seed, seq, parl)
		}
		for v := range seq.ClusterOf {
			if seq.ClusterOf[v] != parl.ClusterOf[v] {
				t.Fatalf("seed=%d: cluster of %d differs: %d vs %d", seed, v, seq.ClusterOf[v], parl.ClusterOf[v])
			}
		}
	}
}
