package ldd

import (
	"context"
	"math"
	"strconv"

	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/xrand"
)

// phase3Label salts the Phase-3 Elkin–Neiman seed so it is independent of
// the per-vertex sampling streams.
const phase3Label = 0x9a5e3

// noopPhase is the end-func for iterations that are not being traced.
var noopPhase = func() {}

// Params configures the Chang–Li Theorem 1.1 decomposition.
type Params struct {
	// Epsilon is the target bound on the unclustered fraction.
	Epsilon float64
	// NTilde is the globally known polynomial upper bound ñ >= n (Section
	// 3 assumes |V| <= ñ <= |V|^c). Zero means n.
	NTilde int
	// Seed drives all randomness.
	Seed uint64
	// Scale multiplies the paper's radius constant R = ⌈200 t ln(ñ)/ε⌉.
	// The paper's constants make R exceed the diameter of any laptop-scale
	// graph (every ball becomes the whole graph); Scale < 1 preserves the
	// structural invariants (equal-length disjoint intervals, the 2^i
	// sampling schedule) at radii where the phase structure is actually
	// exercised. Scale <= 0 means 1 (the paper's constants).
	Scale float64
	// SkipPhase2 replaces Phase 2 by extending Phase 1 to
	// t = ⌈log(20/ε) + log log ñ⌉ iterations, as the covering algorithm
	// (Section 5) requires; also used by the ablation experiments.
	SkipPhase2 bool
	// Workers bounds the worker pool for the embarrassingly parallel steps
	// (per-vertex ball sizes, per-centre carves within one iteration). <= 0
	// means GOMAXPROCS; 1 forces the sequential path. Results are
	// bit-identical for every worker count: tasks are merged in input
	// order and all randomness is derived from (Seed, vertex, label).
	Workers int
}

func (p Params) scale() float64 {
	if p.Scale <= 0 {
		return 1
	}
	return p.Scale
}

// Derived returns the derived parameters (t, R, sampling horizon) for
// inspection by tests and the experiment harness.
type Derived struct {
	T       int // number of Phase-1 iterations
	R       int // interval length
	NTilde  int
	LnTilde float64
	// Intervals[i] = [a, b] for iteration i+1 (paper's I_{i+1}).
	Intervals [][2]int
	// EstimateRadius is the radius 4tR used to compute n_v.
	EstimateRadius int
}

// derive computes t, R and the interval structure of Section 3.1.
func derive(n int, p Params) Derived {
	nTilde := p.NTilde
	if nTilde < n {
		nTilde = n
	}
	eps := p.Epsilon
	if eps <= 0 {
		eps = 0.5
	}
	if eps > 1 {
		eps = 1
	}
	t := int(math.Ceil(math.Log2(20 / eps)))
	if p.SkipPhase2 {
		// Section 5: t = ⌈log ln n + log(1/ε) + 8⌉ kills the need for the
		// Phase-2 shortcut at the cost of more iterations.
		t = int(math.Ceil(math.Log2(math.Log(float64(nTilde)+3)) + math.Log2(1/eps) + 8))
	}
	if t < 1 {
		t = 1
	}
	r := int(math.Ceil(200 * float64(t) * lnTilde(nTilde) / eps * p.scale()))
	if r < 2 {
		r = 2
	}
	d := Derived{T: t, R: r, NTilde: nTilde, LnTilde: lnTilde(nTilde), EstimateRadius: 4 * t * r}
	// I_i = [a_i, b_i] = [(t-i+2)R + 1, (t-i+3)R], i = 1..t+1; intervals are
	// disjoint and a_{i-1} >= b_i as the analysis requires.
	for i := 1; i <= t+1; i++ {
		a := (t-i+2)*r + 1
		b := (t - i + 3) * r
		d.Intervals = append(d.Intervals, [2]int{a, b})
	}
	return d
}

// ballSizes computes n_v = |N^radius(v)| in the alive-induced subgraph. When
// the radius reaches the whole component, the component size is used, which
// avoids the O(n·m) blowup at paper-scale radii. The per-vertex ball
// queries are independent and fan out across the worker pool, each worker
// on its own traversal workspace; cancelling ctx stops the fan-out between
// tasks.
func ballSizes(ctx context.Context, g *graph.Graph, alive []bool, radius, workers int) ([]int, error) {
	n := g.N()
	sizes := make([]int, n)
	workers = par.Workers(workers)
	pw := graph.AcquireParWorkspace()
	defer graph.ReleaseParWorkspace(pw)
	comp, count := graph.ParComponents(pw, g, alive, workers)
	compSize := make([]int, count)
	for v := 0; v < n; v++ {
		if comp[v] >= 0 {
			compSize[comp[v]]++
		}
	}
	wss := acquireGraphWorkspaces(workers)
	defer releaseGraphWorkspaces(wss)
	// Per-vertex costs are heavily skewed (component shortcut vs real
	// ball): chunked grabbing keeps the scheduling overhead off the cheap
	// vertices without giving up the balance.
	err := par.ForEachChunkCtx(ctx, workers, n, 32, func(w, v int) {
		if alive != nil && !alive[v] {
			return
		}
		// A radius at least the component size always covers the component.
		c := comp[v]
		if radius >= compSize[c] {
			sizes[v] = compSize[c]
			return
		}
		sizes[v] = len(g.BallAliveWithWorkspace(wss[w], v, radius, alive))
	})
	if err != nil {
		return nil, err
	}
	return sizes, nil
}

// ChangLi runs the Theorem 1.1 low-diameter decomposition: Phase 1 (t
// iterations of sampled ball-growing-and-carving with doubling rates),
// Phase 2 (one boosted iteration, unless SkipPhase2), and Phase 3
// (Elkin–Neiman with λ = ε/10 on the residual). The bound of ε|V| on
// unclustered vertices holds with probability 1 - 1/poly(n); every cluster
// has weak diameter O(t·R).
func ChangLi(g *graph.Graph, p Params) *Decomposition {
	d, _ := ChangLiCtx(context.Background(), g, p)
	return d
}

// ChangLiCtx is ChangLi with cancellation: the context is checked between
// phases and between the independent tasks of each fan-out (never
// per-vertex inside a traversal), so a cancelled or deadline-expired run
// returns ctx.Err() promptly, releases its pooled workspaces, and leaves
// no goroutines behind.
func ChangLiCtx(ctx context.Context, g *graph.Graph, p Params) (*Decomposition, error) {
	n := g.N()
	d := derive(n, p)
	eps := p.Epsilon
	if eps <= 0 {
		eps = 0.5
	}
	// Trace phases mirror the paper's structure: the Θ(log ñ) preparation
	// (n_v estimation), one phase per carve iteration, the Phase-3
	// Elkin–Neiman pass, and assembly. Timings live only in the trace
	// carried by ctx — the Decomposition itself stays bit-identical whether
	// or not a trace is attached. tr is nil (and every stamp is a no-op)
	// for untraced runs.
	tr := obs.FromContext(ctx)

	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	removed := make([]bool, n)
	deletedMark := make([]bool, n)

	var rc local.RoundCounter

	// n_v estimation: one gather of radius 4tR (chargeable as part of the
	// first phase's gathering in a real implementation; we charge it
	// explicitly).
	rc.StartPhase()
	rc.Charge(min(d.EstimateRadius, n))
	rc.EndPhase()
	endEstimate := tr.StartPhase("estimate")
	nv, err := ballSizes(ctx, g, alive, d.EstimateRadius, p.Workers)
	endEstimate()
	if err != nil {
		return nil, err
	}

	workers := par.Workers(p.Workers)
	wss := acquireGraphWorkspaces(workers)
	defer releaseGraphWorkspaces(wss)
	var centres []int32
	iterations := d.T
	if !p.SkipPhase2 {
		iterations = d.T + 1 // Phase 2 is the (t+1)-st carve with boosted rate
	}
	for i := 1; i <= iterations; i++ {
		interval := d.Intervals[i-1]
		isPhase2 := !p.SkipPhase2 && i == d.T+1
		endCarve := noopPhase
		if tr != nil {
			name := "carve-" + strconv.Itoa(i)
			if isPhase2 {
				name = "phase2-carve"
			}
			endCarve = tr.StartPhase(name)
		}
		rc.StartPhase()
		// The centres of one iteration all carve against the same snapshot
		// of the residual graph, so their executions are independent: sample
		// them first, then fan the carves out and merge in vertex order.
		centres = centres[:0]
		for v := 0; v < n; v++ {
			if !alive[v] {
				continue
			}
			// Sampling probability p_{v,i} = 2^i ln(ñ) / n_v, with the extra
			// ln(20/ε) boost in Phase 2 (Section 3.1.3).
			prob := math.Exp2(float64(i)) * d.LnTilde / float64(max(nv[v], 1))
			if isPhase2 {
				prob *= math.Log(20 / eps)
			}
			if prob > 1 {
				prob = 1
			}
			if xrand.Stream(p.Seed, v, uint64(0xca10+i)).Bernoulli(prob) {
				centres = append(centres, int32(v))
			}
		}
		outcomes := make([]*CarveOutcome, len(centres))
		if workers > 1 && len(centres) < workers {
			// Too few centres to fill the pool from the outside: run them
			// in order and parallelize each carve's frontier expansion
			// instead. Either path yields bit-identical outcomes.
			pw := graph.AcquireParWorkspace()
			for j := range centres {
				if err := ctx.Err(); err != nil {
					graph.ReleaseParWorkspace(pw)
					endCarve()
					return nil, err
				}
				outcomes[j] = GrowCarvePar(g, int(centres[j]), interval[0], interval[1], alive, pw, workers)
			}
			graph.ReleaseParWorkspace(pw)
		} else if err := par.ForEachCtx(ctx, workers, len(centres), func(w, j int) {
			outcomes[j] = GrowCarveWS(g, int(centres[j]), interval[0], interval[1], alive, wss[w])
		}); err != nil {
			endCarve()
			return nil, err
		}
		for _, oc := range outcomes {
			if oc != nil {
				rc.Charge(interval[1])
			}
		}
		rc.EndPhase()
		applyCarves(outcomes, alive, removed, deletedMark)
		endCarve()
	}

	// Phase 3: Elkin–Neiman with λ = ε/10 on the residual graph.
	endP3 := tr.StartPhase("phase3-en")
	en, err := ElkinNeimanCtx(ctx, g, alive, ENParams{
		Lambda:  eps / 10,
		NTilde:  d.NTilde,
		Seed:    xrand.New(p.Seed).Split(phase3Label).Uint64(),
		Workers: p.Workers,
	})
	endP3()
	if err != nil {
		return nil, err
	}
	rc.Charge(en.Rounds)

	// Assemble: carve clusters are the connected components of the removed
	// set (see applyCarves for why they are mutually non-adjacent and
	// non-adjacent to the residual); Phase-3 clusters follow with offset
	// ids; everything else is unclustered.
	endAssemble := tr.StartPhase("assemble")
	defer endAssemble()
	clusterOf := make([]int32, n)
	for v := range clusterOf {
		clusterOf[v] = Unclustered
	}
	pw := graph.AcquireParWorkspace()
	comp, count := graph.ParComponents(pw, g, removed, workers)
	for v := 0; v < n; v++ {
		if removed[v] {
			clusterOf[v] = comp[v]
		}
	}
	graph.ReleaseParWorkspace(pw)
	for v := 0; v < n; v++ {
		if alive[v] && en.ClusterOf[v] >= 0 {
			clusterOf[v] = int32(count) + en.ClusterOf[v]
		}
	}
	num := relabel(clusterOf)
	return &Decomposition{
		ClusterOf:   clusterOf,
		NumClusters: num,
		Rounds:      rc.Total(),
	}, nil
}
