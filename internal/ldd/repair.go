package ldd

import (
	"context"
	"math"

	"repro/internal/graph"
)

// SequentialLDD is the classic centralized ball-growing decomposition used
// as the "brute force" step in the proof of Theorem 1.1: repeatedly grow a
// ball from an arbitrary remaining vertex until the next layer would grow
// it by less than a (1+ε) factor, carve the ball as a cluster (strong
// diameter ≤ 2·log_{1+ε} n = O(log n / ε)), and delete the boundary layer
// (≤ ε fraction of the cluster, so ≤ ε|V| in total). Deterministic.
//
// The mask selects the vertex set to decompose; it is not modified.
// Returns the clusters and the deleted vertices.
func SequentialLDD(g *graph.Graph, mask []bool, epsilon float64) (clusters [][]int32, deleted []int32) {
	if epsilon <= 0 {
		epsilon = 0.5
	}
	ws := graph.AcquireWorkspace()
	defer graph.ReleaseWorkspace(ws)
	alive := append([]bool(nil), mask...)
	for v := 0; v < g.N(); v++ {
		if !alive[v] {
			continue
		}
		// Grow until the next layer is small relative to the ball.
		layers := g.BallLayersWithWorkspace(ws, v, g.N(), alive)
		ballSize := 0
		j := 0
		for ; j < len(layers); j++ {
			next := 0
			if j+1 < len(layers) {
				next = len(layers[j+1])
			}
			ballSize += len(layers[j])
			if float64(next) <= epsilon*float64(ballSize) {
				break
			}
		}
		var cluster []int32
		for l := 0; l <= j && l < len(layers); l++ {
			for _, u := range layers[l] {
				cluster = append(cluster, u)
				alive[u] = false
			}
		}
		if j+1 < len(layers) {
			for _, u := range layers[j+1] {
				deleted = append(deleted, u)
				alive[u] = false
			}
		}
		clusters = append(clusters, cluster)
	}
	return clusters, deleted
}

// RepairDiameter implements the diameter cleanup from the proof of Theorem
// 1.1: clusters whose strong diameter exceeds target are re-decomposed
// locally with SequentialLDD(ε/2), replacing the big cluster by the new
// small-diameter clusters and unclustering the (≤ ε/2 fraction) boundary
// vertices. target <= 0 means the ideal bound 2·log_{1+ε/2}(ñ).
func RepairDiameter(g *graph.Graph, d *Decomposition, epsilon float64, target int) *Decomposition {
	out, _ := RepairDiameterCtx(context.Background(), g, d, epsilon, target)
	return out
}

// RepairDiameterCtx is RepairDiameter with cancellation: the context is
// checked once per cluster (each cluster repair is a bounded local
// recomputation).
func RepairDiameterCtx(ctx context.Context, g *graph.Graph, d *Decomposition, epsilon float64, target int) (*Decomposition, error) {
	if epsilon <= 0 {
		epsilon = 0.5
	}
	if target <= 0 {
		target = int(math.Ceil(2 * math.Log(float64(len(d.ClusterOf))+3) / math.Log1p(epsilon/2)))
	}
	out := &Decomposition{
		ClusterOf: append([]int32(nil), d.ClusterOf...),
		Rounds:    d.Rounds, // local recomputation is free in LOCAL
	}
	nextID := int32(0)
	mask := make([]bool, g.N())
	done := ctx.Done()
	for _, cluster := range d.Clusters() {
		if done != nil {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		needsRepair := false
		if len(cluster) > 1 {
			sd := g.StrongDiameter(cluster)
			needsRepair = sd < 0 || sd > target
		}
		if !needsRepair {
			id := nextID
			nextID++
			for _, v := range cluster {
				out.ClusterOf[v] = id
			}
			continue
		}
		for _, v := range cluster {
			mask[v] = true
		}
		subClusters, dead := SequentialLDD(g, mask, epsilon/2)
		for _, v := range cluster {
			mask[v] = false
		}
		for _, sc := range subClusters {
			id := nextID
			nextID++
			for _, v := range sc {
				out.ClusterOf[v] = id
			}
		}
		for _, v := range dead {
			out.ClusterOf[v] = Unclustered
		}
	}
	out.NumClusters = int(nextID)
	return out, nil
}
