package ldd

import (
	"context"
	"math"

	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/xrand"
)

// BlackboxParams configures the Section 1.6 construction of Coiteux-Roy et
// al., which turns any (1/2, g(n)) low-diameter decomposition into an
// (ε, O(g(n)/ε)) one in O((f(n)+g(n))·log(1/ε)/ε) rounds — improving the
// log³(1/ε) factor of Theorem 1.1 to log(1/ε).
type BlackboxParams struct {
	// Epsilon is the target unclustered fraction.
	Epsilon float64
	// NTilde is the known upper bound on n; zero means n.
	NTilde int
	// Seed drives all randomness.
	Seed uint64
	// Scale is forwarded to the inner ChangLi(1/2) runs.
	Scale float64
	// UseElkinNeimanBase swaps the inner whp base (ChangLi at ε = 1/2) for
	// plain Elkin–Neiman — the in-expectation ablation.
	UseElkinNeimanBase bool
}

// Blackbox runs the boost:
//
//  1. run the (1/2, O(log n)) base decomposition on the power graph G^k of
//     the remaining vertices, k = Θ(1/ε); its clusters are > k-hop
//     separated in G;
//  2. each cluster grows a ball in G for ⌊k/2⌋ hops and deletes its
//     thinnest layer (≤ 2/k ≈ O(ε) of the ball); the ball interior is
//     carved out as a final cluster;
//  3. repeat on the unclustered remainder O(log(1/ε)) times; whatever is
//     left at the end (≤ O(εn) in expectation/whp, per the proof sketch)
//     is deleted.
func Blackbox(g *graph.Graph, p BlackboxParams) *Decomposition {
	d, _ := BlackboxCtx(context.Background(), g, p)
	return d
}

// BlackboxCtx is Blackbox with cancellation: the context is checked once
// per repetition, per inner base decomposition, and per carved cluster.
func BlackboxCtx(ctx context.Context, g *graph.Graph, p BlackboxParams) (*Decomposition, error) {
	n := g.N()
	eps := p.Epsilon
	if eps <= 0 {
		eps = 0.5
	}
	if eps > 1 {
		eps = 1
	}
	nTilde := p.NTilde
	if nTilde < n {
		nTilde = n
	}
	k := int(math.Ceil(2 / eps))
	if k < 2 {
		k = 2
	}
	reps := int(math.Ceil(math.Log2(1/eps))) + 1
	if reps < 1 {
		reps = 1
	}

	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	clusterOf := make([]int32, n)
	for i := range clusterOf {
		clusterOf[i] = Unclustered
	}
	nextID := int32(0)
	var rc local.RoundCounter
	rootRNG := xrand.New(p.Seed)

	gws := graph.AcquireWorkspace()
	defer graph.ReleaseWorkspace(gws)
	var aliveList, back, seedSet []int32
	done := ctx.Done()
	for rep := 0; rep < reps; rep++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Materialize the alive-induced subgraph and its k-th power.
		aliveList = aliveList[:0]
		for v := 0; v < n; v++ {
			if alive[v] {
				aliveList = append(aliveList, int32(v))
			}
		}
		if len(aliveList) == 0 {
			break
		}
		// sub aliases the workspace's Induced buffers; it is consumed by
		// PowerWithWorkspace (which only touches the traversal buffers)
		// before any other Induced call can clobber it. back is copied
		// because the ball gathers below also run on gws.
		sub, backAlias := g.InducedWithWorkspace(gws, aliveList)
		back = append(back[:0], backAlias...)
		power := sub.PowerWithWorkspace(gws, k)
		rc.Charge(k) // simulating one power-graph round costs k rounds

		// Base (1/2, O(log n)) decomposition on the power graph.
		seed := rootRNG.Split(uint64(rep) + 0xb1ac).Uint64()
		var base *Decomposition
		var err error
		if p.UseElkinNeimanBase {
			base, err = ElkinNeimanCtx(ctx, power, nil, ENParams{Lambda: 0.5, NTilde: nTilde, Seed: seed})
		} else {
			base, err = ChangLiCtx(ctx, power, Params{Epsilon: 0.5, NTilde: nTilde, Seed: seed, Scale: p.Scale})
		}
		if err != nil {
			return nil, err
		}
		rc.Charge(base.Rounds * k) // power-graph rounds simulated in G

		// Ball-grow each base cluster ⌊k/2⌋ hops in G (clusters are > k
		// apart in G, so the grown balls stay disjoint) and carve.
		grow := k / 2
		if grow < 1 {
			grow = 1
		}
		rc.StartPhase()
		carved := 0
		for _, cluster := range base.Clusters() {
			if done != nil {
				select {
				case <-done:
					return nil, ctx.Err()
				default:
				}
			}
			// Map power-graph ids back to g's ids.
			seedSet = seedSet[:0]
			for _, v := range cluster {
				seedSet = append(seedSet, back[v])
			}
			layers := g.BallLayersFromSetWithWorkspace(gws, seedSet, grow, alive)
			rc.Charge(grow)
			// Find the thinnest layer among 1..grow; carve below it.
			jStar, best := -1, -1
			for j := 1; j < len(layers); j++ {
				if best == -1 || len(layers[j]) < best {
					best = len(layers[j])
					jStar = j
				}
			}
			if jStar == -1 {
				jStar = len(layers) // component exhausted: keep everything
			}
			id := nextID
			nextID++
			for j := 0; j < jStar && j < len(layers); j++ {
				for _, v := range layers[j] {
					clusterOf[v] = id
					alive[v] = false
					carved++
				}
			}
			if jStar < len(layers) {
				for _, v := range layers[jStar] {
					// Deleted layer: permanently unclustered.
					alive[v] = false
					carved++
				}
			}
		}
		rc.EndPhase()
		if carved == 0 {
			break // nothing progresses (e.g. base clustered nothing)
		}
	}
	// Whatever is still alive after the repetitions is deleted.
	num := relabel(clusterOf)
	return &Decomposition{ClusterOf: clusterOf, NumClusters: num, Rounds: rc.Total()}, nil
}
