package ldd

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
)

func TestMPXDistributedMatchesOracle(t *testing.T) {
	graphs := []*graph.Graph{
		gen.Cycle(80),
		gen.Grid(9, 9),
		gen.CliquePlusPath(12, 20),
		gen.Torus(8, 8),
	}
	for gi, g := range graphs {
		for seed := uint64(0); seed < 4; seed++ {
			p := ENParams{Lambda: 0.25, Seed: seed}
			oracle := MPX(g, p)
			dist, stats, err := MPXDistributed(g, p, seed%2 == 0)
			if err != nil {
				t.Fatalf("graph %d seed %d: %v", gi, seed, err)
			}
			for v := range oracle.ClusterOf {
				if oracle.ClusterOf[v] != dist.ClusterOf[v] {
					t.Fatalf("graph %d seed %d: vertex %d oracle=%d dist=%d",
						gi, seed, v, oracle.ClusterOf[v], dist.ClusterOf[v])
				}
			}
			if len(oracle.CutEdges) != len(dist.CutEdges) {
				t.Fatalf("graph %d seed %d: cut edges %d vs %d",
					gi, seed, len(oracle.CutEdges), len(dist.CutEdges))
			}
			if stats.Messages == 0 {
				t.Fatal("no messages exchanged")
			}
		}
	}
}

func TestMPXDistributedIsCongest(t *testing.T) {
	// The whole point of the single-label protocol: every message fits the
	// O(log n) CONGEST budget (Section 6's extension direction).
	g := gen.Torus(12, 12)
	_, stats, err := MPXDistributed(g, ENParams{Lambda: 0.2, Seed: 5}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.CongestOK {
		t.Fatalf("MPX protocol exceeded the CONGEST budget: max %d bits", stats.MaxMessageBits)
	}
	if stats.MaxMessageBits != 96 {
		t.Fatalf("message size = %d bits, want 96", stats.MaxMessageBits)
	}
}

func TestMPXDistributedExecutorsAgree(t *testing.T) {
	g := gen.Grid(10, 10)
	p := ENParams{Lambda: 0.3, Seed: 7}
	seq, _, err1 := MPXDistributed(g, p, true)
	par, _, err2 := MPXDistributed(g, p, false)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for v := range seq.ClusterOf {
		if seq.ClusterOf[v] != par.ClusterOf[v] {
			t.Fatalf("executors disagree at %d", v)
		}
	}
}
