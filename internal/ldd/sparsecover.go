package ldd

import (
	"context"
	"math"

	"repro/internal/graph"
	"repro/internal/hypergraph"
)

// Cover is the output of the Lemma C.2 sparse-cover decomposition: a family
// of (possibly overlapping) clusters such that every hyperedge of the input
// hypergraph lies entirely inside at least one cluster, and each vertex's
// cluster multiplicity is dominated by Geometric(e^-lambda) + ñ^-2.
type Cover struct {
	// Clusters[i] lists the member vertices of cluster i (sorted).
	Clusters [][]int32
	// MemberOf[v] lists the cluster ids containing v.
	MemberOf [][]int32
	// Rounds is the LOCAL round complexity charged.
	Rounds int
}

// Multiplicity returns the number of clusters containing v.
func (c *Cover) Multiplicity(v int) int { return len(c.MemberOf[v]) }

// MaxMultiplicity returns the largest multiplicity over vertices.
func (c *Cover) MaxMultiplicity() int {
	m := 0
	for v := range c.MemberOf {
		if len(c.MemberOf[v]) > m {
			m = len(c.MemberOf[v])
		}
	}
	return m
}

// MeanMultiplicity returns the average multiplicity over alive vertices.
func (c *Cover) MeanMultiplicity() float64 {
	total, count := 0, 0
	for v := range c.MemberOf {
		total += len(c.MemberOf[v])
		count++
	}
	if count == 0 {
		return 0
	}
	return float64(total) / float64(count)
}

// MaxWeakDiameter returns the max weak diameter of the clusters in g.
func (c *Cover) MaxWeakDiameter(g *graph.Graph) int {
	best := 0
	for _, cl := range c.Clusters {
		wd := g.WeakDiameter(cl)
		if wd == -1 {
			return -1
		}
		if wd > best {
			best = wd
		}
	}
	return best
}

// SparseCover runs the Lemma C.2 variant of the exponential-shift
// decomposition on the alive-induced subgraph of g: no vertex is deleted;
// instead every vertex joins the cluster of every source whose shifted
// value comes within 1 of its best. For any hypergraph h whose hyperedges
// lie inside the alive set, every hyperedge is fully contained in the
// cluster of the source maximizing the best member value (verified by
// VerifyCover). Each cluster has weak diameter at most 8 ln(ñ)/lambda.
func SparseCover(g *graph.Graph, alive []bool, p ENParams) *Cover {
	ws := AcquireWorkspace()
	c := SparseCoverWS(g, alive, p, ws)
	ReleaseWorkspace(ws)
	return c
}

// SparseCoverCtx is SparseCover with cancellation (see ChangLiCtx).
func SparseCoverCtx(ctx context.Context, g *graph.Graph, alive []bool, p ENParams) (*Cover, error) {
	ws := AcquireWorkspace()
	defer ReleaseWorkspace(ws)
	return SparseCoverWSCtx(ctx, g, alive, p, ws)
}

// SparseCoverWSCtx is SparseCoverWS with cancellation.
func SparseCoverWSCtx(ctx context.Context, g *graph.Graph, alive []bool, p ENParams, ws *Workspace) (*Cover, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c, ok := sparseCoverWS(g, alive, p, ws, ctx.Done())
	if !ok {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, context.Canceled
	}
	return c, nil
}

// SparseCoverWS is SparseCover running on a caller-owned Workspace; the
// preparation phase of the covering solver runs Θ(log ñ) of these and hands
// each worker goroutine its own workspace. The returned Cover is freshly
// allocated (it does not alias the workspace).
func SparseCoverWS(g *graph.Graph, alive []bool, p ENParams, ws *Workspace) *Cover {
	c, _ := sparseCoverWS(g, alive, p, ws, nil)
	return c
}

func sparseCoverWS(g *graph.Graph, alive []bool, p ENParams, ws *Workspace, done <-chan struct{}) (*Cover, bool) {
	n := g.N()
	ws.reserve(n)
	shifts, maxT := enShifts(n, p, ws)
	// keep = n would be exact; the window prune (slack 1) already discards
	// everything that cannot join, so a generous keep bound costs little.
	labels, ok := topLabels(g, alive, shifts, n, 1.0, ws, done)
	if !ok {
		return nil, false
	}
	cover := &Cover{
		MemberOf: make([][]int32, n),
		Rounds:   int(math.Ceil(maxT)),
	}
	// Dense source -> cluster id map (sources are vertex ids).
	clusterID := ws.clusterID[:n]
	for i := range clusterID {
		clusterID[i] = -1
	}
	for v := 0; v < n; v++ {
		if alive != nil && !alive[v] {
			continue
		}
		ls := labels[v]
		if len(ls) == 0 {
			continue
		}
		best := ls[0].value
		for _, l := range ls {
			if l.value < best-1 {
				break // sorted descending
			}
			id := clusterID[l.source]
			if id < 0 {
				id = int32(len(cover.Clusters))
				clusterID[l.source] = id
				cover.Clusters = append(cover.Clusters, nil)
			}
			cover.Clusters[id] = append(cover.Clusters[id], int32(v))
			cover.MemberOf[v] = append(cover.MemberOf[v], id)
		}
	}
	return cover, true
}

// VerifyCover checks the Lemma C.2 guarantee that every hyperedge of h is
// fully contained in at least one cluster, returning the first uncovered
// hyperedge id otherwise.
func VerifyCover(h *hypergraph.H, c *Cover) (bool, int) {
	inCluster := make([]int32, h.N()) // scratch: epoch tagging per cluster
	for i := range inCluster {
		inCluster[i] = -1
	}
	for e := 0; e < h.M(); e++ {
		edge := h.Edge(e)
		if len(edge) == 0 {
			continue
		}
		covered := false
		// Only clusters containing the first endpoint can cover the edge.
		for _, cid := range c.MemberOf[edge[0]] {
			all := true
			for _, v := range c.Clusters[cid] {
				inCluster[v] = cid
			}
			for _, u := range edge {
				if inCluster[u] != cid {
					all = false
					break
				}
			}
			if all {
				covered = true
				break
			}
		}
		if !covered {
			return false, e
		}
	}
	return true, -1
}
