// Package ldd implements every decomposition algorithm in the paper:
//
//   - ElkinNeiman: the exponential-shift low-diameter decomposition of
//     Lemma C.1 (Elkin–Neiman 2016, following Miller–Peng–Xu), whose
//     unclustered-count guarantee holds only in expectation; provided in
//     both an oracle (centralized-simulation) form and a genuinely
//     message-passing form on the local.Engine, which produce identical
//     output by construction;
//   - MPX: the Miller–Peng–Xu edge-cutting variant used by Claim C.2;
//   - SparseCover: the Lemma C.2 variant that covers every hyperedge and
//     bounds each vertex's cluster multiplicity by a geometric random
//     variable — the substrate of the covering algorithm;
//   - GrowCarve: the ball-growing-and-carving subroutine (Algorithm 1);
//   - ChangLi: the paper's main Theorem 1.1 algorithm (Phases 1–3), whose
//     ε-fraction bound on unclustered vertices holds with high probability;
//   - Blackbox: the Section 1.6 boost of Coiteux-Roy et al. that improves
//     the log³(1/ε) round factor to log(1/ε);
//   - RepairDiameter: the weak-to-ideal diameter cleanup step;
//   - RepairDelta / RepairCoverDelta: incremental repair of a cached
//     decomposition or cover onto a mutated graph — classify the net edge
//     delta, certify untouched clusters with single-BFS weak-diameter
//     certificates, re-carve (or patch) only what broke, and fall back
//     (ErrRepairFallback) whenever the repaired result could not match a
//     fresh run's invariants.
package ldd

import (
	"math"

	"repro/internal/graph"
)

// Unclustered marks a deleted (unclustered) vertex in a Decomposition.
const Unclustered = int32(-1)

// Decomposition is the common result type: a partition of (a subset of) the
// vertices into clusters, with the rest unclustered.
type Decomposition struct {
	// ClusterOf[v] is the cluster id of v, or Unclustered.
	ClusterOf []int32
	// NumClusters is the number of distinct cluster ids (ids are dense).
	NumClusters int
	// Rounds is the LOCAL round complexity charged to this run.
	Rounds int
}

// UnclusteredCount returns the number of deleted vertices.
func (d *Decomposition) UnclusteredCount() int {
	c := 0
	for _, x := range d.ClusterOf {
		if x == Unclustered {
			c++
		}
	}
	return c
}

// UnclusteredFraction returns |D| / n (0 for an empty graph).
func (d *Decomposition) UnclusteredFraction() float64 {
	if len(d.ClusterOf) == 0 {
		return 0
	}
	return float64(d.UnclusteredCount()) / float64(len(d.ClusterOf))
}

// Clusters materializes the clusters as vertex lists indexed by cluster id.
func (d *Decomposition) Clusters() [][]int32 {
	out := make([][]int32, d.NumClusters)
	for v, c := range d.ClusterOf {
		if c >= 0 {
			out[c] = append(out[c], int32(v))
		}
	}
	return out
}

// MaxWeakDiameter returns the maximum weak diameter over clusters, measured
// in g. Empty decompositions yield 0; a cluster disconnected in g yields -1
// (which callers should treat as a failure).
func (d *Decomposition) MaxWeakDiameter(g *graph.Graph) int {
	best := 0
	for _, cluster := range d.Clusters() {
		wd := g.WeakDiameter(cluster)
		if wd == -1 {
			return -1
		}
		if wd > best {
			best = wd
		}
	}
	return best
}

// MaxStrongDiameter returns the maximum strong (induced-subgraph) diameter
// over clusters, or -1 if some cluster's induced subgraph is disconnected.
func (d *Decomposition) MaxStrongDiameter(g *graph.Graph) int {
	best := 0
	for _, cluster := range d.Clusters() {
		sd := g.StrongDiameter(cluster)
		if sd == -1 {
			return -1
		}
		if sd > best {
			best = sd
		}
	}
	return best
}

// ValidateSeparation checks the defining property of a low-diameter
// decomposition (Definition 1.4): distinct clusters are mutually
// non-adjacent. It returns the offending edge if violated.
func (d *Decomposition) ValidateSeparation(g *graph.Graph) (ok bool, badU, badV int) {
	ok = true
	badU, badV = -1, -1
	g.Edges(func(u, v int) {
		cu, cv := d.ClusterOf[u], d.ClusterOf[v]
		if cu >= 0 && cv >= 0 && cu != cv && ok {
			ok = false
			badU, badV = u, v
		}
	})
	return ok, badU, badV
}

// relabel compacts cluster ids to a dense range and returns the count.
// Ids produced by this package are always bounded by a small multiple of n
// (vertex ids or dense counters plus offsets), so a dense remap array beats
// a hash map; the map path remains as a fallback for out-of-range ids.
func relabel(clusterOf []int32) int {
	maxID := int32(-1)
	for _, c := range clusterOf {
		if c > maxID {
			maxID = c
		}
	}
	if maxID < 0 {
		return 0
	}
	if int(maxID) > 4*len(clusterOf)+64 {
		return relabelSparse(clusterOf)
	}
	remap := make([]int32, maxID+1)
	for i := range remap {
		remap[i] = -1
	}
	count := int32(0)
	for i, c := range clusterOf {
		if c < 0 {
			continue
		}
		if remap[c] < 0 {
			remap[c] = count
			count++
		}
		clusterOf[i] = remap[c]
	}
	return int(count)
}

func relabelSparse(clusterOf []int32) int {
	remap := make(map[int32]int32)
	for i, c := range clusterOf {
		if c < 0 {
			continue
		}
		nc, ok := remap[c]
		if !ok {
			nc = int32(len(remap))
			remap[c] = nc
		}
		clusterOf[i] = nc
	}
	return len(remap)
}

// lnTilde returns ln(ñ) for the given upper bound on n, clamped below by 1
// so degenerate tiny inputs keep positive parameters.
func lnTilde(nTilde int) float64 {
	if nTilde < 3 {
		nTilde = 3
	}
	return math.Log(float64(nTilde))
}
