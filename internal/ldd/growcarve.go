package ldd

import (
	"repro/internal/graph"
)

// CarveOutcome is the result of one Grow-and-Carve execution (Algorithm 1)
// from a single centre, computed against a snapshot of the residual graph.
type CarveOutcome struct {
	// Deleted is the sparsest layer S_{j*}, removed from the graph
	// permanently (these vertices become unclustered).
	Deleted []int32
	// Removed is N^{j*-1}(v): carved out as an isolated cluster.
	Removed []int32
	// JStar is the chosen cut layer index.
	JStar int
}

// GrowCarve implements Algorithm 1 for a centre v on the alive-induced
// subgraph: gather N^b(v), find j* in [a, b] minimizing |S_{j*}|, delete
// S_{j*}, and remove N^{j*-1}(v). Returns nil when v is dead.
//
// When the ball runs out before layer a (the entire residual component of v
// is closer than the cut window), there is nothing to cut: the component is
// removed whole with no deletions, which only helps the analysis.
func GrowCarve(g *graph.Graph, v int, a, b int, alive []bool) *CarveOutcome {
	ws := graph.AcquireWorkspace()
	oc := GrowCarveWS(g, v, a, b, alive, ws)
	graph.ReleaseWorkspace(ws)
	return oc
}

// GrowCarveWS is GrowCarve on a caller-owned traversal workspace: the layer
// gathering is allocation-free, and only the carve outcome (which outlives
// the call) is freshly allocated. Safe to run concurrently from several
// goroutines, each with its own workspace, against the same alive snapshot.
func GrowCarveWS(g *graph.Graph, v int, a, b int, alive []bool, ws *graph.Workspace) *CarveOutcome {
	if a < 1 {
		a = 1
	}
	if b < a {
		b = a
	}
	layers := g.BallLayersWithWorkspace(ws, v, b, alive)
	return carveOutcomeFromLayers(layers, a, b)
}

// GrowCarvePar is GrowCarveWS with the layer gathering running as a
// parallel frontier expansion on pw — the right shape when one iteration
// samples fewer centres than there are workers, so per-centre fan-out
// cannot use the machine. Outcomes are bit-identical to GrowCarveWS for
// every worker count.
func GrowCarvePar(g *graph.Graph, v int, a, b int, alive []bool, pw *graph.ParWorkspace, workers int) *CarveOutcome {
	if a < 1 {
		a = 1
	}
	if b < a {
		b = a
	}
	layers := graph.ParBallLayers(pw, g, v, b, alive, workers)
	return carveOutcomeFromLayers(layers, a, b)
}

// carveOutcomeFromLayers picks the sparsest cut layer j* in [a, b] and
// materializes the outcome; the layers may alias a workspace, the outcome
// never does.
func carveOutcomeFromLayers(layers [][]int32, a, b int) *CarveOutcome {
	if layers == nil {
		return nil
	}
	if len(layers) <= a {
		// Component exhausted before the window: remove everything, delete
		// nothing.
		total := 0
		for _, l := range layers {
			total += len(l)
		}
		removed := make([]int32, 0, total)
		for _, l := range layers {
			removed = append(removed, l...)
		}
		return &CarveOutcome{Removed: removed, JStar: len(layers)}
	}
	jStar, best := -1, -1
	for j := a; j <= b && j < len(layers); j++ {
		size := len(layers[j])
		if best == -1 || size < best {
			best = size
			jStar = j
		}
	}
	out := &CarveOutcome{JStar: jStar, Deleted: append([]int32(nil), layers[jStar]...)}
	interior := 0
	for j := 0; j < jStar; j++ {
		interior += len(layers[j])
	}
	out.Removed = make([]int32, 0, interior)
	for j := 0; j < jStar; j++ {
		out.Removed = append(out.Removed, layers[j]...)
	}
	return out
}

// applyCarves merges the outcomes of the centres of one iteration, which
// all computed against the same snapshot, into the live state:
//
//   - a vertex deleted by any execution is deleted (paper: "as long as a
//     vertex is deleted in some execution, it is considered as deleted");
//   - otherwise, a vertex removed by some execution is marked removed.
//
// Overlapping removed balls from the same iteration merge into a single
// cluster later: after an iteration every neighbor of a removed vertex is
// itself removed or deleted (a neighbor of a layer-(j*-1) vertex lies in
// layer <= j*, which was removed or deleted), so the connected components of
// the final removed set are mutually non-adjacent and each is a union of
// overlapping balls from one iteration — these components become the
// clusters (see carveClusters). alive, removed are updated in place.
// Returns the number of newly deleted vertices.
func applyCarves(outcomes []*CarveOutcome, alive, removed, deletedMark []bool) (deleted int) {
	for _, oc := range outcomes {
		if oc == nil {
			continue
		}
		for _, v := range oc.Deleted {
			if alive[v] && !deletedMark[v] {
				deletedMark[v] = true
			}
		}
	}
	for _, oc := range outcomes {
		if oc == nil {
			continue
		}
		for _, v := range oc.Removed {
			if !alive[v] || deletedMark[v] {
				continue
			}
			alive[v] = false
			removed[v] = true
		}
	}
	for v := range deletedMark {
		if deletedMark[v] && alive[v] {
			alive[v] = false
			deleted++
		}
	}
	return deleted
}
