package ldd

import (
	"sync"

	"repro/internal/graph"
)

// Workspace bundles the reusable scratch state of this package's
// decomposition algorithms: a graph.Workspace for the traversal substrate,
// the per-vertex exponential shifts, the shifted-label priority queue, and
// the per-vertex label lists of topLabels. Like graph.Workspace it is owned
// by one goroutine at a time; parallel callers hold one Workspace per
// worker.
type Workspace struct {
	// G is the traversal workspace; usable directly by callers between
	// decomposition calls.
	G *graph.Workspace

	shifts []float64
	heap   []labelItem
	labels [][]label
	// clusterID maps source vertex -> dense cluster id for SparseCover
	// (reset to -1 per call).
	clusterID []int32
}

// NewWorkspace returns an empty Workspace; buffers grow on first use.
func NewWorkspace() *Workspace {
	return &Workspace{G: graph.NewWorkspace(0)}
}

// reserve sizes the per-vertex buffers for an n-vertex graph.
func (ws *Workspace) reserve(n int) {
	ws.G.Reserve(n)
	if cap(ws.shifts) < n {
		ws.shifts = make([]float64, n)
	}
	for len(ws.labels) < n {
		ws.labels = append(ws.labels, nil)
	}
	if cap(ws.clusterID) < n {
		ws.clusterID = make([]int32, n)
	}
}

var wsPool = sync.Pool{New: func() any { return NewWorkspace() }}

// AcquireWorkspace takes a package workspace from the shared pool; pair
// with ReleaseWorkspace. Used by the solver packages that fan independent
// decompositions out across a worker pool.
func AcquireWorkspace() *Workspace { return wsPool.Get().(*Workspace) }

// ReleaseWorkspace returns a workspace to the shared pool. The caller must
// not use the workspace, or any result aliasing it, afterwards.
func ReleaseWorkspace(ws *Workspace) { wsPool.Put(ws) }

// AcquireWorkspaces takes k package workspaces for a worker fleet; pair
// with ReleaseWorkspaces.
func AcquireWorkspaces(k int) []*Workspace {
	out := make([]*Workspace, k)
	for i := range out {
		out[i] = AcquireWorkspace()
	}
	return out
}

// ReleaseWorkspaces returns a fleet to the shared pool.
func ReleaseWorkspaces(wss []*Workspace) {
	for _, ws := range wss {
		ReleaseWorkspace(ws)
	}
}

// acquireGraphWorkspaces takes k traversal workspaces for a worker fleet.
func acquireGraphWorkspaces(k int) []*graph.Workspace {
	out := make([]*graph.Workspace, k)
	for i := range out {
		out[i] = graph.AcquireWorkspace()
	}
	return out
}

func releaseGraphWorkspaces(wss []*graph.Workspace) {
	for _, ws := range wss {
		graph.ReleaseWorkspace(ws)
	}
}

// --- label heap -----------------------------------------------------------
//
// A concrete max-heap on labelItem replacing container/heap: pushing an
// interface value boxes the item and was the single largest allocation
// source in the pipeline. The sift routines mirror container/heap
// operation-for-operation so the pop order (and therefore every
// decomposition) is bit-identical to the previous implementation.

func labelLess(a, b labelItem) bool {
	if a.value != b.value {
		return a.value > b.value
	}
	return a.source < b.source
}

func heapInit(h []labelItem) {
	n := len(h)
	for i := n/2 - 1; i >= 0; i-- {
		heapDown(h, i, n)
	}
}

func heapPush(h []labelItem, it labelItem) []labelItem {
	h = append(h, it)
	heapUp(h, len(h)-1)
	return h
}

func heapPop(h []labelItem) ([]labelItem, labelItem) {
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	heapDown(h, 0, n)
	it := h[n]
	return h[:n], it
}

func heapUp(h []labelItem, j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !labelLess(h[j], h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func heapDown(h []labelItem, i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && labelLess(h[j2], h[j1]) {
			j = j2
		}
		if !labelLess(h[j], h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}
