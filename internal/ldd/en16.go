package ldd

import (
	"context"
	"math"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/xrand"
)

// ENParams configures the Elkin–Neiman decomposition of Lemma C.1.
type ENParams struct {
	// Lambda is the deletion-rate parameter: each vertex is deleted with
	// probability at most 1 - e^(-Lambda) + ñ^(-3), and each surviving
	// component has (strong) diameter at most 8 ln(ñ)/Lambda.
	Lambda float64
	// NTilde is the globally known upper bound ñ >= n. Zero means n.
	NTilde int
	// Seed drives the per-vertex exponential shifts.
	Seed uint64
	// Workers bounds the worker pool for the per-vertex shift draws (each
	// vertex's shift comes from its own (Seed, vertex, label) stream, so
	// the draws are order-independent and the result is bit-identical for
	// every worker count). <= 0 means GOMAXPROCS; the label-spread search
	// itself is inherently sequential and unaffected.
	Workers int
}

// enShiftLabel is the stream label for the exponential shift draw, shared by
// the oracle and message-passing implementations so they use identical
// randomness.
const enShiftLabel = 0x1dd

// enShiftsInto draws the clipped exponential shifts exactly as Lemma C.1
// prescribes — T_v ~ Exp(lambda), reset to 0 when T_v >= 4 ln(ñ)/lambda —
// into the provided slice (len n).
func enShiftsInto(dst []float64, n int, p ENParams) float64 {
	nTilde := p.NTilde
	if nTilde < n {
		nTilde = n
	}
	maxT := 4 * lnTilde(nTilde) / p.Lambda
	draw := func(v int) {
		t := xrand.Stream(p.Seed, v, enShiftLabel).Exp(p.Lambda)
		if t >= maxT {
			t = 0
		}
		dst[v] = t
	}
	if workers := par.Workers(p.Workers); workers > 1 && n >= enParShiftMin {
		// Each draw touches only dst[v]; chunks amortize the scheduling
		// atomics over the cheap per-vertex work.
		par.ForEachChunk(workers, n, 512, func(_, v int) { draw(v) })
		return maxT
	}
	for v := 0; v < n; v++ {
		draw(v)
	}
	return maxT
}

// enParShiftMin is the vertex count below which the shift draws stay
// serial; under it the fan-out costs more than the draws.
const enParShiftMin = 4096

// enShifts draws the shifts into the workspace's buffer.
func enShifts(n int, p ENParams, ws *Workspace) ([]float64, float64) {
	shifts := ws.shifts[:n]
	maxT := enShiftsInto(shifts, n, p)
	return shifts, maxT
}

// enShiftsOwned draws the shifts into a fresh caller-owned slice, for the
// message-passing executors whose machines retain them beyond the lifetime
// of any workspace.
func enShiftsOwned(n int, p ENParams) ([]float64, float64) {
	shifts := make([]float64, n)
	maxT := enShiftsInto(shifts, n, p)
	return shifts, maxT
}

// label is one (source, value) pair: value = T_source - dist(source, v).
type label struct {
	source int32
	value  float64
}

// labelItem is a priority-queue entry for the shifted multi-source search.
// The queue is a max-heap on value with deterministic tie-breaking on
// source (see labelLess in workspace.go) so runs are reproducible across
// executions and executors.
type labelItem struct {
	label
	vertex int32
}

// topLabels computes, for every alive vertex v, the labels
// m_v(u) = T_u - dist(u, v) from the best `keep` distinct sources, keeping
// only labels with value >= best - slack (labels below can never influence
// the decomposition decisions). Distances are measured in the alive-induced
// subgraph. The result at index v is sorted by value descending; it aliases
// the workspace (the per-vertex slices keep their capacity across calls, so
// warm runs allocate only when a vertex collects more labels than ever
// before).
// done is an optional cancellation channel (nil means uncancellable): the
// pop loop polls it every topLabelsCheckMask+1 pops — a coarse stride, so
// the warm path pays one closed-channel poll per ~4k pops — and returns
// (nil, false) when it fires; callers must then discard the workspace
// contents of this call (the workspace itself stays reusable).
func topLabels(g *graph.Graph, alive []bool, shifts []float64, keep int, slack float64, ws *Workspace, done <-chan struct{}) ([][]label, bool) {
	n := g.N()
	ws.reserve(n)
	out := ws.labels[:n]
	for v := range out {
		out[v] = out[v][:0]
	}
	pq := ws.heap[:0]
	for v := 0; v < n; v++ {
		if alive != nil && !alive[v] {
			continue
		}
		pq = append(pq, labelItem{label: label{source: int32(v), value: shifts[v]}, vertex: int32(v)})
	}
	heapInit(pq)
	pops := 0
	for len(pq) > 0 {
		// The counter lives inside the done branch so the uncancellable
		// path pays exactly one predictable nil-check per pop.
		if done != nil {
			if pops&topLabelsCheckMask == 0 && stopped(done) {
				ws.heap = pq
				return nil, false
			}
			pops++
		}
		var it labelItem
		pq, it = heapPop(pq)
		v := it.vertex
		ls := out[v]
		// Discard if v already has this source or `keep` better labels, or
		// if the label is out of the slack window of v's best label.
		if len(ls) > 0 && it.value < ls[0].value-slack {
			continue
		}
		dup := false
		for _, l := range ls {
			if l.source == it.source {
				dup = true
				break
			}
		}
		if dup || len(ls) >= keep {
			continue
		}
		out[v] = append(ls, it.label)
		// Relax neighbors with value - 1. Values below -slack can never be
		// within slack of any best label (best >= 0 because every alive
		// vertex has its own label T_v >= 0).
		nv := it.value - 1
		if nv < -slack {
			continue
		}
		for _, w := range g.Neighbors(int(v)) {
			if alive != nil && !alive[w] {
				continue
			}
			// Push-side prune of labels the pop loop would provably
			// discard: a vertex's label list only grows and its best value
			// never changes, so "already full" and "below the slack
			// window" both still hold at pop time. This keeps the heap
			// small without changing a single accepted label.
			lw := out[w]
			if len(lw) >= keep || (len(lw) > 0 && nv < lw[0].value-slack) {
				continue
			}
			pq = heapPush(pq, labelItem{label: label{source: it.source, value: nv}, vertex: w})
		}
	}
	ws.heap = pq
	return out, true
}

// topLabelsCheckMask sets the cancellation polling stride of topLabels:
// one non-blocking channel poll every 4096 heap pops.
const topLabelsCheckMask = 4095

// stopped polls a done channel without blocking.
func stopped(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// ElkinNeiman runs the Lemma C.1 decomposition on the alive-induced
// subgraph of g (alive == nil means the whole graph). Each vertex is deleted
// when its second-best shifted source comes within 1 of its best; otherwise
// it joins the best source's cluster. Rounds are charged as the broadcast
// horizon ceil(maxT) (each vertex broadcasts T_v through ⌊T_v⌋ hops).
func ElkinNeiman(g *graph.Graph, alive []bool, p ENParams) *Decomposition {
	ws := AcquireWorkspace()
	d := ElkinNeimanWS(g, alive, p, ws)
	ReleaseWorkspace(ws)
	return d
}

// ElkinNeimanCtx is ElkinNeiman with cancellation (see ChangLiCtx).
func ElkinNeimanCtx(ctx context.Context, g *graph.Graph, alive []bool, p ENParams) (*Decomposition, error) {
	ws := AcquireWorkspace()
	defer ReleaseWorkspace(ws)
	return ElkinNeimanWSCtx(ctx, g, alive, p, ws)
}

// ElkinNeimanWS is ElkinNeiman running on a caller-owned Workspace; loops
// that run many decompositions (preparation phases, netdecomp) hold one
// workspace per goroutine and call this directly.
func ElkinNeimanWS(g *graph.Graph, alive []bool, p ENParams, ws *Workspace) *Decomposition {
	d, _ := elkinNeimanWS(g, alive, p, ws, nil)
	return d
}

// ElkinNeimanWSCtx is ElkinNeimanWS with cancellation.
func ElkinNeimanWSCtx(ctx context.Context, g *graph.Graph, alive []bool, p ENParams, ws *Workspace) (*Decomposition, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	d, ok := elkinNeimanWS(g, alive, p, ws, ctx.Done())
	if !ok {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, context.Canceled
	}
	return d, nil
}

func elkinNeimanWS(g *graph.Graph, alive []bool, p ENParams, ws *Workspace, done <-chan struct{}) (*Decomposition, bool) {
	n := g.N()
	ws.reserve(n)
	shifts, maxT := enShifts(n, p, ws)
	labels, ok := topLabels(g, alive, shifts, 2, 1.0, ws, done)
	if !ok {
		return nil, false
	}
	clusterOf := make([]int32, n)
	for v := 0; v < n; v++ {
		clusterOf[v] = Unclustered
		if alive != nil && !alive[v] {
			continue
		}
		ls := labels[v]
		if len(ls) == 0 {
			continue // isolated dead region; cannot happen for alive v
		}
		if len(ls) >= 2 && ls[1].value >= ls[0].value-1 {
			continue // deleted
		}
		clusterOf[v] = ls[0].source
	}
	num := relabel(clusterOf)
	return &Decomposition{
		ClusterOf:   clusterOf,
		NumClusters: num,
		Rounds:      int(math.Ceil(maxT)),
	}, true
}

// MPXResult is the output of the Miller–Peng–Xu edge decomposition: every
// vertex joins the cluster of its best shifted source (no vertex deletions)
// and an edge is cut when its endpoints land in different clusters.
type MPXResult struct {
	Decomposition
	// CutEdges lists the deleted (inter-cluster) edges.
	CutEdges [][2]int
}

// MPX runs the Miller–Peng–Xu decomposition with parameter lambda on the
// whole graph. The expected number of cut edges is O(lambda * m); Claim C.2
// exhibits graphs where the realized count exceeds any constant fraction
// with probability Omega(lambda).
func MPX(g *graph.Graph, p ENParams) *MPXResult {
	r, _ := mpx(g, p, nil)
	return r
}

// MPXCtx is MPX with cancellation (see ChangLiCtx).
func MPXCtx(ctx context.Context, g *graph.Graph, p ENParams) (*MPXResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r, ok := mpx(g, p, ctx.Done())
	if !ok {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, context.Canceled
	}
	return r, nil
}

func mpx(g *graph.Graph, p ENParams, done <-chan struct{}) (*MPXResult, bool) {
	ws := AcquireWorkspace()
	defer ReleaseWorkspace(ws)
	n := g.N()
	ws.reserve(n)
	shifts, maxT := enShifts(n, p, ws)
	labels, ok := topLabels(g, nil, shifts, 1, 0, ws, done)
	if !ok {
		return nil, false
	}
	clusterOf := make([]int32, n)
	for v := 0; v < n; v++ {
		clusterOf[v] = Unclustered
		if len(labels[v]) > 0 {
			clusterOf[v] = labels[v][0].source
		}
	}
	res := &MPXResult{}
	g.Edges(func(u, v int) {
		if clusterOf[u] != clusterOf[v] {
			res.CutEdges = append(res.CutEdges, [2]int{u, v})
		}
	})
	num := relabel(clusterOf)
	res.Decomposition = Decomposition{
		ClusterOf:   clusterOf,
		NumClusters: num,
		Rounds:      int(math.Ceil(maxT)),
	}
	return res, true
}
