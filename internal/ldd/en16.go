package ldd

import (
	"container/heap"
	"math"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// ENParams configures the Elkin–Neiman decomposition of Lemma C.1.
type ENParams struct {
	// Lambda is the deletion-rate parameter: each vertex is deleted with
	// probability at most 1 - e^(-Lambda) + ñ^(-3), and each surviving
	// component has (strong) diameter at most 8 ln(ñ)/Lambda.
	Lambda float64
	// NTilde is the globally known upper bound ñ >= n. Zero means n.
	NTilde int
	// Seed drives the per-vertex exponential shifts.
	Seed uint64
}

// enShiftLabel is the stream label for the exponential shift draw, shared by
// the oracle and message-passing implementations so they use identical
// randomness.
const enShiftLabel = 0x1dd

// enShifts draws the clipped exponential shifts exactly as Lemma C.1
// prescribes: T_v ~ Exp(lambda), reset to 0 when T_v >= 4 ln(ñ)/lambda.
func enShifts(n int, p ENParams) ([]float64, float64) {
	nTilde := p.NTilde
	if nTilde < n {
		nTilde = n
	}
	maxT := 4 * lnTilde(nTilde) / p.Lambda
	shifts := make([]float64, n)
	for v := 0; v < n; v++ {
		t := xrand.Stream(p.Seed, v, enShiftLabel).Exp(p.Lambda)
		if t >= maxT {
			t = 0
		}
		shifts[v] = t
	}
	return shifts, maxT
}

// label is one (source, value) pair: value = T_source - dist(source, v).
type label struct {
	source int32
	value  float64
}

// labelItem is a priority-queue entry for the shifted multi-source search.
type labelItem struct {
	label
	vertex int32
}

// labelPQ is a max-heap on value with deterministic tie-breaking on
// (source) so runs are reproducible across executions and executors.
type labelPQ []labelItem

func (q labelPQ) Len() int { return len(q) }
func (q labelPQ) Less(i, j int) bool {
	if q[i].value != q[j].value {
		return q[i].value > q[j].value
	}
	return q[i].source < q[j].source
}
func (q labelPQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *labelPQ) Push(x interface{}) { *q = append(*q, x.(labelItem)) }
func (q *labelPQ) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// topLabels computes, for every alive vertex v, the labels
// m_v(u) = T_u - dist(u, v) from the best `keep` distinct sources, keeping
// only labels with value >= best - slack (labels below can never influence
// the decomposition decisions). Distances are measured in the alive-induced
// subgraph. The result at index v is sorted by value descending.
func topLabels(g *graph.Graph, alive []bool, shifts []float64, keep int, slack float64) [][]label {
	n := g.N()
	out := make([][]label, n)
	var pq labelPQ
	for v := 0; v < n; v++ {
		if alive != nil && !alive[v] {
			continue
		}
		pq = append(pq, labelItem{label: label{source: int32(v), value: shifts[v]}, vertex: int32(v)})
	}
	heap.Init(&pq)
	for pq.Len() > 0 {
		it := heap.Pop(&pq).(labelItem)
		v := it.vertex
		ls := out[v]
		// Discard if v already has this source or `keep` better labels, or
		// if the label is out of the slack window of v's best label.
		if len(ls) > 0 && it.value < ls[0].value-slack {
			continue
		}
		dup := false
		for _, l := range ls {
			if l.source == it.source {
				dup = true
				break
			}
		}
		if dup || len(ls) >= keep {
			continue
		}
		out[v] = append(ls, it.label)
		// Relax neighbors with value - 1. Values below -slack can never be
		// within slack of any best label (best >= 0 because every alive
		// vertex has its own label T_v >= 0).
		nv := it.value - 1
		if nv < -slack {
			continue
		}
		for _, w := range g.Neighbors(int(v)) {
			if alive != nil && !alive[w] {
				continue
			}
			heap.Push(&pq, labelItem{label: label{source: it.source, value: nv}, vertex: w})
		}
	}
	return out
}

// ElkinNeiman runs the Lemma C.1 decomposition on the alive-induced
// subgraph of g (alive == nil means the whole graph). Each vertex is deleted
// when its second-best shifted source comes within 1 of its best; otherwise
// it joins the best source's cluster. Rounds are charged as the broadcast
// horizon ceil(maxT) (each vertex broadcasts T_v through ⌊T_v⌋ hops).
func ElkinNeiman(g *graph.Graph, alive []bool, p ENParams) *Decomposition {
	n := g.N()
	shifts, maxT := enShifts(n, p)
	labels := topLabels(g, alive, shifts, 2, 1.0)
	clusterOf := make([]int32, n)
	for v := 0; v < n; v++ {
		clusterOf[v] = Unclustered
		if alive != nil && !alive[v] {
			continue
		}
		ls := labels[v]
		if len(ls) == 0 {
			continue // isolated dead region; cannot happen for alive v
		}
		if len(ls) >= 2 && ls[1].value >= ls[0].value-1 {
			continue // deleted
		}
		clusterOf[v] = ls[0].source
	}
	num := relabel(clusterOf)
	return &Decomposition{
		ClusterOf:   clusterOf,
		NumClusters: num,
		Rounds:      int(math.Ceil(maxT)),
	}
}

// MPXResult is the output of the Miller–Peng–Xu edge decomposition: every
// vertex joins the cluster of its best shifted source (no vertex deletions)
// and an edge is cut when its endpoints land in different clusters.
type MPXResult struct {
	Decomposition
	// CutEdges lists the deleted (inter-cluster) edges.
	CutEdges [][2]int
}

// MPX runs the Miller–Peng–Xu decomposition with parameter lambda on the
// whole graph. The expected number of cut edges is O(lambda * m); Claim C.2
// exhibits graphs where the realized count exceeds any constant fraction
// with probability Omega(lambda).
func MPX(g *graph.Graph, p ENParams) *MPXResult {
	n := g.N()
	shifts, maxT := enShifts(n, p)
	labels := topLabels(g, nil, shifts, 1, 0)
	clusterOf := make([]int32, n)
	for v := 0; v < n; v++ {
		clusterOf[v] = Unclustered
		if len(labels[v]) > 0 {
			clusterOf[v] = labels[v][0].source
		}
	}
	res := &MPXResult{}
	g.Edges(func(u, v int) {
		if clusterOf[u] != clusterOf[v] {
			res.CutEdges = append(res.CutEdges, [2]int{u, v})
		}
	})
	num := relabel(clusterOf)
	res.Decomposition = Decomposition{
		ClusterOf:   clusterOf,
		NumClusters: num,
		Rounds:      int(math.Ceil(maxT)),
	}
	return res
}
