package ldd

import (
	"context"
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// churnGraph maintains a mutable edge set over n vertices so the repair
// tests can derive (graph, delta) pairs epoch by epoch.
type churnGraph struct {
	n     int
	edges map[[2]int32]bool
}

func newChurnCycle(n int) *churnGraph {
	cg := &churnGraph{n: n, edges: map[[2]int32]bool{}}
	for i := 0; i < n; i++ {
		cg.set(int32(i), int32((i+1)%n), true)
	}
	return cg
}

func (cg *churnGraph) set(u, v int32, present bool) {
	if u > v {
		u, v = v, u
	}
	if present {
		cg.edges[[2]int32{u, v}] = true
	} else {
		delete(cg.edges, [2]int32{u, v})
	}
}

func (cg *churnGraph) graph() *graph.Graph {
	b := graph.NewBuilder(cg.n)
	for e := range cg.edges {
		b.AddEdge(int(e[0]), int(e[1]))
	}
	return b.Build()
}

// mutate toggles k random vertex pairs and returns the net delta.
func (cg *churnGraph) mutate(rng *xrand.RNG, k int) EdgeDelta {
	var d EdgeDelta
	for len(d.Added)+len(d.Removed) < k {
		u := int32(rng.Intn(cg.n))
		v := int32(rng.Intn(cg.n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if cg.edges[[2]int32{u, v}] {
			cg.set(u, v, false)
			d.Removed = append(d.Removed, [2]int32{u, v})
		} else {
			cg.set(u, v, true)
			d.Added = append(d.Added, [2]int32{u, v})
		}
	}
	return d
}

// checkDecompositionInvariants asserts the quality invariants a fresh
// Theorem 1.1 run guarantees — separation, the analytic weak-diameter
// budget, the unclustered bound, dense cluster ids — so fresh and repaired
// decompositions are held to the identical standard.
func checkDecompositionInvariants(t *testing.T, tag string, g *graph.Graph, d *Decomposition, p Params) {
	t.Helper()
	if ok, u, v := d.ValidateSeparation(g); !ok {
		t.Fatalf("%s: adjacent clusters at %d-%d", tag, u, v)
	}
	bound := p.WeakDiameterBound(g.N())
	if wd := d.MaxWeakDiameter(g); wd == -1 || wd > bound {
		t.Fatalf("%s: weak diameter %d exceeds budget %d", tag, wd, bound)
	}
	if frac := d.UnclusteredFraction(); frac > p.Epsilon+1.0/float64(g.N()) {
		t.Fatalf("%s: unclustered fraction %.4f > eps %.2f", tag, frac, p.Epsilon)
	}
	seen := make([]bool, d.NumClusters)
	for _, c := range d.ClusterOf {
		if c < Unclustered || int(c) >= d.NumClusters {
			t.Fatalf("%s: bad cluster id %d", tag, c)
		}
		if c >= 0 {
			seen[c] = true
		}
	}
	for c, ok := range seen {
		if !ok {
			t.Fatalf("%s: cluster id %d unused", tag, c)
		}
	}
}

// TestRepairDeltaChurnEquivalence drives a randomized churn sequence and
// asserts, every epoch, that the repaired decomposition satisfies the same
// invariants as a full recompute on the same graph — and that the full
// recompute itself satisfies them, so the shared budget is honest. Repairs
// are chained (each epoch repairs the previous epoch's output) to exercise
// repairs-of-repairs.
func TestRepairDeltaChurnEquivalence(t *testing.T) {
	const n = 600
	// Scale 0.0005 keeps the ball radii below the cycle's diameter so the decomposition
	// has many arc clusters and re-carves actually run.
	p := Params{Epsilon: 0.3, Seed: 3, Scale: 0.0005}
	rp := RepairDeltaParams{Epsilon: p.Epsilon, WeakBound: p.WeakDiameterBound(n)}
	for trial := uint64(0); trial < 3; trial++ {
		rng := xrand.New(100 + trial)
		cg := newChurnCycle(n)
		g := cg.graph()
		cur := ChangLi(g, p)
		checkDecompositionInvariants(t, "fresh epoch 0", g, cur, p)
		repaired, fallbacks := 0, 0
		for epoch := 1; epoch <= 25; epoch++ {
			delta := cg.mutate(rng, 1+rng.Intn(4))
			g = cg.graph()
			next, rep, err := RepairDelta(context.Background(), g, cur, delta, rp)
			if err != nil {
				if !errors.Is(err, ErrRepairFallback) {
					t.Fatalf("trial %d epoch %d: unexpected error %v", trial, epoch, err)
				}
				fallbacks++
				next = ChangLi(g, p)
			} else if rep.Recarved > 0 || rep.Certified > 0 {
				repaired++
			}
			checkDecompositionInvariants(t, "repaired", g, next, p)
			fresh := ChangLi(g, p)
			checkDecompositionInvariants(t, "fresh", g, fresh, p)
			cur = next
		}
		if repaired == 0 {
			t.Fatalf("trial %d: churn sequence never exercised a repair", trial)
		}
		t.Logf("trial %d: %d epochs with repair work, %d fallbacks", trial, repaired, fallbacks)
	}
}

// TestRepairDeltaNoops pins the classification: deltas that cannot break
// any invariant return the input decomposition untouched.
func TestRepairDeltaNoops(t *testing.T) {
	cg := newChurnCycle(400)
	g := cg.graph()
	p := Params{Epsilon: 0.3, Seed: 1, Scale: 0.0005}
	d := ChangLi(g, p)
	rp := RepairDeltaParams{Epsilon: p.Epsilon, WeakBound: p.WeakDiameterBound(g.N())}

	// An added edge inside one cluster cannot break separation or stretch
	// the cluster.
	var intra [2]int32
	found := false
	for v := 0; v < g.N() && !found; v++ {
		c := d.ClusterOf[v]
		if c < 0 {
			continue
		}
		w := int32((v + 2) % g.N())
		if d.ClusterOf[w] == c && !g.HasEdge(v, int(w)) {
			intra = [2]int32{int32(v), w}
			found = true
		}
	}
	if !found {
		t.Skip("no intra-cluster chord available")
	}
	cg.set(intra[0], intra[1], true)
	out, rep, err := RepairDelta(context.Background(), cg.graph(), d, EdgeDelta{Added: [][2]int32{intra}}, rp)
	if err != nil || out != d {
		t.Fatalf("intra-cluster add: got (%p, %v), want the input back", out, err)
	}
	if rep.Recarved != 0 || rep.NewClusters != 0 {
		t.Fatalf("intra-cluster add recarved %d clusters", rep.Recarved)
	}

	// A removed cross-cluster edge only widens separation.
	cg = newChurnCycle(400)
	g = cg.graph()
	d = ChangLi(g, p)
	var cross [2]int32
	found = false
	for v := 0; v < g.N() && !found; v++ {
		w := (v + 1) % g.N()
		cu, cv := d.ClusterOf[v], d.ClusterOf[w]
		if cu != cv {
			cross = [2]int32{int32(v), int32(w)}
			found = true
		}
	}
	if !found {
		t.Fatal("cycle decomposition has no boundary edge")
	}
	cg.set(cross[0], cross[1], false)
	out, _, err = RepairDelta(context.Background(), cg.graph(), d, EdgeDelta{Removed: [][2]int32{cross}}, rp)
	if err != nil || out != d {
		t.Fatalf("cross-cluster removal: got (%p, %v), want the input back", out, err)
	}
}

// TestRepairDeltaFallbacks pins the refusal paths: malformed deltas and
// over-large regions return ErrRepairFallback rather than a bad result.
func TestRepairDeltaFallbacks(t *testing.T) {
	cg := newChurnCycle(400)
	g := cg.graph()
	p := Params{Epsilon: 0.3, Seed: 2, Scale: 0.0005}
	d := ChangLi(g, p)

	_, _, err := RepairDelta(context.Background(), g, d,
		EdgeDelta{Added: [][2]int32{{5, 9999}}}, RepairDeltaParams{Epsilon: p.Epsilon})
	if !errors.Is(err, ErrRepairFallback) {
		t.Fatalf("out-of-range edge: err = %v, want ErrRepairFallback", err)
	}

	// Force a re-carve with a region cap no repair can meet.
	var boundary [2]int32
	found := false
	for v := 0; v < g.N() && !found; v++ {
		w := int32((v + 3) % g.N())
		cu, cv := d.ClusterOf[v], d.ClusterOf[w]
		if cu >= 0 && cv >= 0 && cu != cv && !g.HasEdge(v, int(w)) {
			boundary = [2]int32{int32(v), w}
			found = true
		}
	}
	if !found {
		t.Skip("no cross-cluster chord available")
	}
	cg.set(boundary[0], boundary[1], true)
	_, _, err = RepairDelta(context.Background(), cg.graph(), d,
		EdgeDelta{Added: [][2]int32{boundary}},
		RepairDeltaParams{Epsilon: p.Epsilon, MaxRegionFrac: 1e-9})
	if !errors.Is(err, ErrRepairFallback) {
		t.Fatalf("tiny region cap: err = %v, want ErrRepairFallback", err)
	}

	// A decomposition for the wrong vertex count is rejected.
	small := newChurnCycle(100).graph()
	_, _, err = RepairDelta(context.Background(), small, d, EdgeDelta{}, RepairDeltaParams{})
	if !errors.Is(err, ErrRepairFallback) {
		t.Fatalf("size mismatch: err = %v, want ErrRepairFallback", err)
	}
}

// checkCoverInvariants asserts the Lemma C.2 serving invariants on a
// (possibly repaired) cover: every vertex is a member of every cluster
// that lists it, every current edge has a cluster containing both
// endpoints, and every cluster stays within the weak-diameter budget.
func checkCoverInvariants(t *testing.T, tag string, g *graph.Graph, c *Cover, bound int) {
	t.Helper()
	for v, ids := range c.MemberOf {
		for _, id := range ids {
			members := c.Clusters[id]
			ok := false
			for _, m := range members {
				if int(m) == v {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("%s: vertex %d lists cluster %d but is not a member", tag, v, id)
			}
		}
	}
	g.Edges(func(u, v int) {
		if len(commonClusters(c.MemberOf[u], c.MemberOf[v], nil)) == 0 {
			t.Fatalf("%s: edge {%d,%d} covered by no cluster", tag, u, v)
		}
	})
	if wd := c.MaxWeakDiameter(g); wd == -1 || wd > bound {
		t.Fatalf("%s: weak diameter %d exceeds budget %d", tag, wd, bound)
	}
}

// TestRepairCoverDeltaChurn churns a sparse cover: removals ride the
// certificate, additions get patch clusters, and the repaired cover must
// satisfy the same invariants as a fresh run on the mutated graph.
func TestRepairCoverDeltaChurn(t *testing.T) {
	const n = 500
	p := ENParams{Lambda: 0.3, Seed: 5}
	bound := p.WeakDiameterBound(n)
	rng := xrand.New(42)
	cg := newChurnCycle(n)
	g := cg.graph()
	cur := SparseCover(g, nil, p)
	checkCoverInvariants(t, "fresh epoch 0", g, cur, bound)
	patched, fallbacks := 0, 0
	for epoch := 1; epoch <= 20; epoch++ {
		delta := cg.mutate(rng, 1+rng.Intn(3))
		g = cg.graph()
		next, rep, err := RepairCoverDelta(context.Background(), g, cur, delta,
			RepairCoverParams{WeakBound: bound})
		if err != nil {
			if !errors.Is(err, ErrRepairFallback) {
				t.Fatalf("epoch %d: unexpected error %v", epoch, err)
			}
			fallbacks++
			next = SparseCover(g, nil, p)
		} else if rep.NewClusters > 0 {
			patched++
		}
		checkCoverInvariants(t, "repaired", g, next, bound)
		cur = next
	}
	if patched == 0 {
		t.Fatal("churn sequence never appended a patch cluster")
	}
	t.Logf("%d epochs with patches, %d fallbacks", patched, fallbacks)
}

// TestRepairCoverDeltaGuards pins the cover repair refusal paths.
func TestRepairCoverDeltaGuards(t *testing.T) {
	cg := newChurnCycle(100)
	g := cg.graph()
	p := ENParams{Lambda: 0.3, Seed: 1}
	c := SparseCover(g, nil, p)

	if _, _, err := RepairCoverDelta(context.Background(), g, c, EdgeDelta{},
		RepairCoverParams{WeakBound: 1}); !errors.Is(err, ErrRepairFallback) {
		t.Fatalf("degenerate bound: err = %v, want ErrRepairFallback", err)
	}
	if _, _, err := RepairCoverDelta(context.Background(), g, c,
		EdgeDelta{Removed: [][2]int32{{0, 500}}},
		RepairCoverParams{WeakBound: p.WeakDiameterBound(g.N())}); !errors.Is(err, ErrRepairFallback) {
		t.Fatalf("out-of-range edge: err = %v, want ErrRepairFallback", err)
	}
	// An empty delta hands the cover back unchanged.
	out, rep, err := RepairCoverDelta(context.Background(), g, c, EdgeDelta{},
		RepairCoverParams{WeakBound: p.WeakDiameterBound(g.N())})
	if err != nil || out != c || rep.NewClusters != 0 {
		t.Fatalf("empty delta: got (%p, %+v, %v), want the input back", out, rep, err)
	}
}
