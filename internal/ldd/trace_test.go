package ldd

import (
	"context"
	"strings"
	"testing"

	"repro/internal/graph/gen"
	"repro/internal/obs"
	"repro/internal/xrand"
)

// TestChangLiTracePhases checks the decomposition stamps its paper-phase
// structure into a carried trace — and that running traced changes nothing
// about the result.
func TestChangLiTracePhases(t *testing.T) {
	g := gen.GNP(400, 8.0/400, xrand.New(3))
	p := Params{Epsilon: 0.3, Seed: 7, Scale: 0.05}

	plain := ChangLi(g, p)

	tracer := obs.NewTracer(obs.TracerOptions{RingSize: 2})
	ctx, tr := tracer.Start(context.Background(), "changli")
	traced, err := ChangLiCtx(ctx, g, p)
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish(0)

	if traced.NumClusters != plain.NumClusters || traced.Rounds != plain.Rounds {
		t.Fatalf("traced run differs: %d/%d clusters, %d/%d rounds",
			traced.NumClusters, plain.NumClusters, traced.Rounds, plain.Rounds)
	}
	for v := range plain.ClusterOf {
		if traced.ClusterOf[v] != plain.ClusterOf[v] {
			t.Fatalf("traced run differs at vertex %d", v)
		}
	}

	s := tracer.Recent(1)[0]
	names := make([]string, len(s.Phases))
	for i, ph := range s.Phases {
		names[i] = ph.Name
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"estimate", "carve-1", "phase2-carve", "phase3-en", "assemble"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing phase %q in %s", want, joined)
		}
	}
	// Phases are sequential here, so they must nest within the total.
	var sum int64
	for _, ph := range s.Phases {
		sum += int64(ph.Dur)
	}
	if sum > int64(s.Total) {
		t.Fatalf("phase sum %d exceeds total %d", sum, s.Total)
	}
}
