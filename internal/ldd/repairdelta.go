package ldd

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"

	"repro/internal/graph"
)

// ErrRepairFallback reports that a delta repair declined to produce a
// result — the delta touched too much of the graph, a repaired cluster
// failed certification, or the repaired quality would not match a fresh
// run — and the caller should fall back to a full recompute. Test with
// errors.Is.
var ErrRepairFallback = errors.New("ldd: delta repair needs full recompute")

// EdgeDelta is the net edge difference between the graph a cached result
// was computed on (the ancestor) and the graph being served: Added edges
// are present now but not then, Removed edges the reverse. Endpoints are
// normalized U < V and each edge appears at most once on one side (callers
// collapse raw mutation logs — an add followed by a delete of the same
// edge nets out to nothing).
type EdgeDelta struct {
	Added   [][2]int32
	Removed [][2]int32
}

// Size returns the number of net edge changes.
func (d EdgeDelta) Size() int { return len(d.Added) + len(d.Removed) }

// Empty reports whether the two graph versions have identical edge sets.
func (d EdgeDelta) Empty() bool { return len(d.Added) == 0 && len(d.Removed) == 0 }

// RepairDeltaParams tunes RepairDelta. The zero value of each field selects
// the documented default.
type RepairDeltaParams struct {
	// Epsilon is the quality parameter of the decomposition being repaired;
	// re-carved regions use SequentialLDD(Epsilon/2) exactly like
	// RepairDiameterCtx, so repaired clusters meet the same strong-diameter
	// construction bound. <= 0 means 0.5 (derive's clamp).
	Epsilon float64
	// WeakBound is the weak-diameter budget certified for every cluster the
	// repair keeps across an edge deletion (Params.WeakDiameterBound for
	// Theorem 1.1 decompositions). <= 0 disables certificates, forcing
	// every deletion-touched cluster to be re-carved.
	WeakBound int
	// MaxRegionFrac caps the re-carved region as a fraction of n; a larger
	// affected region falls back to a full recompute (repair would not be
	// meaningfully cheaper). <= 0 means 0.5.
	MaxRegionFrac float64
	// MaxUnclusteredFrac caps the repaired result's unclustered fraction —
	// the quality invariant a fresh run guarantees. <= 0 means Epsilon.
	MaxUnclusteredFrac float64
	// Workers bounds the worker pool for the certificate BFS sweeps (the
	// levels of each certificate ball expand in parallel, bit-identically
	// for every worker count). <= 0 means GOMAXPROCS.
	Workers int
}

// RepairReport describes what a delta repair did, for observability.
type RepairReport struct {
	// Certified counts deletion-touched clusters kept in place because a
	// single-BFS weak-diameter certificate proved them still within budget.
	Certified int
	// Recarved counts clusters dissolved into the re-carve region.
	Recarved int
	// Region is the number of vertices re-carved.
	Region int
	// NewClusters counts clusters produced by the re-carve (for covers:
	// patch clusters appended).
	NewClusters int
}

// WeakDiameterBound returns the weak-diameter budget a Theorem 1.1 run
// under p on an n-vertex graph stays within: carve clusters are unions of
// balls whose radii telescope over the iteration intervals (≤ Σ 2·b_i),
// and Phase-3 Elkin–Neiman clusters have strong diameter ≤ 8·ln(ñ)/λ at
// λ = ε/10. Fresh runs satisfy the bound whp — the churn equivalence
// suite asserts it for both fresh and repaired decompositions, so delta
// repair certifies surviving clusters against the same invariant.
func (p Params) WeakDiameterBound(n int) int {
	d := derive(n, p)
	eps := p.Epsilon
	if eps <= 0 {
		eps = 0.5
	}
	if eps > 1 {
		eps = 1
	}
	carve := 0
	for _, iv := range d.Intervals {
		carve += 2 * iv[1]
	}
	en := int(math.Ceil(80 * d.LnTilde / eps))
	if en > carve {
		return en
	}
	return carve
}

// concreteView unwraps a read view to the CSR graph a re-carve needs:
// either the view is a *graph.Graph already, or it can materialize one
// (store snapshots). Only the re-carve path pays for materialization —
// certificate-only repairs run entirely on the view.
func concreteView(v graph.View) (*graph.Graph, error) {
	switch g := v.(type) {
	case *graph.Graph:
		return g, nil
	case interface{ Graph() *graph.Graph }:
		return g.Graph(), nil
	}
	return nil, fmt.Errorf("%w: view %T cannot materialize a CSR for the re-carve", ErrRepairFallback, v)
}

// RepairDelta repairs a decomposition computed on an ancestor graph onto
// the current graph gv, which differs from the ancestor by delta. Instead
// of rerunning the full pipeline, it classifies each net edge change by
// how it can break the decomposition's invariants and touches only the
// incident clusters:
//
//   - An added edge whose endpoints lie in two distinct clusters breaks
//     separation (Definition 1.4): both clusters are re-carved. Added
//     edges inside one cluster or touching unclustered vertices break
//     nothing.
//   - A removed edge inside one cluster can only stretch (or disconnect)
//     that cluster: a single-BFS certificate checks every member is still
//     within WeakBound/2 of one member, which bounds the weak diameter by
//     WeakBound without re-carving. Failed certificates re-carve. Removed
//     edges between clusters or off-cluster only widen separation.
//
// The affected clusters are dissolved into a region and re-carved with
// SequentialLDD(Epsilon/2) — the same machinery as RepairDiameterCtx, so
// re-carved clusters meet the strong-diameter construction bound while
// boundary vertices become eligible for re-assignment. Untouched clusters
// are spliced through unchanged; separation between the re-carved region
// and the rest is then re-validated explicitly, and the repaired result
// must keep the unclustered fraction within MaxUnclusteredFrac.
//
// Returns ErrRepairFallback (wrapped, test with errors.Is) when the delta
// is malformed, the affected region exceeds MaxRegionFrac·n, or a quality
// invariant would be violated; the caller recomputes from scratch. When
// nothing is affected the input decomposition is returned unchanged (it is
// immutable and safe to share).
//
// gv is a read view of the current graph — a *graph.Graph or a store
// snapshot. Certificates and separation checks run directly on the view;
// a CSR is materialized (Snapshot.Graph) only when a re-carve is needed,
// which keeps certificate-only repairs free of the O(n+m) materialization
// that dominates a full recompute's setup.
func RepairDelta(ctx context.Context, gv graph.View, old *Decomposition, delta EdgeDelta, p RepairDeltaParams) (*Decomposition, *RepairReport, error) {
	n := gv.N()
	if len(old.ClusterOf) != n {
		return nil, nil, fmt.Errorf("%w: decomposition is over %d vertices, graph has %d", ErrRepairFallback, len(old.ClusterOf), n)
	}
	eps := p.Epsilon
	if eps <= 0 {
		eps = 0.5
	}
	if eps > 1 {
		eps = 1
	}
	maxUnc := p.MaxUnclusteredFrac
	if maxUnc <= 0 {
		maxUnc = eps
	}
	maxRegion := p.MaxRegionFrac
	if maxRegion <= 0 {
		maxRegion = 0.5
	}

	affected := make([]bool, old.NumClusters)
	var certCand []int32 // deletion-touched clusters to certify, deduped
	onList := make([]bool, old.NumClusters)
	for _, e := range delta.Added {
		u, v := e[0], e[1]
		if u < 0 || v < 0 || int(u) >= n || int(v) >= n {
			return nil, nil, fmt.Errorf("%w: delta edge {%d,%d} out of range", ErrRepairFallback, u, v)
		}
		cu, cv := old.ClusterOf[u], old.ClusterOf[v]
		if int(cu) >= old.NumClusters || int(cv) >= old.NumClusters {
			return nil, nil, fmt.Errorf("%w: cluster id out of range", ErrRepairFallback)
		}
		if cu >= 0 && cv >= 0 && cu != cv {
			affected[cu] = true
			affected[cv] = true
		}
	}
	for _, e := range delta.Removed {
		u, v := e[0], e[1]
		if u < 0 || v < 0 || int(u) >= n || int(v) >= n {
			return nil, nil, fmt.Errorf("%w: delta edge {%d,%d} out of range", ErrRepairFallback, u, v)
		}
		cu, cv := old.ClusterOf[u], old.ClusterOf[v]
		if int(cu) >= old.NumClusters || int(cv) >= old.NumClusters {
			return nil, nil, fmt.Errorf("%w: cluster id out of range", ErrRepairFallback)
		}
		if cu >= 0 && cu == cv && !onList[cu] {
			onList[cu] = true
			certCand = append(certCand, cu)
		}
	}

	rep := &RepairReport{}
	clusters := old.Clusters()
	if len(certCand) > 0 && p.WeakBound > 0 {
		pw := graph.AcquireParWorkspace()
		for _, cid := range certCand {
			if affected[cid] {
				continue
			}
			if certifyWeakDiameter(gv, pw, clusters[cid], old.ClusterOf, cid, p.WeakBound, p.Workers) {
				rep.Certified++
				continue
			}
			affected[cid] = true
		}
		graph.ReleaseParWorkspace(pw)
	} else {
		for _, cid := range certCand {
			affected[cid] = true
		}
	}

	region := 0
	for cid, hit := range affected {
		if hit {
			rep.Recarved++
			region += len(clusters[cid])
		}
	}
	if rep.Recarved == 0 {
		return old, rep, nil
	}
	rep.Region = region
	if float64(region) > maxRegion*float64(n) {
		return nil, nil, fmt.Errorf("%w: affected region %d of %d vertices exceeds cap %.2f", ErrRepairFallback, region, n, maxRegion)
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	// Dissolve the affected clusters and re-carve the region in the new
	// graph. Every mask vertex ends up in a sub-cluster or deleted, so the
	// overwrite below covers the whole region. The re-carve is the one path
	// that needs a concrete CSR (SequentialLDD's workspace traversals).
	g, err := concreteView(gv)
	if err != nil {
		return nil, nil, err
	}
	mask := make([]bool, n)
	for cid, hit := range affected {
		if !hit {
			continue
		}
		for _, v := range clusters[cid] {
			mask[v] = true
		}
	}
	subClusters, dead := SequentialLDD(g, mask, eps/2)
	out := &Decomposition{
		ClusterOf: append([]int32(nil), old.ClusterOf...),
		Rounds:    old.Rounds, // local recomputation is free in LOCAL
	}
	for i, sc := range subClusters {
		id := int32(old.NumClusters + i) // temporary id, compacted below
		for _, v := range sc {
			out.ClusterOf[v] = id
		}
	}
	for _, v := range dead {
		out.ClusterOf[v] = Unclustered
	}
	rep.NewClusters = len(subClusters)
	out.NumClusters = relabel(out.ClusterOf)

	// Re-validate separation on every edge that can have changed it: any
	// new violation is incident to a re-carved vertex or an added edge,
	// and added cross-cluster edges put both endpoints in the region.
	for v := 0; v < n; v++ {
		if !mask[v] {
			continue
		}
		if !separatedAt(g, out.ClusterOf, int32(v)) {
			return nil, nil, fmt.Errorf("%w: re-carve broke separation at vertex %d", ErrRepairFallback, v)
		}
	}
	for _, e := range delta.Added {
		if !separatedAt(g, out.ClusterOf, e[0]) || !separatedAt(g, out.ClusterOf, e[1]) {
			return nil, nil, fmt.Errorf("%w: added edge {%d,%d} broke separation", ErrRepairFallback, e[0], e[1])
		}
	}
	unclustered := 0
	for _, c := range out.ClusterOf {
		if c < 0 {
			unclustered++
		}
	}
	if float64(unclustered) > maxUnc*float64(n)+1 {
		return nil, nil, fmt.Errorf("%w: unclustered fraction %.4f exceeds %.4f", ErrRepairFallback, float64(unclustered)/float64(n), maxUnc)
	}
	return out, rep, nil
}

// certifyWeakDiameter proves cluster cid's weak diameter in gv is at most
// bound with a single BFS: if every member is within bound/2 of members[0]
// (distances in the full graph — weak diameter allows shortcuts through
// other clusters), the triangle inequality bounds all pairwise distances
// by bound. One-sided: a false return means "unproven", not "violated".
// Runs on the View so overlay-backed snapshots certify without a CSR; the
// BFS levels expand across the worker pool (the single traversal is the
// whole cost of a certificate-only repair).
func certifyWeakDiameter(gv graph.View, pw *graph.ParWorkspace, members []int32, clusterOf []int32, cid int32, bound, workers int) bool {
	if len(members) <= 1 {
		return true
	}
	seen := 0
	seed := [1]int32{members[0]}
	for _, v := range graph.ParBallFromSet(pw, gv, seed[:], bound/2, nil, workers) {
		if clusterOf[v] == cid {
			seen++
		}
	}
	return seen == len(members)
}

// WeakDiameterBound returns the Lemma C.2 weak-diameter bound 8·ln(ñ)/λ
// for a sparse cover under p on an n-vertex graph (with the +1 rounding
// slack the test suite pins). Lambda <= 0 degenerates to n.
func (p ENParams) WeakDiameterBound(n int) int {
	if p.Lambda <= 0 {
		return n
	}
	nTilde := p.NTilde
	if nTilde < n {
		nTilde = n
	}
	return int(math.Ceil(8*lnTilde(nTilde)/p.Lambda)) + 1
}

// RepairCoverParams tunes RepairCoverDelta.
type RepairCoverParams struct {
	// WeakBound is the weak-diameter budget (ENParams.WeakDiameterBound):
	// deletion-touched clusters are certified against it and patch balls
	// are grown to radius WeakBound/2. Must be >= 2.
	WeakBound int
	// MaxPatches caps the number of patch clusters appended per repair;
	// more added cross-cover edges fall back to a full recompute. <= 0
	// means 16.
	MaxPatches int
	// Workers bounds the worker pool for the certificate and patch-ball
	// BFS sweeps; <= 0 means GOMAXPROCS. Results are bit-identical for
	// every worker count.
	Workers int
}

// RepairCoverDelta repairs a sparse cover computed on an ancestor graph
// onto the current graph gv (a read view — certificates and patch balls
// are pure traversals, so cover repair never materializes a CSR). The
// cover invariants respond to edge changes asymmetrically:
//
//   - A removed edge never breaks coverage (a requirement disappeared) but
//     can stretch clusters containing both endpoints; each such cluster is
//     kept via the single-BFS weak-diameter certificate or the repair
//     falls back.
//   - An added edge {u,v} needs some cluster containing both endpoints. If
//     none exists, a patch cluster — the ball N^(WeakBound/2)(u), which
//     contains v and has weak diameter ≤ WeakBound by construction — is
//     appended. Vertex multiplicity can degrade by one per patch (the
//     Geometric(e^-λ) bound holds again after the next full run); callers
//     surface the recomputed multiplicity metrics.
//
// When nothing needs patching the input cover is returned unchanged.
// Returns ErrRepairFallback (test with errors.Is) when a certificate fails
// or the patch budget is exceeded.
func RepairCoverDelta(ctx context.Context, gv graph.View, old *Cover, delta EdgeDelta, p RepairCoverParams) (*Cover, *RepairReport, error) {
	n := gv.N()
	if len(old.MemberOf) != n {
		return nil, nil, fmt.Errorf("%w: cover is over %d vertices, graph has %d", ErrRepairFallback, len(old.MemberOf), n)
	}
	if p.WeakBound < 2 {
		return nil, nil, fmt.Errorf("%w: weak-diameter budget %d is degenerate", ErrRepairFallback, p.WeakBound)
	}
	maxPatches := p.MaxPatches
	if maxPatches <= 0 {
		maxPatches = 16
	}
	for _, e := range delta.Added {
		if e[0] < 0 || e[1] < 0 || int(e[0]) >= n || int(e[1]) >= n {
			return nil, nil, fmt.Errorf("%w: delta edge {%d,%d} out of range", ErrRepairFallback, e[0], e[1])
		}
	}
	for _, e := range delta.Removed {
		if e[0] < 0 || e[1] < 0 || int(e[0]) >= n || int(e[1]) >= n {
			return nil, nil, fmt.Errorf("%w: delta edge {%d,%d} out of range", ErrRepairFallback, e[0], e[1])
		}
	}

	rep := &RepairReport{}
	pw := graph.AcquireParWorkspace()
	defer graph.ReleaseParWorkspace(pw)
	inBall := make([]bool, n)
	certified := make(map[int32]bool)
	for _, e := range delta.Removed {
		for _, cid := range commonClusters(old.MemberOf[e[0]], old.MemberOf[e[1]], nil) {
			if certified[cid] {
				continue
			}
			if !certifyCoverCluster(gv, pw, old.Clusters[cid], p.WeakBound, inBall, p.Workers) {
				return nil, nil, fmt.Errorf("%w: cluster %d failed the weak-diameter certificate", ErrRepairFallback, cid)
			}
			certified[cid] = true
			rep.Certified++
		}
	}

	var patches [][2]int32
	for _, e := range delta.Added {
		if len(commonClusters(old.MemberOf[e[0]], old.MemberOf[e[1]], nil)) == 0 {
			patches = append(patches, e)
		}
	}
	if len(patches) > maxPatches {
		return nil, nil, fmt.Errorf("%w: %d patch clusters exceed cap %d", ErrRepairFallback, len(patches), maxPatches)
	}
	if len(patches) == 0 {
		return old, rep, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	out := &Cover{
		Clusters: append([][]int32(nil), old.Clusters...),
		MemberOf: append([][]int32(nil), old.MemberOf...),
		Rounds:   old.Rounds,
	}
	for _, e := range patches {
		// An earlier patch this repair may already cover the edge.
		if len(commonClusters(out.MemberOf[e[0]], out.MemberOf[e[1]], nil)) > 0 {
			continue
		}
		// ParBallFromSet aliases the workspace: copy before sorting (the
		// next traversal would clobber it).
		seed := [1]int32{e[0]}
		ball := append([]int32(nil), graph.ParBallFromSet(pw, gv, seed[:], p.WeakBound/2, nil, p.Workers)...)
		slices.Sort(ball)
		id := int32(len(out.Clusters))
		out.Clusters = append(out.Clusters, ball)
		for _, w := range ball {
			out.MemberOf[w] = append(append([]int32(nil), out.MemberOf[w]...), id)
		}
		rep.NewClusters++
		rep.Region += len(ball)
	}
	return out, rep, nil
}

// commonClusters appends to dst the cluster ids present in both membership
// lists (which are short — bounded by the vertex multiplicity).
func commonClusters(a, b []int32, dst []int32) []int32 {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				dst = append(dst, x)
				break
			}
		}
	}
	return dst
}

// certifyCoverCluster is certifyWeakDiameter for overlapping cover
// clusters: membership is marked in the scratch slice (cleared before
// return) instead of read off a partition labeling.
func certifyCoverCluster(gv graph.View, pw *graph.ParWorkspace, members []int32, bound int, scratch []bool, workers int) bool {
	if len(members) <= 1 {
		return true
	}
	seed := [1]int32{members[0]}
	ball := graph.ParBallFromSet(pw, gv, seed[:], bound/2, nil, workers)
	for _, v := range ball {
		scratch[v] = true
	}
	ok := true
	for _, v := range members {
		if !scratch[v] {
			ok = false
			break
		}
	}
	for _, v := range ball {
		scratch[v] = false
	}
	return ok
}

// separatedAt checks Definition 1.4 locally: no edge at v joins two
// distinct clusters.
func separatedAt(g *graph.Graph, clusterOf []int32, v int32) bool {
	cv := clusterOf[v]
	if cv < 0 {
		return true
	}
	for _, w := range g.Neighbors(int(v)) {
		if cw := clusterOf[w]; cw >= 0 && cw != cv {
			return false
		}
	}
	return true
}
