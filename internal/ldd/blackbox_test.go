package ldd

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
)

func TestBlackboxENBaseAblation(t *testing.T) {
	// The UseElkinNeimanBase ablation swaps the whp inner base for the
	// in-expectation one; both must yield valid decompositions.
	g := gen.Cycle(1000)
	for _, useEN := range []bool{false, true} {
		d := Blackbox(g, BlackboxParams{
			Epsilon: 0.25, Seed: 5, Scale: 0.02, UseElkinNeimanBase: useEN,
		})
		if ok, u, v := d.ValidateSeparation(g); !ok {
			t.Fatalf("useEN=%v: adjacent clusters %d-%d", useEN, u, v)
		}
		if d.Rounds <= 0 {
			t.Fatalf("useEN=%v: no rounds", useEN)
		}
	}
}

func TestBlackboxDeterministic(t *testing.T) {
	g := gen.Cycle(600)
	p := BlackboxParams{Epsilon: 0.3, Seed: 11, Scale: 0.02}
	d1 := Blackbox(g, p)
	d2 := Blackbox(g, p)
	for v := range d1.ClusterOf {
		if d1.ClusterOf[v] != d2.ClusterOf[v] {
			t.Fatal("nondeterministic")
		}
	}
}

func TestBlackboxSmallEps(t *testing.T) {
	// Small epsilon means large k = 2/eps hops per growth; the cycle is
	// short relative to k so everything collapses to few clusters.
	g := gen.Cycle(300)
	d := Blackbox(g, BlackboxParams{Epsilon: 0.05, Seed: 2, Scale: 0.05})
	if ok, _, _ := d.ValidateSeparation(g); !ok {
		t.Fatal("separation broken")
	}
	if d.UnclusteredFraction() > 0.5 {
		t.Fatalf("unclustered %v", d.UnclusteredFraction())
	}
}

func TestBlackboxDisconnected(t *testing.T) {
	// Two components; both must be handled.
	b := newTwoCycles(150, 150)
	d := Blackbox(b, BlackboxParams{Epsilon: 0.3, Seed: 3, Scale: 0.05})
	if ok, _, _ := d.ValidateSeparation(b); !ok {
		t.Fatal("separation broken")
	}
	clustered := b.N() - d.UnclusteredCount()
	if clustered < b.N()/2 {
		t.Fatalf("only %d of %d clustered", clustered, b.N())
	}
}

func TestBlackboxEdgelessAndTiny(t *testing.T) {
	g := gen.Path(2)
	d := Blackbox(g, BlackboxParams{Epsilon: 0.5, Seed: 1})
	if ok, _, _ := d.ValidateSeparation(g); !ok {
		t.Fatal("tiny graph separation")
	}
}

// newTwoCycles builds two disjoint cycles of the given lengths.
func newTwoCycles(a, b int) *graph.Graph {
	gb := graph.NewBuilder(a + b)
	for i := 0; i < a; i++ {
		gb.AddEdge(i, (i+1)%a)
	}
	for i := 0; i < b; i++ {
		gb.AddEdge(a+i, a+(i+1)%b)
	}
	return gb.Build()
}
