package ldd

import (
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/local"
)

// This file implements Elkin–Neiman as an honest message-passing protocol on
// the local.Engine: each vertex draws its exponential shift locally, floods
// (source, value) labels that decay by one per hop, and decides after the
// broadcast horizon. Given the same seed it produces bit-identical output to
// the oracle implementation in en16.go — the cross-check test is the
// evidence that the oracle's round accounting simulates a real LOCAL
// protocol.

// enLabelMsg is the message payload: a batch of labels, already decremented
// for the receiver.
type enLabelMsg []label

// SizeBits implements local.Sizer: each label is (id, value) ~ 96 bits. The
// per-round batches make this a LOCAL-model (not CONGEST) protocol, which
// the audit in the tests demonstrates.
func (m enLabelMsg) SizeBits() int { return 96 * len(m) }

// enMachine is the per-vertex protocol state.
type enMachine struct {
	v       int
	degree  int
	horizon int
	// best value per source seen so far.
	values map[int32]float64
	// labels accepted this round, to be relayed next round.
	fresh []label
	// final decision
	cluster int32
	deleted bool
}

func (m *enMachine) bestValue() float64 {
	best := math.Inf(-1)
	for _, val := range m.values {
		if val > best {
			best = val
		}
	}
	return best
}

func (m *enMachine) Round(round int, inbox []local.Message) ([]local.Message, bool) {
	// Merge incoming labels.
	for _, msg := range inbox {
		if msg == nil {
			continue
		}
		for _, l := range msg.(enLabelMsg) {
			if old, ok := m.values[l.source]; !ok || l.value > old {
				m.values[l.source] = l.value
				m.fresh = append(m.fresh, l)
			}
		}
	}
	// Relay fresh labels that can still matter anywhere: a label needed by a
	// neighbor w satisfies value-1 >= best(w) - 1 >= best(v) - 2, so
	// value >= best(v) - 1 at v; we relay with one unit of safety margin.
	// Values below -2 are globally irrelevant (every vertex's best is >= 0).
	var outLabels []label
	best := m.bestValue()
	for _, l := range m.fresh {
		nv := l.value - 1
		if nv < -2 || l.value < best-2 {
			continue
		}
		outLabels = append(outLabels, label{source: l.source, value: nv})
	}
	m.fresh = m.fresh[:0]

	var out []local.Message
	if len(outLabels) > 0 {
		out = make([]local.Message, m.degree)
		batch := enLabelMsg(outLabels)
		for i := range out {
			out[i] = batch
		}
	}
	if round >= m.horizon {
		m.decide()
		return out, true
	}
	return out, false
}

// decide applies the Lemma C.1 rule with the same tie-breaking as the
// oracle: best label wins with ties to the smaller source id; the vertex is
// deleted when a second distinct source comes within 1 of the best.
func (m *enMachine) decide() {
	type sv struct {
		source int32
		value  float64
	}
	all := make([]sv, 0, len(m.values))
	for s, val := range m.values {
		all = append(all, sv{s, val})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].value != all[j].value {
			return all[i].value > all[j].value
		}
		return all[i].source < all[j].source
	})
	if len(all) == 0 {
		m.deleted = true
		return
	}
	if len(all) >= 2 && all[1].value >= all[0].value-1 {
		m.deleted = true
		return
	}
	m.cluster = all[0].source
}

// ElkinNeimanDistributed runs the Lemma C.1 decomposition as a real
// message-passing protocol and returns the decomposition together with the
// engine statistics. Sequential selects the single-threaded executor. The
// output is identical to ElkinNeiman(g, nil, p) for the same parameters.
func ElkinNeimanDistributed(g *graph.Graph, p ENParams, sequential bool) (*Decomposition, local.Stats, error) {
	n := g.N()
	shifts, maxT := enShiftsOwned(n, p)
	horizon := int(math.Ceil(maxT)) + 3
	machines := make([]*enMachine, n)
	stats, err := local.Run(local.Config{
		Graph: g,
		NewMachine: func(v int) local.Machine {
			m := &enMachine{
				v:       v,
				degree:  g.Degree(v),
				horizon: horizon,
				values:  map[int32]float64{int32(v): shifts[v]},
				fresh:   []label{{source: int32(v), value: shifts[v]}},
				cluster: Unclustered,
			}
			machines[v] = m
			return m
		},
		MaxRounds:  horizon + 2,
		Sequential: sequential,
	})
	if err != nil {
		return nil, stats, err
	}
	clusterOf := make([]int32, n)
	for v, m := range machines {
		if m.deleted {
			clusterOf[v] = Unclustered
		} else {
			clusterOf[v] = m.cluster
		}
	}
	num := relabel(clusterOf)
	return &Decomposition{
		ClusterOf:   clusterOf,
		NumClusters: num,
		Rounds:      stats.Rounds,
	}, stats, nil
}
