package graphio

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"repro/internal/graph"
)

// Fingerprint is a content hash of a graph's CSR arrays. Two graphs have
// equal fingerprints iff they have the identical vertex numbering and edge
// set, regardless of which format (or generator) produced them, so a
// fingerprint is a sound cache key for decomposition results.
type Fingerprint [sha256.Size]byte

// String returns the fingerprint as lowercase hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Short returns the first 12 hex digits, for log lines.
func (f Fingerprint) Short() string { return f.String()[:12] }

// ParseFingerprint parses the lowercase-hex form produced by String. It is
// the wire decoder for replication streams, where fingerprints travel as
// JSON strings.
func ParseFingerprint(s string) (Fingerprint, error) {
	var f Fingerprint
	b, err := hex.DecodeString(s)
	if err != nil {
		return f, fmt.Errorf("graphio: bad fingerprint %q: %w", s, err)
	}
	if len(b) != len(f) {
		return f, fmt.Errorf("graphio: fingerprint must be %d bytes, got %d", len(f), len(b))
	}
	copy(f[:], b)
	return f, nil
}

// FingerprintOf hashes g's CSR (a domain-separation tag, the vertex count,
// the offsets array, and the adjacency array, all little-endian) with
// SHA-256. The CSR invariants — sorted unique neighbor lists — make the
// representation canonical, so the hash is stable across load paths.
func FingerprintOf(g *graph.Graph) Fingerprint {
	offsets, adj := g.CSR()
	h := sha256.New()
	h.Write([]byte("repro/graphio/csr/v1"))
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], uint64(g.N()))
	h.Write(scratch[:])
	buf := make([]byte, 0, 1<<16)
	flush := func() {
		h.Write(buf)
		buf = buf[:0]
	}
	for _, arr := range [][]int32{offsets, adj} {
		for _, x := range arr {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(x))
			if len(buf) >= 1<<16-4 {
				flush()
			}
		}
		flush()
	}
	var f Fingerprint
	h.Sum(f[:0])
	return f
}

// Mutation ops chained into incremental fingerprints by NextFingerprint.
// The values are part of the hash domain and must never be renumbered.
const (
	// OpAddEdge records an edge insertion.
	OpAddEdge byte = 1
	// OpDelEdge records an edge deletion (a tombstone).
	OpDelEdge byte = 2
)

// NextFingerprint chains one graph mutation into a new identity in O(1):
// the successor fingerprint of a graph with fingerprint prev after applying
// op to the normalized edge {u, v} (callers must pass u < v, or two
// stores replaying the same mutation would diverge). The chain is
// history-sensitive — the same edge set reached through different mutation
// orders gets different fingerprints — which is sound for result caching
// (equal fingerprints still imply equal graphs); store.Compact converges a
// mutated graph back to its canonical content fingerprint (FingerprintOf),
// so equal edge sets eventually share cache entries again.
func NextFingerprint(prev Fingerprint, op byte, u, v int32) Fingerprint {
	h := sha256.New()
	h.Write([]byte("repro/graphio/delta/v1"))
	h.Write(prev[:])
	var buf [9]byte
	buf[0] = op
	binary.LittleEndian.PutUint32(buf[1:5], uint32(u))
	binary.LittleEndian.PutUint32(buf[5:9], uint32(v))
	h.Write(buf[:])
	var f Fingerprint
	h.Sum(f[:0])
	return f
}
