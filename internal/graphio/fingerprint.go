package graphio

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"

	"repro/internal/graph"
)

// Fingerprint is a content hash of a graph's CSR arrays. Two graphs have
// equal fingerprints iff they have the identical vertex numbering and edge
// set, regardless of which format (or generator) produced them, so a
// fingerprint is a sound cache key for decomposition results.
type Fingerprint [sha256.Size]byte

// String returns the fingerprint as lowercase hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Short returns the first 12 hex digits, for log lines.
func (f Fingerprint) Short() string { return f.String()[:12] }

// FingerprintOf hashes g's CSR (a domain-separation tag, the vertex count,
// the offsets array, and the adjacency array, all little-endian) with
// SHA-256. The CSR invariants — sorted unique neighbor lists — make the
// representation canonical, so the hash is stable across load paths.
func FingerprintOf(g *graph.Graph) Fingerprint {
	offsets, adj := g.CSR()
	h := sha256.New()
	h.Write([]byte("repro/graphio/csr/v1"))
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], uint64(g.N()))
	h.Write(scratch[:])
	buf := make([]byte, 0, 1<<16)
	flush := func() {
		h.Write(buf)
		buf = buf[:0]
	}
	for _, arr := range [][]int32{offsets, adj} {
		for _, x := range arr {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(x))
			if len(buf) >= 1<<16-4 {
				flush()
			}
		}
		flush()
	}
	var f Fingerprint
	h.Sum(f[:0])
	return f
}
