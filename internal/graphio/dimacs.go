package graphio

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/graph"
)

// readDIMACS parses the DIMACS graph format: 'c' comment lines, exactly one
// "p edge n m" (or "p col n m") problem line before any edge, and m
// "e u v" descriptors with 1-indexed endpoints.
func readDIMACS(r io.Reader) (*graph.Graph, error) {
	ls := newLineScanner(r)
	var acc *edgeAccum
	wantEdges := 0
	for {
		text, line, ok := ls.next()
		if !ok {
			break
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "c":
			continue
		case "p":
			if acc != nil {
				return nil, fmt.Errorf("%w: line %d: duplicate problem line", ErrMalformed, line)
			}
			if len(fields) != 4 || (fields[1] != "edge" && fields[1] != "col") {
				return nil, fmt.Errorf("%w: line %d: want \"p edge n m\", got %q", ErrMalformed, line, text)
			}
			n, err := parseInt(fields[2], line)
			if err != nil {
				return nil, err
			}
			m, err := parseInt(fields[3], line)
			if err != nil {
				return nil, err
			}
			if err := checkHeader(n, m, line); err != nil {
				return nil, err
			}
			acc = newEdgeAccum(n, m)
			wantEdges = m
		case "e":
			if acc == nil {
				return nil, fmt.Errorf("%w: line %d: edge before problem line", ErrMalformed, line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("%w: line %d: want \"e u v\", got %q", ErrMalformed, line, text)
			}
			u, err := parseInt(fields[1], line)
			if err != nil {
				return nil, err
			}
			v, err := parseInt(fields[2], line)
			if err != nil {
				return nil, err
			}
			if u < 1 || v < 1 {
				return nil, fmt.Errorf("%w: line %d: DIMACS endpoints are 1-indexed, got %d %d", ErrMalformed, line, u, v)
			}
			if acc.edges >= wantEdges {
				return nil, fmt.Errorf("%w: line %d: more than the %d edges announced in the problem line", ErrMalformed, line, wantEdges)
			}
			if err := acc.add(u-1, v-1); err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
		default:
			return nil, fmt.Errorf("%w: line %d: unknown descriptor %q", ErrMalformed, line, fields[0])
		}
	}
	if err := ls.err(); err != nil {
		return nil, err
	}
	if acc == nil {
		return nil, fmt.Errorf("%w: missing problem line", ErrMalformed)
	}
	if acc.edges != wantEdges {
		return nil, fmt.Errorf("%w: problem line announced %d edges, found %d", ErrMalformed, wantEdges, acc.edges)
	}
	return acc.build()
}

// writeDIMACS serializes g as "p edge n m" followed by 1-indexed "e u v"
// descriptors with u < v.
func writeDIMACS(w io.Writer, g *graph.Graph) error {
	if _, err := fmt.Fprintf(w, "p edge %d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	var werr error
	g.Edges(func(u, v int) {
		if werr == nil {
			_, werr = fmt.Fprintf(w, "e %d %d\n", u+1, v+1)
		}
	})
	return werr
}
