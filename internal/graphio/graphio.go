// Package graphio reads and writes graphs in the three interchange formats
// common to graph-algorithm tooling — plain edge lists, DIMACS, and METIS —
// in both plain-text and gzip-compressed form, and fingerprints graphs for
// use as cache keys.
//
// All readers parse directly into the compressed-sparse-row representation
// of graph.Graph (degree count, prefix sum, fill, per-list sort) without
// building intermediate adjacency maps, and validate strictly: out-of-range
// endpoints, self-loops, duplicate edges, header/count mismatches, and
// malformed tokens are errors, not silently-dropped input. A graph loaded
// from any of the three formats therefore has the identical CSR — and the
// identical Fingerprint — as the original, which is what lets the engine
// cache decompositions across callers that load the same graph through
// different formats.
package graphio

import (
	"bufio"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"slices"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// Format identifies a supported on-disk graph format.
type Format int

const (
	// EdgeList is a plain "n m" header followed by m "u v" lines with
	// 0-indexed endpoints; '#' starts a comment.
	EdgeList Format = iota + 1
	// DIMACS is the DIMACS graph format: 'c' comment lines, one
	// "p edge n m" problem line, and m "e u v" lines with 1-indexed
	// endpoints.
	DIMACS
	// METIS is the METIS/Chaco adjacency format: an "n m" header line
	// followed by n lines, where line i lists the 1-indexed neighbors of
	// vertex i; '%' starts a comment.
	METIS
)

// String implements fmt.Stringer.
func (f Format) String() string {
	switch f {
	case EdgeList:
		return "edgelist"
	case DIMACS:
		return "dimacs"
	case METIS:
		return "metis"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ErrMalformed wraps every parse-time validation failure.
var ErrMalformed = errors.New("graphio: malformed input")

// Read parses a graph in the given format from r.
func Read(r io.Reader, f Format) (*graph.Graph, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	switch f {
	case EdgeList:
		return readEdgeList(br)
	case DIMACS:
		return readDIMACS(br)
	case METIS:
		return readMETIS(br)
	default:
		return nil, fmt.Errorf("graphio: unknown format %d", int(f))
	}
}

// Write serializes g in the given format to w.
func Write(w io.Writer, f Format, g *graph.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var err error
	switch f {
	case EdgeList:
		err = writeEdgeList(bw, g)
	case DIMACS:
		err = writeDIMACS(bw, g)
	case METIS:
		err = writeMETIS(bw, g)
	default:
		return fmt.Errorf("graphio: unknown format %d", int(f))
	}
	if err != nil {
		return err
	}
	return bw.Flush()
}

// FormatForPath infers (format, gzipped) from a file name: a trailing ".gz"
// marks gzip compression, and the preceding extension selects the format —
// ".el"/".edges" for EdgeList, ".dimacs"/".col" for DIMACS,
// ".metis"/".graph" for METIS.
func FormatForPath(path string) (Format, bool, error) {
	name := path
	gzipped := false
	if strings.HasSuffix(name, ".gz") {
		gzipped = true
		name = strings.TrimSuffix(name, ".gz")
	}
	switch {
	case strings.HasSuffix(name, ".el"), strings.HasSuffix(name, ".edges"):
		return EdgeList, gzipped, nil
	case strings.HasSuffix(name, ".dimacs"), strings.HasSuffix(name, ".col"):
		return DIMACS, gzipped, nil
	case strings.HasSuffix(name, ".metis"), strings.HasSuffix(name, ".graph"):
		return METIS, gzipped, nil
	default:
		return 0, gzipped, fmt.Errorf("graphio: cannot infer format from path %q", path)
	}
}

// Load reads a graph from path, inferring format and gzip compression from
// the file name (see FormatForPath).
func Load(path string) (*graph.Graph, error) {
	f, gzipped, err := FormatForPath(path)
	if err != nil {
		return nil, err
	}
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	var r io.Reader = file
	if gzipped {
		zr, err := gzip.NewReader(file)
		if err != nil {
			return nil, fmt.Errorf("graphio: %s: %w", path, err)
		}
		defer zr.Close()
		r = zr
	}
	g, err := Read(r, f)
	if err != nil {
		return nil, fmt.Errorf("graphio: %s: %w", path, err)
	}
	return g, nil
}

// Save writes a graph to path, inferring format and gzip compression from
// the file name (see FormatForPath).
func Save(path string, g *graph.Graph) error {
	f, gzipped, err := FormatForPath(path)
	if err != nil {
		return err
	}
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	defer file.Close()
	if gzipped {
		zw := gzip.NewWriter(file)
		if err := Write(zw, f, g); err != nil {
			zw.Close()
			return err
		}
		if err := zw.Close(); err != nil {
			return err
		}
	} else if err := Write(file, f, g); err != nil {
		return err
	}
	return file.Close()
}

// CSR arrays index with int32, so a parsable header must fit these bounds;
// anything larger is rejected before allocation rather than trusted into a
// make() call (a one-line hostile file must not panic or OOM the process).
const (
	maxHeaderVertices = math.MaxInt32 - 1
	maxHeaderEdges    = math.MaxInt32 / 2
	// preallocCap bounds how many entries a header is trusted to
	// preallocate; beyond it, buffers grow as the stream actually
	// delivers data.
	preallocCap = 1 << 20
)

// checkHeader validates header counts against the CSR bounds.
func checkHeader(n, m, line int) error {
	if n < 0 || m < 0 {
		return fmt.Errorf("%w: line %d: negative header counts", ErrMalformed, line)
	}
	if n > maxHeaderVertices || m > maxHeaderEdges {
		return fmt.Errorf("%w: line %d: header counts n=%d m=%d exceed CSR bounds", ErrMalformed, line, n, m)
	}
	return nil
}

// edgeAccum assembles a CSR from a stream of validated undirected edges:
// degrees are counted on the fly, and the flat endpoint buffer is scattered
// into adjacency position once the stream ends. No per-vertex maps or
// nested slices are built.
type edgeAccum struct {
	n     int
	deg   []int32
	flat  []int32 // u0 v0 u1 v1 ...
	edges int
}

func newEdgeAccum(n, m int) *edgeAccum {
	return &edgeAccum{n: n, deg: make([]int32, n), flat: make([]int32, 0, min(2*m, preallocCap))}
}

// add validates and records one undirected edge.
func (a *edgeAccum) add(u, v int) error {
	if u < 0 || u >= a.n || v < 0 || v >= a.n {
		return fmt.Errorf("%w: edge endpoint out of range: {%d, %d} with n=%d", ErrMalformed, u, v, a.n)
	}
	if u == v {
		return fmt.Errorf("%w: self-loop on vertex %d", ErrMalformed, u)
	}
	a.deg[u]++
	a.deg[v]++
	a.flat = append(a.flat, int32(u), int32(v))
	a.edges++
	return nil
}

// build finalizes the CSR and constructs the validated Graph. Duplicate
// edges surface here as non-strictly-sorted adjacency (rejected by
// graph.FromCSR).
func (a *edgeAccum) build() (*graph.Graph, error) {
	offsets := make([]int32, a.n+1)
	for v := 0; v < a.n; v++ {
		offsets[v+1] = offsets[v] + a.deg[v]
	}
	adj := make([]int32, offsets[a.n])
	cursor := make([]int32, a.n)
	copy(cursor, offsets[:a.n])
	for i := 0; i < len(a.flat); i += 2 {
		u, v := a.flat[i], a.flat[i+1]
		adj[cursor[u]] = v
		cursor[u]++
		adj[cursor[v]] = u
		cursor[v]++
	}
	for v := 0; v < a.n; v++ {
		slices.Sort(adj[offsets[v]:offsets[v+1]])
	}
	g, err := graph.FromCSR(offsets, adj)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return g, nil
}

// lineScanner wraps bufio.Scanner with a line counter and a generous buffer
// (METIS adjacency lines grow with max degree).
type lineScanner struct {
	s    *bufio.Scanner
	line int
}

func newLineScanner(r io.Reader) *lineScanner {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 1<<16), 1<<26)
	return &lineScanner{s: s}
}

// next returns the next line, its number, and whether one was read.
func (ls *lineScanner) next() (string, int, bool) {
	if !ls.s.Scan() {
		return "", ls.line, false
	}
	ls.line++
	return ls.s.Text(), ls.line, true
}

func (ls *lineScanner) err() error { return ls.s.Err() }

// parseInt parses a single non-negative integer token.
func parseInt(tok string, line int) (int, error) {
	x, err := strconv.Atoi(tok)
	if err != nil {
		return 0, fmt.Errorf("%w: line %d: bad integer %q", ErrMalformed, line, tok)
	}
	return x, nil
}
