package graphio

import (
	"bytes"
	"compress/gzip"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/xrand"
)

var allFormats = []Format{EdgeList, DIMACS, METIS}

// sameCSR reports whether two graphs have identical CSR arrays.
func sameCSR(a, b *graph.Graph) bool {
	ao, aa := a.CSR()
	bo, ba := b.CSR()
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	return bytes.Equal(int32Bytes(ao), int32Bytes(bo)) && bytes.Equal(int32Bytes(aa), int32Bytes(ba))
}

func int32Bytes(s []int32) []byte {
	out := make([]byte, 0, 4*len(s))
	for _, x := range s {
		out = append(out, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	return out
}

// testGraphs is the round-trip corpus: degenerate shapes (empty, edgeless,
// isolated final vertex) plus structured and random topologies.
func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rng := xrand.New(7)
	withIsolated := graph.NewBuilder(6)
	withIsolated.AddEdge(0, 1)
	withIsolated.AddEdge(1, 4)
	return map[string]*graph.Graph{
		"empty":    graph.NewBuilder(0).Build(),
		"edgeless": graph.NewBuilder(5).Build(),
		"isolated": withIsolated.Build(),
		"cycle":    gen.Cycle(17),
		"grid":     gen.Grid(6, 9),
		"complete": gen.Complete(9),
		"gnp":      gen.GNP(120, 0.07, rng),
	}
}

func TestRoundTripAllFormats(t *testing.T) {
	for name, g := range testGraphs(t) {
		for _, f := range allFormats {
			var buf bytes.Buffer
			if err := Write(&buf, f, g); err != nil {
				t.Fatalf("%s/%s: write: %v", name, f, err)
			}
			got, err := Read(&buf, f)
			if err != nil {
				t.Fatalf("%s/%s: read: %v", name, f, err)
			}
			if !sameCSR(g, got) {
				t.Fatalf("%s/%s: round-trip CSR mismatch: wrote %v, read %v", name, f, g, got)
			}
			if FingerprintOf(g) != FingerprintOf(got) {
				t.Fatalf("%s/%s: fingerprint changed across round-trip", name, f)
			}
		}
	}
}

func TestRoundTripFilesAndGzip(t *testing.T) {
	g := gen.GNP(200, 0.05, xrand.New(3))
	dir := t.TempDir()
	for _, name := range []string{
		"g.el", "g.edges", "g.dimacs", "g.col", "g.metis", "g.graph",
		"g.el.gz", "g.dimacs.gz", "g.metis.gz",
	} {
		path := filepath.Join(dir, name)
		if err := Save(path, g); err != nil {
			t.Fatalf("save %s: %v", name, err)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		if !sameCSR(g, got) {
			t.Fatalf("%s: file round-trip CSR mismatch", name)
		}
	}
	if _, _, err := FormatForPath("mystery.bin"); err == nil {
		t.Fatal("unknown extension accepted")
	}
	if _, err := Load(filepath.Join(dir, "missing.el")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestCrossFormatFingerprint is the acceptance check: a >= 100k-edge
// generated graph written to and re-read from all three formats (plus gzip)
// yields bit-identical CSRs and hence identical fingerprints.
func TestCrossFormatFingerprint(t *testing.T) {
	g := gen.GNP(20000, 11.0/20000, xrand.New(42))
	if g.M() < 100000 {
		t.Fatalf("generator produced only %d edges; want >= 100000", g.M())
	}
	want := FingerprintOf(g)
	for _, f := range allFormats {
		var buf bytes.Buffer
		if err := Write(&buf, f, g); err != nil {
			t.Fatalf("%s: write: %v", f, err)
		}
		got, err := Read(&buf, f)
		if err != nil {
			t.Fatalf("%s: read: %v", f, err)
		}
		if fp := FingerprintOf(got); fp != want {
			t.Fatalf("%s: fingerprint %s != original %s", f, fp.Short(), want.Short())
		}
	}
	// Gzip path too, via files.
	dir := t.TempDir()
	path := filepath.Join(dir, "big.metis.gz")
	if err := Save(path, g); err != nil {
		t.Fatalf("save gzip: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("load gzip: %v", err)
	}
	if fp := FingerprintOf(got); fp != want {
		t.Fatalf("gzip: fingerprint %s != original %s", fp.Short(), want.Short())
	}
}

func TestFingerprintDiscriminates(t *testing.T) {
	a := gen.Cycle(50)
	b := gen.Path(50)
	c := gen.Cycle(51)
	fa, fb, fc := FingerprintOf(a), FingerprintOf(b), FingerprintOf(c)
	if fa == fb || fa == fc || fb == fc {
		t.Fatalf("distinct graphs share a fingerprint: %s %s %s", fa.Short(), fb.Short(), fc.Short())
	}
	if FingerprintOf(gen.Cycle(50)) != fa {
		t.Fatal("fingerprint not deterministic")
	}
}

func TestMalformedInputs(t *testing.T) {
	cases := []struct {
		name   string
		format Format
		input  string
	}{
		{"el-no-header", EdgeList, "# only a comment\n"},
		{"el-huge-m", EdgeList, "2 4000000000000000000\n"},
		{"el-huge-n", EdgeList, "4000000000000000000 1\n0 1\n"},
		{"dimacs-huge-m", DIMACS, "p edge 2 4000000000000000000\n"},
		{"metis-huge-m", METIS, "2 4000000000000000000\n"},
		{"el-bad-header", EdgeList, "3\n"},
		{"el-bad-token", EdgeList, "3 1\n0 x\n"},
		{"el-out-of-range", EdgeList, "3 1\n0 3\n"},
		{"el-negative", EdgeList, "3 1\n0 -1\n"},
		{"el-self-loop", EdgeList, "3 1\n1 1\n"},
		{"el-duplicate", EdgeList, "3 2\n0 1\n1 0\n"},
		{"el-too-few", EdgeList, "3 2\n0 1\n"},
		{"el-too-many", EdgeList, "3 1\n0 1\n1 2\n"},
		{"dimacs-no-p", DIMACS, "c hi\ne 1 2\n"},
		{"dimacs-double-p", DIMACS, "p edge 3 0\np edge 3 0\n"},
		{"dimacs-bad-kind", DIMACS, "p matrix 3 1\ne 1 2\n"},
		{"dimacs-zero-indexed", DIMACS, "p edge 3 1\ne 0 1\n"},
		{"dimacs-unknown-desc", DIMACS, "p edge 3 1\nq 1 2\n"},
		{"dimacs-count", DIMACS, "p edge 3 2\ne 1 2\n"},
		{"metis-no-header", METIS, "% only a comment\n"},
		{"metis-weighted", METIS, "2 1 011\n2 1\n1 1\n"},
		{"metis-missing-lines", METIS, "3 2\n2 3\n"},
		{"metis-extra-lines", METIS, "2 1\n2\n1\n1\n"},
		{"metis-zero-indexed", METIS, "2 1\n1\n0\n"},
		{"metis-self-loop", METIS, "2 1\n1\n2\n"},
		{"metis-asymmetric", METIS, "3 2\n2 3\n1\n2\n"},
		{"metis-count-mismatch", METIS, "2 2\n2\n1\n"},
		{"metis-duplicate", METIS, "2 2\n2 2\n1 1\n"},
	}
	for _, tc := range cases {
		_, err := Read(strings.NewReader(tc.input), tc.format)
		if err == nil {
			t.Errorf("%s: malformed input accepted", tc.name)
			continue
		}
		if !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: error %v does not wrap ErrMalformed", tc.name, err)
		}
	}
}

func TestCorruptGzipRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.el.gz")
	if err := Save(path, gen.Cycle(5)); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-stream: the loader must fail, not return a partial graph.
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write([]byte("5 5\n0 1\n"))
	zw.Flush() // flushed but never Closed: stream ends without the gzip trailer
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("truncated gzip accepted")
	}
}

func TestNextFingerprintChain(t *testing.T) {
	g := gen.Cycle(20)
	base := FingerprintOf(g)
	a := NextFingerprint(base, OpAddEdge, 0, 10)
	if a == base {
		t.Fatal("delta did not change the fingerprint")
	}
	if again := NextFingerprint(base, OpAddEdge, 0, 10); again != a {
		t.Fatal("chain is not deterministic")
	}
	// Op, endpoints, and order in the chain all matter.
	if NextFingerprint(base, OpDelEdge, 0, 10) == a {
		t.Fatal("add and delete collide")
	}
	if NextFingerprint(base, OpAddEdge, 0, 11) == a {
		t.Fatal("distinct edges collide")
	}
	ab := NextFingerprint(NextFingerprint(base, OpAddEdge, 0, 10), OpAddEdge, 2, 12)
	ba := NextFingerprint(NextFingerprint(base, OpAddEdge, 2, 12), OpAddEdge, 0, 10)
	if ab == ba {
		t.Fatal("chain is order-insensitive (too-weak hash domain)")
	}
	// Add-then-delete does not return to the base identity: the chain
	// tracks history, not content (Compact restores content identity).
	if NextFingerprint(a, OpDelEdge, 0, 10) == base {
		t.Fatal("history chain collided with content fingerprint")
	}
}
