package graphio

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
)

func TestCheckpointRoundTrip(t *testing.T) {
	g, err := gen.Family("gnp", 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "c.ckpt")
	if err := SaveCheckpoint(path, g, 42); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	back, epoch, fp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if epoch != 42 {
		t.Fatalf("epoch = %d, want 42", epoch)
	}
	if want := FingerprintOf(g); fp != want {
		t.Fatalf("fingerprint = %s, want %s", fp.Short(), want.Short())
	}
	if FingerprintOf(back) != FingerprintOf(g) {
		t.Fatal("loaded graph differs from the saved one")
	}
	// No temp residue in the directory.
	entries, _ := os.ReadDir(filepath.Dir(path))
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries after an atomic save, want 1", len(entries))
	}
}

func TestCheckpointDetectsDamage(t *testing.T) {
	g, err := gen.Family("grid", 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, g, 9); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"short":     clean[:10],
		"truncated": clean[:len(clean)-9],
		"badmagic":  append([]byte("NOTCKPT\n"), clean[8:]...),
	}
	// A flipped byte anywhere (header, CSR, fingerprint, CRC) must fail.
	for _, i := range []int{3, 12, len(clean) / 2, len(clean) - 40, len(clean) - 2} {
		mutated := append([]byte(nil), clean...)
		mutated[i] ^= 0x10
		cases["flip@"+string(rune('a'+i%26))] = mutated
	}
	for name, data := range cases {
		if _, _, _, err := ReadCheckpoint(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: damaged checkpoint loaded cleanly", name)
		} else if !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: error %v is not ErrMalformed", name, err)
		}
	}

	// The clean bytes still load (the mutations above copied them).
	if _, _, _, err := ReadCheckpoint(bytes.NewReader(clean)); err != nil {
		t.Fatalf("clean checkpoint rejected: %v", err)
	}
}

func TestCheckpointEmptyOverlayGraph(t *testing.T) {
	// A vertices-only graph (m = 0) is a legal checkpoint.
	g, err := graph.FromCSR(make([]int32, 6), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, g, 0); err != nil {
		t.Fatal(err)
	}
	back, epoch, _, err := ReadCheckpoint(&buf)
	if err != nil || back.N() != 5 || back.M() != 0 || epoch != 0 {
		t.Fatalf("m=0 round trip: g=%v epoch=%d err=%v", back, epoch, err)
	}
}
