package graphio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph/gen"
)

// fuzzMaxVertices bounds the header sizes the fuzz harness will follow:
// the parsers allocate O(n) CSR state for a declared n-vertex graph, so
// the harness skips inputs that legitimately declare huge graphs — the
// target is parser logic (tokenizing, validation, CSR assembly), not
// resource exhaustion.
const fuzzMaxVertices = 1 << 18

// declaresHugeGraph cheaply pre-scans the first header-like line for
// integers beyond the harness bound.
func declaresHugeGraph(data []byte) bool {
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") || strings.HasPrefix(fields[0], "%") || fields[0] == "c" {
			continue
		}
		for _, f := range fields {
			if len(f) > 6 { // > 999999 or non-numeric junk of that length
				var digits int
				for _, r := range f {
					if r >= '0' && r <= '9' {
						digits++
					}
				}
				if digits > 6 {
					return true
				}
			}
		}
		return false // only the first header-ish line matters
	}
	return false
}

// FuzzParsers drives all three graph parsers over one seeded corpus: no
// input may panic, and any input that parses must round-trip through the
// matching writer to an identical fingerprint (write→reread is the
// canonical-form check).
func FuzzParsers(f *testing.F) {
	// Seeds: one well-formed file per format, plus malformed shapes that
	// exercise each validation branch.
	var el, dm, mt bytes.Buffer
	g := gen.Grid(4, 4)
	if err := Write(&el, EdgeList, g); err != nil {
		f.Fatal(err)
	}
	if err := Write(&dm, DIMACS, g); err != nil {
		f.Fatal(err)
	}
	if err := Write(&mt, METIS, g); err != nil {
		f.Fatal(err)
	}
	for _, seed := range []string{
		el.String(), dm.String(), mt.String(),
		"3 2\n0 1\n1 2\n",
		"# comment\n2 1\n0 1\n",
		"p edge 3 2\ne 1 2\ne 2 3\n",
		"c comment\np edge 2 1\ne 1 2\n",
		"2 1\n2\n1\n",
		"% comment\n3 2 0\n2\n1 3\n2\n",
		"",
		"0 0\n",
		"1 0\n",
		"3 2\n0 1\n",      // fewer edges than announced
		"2 1\n0 1\n0 1\n", // more edges than announced
		"2 1\n0 0\n",      // self loop
		"2 1\n0 5\n",      // out of range
		"2 1\n0 1\n# tail\n",
		"p edge 2 1\ne 0 1\n", // 0-indexed DIMACS endpoint
		"-1 0\n",
		"99999999999999999999 0\n", // overflowing integer
		"2 1\nx y\n",
	} {
		f.Add([]byte(seed), uint8(0))
		f.Add([]byte(seed), uint8(1))
		f.Add([]byte(seed), uint8(2))
	}
	formats := []Format{EdgeList, DIMACS, METIS}
	f.Fuzz(func(t *testing.T, data []byte, which uint8) {
		if len(data) > 1<<16 || declaresHugeGraph(data) {
			t.Skip("out of harness bounds")
		}
		format := formats[int(which)%len(formats)]
		g, err := Read(bytes.NewReader(data), format)
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		if g.N() > fuzzMaxVertices {
			t.Skip("parsed graph beyond harness bounds")
		}
		// Accepted input: the parsed graph must survive a write→reread
		// round trip with an identical fingerprint.
		var buf bytes.Buffer
		if err := Write(&buf, format, g); err != nil {
			t.Fatalf("write-back of accepted graph failed: %v", err)
		}
		g2, err := Read(bytes.NewReader(buf.Bytes()), format)
		if err != nil {
			t.Fatalf("reread of written graph failed: %v\nwritten:\n%s", err, buf.String())
		}
		if FingerprintOf(g) != FingerprintOf(g2) {
			t.Fatalf("round trip changed the graph (n=%d m=%d -> n=%d m=%d)", g.N(), g.M(), g2.N(), g2.M())
		}
	})
}
