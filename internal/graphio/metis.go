package graphio

import (
	"fmt"
	"io"
	"slices"
	"strings"

	"repro/internal/graph"
)

// readMETIS parses the METIS/Chaco adjacency format: an "n m" header line
// (an optional trailing all-zero fmt token is accepted), then exactly n
// adjacency lines, where line i lists the 1-indexed neighbors of vertex i.
// '%' comment lines may appear anywhere and do not count toward the n
// lines. Because neighbors arrive grouped by vertex, this reader streams
// straight into the CSR arrays — offsets grow one vertex at a time and the
// shared adjacency buffer is appended in place.
func readMETIS(r io.Reader) (*graph.Graph, error) {
	ls := newLineScanner(r)
	var (
		offsets   []int32
		adj       []int32
		n, m      int
		gotHeader bool
	)
	for {
		text, line, ok := ls.next()
		if !ok {
			break
		}
		if strings.HasPrefix(strings.TrimSpace(text), "%") {
			continue
		}
		fields := strings.Fields(text)
		if !gotHeader {
			if len(fields) == 0 {
				continue
			}
			if len(fields) != 2 && len(fields) != 3 {
				return nil, fmt.Errorf("%w: line %d: want header \"n m\", got %q", ErrMalformed, line, text)
			}
			var err error
			if n, err = parseInt(fields[0], line); err != nil {
				return nil, err
			}
			if m, err = parseInt(fields[1], line); err != nil {
				return nil, err
			}
			if err := checkHeader(n, m, line); err != nil {
				return nil, err
			}
			if len(fields) == 3 && strings.Trim(fields[2], "0") != "" {
				return nil, fmt.Errorf("%w: line %d: weighted METIS variant %q not supported", ErrMalformed, line, fields[2])
			}
			gotHeader = true
			offsets = make([]int32, 1, min(n+1, preallocCap))
			adj = make([]int32, 0, min(2*m, preallocCap))
			continue
		}
		v := len(offsets) - 1 // 0-indexed vertex this line describes
		if v >= n {
			if len(fields) == 0 {
				continue // trailing blank lines are tolerated
			}
			return nil, fmt.Errorf("%w: line %d: more than the %d adjacency lines announced in the header", ErrMalformed, line, n)
		}
		for _, tok := range fields {
			w, err := parseInt(tok, line)
			if err != nil {
				return nil, err
			}
			if w < 1 || w > n {
				return nil, fmt.Errorf("%w: line %d: neighbor %d out of range [1, %d]", ErrMalformed, line, w, n)
			}
			if w-1 == v {
				return nil, fmt.Errorf("%w: line %d: self-loop on vertex %d", ErrMalformed, line, w)
			}
			adj = append(adj, int32(w-1))
		}
		offsets = append(offsets, int32(len(adj)))
	}
	if err := ls.err(); err != nil {
		return nil, err
	}
	if !gotHeader {
		return nil, fmt.Errorf("%w: missing \"n m\" header", ErrMalformed)
	}
	if len(offsets)-1 != n {
		return nil, fmt.Errorf("%w: header announced %d vertices, found %d adjacency lines", ErrMalformed, n, len(offsets)-1)
	}
	if len(adj) != 2*m {
		return nil, fmt.Errorf("%w: header announced %d edges, found %d adjacency entries (want %d)", ErrMalformed, m, len(adj), 2*m)
	}
	// METIS does not promise sorted neighbor lists; sort to the CSR
	// invariant. Duplicates then surface in graph.FromCSR.
	for v := 0; v < n; v++ {
		slices.Sort(adj[offsets[v]:offsets[v+1]])
	}
	g, err := graph.FromCSR(offsets, adj)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return g, nil
}

// writeMETIS serializes g as an "n m" header followed by one 1-indexed
// neighbor line per vertex (isolated vertices produce empty lines).
func writeMETIS(w io.Writer, g *graph.Graph) error {
	if _, err := fmt.Fprintf(w, "%d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		nb := g.Neighbors(v)
		for i, u := range nb {
			sep := " "
			if i == 0 {
				sep = ""
			}
			if _, err := fmt.Fprintf(w, "%s%d", sep, u+1); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}
