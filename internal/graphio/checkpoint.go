package graphio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/graph"
)

// Checkpoint format: the durable store's on-disk CSR snapshot. Unlike the
// text interchange formats, a checkpoint is written by this process for
// this process, so it is binary, carries the store epoch it was taken at,
// embeds the graph's content fingerprint, and ends in a CRC32C of the whole
// file — a load re-verifies both, so a truncated, bit-rotted, or
// wrong-graph checkpoint fails loudly instead of rebooting the store into
// silently different state.
//
// Layout (all integers little-endian):
//
//	magic "RPCKPT1\n" (8 bytes)
//	n uint64 | m uint64 | epoch uint64
//	offsets [(n+1) * int32]
//	adj     [2m * int32]
//	fingerprint [32 bytes]  (FingerprintOf the CSR above)
//	crc32c  uint32          (over every preceding byte)
const checkpointMagic = "RPCKPT1\n"

// crcWriter tees writes into a running CRC32C.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, castagnoliTable, p[:n])
	return n, err
}

var castagnoliTable = crc32.MakeTable(crc32.Castagnoli)

// WriteCheckpoint serializes g as a checkpoint taken at the given store
// epoch.
func WriteCheckpoint(w io.Writer, g *graph.Graph, epoch uint64) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := &crcWriter{w: bw}
	if _, err := io.WriteString(cw, checkpointMagic); err != nil {
		return err
	}
	offsets, adj := g.CSR()
	var hdr [24]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(g.N()))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(g.M()))
	binary.LittleEndian.PutUint64(hdr[16:24], epoch)
	if _, err := cw.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 0, 1<<16)
	for _, arr := range [][]int32{offsets, adj} {
		for _, x := range arr {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(x))
			if len(buf) >= 1<<16-4 {
				if _, err := cw.Write(buf); err != nil {
					return err
				}
				buf = buf[:0]
			}
		}
	}
	if len(buf) > 0 {
		if _, err := cw.Write(buf); err != nil {
			return err
		}
	}
	fp := FingerprintOf(g)
	if _, err := cw.Write(fp[:]); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], cw.crc)
	if _, err := bw.Write(tail[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCheckpoint parses and fully verifies a checkpoint: structure, file
// CRC, CSR invariants (via graph.FromCSR), and the embedded fingerprint
// against a fresh hash of the loaded CSR. It returns the graph, the store
// epoch the checkpoint was taken at, and the verified fingerprint.
func ReadCheckpoint(r io.Reader) (*graph.Graph, uint64, Fingerprint, error) {
	var fp Fingerprint
	fail := func(format string, args ...any) (*graph.Graph, uint64, Fingerprint, error) {
		return nil, 0, fp, fmt.Errorf("%w: checkpoint: %s", ErrMalformed, fmt.Sprintf(format, args...))
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, fp, err
	}
	const headerLen = len(checkpointMagic) + 24
	if len(data) < headerLen+len(fp)+4 {
		return fail("truncated (%d bytes)", len(data))
	}
	if string(data[:len(checkpointMagic)]) != checkpointMagic {
		return fail("bad magic")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, castagnoliTable) != binary.LittleEndian.Uint32(tail) {
		return fail("CRC mismatch")
	}
	n := binary.LittleEndian.Uint64(data[8:16])
	m := binary.LittleEndian.Uint64(data[16:24])
	epoch := binary.LittleEndian.Uint64(data[24:32])
	if n > maxHeaderVertices || m > maxHeaderEdges {
		return fail("counts n=%d m=%d exceed CSR bounds", n, m)
	}
	want := headerLen + (int(n)+1+2*int(m))*4 + len(fp) + 4
	if len(data) != want {
		return fail("size %d does not match header (want %d)", len(data), want)
	}
	arr := data[headerLen:]
	offsets := make([]int32, n+1)
	for i := range offsets {
		offsets[i] = int32(binary.LittleEndian.Uint32(arr[4*i:]))
	}
	arr = arr[4*len(offsets):]
	adj := make([]int32, 2*m)
	for i := range adj {
		adj[i] = int32(binary.LittleEndian.Uint32(arr[4*i:]))
	}
	copy(fp[:], arr[4*len(adj):])
	g, err := graph.FromCSR(offsets, adj)
	if err != nil {
		return fail("invalid CSR: %v", err)
	}
	if got := FingerprintOf(g); got != fp {
		return fail("fingerprint mismatch: embedded %s, recomputed %s", fp.Short(), got.Short())
	}
	return g, epoch, fp, nil
}

// SaveCheckpoint writes a checkpoint to path atomically: the bytes go to a
// temp file in the same directory, are fsynced, and the temp file is
// renamed over path (then the directory is fsynced), so a crash mid-write
// can never leave a half-checkpoint under the final name.
func SaveCheckpoint(path string, g *graph.Graph, epoch uint64) error {
	return writeFileAtomic(path, func(w io.Writer) error {
		return WriteCheckpoint(w, g, epoch)
	})
}

// LoadCheckpoint reads and verifies the checkpoint at path.
func LoadCheckpoint(path string) (*graph.Graph, uint64, Fingerprint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, Fingerprint{}, err
	}
	defer f.Close()
	g, epoch, fp, err := ReadCheckpoint(f)
	if err != nil {
		return nil, 0, fp, fmt.Errorf("graphio: %s: %w", path, err)
	}
	return g, epoch, fp, nil
}

// writeFileAtomic writes via temp + fsync + rename + directory fsync.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	cleanup := func() { tmp.Close(); os.Remove(tmp.Name()) }
	if err := write(tmp); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// Fsync the directory so the rename itself survives power loss; not
	// all filesystems support it, so failure is non-fatal.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// WriteFileAtomic exposes the temp+rename+fsync pattern for other durable
// artifacts living next to checkpoints (manifests, hot-key lists).
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	return writeFileAtomic(path, write)
}
