package graphio

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/graph"
)

// readEdgeList parses the plain edge-list format: optional '#' comment and
// blank lines, one "n m" header, then exactly m "u v" lines (0-indexed).
func readEdgeList(r io.Reader) (*graph.Graph, error) {
	ls := newLineScanner(r)
	var acc *edgeAccum
	wantEdges := 0
	for {
		text, line, ok := ls.next()
		if !ok {
			break
		}
		fields := strings.Fields(text)
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if acc == nil {
			if len(fields) != 2 {
				return nil, fmt.Errorf("%w: line %d: want header \"n m\", got %q", ErrMalformed, line, text)
			}
			n, err := parseInt(fields[0], line)
			if err != nil {
				return nil, err
			}
			m, err := parseInt(fields[1], line)
			if err != nil {
				return nil, err
			}
			if err := checkHeader(n, m, line); err != nil {
				return nil, err
			}
			acc = newEdgeAccum(n, m)
			wantEdges = m
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("%w: line %d: want edge \"u v\", got %q", ErrMalformed, line, text)
		}
		u, err := parseInt(fields[0], line)
		if err != nil {
			return nil, err
		}
		v, err := parseInt(fields[1], line)
		if err != nil {
			return nil, err
		}
		if acc.edges >= wantEdges {
			return nil, fmt.Errorf("%w: line %d: more than the %d edges announced in the header", ErrMalformed, line, wantEdges)
		}
		if err := acc.add(u, v); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
	}
	if err := ls.err(); err != nil {
		return nil, err
	}
	if acc == nil {
		return nil, fmt.Errorf("%w: missing \"n m\" header", ErrMalformed)
	}
	if acc.edges != wantEdges {
		return nil, fmt.Errorf("%w: header announced %d edges, found %d", ErrMalformed, wantEdges, acc.edges)
	}
	return acc.build()
}

// writeEdgeList serializes g as "n m" followed by the edges with u < v,
// 0-indexed, in lexicographic order.
func writeEdgeList(w io.Writer, g *graph.Graph) error {
	if _, err := fmt.Fprintf(w, "%d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	var werr error
	g.Edges(func(u, v int) {
		if werr == nil {
			_, werr = fmt.Fprintf(w, "%d %d\n", u, v)
		}
	})
	return werr
}
