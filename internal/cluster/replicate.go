package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/server"
)

// isTransport reports whether err is a transport-level failure (dial,
// reset, timeout) as opposed to an HTTP response the node produced.
// Transport failures mark the node down; API errors never do.
func isTransport(err error) bool {
	var ae *server.APIError
	return err != nil && !errors.As(err, &ae)
}

// replicateTo brings member j up to date after the acting owner applied
// new deltas. entries is the just-applied batch (what an in-sync replica
// needs); a member that is behind is caught up from the owner's delta
// window, and one beyond the window (or diverged, or freshly rejoined) is
// resynced from a checkpoint. Caller holds rg.mu.
func (r *Router) replicateTo(ctx context.Context, rg *routedGraph, j, owner int, entries []server.WireDelta) error {
	n := r.nodes[j]
	st := rg.rep[j]
	if !n.usable(r.opts.probation()) {
		st.ok = false
		return fmt.Errorf("cluster: node %d down", j)
	}
	if !st.ok || st.gen != n.generation() {
		return r.resyncMember(ctx, rg, j, owner)
	}
	resp, err := n.client().PushDeltas(ctx, st.remoteID, entries)
	if err == nil {
		st.epoch = resp.Epoch
		n.markUp()
		return nil
	}
	if isTransport(err) {
		n.markDown()
		st.ok = false
		return err
	}
	if server.IsStatus(err, http.StatusConflict) && resp != nil {
		// Epoch gap: the member missed earlier deltas. Pull the missing
		// range from the acting owner's window and replay it.
		return r.catchUp(ctx, rg, j, owner, resp.Epoch)
	}
	// Divergence (422), a missing remote graph (404), or anything else the
	// member refused: rebuild the copy from a checkpoint.
	return r.resyncMember(ctx, rg, j, owner)
}

// catchUp streams the owner's deltas after the member's cursor onto the
// member. Falls back to a checkpoint resync when the owner's window no
// longer covers the cursor. Caller holds rg.mu.
func (r *Router) catchUp(ctx context.Context, rg *routedGraph, j, owner int, cursor uint64) error {
	st := rg.rep[j]
	ownerSt := rg.rep[owner]
	dl, err := r.nodes[owner].client().Deltas(ctx, ownerSt.remoteID, cursor)
	if err != nil {
		if isTransport(err) {
			r.nodes[owner].markDown()
		}
		st.ok = false
		return err
	}
	if dl.Resync {
		return r.resyncMember(ctx, rg, j, owner)
	}
	resp, err := r.nodes[j].client().PushDeltas(ctx, st.remoteID, dl.Entries)
	if err != nil {
		if isTransport(err) {
			r.nodes[j].markDown()
			st.ok = false
			return err
		}
		return r.resyncMember(ctx, rg, j, owner)
	}
	st.epoch = resp.Epoch
	st.ok = true
	return nil
}

// resyncMember rebuilds member j's copy of the graph from a checkpoint of
// the acting owner's current snapshot: export, install (positioned at the
// owner's epoch and chain fingerprint), and retire the member's previous
// copy if it still has one. Caller holds rg.mu.
func (r *Router) resyncMember(ctx context.Context, rg *routedGraph, j, owner int) error {
	st := rg.rep[j]
	st.ok = false
	data, epoch, fp, err := r.nodes[owner].client().Export(ctx, rg.rep[owner].remoteID)
	if err != nil {
		if isTransport(err) {
			r.nodes[owner].markDown()
		}
		return fmt.Errorf("cluster: export from node %d: %w", owner, err)
	}
	nc := r.nodes[j].client()
	if st.remoteID != "" {
		// Best effort: the node may have restarted without the graph, or be
		// holding a stale copy worth the delete.
		dctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		_ = nc.DeleteGraph(dctx, st.remoteID)
		cancel()
	}
	info, err := nc.Install(ctx, fp, data)
	if err != nil {
		if isTransport(err) {
			r.nodes[j].markDown()
		}
		return fmt.Errorf("cluster: install on node %d: %w", j, err)
	}
	rg.rep[j] = &replicaState{remoteID: info.ID, epoch: epoch, gen: r.nodes[j].generation(), ok: true}
	r.nodes[j].markUp()
	r.m.resyncs.Add(1)
	return nil
}

// actingOwner returns the first member that is in sync on a usable node —
// the node mutations are forwarded to. Rendezvous order makes this the
// true owner while it is healthy and a deterministic successor otherwise.
// Caller holds rg.mu; returns -1 when no member qualifies.
func (r *Router) actingOwner(rg *routedGraph) int {
	for _, i := range rg.mem {
		st := rg.rep[i]
		if st.ok && st.gen == r.nodes[i].generation() && r.nodes[i].usable(r.opts.probation()) {
			return i
		}
	}
	return -1
}

// Rejoin replaces node i with a (possibly fresh) process at base — the
// operational "bring the node back" hook. The node's generation advances,
// so every replica copy installed under the old incarnation reads as
// stale, and each graph the node is a member of is rebuilt immediately by
// checkpoint resync from its acting owner. Graphs whose resync fails stay
// excluded from reads until a later mutation repairs them.
func (r *Router) Rejoin(ctx context.Context, i int, base string) error {
	if i < 0 || i >= len(r.nodes) {
		return fmt.Errorf("cluster: no node %d", i)
	}
	n := r.nodes[i]
	n.mu.Lock()
	n.base = strings.TrimRight(base, "/")
	n.c = server.NewClient(n.base, r.opts.HTTPClient).WithRetry(r.opts.retry())
	n.gen++
	n.up = true
	n.mu.Unlock()
	var errs []error
	for _, rg := range r.graphList() {
		rg.mu.Lock()
		member := false
		for _, m := range rg.mem {
			if m == i {
				member = true
				break
			}
		}
		if member {
			if owner := r.actingOwner(rg); owner >= 0 && owner != i {
				if err := r.resyncMember(ctx, rg, i, owner); err != nil {
					errs = append(errs, fmt.Errorf("graph %s: %w", rg.id, err))
				}
			}
		}
		rg.mu.Unlock()
	}
	return errors.Join(errs...)
}
