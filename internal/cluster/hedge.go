package cluster

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"time"
)

// proxyResult is one replica's answer to a proxied read.
type proxyResult struct {
	idx         int
	status      int
	contentType string
	body        []byte
	err         error
	ok          bool // a semantic answer: relay it, don't fail over
	hedged      bool // launched by the hedge timer, not first in line
}

// semanticStatus reports whether a backend status is an answer the router
// relays as-is. 2xx obviously; the listed non-2xx are judgments about the
// request (bad body, unknown vertex, cancelled/timed-out work) that every
// replica would repeat — failing over on them would just burn a second
// replica on the same answer. Everything else (5xx, sheds) is grounds to
// try the next member.
func semanticStatus(code int) bool {
	if code >= 200 && code < 300 {
		return true
	}
	switch code {
	case http.StatusBadRequest, http.StatusNotFound, http.StatusUnprocessableEntity,
		499, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// readAttempt proxies the buffered read body to member i and classifies
// the outcome. Transport failures mark the node down; any completed round
// trip marks it up. A failure after ctx was cancelled is NOT held against
// the node: hedge cancels the losers once a winner answers, and treating
// that cancellation as a transport error would mark healthy replicas down
// on every hedged read.
func (r *Router) readAttempt(ctx context.Context, i int, remoteID, tail string, body []byte) proxyResult {
	n := r.nodes[i]
	n.mu.Lock()
	base := n.base
	n.mu.Unlock()
	preq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		base+"/v1/graphs/"+remoteID+tail, bytes.NewReader(body))
	if err != nil {
		return proxyResult{idx: i, err: err}
	}
	preq.Header.Set("Content-Type", "application/json")
	resp, err := r.httpClient().Do(preq)
	if err != nil {
		if ctx.Err() == nil {
			n.markDown()
		}
		return proxyResult{idx: i, err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		if ctx.Err() == nil {
			n.markDown()
		}
		return proxyResult{idx: i, err: err}
	}
	n.markUp()
	return proxyResult{
		idx:         i,
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		body:        data,
		ok:          semanticStatus(resp.StatusCode),
	}
}

// hedge races the read across cands (already rotated by readCandidates).
// The first candidate is launched immediately; each time the hedge
// threshold passes without an answer, the next candidate is launched too,
// and the first semantic answer wins. A candidate that fails outright
// (transport error, 5xx) triggers the next launch immediately — that is
// failover, counted separately from hedging. When every candidate has
// failed, the last failure is relayed.
func (r *Router) hedge(ctx context.Context, rg *routedGraph, cands []int, tail string, body []byte) proxyResult {
	rg.mu.Lock()
	ids := make([]string, len(cands))
	for k, i := range cands {
		ids[k] = rg.rep[i].remoteID
	}
	rg.mu.Unlock()

	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // releases the losers once a winner returns

	ch := make(chan proxyResult, len(cands))
	next, outstanding := 0, 0
	launch := func(hedged bool) {
		k := next
		next++
		outstanding++
		if hedged {
			r.m.hedged.Add(1)
		}
		go func() {
			res := r.readAttempt(hctx, cands[k], ids[k], tail, body)
			res.hedged = hedged
			ch <- res
		}()
	}
	launch(false)

	ha := r.opts.hedgeAfter()
	var timer *time.Timer
	var timerC <-chan time.Time
	if ha > 0 {
		timer = time.NewTimer(ha)
		defer timer.Stop()
		timerC = timer.C
	}

	var last proxyResult
	for {
		select {
		case <-ctx.Done():
			return proxyResult{err: ctx.Err()}
		case <-timerC:
			if next < len(cands) {
				launch(true)
				timer.Reset(ha)
			} else {
				timerC = nil
			}
		case res := <-ch:
			outstanding--
			if res.ok {
				if res.hedged {
					r.m.hedgeWins.Add(1)
				}
				return res
			}
			last = res
			r.m.fallbacks.Add(1)
			if next < len(cands) {
				launch(false)
			} else if outstanding == 0 {
				return last
			}
		}
	}
}
