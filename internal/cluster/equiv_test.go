package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
)

// newBackend spins one in-process serving node.
func newBackend(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.New(engine.New(engine.Options{}), server.Options{}))
	t.Cleanup(ts.Close)
	return ts
}

// normalize re-encodes a wire result with wall time zeroed — the
// equivalence currency, as in the server-level suite.
func normalize(t *testing.T, r *server.Result) []byte {
	t.Helper()
	cp := *r
	cp.ElapsedNS = 0
	b, err := json.Marshal(&cp)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// TestClusterEquivalence is the tentpole pin: a 3-node cluster behind a
// router returns bit-identical results — snapshot stamps included — to a
// single reference server replaying the same op stream, across mutations,
// queries, batches, a compaction, and a node killed and rejoined mid-run.
func TestClusterEquivalence(t *testing.T) {
	const (
		family = "gnp"
		n      = 110
		seed   = 7
	)
	ctx := context.Background()

	backends := make([]*httptest.Server, 3)
	for i := range backends {
		backends[i] = newBackend(t)
	}
	rt, err := New(Options{
		Nodes:    []string{backends[0].URL, backends[1].URL, backends[2].URL},
		Replicas: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt)
	t.Cleanup(rts.Close)
	cl := server.NewClient(rts.URL, rts.Client())

	ref := newBackend(t)
	rc := server.NewClient(ref.URL, ref.Client())

	clInfo, err := cl.Generate(ctx, family, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	refInfo, err := rc.Generate(ctx, family, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	if clInfo.Fingerprint != refInfo.Fingerprint {
		t.Fatalf("fingerprints diverge at creation: %s vs %s", clInfo.Fingerprint, refInfo.Fingerprint)
	}

	// checkState compares the topology truth the two sides report; replica
	// bookkeeping counters (adds on this copy, etc.) legitimately differ
	// after a resync, the graph itself never may.
	checkState := func(t *testing.T) {
		t.Helper()
		ci, err := cl.GraphInfo(ctx, clInfo.ID)
		if err != nil {
			t.Fatalf("cluster info: %v", err)
		}
		ri, err := rc.GraphInfo(ctx, refInfo.ID)
		if err != nil {
			t.Fatalf("reference info: %v", err)
		}
		if ci.Fingerprint != ri.Fingerprint || ci.Epoch != ri.Epoch || ci.M != ri.M || ci.N != ri.N {
			t.Fatalf("state diverged:\ncluster   fp=%s epoch=%d m=%d n=%d\nreference fp=%s epoch=%d m=%d n=%d",
				ci.Fingerprint, ci.Epoch, ci.M, ci.N, ri.Fingerprint, ri.Epoch, ri.M, ri.N)
		}
	}

	checkRun := func(t *testing.T, algo string, params map[string]string) {
		t.Helper()
		got, err := cl.Run(ctx, clInfo.ID, server.RunRequest{Algo: algo, Params: params})
		if err != nil {
			t.Fatalf("cluster run %s: %v", algo, err)
		}
		want, err := rc.Run(ctx, refInfo.ID, server.RunRequest{Algo: algo, Params: params})
		if err != nil {
			t.Fatalf("reference run %s: %v", algo, err)
		}
		if !bytes.Equal(normalize(t, got), normalize(t, want)) {
			t.Fatalf("%s results differ:\ncluster:   %s\nreference: %s",
				algo, normalize(t, got), normalize(t, want))
		}
		if got.Snapshot == "" || got.Snapshot != want.Snapshot {
			t.Fatalf("%s snapshot stamps differ: %q vs %q", algo, got.Snapshot, want.Snapshot)
		}
	}

	checkQuery := func(t *testing.T, qr server.QueryRequest) {
		t.Helper()
		got, err := cl.Query(ctx, clInfo.ID, qr)
		if err != nil {
			t.Fatalf("cluster query: %v", err)
		}
		want, err := rc.Query(ctx, refInfo.ID, qr)
		if err != nil {
			t.Fatalf("reference query: %v", err)
		}
		gb, _ := json.Marshal(got)
		wb, _ := json.Marshal(want)
		if !bytes.Equal(gb, wb) {
			t.Fatalf("query results differ:\ncluster:   %s\nreference: %s", gb, wb)
		}
	}

	mutate := func(t *testing.T, add bool, u, v int) {
		t.Helper()
		var got, want *server.MutateResponse
		var err error
		if add {
			got, err = cl.AddEdge(ctx, clInfo.ID, u, v)
		} else {
			got, err = cl.DeleteEdge(ctx, clInfo.ID, u, v)
		}
		if err != nil {
			t.Fatalf("cluster mutate(%v,%d,%d): %v", add, u, v, err)
		}
		if add {
			want, err = rc.AddEdge(ctx, refInfo.ID, u, v)
		} else {
			want, err = rc.DeleteEdge(ctx, refInfo.ID, u, v)
		}
		if err != nil {
			t.Fatalf("reference mutate(%v,%d,%d): %v", add, u, v, err)
		}
		if got.Applied != want.Applied || got.Epoch != want.Epoch || got.Fingerprint != want.Fingerprint || got.M != want.M {
			t.Fatalf("mutate(%v,%d,%d) responses differ: %+v vs %+v", add, u, v, got, want)
		}
	}

	// Rotate reads across all three members: every member must produce the
	// same bytes, not just whichever answered first.
	t.Run("initial", func(t *testing.T) {
		for range 3 {
			checkRun(t, "changli", map[string]string{"seed": "2"})
		}
		checkRun(t, "sparsecover", map[string]string{"seed": "2"})
		checkQuery(t, server.QueryRequest{Op: "cluster", Vertices: []int32{0, 5, 44, 71}, Eps: 0.3, Seed: 4})
		checkQuery(t, server.QueryRequest{Op: "ball", Vertices: []int32{3, 60}, Radius: 2})
		checkState(t)
	})

	t.Run("after-mutations", func(t *testing.T) {
		mutate(t, true, 0, 13)
		mutate(t, true, 1, 44)
		mutate(t, true, 2, 71)
		mutate(t, false, 0, 13)
		mutate(t, true, 1, 44) // no-op: already present, must not consume an epoch
		for range 3 {
			checkRun(t, "changli", map[string]string{"seed": "2"})
		}
		checkQuery(t, server.QueryRequest{Op: "ball", Vertices: []int32{1, 44}, Radius: 2})
		checkState(t)
	})

	// Kill the acting owner mid-run: mutations must fail over to the next
	// member, reads must keep serving, and the op streams must stay in
	// lockstep throughout.
	var killed int
	t.Run("owner-killed", func(t *testing.T) {
		rg, ok := rt.graphByID(clInfo.ID)
		if !ok {
			t.Fatal("routed graph vanished")
		}
		rg.mu.Lock()
		killed = rg.mem[0]
		rg.mu.Unlock()
		backends[killed].CloseClientConnections()
		backends[killed].Close()

		mutate(t, true, 5, 99)
		mutate(t, false, 1, 44)
		if rt.m.failovers.Load() == 0 {
			t.Fatal("killing the owner should have recorded a mutation failover")
		}
		for range 2 {
			checkRun(t, "changli", map[string]string{"seed": "2"})
		}
		checkState(t)
		if rt.nodes[killed].isUp() {
			t.Fatal("killed node still marked up")
		}
	})

	t.Run("rejoin", func(t *testing.T) {
		fresh := newBackend(t)
		if err := rt.Rejoin(ctx, killed, fresh.URL); err != nil {
			t.Fatalf("rejoin: %v", err)
		}
		if rt.m.resyncs.Load() == 0 {
			t.Fatal("rejoin should have rebuilt the member from a checkpoint")
		}
		// The rejoined member serves reads again; all three rotations must
		// agree with the reference.
		mutate(t, true, 7, 31)
		for range 3 {
			checkRun(t, "changli", map[string]string{"seed": "2"})
		}
		checkQuery(t, server.QueryRequest{Op: "cluster", Vertices: []int32{7, 31}, Eps: 0.3, Seed: 4})
		checkState(t)

		// Every member copy must hold the identical chain state.
		rg, _ := rt.graphByID(clInfo.ID)
		ri, err := rc.GraphInfo(ctx, refInfo.ID)
		if err != nil {
			t.Fatal(err)
		}
		rg.mu.Lock()
		defer rg.mu.Unlock()
		for _, i := range rg.mem {
			st := rg.rep[i]
			if !st.ok {
				t.Fatalf("member %d out of sync after rejoin", i)
			}
			info, err := rt.nodes[i].client().GraphInfo(ctx, st.remoteID)
			if err != nil {
				t.Fatalf("member %d info: %v", i, err)
			}
			if info.Fingerprint != ri.Fingerprint || info.Epoch != ri.Epoch {
				t.Fatalf("member %d diverged: fp=%s epoch=%d, want fp=%s epoch=%d",
					i, info.Fingerprint, info.Epoch, ri.Fingerprint, ri.Epoch)
			}
		}
	})

	t.Run("after-compact", func(t *testing.T) {
		got, err := cl.Compact(ctx, clInfo.ID)
		if err != nil {
			t.Fatal(err)
		}
		want, err := rc.Compact(ctx, refInfo.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.Fingerprint != want.Fingerprint || got.Epoch != want.Epoch || got.M != want.M {
			t.Fatalf("compact responses differ: %+v vs %+v", got, want)
		}
		for range 3 {
			checkRun(t, "changli", map[string]string{"seed": "2"})
		}
		checkState(t)
	})

	t.Run("batch", func(t *testing.T) {
		reqs := []server.RunRequest{
			{Algo: "changli", Params: map[string]string{"seed": "2"}},
			{Algo: "sparsecover", Params: map[string]string{"seed": "2"}},
		}
		got, err := cl.Batch(ctx, clInfo.ID, reqs)
		if err != nil {
			t.Fatalf("cluster batch: %v", err)
		}
		want, err := rc.Batch(ctx, refInfo.ID, reqs)
		if err != nil {
			t.Fatalf("reference batch: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("batch line counts differ: %d vs %d", len(got), len(want))
		}
		for i := range got {
			if got[i].Error != "" || want[i].Error != "" {
				t.Fatalf("batch line %d errored: %q vs %q", i, got[i].Error, want[i].Error)
			}
			if !bytes.Equal(normalize(t, got[i].Result), normalize(t, want[i].Result)) {
				t.Fatalf("batch line %d differs", i)
			}
		}
	})
}

// fakeBackend builds a Router over stub HTTP handlers, with one graph
// pre-routed across all of them — the harness for hedging/failover tests
// that need precise control of backend behavior.
func fakeBackend(t *testing.T, handlers ...http.HandlerFunc) (*Router, []int) {
	t.Helper()
	urls := make([]string, len(handlers))
	for i, h := range handlers {
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	rt, err := New(Options{Nodes: urls, Replicas: len(urls), HedgeAfter: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	mem := make([]int, len(urls))
	rg := &routedGraph{id: "g1", rep: make(map[int]*replicaState)}
	for i := range urls {
		mem[i] = i
		rg.rep[i] = &replicaState{remoteID: fmt.Sprintf("b%d", i), ok: true}
	}
	rg.mem = mem
	rt.graphs["g1"] = rg
	return rt, mem
}

func postRun(t *testing.T, rt *Router) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/graphs/g1/run", bytes.NewReader([]byte(`{"algo":"x"}`)))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, req)
	return rec
}

func TestHedgedReadBeatsSlowReplica(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	rt, _ := fakeBackend(t,
		func(w http.ResponseWriter, r *http.Request) { <-release; fmt.Fprint(w, `{"who":"slow"}`) },
		func(w http.ResponseWriter, r *http.Request) { fmt.Fprint(w, `{"who":"fast"}`) },
	)
	rec := postRun(t, rt)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Body.String(); got != `{"who":"fast"}` {
		t.Fatalf("hedge should have won with the fast replica, got %s", got)
	}
	if rt.m.hedged.Load() != 1 || rt.m.hedgeWins.Load() != 1 {
		t.Fatalf("hedged=%d hedgeWins=%d, want 1/1", rt.m.hedged.Load(), rt.m.hedgeWins.Load())
	}
	// Losing the hedge race is not a health signal: the slow replica's
	// request was cancelled by the router itself, and marking it down
	// here would poison a healthy node for the whole probation window.
	time.Sleep(20 * time.Millisecond) // let the cancelled loser finish its bookkeeping
	if !rt.nodes[0].isUp() {
		t.Fatal("slow replica was marked down after losing a hedge race")
	}
}

func TestReadFailsOverOn5xx(t *testing.T) {
	rt, _ := fakeBackend(t,
		func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusInternalServerError) },
		func(w http.ResponseWriter, r *http.Request) { fmt.Fprint(w, `{"who":"backup"}`) },
	)
	rec := postRun(t, rt)
	if rec.Code != http.StatusOK || rec.Body.String() != `{"who":"backup"}` {
		t.Fatalf("want fallback answer, got %d: %s", rec.Code, rec.Body)
	}
	if rt.m.fallbacks.Load() != 1 {
		t.Fatalf("fallbacks=%d, want 1", rt.m.fallbacks.Load())
	}
}

func TestSemantic4xxIsNotFailedOver(t *testing.T) {
	rt, _ := fakeBackend(t,
		func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusUnprocessableEntity)
			fmt.Fprint(w, `{"error":"no"}`)
		},
		func(w http.ResponseWriter, r *http.Request) { fmt.Fprint(w, `{"who":"wrong"}`) },
	)
	rec := postRun(t, rt)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("a semantic 422 must be relayed, got %d: %s", rec.Code, rec.Body)
	}
	if rt.m.fallbacks.Load() != 0 {
		t.Fatalf("fallbacks=%d, want 0 — 422 is an answer, not a failure", rt.m.fallbacks.Load())
	}
}

func TestRendezvousOrder(t *testing.T) {
	key := func(b byte) (k [32]byte) {
		for i := range k {
			k[i] = b ^ byte(i*37)
		}
		return
	}
	a := rendezvousOrder(key(1), 5)
	if got := rendezvousOrder(key(1), 5); fmt.Sprint(got) != fmt.Sprint(a) {
		t.Fatalf("rendezvous order not deterministic: %v vs %v", got, a)
	}
	// Spread: over many keys every node should win sometimes.
	first := make(map[int]int)
	for b := range 64 {
		first[rendezvousOrder(key(byte(b)), 5)[0]]++
	}
	for i := range 5 {
		if first[i] == 0 {
			t.Fatalf("node %d never ranked first over 64 keys: %v", i, first)
		}
	}
	// Stability: dropping the last node must not reshuffle the survivors'
	// relative order (the consistent-hash property).
	for b := range 16 {
		full := rendezvousOrder(key(byte(b)), 5)
		sub := rendezvousOrder(key(byte(b)), 4)
		var filtered []int
		for _, i := range full {
			if i < 4 {
				filtered = append(filtered, i)
			}
		}
		if fmt.Sprint(filtered) != fmt.Sprint(sub) {
			t.Fatalf("key %d: removing node 4 reshuffled survivors: %v vs %v", b, filtered, sub)
		}
	}
}
