package cluster

import (
	"encoding/binary"
	"hash/fnv"
	"sort"

	"repro/internal/graphio"
)

// rendezvousOrder ranks the n nodes for a routing key by
// highest-random-weight hashing: node i's weight is a hash of (key, i),
// and the ranking is the descending weight order. Each key gets an
// effectively independent permutation of the nodes, so removing one node
// only re-homes the keys it owned (they slide to their next-ranked node)
// — no ring state, no rebalancing of unaffected keys. FNV-64a is stable
// across processes and platforms, so a restarted router reproduces the
// same placement from the same node list.
func rendezvousOrder(key graphio.Fingerprint, n int) []int {
	type ranked struct {
		w uint64
		i int
	}
	rs := make([]ranked, n)
	for i := range rs {
		h := fnv.New64a()
		h.Write(key[:])
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(i))
		h.Write(b[:])
		rs[i] = ranked{h.Sum64(), i}
	}
	sort.Slice(rs, func(a, b int) bool {
		if rs[a].w != rs[b].w {
			return rs[a].w > rs[b].w
		}
		return rs[a].i < rs[b].i
	})
	out := make([]int, n)
	for i, r := range rs {
		out[i] = r.i
	}
	return out
}

// placeMembers picks the member set for a new graph: the first Replicas
// usable nodes in rendezvous order (owner first). Down nodes are skipped
// at placement time — the graph must be creatable now — which preserves
// the rendezvous property for every node that was up.
func (r *Router) placeMembers(key graphio.Fingerprint) []int {
	want := r.opts.replicas()
	var members []int
	for _, i := range rendezvousOrder(key, len(r.nodes)) {
		if !r.nodes[i].usable(r.opts.probation()) {
			continue
		}
		members = append(members, i)
		if len(members) == want {
			break
		}
	}
	return members
}

// readCandidates returns the node indexes a read may be served from:
// in-sync members on usable nodes, rotated by the per-graph fan-out
// cursor so consecutive reads spread across the replica set.
func (r *Router) readCandidates(rg *routedGraph) []int {
	rg.mu.Lock()
	eligible := make([]int, 0, len(rg.mem))
	for _, i := range rg.mem {
		st := rg.rep[i]
		if st.ok && st.gen == r.nodes[i].generation() && r.nodes[i].usable(r.opts.probation()) {
			eligible = append(eligible, i)
		}
	}
	rg.mu.Unlock()
	if len(eligible) <= 1 {
		return eligible
	}
	off := int(rg.rr.Add(1)-1) % len(eligible)
	out := make([]int, 0, len(eligible))
	out = append(out, eligible[off:]...)
	out = append(out, eligible[:off]...)
	return out
}
