// Package cluster is the coordinator tier that turns N single-process
// serving nodes (internal/server) into one logical service: a Router is an
// http.Handler exposing the same /v1 surface as a node, consistent-hashing
// each graph's fingerprint across the backends and keeping a configurable
// number of replicas in lockstep through the store's delta-log replication
// plane.
//
// Placement. Every graph's routing key is its canonical content
// fingerprint at creation time. Rendezvous (highest-random-weight) hashing
// orders the nodes per key; the first Replicas live nodes in that order are
// the graph's member set, the first member its owner. Rendezvous hashing
// means node failure only reshuffles the keys that lived on the failed
// node — there is no ring state to rebalance.
//
// Writes. Mutations are serialized per graph: the router forwards the edge
// op to the owning node, then replicates the resulting delta — epoch,
// normalized edge, and the fingerprint the owner's chain reached — to the
// other members synchronously before acknowledging. Replicas verify the
// fingerprint chain on apply (internal/store.ApplyReplicated), so every
// member holds a bit-identical graph at every acknowledged epoch, and
// results computed anywhere in the member set carry the same snapshot
// stamp. A member that falls behind (it was down, it missed pushes) is
// caught up from the owner's delta window, or — when compaction has folded
// the window past its cursor — resynced from a full checkpoint.
//
// Reads. Run/query requests fan out over the in-sync members round-robin.
// A request that dawdles past the hedge threshold launches a second copy
// on the next member and takes whichever answers first — the slow-replica
// tail becomes the fast replica's latency. Transport failures fail over to
// the next member and mark the node down; a down node is retried
// half-open after a probation interval, and a node that rejoins with empty
// state is rebuilt by checkpoint resync.
//
// The router is deliberately a single process with no consensus: one
// router owns the op order for its graphs (mutations serialize on its
// per-graph lock). What the design buys is read scale-out, fault-tolerant
// serving, and deterministic replication; what it does not attempt is
// multi-router coordination.
package cluster

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graphio"
	"repro/internal/server"
)

// Options configures a Router.
type Options struct {
	// Nodes are the backend base URLs (e.g. "http://127.0.0.1:9001").
	// At least one is required.
	Nodes []string
	// Replicas is how many members serve each graph (owner included).
	// Clamped to [1, len(Nodes)]; 0 means min(2, len(Nodes)).
	Replicas int
	// HedgeAfter is how long a read may dawdle before a second copy is
	// launched on the next member. 0 means the default (2ms); < 0 disables
	// hedging.
	HedgeAfter time.Duration
	// Probation is how long a down node sits out before a half-open
	// retry. 0 means the default (500ms).
	Probation time.Duration
	// MaxBodyBytes bounds buffered request bodies (reads are replayed
	// across members, so the router must buffer them). <= 0 means 64 MiB.
	MaxBodyBytes int64
	// Retry configures each per-node client's handling of hinted 503
	// sheds. The zero policy applies a small default (3 attempts) so a
	// momentarily saturated backend does not bubble a 503 through the
	// router.
	Retry server.RetryPolicy
	// HTTPClient is the transport for all backend traffic; nil means
	// http.DefaultClient.
	HTTPClient *http.Client
}

func (o Options) replicas() int {
	r := o.Replicas
	if r == 0 {
		r = 2
	}
	if r < 1 {
		r = 1
	}
	if r > len(o.Nodes) {
		r = len(o.Nodes)
	}
	return r
}

func (o Options) hedgeAfter() time.Duration {
	if o.HedgeAfter == 0 {
		return 2 * time.Millisecond
	}
	return o.HedgeAfter
}

func (o Options) probation() time.Duration {
	if o.Probation <= 0 {
		return 500 * time.Millisecond
	}
	return o.Probation
}

func (o Options) maxBodyBytes() int64 {
	if o.MaxBodyBytes <= 0 {
		return 64 << 20
	}
	return o.MaxBodyBytes
}

func (o Options) retry() server.RetryPolicy {
	if o.Retry.MaxAttempts == 0 {
		return server.RetryPolicy{MaxAttempts: 3, BaseDelay: 25 * time.Millisecond, MaxDelay: 250 * time.Millisecond}
	}
	return o.Retry
}

// node is one backend: a typed client plus health state. gen increments on
// every rejoin, so per-graph replica state installed under an older
// incarnation is recognizably stale.
type node struct {
	mu     sync.Mutex
	base   string
	c      *server.Client
	up     bool
	downAt time.Time
	gen    uint64
}

func (n *node) client() *server.Client {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.c
}

// usable reports whether the node should be offered traffic: up, or down
// long enough that a half-open probe is due (the probe is the traffic).
func (n *node) usable(probation time.Duration) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.up || time.Since(n.downAt) >= probation
}

func (n *node) isUp() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.up
}

func (n *node) generation() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.gen
}

// markDown records a transport failure; markUp records any successful
// round trip.
func (n *node) markDown() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.up {
		n.up = false
	}
	n.downAt = time.Now()
}

func (n *node) markUp() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.up = true
}

// replicaState is one member's copy of one graph.
type replicaState struct {
	remoteID string // the graph's id on that node
	epoch    uint64 // last epoch the router knows the member applied
	gen      uint64 // node incarnation the copy was installed under
	ok       bool   // in sync and serving; false = needs catch-up/resync
}

// routedGraph is one logical graph: its routing identity, its member set
// (node indexes, rendezvous order, owner first), and per-member replica
// state. mu serializes mutations, compactions, and resyncs — the router is
// the single writer that defines the op order — while reads only touch the
// member list and states under the lock briefly.
type routedGraph struct {
	id  string
	fp  graphio.Fingerprint
	n   int
	mu  sync.Mutex
	mem []int
	rep map[int]*replicaState
	rr  atomic.Uint64 // read fan-out cursor
}

// Router consistent-hashes graphs across backend nodes and serves the
// /v1 surface over the member sets. Construct with New; a Router is an
// http.Handler, safe for concurrent use.
type Router struct {
	opts  Options
	nodes []*node
	mux   *http.ServeMux
	m     *metrics
	start time.Time

	mu     sync.Mutex
	graphs map[string]*routedGraph
	seq    uint64
}

// New builds a router over the given backends. The backends are assumed
// empty of graphs (the router creates every graph it serves); they are
// probed lazily as traffic arrives.
func New(opts Options) (*Router, error) {
	if len(opts.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: no backend nodes")
	}
	r := &Router{
		opts:   opts,
		mux:    http.NewServeMux(),
		m:      newMetrics(len(opts.Nodes)),
		start:  time.Now(),
		graphs: make(map[string]*routedGraph),
	}
	for _, base := range opts.Nodes {
		c := server.NewClient(base, opts.HTTPClient).WithRetry(opts.retry())
		r.nodes = append(r.nodes, &node{base: strings.TrimRight(base, "/"), c: c, up: true})
	}
	r.routes()
	return r, nil
}

// Nodes returns the configured backend base URLs.
func (r *Router) Nodes() []string {
	out := make([]string, len(r.nodes))
	for i, n := range r.nodes {
		n.mu.Lock()
		out[i] = n.base
		n.mu.Unlock()
	}
	return out
}

func (r *Router) graphByID(id string) (*routedGraph, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rg, ok := r.graphs[id]
	return rg, ok
}

func (r *Router) graphList() []*routedGraph {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*routedGraph, 0, len(r.graphs))
	for _, rg := range r.graphs {
		out = append(out, rg)
	}
	return out
}

// ServeHTTP implements http.Handler.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	r.mux.ServeHTTP(w, req)
}
