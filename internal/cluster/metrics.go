package cluster

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// metrics is the router's own counter set — distinct from the per-node
// serving metrics, which each backend exposes itself. The families here
// describe routing decisions: how often reads hedged, how often hedges
// won, how often a member had to be failed over or rebuilt.
type metrics struct {
	reads     atomic.Uint64 // run/query/batch requests routed
	mutations atomic.Uint64 // addedge/deledge ops applied through an owner
	hedged    atomic.Uint64 // extra read copies launched by the hedge timer
	hedgeWins atomic.Uint64 // hedged copies that answered first
	fallbacks atomic.Uint64 // read attempts that failed and moved on
	failovers atomic.Uint64 // mutations re-forwarded past a dead owner
	resyncs   atomic.Uint64 // full checkpoint rebuilds of a member copy
	noReplica atomic.Uint64 // requests refused: no in-sync replica at all
	replPush  obs.Histogram // synchronous replication fan-out latency
}

func newMetrics(_ int) *metrics { return &metrics{} }

// unavailable refuses a request because no in-sync replica could take it,
// and counts the refusal.
func (r *Router) unavailable(w http.ResponseWriter, msg string) {
	r.m.noReplica.Add(1)
	writeError(w, http.StatusServiceUnavailable, msg)
}

// handleMetrics serves the router's Prometheus exposition. Families are
// stable: every counter is emitted on every scrape, zero or not, so
// dashboards never see series blink in and out.
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	obs.WriteHeader(w, "repro_cluster_nodes", "gauge", "Configured backend nodes.")
	obs.WriteUintSample(w, "repro_cluster_nodes", "", uint64(len(r.nodes)))

	obs.WriteHeader(w, "repro_cluster_node_up", "gauge",
		"Whether the router currently considers each backend up (1) or down (0).")
	for i, n := range r.nodes {
		v := uint64(0)
		if n.isUp() {
			v = 1
		}
		obs.WriteUintSample(w, "repro_cluster_node_up", fmt.Sprintf(`node="%d"`, i), v)
	}

	r.mu.Lock()
	graphs := uint64(len(r.graphs))
	r.mu.Unlock()
	obs.WriteHeader(w, "repro_cluster_graphs", "gauge", "Graphs currently routed.")
	obs.WriteUintSample(w, "repro_cluster_graphs", "", graphs)

	obs.WriteHeader(w, "repro_cluster_reads_total", "counter",
		"Run/query/batch requests routed to a replica.")
	obs.WriteUintSample(w, "repro_cluster_reads_total", "", r.m.reads.Load())

	obs.WriteHeader(w, "repro_cluster_mutations_total", "counter",
		"Edge mutations applied through an acting owner.")
	obs.WriteUintSample(w, "repro_cluster_mutations_total", "", r.m.mutations.Load())

	obs.WriteHeader(w, "repro_cluster_hedged_requests_total", "counter",
		"Extra read copies launched because the first replica passed the hedge threshold.")
	obs.WriteUintSample(w, "repro_cluster_hedged_requests_total", "", r.m.hedged.Load())

	obs.WriteHeader(w, "repro_cluster_hedge_wins_total", "counter",
		"Hedged read copies that answered before the original.")
	obs.WriteUintSample(w, "repro_cluster_hedge_wins_total", "", r.m.hedgeWins.Load())

	obs.WriteHeader(w, "repro_cluster_read_fallbacks_total", "counter",
		"Read attempts that failed (transport error or 5xx) and fell through to the next replica.")
	obs.WriteUintSample(w, "repro_cluster_read_fallbacks_total", "", r.m.fallbacks.Load())

	obs.WriteHeader(w, "repro_cluster_mutation_failovers_total", "counter",
		"Mutations re-forwarded past an unreachable owner to the next in-sync member.")
	obs.WriteUintSample(w, "repro_cluster_mutation_failovers_total", "", r.m.failovers.Load())

	obs.WriteHeader(w, "repro_cluster_resyncs_total", "counter",
		"Member copies rebuilt from a full checkpoint.")
	obs.WriteUintSample(w, "repro_cluster_resyncs_total", "", r.m.resyncs.Load())

	obs.WriteHeader(w, "repro_cluster_unavailable_total", "counter",
		"Requests refused because no in-sync replica was available.")
	obs.WriteUintSample(w, "repro_cluster_unavailable_total", "", r.m.noReplica.Load())

	obs.WriteHeader(w, "repro_cluster_replication_push_seconds", "histogram",
		"Synchronous delta fan-out latency per acknowledged mutation.")
	s := r.m.replPush.Snapshot()
	obs.WriteDurationSeries(w, "repro_cluster_replication_push_seconds", "", &s)

	// Replication lag, summed per node across the graphs it serves: how
	// many acknowledged deltas the router knows the node has not applied.
	// Nonzero values are transient (a push in flight) or a symptom (a
	// member knocked out of sync awaiting repair).
	lag := make([]uint64, len(r.nodes))
	for _, rg := range r.graphList() {
		rg.mu.Lock()
		if owner := r.actingOwner(rg); owner >= 0 {
			oe := rg.rep[owner].epoch
			for _, i := range rg.mem {
				if st := rg.rep[i]; i != owner && oe > st.epoch {
					lag[i] += oe - st.epoch
				}
			}
		}
		rg.mu.Unlock()
	}
	obs.WriteHeader(w, "repro_cluster_replica_behind_deltas", "gauge",
		"Acknowledged deltas not yet applied by each node, summed over its graphs.")
	for i, l := range lag {
		obs.WriteUintSample(w, "repro_cluster_replica_behind_deltas", fmt.Sprintf(`node="%d"`, i), l)
	}

	var retries uint64
	for _, n := range r.nodes {
		retries += n.client().Retries()
	}
	obs.WriteHeader(w, "repro_cluster_client_retries_total", "counter",
		"Hinted 503 sheds retried by the router's backend clients.")
	obs.WriteUintSample(w, "repro_cluster_client_retries_total", "", retries)

	obs.WriteHeader(w, "repro_cluster_uptime_seconds", "gauge", "Seconds since the router started.")
	obs.WriteSample(w, "repro_cluster_uptime_seconds", "", time.Since(r.start).Seconds())
}
