package cluster

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/graphio"
	"repro/internal/server"
)

func (r *Router) routes() {
	r.mux.HandleFunc("GET /healthz", r.handleHealthz)
	r.mux.HandleFunc("GET /metrics", r.handleMetrics)
	r.mux.HandleFunc("GET /v1/algorithms", r.handleAlgorithms)
	r.mux.HandleFunc("POST /v1/graphs", r.handleCreate)
	r.mux.HandleFunc("GET /v1/graphs", r.handleList)
	r.mux.HandleFunc("GET /v1/graphs/{id}", r.handleInfo)
	r.mux.HandleFunc("DELETE /v1/graphs/{id}", r.handleDelete)
	r.mux.HandleFunc("POST /v1/graphs/{id}/run", r.handleRead("/run"))
	r.mux.HandleFunc("POST /v1/graphs/{id}/query", r.handleRead("/query"))
	r.mux.HandleFunc("POST /v1/graphs/{id}/batch", r.handleBatch)
	r.mux.HandleFunc("POST /v1/graphs/{id}/addedge", r.handleMutate(true))
	r.mux.HandleFunc("POST /v1/graphs/{id}/deledge", r.handleMutate(false))
	r.mux.HandleFunc("POST /v1/graphs/{id}/compact", r.handleCompact)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (r *Router) httpClient() *http.Client {
	if r.opts.HTTPClient != nil {
		return r.opts.HTTPClient
	}
	return http.DefaultClient
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	up := 0
	for _, n := range r.nodes {
		if n.isUp() {
			up++
		}
	}
	status := http.StatusOK
	state := "ok"
	if up == 0 {
		status = http.StatusServiceUnavailable
		state = "no backends"
	}
	writeJSON(w, status, map[string]any{"status": state, "nodes": len(r.nodes), "up": up})
}

// handleAlgorithms proxies the registry catalog from any healthy node (the
// catalog is identical everywhere — it is compiled in).
func (r *Router) handleAlgorithms(w http.ResponseWriter, req *http.Request) {
	for _, n := range r.nodes {
		if !n.usable(r.opts.probation()) {
			continue
		}
		n.mu.Lock()
		base := n.base
		n.mu.Unlock()
		preq, err := http.NewRequestWithContext(req.Context(), http.MethodGet, base+"/v1/algorithms", nil)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		resp, err := r.httpClient().Do(preq)
		if err != nil {
			n.markDown()
			continue
		}
		n.markUp()
		defer resp.Body.Close()
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
		return
	}
	r.unavailable(w, "no backend available")
}

// maxGenerateVertices mirrors the node-side default bound.
const maxGenerateVertices = 2_000_000

// handleCreate builds the graph once on the router (JSON body = generate,
// raw body = upload in a graphio format), takes its canonical fingerprint
// as the routing key, places the member set by rendezvous hashing, and
// installs the same checkpoint bytes on every member — so all replicas
// start from a bit-identical store positioned at epoch 0.
func (r *Router) handleCreate(w http.ResponseWriter, req *http.Request) {
	body := http.MaxBytesReader(w, req.Body, r.opts.maxBodyBytes())
	var g *graph.Graph
	if strings.HasPrefix(req.Header.Get("Content-Type"), "application/json") {
		var gr server.GenerateRequest
		dec := json.NewDecoder(body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&gr); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if gr.N > maxGenerateVertices {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("n=%d exceeds the generation bound %d", gr.N, maxGenerateVertices))
			return
		}
		built, err := gen.Family(gr.Family, gr.N, gr.Seed)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		g = built
	} else {
		format := req.URL.Query().Get("format")
		if format == "" {
			writeError(w, http.StatusBadRequest,
				"uploads need ?format=el|edges|dimacs|col|metis|graph (optionally with a .gz suffix); JSON bodies generate instead")
			return
		}
		f, gzipped, err := graphio.FormatForPath("upload." + format)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		var src io.Reader = body
		if gzipped || req.Header.Get("Content-Encoding") == "gzip" {
			zr, err := gzip.NewReader(src)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("gzip: %v", err))
				return
			}
			defer zr.Close()
			src = io.LimitReader(zr, r.opts.maxBodyBytes()+1)
		}
		built, err := graphio.Read(src, f)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		g = built
	}
	if g.N() == 0 {
		writeError(w, http.StatusBadRequest, "empty graph")
		return
	}

	fp := graphio.FingerprintOf(g)
	members := r.placeMembers(fp)
	if len(members) == 0 {
		r.unavailable(w, "no backend available")
		return
	}
	var ckpt bytes.Buffer
	if err := graphio.WriteCheckpoint(&ckpt, g, 0); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}

	rg := &routedGraph{fp: fp, n: g.N(), rep: make(map[int]*replicaState)}
	var ownerInfo *server.GraphInfo
	for _, i := range members {
		info, err := r.nodes[i].client().Install(req.Context(), fp.String(), ckpt.Bytes())
		if err != nil {
			if isTransport(err) {
				r.nodes[i].markDown()
			}
			// A member that cannot take the install now is left out; the
			// graph still serves from the members that could.
			continue
		}
		r.nodes[i].markUp()
		rg.mem = append(rg.mem, i)
		rg.rep[i] = &replicaState{remoteID: info.ID, epoch: 0, gen: r.nodes[i].generation(), ok: true}
		if ownerInfo == nil {
			ownerInfo = info
		}
	}
	if ownerInfo == nil {
		r.unavailable(w, "no backend accepted the graph")
		return
	}
	r.mu.Lock()
	r.seq++
	rg.id = fmt.Sprintf("g%d", r.seq)
	r.graphs[rg.id] = rg
	r.mu.Unlock()
	out := *ownerInfo
	out.ID = rg.id
	writeJSON(w, http.StatusCreated, out)
}

func (r *Router) graphOr404(w http.ResponseWriter, req *http.Request) (*routedGraph, bool) {
	id := req.PathValue("id")
	rg, ok := r.graphByID(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no graph %q", id))
	}
	return rg, ok
}

// memberInfo fetches the graph's info from the first answering in-sync
// member, with the router-visible id substituted in.
func (r *Router) memberInfo(ctx context.Context, rg *routedGraph) (*server.GraphInfo, error) {
	cands := r.readCandidates(rg)
	if len(cands) == 0 {
		return nil, fmt.Errorf("no in-sync replica available")
	}
	var lastErr error
	for _, i := range cands {
		rg.mu.Lock()
		remoteID := rg.rep[i].remoteID
		rg.mu.Unlock()
		info, err := r.nodes[i].client().GraphInfo(ctx, remoteID)
		if err == nil {
			r.nodes[i].markUp()
			info.ID = rg.id
			return info, nil
		}
		lastErr = err
		if isTransport(err) {
			r.nodes[i].markDown()
			r.m.fallbacks.Add(1)
			continue
		}
		return nil, err
	}
	return nil, lastErr
}

func (r *Router) handleInfo(w http.ResponseWriter, req *http.Request) {
	rg, ok := r.graphOr404(w, req)
	if !ok {
		return
	}
	info, err := r.memberInfo(req.Context(), rg)
	if err != nil {
		relayError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (r *Router) handleList(w http.ResponseWriter, req *http.Request) {
	out := make([]server.GraphInfo, 0)
	for _, rg := range r.graphList() {
		info, err := r.memberInfo(req.Context(), rg)
		if err != nil {
			// A temporarily unreadable graph still exists; report its
			// routing identity rather than hiding it.
			rg.mu.Lock()
			out = append(out, server.GraphInfo{ID: rg.id, N: rg.n, Fingerprint: rg.fp.String()})
			rg.mu.Unlock()
			continue
		}
		out = append(out, *info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (r *Router) handleDelete(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	rg, ok := r.graphByID(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no graph %q", id))
		return
	}
	rg.mu.Lock()
	for _, i := range rg.mem {
		st := rg.rep[i]
		if st.remoteID == "" || st.gen != r.nodes[i].generation() {
			continue
		}
		dctx, cancel := context.WithTimeout(req.Context(), 2*time.Second)
		_ = r.nodes[i].client().DeleteGraph(dctx, st.remoteID)
		cancel()
	}
	rg.mu.Unlock()
	r.mu.Lock()
	delete(r.graphs, id)
	r.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// relayError maps a backend error onto the router's response: APIErrors
// pass through with their status, transport failures become 502.
func relayError(w http.ResponseWriter, err error) {
	var ae *server.APIError
	if errors.As(err, &ae) {
		writeError(w, ae.Status, ae.Message)
		return
	}
	writeError(w, http.StatusBadGateway, err.Error())
}

// handleRead serves run and query: the request body is buffered once and
// raced across the in-sync members with hedging (see hedge). Buffering —
// not streaming — is what makes the replay safe.
func (r *Router) handleRead(tail string) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		rg, ok := r.graphOr404(w, req)
		if !ok {
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, r.opts.maxBodyBytes()))
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		cands := r.readCandidates(rg)
		if len(cands) == 0 {
			r.unavailable(w, "no in-sync replica available")
			return
		}
		r.m.reads.Add(1)
		res := r.hedge(req.Context(), rg, cands, tail, body)
		if res.err != nil {
			writeError(w, http.StatusBadGateway, res.err.Error())
			return
		}
		if ct := res.contentType; ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		w.WriteHeader(res.status)
		_, _ = w.Write(res.body)
	}
}

// handleBatch forwards the NDJSON stream to one in-sync member and relays
// the response as it arrives. Batches are not hedged: the stream is
// incremental and the member flushes results as they finish, so replaying
// it elsewhere mid-flight would interleave two orderings.
func (r *Router) handleBatch(w http.ResponseWriter, req *http.Request) {
	rg, ok := r.graphOr404(w, req)
	if !ok {
		return
	}
	cands := r.readCandidates(rg)
	if len(cands) == 0 {
		r.unavailable(w, "no in-sync replica available")
		return
	}
	r.m.reads.Add(1)
	i := cands[0]
	n := r.nodes[i]
	rg.mu.Lock()
	remoteID := rg.rep[i].remoteID
	rg.mu.Unlock()
	n.mu.Lock()
	base := n.base
	n.mu.Unlock()
	preq, err := http.NewRequestWithContext(req.Context(), http.MethodPost,
		base+"/v1/graphs/"+remoteID+"/batch", http.MaxBytesReader(w, req.Body, r.opts.maxBodyBytes()))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	preq.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := r.httpClient().Do(preq)
	if err != nil {
		n.markDown()
		writeError(w, http.StatusBadGateway, err.Error())
		return
	}
	n.markUp()
	defer resp.Body.Close()
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		nn, rerr := resp.Body.Read(buf)
		if nn > 0 {
			if _, werr := w.Write(buf[:nn]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr != nil {
			return
		}
	}
}

// handleMutate serializes the graph's write path: forward the edge op to
// the acting owner, then push the resulting delta (epoch + fingerprint
// chain link) to the other members synchronously, so an acknowledged
// mutation is applied — and verified — everywhere an in-sync replica
// serves reads from.
func (r *Router) handleMutate(add bool) http.HandlerFunc {
	op := graphio.OpDelEdge
	if add {
		op = graphio.OpAddEdge
	}
	return func(w http.ResponseWriter, req *http.Request) {
		rg, ok := r.graphOr404(w, req)
		if !ok {
			return
		}
		var mr server.MutateRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, r.opts.maxBodyBytes()))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&mr); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		rg.mu.Lock()
		defer rg.mu.Unlock()
		var resp *server.MutateResponse
		owner := -1
		for _, i := range rg.mem {
			st := rg.rep[i]
			if !st.ok || st.gen != r.nodes[i].generation() || !r.nodes[i].usable(r.opts.probation()) {
				continue
			}
			var err error
			if add {
				resp, err = r.nodes[i].client().AddEdge(req.Context(), st.remoteID, mr.U, mr.V)
			} else {
				resp, err = r.nodes[i].client().DeleteEdge(req.Context(), st.remoteID, mr.U, mr.V)
			}
			if err != nil {
				if isTransport(err) {
					r.nodes[i].markDown()
					st.ok = false
					r.m.failovers.Add(1)
					continue
				}
				relayError(w, err) // semantic refusal (400, ...) is the answer
				return
			}
			r.nodes[i].markUp()
			st.epoch = resp.Epoch
			owner = i
			break
		}
		if owner < 0 {
			r.unavailable(w, "no in-sync replica available")
			return
		}
		r.m.mutations.Add(1)
		if resp.Applied {
			u, v := int32(mr.U), int32(mr.V)
			if u > v {
				u, v = v, u
			}
			entry := []server.WireDelta{{Op: op, U: u, V: v, Epoch: resp.Epoch, Fingerprint: resp.Fingerprint}}
			t0 := time.Now()
			for _, j := range rg.mem {
				if j == owner {
					continue
				}
				_ = r.replicateTo(req.Context(), rg, j, owner, entry)
			}
			r.m.replPush.Observe(time.Since(t0))
		}
		// No-op mutations (Applied=false) replicate nothing: no epoch was
		// consumed, so the members are already in agreement.
		writeJSON(w, http.StatusOK, *resp)
	}
}

// handleCompact compacts every in-sync member. All members hold the same
// edge set at the same epoch, so each independently folds to the same CSR
// and the same canonical fingerprint — verified, and a member that
// disagrees is marked out of sync for resync on the next write.
func (r *Router) handleCompact(w http.ResponseWriter, req *http.Request) {
	rg, ok := r.graphOr404(w, req)
	if !ok {
		return
	}
	rg.mu.Lock()
	defer rg.mu.Unlock()
	var first *server.MutateResponse
	for _, i := range rg.mem {
		st := rg.rep[i]
		if !st.ok || st.gen != r.nodes[i].generation() || !r.nodes[i].usable(r.opts.probation()) {
			continue
		}
		resp, err := r.nodes[i].client().Compact(req.Context(), st.remoteID)
		if err != nil {
			if isTransport(err) {
				r.nodes[i].markDown()
			}
			st.ok = false
			continue
		}
		r.nodes[i].markUp()
		st.epoch = resp.Epoch
		if first == nil {
			first = resp
		} else if resp.Fingerprint != first.Fingerprint {
			// Divergence a compaction cannot hide; retire the copy.
			st.ok = false
		}
	}
	if first == nil {
		r.unavailable(w, "no in-sync replica available")
		return
	}
	writeJSON(w, http.StatusOK, *first)
}
