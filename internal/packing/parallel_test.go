package packing

import (
	"reflect"
	"testing"

	"repro/internal/graph/gen"
	"repro/internal/problems"
)

// TestParallelPreparationBitIdentical mirrors the covering cross-check for
// the packing pipeline: preparation decompositions, per-iteration carves,
// and final region solves all fan out, and the merged result must be
// bit-identical to the sequential path for any worker count.
func TestParallelPreparationBitIdentical(t *testing.T) {
	g := gen.Cycle(80)
	inst, err := problems.Build(problems.MIS, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{2, 11, 99} {
		base := Params{Epsilon: 0.25, Seed: seed, PrepRuns: 3}
		seq := base
		seq.Workers = 1
		parl := base
		parl.Workers = 6
		rs := Solve(inst, seq)
		rp := Solve(inst, parl)
		if !reflect.DeepEqual(rs, rp) {
			t.Fatalf("seed %d: sequential and parallel results differ:\nseq %+v\npar %+v", seed, rs, rp)
		}
	}
}
