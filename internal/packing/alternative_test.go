package packing

import (
	"testing"

	"repro/internal/graph/gen"
	"repro/internal/problems"
	"repro/internal/solve"
)

func TestAlternativeMISOnCycle(t *testing.T) {
	g := gen.Cycle(200)
	inst := misOn(t, g)
	eps := 0.25
	opt, _ := problems.ExactOptimum(problems.MIS, g)
	for seed := uint64(0); seed < 3; seed++ {
		r := SolveAlternative(inst, Params{Epsilon: eps, Seed: seed}, 8)
		if ok, j := inst.Feasible(r.Solution); !ok {
			t.Fatalf("seed %d: infeasible at %d", seed, j)
		}
		if !problems.Verify(problems.MIS, g, r.Solution) {
			t.Fatalf("seed %d: not independent", seed)
		}
		// The alternative approach promises (1-O(eps)); allow 2*eps slack.
		if float64(r.Value) < (1-2*eps)*float64(opt) {
			t.Fatalf("seed %d: value %d < (1-2eps)*opt (%d)", seed, r.Value, opt)
		}
	}
}

func TestAlternativeMISOnTree(t *testing.T) {
	g := gen.CompleteDAryTree(2, 6)
	inst := misOn(t, g)
	opt, _ := problems.ExactOptimum(problems.MIS, g)
	r := SolveAlternative(inst, Params{Epsilon: 0.2, Seed: 1}, 6)
	if !problems.Verify(problems.MIS, g, r.Solution) {
		t.Fatal("not independent")
	}
	if float64(r.Value) < 0.6*float64(opt) {
		t.Fatalf("value %d vs opt %d", r.Value, opt)
	}
}

func TestAlternativeDefaultsTRuns(t *testing.T) {
	g := gen.Cycle(60)
	inst := misOn(t, g)
	// tRuns = 0 must pick the theory default (capped); it must not crash or
	// spin.
	r := SolveAlternative(inst, Params{Epsilon: 0.3, Seed: 2}, 0)
	if r.Value <= 0 {
		t.Fatalf("empty solution: %+v", r)
	}
}

func TestMembershipCountsCorrelateWithOptimum(t *testing.T) {
	// On a star, the leaves form the unique large MIS; their membership
	// counts must dominate the center's.
	g := gen.Star(20)
	inst := misOn(t, g)
	w := membershipCounts(inst, 10, 0.3, 3, solve.Options{})
	leafTotal := int64(0)
	for v := 1; v < 20; v++ {
		leafTotal += w[v]
	}
	if w[0] >= leafTotal {
		t.Fatalf("center proxy weight %d >= leaves total %d", w[0], leafTotal)
	}
	if leafTotal == 0 {
		t.Fatal("no membership recorded at all")
	}
}

func TestAlternativeDeterministic(t *testing.T) {
	g := gen.Cycle(80)
	inst := misOn(t, g)
	r1 := SolveAlternative(inst, Params{Epsilon: 0.3, Seed: 9}, 4)
	r2 := SolveAlternative(inst, Params{Epsilon: 0.3, Seed: 9}, 4)
	if r1.Value != r2.Value || r1.Rounds != r2.Rounds {
		t.Fatal("nondeterministic")
	}
}
