package packing

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/solve"
)

func allAlive(n int) []bool {
	a := make([]bool, n)
	for i := range a {
		a[i] = true
	}
	return a
}

func TestGrowCarvePackingWindow(t *testing.T) {
	// Path P30, MIS instance, centre 0, interval [4, 9] (a ≡ 1 mod 3,
	// length 6). Layers from vertex 0 are singletons; the local MIS of the
	// radius-8 ball P9 is {0,2,4,6,8}. Candidate triples: j=4 covers layers
	// {4,5,6} (solution weight 2: vertices 4, 6); j=7 covers {7,8,9} with
	// layer 9 outside the ball (solution weight 1: vertex 8). So j* = 7,
	// layer 8 is deleted, and radius <= 7 is removed.
	g := gen.Path(30)
	inst := misOn(t, g)
	alive := allAlive(30)
	oc, exact := growCarvePacking(inst, g, []int32{0}, 4, 9, alive, solve.Options{}, graph.NewWorkspace(g.N()))
	if !exact {
		t.Fatal("path-structured solve should be exact")
	}
	if oc == nil {
		t.Fatal("nil outcome")
	}
	if len(oc.deleted) != 1 || oc.deleted[0] != 8 {
		t.Fatalf("deleted = %v, want [8]", oc.deleted)
	}
	if len(oc.removed) != 8 {
		t.Fatalf("removed %d vertices, want 8 (radius 7)", len(oc.removed))
	}
}

func TestGrowCarvePackingExhausted(t *testing.T) {
	// Ball exhausts before the window: whole component removed, nothing
	// deleted.
	g := gen.Path(5)
	inst := misOn(t, g)
	alive := allAlive(5)
	oc, _ := growCarvePacking(inst, g, []int32{2}, 7, 12, alive, solve.Options{}, graph.NewWorkspace(g.N()))
	if len(oc.deleted) != 0 {
		t.Fatalf("deleted = %v, want none", oc.deleted)
	}
	if len(oc.removed) != 5 {
		t.Fatalf("removed %d, want the whole component", len(oc.removed))
	}
}

func TestGrowCarvePackingDeadSeed(t *testing.T) {
	g := gen.Path(5)
	inst := misOn(t, g)
	alive := make([]bool, 5)
	oc, _ := growCarvePacking(inst, g, []int32{2}, 1, 3, alive, solve.Options{}, graph.NewWorkspace(g.N()))
	if oc != nil {
		t.Fatal("dead seed should return nil")
	}
}

func TestApplyCarvesDeletePriority(t *testing.T) {
	alive := allAlive(6)
	removed := make([]bool, 6)
	deletedMark := make([]bool, 6)
	outcomes := []*carveOutcome{
		{removed: []int32{0, 1, 2}, deleted: []int32{3}},
		{removed: []int32{3, 4}, deleted: []int32{1}}, // conflicts: 3 deleted by first, 1 by second
	}
	applyCarves(outcomes, alive, removed, deletedMark)
	if removed[3] || removed[1] {
		t.Fatal("deletion must win over removal")
	}
	if !deletedMark[3] || !deletedMark[1] {
		t.Fatal("deletions not recorded")
	}
	if !removed[0] || !removed[2] || !removed[4] {
		t.Fatal("clean removals missing")
	}
	for v := 0; v < 5; v++ {
		if alive[v] {
			t.Fatalf("vertex %d still alive", v)
		}
	}
	if !alive[5] {
		t.Fatal("untouched vertex died")
	}
}

func TestSmallIntervalEndToEnd(t *testing.T) {
	// Force the carving interior end-to-end with a scale small enough that
	// the first interval fits inside a long cycle: the run must stay
	// feasible and produce multiple components.
	g := gen.Cycle(800)
	inst := misOn(t, g)
	r := Solve(inst, Params{Epsilon: 0.3, Seed: 3, Scale: 0.001, PrepRuns: 1})
	if ok, j := inst.Feasible(r.Solution); !ok {
		t.Fatalf("infeasible at %d", j)
	}
	if r.NumComponents < 2 {
		t.Logf("components = %d (carve may not have fired; acceptable)", r.NumComponents)
	}
	if r.Value < 240 {
		t.Fatalf("cycle MIS value %d implausibly small", r.Value)
	}
}
