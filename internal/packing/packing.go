// Package packing implements the paper's Theorem 1.2: a distributed
// (1-ε)-approximation for any packing integer linear program in the LOCAL
// model, running in O(log³(1/ε)·log(n)/ε) rounds with probability
// 1 - 1/poly(n).
//
// Structure (Section 4):
//
//   - Preparation: Θ(log ñ) independent Elkin–Neiman decompositions of the
//     communication (primal) graph. Every resulting cluster C computes the
//     local packing value W(P^local_C, C) and the value of its (8tR)-radius
//     neighborhood S_C; the ratio drives its sampling rate — this simulates
//     sampling from the unknown optimal solution (challenge (C2)).
//   - Phase 1: t = ⌈log(20/ε)⌉ iterations; clusters sample themselves with
//     probability 2^i·W_C/W_SC and run Grow-and-Carve-Packing (Algorithm
//     4): delete the layer triple with the smallest local-solution weight,
//     carve the interior.
//   - Phase 2: one boosted iteration with rate multiplied by ln(20/ε).
//   - Phase 3: Elkin–Neiman with λ = ε/10 on the residual; then every final
//     component solves its local packing problem exactly and the union is
//     returned (feasible by Observation 2.1; deleted variables are 0).
package packing

import (
	"context"
	"math"
	"strconv"

	"repro/internal/graph"
	"repro/internal/ilp"
	"repro/internal/ldd"
	"repro/internal/local"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/solve"
	"repro/internal/xrand"
)

// packLabel salts the per-cluster sampling streams.
const packLabel = 0x9ac0

// Params configures a Theorem 1.2 run.
type Params struct {
	// Epsilon is the approximation parameter: the output is a feasible
	// solution of value >= (1-ε)·OPT w.h.p. (given exact local solves).
	Epsilon float64
	// NTilde is the known polynomial upper bound on max(|V|, W(P*, V));
	// zero means n.
	NTilde int
	// Seed drives all randomness.
	Seed uint64
	// Scale multiplies the paper's radius constant (see ldd.Params.Scale).
	Scale float64
	// PrepRuns overrides the number of preparation decompositions
	// (paper: 16 ln ñ). Zero means the paper's value. The experiment
	// harness uses small values to keep sweeps fast; tests use both.
	PrepRuns int
	// Solve tunes the local optimizers.
	Solve solve.Options
	// Workers bounds the worker pool for the independent preparation
	// decompositions, the per-iteration cluster carves, and the final
	// per-region local solves. <= 0 means GOMAXPROCS; 1 forces the
	// sequential path. Seeded runs are bit-identical for every worker
	// count (deterministic per-task randomness, in-order merges).
	Workers int
}

// Result is the outcome of a run.
type Result struct {
	Solution ilp.Solution
	Value    int64
	Rounds   int
	// Exact reports whether every local solve used an exact method; when
	// false the (1-ε) guarantee is not certified (see DESIGN.md).
	Exact bool
	// Deleted is the number of deleted (zero-forced) variables.
	Deleted int
	// NumComponents is the number of final isolated components solved.
	NumComponents int
}

type derived struct {
	t      int
	r      int // R' = R+1 in the paper's notation; interval unit is 3R'
	nTilde int
	ln     float64
	// intervals[i] = [a, b] for iteration i+1, length 3R', a ≡ 1 (mod 3).
	intervals [][2]int
	prepRuns  int
	estRadius int
}

func derive(n int, p Params) derived {
	nTilde := p.NTilde
	if nTilde < n {
		nTilde = n
	}
	eps := clampEps(p.Epsilon)
	scale := p.Scale
	if scale <= 0 {
		scale = 1
	}
	t := int(math.Ceil(math.Log2(20 / eps)))
	if t < 1 {
		t = 1
	}
	ln := math.Log(float64(nTilde) + 3)
	r := int(math.Ceil(200*float64(t)*ln/eps*scale)) + 1 // R' = R+1
	if r < 2 {
		r = 2
	}
	d := derived{t: t, r: r, nTilde: nTilde, ln: ln, estRadius: 8 * t * r}
	// I_i = [(t-i+2)·3R' + 1, (t-i+3)·3R'], i = 1..t+1.
	for i := 1; i <= t+1; i++ {
		a := (t-i+2)*3*r + 1
		b := (t - i + 3) * 3 * r
		d.intervals = append(d.intervals, [2]int{a, b})
	}
	d.prepRuns = p.PrepRuns
	if d.prepRuns <= 0 {
		d.prepRuns = int(math.Ceil(16 * ln))
	}
	return d
}

func clampEps(eps float64) float64 {
	if eps <= 0 || eps > 1 {
		return 0.5
	}
	return eps
}

// prepCluster is one cluster from the preparation decompositions with its
// weight estimates.
type prepCluster struct {
	members []int32
	wC      int64 // W(P^local_C, C)
	wSC     int64 // W(P^local_SC, S_C)
}

// Solve runs the Theorem 1.2 algorithm on a packing instance.
func Solve(inst *ilp.Instance, p Params) *Result {
	r, _ := SolveCtx(context.Background(), inst, p)
	return r
}

// SolveCtx is Solve with cancellation: the context is checked between the
// preparation fan-out, each Phase-1/2 carving iteration, and the final
// per-region fan-out; a cancelled run returns ctx.Err() promptly and
// releases its pooled workspaces.
func SolveCtx(ctx context.Context, inst *ilp.Instance, p Params) (*Result, error) {
	g := inst.Hypergraph().Primal()
	n := g.N()
	d := derive(n, p)
	eps := clampEps(p.Epsilon)
	rootRNG := xrand.New(p.Seed)
	var rc local.RoundCounter
	exact := true
	// Phase timings go only into the trace carried by ctx (nil for
	// untraced runs); the Result is bit-identical either way.
	tr := obs.FromContext(ctx)

	// --- Preparation -----------------------------------------------------
	// The Θ(log ñ) decompositions are independent (per-run seed splits),
	// and so are the per-cluster weight estimates; both fan out across the
	// worker pool and merge in (run, cluster) order so the Phase-1/2
	// sampling streams stay bit-identical to the sequential path.
	workers := par.Workers(p.Workers)
	wss := ldd.AcquireWorkspaces(workers)
	defer ldd.ReleaseWorkspaces(wss)

	endPrep := tr.StartPhase("preparation")
	prepSeeds := make([]uint64, d.prepRuns)
	for run := range prepSeeds {
		prepSeeds[run] = rootRNG.Split(uint64(run) + 0x9e9).Uint64()
	}
	ens := make([]*ldd.Decomposition, d.prepRuns)
	if err := par.ForEachCtx(ctx, workers, d.prepRuns, func(w, run int) {
		ens[run] = ldd.ElkinNeimanWS(g, nil, ldd.ENParams{
			Lambda: 0.5,
			NTilde: d.nTilde,
			Seed:   prepSeeds[run],
		}, wss[w])
	}); err != nil {
		return nil, err
	}
	var members [][]int32
	for _, en := range ens {
		for _, m := range en.Clusters() {
			if len(m) > 0 {
				members = append(members, m)
			}
		}
	}
	clusters := make([]prepCluster, len(members))
	prepExact := make([]bool, len(members))
	if err := par.ForEachCtx(ctx, workers, len(members), func(w, i int) {
		pc := prepCluster{members: members[i]}
		var ex1, ex2 bool
		_, pc.wC, ex1 = solveLocal(inst, members[i], p.Solve)
		sc := g.BallFromSetWithWorkspace(wss[w].G, members[i], d.estRadius, nil)
		_, pc.wSC, ex2 = solveLocal(inst, sc, p.Solve)
		prepExact[i] = ex1 && ex2
		clusters[i] = pc
	}); err != nil {
		return nil, err
	}
	rc.StartPhase()
	for _, en := range ens {
		rc.Charge(en.Rounds)
	}
	for i := range clusters {
		exact = exact && prepExact[i]
		rc.Charge(min(d.estRadius, n))
	}
	rc.EndPhase()
	endPrep()

	// --- Phases 1 and 2 ---------------------------------------------------
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	removed := make([]bool, n)
	deletedMark := make([]bool, n)

	var sampled []int32
	for i := 1; i <= d.t+1; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		interval := d.intervals[i-1]
		isPhase2 := i == d.t+1
		endCarve := func() {}
		if tr != nil {
			name := "carve-" + strconv.Itoa(i)
			if isPhase2 {
				name = "phase2-carve"
			}
			endCarve = tr.StartPhase(name)
		}
		rc.StartPhase()
		// All carves of one iteration run against the same alive snapshot,
		// so they are independent: sample the clusters first, then fan the
		// carves out and merge in cluster order.
		sampled = sampled[:0]
		for ci := range clusters {
			pc := clusters[ci]
			if pc.wSC <= 0 || pc.wC <= 0 {
				continue
			}
			prob := math.Exp2(float64(i)) * float64(pc.wC) / float64(pc.wSC)
			if isPhase2 {
				prob *= math.Log(20 / eps)
			}
			if prob > 1 {
				prob = 1
			}
			if xrand.Stream(p.Seed, ci, uint64(packLabel+i)).Bernoulli(prob) {
				sampled = append(sampled, int32(ci))
			}
		}
		outcomes := make([]*carveOutcome, len(sampled))
		carveExact := make([]bool, len(sampled))
		if err := par.ForEachCtx(ctx, workers, len(sampled), func(w, j int) {
			pc := clusters[sampled[j]]
			outcomes[j], carveExact[j] = growCarvePacking(inst, g, pc.members,
				interval[0], interval[1], alive, p.Solve, wss[w].G)
		}); err != nil {
			return nil, err
		}
		for j := range sampled {
			exact = exact && carveExact[j]
			if outcomes[j] != nil {
				rc.Charge(interval[1])
			}
		}
		rc.EndPhase()
		applyCarves(outcomes, alive, removed, deletedMark)
		endCarve()
	}

	// --- Phase 3 -----------------------------------------------------------
	endP3 := tr.StartPhase("phase3-en")
	en, err := ldd.ElkinNeimanCtx(ctx, g, alive, ldd.ENParams{
		Lambda: eps / 10,
		NTilde: d.nTilde,
		Seed:   rootRNG.Split(0x3a5e).Uint64(),
	})
	endP3()
	if err != nil {
		return nil, err
	}
	rc.Charge(en.Rounds)

	// --- Final local solves -------------------------------------------------
	// Regions: connected components of the carve-removed set, plus Phase-3
	// clusters. All are mutually non-adjacent; deleted vertices are 0. The
	// per-region solves are independent (each reads only the instance) and
	// fan out across the pool; the solutions are OR-ed in region order.
	endSolves := tr.StartPhase("local-solves")
	defer endSolves()
	solution := inst.NewSolution()
	comps := 0
	comp, count := g.ComponentsAlive(removed)
	regions := make([][]int32, count)
	for v := 0; v < n; v++ {
		if removed[v] {
			regions[comp[v]] = append(regions[comp[v]], int32(v))
		}
	}
	numRemoved := len(regions)
	regions = append(regions, en.Clusters()...)
	sols := make([]ilp.Solution, len(regions))
	solExact := make([]bool, len(regions))
	if err := par.ForEachCtx(ctx, workers, len(regions), func(w, i int) {
		if len(regions[i]) == 0 {
			return
		}
		sols[i], _, solExact[i] = solveLocal(inst, regions[i], p.Solve)
	}); err != nil {
		return nil, err
	}
	rc.StartPhase()
	for i, r := range regions {
		if i < numRemoved {
			rc.Charge(d.intervals[0][1]) // local gather bounded by the carve radius
		} else {
			rc.Charge(en.Rounds)
		}
		if len(r) == 0 {
			continue
		}
		comps++
		exact = exact && solExact[i]
		for v, set := range sols[i] {
			if set {
				solution[v] = true
			}
		}
	}
	rc.EndPhase()

	deleted := 0
	for v := 0; v < n; v++ {
		if !removed[v] && (en.ClusterOf[v] == ldd.Unclustered) {
			deleted++
		}
	}
	return &Result{
		Solution:      solution,
		Value:         inst.Value(solution),
		Rounds:        rc.Total(),
		Exact:         exact,
		Deleted:       deleted,
		NumComponents: comps,
	}, nil
}

// solveLocal wraps solve.PackingLocal.
func solveLocal(inst *ilp.Instance, members []int32, opt solve.Options) (ilp.Solution, int64, bool) {
	sol, val, m := solve.PackingLocal(inst, members, opt)
	return sol, val, m.Exact()
}

// carveOutcome mirrors ldd.CarveOutcome for the cluster-seeded variant.
type carveOutcome struct {
	deleted []int32
	removed []int32
}

// growCarvePacking implements Algorithm 4 for a cluster seed set: gather
// layers to radius b-1, compute the local packing solution of the ball,
// pick j* ≡ a (mod 3) in [a, b-1] minimizing the solution weight on the
// triple S_{j*} ∪ S_{j*+1} ∪ S_{j*+2}, delete S_{j*+1}, remove N^{j*}.
// The gather runs on the caller's workspace; concurrent calls against the
// same alive snapshot are safe when each uses its own workspace.
func growCarvePacking(inst *ilp.Instance, g *graph.Graph, seed []int32, a, b int,
	alive []bool, opt solve.Options, ws *graph.Workspace) (*carveOutcome, bool) {

	layers := g.BallLayersFromSetWithWorkspace(ws, seed, b-1, alive)
	if layers == nil {
		return nil, true
	}
	if len(layers) <= a {
		var rem []int32
		for _, l := range layers {
			rem = append(rem, l...)
		}
		return &carveOutcome{removed: rem}, true
	}
	total := 0
	for _, l := range layers {
		total += len(l)
	}
	ball := make([]int32, 0, total)
	for _, l := range layers {
		ball = append(ball, l...)
	}
	sol, _, ex := solveLocal(inst, ball, opt)
	layerWeight := func(j int) int64 {
		if j >= len(layers) {
			return 0
		}
		var w int64
		for _, v := range layers[j] {
			if sol[v] {
				w += inst.Weight(int(v))
			}
		}
		return w
	}
	jStar, best := -1, int64(-1)
	for j := a; j+2 <= b && j < len(layers); j += 3 {
		w := layerWeight(j) + layerWeight(j+1) + layerWeight(j+2)
		if best == -1 || w < best {
			best = w
			jStar = j
		}
	}
	if jStar == -1 {
		// Window collapsed (ball barely exceeds a): remove up to the end.
		var rem []int32
		for _, l := range layers {
			rem = append(rem, l...)
		}
		return &carveOutcome{removed: rem}, ex
	}
	oc := &carveOutcome{}
	for j := 0; j <= jStar && j < len(layers); j++ {
		oc.removed = append(oc.removed, layers[j]...)
	}
	if jStar+1 < len(layers) {
		oc.deleted = append(oc.deleted, layers[jStar+1]...)
	}
	return oc, ex
}

// applyCarves mirrors ldd's merge semantics (delete wins over remove);
// nil outcomes (unsampled or dead-seed carves) are skipped.
func applyCarves(outcomes []*carveOutcome, alive, removed, deletedMark []bool) {
	for _, oc := range outcomes {
		if oc == nil {
			continue
		}
		for _, v := range oc.deleted {
			if alive[v] {
				deletedMark[v] = true
			}
		}
	}
	for _, oc := range outcomes {
		if oc == nil {
			continue
		}
		for _, v := range oc.removed {
			if !alive[v] || deletedMark[v] {
				continue
			}
			alive[v] = false
			removed[v] = true
		}
	}
	for v := range deletedMark {
		if deletedMark[v] && alive[v] {
			alive[v] = false
		}
	}
}
