package packing

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/ilp"
	"repro/internal/problems"
)

func misOn(t testing.TB, g *graph.Graph) *ilp.Instance {
	t.Helper()
	inst, err := problems.Build(problems.MIS, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestDeriveStructure(t *testing.T) {
	d := derive(1000, Params{Epsilon: 0.2})
	if d.t != 7 {
		t.Fatalf("t = %d", d.t)
	}
	if len(d.intervals) != d.t+1 {
		t.Fatalf("intervals = %d", len(d.intervals))
	}
	for i, iv := range d.intervals {
		if iv[0]%3 != 1 {
			t.Fatalf("interval %d start %d not ≡ 1 (mod 3)", i, iv[0])
		}
		if (iv[1]-iv[0]+1)%3 != 0 {
			t.Fatalf("interval %d length not multiple of 3", i)
		}
		if i > 0 && iv[1] >= d.intervals[i-1][0] {
			t.Fatalf("intervals overlap at %d", i)
		}
	}
	if d.prepRuns < 16 {
		t.Fatalf("default prep runs = %d", d.prepRuns)
	}
}

func TestMISOnEvenCycle(t *testing.T) {
	g := gen.Cycle(200)
	inst := misOn(t, g)
	eps := 0.25
	opt, err := problems.ExactOptimum(problems.MIS, g)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 5; seed++ {
		r := Solve(inst, Params{Epsilon: eps, Seed: seed, PrepRuns: 3})
		if ok, j := inst.Feasible(r.Solution); !ok {
			t.Fatalf("seed %d: infeasible at %d", seed, j)
		}
		if !problems.Verify(problems.MIS, g, r.Solution) {
			t.Fatalf("seed %d: not independent", seed)
		}
		if float64(r.Value) < (1-eps)*float64(opt) {
			t.Fatalf("seed %d: value %d < (1-eps)*opt (%d)", seed, r.Value, opt)
		}
		if r.Rounds <= 0 {
			t.Fatal("no rounds charged")
		}
	}
}

func TestMISOnTree(t *testing.T) {
	g := gen.CompleteDAryTree(3, 4) // 121 vertices
	inst := misOn(t, g)
	eps := 0.2
	opt, _ := problems.ExactOptimum(problems.MIS, g)
	r := Solve(inst, Params{Epsilon: eps, Seed: 2, PrepRuns: 3})
	if !problems.Verify(problems.MIS, g, r.Solution) {
		t.Fatal("not independent")
	}
	if float64(r.Value) < (1-eps)*float64(opt) {
		t.Fatalf("value %d < (1-eps)*%d", r.Value, opt)
	}
}

func TestMISOnGrid(t *testing.T) {
	g := gen.Grid(12, 15)
	inst := misOn(t, g)
	eps := 0.25
	opt, _ := problems.ExactOptimum(problems.MIS, g) // bipartite exact
	r := Solve(inst, Params{Epsilon: eps, Seed: 4, PrepRuns: 3})
	if !problems.Verify(problems.MIS, g, r.Solution) {
		t.Fatal("not independent")
	}
	if float64(r.Value) < (1-eps)*float64(opt) {
		t.Fatalf("value %d < (1-eps)*%d", r.Value, opt)
	}
}

func TestMISSmallScaleStillFeasible(t *testing.T) {
	// With a tiny radius scale the carving is exercised for real; the
	// (1-eps) bound may degrade but feasibility and separation must hold.
	g := gen.Cycle(600)
	inst := misOn(t, g)
	r := Solve(inst, Params{Epsilon: 0.3, Seed: 5, Scale: 0.002, PrepRuns: 2})
	if ok, j := inst.Feasible(r.Solution); !ok {
		t.Fatalf("infeasible at %d", j)
	}
	if !problems.Verify(problems.MIS, g, r.Solution) {
		t.Fatal("not independent")
	}
	if r.Value == 0 {
		t.Fatal("empty solution")
	}
}

func TestMaxMatchingAsPacking(t *testing.T) {
	// Matching ILP: variables are edges; the primal graph is the line graph.
	g := gen.Path(60)
	inst, err := problems.Build(problems.MaxMatching, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	eps := 0.25
	opt, _ := problems.ExactOptimum(problems.MaxMatching, g)
	r := Solve(inst, Params{Epsilon: eps, Seed: 6, PrepRuns: 3})
	if !problems.Verify(problems.MaxMatching, g, r.Solution) {
		t.Fatal("not a matching")
	}
	if float64(r.Value) < (1-eps)*float64(opt) {
		t.Fatalf("matching %d < (1-eps)*%d", r.Value, opt)
	}
}

func TestWeightedMIS(t *testing.T) {
	// Star with heavy center: optimum takes the center.
	g := gen.Star(30)
	w := make([]int64, 30)
	w[0] = 100
	for i := 1; i < 30; i++ {
		w[i] = 1
	}
	inst, err := problems.Build(problems.MIS, g, w)
	if err != nil {
		t.Fatal(err)
	}
	r := Solve(inst, Params{Epsilon: 0.2, Seed: 7, PrepRuns: 3})
	if r.Value < 80 { // (1-eps) * 100
		t.Fatalf("weighted value = %d", r.Value)
	}
	if !problems.Verify(problems.MIS, g, r.Solution) {
		t.Fatal("not independent")
	}
}

func TestDeterministic(t *testing.T) {
	g := gen.Cycle(100)
	inst := misOn(t, g)
	p := Params{Epsilon: 0.3, Seed: 11, PrepRuns: 2}
	r1 := Solve(inst, p)
	r2 := Solve(inst, p)
	if r1.Value != r2.Value || r1.Rounds != r2.Rounds {
		t.Fatal("nondeterministic")
	}
}

func TestDisconnectedGraph(t *testing.T) {
	b := graph.NewBuilder(20)
	for i := 0; i+1 < 10; i++ {
		b.AddEdge(i, i+1)
	}
	for i := 10; i+1 < 20; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.Build()
	inst := misOn(t, g)
	r := Solve(inst, Params{Epsilon: 0.25, Seed: 8, PrepRuns: 2})
	if !problems.Verify(problems.MIS, g, r.Solution) {
		t.Fatal("not independent")
	}
	// Two P10s: MIS = 5 + 5 = 10.
	if r.Value < 8 {
		t.Fatalf("disconnected MIS = %d", r.Value)
	}
}

func TestExactFlagHonest(t *testing.T) {
	// Force greedy everywhere: Exact must be false.
	g := gen.Cycle(60)
	inst := misOn(t, g)
	p := Params{Epsilon: 0.3, Seed: 9, PrepRuns: 2}
	p.Solve.ForceGreedy = true
	r := Solve(inst, p)
	if r.Exact {
		t.Fatal("greedy-only run claimed exact")
	}
	if !problems.Verify(problems.MIS, g, r.Solution) {
		t.Fatal("greedy run produced invalid set")
	}
}

func BenchmarkPackingMISCycle200(b *testing.B) {
	g := gen.Cycle(200)
	inst := misOn(b, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Solve(inst, Params{Epsilon: 0.25, Seed: uint64(i), PrepRuns: 2})
	}
}
