package packing

import (
	"math"

	"repro/internal/ilp"
	"repro/internal/ldd"
	"repro/internal/local"
	"repro/internal/solve"
	"repro/internal/xrand"
)

// SolveAlternative implements the "Alternative Approach" to Theorem 1.2
// described at the end of Section 4 (credited there to an anonymous
// reviewer):
//
//  1. run T = O(ε⁻² log ñ) Elkin–Neiman decompositions in parallel and
//     compute the packing solution P_i induced by each (per-cluster local
//     optima, zeros on deleted vertices);
//  2. reweight every variable by w'(v) = w(v) · |{i : P_i(v) = 1}| — the
//     concentration of Σ w(P_i) around T(1−ε)·OPT makes w' a proxy for
//     membership in an optimal solution;
//  3. run the *weighted* low-diameter decomposition (ChangLiWeighted) on
//     w', which deletes at most an ε fraction of the total proxy weight
//     w.h.p.;
//  4. solve each final cluster exactly and return the union P′; the
//     averaging argument gives w(P′) ≥ (1−O(ε))·OPT.
//
// TRuns overrides the number of parallel decompositions (zero = the
// theory's ⌈ε⁻² ln ñ⌉ capped at 64 for laptop practicality; the cap is
// reported via Result.Exact semantics as usual).
func SolveAlternative(inst *ilp.Instance, p Params, tRuns int) *Result {
	g := inst.Hypergraph().Primal()
	n := g.N()
	eps := clampEps(p.Epsilon)
	nTilde := p.NTilde
	if nTilde < n {
		nTilde = n
	}
	if tRuns <= 0 {
		tRuns = int(math.Ceil(math.Log(float64(nTilde)+3) / (eps * eps)))
		if tRuns > 64 {
			tRuns = 64
		}
	}
	if tRuns < 1 {
		tRuns = 1
	}
	rootRNG := xrand.New(p.Seed)
	var rc local.RoundCounter
	exact := true

	// Step 1+2: parallel decompositions and the membership-count weights.
	wPrime := make([]int64, n)
	rc.StartPhase()
	for run := 0; run < tRuns; run++ {
		en := ldd.ElkinNeiman(g, nil, ldd.ENParams{
			Lambda: eps,
			NTilde: nTilde,
			Seed:   rootRNG.Split(uint64(run) + 0xa17).Uint64(),
		})
		rc.Charge(en.Rounds)
		for _, cluster := range en.Clusters() {
			sol, _, ex := solveLocal(inst, cluster, p.Solve)
			exact = exact && ex
			for v, set := range sol {
				if set {
					wPrime[v] += inst.Weight(v)
				}
			}
		}
	}
	rc.EndPhase()

	// Step 3: weighted decomposition against the proxy weights.
	dec := ldd.ChangLiWeighted(g, wPrime, ldd.Params{
		Epsilon: eps,
		NTilde:  nTilde,
		Seed:    rootRNG.Split(0xa1f).Uint64(),
		Scale:   p.Scale,
	})
	rc.Charge(dec.Rounds)

	// Step 4: per-cluster exact solves, zero extension.
	solution := inst.NewSolution()
	comps := 0
	for _, cluster := range dec.Clusters() {
		if len(cluster) == 0 {
			continue
		}
		comps++
		sol, _, ex := solveLocal(inst, cluster, p.Solve)
		exact = exact && ex
		for v, set := range sol {
			if set {
				solution[v] = true
			}
		}
	}
	deleted := dec.UnclusteredCount()
	return &Result{
		Solution:      solution,
		Value:         inst.Value(solution),
		Rounds:        rc.Total(),
		Exact:         exact,
		Deleted:       deleted,
		NumComponents: comps,
	}
}

// membershipCounts exposes step 2's proxy weights for tests.
func membershipCounts(inst *ilp.Instance, tRuns int, eps float64, seed uint64, opt solve.Options) []int64 {
	g := inst.Hypergraph().Primal()
	n := g.N()
	rootRNG := xrand.New(seed)
	wPrime := make([]int64, n)
	for run := 0; run < tRuns; run++ {
		en := ldd.ElkinNeiman(g, nil, ldd.ENParams{
			Lambda: eps,
			NTilde: n,
			Seed:   rootRNG.Split(uint64(run) + 0xa17).Uint64(),
		})
		for _, cluster := range en.Clusters() {
			sol, _, _ := solveLocal(inst, cluster, opt)
			for v, set := range sol {
				if set {
					wPrime[v] += inst.Weight(v)
				}
			}
		}
	}
	return wPrime
}
