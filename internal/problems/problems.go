// Package problems builds the concrete packing and covering ILP instances
// studied in the paper — maximum independent set, maximum cut (as a derived
// measurement), minimum vertex cover, minimum (k-distance) dominating set,
// and maximum matching — together with verifiers and exact-optimum oracles
// on the graph families where polynomial-time exact optimization is
// possible (trees, bipartite graphs, cycles). These oracles are what make
// the approximation-ratio experiments honest at laptop scale (see the
// substitution table in DESIGN.md).
package problems

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/ilp"
	"repro/internal/matching"
	"repro/internal/treedp"
)

// Problem identifies a concrete optimization problem.
type Problem int

const (
	// MIS is maximum(-weight) independent set (packing).
	MIS Problem = iota + 1
	// MinVertexCover is minimum(-weight) vertex cover (covering).
	MinVertexCover
	// MinDominatingSet is minimum(-weight) dominating set (covering).
	MinDominatingSet
	// KDominatingSet is minimum k-distance dominating set (covering); the
	// paper's Definition 1.3 example. Use BuildK for this one.
	KDominatingSet
	// MaxMatching is maximum matching encoded as a packing ILP over edge
	// variables (one variable per edge, one constraint per vertex).
	MaxMatching
)

// String implements fmt.Stringer.
func (p Problem) String() string {
	switch p {
	case MIS:
		return "max-independent-set"
	case MinVertexCover:
		return "min-vertex-cover"
	case MinDominatingSet:
		return "min-dominating-set"
	case KDominatingSet:
		return "k-dominating-set"
	case MaxMatching:
		return "max-matching"
	default:
		return fmt.Sprintf("Problem(%d)", int(p))
	}
}

// Kind returns whether the problem is packing or covering.
func (p Problem) Kind() ilp.Kind {
	switch p {
	case MIS, MaxMatching:
		return ilp.Packing
	default:
		return ilp.Covering
	}
}

// ErrUnsupported is returned for (problem, operation) pairs that do not
// apply, e.g. exact optima on graph classes without a poly-time algorithm.
var ErrUnsupported = errors.New("problems: unsupported")

// unit returns n unit weights.
func unit(n int) []int64 {
	w := make([]int64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// Build constructs the ILP instance of the problem on g. weights may be nil
// for unit weights (required nil for MaxMatching, whose variables are
// edges). For KDominatingSet use BuildK.
func Build(p Problem, g *graph.Graph, weights []int64) (*ilp.Instance, error) {
	switch p {
	case MIS:
		return buildEdgeConstraints(ilp.Packing, g, weights)
	case MinVertexCover:
		return buildEdgeConstraints(ilp.Covering, g, weights)
	case MinDominatingSet:
		return BuildK(1, g, weights)
	case KDominatingSet:
		return nil, fmt.Errorf("%w: use BuildK for k-distance dominating set", ErrUnsupported)
	case MaxMatching:
		if weights != nil {
			return nil, fmt.Errorf("%w: matching variables are edges; weights must be nil", ErrUnsupported)
		}
		return buildMatching(g)
	default:
		return nil, fmt.Errorf("%w: unknown problem %d", ErrUnsupported, int(p))
	}
}

// buildEdgeConstraints makes x_u + x_v <= 1 (packing) or >= 1 (covering)
// per edge.
func buildEdgeConstraints(kind ilp.Kind, g *graph.Graph, weights []int64) (*ilp.Instance, error) {
	if weights == nil {
		weights = unit(g.N())
	}
	b := ilp.NewBuilder(kind, weights)
	g.Edges(func(u, v int) {
		b.AddConstraint([]ilp.Term{{Var: u, Coeff: 1}, {Var: v, Coeff: 1}}, 1)
	})
	return b.Build()
}

// BuildK constructs the k-distance dominating set instance: minimize the
// weight of D subject to N^k(v) ∩ D nonempty for every v.
func BuildK(k int, g *graph.Graph, weights []int64) (*ilp.Instance, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w: k must be >= 1", ErrUnsupported)
	}
	if weights == nil {
		weights = unit(g.N())
	}
	b := ilp.NewBuilder(ilp.Covering, weights)
	for v := 0; v < g.N(); v++ {
		ball := g.Ball(v, k)
		terms := make([]ilp.Term, len(ball))
		for i, u := range ball {
			terms[i] = ilp.Term{Var: int(u), Coeff: 1}
		}
		b.AddConstraint(terms, 1)
	}
	return b.Build()
}

// buildMatching encodes maximum matching: one 0/1 variable per edge, and
// for every vertex the constraint that at most one incident edge is chosen.
// Variable i corresponds to EdgeList()[i].
func buildMatching(g *graph.Graph) (*ilp.Instance, error) {
	edges := g.EdgeList()
	b := ilp.NewBuilder(ilp.Packing, unit(len(edges)))
	incident := make([][]ilp.Term, g.N())
	for i, e := range edges {
		incident[e[0]] = append(incident[e[0]], ilp.Term{Var: i, Coeff: 1})
		incident[e[1]] = append(incident[e[1]], ilp.Term{Var: i, Coeff: 1})
	}
	for v := 0; v < g.N(); v++ {
		if len(incident[v]) > 0 {
			b.AddConstraint(incident[v], 1)
		}
	}
	return b.Build()
}

// Verify checks that the solution is combinatorially valid for the problem
// on g (independent / covering / dominating / matching), independent of the
// ILP encoding.
func Verify(p Problem, g *graph.Graph, sol ilp.Solution) bool {
	return VerifyK(p, 1, g, sol)
}

// VerifyK is Verify with an explicit distance parameter for KDominatingSet
// (and MinDominatingSet with k = 1).
func VerifyK(p Problem, k int, g *graph.Graph, sol ilp.Solution) bool {
	switch p {
	case MIS:
		ok := true
		g.Edges(func(u, v int) {
			if sol[u] && sol[v] {
				ok = false
			}
		})
		return ok
	case MinVertexCover:
		ok := true
		g.Edges(func(u, v int) {
			if !sol[u] && !sol[v] {
				ok = false
			}
		})
		return ok
	case MinDominatingSet, KDominatingSet:
		for v := 0; v < g.N(); v++ {
			dominated := false
			for _, u := range g.Ball(v, k) {
				if sol[u] {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
		return true
	case MaxMatching:
		edges := g.EdgeList()
		deg := make([]int, g.N())
		for i, e := range edges {
			if i < len(sol) && sol[i] {
				deg[e[0]]++
				deg[e[1]]++
			}
		}
		for _, d := range deg {
			if d > 1 {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// ExactOptimum computes the exact unit-weight optimum of the problem on g
// when a polynomial-time method applies:
//
//   - forests: tree DP for MIS / MVC / MDS;
//   - bipartite graphs: Hopcroft–Karp + König for MIS / MVC / MaxMatching;
//   - MaxMatching additionally on general graphs is unsupported here (no
//     Blossom implementation) — use bipartite inputs.
//
// It returns ErrUnsupported when no exact method applies.
func ExactOptimum(p Problem, g *graph.Graph) (int64, error) {
	isForest := g.Girth() == -1
	switch p {
	case MIS:
		if isForest {
			_, val, err := treedp.MaxIndependentSet(g, nil)
			return val, err
		}
		if r := matching.BipartiteAuto(g); r != nil {
			return int64(len(r.MaxIndependentSet)), nil
		}
	case MinVertexCover:
		if isForest {
			_, val, err := treedp.MinVertexCover(g, nil)
			return val, err
		}
		if r := matching.BipartiteAuto(g); r != nil {
			return int64(len(r.MinVertexCover)), nil
		}
	case MinDominatingSet:
		if isForest {
			_, val, err := treedp.MinDominatingSet(g, nil)
			return val, err
		}
	case MaxMatching:
		if r := matching.BipartiteAuto(g); r != nil {
			return int64(r.Size), nil
		}
	}
	return 0, fmt.Errorf("%w: no exact method for %v on this graph", ErrUnsupported, p)
}

// CutValue returns the number of edges crossing the bipartition encoded by
// sol (sol[v] = side of v) — the MaxCut objective. MaxCut is not a packing
// ILP in variables-per-vertex form, but its lower bound (Theorem B.7) and
// the local-solve machinery are exercised through this measurement.
func CutValue(g *graph.Graph, sol ilp.Solution) int64 {
	var cut int64
	g.Edges(func(u, v int) {
		if sol[u] != sol[v] {
			cut++
		}
	})
	return cut
}
