package problems

import (
	"errors"
	"testing"

	"repro/internal/graph/gen"
	"repro/internal/ilp"
	"repro/internal/xrand"
)

func TestStringAndKind(t *testing.T) {
	cases := []struct {
		p    Problem
		kind ilp.Kind
	}{
		{MIS, ilp.Packing},
		{MinVertexCover, ilp.Covering},
		{MinDominatingSet, ilp.Covering},
		{KDominatingSet, ilp.Covering},
		{MaxMatching, ilp.Packing},
	}
	for _, c := range cases {
		if c.p.String() == "" {
			t.Fatal("empty name")
		}
		if c.p.Kind() != c.kind {
			t.Fatalf("%v kind = %v", c.p, c.p.Kind())
		}
	}
	if Problem(99).String() == "" {
		t.Fatal("unknown problem should print")
	}
}

func TestBuildMIS(t *testing.T) {
	g := gen.Cycle(5)
	inst, err := Build(MIS, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Kind() != ilp.Packing || inst.NumConstraints() != 5 {
		t.Fatalf("kind=%v cons=%d", inst.Kind(), inst.NumConstraints())
	}
	sol := inst.NewSolution()
	sol[0], sol[2] = true, true
	if ok, _ := inst.Feasible(sol); !ok {
		t.Fatal("independent set rejected by ILP")
	}
	if !Verify(MIS, g, sol) {
		t.Fatal("verifier rejected valid IS")
	}
	sol[1] = true
	if ok, _ := inst.Feasible(sol); ok {
		t.Fatal("dependent set accepted")
	}
	if Verify(MIS, g, sol) {
		t.Fatal("verifier accepted invalid IS")
	}
}

func TestBuildVC(t *testing.T) {
	g := gen.Path(4)
	inst, err := Build(MinVertexCover, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	sol := inst.NewSolution()
	sol[1], sol[2] = true, true
	if ok, _ := inst.Feasible(sol); !ok {
		t.Fatal("cover rejected")
	}
	if !Verify(MinVertexCover, g, sol) {
		t.Fatal("verifier rejected cover")
	}
	sol[1] = false
	if Verify(MinVertexCover, g, sol) {
		t.Fatal("verifier accepted non-cover")
	}
}

func TestBuildMDS(t *testing.T) {
	g := gen.Star(6)
	inst, err := Build(MinDominatingSet, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	sol := inst.NewSolution()
	sol[0] = true // center dominates everything
	if ok, _ := inst.Feasible(sol); !ok {
		t.Fatal("center rejected as dominating set")
	}
	if !Verify(MinDominatingSet, g, sol) {
		t.Fatal("verifier rejected dominating set")
	}
	sol[0] = false
	sol[1] = true
	if Verify(MinDominatingSet, g, sol) {
		t.Fatal("one leaf cannot dominate a star")
	}
}

func TestBuildKDom(t *testing.T) {
	g := gen.Path(9)
	inst, err := BuildK(2, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	sol := inst.NewSolution()
	sol[2], sol[6] = true, true // radius-2 balls cover 0..4 and 4..8
	if ok, j := inst.Feasible(sol); !ok {
		t.Fatalf("2-dominating set rejected at %d", j)
	}
	if !VerifyK(KDominatingSet, 2, g, sol) {
		t.Fatal("verifier rejected 2-dominating set")
	}
	sol[6] = false
	if VerifyK(KDominatingSet, 2, g, sol) {
		t.Fatal("half coverage accepted")
	}
	if _, err := BuildK(0, g, nil); !errors.Is(err, ErrUnsupported) {
		t.Fatal("k=0 accepted")
	}
	if _, err := Build(KDominatingSet, g, nil); !errors.Is(err, ErrUnsupported) {
		t.Fatal("Build should redirect KDominatingSet to BuildK")
	}
}

func TestBuildMatching(t *testing.T) {
	g := gen.Path(4) // edges (0,1),(1,2),(2,3)
	inst, err := Build(MaxMatching, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumVars() != 3 {
		t.Fatalf("matching vars = %d", inst.NumVars())
	}
	sol := inst.NewSolution()
	sol[0], sol[2] = true, true // edges (0,1) and (2,3): valid
	if ok, _ := inst.Feasible(sol); !ok {
		t.Fatal("matching rejected")
	}
	if !Verify(MaxMatching, g, sol) {
		t.Fatal("verifier rejected matching")
	}
	sol[1] = true // edge (1,2) conflicts with both
	if ok, _ := inst.Feasible(sol); ok {
		t.Fatal("overlapping matching accepted")
	}
	if Verify(MaxMatching, g, sol) {
		t.Fatal("verifier accepted overlapping matching")
	}
	if _, err := Build(MaxMatching, g, []int64{1, 1, 1}); !errors.Is(err, ErrUnsupported) {
		t.Fatal("weights on matching accepted")
	}
}

func TestExactOptimum(t *testing.T) {
	// Tree.
	tree := gen.RandomTree(50, xrand.New(9))
	if v, err := ExactOptimum(MinDominatingSet, tree); err != nil || v <= 0 {
		t.Fatalf("tree MDS: %v %d", err, v)
	}
	// Bipartite (even cycle).
	c := gen.Cycle(10)
	if v, err := ExactOptimum(MIS, c); err != nil || v != 5 {
		t.Fatalf("C10 MIS: %v %d", err, v)
	}
	if v, err := ExactOptimum(MinVertexCover, c); err != nil || v != 5 {
		t.Fatalf("C10 MVC: %v %d", err, v)
	}
	if v, err := ExactOptimum(MaxMatching, c); err != nil || v != 5 {
		t.Fatalf("C10 matching: %v %d", err, v)
	}
	// Odd cycle: MDS has no exact path (not a forest, not bipartite ok for
	// MDS anyway).
	if _, err := ExactOptimum(MinDominatingSet, gen.Cycle(5)); !errors.Is(err, ErrUnsupported) {
		t.Fatal("odd-cycle MDS should be unsupported")
	}
	if _, err := ExactOptimum(MIS, gen.Complete(5)); !errors.Is(err, ErrUnsupported) {
		t.Fatal("K5 MIS should be unsupported")
	}
}

func TestExactOptimumKnownValues(t *testing.T) {
	// Path P7: MIS 4, MVC 3, MDS 3, matching 3.
	g := gen.Path(7)
	cases := []struct {
		p    Problem
		want int64
	}{{MIS, 4}, {MinVertexCover, 3}, {MinDominatingSet, 3}, {MaxMatching, 3}}
	for _, c := range cases {
		got, err := ExactOptimum(c.p, g)
		if err != nil {
			t.Fatalf("%v: %v", c.p, err)
		}
		if got != c.want {
			t.Fatalf("%v = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestCutValue(t *testing.T) {
	g := gen.Cycle(6)
	sol := make(ilp.Solution, 6)
	for i := 0; i < 6; i += 2 {
		sol[i] = true // alternating: all 6 edges cut
	}
	if c := CutValue(g, sol); c != 6 {
		t.Fatalf("cut = %d, want 6", c)
	}
	// All on one side: zero cut.
	for i := range sol {
		sol[i] = false
	}
	if c := CutValue(g, sol); c != 0 {
		t.Fatalf("empty cut = %d", c)
	}
}

func TestWeightedBuild(t *testing.T) {
	g := gen.Path(3)
	w := []int64{5, 1, 5}
	inst, err := Build(MIS, g, w)
	if err != nil {
		t.Fatal(err)
	}
	sol := inst.NewSolution()
	sol[0], sol[2] = true, true
	if inst.Value(sol) != 10 {
		t.Fatalf("weighted value = %d", inst.Value(sol))
	}
}
