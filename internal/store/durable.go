package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/obs"
	"repro/internal/wal"
)

// Durable layout. A durable store lives in one directory:
//
//	MANIFEST.json          — pointer to the current (checkpoint, wal) pair
//	checkpoint-<seq>.ckpt  — CSR snapshot at some epoch (graphio checkpoint)
//	wal-<seq>.log          — every mutation applied after that checkpoint
//
// The manifest is the commit point. Compact writes the next checkpoint and
// an empty next WAL, then atomically swings the manifest to the new pair;
// a crash anywhere in between leaves the old pair current and the new
// files as ignorable orphans. Recovery is therefore always: load the
// manifest's checkpoint, replay its WAL prefix, continue appending.
const manifestName = "MANIFEST.json"

const manifestVersion = 1

// ErrExists is returned by Create when the directory already holds a store.
var ErrExists = errors.New("store: directory already contains a store")

// Options configures a durable store. The zero value of every field other
// than Dir is usable (WAL group-commit defaults apply).
type Options struct {
	// Dir is the durability directory. Required for Create/Open.
	Dir string
	// FlushInterval is the WAL group-commit fsync cadence (see wal.Options;
	// negative means sync every append).
	FlushInterval time.Duration
	// FlushBytes forces an inline fsync once this many unsynced bytes
	// accumulate (see wal.Options).
	FlushBytes int
	// Injector, if set, injects deterministic write faults (tests only).
	Injector *wal.Injector
	// Metrics, if set, receives WAL append/fsync latency and group-commit
	// batch-size histograms; it survives Compact's WAL rotation (every
	// generation of the log records into the same bundle).
	Metrics *obs.WALMetrics
}

func (o Options) walOptions() wal.Options {
	return wal.Options{
		FlushInterval: o.FlushInterval,
		FlushBytes:    o.FlushBytes,
		Injector:      o.Injector,
		Metrics:       o.Metrics,
	}
}

// manifest is the on-disk commit pointer. Epoch and Fingerprint duplicate
// what the named checkpoint embeds; Open cross-checks them so a manifest
// paired with the wrong checkpoint fails loudly.
type manifest struct {
	Version     int    `json:"version"`
	Seq         uint64 `json:"seq"`
	Checkpoint  string `json:"checkpoint"`
	WAL         string `json:"wal"`
	Epoch       uint64 `json:"epoch"`
	Fingerprint string `json:"fingerprint"`
}

func checkpointName(seq uint64) string { return fmt.Sprintf("checkpoint-%06d.ckpt", seq) }
func walName(seq uint64) string        { return fmt.Sprintf("wal-%06d.log", seq) }

// Exists reports whether dir holds a durable store (i.e. a manifest).
func Exists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// Create initializes dir as a durable store around g (retained, must not be
// mutated by the caller) and returns the open store. The base graph is
// checkpointed immediately, so the store is recoverable from its very first
// acknowledged mutation. Fails with ErrExists if dir already holds a store.
func Create(g *graph.Graph, opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("store: Create requires Options.Dir")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	if Exists(opts.Dir) {
		return nil, fmt.Errorf("%w: %s", ErrExists, opts.Dir)
	}
	s := New(g)
	s.dir, s.opts = opts.Dir, opts
	if err := s.rotateLocked(g); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", opts.Dir, err)
	}
	return s, nil
}

// Open recovers the durable store in opts.Dir: it loads the manifest's
// checkpoint (fully verified — CRC, CSR invariants, embedded fingerprint),
// replays the WAL on top of it (truncating a torn or corrupt tail to the
// last durable prefix), verifies the epoch chain is contiguous, and reopens
// the WAL for appending. The recovered fingerprint/epoch are exactly what a
// live store that applied the same prefix would report.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("store: Open requires Options.Dir")
	}
	fail := func(err error) (*Store, error) {
		return nil, fmt.Errorf("store: open %s: %w", opts.Dir, err)
	}
	data, err := os.ReadFile(filepath.Join(opts.Dir, manifestName))
	if err != nil {
		return fail(err)
	}
	var man manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return fail(fmt.Errorf("manifest: %w", err))
	}
	if man.Version != manifestVersion {
		return fail(fmt.Errorf("manifest version %d not supported", man.Version))
	}
	g, ckptEpoch, fp, err := graphio.LoadCheckpoint(filepath.Join(opts.Dir, man.Checkpoint))
	if err != nil {
		return fail(err)
	}
	if ckptEpoch != man.Epoch || fp.String() != man.Fingerprint {
		return fail(fmt.Errorf("manifest names epoch %d / fingerprint %s, checkpoint holds epoch %d / %s",
			man.Epoch, man.Fingerprint, ckptEpoch, fp.Short()))
	}

	s := New(g)
	s.dir, s.opts = opts.Dir, opts
	s.seq, s.ckptEpoch, s.epoch = man.Seq, ckptEpoch, ckptEpoch

	walPath := filepath.Join(opts.Dir, man.WAL)
	info, err := wal.Replay(walPath, true, func(r wal.Record) error {
		if r.Epoch != s.epoch+1 {
			// A CRC-valid frame with the wrong epoch means the sequenced
			// prefix ends here; whatever follows is from another life.
			return wal.ErrStopReplay
		}
		var ok bool
		switch r.Op {
		case wal.OpAddEdge:
			ok = s.AddEdge(int(r.U), int(r.V))
		case wal.OpDelEdge:
			ok = s.DeleteEdge(int(r.U), int(r.V))
		}
		if !ok {
			// The WAL acknowledged a mutation the checkpointed graph cannot
			// replay — the pair is inconsistent. Refuse to boot rather than
			// serve a silently different graph.
			return fmt.Errorf("record %d (op %d, edge %d-%d) does not apply to the checkpoint state",
				r.Epoch, r.Op, r.U, r.V)
		}
		return nil
	})
	if err != nil {
		return fail(fmt.Errorf("replay %s: %w", man.WAL, err))
	}
	s.w, err = wal.OpenAppend(walPath, info.ValidBytes, opts.walOptions())
	if err != nil {
		return fail(err)
	}
	s.removeOrphansLocked()
	return s, nil
}

// logDelta appends the would-be mutation to the WAL before the in-memory
// state changes. Caller holds s.mu and has validated the mutation; on error
// the caller must reject the mutation (nothing durable acknowledged it).
// A memory-only store (no WAL) logs nothing and never fails.
func (s *Store) logDelta(op Op, u, v int) error {
	if s.w == nil {
		return nil
	}
	if s.werr != nil {
		return s.werr
	}
	uu, vv := int32(u), int32(v)
	if uu > vv {
		uu, vv = vv, uu
	}
	if err := s.w.Append(wal.Record{Op: byte(op), Epoch: s.epoch + 1, U: uu, V: vv}); err != nil {
		s.werr = err
		return err
	}
	return nil
}

// rotateLocked commits g (the fully-materialized current graph) as the next
// checkpoint: write checkpoint-<seq+1>, create an empty wal-<seq+1>, then
// atomically swing the manifest. Only after the manifest rename succeeds is
// any in-process state changed, so a failure at any step leaves both the
// directory and the store exactly as they were. Caller holds s.mu (or owns
// the store exclusively, as Create does).
func (s *Store) rotateLocked(g *graph.Graph) error {
	seq := s.seq + 1
	ckptPath := filepath.Join(s.dir, checkpointName(seq))
	walPath := filepath.Join(s.dir, walName(seq))
	if err := graphio.SaveCheckpoint(ckptPath, g, s.epoch); err != nil {
		return err
	}
	w, err := wal.Create(walPath, s.opts.walOptions())
	if err != nil {
		os.Remove(ckptPath)
		return err
	}
	man := manifest{
		Version:     manifestVersion,
		Seq:         seq,
		Checkpoint:  checkpointName(seq),
		WAL:         walName(seq),
		Epoch:       s.epoch,
		Fingerprint: graphio.FingerprintOf(g).String(),
	}
	err = graphio.WriteFileAtomic(filepath.Join(s.dir, manifestName), func(out io.Writer) error {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(man)
	})
	if err != nil {
		w.Close()
		os.Remove(walPath)
		os.Remove(ckptPath)
		return err
	}
	if old := s.w; old != nil {
		_, syncs := old.Counters()
		s.syncsBase += syncs
		old.Close()
	}
	s.w, s.seq, s.ckptEpoch, s.werr = w, seq, s.epoch, nil
	s.removeOrphansLocked()
	return nil
}

// removeOrphansLocked deletes checkpoint/WAL files the manifest no longer
// names — superseded pairs and debris from a crash mid-rotation. Best
// effort: an orphan that survives is ignored by recovery anyway.
func (s *Store) removeOrphansLocked() {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	keep := map[string]bool{manifestName: true, checkpointName(s.seq): true, walName(s.seq): true}
	for _, e := range entries {
		name := e.Name()
		if keep[name] {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(name, "checkpoint-%06d.ckpt", &seq); err == nil {
			os.Remove(filepath.Join(s.dir, name))
			continue
		}
		if _, err := fmt.Sscanf(name, "wal-%06d.log", &seq); err == nil {
			os.Remove(filepath.Join(s.dir, name))
		}
	}
}

// Dir returns the durability directory ("" for a memory-only store).
func (s *Store) Dir() string { return s.dir }

// WALMetrics returns the metrics bundle the store's WAL records into, or
// nil when none was configured (or the store is memory-only).
func (s *Store) WALMetrics() *obs.WALMetrics { return s.opts.Metrics }

// Err returns the sticky durability error, if any. Once a WAL append fails,
// every subsequent mutation is rejected (AddEdge/DeleteEdge return false)
// until a successful Compact rotates onto a fresh log; Err distinguishes
// that state from ordinary no-op rejections.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.werr
}

// Sync forces every acknowledged mutation to stable storage (one fsync if
// anything is pending). A memory-only store returns nil.
func (s *Store) Sync() error {
	s.mu.Lock()
	w := s.w
	s.mu.Unlock()
	if w == nil {
		return nil
	}
	return w.Sync()
}

// Close flushes and closes the WAL. The store remains readable; further
// mutations fail. A memory-only store returns nil.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil
	}
	err := s.w.Close()
	if s.werr == nil {
		s.werr = errors.New("store: closed")
	}
	return err
}
