package store

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/graph/gen"
	"repro/internal/graphio"
	"repro/internal/xrand"
)

// churnOwner applies k random effective mutations to st (tracking them in
// ref so every call is an applied delta, never a no-op).
func churnOwner(t *testing.T, st *Store, ref edgeSet, n, k int, rng *xrand.RNG) {
	t.Helper()
	for done := 0; done < k; {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		key := ref.key(u, v)
		if ref[key] {
			if !st.DeleteEdge(u, v) {
				t.Fatalf("DeleteEdge(%d,%d) refused an existing edge", u, v)
			}
			delete(ref, key)
		} else {
			if !st.AddEdge(u, v) {
				t.Fatalf("AddEdge(%d,%d) refused a new edge", u, v)
			}
			ref[key] = true
		}
		done++
	}
}

// TestReplicationRoundTripEveryCursor streams the owner's delta log onto a
// fresh replica starting from every possible epoch cursor and checks that
// the replica walks the owner's exact fingerprint chain, link by link.
func TestReplicationRoundTripEveryCursor(t *testing.T) {
	const n, k = 80, 48
	g := gen.GNP(n, 4.0/n, xrand.New(7))
	owner := New(g)
	ref := setOf(g)
	churnOwner(t, owner, ref, n, k, xrand.New(11))

	all, ok := owner.DeltasSince(0)
	if !ok || len(all) != k {
		t.Fatalf("DeltasSince(0) = %d entries, ok=%t; want %d, true", len(all), ok, k)
	}
	for cursor := uint64(0); cursor <= uint64(k); cursor++ {
		replica := New(g)
		// Position the replica at the cursor by replaying the prefix.
		for _, e := range all[:cursor] {
			if err := replica.ApplyReplicated(e); err != nil {
				t.Fatalf("cursor %d: prefix apply at epoch %d: %v", cursor, e.Epoch, err)
			}
		}
		if got := replica.Epoch(); got != cursor {
			t.Fatalf("replica epoch = %d, want %d", got, cursor)
		}
		// Catch up from the cursor and verify the chain at every link.
		rest, ok := owner.DeltasSince(cursor)
		if !ok {
			t.Fatalf("DeltasSince(%d) not servable from an uncompacted window", cursor)
		}
		if len(rest) != k-int(cursor) {
			t.Fatalf("DeltasSince(%d) = %d entries, want %d", cursor, len(rest), k-int(cursor))
		}
		for _, e := range rest {
			if err := replica.ApplyReplicated(e); err != nil {
				t.Fatalf("cursor %d: apply epoch %d: %v", cursor, e.Epoch, err)
			}
			if got := replica.Fingerprint(); got != e.Fingerprint {
				t.Fatalf("cursor %d: after epoch %d replica fp %s != owner chain %s",
					cursor, e.Epoch, got.Short(), e.Fingerprint.Short())
			}
		}
		if got, want := replica.Fingerprint(), owner.Fingerprint(); got != want {
			t.Fatalf("cursor %d: final fp %s != owner %s", cursor, got.Short(), want.Short())
		}
		// The chain guarantees identical edge sets; double-check via the
		// canonical content fingerprints of the materialized snapshots.
		rg, og := replica.Snapshot().Graph(), owner.Snapshot().Graph()
		if graphio.FingerprintOf(rg) != graphio.FingerprintOf(og) {
			t.Fatalf("cursor %d: replica edge set diverged from owner", cursor)
		}
	}
}

// TestReplicationRefusesBadEntries pins that verification happens before
// any state change: gaps, tampered chains, and divergent edits all leave
// the replica untouched.
func TestReplicationRefusesBadEntries(t *testing.T) {
	const n = 40
	g := gen.GNP(n, 3.0/n, xrand.New(5))
	owner := New(g)
	ref := setOf(g)
	churnOwner(t, owner, ref, n, 8, xrand.New(6))
	all, _ := owner.DeltasSince(0)

	fresh := func() *Store { return New(g) }
	unchanged := func(t *testing.T, r *Store) {
		t.Helper()
		if r.Epoch() != 0 || r.Fingerprint() != graphio.FingerprintOf(g) {
			t.Fatal("refused entry mutated the replica")
		}
	}

	t.Run("epoch gap", func(t *testing.T) {
		r := fresh()
		err := r.ApplyReplicated(all[1]) // skips epoch 1
		var gap *EpochGapError
		if !errors.As(err, &gap) {
			t.Fatalf("want *EpochGapError, got %v", err)
		}
		if gap.Have != 0 || gap.Want != 2 {
			t.Fatalf("gap = %+v, want Have=0 Want=2", gap)
		}
		unchanged(t, r)
	})
	t.Run("tampered chain", func(t *testing.T) {
		r := fresh()
		e := all[0]
		e.Fingerprint[0] ^= 0xff
		if err := r.ApplyReplicated(e); err == nil {
			t.Fatal("tampered fingerprint accepted")
		}
		unchanged(t, r)
	})
	t.Run("cursor ahead of owner", func(t *testing.T) {
		if _, ok := owner.DeltasSince(owner.Epoch() + 3); ok {
			t.Fatal("cursor ahead of the owner must force a resync")
		}
	})
}

// TestReplicationResyncAcrossCompact pins the compaction boundary: a
// replica whose cursor predates the owner's Compact cannot be served
// deltas (ok=false, and a post-compact delta is an epoch gap, never a
// silent skip) and must reposition via a checkpoint of the owner's current
// state, after which streaming resumes on the same chain.
func TestReplicationResyncAcrossCompact(t *testing.T) {
	const n = 60
	g := gen.GNP(n, 4.0/n, xrand.New(21))
	owner := New(g)
	ref := setOf(g)
	rng := xrand.New(22)

	// Replica keeps up through the first batch...
	churnOwner(t, owner, ref, n, 10, rng)
	replica := New(g)
	firstBatch, _ := owner.DeltasSince(0)
	for _, e := range firstBatch[:6] {
		if err := replica.ApplyReplicated(e); err != nil {
			t.Fatal(err)
		}
	}
	cursor := replica.Epoch() // 6

	// ...then the owner compacts (folding epochs 1..10 away) and keeps going.
	if _, err := owner.Compact(); err != nil {
		t.Fatal(err)
	}
	churnOwner(t, owner, ref, n, 7, rng)

	// The stale cursor is not servable and a newer delta is an epoch gap.
	if _, ok := owner.DeltasSince(cursor); ok {
		t.Fatalf("DeltasSince(%d) served across a Compact boundary", cursor)
	}
	post, ok := owner.DeltasSince(10)
	if !ok || len(post) != 7 {
		t.Fatalf("DeltasSince(compact epoch) = %d entries, ok=%t; want 7, true", len(post), ok)
	}
	var gap *EpochGapError
	if err := replica.ApplyReplicated(post[0]); !errors.As(err, &gap) {
		t.Fatalf("post-compact delta on a stale replica: want *EpochGapError, got %v", err)
	}

	// Resync: checkpoint the owner's current snapshot, ship it, and
	// reposition a fresh replica at (epoch, chain fingerprint).
	snap := owner.Snapshot()
	var buf bytes.Buffer
	if err := graphio.WriteCheckpoint(&buf, snap.Graph(), snap.Epoch()); err != nil {
		t.Fatal(err)
	}
	rg, epoch, _, err := graphio.ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != snap.Epoch() {
		t.Fatalf("checkpoint epoch = %d, want %d", epoch, snap.Epoch())
	}
	replica = NewReplicaAt(rg, epoch, snap.Fingerprint())
	if replica.Fingerprint() != owner.Fingerprint() || replica.Epoch() != owner.Epoch() {
		t.Fatal("resynced replica not positioned at the owner's version")
	}

	// Streaming resumes on the same chain after the resync.
	churnOwner(t, owner, ref, n, 9, rng)
	rest, ok := owner.DeltasSince(epoch)
	if !ok {
		t.Fatalf("DeltasSince(%d) after resync not servable", epoch)
	}
	for _, e := range rest {
		if err := replica.ApplyReplicated(e); err != nil {
			t.Fatalf("apply epoch %d after resync: %v", e.Epoch, err)
		}
		if replica.Fingerprint() != e.Fingerprint {
			t.Fatalf("chain diverged at epoch %d after resync", e.Epoch)
		}
	}
	if replica.Fingerprint() != owner.Fingerprint() {
		t.Fatal("replica fp != owner fp after resync + catch-up")
	}
}
