package store

import (
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/graphio"
	"repro/internal/xrand"
)

// edgeSet mirrors a store's expected edge set for reference checks.
type edgeSet map[[2]int32]bool

func (s edgeSet) key(u, v int) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{int32(u), int32(v)}
}

func (s edgeSet) graph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for e := range s {
		b.AddEdge(int(e[0]), int(e[1]))
	}
	return b.Build()
}

func setOf(g *graph.Graph) edgeSet {
	s := edgeSet{}
	g.Edges(func(u, v int) { s[s.key(u, v)] = true })
	return s
}

func TestAddDeleteAgainstReference(t *testing.T) {
	g := gen.GNP(120, 5.0/120, xrand.New(3))
	st := New(g)
	ref := setOf(g)
	rng := xrand.New(99)
	applied := 0
	for i := 0; i < 400; i++ {
		u, v := rng.Intn(120), rng.Intn(120)
		k := ref.key(u, v)
		if rng.Intn(2) == 0 {
			want := u != v && !ref[k]
			if got := st.AddEdge(u, v); got != want {
				t.Fatalf("AddEdge(%d,%d) = %t, want %t", u, v, got, want)
			}
			if want {
				ref[k] = true
				applied++
			}
		} else {
			want := u != v && ref[k]
			if got := st.DeleteEdge(u, v); got != want {
				t.Fatalf("DeleteEdge(%d,%d) = %t, want %t", u, v, got, want)
			}
			if want {
				delete(ref, k)
				applied++
			}
		}
	}
	if st.Epoch() != uint64(applied) {
		t.Fatalf("epoch = %d, want %d applied mutations", st.Epoch(), applied)
	}
	if st.M() != len(ref) {
		t.Fatalf("M = %d, want %d", st.M(), len(ref))
	}
	snap := st.Snapshot()
	want := ref.graph(120)
	if got := graphio.FingerprintOf(snap.Graph()); got != graphio.FingerprintOf(want) {
		t.Fatal("materialized snapshot does not match reference edge set")
	}
	// Overlay reads agree with the materialized graph vertex by vertex.
	for v := 0; v < 120; v++ {
		nb, wantNb := snap.Neighbors(v), want.Neighbors(v)
		if len(nb) != len(wantNb) {
			t.Fatalf("vertex %d: overlay degree %d != %d", v, len(nb), len(wantNb))
		}
		for i := range nb {
			if nb[i] != wantNb[i] {
				t.Fatalf("vertex %d: overlay neighbor %d mismatch", v, i)
			}
		}
	}
}

func TestRejectedMutationsAreNoOps(t *testing.T) {
	st := New(gen.Cycle(10))
	fp := st.Fingerprint()
	for _, bad := range [][2]int{{3, 3}, {-1, 2}, {2, 10}, {0, 1}} { // {0,1} exists
		if st.AddEdge(bad[0], bad[1]) {
			t.Fatalf("AddEdge%v accepted", bad)
		}
	}
	for _, bad := range [][2]int{{3, 3}, {-1, 2}, {2, 10}, {0, 5}} { // {0,5} absent
		if st.DeleteEdge(bad[0], bad[1]) {
			t.Fatalf("DeleteEdge%v accepted", bad)
		}
	}
	if st.Epoch() != 0 || st.Fingerprint() != fp {
		t.Fatal("rejected mutation consumed an epoch or changed the fingerprint")
	}
}

// TestSnapshotIsolation pins the copy-on-write contract: a snapshot is
// frozen at its version while the store moves on, including the
// shared-empty-overlay case and the shared-list case.
func TestSnapshotIsolation(t *testing.T) {
	st := New(gen.Cycle(8)) // 0-1-2-...-7-0
	s0 := st.Snapshot()
	if !st.AddEdge(0, 4) {
		t.Fatal("AddEdge failed")
	}
	s1 := st.Snapshot()
	if !st.DeleteEdge(0, 1) {
		t.Fatal("DeleteEdge failed")
	}
	s2 := st.Snapshot()

	check := func(s *Snapshot, u, v int, want bool) {
		t.Helper()
		if s.HasEdge(u, v) != want {
			t.Fatalf("epoch-%d snapshot: HasEdge(%d,%d) = %t, want %t", s.Epoch(), u, v, !want, want)
		}
	}
	check(s0, 0, 4, false)
	check(s0, 0, 1, true)
	check(s1, 0, 4, true)
	check(s1, 0, 1, true)
	check(s2, 0, 4, true)
	check(s2, 0, 1, false)
	if s0.M() != 8 || s1.M() != 9 || s2.M() != 8 {
		t.Fatalf("edge counts (%d, %d, %d), want (8, 9, 8)", s0.M(), s1.M(), s2.M())
	}
	fps := map[graphio.Fingerprint]bool{s0.Fingerprint(): true, s1.Fingerprint(): true, s2.Fingerprint(): true}
	if len(fps) != 3 {
		t.Fatal("snapshots at distinct versions share a fingerprint")
	}
	// Same version → same instance.
	if st.Snapshot() != s2 {
		t.Fatal("unchanged store returned a fresh snapshot")
	}
	// Materializations agree with per-version expectations.
	if s0.Graph() != gensnap(t, s0) || s2.Graph().M() != 8 {
		t.Fatal("materialization drifted")
	}
}

// gensnap sanity-checks s.Graph() against the overlay view and returns it.
func gensnap(t *testing.T, s *Snapshot) *graph.Graph {
	t.Helper()
	g := s.Graph()
	if g.N() != s.N() || g.M() != s.M() {
		t.Fatalf("materialized (n=%d,m=%d) != snapshot (n=%d,m=%d)", g.N(), g.M(), s.N(), s.M())
	}
	return g
}

func TestDeltaLogAndTombstones(t *testing.T) {
	st := New(gen.Path(6))
	st.AddEdge(0, 5)
	st.DeleteEdge(2, 3)
	st.AddEdge(2, 4)
	log := st.Deltas()
	want := []Delta{{OpAdd, 0, 5, 1}, {OpDel, 2, 3, 2}, {OpAdd, 2, 4, 3}}
	if len(log) != len(want) {
		t.Fatalf("log length %d, want %d", len(log), len(want))
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("delta %d = %+v, want %+v", i, log[i], want[i])
		}
	}
	stats := st.Stats()
	if stats.Adds != 2 || stats.Dels != 1 || stats.PendingDeltas != 3 || stats.Epoch != 3 {
		t.Fatalf("stats %+v", stats)
	}
	st.Compact()
	if got := st.Stats(); got.PendingDeltas != 0 || got.Compactions != 1 || got.Epoch != 3 {
		t.Fatalf("post-compact stats %+v", got)
	}
}

// TestCompactConvergesFingerprints pins the identity contract: the
// incremental chain is history-sensitive, but Compact restores the
// canonical content fingerprint, so different mutation orders (and a
// direct load of the same edge set) converge.
func TestCompactConvergesFingerprints(t *testing.T) {
	mk := func() *Store { return New(gen.Cycle(12)) }
	a, b := mk(), mk()
	a.AddEdge(0, 6)
	a.AddEdge(2, 8)
	b.AddEdge(2, 8)
	b.AddEdge(0, 6)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("incremental chain is order-insensitive (hash domain too weak?)")
	}
	ca, _ := a.Compact()
	cb, _ := b.Compact()
	fa, fb := ca.Fingerprint(), cb.Fingerprint()
	if fa != fb {
		t.Fatal("compacted fingerprints do not converge")
	}
	direct := gen.Cycle(12)
	db := graph.NewBuilder(12)
	direct.Edges(func(u, v int) { db.AddEdge(u, v) })
	db.AddEdge(0, 6)
	db.AddEdge(2, 8)
	if fa != graphio.FingerprintOf(db.Build()) {
		t.Fatal("compacted fingerprint differs from a direct build of the same edge set")
	}
}

func TestCompactPreservesOldSnapshots(t *testing.T) {
	st := New(gen.Grid(4, 4))
	old := st.Snapshot()
	oldFP := old.Fingerprint()
	st.AddEdge(0, 15)
	st.Compact()
	st.DeleteEdge(0, 15)
	if old.Fingerprint() != oldFP || old.HasEdge(0, 15) {
		t.Fatal("compact/mutation disturbed an old snapshot")
	}
	if !st.Snapshot().HasEdge(0, 1) {
		t.Fatal("base edge lost across compact")
	}
}

func TestSnapshotBallMatchesGraphBall(t *testing.T) {
	g := gen.GNP(150, 6.0/150, xrand.New(7))
	st := New(g)
	rng := xrand.New(11)
	for i := 0; i < 60; i++ {
		if rng.Intn(3) == 0 {
			st.DeleteEdge(rng.Intn(150), rng.Intn(150))
		} else {
			st.AddEdge(rng.Intn(150), rng.Intn(150))
		}
	}
	snap := st.Snapshot()
	mat := snap.Graph()
	for _, v := range []int{0, 17, 149} {
		for k := 0; k <= 3; k++ {
			got, want := snap.Ball(v, k), mat.Ball(v, k)
			if len(got) != len(want) {
				t.Fatalf("v=%d k=%d: overlay ball size %d != %d", v, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("v=%d k=%d: ball order differs at %d", v, k, i)
				}
			}
		}
	}
}

// TestConcurrentMutateAndRead is the store's race smoke: writers churn
// edges while readers take snapshots and traverse them. Run under -race in
// CI. Correctness of the final state is enforced by Compact's validating
// CSR rebuild.
func TestConcurrentMutateAndRead(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy churn smoke; runs in the dedicated race step")
	}
	st := New(gen.GNP(200, 5.0/200, xrand.New(1)))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.Stream(42, w, 0xfeed)
			for i := 0; i < 300; i++ {
				u, v := rng.Intn(200), rng.Intn(200)
				if rng.Intn(3) == 0 {
					st.DeleteEdge(u, v)
				} else {
					st.AddEdge(u, v)
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := xrand.Stream(43, r, 0xbeef)
			for i := 0; i < 300; i++ {
				snap := st.Snapshot()
				v := rng.Intn(200)
				ball := snap.Ball(v, 2)
				if len(ball) == 0 || ball[0] != int32(v) {
					t.Errorf("ball of %d empty or misordered", v)
					return
				}
				if snap.Degree(v) != len(snap.Neighbors(v)) {
					t.Errorf("degree/neighbors disagree at %d", v)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	// Validating rebuild: panics if any overlay invariant broke.
	final, _ := st.Compact()
	if final.Graph().N() != 200 {
		t.Fatal("vertex count drifted")
	}
}

// TestStatsOneShotConsistency pins the serving-layer contract: a Stats read
// describes a single version — its fingerprint, edge count, and epoch agree
// with the snapshot taken at the same quiet point.
func TestStatsOneShotConsistency(t *testing.T) {
	s := New(gen.Cycle(32))
	st := s.Stats()
	if st.N != 32 || st.M != 32 || st.Epoch != 0 {
		t.Fatalf("fresh stats %+v", st)
	}
	if st.Fingerprint != s.Snapshot().Fingerprint() {
		t.Fatal("stats fingerprint disagrees with snapshot")
	}
	s.AddEdge(0, 16)
	s.DeleteEdge(1, 2)
	st = s.Stats()
	if st.M != 32 || st.Epoch != 2 || st.Adds != 1 || st.Dels != 1 {
		t.Fatalf("post-mutation stats %+v", st)
	}
	if st.Fingerprint != s.Snapshot().Fingerprint() {
		t.Fatal("stats fingerprint lags the mutation chain")
	}
	s.Compact()
	if st := s.Stats(); st.Fingerprint != graphio.FingerprintOf(s.Snapshot().Graph()) {
		t.Fatal("post-compact stats fingerprint is not canonical")
	}
}
