package store

import (
	"testing"

	"repro/internal/graph/gen"
	"repro/internal/graphio"
)

// TestAncestryChain pins the fingerprint chain: Ancestry(k) walks
// newest-first, each ancestor's fingerprint matches the snapshot the store
// actually exposed at that version, and the delta suffix replays the
// ancestor forward to the current snapshot.
func TestAncestryChain(t *testing.T) {
	st := New(gen.Cycle(12))
	muts := [][2]int{{0, 4}, {2, 7}, {5, 9}, {1, 6}}
	fps := []graphio.Fingerprint{st.Fingerprint()} // fps[i] = fp after i mutations
	for _, m := range muts {
		if !st.AddEdge(m[0], m[1]) {
			t.Fatalf("AddEdge%v failed", m)
		}
		fps = append(fps, st.Fingerprint())
	}

	snap := st.Snapshot()
	anc := snap.Ancestry(10) // more than available: clamped to the window
	if len(anc) != len(muts) {
		t.Fatalf("Ancestry(10) returned %d ancestors, want %d", len(anc), len(muts))
	}
	for i, a := range anc {
		// anc[0] is one mutation back, anc[1] two back, ...
		wantFP := fps[len(muts)-1-i]
		if a.Fingerprint != wantFP {
			t.Fatalf("ancestor %d: fingerprint %s, want %s", i, a.Fingerprint.Short(), wantFP.Short())
		}
		if len(a.Deltas) != i+1 {
			t.Fatalf("ancestor %d: %d deltas, want %d", i, len(a.Deltas), i+1)
		}
		// Replaying the suffix onto the ancestor graph must reproduce the
		// current edge set.
		g := New(gen.Cycle(12))
		for _, m := range muts[:len(muts)-1-i] {
			g.AddEdge(m[0], m[1])
		}
		for _, d := range a.Deltas {
			switch d.Op {
			case OpAdd:
				g.AddEdge(int(d.U), int(d.V))
			case OpDel:
				g.DeleteEdge(int(d.U), int(d.V))
			}
		}
		if g.Fingerprint() != snap.Fingerprint() {
			t.Fatalf("ancestor %d: replayed suffix does not reach the snapshot", i)
		}
	}

	if got := snap.Ancestry(2); len(got) != 2 {
		t.Fatalf("Ancestry(2) returned %d ancestors, want 2", len(got))
	}
	if got := snap.Ancestry(0); got != nil {
		t.Fatalf("Ancestry(0) = %v, want nil", got)
	}
}

// TestAncestryStopsAtCompaction pins that ancestry never crosses a
// compaction: the folded CSR has no delta log to walk.
func TestAncestryStopsAtCompaction(t *testing.T) {
	st := New(gen.Cycle(10))
	st.AddEdge(0, 5)
	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if anc := st.Snapshot().Ancestry(8); anc != nil {
		t.Fatalf("post-compaction Ancestry = %v, want nil", anc)
	}
	// Mutations after the compaction re-grow the window from the compacted
	// version.
	st.AddEdge(1, 6)
	st.DeleteEdge(3, 4)
	anc := st.Snapshot().Ancestry(8)
	if len(anc) != 2 {
		t.Fatalf("Ancestry after compaction returned %d ancestors, want 2", len(anc))
	}
}

// TestAncestrySnapshotStable pins snapshot isolation for the ancestry
// view: mutations applied after a snapshot was taken must not change what
// that snapshot's Ancestry returns.
func TestAncestrySnapshotStable(t *testing.T) {
	st := New(gen.Cycle(10))
	st.AddEdge(0, 3)
	snap := st.Snapshot()
	before := snap.Ancestry(8)
	st.AddEdge(1, 4)
	st.AddEdge(2, 5)
	after := snap.Ancestry(8)
	if len(before) != 1 || len(after) != 1 {
		t.Fatalf("ancestry lengths %d/%d, want 1/1", len(before), len(after))
	}
	if before[0].Fingerprint != after[0].Fingerprint || len(after[0].Deltas) != 1 {
		t.Fatal("snapshot ancestry changed under later mutations")
	}
}
