package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/graphio"
	"repro/internal/wal"
)

// sweepOps is a deterministic mixed mutation sequence on a 16-cycle: chord
// inserts interleaved with deletions of original cycle edges.
func sweepOps() []Delta {
	return []Delta{
		{Op: OpAdd, U: 0, V: 5}, {Op: OpAdd, U: 1, V: 9}, {Op: OpDel, U: 0, V: 1},
		{Op: OpAdd, U: 2, V: 11}, {Op: OpDel, U: 4, V: 5}, {Op: OpAdd, U: 3, V: 13},
		{Op: OpAdd, U: 0, V: 8}, {Op: OpDel, U: 8, V: 9}, {Op: OpAdd, U: 6, V: 14},
		{Op: OpDel, U: 12, V: 13}, {Op: OpAdd, U: 7, V: 15}, {Op: OpAdd, U: 4, V: 10},
	}
}

func applyOp(t *testing.T, s *Store, d Delta) bool {
	t.Helper()
	switch d.Op {
	case OpAdd:
		return s.AddEdge(int(d.U), int(d.V))
	case OpDel:
		return s.DeleteEdge(int(d.U), int(d.V))
	}
	t.Fatalf("bad op %d", d.Op)
	return false
}

func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func TestDurableCreateReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(gen.Cycle(16), Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !Exists(dir) {
		t.Fatal("Exists is false right after Create")
	}
	for _, d := range sweepOps() {
		if !applyOp(t, st, d) {
			t.Fatalf("op %+v rejected", d)
		}
	}
	want := st.Stats()
	if !want.Durable || want.DeltaBytes != int64(want.PendingDeltas)*wal.FrameSize {
		t.Fatalf("stats: durable=%v deltaBytes=%d pending=%d", want.Durable, want.DeltaBytes, want.PendingDeltas)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if st.AddEdge(0, 2) {
		t.Fatal("mutation accepted after Close")
	}

	back, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got := back.Stats()
	if got.Fingerprint != want.Fingerprint || got.Epoch != want.Epoch || got.M != want.M || got.PendingDeltas != want.PendingDeltas {
		t.Fatalf("reopen drifted: got %+v want %+v", got, want)
	}
	// The reopened store keeps appending on the same chain.
	if !back.AddEdge(2, 9) {
		t.Fatal("reopened store rejects a fresh mutation")
	}
	fp2, ep2 := back.Fingerprint(), back.Epoch()
	if err := back.Close(); err != nil {
		t.Fatal(err)
	}
	again, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if again.Fingerprint() != fp2 || again.Epoch() != ep2 {
		t.Fatal("second reopen lost the appended tail")
	}
}

func TestDurableCompactRotates(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(gen.Cycle(16), Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range sweepOps() {
		applyOp(t, st, d)
	}
	snap, err := st.Compact()
	if err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.PendingDeltas != 0 || stats.DeltaBytes != 0 || stats.CheckpointEpoch != stats.Epoch {
		t.Fatalf("post-compact stats: %+v", stats)
	}
	if snap.Fingerprint() != graphio.FingerprintOf(snap.Graph()) {
		t.Fatal("compacted fingerprint is not canonical")
	}
	// The old pair is gone; the new pair is current.
	for _, gone := range []string{"checkpoint-000001.ckpt", "wal-000001.log"} {
		if _, err := os.Stat(filepath.Join(dir, gone)); err == nil {
			t.Fatalf("%s survived rotation", gone)
		}
	}
	// Post-compact mutations land in the new WAL and recover.
	st.AddEdge(5, 12)
	st.Close()
	back, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if back.Fingerprint() != graphio.NextFingerprint(snap.Fingerprint(), byte(OpAdd), 5, 12) {
		t.Fatal("recovery from checkpoint + one-record WAL drifted")
	}
	if back.Stats().CheckpointEpoch != stats.Epoch || back.Epoch() != stats.Epoch+1 {
		t.Fatalf("recovered epochs: %+v", back.Stats())
	}
}

// TestDurableTruncationSweep is the exhaustive crash-point sweep: a WAL of
// k records is truncated at EVERY byte offset, and each truncation must
// recover to a valid epoch prefix whose fingerprint matches a fresh
// memory-only store that replayed the same prefix. This pins the whole
// contract at once: torn tails truncate cleanly, full frames are never
// dropped, and the fingerprint chain has no history-dependence bugs.
func TestDurableTruncationSweep(t *testing.T) {
	ops := sweepOps()
	// Expected fingerprint/epoch after each prefix, from a memory-only twin.
	ref := New(gen.Cycle(16))
	fps := []graphio.Fingerprint{ref.Fingerprint()}
	for _, d := range ops {
		if !applyOp(t, ref, d) {
			t.Fatalf("reference rejected %+v", d)
		}
		fps = append(fps, ref.Fingerprint())
	}

	master := t.TempDir()
	st, err := Create(gen.Cycle(16), Options{Dir: master})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ops {
		applyOp(t, st, d)
	}
	st.Close()

	walSize := int64(len(ops)) * wal.FrameSize
	for off := int64(0); off <= walSize; off++ {
		dir := copyDir(t, master)
		walPath := filepath.Join(dir, "wal-000001.log")
		if err := os.Truncate(walPath, off); err != nil {
			t.Fatal(err)
		}
		back, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("offset %d: open failed: %v", off, err)
		}
		prefix := int(off / wal.FrameSize)
		if got := back.Epoch(); got != uint64(prefix) {
			t.Fatalf("offset %d: recovered epoch %d, want %d", off, got, prefix)
		}
		if got := back.Fingerprint(); got != fps[prefix] {
			t.Fatalf("offset %d: fingerprint %s, want %s (prefix %d)", off, got.Short(), fps[prefix].Short(), prefix)
		}
		if p := back.Stats().PendingDeltas; p != prefix {
			t.Fatalf("offset %d: pending %d, want %d", off, p, prefix)
		}
		// Repair truncated the torn tail, so the file is frame-aligned again.
		if fi, err := os.Stat(walPath); err != nil || fi.Size() != int64(prefix)*wal.FrameSize {
			t.Fatalf("offset %d: repaired size %d, want %d", off, fi.Size(), int64(prefix)*wal.FrameSize)
		}
		back.Close()
	}
}

func TestDurableInjectedAppendFaults(t *testing.T) {
	ops := sweepOps()[:5]
	for _, tc := range []struct {
		name      string
		inject    func(*wal.Injector)
		applied   int  // ops the live store acknowledges
		recovered int  // epochs recovery reaches
		sticky    bool // store rejects everything after the fault
	}{
		{"fail", func(i *wal.Injector) { i.FailAppend(3) }, 2, 2, true},
		{"short", func(i *wal.Injector) { i.ShortAppend(3) }, 2, 2, true},
		// Silent corruption: the live store keeps acknowledging, but replay
		// stops at the corrupt frame — the durable prefix is shorter than
		// what was acked. That is precisely the failure shape the CRC exists
		// to catch at boot instead of serving garbage.
		{"corrupt", func(i *wal.Injector) { i.CorruptAppend(3) }, 5, 2, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inj := &wal.Injector{}
			tc.inject(inj)
			dir := t.TempDir()
			st, err := Create(gen.Cycle(16), Options{Dir: dir, Injector: inj})
			if err != nil {
				t.Fatal(err)
			}
			applied := 0
			for _, d := range ops {
				if applyOp(t, st, d) {
					applied++
				}
			}
			if applied != tc.applied {
				t.Fatalf("live store applied %d ops, want %d", applied, tc.applied)
			}
			if tc.sticky {
				if st.Err() == nil {
					t.Fatal("no sticky error after an injected write failure")
				}
				if st.AddEdge(0, 7) {
					t.Fatal("mutation accepted while the WAL is failed")
				}
			} else if st.Err() != nil {
				t.Fatalf("silent corruption surfaced an error: %v", st.Err())
			}
			liveFP := st.Fingerprint()
			st.Close()

			back, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatalf("recovery after %s fault failed: %v", tc.name, err)
			}
			defer back.Close()
			if got := back.Epoch(); got != uint64(tc.recovered) {
				t.Fatalf("recovered epoch %d, want %d", got, tc.recovered)
			}
			if tc.applied == tc.recovered && back.Fingerprint() != liveFP {
				t.Fatal("recovered fingerprint differs from the acknowledged state")
			}
		})
	}
}

// TestDurableCompactClearsStickyFailure: a failed WAL strands the store
// read-only, but Compact replaces the dead log wholesale — after a
// successful rotation the store accepts writes again and the whole history
// (pre-fault prefix + post-compact ops) recovers.
func TestDurableCompactClearsStickyFailure(t *testing.T) {
	inj := (&wal.Injector{}).FailAppend(3)
	dir := t.TempDir()
	st, err := Create(gen.Cycle(16), Options{Dir: dir, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range sweepOps()[:4] {
		applyOp(t, st, d)
	}
	if st.Err() == nil {
		t.Fatal("expected a sticky failure")
	}
	if _, err := st.Compact(); err != nil {
		t.Fatalf("compact after WAL failure: %v", err)
	}
	if st.Err() != nil {
		t.Fatalf("sticky error survived rotation: %v", st.Err())
	}
	if !st.AddEdge(0, 7) {
		t.Fatal("store still read-only after rotation")
	}
	fp := st.Fingerprint()
	st.Close()
	back, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if back.Fingerprint() != fp {
		t.Fatal("post-rotation state did not recover")
	}
}

// TestDurableCompactFailureLeavesStateIntact: when the checkpoint cannot be
// committed, Compact reports the error and nothing changes — in memory or
// on disk — so the pre-compaction version keeps serving and recovering.
func TestDurableCompactFailureLeavesStateIntact(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(gen.Cycle(16), Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range sweepOps()[:3] {
		applyOp(t, st, d)
	}
	before := st.Stats()
	// Squat on the next checkpoint's name with a directory: the atomic
	// rename cannot replace a directory, so the checkpoint commit fails.
	blocker := filepath.Join(dir, "checkpoint-000002.ckpt")
	if err := os.Mkdir(blocker, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Compact(); err == nil {
		t.Fatal("compact succeeded over a blocked checkpoint path")
	}
	after := st.Stats()
	if after.Fingerprint != before.Fingerprint || after.PendingDeltas != before.PendingDeltas || after.CheckpointEpoch != before.CheckpointEpoch {
		t.Fatalf("failed compact changed state: before %+v after %+v", before, after)
	}
	if !st.AddEdge(0, 7) {
		t.Fatal("store stopped accepting writes after a failed compact")
	}
	if err := os.RemoveAll(blocker); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Compact(); err != nil {
		t.Fatalf("compact after clearing the blocker: %v", err)
	}
	fp := st.Fingerprint()
	st.Close()
	back, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if back.Fingerprint() != fp {
		t.Fatal("state after recovered compact did not persist")
	}
}

func TestDurableCreateOpenErrors(t *testing.T) {
	dir := t.TempDir()
	if Exists(dir) {
		t.Fatal("Exists is true for an empty directory")
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("Open succeeded on an empty directory")
	}
	st, err := Create(gen.Cycle(8), Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := Create(gen.Cycle(8), Options{Dir: dir}); !errors.Is(err, ErrExists) {
		t.Fatalf("second Create: err = %v, want ErrExists", err)
	}
	// A manifest pointing at a checkpoint whose bytes were damaged must
	// refuse to boot.
	ckpt := filepath.Join(dir, "checkpoint-000001.ckpt")
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(ckpt, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("Open loaded a bit-flipped checkpoint")
	}
}

// TestDurableMatchesMemoryOnly: the same op sequence on a durable store and
// a memory-only store produces identical fingerprints, stats, and query
// results — durability is strictly additive.
func TestDurableMatchesMemoryOnly(t *testing.T) {
	dir := t.TempDir()
	d, err := Create(gen.Cycle(16), Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	m := New(gen.Cycle(16))
	for _, op := range sweepOps() {
		if applyOp(t, d, op) != applyOp(t, m, op) {
			t.Fatalf("durable and memory stores disagree on %+v", op)
		}
	}
	if d.Fingerprint() != m.Fingerprint() || d.Epoch() != m.Epoch() || d.M() != m.M() {
		t.Fatal("durable and memory stores diverged")
	}
	ds, ms := d.Snapshot(), m.Snapshot()
	for v := 0; v < 16; v++ {
		if len(ds.Neighbors(v)) != len(ms.Neighbors(v)) {
			t.Fatalf("adjacency of %d diverged", v)
		}
	}
	_ = graph.View(ds)
}
