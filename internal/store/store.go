// Package store is the versioned mutable graph layer under the serving
// engine: a Store holds a base CSR graph plus a delta overlay, so edges can
// be inserted and deleted while the graph is being queried. Reads never
// block behind writes for long — Snapshot returns an immutable, internally
// consistent view in O(1), and mutations copy-on-write only the per-vertex
// adjacency lists they touch.
//
// Representation. The base is an immutable graph.Graph (CSR). The overlay
// is a map from touched vertex to its full current sorted neighbor list;
// untouched vertices read straight from the base CSR. Every applied
// mutation is also appended to an epoch-stamped delta log (deletions are
// the tombstones), which is what Compact folds back into a fresh base CSR
// and what observability reports as the pending write-amplification.
//
// Identity. Each mutation advances the store's fingerprint in O(1) via
// graphio.NextFingerprint, so a mutated graph gets a new cache identity in
// O(delta) total instead of re-hashing the full CSR; stale results keyed by
// superseded fingerprints age out of the serving layer's LRU naturally.
// The incremental chain is history-sensitive; Compact rebuilds the CSR and
// restores the canonical content fingerprint, so two stores that reach the
// same edge set converge after compaction.
//
// Concurrency. All Store methods are safe for concurrent use (one mutex;
// critical sections are O(deg) for mutations, O(1) for Snapshot).
// Snapshots are immutable and safe to share without synchronization.
//
// Durability. A store opened with Options.Dir (Create/Open) writes every
// mutation to a CRC32C-framed write-ahead log (internal/wal) before
// touching memory — a failed append rejects the mutation and latches a
// sticky Err until a successful Compact rotates onto a fresh log. Compact
// doubles as the checkpoint: the folded CSR is written atomically
// (graphio checkpoint format, fingerprint embedded), a fresh WAL is
// created, and MANIFEST.json swings to the new pair as the single commit
// point — a crash anywhere mid-rotation recovers from the old pair. Open
// loads the manifest's checkpoint, re-verifies its CRC and fingerprint,
// replays the WAL (truncating a torn tail at the first bad frame), and
// re-derives the epoch/fingerprint chain, so recovered state is
// bit-identical to what was acknowledged. New/memory-only stores skip all
// of this; durability costs nothing when unused.
package store

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/wal"
)

// Op is a mutation kind in the delta log.
type Op uint8

const (
	// OpAdd is an edge insertion.
	OpAdd Op = Op(graphio.OpAddEdge)
	// OpDel is an edge deletion — an epoch-stamped tombstone for a base or
	// previously inserted edge.
	OpDel Op = Op(graphio.OpDelEdge)
)

// Delta is one applied mutation: the normalized edge (U < V) and the epoch
// at which it was applied (epochs start at 1 and increase by 1 per applied
// mutation; rejected no-ops do not consume an epoch).
type Delta struct {
	Op   Op
	U, V int32
	// Epoch stamps when the mutation was applied.
	Epoch uint64
}

// Stats is a one-shot consistent snapshot of a store's state: every field
// is read under a single critical section, so N/M/Fingerprint/Epoch always
// describe the same version (serving layers that report them over the
// network must not observe a fingerprint from one epoch next to the edge
// count of another).
type Stats struct {
	// N and M are the vertex and current edge counts.
	N, M int
	// Fingerprint is the current snapshot identity (incremental chain value
	// while mutations are pending, canonical content fingerprint otherwise).
	Fingerprint graphio.Fingerprint
	// Epoch is the number of mutations applied over the store's lifetime
	// (monotone; Compact does not reset it).
	Epoch uint64
	// PendingDeltas is the delta-log length since the last Compact.
	PendingDeltas int
	// PatchedVertices counts vertices whose adjacency is overlaid.
	PatchedVertices int
	// Adds, Dels, Compactions are lifetime counters of applied operations.
	Adds, Dels, Compactions uint64
	// DeltaBytes is the on-disk footprint of the pending delta log. WAL
	// frames are fixed-size, so this is exact. Memory-only stores report 0:
	// nothing is on disk (the in-memory log length is PendingDeltas).
	DeltaBytes int64
	// Durable reports whether the store is backed by a WAL + checkpoint
	// directory.
	Durable bool
	// WALSyncs counts fsyncs issued over the store's lifetime (0 when the
	// store is memory-only).
	WALSyncs uint64
	// CheckpointEpoch is the epoch of the on-disk checkpoint the current
	// WAL replays onto (0 when memory-only).
	CheckpointEpoch uint64
}

// Store is a mutable graph with O(1) immutable snapshots. Construct with
// New; the zero value is not usable.
type Store struct {
	mu      sync.Mutex
	base    *graph.Graph
	patched map[int32][]int32 // overlay: full sorted neighbor list per touched vertex
	n, m    int
	fp      graphio.Fingerprint
	epoch   uint64
	log     []Delta
	// fpLog parallels log: fpLog[i] is the fingerprint after log[i] was
	// applied, so together with windowFP (the fingerprint at the start of
	// the window, i.e. after the last Compact) it names every intermediate
	// version in the current delta window. Both are append-only between
	// Compacts, which is what lets snapshots capture slice headers in O(1).
	fpLog    []graphio.Fingerprint
	windowFP graphio.Fingerprint
	sealed   bool // the current patched map is shared with a live snapshot
	snap     *Snapshot

	// cur is the lock-free fast path of Snapshot(): the currently
	// published snapshot, or nil when a mutation has invalidated it.
	// Writers clear/replace it under mu; readers Load without locking, so
	// the serving layer's per-request resolve does not funnel every shard
	// through one store mutex.
	cur atomic.Pointer[Snapshot]

	adds, dels, compactions uint64

	// Durability (zero when the store is memory-only; see durable.go).
	dir       string
	opts      Options
	w         *wal.Writer
	seq       uint64 // manifest sequence of the current checkpoint/WAL pair
	ckptEpoch uint64 // epoch the current checkpoint was taken at
	syncsBase uint64 // fsyncs accumulated by rotated-out WAL writers
	werr      error  // sticky durability error; mutations are rejected while set
}

// New wraps g (retained, must not be mutated by the caller) in a store.
// The initial fingerprint is g's canonical content fingerprint.
func New(g *graph.Graph) *Store {
	fp := graphio.FingerprintOf(g)
	return &Store{
		base:     g,
		patched:  make(map[int32][]int32),
		n:        g.N(),
		m:        g.M(),
		fp:       fp,
		windowFP: fp,
	}
}

// N returns the (fixed) vertex count.
func (s *Store) N() int { return s.n }

// M returns the current edge count.
func (s *Store) M() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m
}

// Epoch returns the number of mutations applied over the store's lifetime.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Fingerprint returns the current (incremental) fingerprint.
func (s *Store) Fingerprint() graphio.Fingerprint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fp
}

// Stats returns the write-side counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		N:               s.n,
		M:               s.m,
		Fingerprint:     s.fp,
		Epoch:           s.epoch,
		PendingDeltas:   len(s.log),
		PatchedVertices: len(s.patched),
		Adds:            s.adds,
		Dels:            s.dels,
		Compactions:     s.compactions,
		Durable:         s.dir != "",
		WALSyncs:        s.syncsBase,
		CheckpointEpoch: s.ckptEpoch,
	}
	if s.dir != "" {
		st.DeltaBytes = int64(len(s.log)) * wal.FrameSize
	}
	if s.w != nil {
		_, syncs := s.w.Counters()
		st.WALSyncs += syncs
	}
	return st
}

// Deltas returns a copy of the delta log accumulated since the last
// Compact (deletions are the tombstones).
func (s *Store) Deltas() []Delta {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Delta(nil), s.log...)
}

// neighbors returns v's current adjacency (overlay first, base otherwise).
// Caller holds s.mu; the returned slice must not be modified.
func (s *Store) neighbors(v int32) []int32 {
	if l, ok := s.patched[v]; ok {
		return l
	}
	return s.base.Neighbors(int(v))
}

func contains(list []int32, x int32) bool {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= x })
	return i < len(list) && list[i] == x
}

// insertSorted returns a fresh sorted copy of list with x inserted. Lists
// stored in the overlay are immutable, so mutation always copies — that is
// what lets snapshots share them without locks.
func insertSorted(list []int32, x int32) []int32 {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= x })
	out := make([]int32, len(list)+1)
	copy(out, list[:i])
	out[i] = x
	copy(out[i+1:], list[i:])
	return out
}

// removeSorted returns a fresh copy of list with x removed (x must be
// present).
func removeSorted(list []int32, x int32) []int32 {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= x })
	out := make([]int32, len(list)-1)
	copy(out, list[:i])
	copy(out[i:], list[i+1:])
	return out
}

// prepareWrite detaches the overlay from any live snapshot: the published
// snapshot is invalidated, and if the current patched map is shared
// (sealed), it is cloned before mutation. Individual lists never need
// cloning because they are immutable once stored.
func (s *Store) prepareWrite() {
	s.cur.Store(nil)
	if !s.sealed {
		s.snap = nil
		return
	}
	clone := make(map[int32][]int32, len(s.patched)+2)
	for v, l := range s.patched {
		clone[v] = l
	}
	s.patched = clone
	s.sealed = false
	s.snap = nil
}

// AddEdge inserts the undirected edge {u, v}. It reports whether the edge
// was applied: self-loops, out-of-range endpoints, and already-present
// edges are rejected as no-ops (no epoch is consumed).
func (s *Store) AddEdge(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= s.n || v >= s.n {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if contains(s.neighbors(int32(u)), int32(v)) {
		return false
	}
	if s.logDelta(OpAdd, u, v) != nil {
		// WAL-before-memory: a mutation that cannot be made durable is
		// rejected, never half-applied. Err() carries the cause.
		return false
	}
	s.prepareWrite()
	s.patched[int32(u)] = insertSorted(s.neighbors(int32(u)), int32(v))
	s.patched[int32(v)] = insertSorted(s.neighbors(int32(v)), int32(u))
	s.m++
	s.adds++
	s.applyDelta(OpAdd, u, v)
	return true
}

// DeleteEdge removes the undirected edge {u, v}, recording an
// epoch-stamped tombstone. It reports whether the edge existed.
func (s *Store) DeleteEdge(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= s.n || v >= s.n {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !contains(s.neighbors(int32(u)), int32(v)) {
		return false
	}
	if s.logDelta(OpDel, u, v) != nil {
		return false
	}
	s.prepareWrite()
	s.patched[int32(u)] = removeSorted(s.neighbors(int32(u)), int32(v))
	s.patched[int32(v)] = removeSorted(s.neighbors(int32(v)), int32(u))
	s.m--
	s.dels++
	s.applyDelta(OpDel, u, v)
	return true
}

// applyDelta advances the epoch, the incremental fingerprint, and the log.
// Caller holds s.mu and has already validated and applied the overlay edit.
func (s *Store) applyDelta(op Op, u, v int) {
	if u > v {
		u, v = v, u
	}
	s.epoch++
	s.fp = graphio.NextFingerprint(s.fp, byte(op), int32(u), int32(v))
	s.log = append(s.log, Delta{Op: op, U: int32(u), V: int32(v), Epoch: s.epoch})
	s.fpLog = append(s.fpLog, s.fp)
}

// Snapshot returns an immutable view of the current graph in O(1). The
// snapshot stays valid (and internally consistent) forever: later mutations
// copy-on-write around it. Repeated calls between mutations return the
// same instance, so snapshot identity doubles as a cheap change check.
//
// The common case — no mutation since the last call — is a single atomic
// load, so concurrent readers resolving snapshots per request do not
// serialize on the store mutex. A reader racing a writer may observe the
// immediately preceding version; that is the same outcome as having
// resolved a moment earlier.
func (s *Store) Snapshot() *Snapshot {
	if snap := s.cur.Load(); snap != nil {
		return snap
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.snap == nil {
		s.snap = &Snapshot{
			base:     s.base,
			patched:  s.patched,
			n:        s.n,
			m:        s.m,
			fp:       s.fp,
			epoch:    s.epoch,
			window:   s.log,
			fpWindow: s.fpLog,
			windowFP: s.windowFP,
		}
		// The snapshot now shares the patched map (even an empty one), so
		// the next mutation must clone it before writing.
		s.sealed = true
	}
	s.cur.Store(s.snap)
	return s.snap
}

// Compact folds the delta overlay back into a fresh base CSR, clears the
// log, and restores the canonical content fingerprint (the one a fresh
// load of the same edge set would have), so cache identities converge
// across mutation histories. Existing snapshots are unaffected. Returns
// the snapshot of the compacted graph.
//
// On a durable store, Compact is also the checkpoint: the materialized CSR
// is written to disk atomically and the WAL rotates to a fresh (empty) log.
// If the checkpoint cannot be committed, Compact returns the error and
// changes nothing — neither the in-memory state nor the on-disk pair — so
// the store keeps serving (and recovering) the pre-compaction version. A
// successful durable Compact also clears a sticky WAL failure, since the
// dead log has been replaced. Memory-only stores never return an error.
func (s *Store) Compact() (*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.log) > 0 {
		g, err := materialize(s.base, s.patched, s.m)
		if err != nil {
			panic(fmt.Sprintf("store: overlay invariant violated: %v", err))
		}
		if s.dir != "" {
			if err := s.rotateLocked(g); err != nil {
				return nil, fmt.Errorf("store: compact: %w", err)
			}
		}
		s.base = g
		s.patched = make(map[int32][]int32)
		s.fp = graphio.FingerprintOf(g)
		s.log = nil
		s.fpLog = nil
		s.windowFP = s.fp
		s.compactions++
		s.sealed = false
		s.snap = nil
		s.cur.Store(nil)
	} else if s.dir != "" && s.werr != nil {
		// Nothing to fold (the failed WAL never acknowledged anything), but
		// the log file is dead: rotate onto a fresh one so the store can
		// accept writes again. An empty log implies an empty overlay, so the
		// current base IS the current graph.
		if err := s.rotateLocked(s.base); err != nil {
			return nil, fmt.Errorf("store: compact: %w", err)
		}
	}
	if s.snap == nil {
		s.snap = &Snapshot{
			base: s.base, patched: s.patched, n: s.n, m: s.m, fp: s.fp, epoch: s.epoch,
			window: s.log, fpWindow: s.fpLog, windowFP: s.windowFP,
		}
		s.sealed = true
	}
	s.cur.Store(s.snap)
	return s.snap, nil
}

// materialize builds a validated CSR graph from base + overlay.
func materialize(base *graph.Graph, patched map[int32][]int32, m int) (*graph.Graph, error) {
	n := base.N()
	offsets := make([]int32, n+1)
	for v := 0; v < n; v++ {
		deg := base.Degree(v)
		if l, ok := patched[int32(v)]; ok {
			deg = len(l)
		}
		offsets[v+1] = offsets[v] + int32(deg)
	}
	adj := make([]int32, offsets[n])
	for v := 0; v < n; v++ {
		nb := base.Neighbors(v)
		if l, ok := patched[int32(v)]; ok {
			nb = l
		}
		copy(adj[offsets[v]:offsets[v+1]], nb)
	}
	g, err := graph.FromCSR(offsets, adj)
	if err != nil {
		return nil, err
	}
	if g.M() != m {
		return nil, fmt.Errorf("store: edge count drifted: overlay says %d, CSR says %d", m, g.M())
	}
	return g, nil
}

// Snapshot is an immutable view of a store at one version: a base CSR plus
// a frozen overlay. It implements graph.View, so traversal-shaped reads
// (balls, point queries) run directly on the overlay; Graph lazily
// materializes a full CSR once for algorithm runs that need the concrete
// representation. Safe for concurrent use.
type Snapshot struct {
	base    *graph.Graph
	patched map[int32][]int32
	n, m    int
	fp      graphio.Fingerprint
	epoch   uint64

	// Ancestry: the delta window this snapshot sits at the end of. window
	// holds the deltas applied since the last Compact, fpWindow[i] is the
	// fingerprint after window[i], and windowFP is the fingerprint at the
	// window start. The slices are append-only in the owning store, so the
	// captured headers stay internally consistent forever.
	window   []Delta
	fpWindow []graphio.Fingerprint
	windowFP graphio.Fingerprint

	once sync.Once
	g    *graph.Graph
}

var _ graph.View = (*Snapshot)(nil)

// N returns the vertex count.
func (s *Snapshot) N() int { return s.n }

// M returns the edge count at this version.
func (s *Snapshot) M() int { return s.m }

// Epoch returns the store epoch this snapshot was taken at.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Fingerprint returns the snapshot's identity: the canonical content
// fingerprint if no mutations are pending, the incremental chain value
// otherwise.
func (s *Snapshot) Fingerprint() graphio.Fingerprint { return s.fp }

// Degree returns the degree of v at this version.
func (s *Snapshot) Degree(v int) int {
	if l, ok := s.patched[int32(v)]; ok {
		return len(l)
	}
	return s.base.Degree(v)
}

// Neighbors returns v's sorted adjacency at this version. The slice
// aliases snapshot storage and must not be modified.
func (s *Snapshot) Neighbors(v int) []int32 {
	if l, ok := s.patched[int32(v)]; ok {
		return l
	}
	return s.base.Neighbors(v)
}

// HasEdge reports whether {u, v} is an edge at this version.
func (s *Snapshot) HasEdge(u, v int) bool {
	return contains(s.Neighbors(u), int32(v))
}

// Ball returns N^k(v) at this version in BFS order, straight off the
// overlay (no materialization).
func (s *Snapshot) Ball(v, k int) []int32 {
	return graph.BallOnView(s, v, k)
}

// Ancestor is an earlier version of a snapshot's store, reachable by
// rewinding pending deltas: applying Deltas (in order) to the graph with
// identity Fingerprint reproduces the snapshot's edge set.
type Ancestor struct {
	// Fingerprint is the ancestor version's cache identity.
	Fingerprint graphio.Fingerprint
	// Deltas is the suffix of the delta window separating the ancestor from
	// the snapshot. The slice aliases store history and must not be modified.
	Deltas []Delta
}

// Ancestry returns the snapshot's ancestors within the current delta
// window, newest first (i.e. fewest separating deltas first), at most max
// entries. The snapshot itself is not included. Ancestors never cross a
// Compact: compaction folds the window and restores the canonical
// fingerprint, so there is nothing to rewind through. The walk is O(max)
// — slice arithmetic over history captured at snapshot time.
func (s *Snapshot) Ancestry(max int) []Ancestor {
	l := len(s.window)
	if max > l {
		max = l
	}
	if max <= 0 {
		return nil
	}
	out := make([]Ancestor, 0, max)
	for j := l - 1; j >= l-max; j-- {
		fp := s.windowFP
		if j > 0 {
			fp = s.fpWindow[j-1]
		}
		out = append(out, Ancestor{Fingerprint: fp, Deltas: s.window[j:]})
	}
	return out
}

// Graph materializes the snapshot as a concrete CSR graph, at most once
// (subsequent calls return the same instance). A snapshot with no overlay
// returns the base graph without copying.
func (s *Snapshot) Graph() *graph.Graph {
	s.once.Do(func() {
		if len(s.patched) == 0 {
			s.g = s.base
			return
		}
		g, err := materialize(s.base, s.patched, s.m)
		if err != nil {
			panic(fmt.Sprintf("store: overlay invariant violated: %v", err))
		}
		s.g = g
	})
	return s.g
}
