package store

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/graphio"
)

// Replication: a store doubles as either end of a delta-log stream. The
// owner side exports the pending window with DeltasSince — each entry
// carries the epoch it was applied at and the fingerprint the chain reached
// after it — and the replica side applies entries with ApplyReplicated,
// which refuses anything that does not extend its own chain exactly. The
// fingerprint chain (graphio.NextFingerprint) is history-sensitive, so a
// replica that verifies every link holds a graph bit-identical to the
// owner's, with the same cache identity at every epoch.
//
// Compaction truncates the window; a replica whose cursor predates the
// window start cannot be caught up by deltas (DeltasSince reports ok=false)
// and must resync from a checkpoint of the owner's current state
// (NewReplicaAt), then resume streaming from that epoch.

// DeltaEntry is one replicable mutation: a Delta plus the fingerprint the
// owner's chain reached after applying it. Replicas recompute the link and
// refuse the entry on mismatch, so a diverged replica can never silently
// accept a delta.
type DeltaEntry struct {
	Op    Op
	U, V  int32
	Epoch uint64
	// Fingerprint is the chain value after this delta was applied.
	Fingerprint graphio.Fingerprint
}

// EpochGapError reports a replicated delta that does not directly extend
// the store's current epoch: the store is at Have, the delta is stamped
// Want (which must be Have+1 to apply). The caller decides whether to pull
// the missing range or resync from a checkpoint.
type EpochGapError struct {
	Have, Want uint64
}

func (e *EpochGapError) Error() string {
	return fmt.Sprintf("store: replication epoch gap: store at %d, delta stamped %d", e.Have, e.Want)
}

// DeltaWindow returns the epoch range covered by the pending delta log:
// deltas with epochs in (start, end] are exportable. start == end means the
// window is empty (freshly created or just compacted).
func (s *Store) DeltaWindow() (start, end uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch - uint64(len(s.log)), s.epoch
}

// DeltasSince exports the delta entries with epochs in (since, Epoch()],
// pairing each delta with its chain fingerprint. ok is false when the
// cursor falls outside the current window — either Compact folded the
// requested range away, or the cursor is ahead of this store — in which
// case the caller must resync from a checkpoint instead of streaming.
func (s *Store) DeltasSince(since uint64) (entries []DeltaEntry, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := s.epoch - uint64(len(s.log))
	if since < start || since > s.epoch {
		return nil, false
	}
	if since == s.epoch {
		return nil, true
	}
	idx := int(since - start)
	entries = make([]DeltaEntry, 0, len(s.log)-idx)
	for i := idx; i < len(s.log); i++ {
		d := s.log[i]
		entries = append(entries, DeltaEntry{
			Op: d.Op, U: d.U, V: d.V, Epoch: d.Epoch, Fingerprint: s.fpLog[i],
		})
	}
	return entries, true
}

// ApplyReplicated applies one owner-shipped delta to this store, verifying
// both the epoch sequence (the entry must be stamped Epoch()+1, else an
// *EpochGapError) and the fingerprint chain (the recomputed link must equal
// the entry's, else the replica has diverged and the entry is refused).
// Verification happens before any state changes, so a refused entry leaves
// the store untouched. A delta that does not apply cleanly (adding a
// present edge, deleting an absent one) is refused as divergence: the owner
// only ships deltas that were applied, never no-ops.
func (s *Store) ApplyReplicated(e DeltaEntry) error {
	u, v := int(e.U), int(e.V)
	if u > v {
		u, v = v, u
	}
	if u == v || u < 0 || v >= s.n {
		return fmt.Errorf("store: replicated delta has invalid edge {%d, %d} (n=%d)", e.U, e.V, s.n)
	}
	if e.Op != OpAdd && e.Op != OpDel {
		return fmt.Errorf("store: replicated delta has unknown op %d", e.Op)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.Epoch != s.epoch+1 {
		return &EpochGapError{Have: s.epoch, Want: e.Epoch}
	}
	if want := graphio.NextFingerprint(s.fp, byte(e.Op), int32(u), int32(v)); want != e.Fingerprint {
		return fmt.Errorf("store: fingerprint chain mismatch at epoch %d: replica would reach %s, owner shipped %s",
			e.Epoch, want.Short(), e.Fingerprint.Short())
	}
	present := contains(s.neighbors(int32(u)), int32(v))
	if e.Op == OpAdd && present {
		return fmt.Errorf("store: replicated add of present edge {%d, %d} at epoch %d (replica diverged)", u, v, e.Epoch)
	}
	if e.Op == OpDel && !present {
		return fmt.Errorf("store: replicated delete of absent edge {%d, %d} at epoch %d (replica diverged)", u, v, e.Epoch)
	}
	if err := s.logDelta(e.Op, u, v); err != nil {
		return err
	}
	s.prepareWrite()
	if e.Op == OpAdd {
		s.patched[int32(u)] = insertSorted(s.neighbors(int32(u)), int32(v))
		s.patched[int32(v)] = insertSorted(s.neighbors(int32(v)), int32(u))
		s.m++
		s.adds++
	} else {
		s.patched[int32(u)] = removeSorted(s.neighbors(int32(u)), int32(v))
		s.patched[int32(v)] = removeSorted(s.neighbors(int32(v)), int32(u))
		s.m--
		s.dels++
	}
	s.applyDelta(e.Op, u, v)
	return nil
}

// NewReplicaAt wraps a checkpointed graph (retained, must not be mutated by
// the caller) as a replica store positioned at the owner's epoch and chain
// fingerprint, so subsequent ApplyReplicated calls extend the owner's chain
// exactly. The fingerprint is taken on trust — a mid-window chain value
// cannot be recomputed from the edge set alone — but every delta applied
// after the install re-verifies the chain, so divergence cannot compound.
func NewReplicaAt(g *graph.Graph, epoch uint64, fp graphio.Fingerprint) *Store {
	s := New(g)
	s.epoch = epoch
	s.fp = fp
	s.windowFP = fp
	return s
}
