package algo

import (
	"os"
	"strings"
	"testing"
)

// TestReadmeTableInSync regenerates the algorithms table from the registry
// and fails when README.md's embedded copy (between the algo-table
// markers) has drifted — the docs are derived from the code, not
// hand-maintained. Regenerate with:
//
//	go test ./internal/algo/ -run ReadmeTable -v   (the diff names the fix)
func TestReadmeTableInSync(t *testing.T) {
	data, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatalf("README.md not readable: %v", err)
	}
	s := string(data)
	const begin, end = "<!-- algo-table:begin -->\n", "<!-- algo-table:end -->"
	i := strings.Index(s, begin)
	j := strings.Index(s, end)
	if i < 0 || j < 0 || j < i {
		t.Fatal("README.md is missing the algo-table markers")
	}
	got := s[i+len(begin) : j]
	want := MarkdownTable()
	if got != want {
		t.Fatalf("README algorithms table is stale; replace the block between the markers with:\n%s", want)
	}
}
