package algo

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/graph"
	"repro/internal/ldd"
	"repro/internal/netdecomp"
)

// This file bridges the typed parameter structs of the compute packages to
// the registry: fast cache-key builders for the engine's hot typed request
// paths (a single Sprintf instead of a Params bag round-trip) and the
// matching Params constructors. TestTypedKeysMatchGeneric pins each fast
// key to Spec.CacheKey over the corresponding Params, so the two paths can
// never drift apart and always share cache slots.

// ChangLiKey is the cache key of a changli run under p (repair=false).
// Hand-assembled with strconv appends: this runs on the engine's
// cache-hit path, where fmt.Sprintf would be the dominant cost.
func ChangLiKey(p ldd.Params) string {
	var b [96]byte
	buf := append(b[:0], "changli|eps="...)
	buf = strconv.AppendFloat(buf, p.Epsilon, 'g', -1, 64)
	buf = append(buf, "|ntilde="...)
	buf = strconv.AppendInt(buf, int64(p.NTilde), 10)
	buf = append(buf, "|seed="...)
	buf = strconv.AppendUint(buf, p.Seed, 10)
	buf = append(buf, "|scale="...)
	buf = strconv.AppendFloat(buf, p.Scale, 'g', -1, 64)
	buf = append(buf, "|skip2="...)
	buf = strconv.AppendBool(buf, p.SkipPhase2)
	buf = append(buf, "|repair=false"...)
	return string(buf)
}

// ChangLiParams converts an ldd.Params to the registry bag.
func ChangLiParams(p ldd.Params) Params {
	return Params{
		"eps":     formatFloat(p.Epsilon),
		"ntilde":  strconv.Itoa(p.NTilde),
		"seed":    strconv.FormatUint(p.Seed, 10),
		"scale":   formatFloat(p.Scale),
		"skip2":   strconv.FormatBool(p.SkipPhase2),
		"workers": strconv.Itoa(p.Workers),
	}
}

// RunChangLi executes the changli family directly from typed params,
// returning the registry envelope (used by the engine's compute path).
func RunChangLi(ctx context.Context, g *graph.Graph, p ldd.Params) (*Result, error) {
	s, _ := Get("changli")
	return s.RunSpec(ctx, g, ChangLiParams(p))
}

// RepairChangLi delta-repairs a cached changli envelope onto the view gv
// from typed params (the engine's repair path).
func RepairChangLi(ctx context.Context, gv graph.View, old *Result, p ldd.Params, delta ldd.EdgeDelta) (*Result, error) {
	s, _ := Get("changli")
	return s.RepairSpec(ctx, gv, old, ChangLiParams(p), delta)
}

// SparseCoverKey is the cache key of a sparsecover run under p.
func SparseCoverKey(p ldd.ENParams) string {
	return fmt.Sprintf("sparsecover|lambda=%g|ntilde=%d|seed=%d",
		p.Lambda, p.NTilde, p.Seed)
}

// SparseCoverParams converts an ldd.ENParams to the registry bag.
func SparseCoverParams(p ldd.ENParams) Params {
	return Params{
		"lambda":  formatFloat(p.Lambda),
		"ntilde":  strconv.Itoa(p.NTilde),
		"seed":    strconv.FormatUint(p.Seed, 10),
		"workers": strconv.Itoa(p.Workers),
	}
}

// RunSparseCover executes the sparsecover family from typed params.
func RunSparseCover(ctx context.Context, g *graph.Graph, p ldd.ENParams) (*Result, error) {
	s, _ := Get("sparsecover")
	return s.RunSpec(ctx, g, SparseCoverParams(p))
}

// RepairSparseCover delta-repairs a cached sparsecover envelope onto the
// view gv from typed params.
func RepairSparseCover(ctx context.Context, gv graph.View, old *Result, p ldd.ENParams, delta ldd.EdgeDelta) (*Result, error) {
	s, _ := Get("sparsecover")
	return s.RepairSpec(ctx, gv, old, SparseCoverParams(p), delta)
}

// NetDecompKey is the cache key of a netdecomp run under p.
func NetDecompKey(p netdecomp.Params) string {
	return fmt.Sprintf("netdecomp|lambda=%g|ntilde=%d|seed=%d",
		p.Lambda, p.NTilde, p.Seed)
}

// NetDecompParams converts a netdecomp.Params to the registry bag.
func NetDecompParams(p netdecomp.Params) Params {
	return Params{
		"lambda":  formatFloat(p.Lambda),
		"ntilde":  strconv.Itoa(p.NTilde),
		"seed":    strconv.FormatUint(p.Seed, 10),
		"workers": strconv.Itoa(p.Workers),
	}
}

// RunNetDecomp executes the netdecomp family from typed params.
func RunNetDecomp(ctx context.Context, g *graph.Graph, p netdecomp.Params) (*Result, error) {
	s, _ := Get("netdecomp")
	return s.RunSpec(ctx, g, NetDecompParams(p))
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
