package algo

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/ilp"
)

// Result is the uniform envelope every registered algorithm returns. Only
// the fields matching the Spec's Kind are populated (a decomposition fills
// ClusterOf, an ILP run fills Solution/Value, ...); Raw always carries the
// underlying typed result for callers that need the full structure.
//
// Results are shared by the serving layer's cache and must be treated as
// immutable; copy anything you need to mutate.
type Result struct {
	// Algorithm is the canonical registry name; Key is the canonical
	// cache key (name plus canonicalized parameters).
	Algorithm string
	Key       string
	Kind      Kind

	// Snapshot is the hex fingerprint of the graph snapshot the result was
	// computed against, stamped by serving layers that resolve a mutable
	// store to a version per request (empty for direct algo.Run calls).
	// Together with the cache key it fully identifies what a cached entry
	// answers: in-flight requests keep the snapshot they resolved, so a
	// result can be audited against the graph version it actually saw.
	Snapshot string

	// ClusterOf[v] is v's cluster id, or -1 (decomposition, coloring,
	// edge-cut kinds).
	ClusterOf []int32
	// ColorOf[v] is v's cluster color (coloring kind).
	ColorOf []int32
	// Clusters lists (possibly overlapping) cluster member sets (cover
	// kind; decompositions leave it nil and derive it from ClusterOf).
	Clusters [][]int32
	// NumClusters / NumColors are the respective counts.
	NumClusters int
	NumColors   int
	// Unclustered counts deleted vertices (decomposition kinds).
	Unclustered int

	// Solution and Value are the 0/1 assignment and objective of an ILP
	// run; Exact reports whether every local solve was exact, Feasible
	// whether the assignment satisfies every constraint.
	Solution ilp.Solution
	Value    int64
	Exact    bool
	Feasible bool

	// Rounds is the LOCAL round complexity charged to the run.
	Rounds int
	// Metrics carries algorithm-specific quality numbers (unclustered
	// fraction, cover multiplicity, cut edges, fixed weight, ...).
	Metrics map[string]float64
	// Elapsed is the wall-clock compute time (not incurred on cache hits).
	Elapsed time.Duration

	// Raw is the underlying typed result (*ldd.Decomposition, *ldd.Cover,
	// *netdecomp.Decomposition, *packing.Result, ...).
	Raw any
}

// metric records a quality number, allocating the map lazily.
func (r *Result) metric(key string, v float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64, 4)
	}
	r.Metrics[key] = v
}

// Summary renders a compact one-line human-readable digest, used by the
// CLIs' default output.
func (r *Result) Summary() string {
	var parts []string
	switch r.Kind {
	case KindILP:
		parts = append(parts,
			fmt.Sprintf("value=%d", r.Value),
			fmt.Sprintf("feasible=%t", r.Feasible),
			fmt.Sprintf("exact=%t", r.Exact))
	case KindCover:
		parts = append(parts, fmt.Sprintf("clusters=%d", r.NumClusters))
	case KindColoring:
		parts = append(parts,
			fmt.Sprintf("clusters=%d", r.NumClusters),
			fmt.Sprintf("colors=%d", r.NumColors))
	default:
		parts = append(parts,
			fmt.Sprintf("clusters=%d", r.NumClusters),
			fmt.Sprintf("unclustered=%d", r.Unclustered))
	}
	parts = append(parts, fmt.Sprintf("rounds=%d", r.Rounds))
	keys := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%.4g", k, r.Metrics[k]))
	}
	parts = append(parts, fmt.Sprintf("elapsed=%v", r.Elapsed.Round(time.Microsecond)))
	return strings.Join(parts, " ")
}
