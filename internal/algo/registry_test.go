package algo

import (
	"context"
	"strings"
	"testing"

	"repro/internal/graph/gen"
	"repro/internal/ldd"
	"repro/internal/netdecomp"
	"repro/internal/xrand"
)

// quickParams returns small-but-exercising parameters per family so the
// full-registry sweeps stay fast.
func quickParams(t *testing.T, name string) Params {
	t.Helper()
	switch name {
	case "changli", "blackbox":
		return Params{"eps": "0.3", "scale": "0.05", "seed": "2"}
	case "weighted":
		return Params{"eps": "0.3", "scale": "0.05", "seed": "2", "wmax": "5"}
	case "en", "mpx", "sparsecover", "netdecomp":
		return Params{"lambda": "0.4", "seed": "2"}
	case "packing":
		return Params{"problem": "mis", "eps": "0.25", "prep": "2", "seed": "2"}
	case "covering":
		return Params{"problem": "vc", "eps": "0.25", "prep": "2", "seed": "2"}
	case "gkm":
		return Params{"problem": "mis", "eps": "0.25", "scale": "0.4", "seed": "2"}
	case "solve":
		return Params{"problem": "mis"}
	default:
		t.Fatalf("quickParams: unknown algorithm %q — add a case", name)
		return nil
	}
}

// TestEveryFamilyRunsByName is the acceptance sweep: every registered
// algorithm family is invocable by name with a context and returns a
// populated envelope.
func TestEveryFamilyRunsByName(t *testing.T) {
	required := []string{"changli", "weighted", "sparsecover", "netdecomp", "gkm", "covering", "packing", "solve"}
	names := Names()
	for _, want := range required {
		if _, ok := Get(want); !ok {
			t.Fatalf("required family %q not registered (have %v)", want, names)
		}
	}
	g := gen.Cycle(120)
	for _, name := range names {
		res, err := Run(context.Background(), name, g, quickParams(t, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Algorithm != name {
			t.Fatalf("%s: envelope algorithm = %q", name, res.Algorithm)
		}
		if !strings.HasPrefix(res.Key, name+"|") {
			t.Fatalf("%s: bad cache key %q", name, res.Key)
		}
		if res.Raw == nil && name != "solve" {
			t.Fatalf("%s: envelope carries no raw result", name)
		}
		switch res.Kind {
		case KindDecomposition, KindColoring, KindEdgeCut:
			if len(res.ClusterOf) != g.N() {
				t.Fatalf("%s: ClusterOf has %d entries, want %d", name, len(res.ClusterOf), g.N())
			}
		case KindCover:
			if res.NumClusters == 0 {
				t.Fatalf("%s: empty cover", name)
			}
		case KindILP:
			if len(res.Solution) == 0 {
				t.Fatalf("%s: empty solution", name)
			}
			if !res.Feasible {
				t.Fatalf("%s: infeasible solution", name)
			}
		default:
			t.Fatalf("%s: unknown kind %v", name, res.Kind)
		}
	}
}

func TestAliasesResolve(t *testing.T) {
	for alias, want := range map[string]string{
		"chang-li":     "changli",
		"elkin-neiman": "en",
		"cover":        "sparsecover",
		"net":          "netdecomp",
		"localsolve":   "solve",
	} {
		s, ok := Get(alias)
		if !ok || s.Name != want {
			t.Fatalf("alias %q resolved to %v, want %s", alias, s, want)
		}
	}
}

func TestUnknownAlgorithmAndParams(t *testing.T) {
	g := gen.Cycle(16)
	if _, err := Run(context.Background(), "quantum", g, nil); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := Run(context.Background(), "changli", g, Params{"bogus": "1"}); err == nil {
		t.Fatal("unknown parameter accepted")
	}
	if _, err := Run(context.Background(), "changli", g, Params{"eps": "abc"}); err == nil {
		t.Fatal("malformed parameter accepted")
	}
	if _, err := Run(context.Background(), "changli", nil, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestParamsParseAndCanonical(t *testing.T) {
	p, err := ParseParamString("eps=0.30 seed=4 skip2=true")
	if err != nil {
		t.Fatal(err)
	}
	s, _ := Get("changli")
	key, err := s.CacheKey(p)
	if err != nil {
		t.Fatal(err)
	}
	// Canonicalization: 0.30 -> 0.3, defaults applied, workers excluded.
	want := "changli|eps=0.3|ntilde=0|seed=4|scale=0|skip2=true|repair=false"
	if key != want {
		t.Fatalf("key = %q, want %q", key, want)
	}
	// A spelled-out default and an omitted one share a slot.
	p2, _ := ParseParamString("eps=.3 seed=4 skip2=true scale=0.0 workers=7")
	key2, err := s.CacheKey(p2)
	if err != nil {
		t.Fatal(err)
	}
	if key2 != want {
		t.Fatalf("equivalent params keyed differently: %q vs %q", key2, want)
	}
	if _, err := ParseParams([]string{"noequals"}); err == nil {
		t.Fatal("bad token accepted")
	}
	if _, err := ParseParams([]string{"a=1", "a=2"}); err == nil {
		t.Fatal("duplicate key accepted")
	}
}

// TestTypedKeysMatchGeneric pins the engine's fast typed key builders to
// the generic Spec.CacheKey so the two request paths always share cache
// slots.
func TestTypedKeysMatchGeneric(t *testing.T) {
	lp := ldd.Params{Epsilon: 0.3, NTilde: 500, Seed: 11, Scale: 0.05, SkipPhase2: true, Workers: 3}
	s, _ := Get("changli")
	want, err := s.CacheKey(ChangLiParams(lp))
	if err != nil {
		t.Fatal(err)
	}
	if got := ChangLiKey(lp); got != want {
		t.Fatalf("ChangLiKey = %q, generic = %q", got, want)
	}

	ep := ldd.ENParams{Lambda: 0.5, NTilde: 200, Seed: 7}
	s, _ = Get("sparsecover")
	want, err = s.CacheKey(SparseCoverParams(ep))
	if err != nil {
		t.Fatal(err)
	}
	if got := SparseCoverKey(ep); got != want {
		t.Fatalf("SparseCoverKey = %q, generic = %q", got, want)
	}

	np := netdecomp.Params{Lambda: 0.25, Seed: 9}
	s, _ = Get("netdecomp")
	want, err = s.CacheKey(NetDecompParams(np))
	if err != nil {
		t.Fatal(err)
	}
	if got := NetDecompKey(np); got != want {
		t.Fatalf("NetDecompKey = %q, generic = %q", got, want)
	}
}

// TestTypedRunnersMatchDirect pins the typed bridge runners to the direct
// package entry points: same seed, same output.
func TestTypedRunnersMatchDirect(t *testing.T) {
	g := gen.RandomRegular(200, 4, xrand.New(3))
	lp := ldd.Params{Epsilon: 0.3, Seed: 5, Scale: 0.05}
	res, err := RunChangLi(context.Background(), g, lp)
	if err != nil {
		t.Fatal(err)
	}
	direct := ldd.ChangLi(g, lp)
	if res.NumClusters != direct.NumClusters || res.Unclustered != direct.UnclusteredCount() {
		t.Fatalf("typed runner diverged: got (%d, %d), want (%d, %d)",
			res.NumClusters, res.Unclustered, direct.NumClusters, direct.UnclusteredCount())
	}
	for v := range direct.ClusterOf {
		if res.ClusterOf[v] != direct.ClusterOf[v] {
			t.Fatalf("ClusterOf[%d] = %d, direct = %d", v, res.ClusterOf[v], direct.ClusterOf[v])
		}
	}
}

func TestMarkdownTableListsEveryAlgorithm(t *testing.T) {
	table := MarkdownTable()
	for _, name := range Names() {
		if !strings.Contains(table, "`"+name+"`") {
			t.Fatalf("markdown table missing %s:\n%s", name, table)
		}
	}
}

func TestSummaryShapes(t *testing.T) {
	g := gen.Cycle(80)
	for _, name := range []string{"changli", "sparsecover", "netdecomp", "solve", "mpx"} {
		res, err := Run(context.Background(), name, g, quickParams(t, name))
		if err != nil {
			t.Fatal(err)
		}
		if s := res.Summary(); !strings.Contains(s, "rounds=") || !strings.Contains(s, "elapsed=") {
			t.Fatalf("%s: malformed summary %q", name, s)
		}
	}
}
