package algo

import (
	"fmt"
	"strings"
)

// MarkdownTable renders the registry as a GitHub-flavored markdown table
// (name, aliases, kind, capabilities, parameters, summary). README.md
// embeds this table verbatim; TestReadmeTableInSync regenerates it and
// fails when the two drift, so the docs are always derived from the
// registry rather than hand-maintained.
func MarkdownTable() string {
	var b strings.Builder
	b.WriteString("| name | aliases | kind | capabilities | parameters | summary |\n")
	b.WriteString("|------|---------|------|--------------|------------|---------|\n")
	for _, s := range All() {
		var caps []string
		if s.Caps.Seeded {
			caps = append(caps, "seeded")
		}
		if s.Caps.Weighted {
			caps = append(caps, "weighted")
		}
		if s.Caps.Workers {
			caps = append(caps, "workers")
		}
		if len(caps) == 0 {
			caps = append(caps, "-")
		}
		params := make([]string, len(s.Defs))
		for i, d := range s.Defs {
			params[i] = fmt.Sprintf("%s=%s", d.Key, d.Default)
		}
		aliases := strings.Join(s.Aliases, ", ")
		if aliases == "" {
			aliases = "-"
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s | %s | `%s` | %s |\n",
			s.Name, aliases, s.Caps.Kind, strings.Join(caps, ", "),
			strings.Join(params, " "), s.Summary)
	}
	return b.String()
}
