package algo

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/xrand"
)

// cancelTestGraph is large enough that a paper-constants ChangLi run takes
// well over a second, so a millisecond-scale cancel lands mid-computation.
func cancelTestGraph() *graph.Graph {
	return gen.RandomRegular(20000, 4, xrand.New(7))
}

// runCancelled launches the named algorithm on a goroutine, cancels the
// context once the run is underway, and returns (error, wall time from
// cancel to return).
func runCancelled(t *testing.T, g *graph.Graph, name string, p Params, after time.Duration) (error, time.Duration) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := Run(ctx, name, g, p)
		ch <- outcome{res, err}
	}()
	time.Sleep(after)
	cancelAt := time.Now()
	cancel()
	select {
	case out := <-ch:
		if out.err == nil {
			// The run beat the cancel; not an error, but the caller should
			// use a bigger graph or a shorter delay.
			t.Logf("%s completed before cancellation took effect", name)
			return nil, time.Since(cancelAt)
		}
		return out.err, time.Since(cancelAt)
	case <-time.After(30 * time.Second):
		t.Fatalf("%s: cancelled run did not return within 30s", name)
		return nil, 0
	}
}

// TestCancelMidDecompositionReturnsPromptly is the satellite acceptance
// test: cancelling a large paper-constants decomposition mid-run returns
// context.Canceled promptly (well before the multi-second full runtime),
// leaks no goroutines, and leaves the pooled workspaces reusable.
func TestCancelMidDecompositionReturnsPromptly(t *testing.T) {
	g := cancelTestGraph()
	before := runtime.NumGoroutine()

	err, latency := runCancelled(t, g, "changli", Params{"eps": "0.1", "seed": "3"}, 30*time.Millisecond)
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if err != nil && latency > 5*time.Second {
		t.Fatalf("cancelled run took %v to return", latency)
	}

	// No goroutine leaks: the worker pool must drain after cancellation.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines leaked: before=%d after=%d", before, after)
	}

	// Pooled workspaces stay reusable: a fresh small run on the same pool
	// completes and produces a valid separation.
	small := gen.Cycle(400)
	res, err := Run(context.Background(), "changli", small, Params{"eps": "0.3", "scale": "0.05", "seed": "1"})
	if err != nil {
		t.Fatalf("post-cancel run failed: %v", err)
	}
	if res.NumClusters == 0 {
		t.Fatal("post-cancel run produced no clusters")
	}
}

// TestDeadlineBoundedRun proves the deadline path: a request with a tight
// deadline returns context.DeadlineExceeded instead of holding the caller
// for the full decomposition.
func TestDeadlineBoundedRun(t *testing.T) {
	g := cancelTestGraph()
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Run(ctx, "changli", g, Params{"eps": "0.1", "seed": "3"})
	elapsed := time.Since(start)
	if err == nil {
		t.Skip("machine fast enough to finish inside the deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("deadline-bounded run held for %v", elapsed)
	}
}

// TestCancelSweepAllFamilies cancels every registered family mid-run (or
// lets fast families finish) and verifies none of them errors with
// anything but a context error, none leaks goroutines, and each family
// still completes cleanly afterwards.
func TestCancelSweepAllFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-family cancel sweep is slow")
	}
	big := cancelTestGraph()
	small := gen.Cycle(100)
	for _, name := range Names() {
		graphFor := big
		p := Params{}
		switch name {
		case "packing", "covering", "gkm", "solve":
			// ILP instance build is itself O(n); mid-size keeps the sweep fast
			// while leaving enough work to cancel into.
			graphFor = gen.RandomRegular(3000, 4, xrand.New(9))
			if name == "gkm" {
				p = Params{"scale": "0.4"}
			}
		case "en", "mpx", "sparsecover", "netdecomp":
			p = Params{"lambda": "0.05"}
		case "blackbox":
			// The k-th power-graph materialization is one uncancellable
			// block; size the instance so the cancellable phases dominate.
			graphFor = gen.RandomRegular(4000, 4, xrand.New(9))
			p = Params{"eps": "0.25"}
		case "changli", "weighted":
			p = Params{"eps": "0.1"}
		}
		err, _ := runCancelled(t, graphFor, name, p, 10*time.Millisecond)
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled or nil", name, err)
		}
		if _, err := Run(context.Background(), name, small, quickParams(t, name)); err != nil {
			t.Fatalf("%s: post-cancel run failed: %v", name, err)
		}
	}
}
