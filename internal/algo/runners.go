package algo

import (
	"context"
	"fmt"

	"repro/internal/covering"
	"repro/internal/gkm"
	"repro/internal/graph"
	"repro/internal/ilp"
	"repro/internal/ldd"
	"repro/internal/netdecomp"
	"repro/internal/packing"
	"repro/internal/problems"
	"repro/internal/solve"
	"repro/internal/xrand"
)

// weightLabel salts the synthetic vertex-weight stream of the weighted
// decomposition runner.
const weightLabel = 0x3e11

func init() {
	registerDecompositions()
	registerILPs()
}

// --- Decomposition families -----------------------------------------------

func registerDecompositions() {
	Register(&Spec{
		Name:    "changli",
		Aliases: []string{"chang-li"},
		Summary: "Theorem 1.1 low-diameter decomposition (whp ε-bound)",
		Caps:    Capabilities{Kind: KindDecomposition, Seeded: true, Workers: true},
		Defs: []ParamDef{
			{Key: "eps", Kind: Float, Default: "0.3", Doc: "unclustered-fraction bound"},
			{Key: "ntilde", Kind: Int, Default: "0", Doc: "known upper bound ñ >= n (0 = n)"},
			{Key: "seed", Kind: Uint, Default: "1", Doc: "random seed"},
			{Key: "scale", Kind: Float, Default: "0", Doc: "radius scale (0 = paper constants)"},
			{Key: "skip2", Kind: Bool, Default: "false", Doc: "extend Phase 1 instead of running Phase 2"},
			{Key: "repair", Kind: Bool, Default: "false", Doc: "repair cluster diameters to the ideal bound"},
			{Key: "workers", Kind: Int, Default: "0", Doc: "worker pool bound (0 = GOMAXPROCS)", NoCache: true},
		},
		Run: func(ctx context.Context, g *graph.Graph, p Params) (*Result, error) {
			d := decoder{p: p}
			lp := ldd.Params{
				Epsilon:    d.float("eps", 0.3),
				NTilde:     d.int("ntilde", 0),
				Seed:       d.uint("seed", 1),
				Scale:      d.float("scale", 0),
				SkipPhase2: d.bool("skip2", false),
				Workers:    d.int("workers", 0),
			}
			repair := d.bool("repair", false)
			if d.err != nil {
				return nil, d.err
			}
			dec, err := ldd.ChangLiCtx(ctx, g, lp)
			if err != nil {
				return nil, err
			}
			return decompositionResult(ctx, g, dec, lp.Epsilon, repair)
		},
		Repair: func(ctx context.Context, gv graph.View, old *Result, p Params, delta ldd.EdgeDelta) (*Result, error) {
			d := decoder{p: p}
			lp := ldd.Params{
				Epsilon:    d.float("eps", 0.3),
				NTilde:     d.int("ntilde", 0),
				Seed:       d.uint("seed", 1),
				Scale:      d.float("scale", 0),
				SkipPhase2: d.bool("skip2", false),
				Workers:    d.int("workers", 0),
			}
			if d.err != nil {
				return nil, d.err
			}
			return repairDecompositionResult(ctx, gv, old, delta, lp)
		},
	})

	Register(&Spec{
		Name:    "weighted",
		Aliases: []string{"changli-weighted"},
		Summary: "weighted Theorem 1.1 variant (deleted weight <= ε·Σw)",
		Caps:    Capabilities{Kind: KindDecomposition, Seeded: true, Weighted: true, Workers: true},
		Defs: []ParamDef{
			{Key: "eps", Kind: Float, Default: "0.3", Doc: "deleted-weight fraction bound"},
			{Key: "ntilde", Kind: Int, Default: "0", Doc: "known upper bound ñ >= n (0 = n)"},
			{Key: "seed", Kind: Uint, Default: "1", Doc: "random seed"},
			{Key: "scale", Kind: Float, Default: "0", Doc: "radius scale (0 = paper constants)"},
			{Key: "skip2", Kind: Bool, Default: "false", Doc: "extend Phase 1 instead of running Phase 2"},
			{Key: "wseed", Kind: Uint, Default: "1", Doc: "synthetic vertex-weight seed"},
			{Key: "wmax", Kind: Int, Default: "8", Doc: "synthetic weights drawn uniformly from [1, wmax]"},
			{Key: "repair", Kind: Bool, Default: "false", Doc: "repair cluster diameters to the ideal bound"},
			{Key: "workers", Kind: Int, Default: "0", Doc: "worker pool bound (0 = GOMAXPROCS)", NoCache: true},
		},
		Run: func(ctx context.Context, g *graph.Graph, p Params) (*Result, error) {
			d := decoder{p: p}
			lp := ldd.Params{
				Epsilon:    d.float("eps", 0.3),
				NTilde:     d.int("ntilde", 0),
				Seed:       d.uint("seed", 1),
				Scale:      d.float("scale", 0),
				SkipPhase2: d.bool("skip2", false),
				Workers:    d.int("workers", 0),
			}
			wseed := d.uint("wseed", 1)
			wmax := d.int("wmax", 8)
			repair := d.bool("repair", false)
			if d.err != nil {
				return nil, d.err
			}
			if wmax < 1 {
				return nil, fmt.Errorf("algo weighted: wmax must be >= 1, got %d", wmax)
			}
			w := SyntheticWeights(g.N(), wseed, wmax)
			dec, err := ldd.ChangLiWeightedCtx(ctx, g, w, lp)
			if err != nil {
				return nil, err
			}
			res, err := decompositionResult(ctx, g, dec, lp.Epsilon, repair)
			if err != nil {
				return nil, err
			}
			var total int64
			for _, x := range w {
				total += x
			}
			if total > 0 {
				res.metric("deleted_weight_frac", float64(dec.DeletedWeight(w))/float64(total))
			}
			return res, nil
		},
	})

	Register(&Spec{
		Name:    "en",
		Aliases: []string{"elkin-neiman"},
		Summary: "Elkin–Neiman exponential-shift LDD (Lemma C.1, expectation-only)",
		Caps:    Capabilities{Kind: KindDecomposition, Seeded: true, Workers: true},
		Defs: []ParamDef{
			{Key: "lambda", Kind: Float, Default: "0.3", Doc: "deletion-rate parameter"},
			{Key: "ntilde", Kind: Int, Default: "0", Doc: "known upper bound ñ >= n (0 = n)"},
			{Key: "seed", Kind: Uint, Default: "1", Doc: "random seed"},
			{Key: "repair", Kind: Bool, Default: "false", Doc: "repair cluster diameters to the ideal bound"},
			{Key: "workers", Kind: Int, Default: "0", Doc: "worker pool bound (0 = GOMAXPROCS)", NoCache: true},
		},
		Run: func(ctx context.Context, g *graph.Graph, p Params) (*Result, error) {
			d := decoder{p: p}
			ep := ldd.ENParams{
				Lambda:  d.float("lambda", 0.3),
				NTilde:  d.int("ntilde", 0),
				Seed:    d.uint("seed", 1),
				Workers: d.int("workers", 0),
			}
			repair := d.bool("repair", false)
			if d.err != nil {
				return nil, d.err
			}
			dec, err := ldd.ElkinNeimanCtx(ctx, g, nil, ep)
			if err != nil {
				return nil, err
			}
			return decompositionResult(ctx, g, dec, ep.Lambda, repair)
		},
	})

	Register(&Spec{
		Name:    "blackbox",
		Summary: "Section 1.6 boost: log(1/ε) round factor over any whp base",
		Caps:    Capabilities{Kind: KindDecomposition, Seeded: true},
		Defs: []ParamDef{
			{Key: "eps", Kind: Float, Default: "0.3", Doc: "unclustered-fraction bound"},
			{Key: "ntilde", Kind: Int, Default: "0", Doc: "known upper bound ñ >= n (0 = n)"},
			{Key: "seed", Kind: Uint, Default: "1", Doc: "random seed"},
			{Key: "scale", Kind: Float, Default: "0", Doc: "radius scale of the inner base runs"},
			{Key: "enbase", Kind: Bool, Default: "false", Doc: "swap the whp base for plain Elkin–Neiman"},
			{Key: "repair", Kind: Bool, Default: "false", Doc: "repair cluster diameters to the ideal bound"},
		},
		Run: func(ctx context.Context, g *graph.Graph, p Params) (*Result, error) {
			d := decoder{p: p}
			bp := ldd.BlackboxParams{
				Epsilon:            d.float("eps", 0.3),
				NTilde:             d.int("ntilde", 0),
				Seed:               d.uint("seed", 1),
				Scale:              d.float("scale", 0),
				UseElkinNeimanBase: d.bool("enbase", false),
			}
			repair := d.bool("repair", false)
			if d.err != nil {
				return nil, d.err
			}
			dec, err := ldd.BlackboxCtx(ctx, g, bp)
			if err != nil {
				return nil, err
			}
			return decompositionResult(ctx, g, dec, bp.Epsilon, repair)
		},
	})

	Register(&Spec{
		Name:    "mpx",
		Summary: "Miller–Peng–Xu edge decomposition (Claim C.2 variant)",
		Caps:    Capabilities{Kind: KindEdgeCut, Seeded: true},
		Defs: []ParamDef{
			{Key: "lambda", Kind: Float, Default: "0.3", Doc: "shift parameter (expected cut fraction)"},
			{Key: "ntilde", Kind: Int, Default: "0", Doc: "known upper bound ñ >= n (0 = n)"},
			{Key: "seed", Kind: Uint, Default: "1", Doc: "random seed"},
		},
		Run: func(ctx context.Context, g *graph.Graph, p Params) (*Result, error) {
			d := decoder{p: p}
			ep := ldd.ENParams{
				Lambda: d.float("lambda", 0.3),
				NTilde: d.int("ntilde", 0),
				Seed:   d.uint("seed", 1),
			}
			if d.err != nil {
				return nil, d.err
			}
			r, err := ldd.MPXCtx(ctx, g, ep)
			if err != nil {
				return nil, err
			}
			res := &Result{
				ClusterOf:   r.ClusterOf,
				NumClusters: r.NumClusters,
				Rounds:      r.Rounds,
				Raw:         r,
			}
			res.metric("cut_edges", float64(len(r.CutEdges)))
			if m := g.M(); m > 0 {
				res.metric("cut_frac", float64(len(r.CutEdges))/float64(m))
			}
			return res, nil
		},
	})

	Register(&Spec{
		Name:    "sparsecover",
		Aliases: []string{"cover"},
		Summary: "Lemma C.2 sparse cover (hyperedge-preserving, geometric multiplicity)",
		Caps:    Capabilities{Kind: KindCover, Seeded: true, Workers: true},
		Defs: []ParamDef{
			{Key: "lambda", Kind: Float, Default: "0.5", Doc: "shift parameter (diameter 8 ln ñ / λ)"},
			{Key: "ntilde", Kind: Int, Default: "0", Doc: "known upper bound ñ >= n (0 = n)"},
			{Key: "seed", Kind: Uint, Default: "1", Doc: "random seed"},
			{Key: "workers", Kind: Int, Default: "0", Doc: "worker pool bound (0 = GOMAXPROCS)", NoCache: true},
		},
		Run: func(ctx context.Context, g *graph.Graph, p Params) (*Result, error) {
			d := decoder{p: p}
			ep := ldd.ENParams{
				Lambda:  d.float("lambda", 0.5),
				NTilde:  d.int("ntilde", 0),
				Seed:    d.uint("seed", 1),
				Workers: d.int("workers", 0),
			}
			if d.err != nil {
				return nil, d.err
			}
			c, err := ldd.SparseCoverCtx(ctx, g, nil, ep)
			if err != nil {
				return nil, err
			}
			res := &Result{
				Clusters:    c.Clusters,
				NumClusters: len(c.Clusters),
				Rounds:      c.Rounds,
				Raw:         c,
			}
			res.metric("max_multiplicity", float64(c.MaxMultiplicity()))
			res.metric("mean_multiplicity", c.MeanMultiplicity())
			return res, nil
		},
		Repair: func(ctx context.Context, gv graph.View, old *Result, p Params, delta ldd.EdgeDelta) (*Result, error) {
			d := decoder{p: p}
			ep := ldd.ENParams{
				Lambda:  d.float("lambda", 0.5),
				NTilde:  d.int("ntilde", 0),
				Seed:    d.uint("seed", 1),
				Workers: d.int("workers", 0),
			}
			if d.err != nil {
				return nil, d.err
			}
			c, ok := old.Raw.(*ldd.Cover)
			if !ok || c == nil {
				return nil, fmt.Errorf("%w: cached result carries no cover", ldd.ErrRepairFallback)
			}
			out, rep, err := ldd.RepairCoverDelta(ctx, gv, c, delta, ldd.RepairCoverParams{
				WeakBound: ep.WeakDiameterBound(gv.N()),
				Workers:   ep.Workers,
			})
			if err != nil {
				return nil, err
			}
			res := &Result{
				Clusters:    out.Clusters,
				NumClusters: len(out.Clusters),
				Rounds:      out.Rounds,
				Raw:         out,
			}
			res.metric("max_multiplicity", float64(out.MaxMultiplicity()))
			res.metric("mean_multiplicity", out.MeanMultiplicity())
			stampRepairMetrics(res, old, rep.NewClusters, rep.Certified)
			return res, nil
		},
	})

	Register(&Spec{
		Name:    "netdecomp",
		Aliases: []string{"net"},
		Summary: "Linial–Saks style colored network decomposition (GKM substrate)",
		Caps:    Capabilities{Kind: KindColoring, Seeded: true, Workers: true},
		Defs: []ParamDef{
			{Key: "lambda", Kind: Float, Default: "0.5", Doc: "per-phase Elkin–Neiman parameter"},
			{Key: "ntilde", Kind: Int, Default: "0", Doc: "known upper bound ñ >= n (0 = n)"},
			{Key: "seed", Kind: Uint, Default: "1", Doc: "random seed"},
			{Key: "workers", Kind: Int, Default: "0", Doc: "worker pool bound (0 = GOMAXPROCS)", NoCache: true},
		},
		Run: func(ctx context.Context, g *graph.Graph, p Params) (*Result, error) {
			d := decoder{p: p}
			np := netdecomp.Params{
				Lambda:  d.float("lambda", 0.5),
				NTilde:  d.int("ntilde", 0),
				Seed:    d.uint("seed", 1),
				Workers: d.int("workers", 0),
			}
			if d.err != nil {
				return nil, d.err
			}
			dec, err := netdecomp.DecomposeCtx(ctx, g, np)
			if err != nil {
				return nil, err
			}
			return &Result{
				ClusterOf:   dec.ClusterOf,
				ColorOf:     dec.ColorOf,
				NumClusters: dec.NumClusters,
				NumColors:   dec.NumColors,
				Rounds:      dec.Rounds,
				Raw:         dec,
			}, nil
		},
	})
}

// decompositionResult wraps an ldd.Decomposition, optionally repairing
// cluster diameters first.
func decompositionResult(ctx context.Context, g *graph.Graph, dec *ldd.Decomposition, eps float64, repair bool) (*Result, error) {
	if repair {
		var err error
		dec, err = ldd.RepairDiameterCtx(ctx, g, dec, eps, 0)
		if err != nil {
			return nil, err
		}
	}
	res := &Result{
		ClusterOf:   dec.ClusterOf,
		NumClusters: dec.NumClusters,
		Unclustered: dec.UnclusteredCount(),
		Rounds:      dec.Rounds,
		Raw:         dec,
	}
	res.metric("unclustered_frac", dec.UnclusteredFraction())
	return res, nil
}

// repairDecompositionResult is the shared delta-repair body of the
// ClusterOf decomposition families: unwrap the cached ldd.Decomposition,
// patch it onto the view with ldd.RepairDelta (certifying kept clusters
// against the family's analytic weak-diameter budget), and rebuild the
// envelope with freshly computed quality metrics.
func repairDecompositionResult(ctx context.Context, gv graph.View, old *Result, delta ldd.EdgeDelta, lp ldd.Params) (*Result, error) {
	dec, ok := old.Raw.(*ldd.Decomposition)
	if !ok || dec == nil {
		return nil, fmt.Errorf("%w: cached result carries no decomposition", ldd.ErrRepairFallback)
	}
	out, rep, err := ldd.RepairDelta(ctx, gv, dec, delta, ldd.RepairDeltaParams{
		Epsilon:   lp.Epsilon,
		WeakBound: lp.WeakDiameterBound(gv.N()),
		Workers:   lp.Workers,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		ClusterOf:   out.ClusterOf,
		NumClusters: out.NumClusters,
		Unclustered: out.UnclusteredCount(),
		Rounds:      out.Rounds,
		Raw:         out,
	}
	res.metric("unclustered_frac", out.UnclusteredFraction())
	stampRepairMetrics(res, old, rep.Recarved, rep.Certified)
	return res, nil
}

// stampRepairMetrics marks a repaired envelope: repair_gen counts repairs
// since the last full run (the engine caps it to bound drift), and the
// cluster counters attribute how much work the repair actually did.
func stampRepairMetrics(res, old *Result, repaired, certified int) {
	res.metric("repair_gen", RepairGen(old)+1)
	res.metric("repaired_clusters", float64(repaired))
	res.metric("certified_clusters", float64(certified))
}

// RepairGen returns how many delta repairs separate res from a full run
// (0 for a fresh computation).
func RepairGen(res *Result) float64 {
	if res == nil || res.Metrics == nil {
		return 0
	}
	return res.Metrics["repair_gen"]
}

// SyntheticWeights derives the deterministic vertex weights used by the
// weighted decomposition runner: w[v] uniform in [1, wmax] from
// (wseed, v).
func SyntheticWeights(n int, wseed uint64, wmax int) []int64 {
	w := make([]int64, n)
	for v := range w {
		w[v] = 1 + int64(xrand.Stream(wseed, v, weightLabel).Intn(wmax))
	}
	return w
}

// --- ILP families -----------------------------------------------------------

// ilpDefs are the parameter declarations shared by the ILP runners;
// withDefs appends extras in cache-key order.
func ilpDefs(defaultProblem string, extra ...ParamDef) []ParamDef {
	defs := []ParamDef{
		{Key: "problem", Kind: String, Default: defaultProblem, Doc: "mis | vc | mds | matching | kdom"},
		{Key: "k", Kind: Int, Default: "2", Doc: "distance for problem=kdom"},
		{Key: "eps", Kind: Float, Default: "0.25", Doc: "approximation parameter"},
		{Key: "ntilde", Kind: Int, Default: "0", Doc: "known upper bound (0 = n)"},
		{Key: "seed", Kind: Uint, Default: "1", Doc: "random seed"},
		{Key: "scale", Kind: Float, Default: "0", Doc: "radius scale (0 = paper constants)"},
	}
	return append(defs, extra...)
}

// buildInstance constructs the ILP instance named by the problem param.
func buildInstance(g *graph.Graph, d *decoder, defaultProblem string) (*ilp.Instance, problems.Problem, error) {
	name := d.raw("problem", defaultProblem)
	k := d.int("k", 2)
	if d.err != nil {
		return nil, 0, d.err
	}
	var prob problems.Problem
	switch name {
	case "mis":
		prob = problems.MIS
	case "vc":
		prob = problems.MinVertexCover
	case "mds":
		prob = problems.MinDominatingSet
	case "matching":
		prob = problems.MaxMatching
	case "kdom":
		if k < 1 {
			return nil, 0, fmt.Errorf("problem kdom: k must be >= 1, got %d", k)
		}
		inst, err := problems.BuildK(k, g, nil)
		if err != nil {
			return nil, 0, err
		}
		return inst, problems.KDominatingSet, nil
	default:
		return nil, 0, fmt.Errorf("unknown problem %q (want mis|vc|mds|matching|kdom)", name)
	}
	inst, err := problems.Build(prob, g, nil)
	if err != nil {
		return nil, 0, err
	}
	return inst, prob, nil
}

func ilpResult(inst *ilp.Instance, sol ilp.Solution, value int64, rounds int, exact bool) *Result {
	feasible, _ := inst.Feasible(sol)
	return &Result{
		Solution: sol,
		Value:    value,
		Rounds:   rounds,
		Exact:    exact,
		Feasible: feasible,
	}
}

func registerILPs() {
	Register(&Spec{
		Name:    "packing",
		Summary: "Theorem 1.2: (1−ε)-approximate packing ILP",
		Caps:    Capabilities{Kind: KindILP, Seeded: true, Workers: true},
		Defs: ilpDefs("mis",
			ParamDef{Key: "prep", Kind: Int, Default: "3", Doc: "preparation decompositions (0 = paper's 16 ln ñ)"},
			ParamDef{Key: "workers", Kind: Int, Default: "0", Doc: "worker pool bound (0 = GOMAXPROCS)", NoCache: true},
		),
		Run: func(ctx context.Context, g *graph.Graph, p Params) (*Result, error) {
			d := decoder{p: p}
			inst, _, err := buildInstance(g, &d, "mis")
			if err != nil {
				return nil, err
			}
			pp := packing.Params{
				Epsilon:  d.float("eps", 0.25),
				NTilde:   d.int("ntilde", 0),
				Seed:     d.uint("seed", 1),
				Scale:    d.float("scale", 0),
				PrepRuns: d.int("prep", 3),
				Workers:  d.int("workers", 0),
			}
			if d.err != nil {
				return nil, d.err
			}
			if inst.Kind() != ilp.Packing {
				return nil, fmt.Errorf("algo packing: problem %q is a covering problem", d.raw("problem", "mis"))
			}
			r, err := packing.SolveCtx(ctx, inst, pp)
			if err != nil {
				return nil, err
			}
			res := ilpResult(inst, r.Solution, r.Value, r.Rounds, r.Exact)
			res.metric("deleted", float64(r.Deleted))
			res.Raw = r
			return res, nil
		},
	})

	Register(&Spec{
		Name:    "covering",
		Summary: "Theorem 1.3: (1+ε)-approximate covering ILP",
		Caps:    Capabilities{Kind: KindILP, Seeded: true, Workers: true},
		Defs: ilpDefs("vc",
			ParamDef{Key: "prep", Kind: Int, Default: "3", Doc: "preparation covers (0 = paper's 16 ln ñ)"},
			ParamDef{Key: "workers", Kind: Int, Default: "0", Doc: "worker pool bound (0 = GOMAXPROCS)", NoCache: true},
		),
		Run: func(ctx context.Context, g *graph.Graph, p Params) (*Result, error) {
			d := decoder{p: p}
			inst, _, err := buildInstance(g, &d, "vc")
			if err != nil {
				return nil, err
			}
			cp := covering.Params{
				Epsilon:  d.float("eps", 0.25),
				NTilde:   d.int("ntilde", 0),
				Seed:     d.uint("seed", 1),
				Scale:    d.float("scale", 0),
				PrepRuns: d.int("prep", 3),
				Workers:  d.int("workers", 0),
			}
			if d.err != nil {
				return nil, d.err
			}
			if inst.Kind() != ilp.Covering {
				return nil, fmt.Errorf("algo covering: problem %q is a packing problem", d.raw("problem", "vc"))
			}
			r, err := covering.SolveCtx(ctx, inst, cp)
			if err != nil {
				return nil, err
			}
			res := ilpResult(inst, r.Solution, r.Value, r.Rounds, r.Exact)
			res.metric("fixed_weight", float64(r.FixedWeight))
			res.metric("regions", float64(r.NumRegions))
			res.Raw = r
			return res, nil
		},
	})

	Register(&Spec{
		Name:    "gkm",
		Summary: "Ghaffari–Kuhn–Maus STOC'17 baseline (packing or covering by problem)",
		Caps:    Capabilities{Kind: KindILP, Seeded: true},
		Defs:    ilpDefs("mis"),
		Run: func(ctx context.Context, g *graph.Graph, p Params) (*Result, error) {
			d := decoder{p: p}
			inst, _, err := buildInstance(g, &d, "mis")
			if err != nil {
				return nil, err
			}
			gp := gkm.Params{
				Epsilon: d.float("eps", 0.25),
				NTilde:  d.int("ntilde", 0),
				Seed:    d.uint("seed", 1),
				Scale:   d.float("scale", 0),
			}
			if d.err != nil {
				return nil, d.err
			}
			var r *gkm.Result
			if inst.Kind() == ilp.Packing {
				r, err = gkm.SolvePackingCtx(ctx, inst, gp)
			} else {
				r, err = gkm.SolveCoveringCtx(ctx, inst, gp)
			}
			if err != nil {
				return nil, err
			}
			res := ilpResult(inst, r.Solution, r.Value, r.Rounds, r.Exact)
			res.metric("colors", float64(r.Colors))
			res.metric("horizon", float64(r.Horizon))
			res.Raw = r
			return res, nil
		},
	})

	Register(&Spec{
		Name:    "solve",
		Aliases: []string{"localsolve"},
		Summary: "centralized local-solver dispatcher on the whole graph (exact baseline)",
		Caps:    Capabilities{Kind: KindILP},
		Defs: []ParamDef{
			{Key: "problem", Kind: String, Default: "mis", Doc: "mis | vc | mds | matching | kdom"},
			{Key: "k", Kind: Int, Default: "2", Doc: "distance for problem=kdom"},
			{Key: "maxexact", Kind: Int, Default: "0", Doc: "branch-and-bound size cap (0 = default 30)"},
			{Key: "greedy", Kind: Bool, Default: "false", Doc: "force the greedy fallback"},
		},
		Run: func(ctx context.Context, g *graph.Graph, p Params) (*Result, error) {
			d := decoder{p: p}
			inst, _, err := buildInstance(g, &d, "mis")
			if err != nil {
				return nil, err
			}
			opt := solve.Options{
				MaxExactVars: d.int("maxexact", 0),
				ForceGreedy:  d.bool("greedy", false),
			}
			if d.err != nil {
				return nil, d.err
			}
			all := make([]int32, inst.NumVars())
			for i := range all {
				all[i] = int32(i)
			}
			var sol ilp.Solution
			var val int64
			var m solve.Method
			if inst.Kind() == ilp.Packing {
				sol, val, m, err = solve.PackingLocalCtx(ctx, inst, all, opt)
			} else {
				sol, val, m, err = solve.CoveringLocalCtx(ctx, inst, all, opt)
			}
			if err != nil {
				return nil, err
			}
			res := ilpResult(inst, sol, val, 0, m.Exact())
			res.metric("method", float64(m))
			return res, nil
		},
	})
}
