package algo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ParamKind types a parameter value.
type ParamKind int

const (
	// Float is a float64 parameter (canonical form: strconv %g).
	Float ParamKind = iota + 1
	// Int is an int parameter.
	Int
	// Uint is a uint64 parameter (seeds).
	Uint
	// Bool is a boolean parameter ("true"/"false").
	Bool
	// String is a free-form token (no spaces).
	String
)

// ParamDef declares one parameter of an algorithm: its key, type, default
// (as a string, exactly as a user would write it), and documentation. The
// declaration order of a Spec's Defs is the canonical cache-key order.
type ParamDef struct {
	Key     string
	Kind    ParamKind
	Default string
	Doc     string
	// NoCache excludes the parameter from cache keys: parallelism knobs
	// (worker counts) that cannot change the result must share cache slots
	// across values.
	NoCache bool
}

// canonical parses raw under the def's kind and reformats it canonically,
// so "0.30", ".3", and "0.3" all key alike. An empty raw is a parse error
// (the caller substitutes the default only when the key is absent, so
// "eps=" fails here exactly like it fails in the runners' decoders).
func (d ParamDef) canonical(raw string) (string, error) {
	switch d.Kind {
	case Float:
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return "", fmt.Errorf("param %s: %w", d.Key, err)
		}
		return strconv.FormatFloat(f, 'g', -1, 64), nil
	case Int:
		i, err := strconv.Atoi(raw)
		if err != nil {
			return "", fmt.Errorf("param %s: %w", d.Key, err)
		}
		return strconv.Itoa(i), nil
	case Uint:
		u, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			return "", fmt.Errorf("param %s: %w", d.Key, err)
		}
		return strconv.FormatUint(u, 10), nil
	case Bool:
		b, err := strconv.ParseBool(raw)
		if err != nil {
			return "", fmt.Errorf("param %s: %w", d.Key, err)
		}
		return strconv.FormatBool(b), nil
	case String:
		return raw, nil
	default:
		return "", fmt.Errorf("param %s: unknown kind %d", d.Key, int(d.Kind))
	}
}

// Params is a flat key=value parameter bag: the uniform currency between
// trace lines, CLI flags, and the typed algorithm entry points. Values are
// kept as strings and decoded by the runner against its Spec's defaults.
type Params map[string]string

// ParseParams parses "key=value" tokens (trace-line or flag style) into a
// Params bag. Duplicate keys are an error.
func ParseParams(tokens []string) (Params, error) {
	p := make(Params, len(tokens))
	for _, tok := range tokens {
		k, v, ok := strings.Cut(tok, "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("bad param token %q (want key=value)", tok)
		}
		if _, dup := p[k]; dup {
			return nil, fmt.Errorf("duplicate param %q", k)
		}
		p[k] = v
	}
	return p, nil
}

// ParseParamString splits a whitespace-separated "k=v k=v" string.
func ParseParamString(s string) (Params, error) {
	return ParseParams(strings.Fields(s))
}

// String renders the bag as sorted "k=v" tokens (for error messages and
// traces; cache keys use Spec.CacheKey instead).
func (p Params) String() string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + p[k]
	}
	return strings.Join(parts, " ")
}

// Clone returns a copy of the bag.
func (p Params) Clone() Params {
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// decoder reads typed values out of a Params bag, accumulating the first
// error; runners decode all their parameters and then check err once.
type decoder struct {
	p   Params
	err error
}

func (d *decoder) raw(key, def string) string {
	if v, ok := d.p[key]; ok {
		return v
	}
	return def
}

func (d *decoder) float(key string, def float64) float64 {
	v, ok := d.p[key]
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil && d.err == nil {
		d.err = fmt.Errorf("param %s: %w", key, err)
	}
	return f
}

func (d *decoder) int(key string, def int) int {
	v, ok := d.p[key]
	if !ok {
		return def
	}
	i, err := strconv.Atoi(v)
	if err != nil && d.err == nil {
		d.err = fmt.Errorf("param %s: %w", key, err)
	}
	return i
}

func (d *decoder) uint(key string, def uint64) uint64 {
	v, ok := d.p[key]
	if !ok {
		return def
	}
	u, err := strconv.ParseUint(v, 10, 64)
	if err != nil && d.err == nil {
		d.err = fmt.Errorf("param %s: %w", key, err)
	}
	return u
}

func (d *decoder) bool(key string, def bool) bool {
	v, ok := d.p[key]
	if !ok {
		return def
	}
	b, err := strconv.ParseBool(v)
	if err != nil && d.err == nil {
		d.err = fmt.Errorf("param %s: %w", key, err)
	}
	return b
}
