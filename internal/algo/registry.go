// Package algo is the unified algorithm registry: one name-indexed serving
// surface over every algorithm family in the reproduction. Each registered
// Spec maps a name (plus aliases) to a typed runner
//
//	Run(ctx, *graph.Graph, Params) (*Result, error)
//
// with declared parameters (flag- and trace-string-friendly key=value
// bags), capability metadata (weighted? seeded? worker pool?), and a
// uniform Result envelope (clusters, colors, rounds, objective value,
// quality metrics, timing). The engine, the HTTP serving layer
// (internal/server), the CLIs, and the experiment harness all invoke
// algorithms through this registry, so every family is servable,
// traceable, and deadline-bounded: runners thread their context through
// the compute layers, which poll it in their outer phase loops — the same
// plumbing that lets a disconnected HTTP client cancel its computation.
//
// Cache keys: Spec.CacheKey canonicalizes a parameter bag into a stable
// "name|k=v|..." string in declaration order, excluding NoCache parameters
// (parallelism knobs that cannot change the result). internal/engine keys
// its result cache by (graph fingerprint, CacheKey).
package algo

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/ldd"
)

// Kind classifies a registered algorithm's output shape.
type Kind int

const (
	// KindDecomposition partitions (a subset of) the vertices into
	// low-diameter clusters (ClusterOf / Unclustered).
	KindDecomposition Kind = iota + 1
	// KindCover produces overlapping clusters (Clusters / multiplicity).
	KindCover
	// KindColoring is a colored network decomposition (ClusterOf+ColorOf).
	KindColoring
	// KindEdgeCut is an edge decomposition (ClusterOf + cut edges).
	KindEdgeCut
	// KindILP approximates a packing or covering ILP built on the graph
	// (Solution / Value).
	KindILP
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindDecomposition:
		return "decomposition"
	case KindCover:
		return "cover"
	case KindColoring:
		return "coloring"
	case KindEdgeCut:
		return "edge-cut"
	case KindILP:
		return "ilp"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Capabilities is the machine-readable metadata of a Spec.
type Capabilities struct {
	// Kind is the output shape.
	Kind Kind
	// Seeded reports whether a seed parameter drives the randomness
	// (seeded runs are deterministic for a fixed seed).
	Seeded bool
	// Weighted reports whether the algorithm consumes vertex weights.
	Weighted bool
	// Workers reports whether the algorithm fans out across the worker
	// pool (a workers parameter, excluded from cache keys).
	Workers bool
	// Repairable reports whether the family supports delta repair: a
	// cached result computed on an ancestor graph can be patched onto a
	// descendant differing by a few edges instead of recomputed (derived
	// from Spec.Repair at registration).
	Repairable bool
}

// Runner is the uniform entry signature of every registered algorithm.
type Runner func(ctx context.Context, g *graph.Graph, p Params) (*Result, error)

// Repairer delta-repairs a cached result onto gv: old was computed (under
// the same parameters p) on an ancestor graph that differs from gv by
// delta. Implementations return a fresh envelope satisfying the same
// quality invariants as a full run, or an error wrapping
// ldd.ErrRepairFallback when only a full recompute can. The graph arrives
// as a read view so overlay-backed store snapshots repair without
// materializing a CSR; repairs that genuinely need one (re-carves)
// materialize it themselves via the view.
type Repairer func(ctx context.Context, gv graph.View, old *Result, p Params, delta ldd.EdgeDelta) (*Result, error)

// Spec is one registry entry.
type Spec struct {
	// Name is the canonical registry name (lowercase, no spaces).
	Name string
	// Aliases are accepted alternative names (legacy CLI spellings).
	Aliases []string
	// Summary is a one-line description for the generated docs table.
	Summary string
	// Caps is the capability metadata.
	Caps Capabilities
	// Defs declares the parameters in canonical (cache-key) order.
	Defs []ParamDef
	// Run is the typed runner.
	Run Runner
	// Repair, when non-nil, is the family's delta-repair entry point
	// (invoked through RepairSpec; sets Caps.Repairable).
	Repair Repairer
}

// Validate rejects parameter keys the spec does not declare, so typos in
// traces and flags fail loudly instead of silently running defaults.
func (s *Spec) Validate(p Params) error {
	for k := range p {
		if s.def(k) == nil {
			return fmt.Errorf("algo %s: unknown param %q (have %s)", s.Name, k, s.paramKeys())
		}
	}
	return nil
}

// Has reports whether the spec declares a parameter named key; CLIs use it
// to forward only the flags an algorithm understands.
func (s *Spec) Has(key string) bool { return s.def(key) != nil }

func (s *Spec) def(key string) *ParamDef {
	for i := range s.Defs {
		if s.Defs[i].Key == key {
			return &s.Defs[i]
		}
	}
	return nil
}

func (s *Spec) paramKeys() string {
	keys := make([]string, len(s.Defs))
	for i, d := range s.Defs {
		keys[i] = d.Key
	}
	return strings.Join(keys, ",")
}

// CacheKey canonicalizes p into the stable cache-key string
// "name|k=v|...": every cacheable parameter in declaration order, with
// defaults applied and values reformatted canonically, so equal-result
// requests collide regardless of spelling. Unknown keys are rejected.
func (s *Spec) CacheKey(p Params) (string, error) {
	if err := s.Validate(p); err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(s.Name)
	for _, d := range s.Defs {
		if d.NoCache {
			continue
		}
		raw, present := p[d.Key]
		if !present {
			raw = d.Default
		}
		v, err := d.canonical(raw)
		if err != nil {
			return "", fmt.Errorf("algo %s: %w", s.Name, err)
		}
		b.WriteByte('|')
		b.WriteString(d.Key)
		b.WriteByte('=')
		b.WriteString(v)
	}
	return b.String(), nil
}

// --- Registry --------------------------------------------------------------

var (
	specs  []*Spec
	byName = map[string]*Spec{}
)

// Register adds a Spec to the registry; duplicate names panic (registration
// happens at init time).
func Register(s *Spec) {
	s.Caps.Repairable = s.Repair != nil
	names := append([]string{s.Name}, s.Aliases...)
	for _, n := range names {
		if _, dup := byName[n]; dup {
			panic("algo: duplicate registration of " + n)
		}
		byName[n] = s
	}
	specs = append(specs, s)
}

// Get resolves a name or alias.
func Get(name string) (*Spec, bool) {
	s, ok := byName[name]
	return s, ok
}

// Names returns the canonical names in sorted order.
func Names() []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	sort.Strings(out)
	return out
}

// All returns the registered specs sorted by name.
func All() []*Spec {
	out := append([]*Spec(nil), specs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Run resolves name, validates p, and executes the runner, stamping the
// envelope with the algorithm name, canonical key, kind, and wall time.
// The context is threaded through the whole compute stack: cancel it (or
// give it a deadline) and the run returns ctx.Err() promptly.
func Run(ctx context.Context, name string, g *graph.Graph, p Params) (*Result, error) {
	s, ok := Get(name)
	if !ok {
		return nil, fmt.Errorf("algo: unknown algorithm %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return s.RunSpec(ctx, g, p)
}

// RunSpec is Run for an already-resolved Spec.
func (s *Spec) RunSpec(ctx context.Context, g *graph.Graph, p Params) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("algo %s: nil graph", s.Name)
	}
	if err := s.Validate(p); err != nil {
		return nil, err
	}
	key, err := s.CacheKey(p)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := s.Run(ctx, g, p)
	if err != nil {
		return nil, err
	}
	res.Algorithm = s.Name
	res.Key = key
	res.Kind = s.Caps.Kind
	res.Elapsed = time.Since(start)
	return res, nil
}

// RepairSpec is RunSpec for the delta-repair path: it validates p, invokes
// the family's Repairer against the cached envelope old, and stamps the
// repaired envelope identically to a full run (same Algorithm/Key/Kind, a
// fresh Elapsed covering only the repair work). Families without a
// Repairer return an error wrapping ldd.ErrRepairFallback.
func (s *Spec) RepairSpec(ctx context.Context, gv graph.View, old *Result, p Params, delta ldd.EdgeDelta) (*Result, error) {
	if s.Repair == nil {
		return nil, fmt.Errorf("%w: algo %s is not repairable", ldd.ErrRepairFallback, s.Name)
	}
	if gv == nil {
		return nil, fmt.Errorf("algo %s: nil graph view", s.Name)
	}
	if old == nil {
		return nil, fmt.Errorf("%w: algo %s: nil cached result", ldd.ErrRepairFallback, s.Name)
	}
	if err := s.Validate(p); err != nil {
		return nil, err
	}
	key, err := s.CacheKey(p)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := s.Repair(ctx, gv, old, p, delta)
	if err != nil {
		return nil, err
	}
	res.Algorithm = s.Name
	res.Key = key
	res.Kind = s.Caps.Kind
	res.Elapsed = time.Since(start)
	return res, nil
}
