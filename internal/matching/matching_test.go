package matching

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/xrand"
)

// bruteMaxMatching enumerates all subsets of edges; exponential, tiny n only.
func bruteMaxMatching(g *graph.Graph) int {
	edges := g.EdgeList()
	best := 0
	var rec func(i int, used []bool, count int)
	rec = func(i int, used []bool, count int) {
		if count > best {
			best = count
		}
		if i == len(edges) {
			return
		}
		rec(i+1, used, count)
		u, v := edges[i][0], edges[i][1]
		if !used[u] && !used[v] {
			used[u], used[v] = true, true
			rec(i+1, used, count+1)
			used[u], used[v] = false, false
		}
	}
	rec(0, make([]bool, g.N()), 0)
	return best
}

func TestCompleteBipartite(t *testing.T) {
	g := gen.CompleteBipartite(4, 7)
	r := BipartiteAuto(g)
	if r == nil {
		t.Fatal("bipartite graph rejected")
	}
	if r.Size != 4 {
		t.Fatalf("matching size = %d, want 4", r.Size)
	}
	if !VerifyMatching(g, r.Mate) {
		t.Fatal("invalid matching")
	}
	if len(r.MinVertexCover) != 4 {
		t.Fatalf("cover size = %d, want 4 (König)", len(r.MinVertexCover))
	}
	if len(r.MaxIndependentSet) != 7 {
		t.Fatalf("MIS size = %d, want 7", len(r.MaxIndependentSet))
	}
	if !VerifyVertexCover(g, r.MinVertexCover) {
		t.Fatal("cover invalid")
	}
	if !VerifyIndependentSet(g, r.MaxIndependentSet) {
		t.Fatal("independent set invalid")
	}
}

func TestEvenCycle(t *testing.T) {
	g := gen.Cycle(10)
	r := BipartiteAuto(g)
	if r == nil || r.Size != 5 {
		t.Fatalf("C10 matching = %v", r)
	}
	if len(r.MaxIndependentSet) != 5 {
		t.Fatalf("C10 MIS = %d", len(r.MaxIndependentSet))
	}
}

func TestPath(t *testing.T) {
	g := gen.Path(7)
	r := BipartiteAuto(g)
	if r.Size != 3 {
		t.Fatalf("P7 matching = %d", r.Size)
	}
	if len(r.MaxIndependentSet) != 4 {
		t.Fatalf("P7 MIS = %d", len(r.MaxIndependentSet))
	}
}

func TestNonBipartiteRejected(t *testing.T) {
	if BipartiteAuto(gen.Cycle(5)) != nil {
		t.Fatal("odd cycle accepted")
	}
	// Explicit bad coloring on an even cycle.
	g := gen.Cycle(4)
	side := []int8{0, 0, 1, 1}
	if Bipartite(g, side) != nil {
		t.Fatal("invalid coloring accepted")
	}
}

func TestIgnoredVertices(t *testing.T) {
	g := gen.Path(5)
	// Remove the middle vertex; two disjoint edges remain.
	side := []int8{0, 1, -1, 0, 1}
	r := Bipartite(g, side)
	if r == nil {
		t.Fatal("masked graph rejected")
	}
	if r.Size != 2 {
		t.Fatalf("masked matching = %d", r.Size)
	}
	for _, v := range r.MaxIndependentSet {
		if v == 2 {
			t.Fatal("ignored vertex appeared in output")
		}
	}
}

func TestEmptyAndEdgeless(t *testing.T) {
	g := graph.NewBuilder(4).Build()
	r := BipartiteAuto(g)
	if r.Size != 0 {
		t.Fatal("edgeless matching nonzero")
	}
	if len(r.MaxIndependentSet) != 4 {
		t.Fatal("edgeless MIS should be everything")
	}
	if len(r.MinVertexCover) != 0 {
		t.Fatal("edgeless cover should be empty")
	}
}

func TestAgainstBruteForce(t *testing.T) {
	rng := xrand.New(77)
	for trial := 0; trial < 60; trial++ {
		// Random bipartite graph with sides up to 5+5.
		a := 2 + rng.Intn(4)
		b := 2 + rng.Intn(4)
		gb := graph.NewBuilder(a + b)
		for i := 0; i < a; i++ {
			for j := 0; j < b; j++ {
				if rng.Bernoulli(0.4) {
					gb.AddEdge(i, a+j)
				}
			}
		}
		g := gb.Build()
		r := BipartiteAuto(g)
		if r == nil {
			t.Fatal("bipartite graph rejected")
		}
		want := bruteMaxMatching(g)
		if r.Size != want {
			t.Fatalf("trial %d: HK = %d, brute = %d", trial, r.Size, want)
		}
		// König duality: |cover| == matching size; complement independent.
		if len(r.MinVertexCover) != want {
			t.Fatalf("trial %d: cover %d != matching %d", trial, len(r.MinVertexCover), want)
		}
		if !VerifyMatching(g, r.Mate) || !VerifyVertexCover(g, r.MinVertexCover) ||
			!VerifyIndependentSet(g, r.MaxIndependentSet) {
			t.Fatalf("trial %d: verification failed", trial)
		}
		if len(r.MaxIndependentSet)+len(r.MinVertexCover) != g.N() {
			t.Fatalf("trial %d: MIS + cover != n", trial)
		}
	}
}

func TestGreedyMaximal(t *testing.T) {
	g := gen.Cycle(9)
	mate, size := GreedyMaximal(g)
	if !VerifyMatching(g, mate) {
		t.Fatal("greedy matching invalid")
	}
	if size < 3 { // maximal matching of C9 has >= ceil(9/3) = 3 edges
		t.Fatalf("greedy size = %d", size)
	}
	// Maximality: no edge has both endpoints free.
	free := make([]bool, g.N())
	for v := range free {
		free[v] = mate[v] == -1
	}
	g.Edges(func(u, v int) {
		if free[u] && free[v] {
			t.Fatalf("greedy not maximal at edge %d-%d", u, v)
		}
	})
}

func TestVerifyMatchingRejectsBad(t *testing.T) {
	g := gen.Path(4)
	mate := []int32{1, 0, -1, -1}
	if !VerifyMatching(g, mate) {
		t.Fatal("valid matching rejected")
	}
	mate = []int32{2, -1, 0, -1} // 0-2 not an edge
	if VerifyMatching(g, mate) {
		t.Fatal("non-edge matching accepted")
	}
	mate = []int32{1, 2, 1, -1} // asymmetric
	if VerifyMatching(g, mate) {
		t.Fatal("asymmetric matching accepted")
	}
}

func TestLargeGrid(t *testing.T) {
	// 40x40 grid: perfect matching exists (1600 even), MIS = 800.
	g := gen.Grid(40, 40)
	r := BipartiteAuto(g)
	if r.Size != 800 {
		t.Fatalf("grid matching = %d, want 800", r.Size)
	}
	if len(r.MaxIndependentSet) != 800 {
		t.Fatalf("grid MIS = %d, want 800", len(r.MaxIndependentSet))
	}
}

func BenchmarkHopcroftKarpGrid(b *testing.B) {
	g := gen.Grid(60, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BipartiteAuto(g)
	}
}
