// Package matching provides polynomial-time exact optimizers on bipartite
// graphs: Hopcroft–Karp maximum matching, the König construction of a
// minimum vertex cover from a maximum matching, and (via complementation) a
// maximum independent set. These are the ground-truth oracles for the
// approximation-ratio experiments: on bipartite inputs the distributed
// algorithms can be scored against an exact optimum at n = 10^4+ instead of
// the tiny instances an exponential solver would allow. The package also
// provides a greedy maximal matching used as a baseline.
package matching

import (
	"repro/internal/graph"
)

// Result holds a maximum matching of a bipartite graph together with the
// König vertex cover and the complementary maximum independent set.
type Result struct {
	// Mate[v] is the matched partner of v, or -1.
	Mate []int32
	// Size is the number of matched edges.
	Size int
	// MinVertexCover is a minimum vertex cover (König).
	MinVertexCover []int32
	// MaxIndependentSet is V minus the cover — a maximum independent set.
	MaxIndependentSet []int32
}

// Bipartite runs Hopcroft–Karp on g with the given 2-coloring (side[v] in
// {0,1}); vertices with side[v] < 0 are ignored entirely (treated as
// absent). It returns nil if side is not a proper 2-coloring of the present
// subgraph.
func Bipartite(g *graph.Graph, side []int8) *Result {
	n := g.N()
	// Validate the coloring on present vertices.
	for u := 0; u < n; u++ {
		if side[u] < 0 {
			continue
		}
		for _, w := range g.Neighbors(u) {
			if side[w] >= 0 && side[w] == side[u] {
				return nil
			}
		}
	}
	const inf = int32(1) << 30
	mate := make([]int32, n)
	for i := range mate {
		mate[i] = -1
	}
	dist := make([]int32, n)
	// Hopcroft–Karp: repeat { BFS layering from free left vertices; DFS
	// augment along shortest paths } until no augmenting path exists.
	var queue []int32
	var bfs func() bool
	bfs = func() bool {
		queue = queue[:0]
		for u := 0; u < n; u++ {
			if side[u] != 0 {
				continue
			}
			if mate[u] == -1 {
				dist[u] = 0
				queue = append(queue, int32(u))
			} else {
				dist[u] = inf
			}
		}
		found := false
		for i := 0; i < len(queue); i++ {
			u := queue[i]
			for _, w := range g.Neighbors(int(u)) {
				if side[w] != 1 {
					continue
				}
				next := mate[w]
				if next == -1 {
					found = true
				} else if dist[next] == inf {
					dist[next] = dist[u] + 1
					queue = append(queue, next)
				}
			}
		}
		return found
	}
	var dfs func(u int32) bool
	dfs = func(u int32) bool {
		for _, w := range g.Neighbors(int(u)) {
			if side[w] != 1 {
				continue
			}
			next := mate[w]
			if next == -1 || (dist[next] == dist[u]+1 && dfs(next)) {
				mate[u] = w
				mate[w] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}
	size := 0
	for bfs() {
		for u := 0; u < n; u++ {
			if side[u] == 0 && mate[u] == -1 && dfs(int32(u)) {
				size++
			}
		}
	}

	// König: Z = free left vertices plus everything reachable by alternating
	// paths (unmatched edge left->right, matched edge right->left).
	// Min cover = (Left \ Z) ∪ (Right ∩ Z).
	inZ := make([]bool, n)
	queue = queue[:0]
	for u := 0; u < n; u++ {
		if side[u] == 0 && mate[u] == -1 {
			inZ[u] = true
			queue = append(queue, int32(u))
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(int(u)) {
			if side[w] != 1 || inZ[w] || mate[u] == w {
				continue
			}
			inZ[w] = true
			if m := mate[w]; m != -1 && !inZ[m] {
				inZ[m] = true
				queue = append(queue, m)
			}
		}
	}
	var cover, indep []int32
	for v := 0; v < n; v++ {
		if side[v] < 0 {
			continue
		}
		inCover := (side[v] == 0 && !inZ[v]) || (side[v] == 1 && inZ[v])
		if inCover {
			cover = append(cover, int32(v))
		} else {
			indep = append(indep, int32(v))
		}
	}
	return &Result{Mate: mate, Size: size, MinVertexCover: cover, MaxIndependentSet: indep}
}

// BipartiteAuto 2-colors g and runs Bipartite; returns nil when g is not
// bipartite.
func BipartiteAuto(g *graph.Graph) *Result {
	ok, side := g.IsBipartite()
	if !ok {
		return nil
	}
	return Bipartite(g, side)
}

// GreedyMaximal returns a maximal matching built by a greedy pass over the
// edges (a 1/2-approximate maximum matching on any graph). order can be nil
// for the natural edge order.
func GreedyMaximal(g *graph.Graph) (mate []int32, size int) {
	mate = make([]int32, g.N())
	for i := range mate {
		mate[i] = -1
	}
	g.Edges(func(u, v int) {
		if mate[u] == -1 && mate[v] == -1 {
			mate[u] = int32(v)
			mate[v] = int32(u)
			size++
		}
	})
	return mate, size
}

// VerifyMatching reports whether mate encodes a valid matching of g.
func VerifyMatching(g *graph.Graph, mate []int32) bool {
	for v := 0; v < g.N(); v++ {
		m := mate[v]
		if m == -1 {
			continue
		}
		if int(m) == v || m < 0 || int(m) >= g.N() {
			return false
		}
		if mate[m] != int32(v) {
			return false
		}
		if !g.HasEdge(v, int(m)) {
			return false
		}
	}
	return true
}

// VerifyVertexCover reports whether the set covers every edge of g.
func VerifyVertexCover(g *graph.Graph, cover []int32) bool {
	in := make([]bool, g.N())
	for _, v := range cover {
		in[v] = true
	}
	ok := true
	g.Edges(func(u, v int) {
		if !in[u] && !in[v] {
			ok = false
		}
	})
	return ok
}

// VerifyIndependentSet reports whether the set is independent in g.
func VerifyIndependentSet(g *graph.Graph, set []int32) bool {
	in := make([]bool, g.N())
	for _, v := range set {
		in[v] = true
	}
	ok := true
	g.Edges(func(u, v int) {
		if in[u] && in[v] {
			ok = false
		}
	})
	return ok
}
