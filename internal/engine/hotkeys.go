package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/algo"
	"repro/internal/graphio"
)

// Hot-key persistence. Cache keys are canonical strings ("name|k=v|..."
// from Spec.CacheKey), so the hottest entries of the LRU can be written out
// as plain text at drain time and replayed through the ordinary Run path at
// boot — the cache warms itself with exactly the results the last process
// was serving, with no serialized result values to version or trust.

// HotKeys returns up to max algorithm cache keys with results currently
// cached for snapshot fingerprint fp, hottest first. Per-shard LRU order is
// exact; across shards the lists are interleaved round-robin (a global
// recency order is not tracked). max <= 0 means no limit.
func (e *Engine) HotKeys(fp graphio.Fingerprint, max int) []string {
	perShard := make([][]cacheKey, len(e.shards))
	total := 0
	for i, sh := range e.shards {
		sh.mu.Lock()
		for _, k := range sh.cache.keysMRU(nil) {
			if k.fp == fp {
				perShard[i] = append(perShard[i], k)
			}
		}
		sh.mu.Unlock()
		total += len(perShard[i])
	}
	if max <= 0 || max > total {
		max = total
	}
	out := make([]string, 0, max)
	for len(out) < max {
		for i := range perShard {
			if len(perShard[i]) == 0 || len(out) == max {
				continue
			}
			out = append(out, perShard[i][0].key)
			perShard[i] = perShard[i][1:]
		}
	}
	return out
}

// ParseCacheKey splits a canonical cache key back into the algorithm name
// and parameter bag that produced it, using the same registry that minted
// the key. Unknown algorithms and malformed tokens are errors, so stale or
// hand-edited hot-key files degrade to skipped entries, never to panics.
func ParseCacheKey(key string) (string, algo.Params, error) {
	parts := strings.Split(key, "|")
	name := parts[0]
	if _, ok := algo.Get(name); !ok {
		return "", nil, fmt.Errorf("engine: hot key names unknown algorithm %q", name)
	}
	p, err := algo.ParseParams(parts[1:])
	if err != nil {
		return "", nil, fmt.Errorf("engine: hot key %q: %w", key, err)
	}
	return name, p, nil
}

// Prewarm replays persisted hot keys through Run against src's current
// snapshot, filling the cache with the results a restarted server is most
// likely to be asked for first. Keys that no longer parse (renamed
// algorithm, removed parameter) are skipped; computation errors are skipped
// too (prewarming is best-effort). Only a context cancellation aborts the
// sweep. Returns how many keys now have a cached result.
func (e *Engine) Prewarm(ctx context.Context, src Source, keys []string) (int, error) {
	warmed := 0
	for _, k := range keys {
		if err := ctx.Err(); err != nil {
			return warmed, err
		}
		name, p, err := ParseCacheKey(k)
		if err != nil {
			continue
		}
		if _, err := e.Run(ctx, src, name, p); err != nil {
			if ctxErr(err) {
				return warmed, err
			}
			continue
		}
		warmed++
	}
	return warmed, nil
}

// hotKeysFile is the on-disk hot-key list. The fingerprint records which
// snapshot the keys were hot against; it is informational (prewarming
// replays against whatever snapshot the store recovered, which is the same
// one unless the WAL lost a tail).
type hotKeysFile struct {
	Version     int      `json:"version"`
	Fingerprint string   `json:"fingerprint"`
	Keys        []string `json:"keys"`
}

// SaveHotKeys atomically writes a hot-key list next to the store's durable
// state (temp + fsync + rename, like every other durable artifact).
func SaveHotKeys(path string, fp graphio.Fingerprint, keys []string) error {
	return graphio.WriteFileAtomic(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(hotKeysFile{Version: 1, Fingerprint: fp.String(), Keys: keys})
	})
}

// LoadHotKeys reads a hot-key list written by SaveHotKeys, returning the
// keys and the fingerprint they were recorded against.
func LoadHotKeys(path string) ([]string, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var f hotKeysFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, "", fmt.Errorf("engine: hot keys %s: %w", path, err)
	}
	if f.Version != 1 {
		return nil, "", fmt.Errorf("engine: hot keys %s: version %d not supported", path, f.Version)
	}
	return f.Keys, f.Fingerprint, nil
}
