package engine

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/graph/gen"
	"repro/internal/graphio"
	"repro/internal/ilp"
	"repro/internal/ldd"
	"repro/internal/netdecomp"
	"repro/internal/problems"
	"repro/internal/solve"
	"repro/internal/xrand"
)

// bg is the uncancellable context of the plain request-path tests.
var bg = context.Background()

func testParams() ldd.Params {
	return ldd.Params{Epsilon: 0.3, Seed: 11, Scale: 0.05}
}

func TestSingleflight64Goroutines(t *testing.T) {
	g := gen.GNP(600, 8.0/600, xrand.New(5))
	e := New(Options{})
	h := e.Register(g)
	p := testParams()

	const goroutines = 64
	results := make([]*ldd.Decomposition, goroutines)
	errs := make([]error, goroutines)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			results[i], errs[i] = e.ChangLi(bg, h, p)
		}(i)
	}
	start.Done()
	done.Wait()

	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("goroutine %d got a different result instance", i)
		}
	}
	st := e.Stats()
	if st.Computations != 1 {
		t.Fatalf("64 identical requests ran %d computations, want exactly 1", st.Computations)
	}
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	if st.Hits+st.Dedup != goroutines-1 {
		t.Fatalf("hits+dedup = %d+%d, want %d", st.Hits, st.Dedup, goroutines-1)
	}

	// Bit-identical to a direct run with the same seed (and to a direct
	// run with a different worker count, which shares the cache key).
	direct := ldd.ChangLi(g, p)
	pw := p
	pw.Workers = 3
	if got, err := e.ChangLi(bg, h, pw); err != nil || got != results[0] {
		t.Fatalf("Workers-only param change missed the cache: %v %v", got, err)
	}
	if len(direct.ClusterOf) != len(results[0].ClusterOf) {
		t.Fatal("length mismatch vs direct run")
	}
	for v := range direct.ClusterOf {
		if direct.ClusterOf[v] != results[0].ClusterOf[v] {
			t.Fatalf("vertex %d: engine %d != direct %d", v, results[0].ClusterOf[v], direct.ClusterOf[v])
		}
	}
}

func TestCacheHitDoesZeroWork(t *testing.T) {
	g := gen.Cycle(400)
	e := New(Options{})
	h := e.Register(g)
	p := testParams()
	if _, err := e.ChangLi(bg, h, p); err != nil {
		t.Fatal(err)
	}
	before := e.Stats()
	for i := 0; i < 100; i++ {
		if _, err := e.ChangLi(bg, h, p); err != nil {
			t.Fatal(err)
		}
	}
	after := e.Stats()
	if after.Computations != before.Computations {
		t.Fatalf("cache hits ran %d extra computations", after.Computations-before.Computations)
	}
	if after.Hits != before.Hits+100 {
		t.Fatalf("hits went %d -> %d, want +100", before.Hits, after.Hits)
	}
}

func TestDistinctParamsAndAlgorithmsMiss(t *testing.T) {
	g := gen.Grid(12, 12)
	e := New(Options{})
	h := e.Register(g)
	p := testParams()
	p2 := p
	p2.Seed++
	if _, err := e.ChangLi(bg, h, p); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ChangLi(bg, h, p2); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SparseCover(bg, h, ldd.ENParams{Lambda: 0.5, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.NetDecomp(bg, h, netdecomp.Params{Lambda: 0.5, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Computations != 4 {
		t.Fatalf("4 distinct requests ran %d computations", st.Computations)
	}
	// All four now served from cache.
	e.ChangLi(bg, h, p)
	e.ChangLi(bg, h, p2)
	e.SparseCover(bg, h, ldd.ENParams{Lambda: 0.5, Seed: 2})
	e.NetDecomp(bg, h, netdecomp.Params{Lambda: 0.5, Seed: 3})
	if st := e.Stats(); st.Computations != 4 {
		t.Fatalf("cache round ran %d computations, want 4", st.Computations)
	}
}

func TestLRUEviction(t *testing.T) {
	g := gen.Cycle(200)
	// One shard pins global LRU order; multi-shard eviction is covered by
	// TestPerShardEviction.
	e := New(Options{Capacity: 2, Shards: 1})
	h := e.Register(g)
	p := testParams()
	for seed := uint64(0); seed < 3; seed++ {
		pp := p
		pp.Seed = seed
		if _, err := e.ChangLi(bg, h, pp); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// seed 0 was evicted; re-requesting recomputes it.
	pp := p
	pp.Seed = 0
	if _, err := e.ChangLi(bg, h, pp); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Computations != 4 {
		t.Fatalf("computations = %d, want 4 after eviction refill", st.Computations)
	}
	// seed 2 is still resident (most recently used before the refill).
	pp.Seed = 2
	e.ChangLi(bg, h, pp)
	if st := e.Stats(); st.Computations != 4 {
		t.Fatalf("resident entry recomputed (computations = %d)", st.Computations)
	}
}

func TestRegisterCollapsesEqualGraphs(t *testing.T) {
	// The same graph loaded through two different formats must share one
	// cache: serialize through edge-list and DIMACS and re-read.
	g := gen.GNP(150, 0.06, xrand.New(9))
	var el, dm bytes.Buffer
	if err := graphio.Write(&el, graphio.EdgeList, g); err != nil {
		t.Fatal(err)
	}
	if err := graphio.Write(&dm, graphio.DIMACS, g); err != nil {
		t.Fatal(err)
	}
	g1, err := graphio.Read(&el, graphio.EdgeList)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := graphio.Read(strings.NewReader(dm.String()), graphio.DIMACS)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{})
	h1 := e.Register(g1)
	h2 := e.Register(g2)
	if h1.Fingerprint() != h2.Fingerprint() {
		t.Fatal("formats produced different fingerprints")
	}
	if h1.Graph() != h2.Graph() {
		t.Fatal("equal-fingerprint graphs not collapsed to one instance")
	}
	p := testParams()
	e.ChangLi(bg, h1, p)
	e.ChangLi(bg, h2, p)
	if st := e.Stats(); st.Computations != 1 {
		t.Fatalf("cross-handle requests ran %d computations, want 1", st.Computations)
	}
}

func TestClusterOfBatch(t *testing.T) {
	g := gen.Grid(10, 10)
	e := New(Options{})
	h := e.Register(g)
	p := testParams()
	d, err := e.ChangLi(bg, h, p)
	if err != nil {
		t.Fatal(err)
	}
	vs := []int32{0, 5, 99, 42}
	got, err := e.ClusterOf(bg, h, p, vs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vs {
		if got[i] != d.ClusterOf[v] {
			t.Fatalf("vertex %d: got cluster %d, want %d", v, got[i], d.ClusterOf[v])
		}
	}
	if _, err := e.ClusterOf(bg, h, p, []int32{100}); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
	if st := e.Stats(); st.Computations != 1 {
		t.Fatalf("batch query recomputed (computations = %d)", st.Computations)
	}
}

func TestBallsBatch(t *testing.T) {
	g := gen.GNP(300, 5.0/300, xrand.New(2))
	e := New(Options{})
	h := e.Register(g)
	vs := []int32{0, 17, 123, 299, 17}
	for _, workers := range []int{1, 4} {
		got, err := e.Balls(bg, h, vs, 2, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range vs {
			want := g.Ball(int(v), 2)
			if len(got[i]) != len(want) {
				t.Fatalf("workers=%d vertex %d: ball size %d != %d", workers, v, len(got[i]), len(want))
			}
			for j := range want {
				if got[i][j] != want[j] {
					t.Fatalf("workers=%d vertex %d: ball element %d mismatch", workers, v, j)
				}
			}
		}
	}
}

func TestBallsValidatesVertices(t *testing.T) {
	g := gen.Cycle(10)
	e := New(Options{})
	h := e.Register(g)
	for _, v := range []int32{-1, 10} {
		if _, err := e.Balls(bg, h, []int32{0, v}, 1, 2); err == nil {
			t.Fatalf("vertex %d accepted", v)
		}
	}
	if got, err := e.Balls(bg, h, nil, 1, 0); err != nil || len(got) != 0 {
		t.Fatalf("empty batch: %v %v", got, err)
	}
}

func TestUnregisterDropsGraphAndCache(t *testing.T) {
	g := gen.Cycle(100)
	e := New(Options{})
	h := e.Register(g)
	p := testParams()
	if _, err := e.ChangLi(bg, h, p); err != nil {
		t.Fatal(err)
	}
	e.Unregister(h)
	if st := e.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// The old handle still works; the result is recomputed and re-cached.
	if _, err := e.ChangLi(bg, h, p); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Computations != 2 {
		t.Fatalf("computations = %d, want 2 after unregister", st.Computations)
	}
	// A fresh registration no longer collapses onto the dropped instance.
	h2 := e.Register(gen.Cycle(100))
	if h2.Fingerprint() != h.Fingerprint() {
		t.Fatal("fingerprint changed")
	}
}

func TestLocalSolves(t *testing.T) {
	g := gen.GNP(200, 6.0/200, xrand.New(4))
	e := New(Options{})
	h := e.Register(g)
	p := testParams()

	for _, prob := range []problems.Problem{problems.MIS, problems.MinVertexCover} {
		inst, err := problems.Build(prob, g, nil)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := e.LocalSolves(bg, h, p, inst, solve.Options{}, 0)
		if err != nil {
			t.Fatalf("%s: %v", prob, err)
		}
		d, _ := e.ChangLi(bg, h, p)
		clusters := d.Clusters()
		if len(sol) != len(clusters) {
			t.Fatalf("%s: %d solves for %d clusters", prob, len(sol), len(clusters))
		}
		for c, cs := range sol {
			var wantVal int64
			var wantM solve.Method
			if inst.Kind() == ilp.Covering {
				_, wantVal, wantM, err = solve.CoveringLocal(inst, clusters[c], solve.Options{})
				if err != nil {
					t.Fatal(err)
				}
			} else {
				_, wantVal, wantM = solve.PackingLocal(inst, clusters[c], solve.Options{})
			}
			if cs.Value != wantVal || cs.Method != wantM {
				t.Fatalf("%s cluster %d: got (%d, %s), want (%d, %s)", prob, c, cs.Value, cs.Method, wantVal, wantM)
			}
		}
	}
	// One ChangLi underneath it all.
	if st := e.Stats(); st.Computations != 1 {
		t.Fatalf("local solves recomputed the decomposition (computations = %d)", st.Computations)
	}
	// Variable-count mismatch is rejected.
	bad, err := problems.Build(problems.MIS, gen.Cycle(7), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.LocalSolves(bg, h, p, bad, solve.Options{}, 0); err == nil {
		t.Fatal("instance/graph size mismatch accepted")
	}
}

func TestComputePanicBecomesError(t *testing.T) {
	e := New(Options{})
	key := cacheKey{key: "test|panic"}
	_, err := e.do(bg, key, func(context.Context) (any, error) { panic("kaboom") })
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic not surfaced as error: %v", err)
	}
	// The failed computation is not cached: a later request recomputes.
	v, err := e.do(bg, key, func(context.Context) (any, error) { return 7, nil })
	if err != nil || v.(int) != 7 {
		t.Fatalf("recovery request failed: %v %v", v, err)
	}
	if st := e.Stats(); st.Computations != 2 {
		t.Fatalf("computations = %d, want 2", st.Computations)
	}
}

func TestErrorsWrapNothingWeird(t *testing.T) {
	// Engine errors are plain wrapped errors, usable with errors.Is/As.
	e := New(Options{})
	_, err := e.do(bg, cacheKey{key: "x"}, func(context.Context) (any, error) { panic(errors.New("inner")) })
	if err == nil {
		t.Fatal("expected error")
	}
}
