package engine

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/algo"
	"repro/internal/graph/gen"
	"repro/internal/ldd"
	"repro/internal/store"
	"repro/internal/xrand"
)

var errVertexCount = errors.New("decomposition does not cover the snapshot")

// repairTestStore builds a store-backed engine with repair enabled over a
// GNP graph large enough that full recomputes dominate repair costs.
func repairTestStore(t *testing.T, o Options) (*Engine, StoreHandle, *store.Store) {
	t.Helper()
	g := gen.GNP(800, 6.0/800, xrand.New(7))
	st := store.New(g)
	e := New(o)
	return e, e.RegisterStore(st), st
}

func TestRepairHitAfterMutation(t *testing.T) {
	e, h, st := repairTestStore(t, Options{RepairK: 8})
	p := testParams()
	if _, err := e.ChangLi(bg, h, p); err != nil {
		t.Fatal(err)
	}
	if !st.AddEdge(1, 5) {
		t.Fatal("AddEdge failed")
	}
	d, err := e.ChangLi(bg, h, p)
	if err != nil {
		t.Fatal(err)
	}
	est := e.Stats()
	if est.RepairHits != 1 {
		t.Fatalf("RepairHits = %d, want 1 (stats %+v)", est.RepairHits, est)
	}
	if len(d.ClusterOf) != st.N() {
		t.Fatalf("repaired decomposition covers %d vertices, want %d", len(d.ClusterOf), st.N())
	}
	// The repaired result is cached under the new fingerprint: the next
	// request is an exact hit.
	if _, err := e.ChangLi(bg, h, p); err != nil {
		t.Fatal(err)
	}
	if est = e.Stats(); est.Hits != 1 {
		t.Fatalf("Hits = %d after repeat, want 1", est.Hits)
	}
}

func TestRepairDisabledByDefault(t *testing.T) {
	e, h, st := repairTestStore(t, Options{})
	p := testParams()
	if _, err := e.ChangLi(bg, h, p); err != nil {
		t.Fatal(err)
	}
	st.AddEdge(1, 5)
	if _, err := e.ChangLi(bg, h, p); err != nil {
		t.Fatal(err)
	}
	est := e.Stats()
	if est.RepairHits != 0 || est.RepairFallbacks != 0 {
		t.Fatalf("repair counters moved with RepairK=0: %+v", est)
	}
	if est.Computations != 2 {
		t.Fatalf("Computations = %d, want 2 full runs", est.Computations)
	}
}

func TestRepairCancellingDeltaRestamps(t *testing.T) {
	e, h, st := repairTestStore(t, Options{RepairK: 8})
	p := testParams()
	d0, err := e.ChangLi(bg, h, p)
	if err != nil {
		t.Fatal(err)
	}
	// Add then delete the same edge: a new fingerprint over an identical
	// edge set. The repair path must detect the empty net delta and serve
	// the cached decomposition without recomputing.
	if !st.AddEdge(2, 9) || !st.DeleteEdge(2, 9) {
		t.Fatal("mutations failed")
	}
	d1, err := e.ChangLi(bg, h, p)
	if err != nil {
		t.Fatal(err)
	}
	if est := e.Stats(); est.RepairHits != 1 || est.RepairedClusters != 0 {
		t.Fatalf("stats %+v, want one zero-work repair hit", est)
	}
	for v := range d0.ClusterOf {
		if d0.ClusterOf[v] != d1.ClusterOf[v] {
			t.Fatalf("restamped decomposition differs at vertex %d", v)
		}
	}
}

func TestRepairBeyondWindowFallsBack(t *testing.T) {
	e, h, st := repairTestStore(t, Options{RepairK: 2})
	p := testParams()
	if _, err := e.ChangLi(bg, h, p); err != nil {
		t.Fatal(err)
	}
	// Three mutations put the cached ancestor outside the 2-delta window.
	st.AddEdge(1, 5)
	st.AddEdge(2, 6)
	st.AddEdge(3, 7)
	if _, err := e.ChangLi(bg, h, p); err != nil {
		t.Fatal(err)
	}
	est := e.Stats()
	if est.RepairHits != 0 || est.RepairFallbacks != 1 {
		t.Fatalf("stats %+v, want 0 repair hits and 1 fallback", est)
	}
}

func TestRepairGenerationCap(t *testing.T) {
	e, h, st := repairTestStore(t, Options{RepairK: 8, RepairMaxGen: 2})
	p := testParams()
	if _, err := e.ChangLi(bg, h, p); err != nil {
		t.Fatal(err)
	}
	pairs := [][2]int{{1, 5}, {2, 6}, {3, 7}, {4, 8}, {5, 9}}
	for _, m := range pairs {
		if !st.AddEdge(m[0], m[1]) {
			t.Fatalf("AddEdge%v failed", m)
		}
		if _, err := e.ChangLi(bg, h, p); err != nil {
			t.Fatal(err)
		}
	}
	est := e.Stats()
	// Generations 1 and 2 repair; the third attempt hits the cap and
	// recomputes (resetting the chain), then the cycle restarts.
	if est.RepairHits == 0 {
		t.Fatal("no repairs happened at all")
	}
	if est.RepairHits >= uint64(len(pairs)) {
		t.Fatalf("RepairHits = %d over %d epochs: generation cap never fired", est.RepairHits, len(pairs))
	}
	if est.RepairFallbacks == 0 {
		t.Fatal("generation cap produced no fallback")
	}
}

func TestRepairSparseCoverPath(t *testing.T) {
	e, h, st := repairTestStore(t, Options{RepairK: 8})
	p := ldd.ENParams{Lambda: 0.3, Seed: 3}
	if _, err := e.SparseCover(bg, h, p); err != nil {
		t.Fatal(err)
	}
	if !st.AddEdge(1, 5) {
		t.Fatal("AddEdge failed")
	}
	c, err := e.SparseCover(bg, h, p)
	if err != nil {
		t.Fatal(err)
	}
	if est := e.Stats(); est.RepairHits != 1 {
		t.Fatalf("RepairHits = %d, want 1", est.RepairHits)
	}
	// The repaired cover must still cover the added edge.
	ok := false
	for _, cu := range c.MemberOf[1] {
		for _, cv := range c.MemberOf[5] {
			if cu == cv {
				ok = true
			}
		}
	}
	if !ok {
		t.Fatal("repaired cover does not cover the added edge")
	}
}

func TestRepairGenericRunPath(t *testing.T) {
	e, h, st := repairTestStore(t, Options{RepairK: 8})
	p := algo.Params{"eps": "0.3", "seed": "11", "scale": "0.05"}
	if _, err := e.Run(bg, h, "changli", p); err != nil {
		t.Fatal(err)
	}
	st.AddEdge(1, 5)
	r, err := e.Run(bg, h, "changli", p)
	if err != nil {
		t.Fatal(err)
	}
	if est := e.Stats(); est.RepairHits != 1 {
		t.Fatalf("RepairHits = %d, want 1", est.RepairHits)
	}
	if r.Metrics["repair_gen"] != 1 {
		t.Fatalf("repair_gen = %v, want 1", r.Metrics["repair_gen"])
	}
	// netdecomp has no Repairer: its misses under churn recompute.
	if nd, ok := algo.Get("netdecomp"); ok && !nd.Caps.Repairable {
		if _, err := e.Run(bg, h, "netdecomp", algo.Params{"lambda": "0.3", "seed": "1"}); err != nil {
			t.Fatal(err)
		}
		st.AddEdge(2, 6)
		if _, err := e.Run(bg, h, "netdecomp", algo.Params{"lambda": "0.3", "seed": "1"}); err != nil {
			t.Fatal(err)
		}
		if est := e.Stats(); est.RepairHits != 1 {
			t.Fatalf("non-repairable family moved RepairHits to %d", est.RepairHits)
		}
	}
}

// TestRepairConcurrentChurn races repairs against mutations and
// compactions: goroutines querying through the repair path while others
// mutate the store and periodically fold the overlay. Run under -race in
// CI; correctness here is "no crash, every answer covers the snapshot it
// resolved".
func TestRepairConcurrentChurn(t *testing.T) {
	e, h, st := repairTestStore(t, Options{RepairK: 8, Capacity: 256})
	p := testParams()
	for _, seed := range []uint64{11, 12, 13} {
		q := p
		q.Seed = seed
		if _, err := e.ChangLi(bg, h, q); err != nil {
			t.Fatal(err)
		}
	}
	const (
		readers = 4
		writers = 2
		muts    = 60
	)
	var wg sync.WaitGroup
	var writersDone atomic.Int32
	errCh := make(chan error, readers+writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer writersDone.Add(1)
			rng := xrand.Stream(99, w, 0xc0de)
			for i := 0; i < muts; i++ {
				u, v := rng.Intn(st.N()), rng.Intn(st.N())
				if u == v {
					continue
				}
				if rng.Bernoulli(0.5) {
					st.AddEdge(u, v)
				} else {
					st.DeleteEdge(u, v)
				}
				if i%25 == 24 {
					if _, err := st.Compact(); err != nil {
						errCh <- err
						return
					}
				}
				runtime.Gosched() // let readers interleave with the churn
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			seeds := []uint64{11, 12, 13}
			// Keep querying while the writers churn so misses land on
			// fingerprints with live ancestry windows.
			for i := 0; writersDone.Load() < writers || i < len(seeds); i++ {
				q := p
				q.Seed = seeds[i%len(seeds)]
				d, err := e.ChangLi(bg, h, q)
				if err != nil {
					errCh <- err
					return
				}
				if len(d.ClusterOf) != st.N() {
					errCh <- errVertexCount
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	est := e.Stats()
	t.Logf("churn race: %d hits, %d misses, %d repairs, %d fallbacks",
		est.Hits, est.Misses, est.RepairHits, est.RepairFallbacks)
}
