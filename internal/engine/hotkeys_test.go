package engine

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/algo"
	"repro/internal/graph/gen"
)

func TestHotKeysMRUOrderAndLimit(t *testing.T) {
	e := New(Options{Shards: 1, Capacity: 16}) // one shard pins exact LRU order
	h := e.Register(gen.Cycle(64))
	ctx := context.Background()
	runs := []struct {
		name string
		p    algo.Params
	}{
		{"changli", algo.Params{"eps": "0.3", "scale": "0.05"}},
		{"en", algo.Params{"lambda": "0.4"}},
		{"netdecomp", algo.Params{"lambda": "0.5"}},
	}
	for _, r := range runs {
		if _, err := e.Run(ctx, h, r.name, r.p); err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
	}
	keys := e.HotKeys(h.Fingerprint(), 0)
	if len(keys) != len(runs) {
		t.Fatalf("got %d hot keys, want %d: %v", len(keys), len(runs), keys)
	}
	// Most recently used first: reverse run order.
	for i, k := range keys {
		want := runs[len(runs)-1-i].name
		if name, _, err := ParseCacheKey(k); err != nil || name != want {
			t.Fatalf("key %d = %q (parsed %q, err %v), want algorithm %q", i, k, name, err, want)
		}
	}
	if got := e.HotKeys(h.Fingerprint(), 2); len(got) != 2 || got[0] != keys[0] {
		t.Fatalf("max=2: got %v", got)
	}
	// A different fingerprint has no hot keys.
	other := e.Register(gen.Cycle(65))
	if got := e.HotKeys(other.Fingerprint(), 0); len(got) != 0 {
		t.Fatalf("unqueried graph has hot keys: %v", got)
	}
}

func TestHotKeysSaveLoadPrewarm(t *testing.T) {
	ctx := context.Background()
	e := New(Options{Shards: 1, Capacity: 16})
	h := e.Register(gen.Cycle(64))
	for _, p := range []algo.Params{
		{"eps": "0.3", "scale": "0.05"},
		{"eps": "0.2", "scale": "0.05"},
	} {
		if _, err := e.Run(ctx, h, "changli", p); err != nil {
			t.Fatal(err)
		}
	}
	keys := e.HotKeys(h.Fingerprint(), 0)
	path := filepath.Join(t.TempDir(), "hotkeys.json")
	if err := SaveHotKeys(path, h.Fingerprint(), keys); err != nil {
		t.Fatal(err)
	}
	loaded, fp, err := LoadHotKeys(path)
	if err != nil {
		t.Fatal(err)
	}
	if fp != h.Fingerprint().String() {
		t.Fatalf("loaded fingerprint %s, want %s", fp, h.Fingerprint())
	}
	if len(loaded) != len(keys) || loaded[0] != keys[0] {
		t.Fatalf("loaded keys %v, want %v", loaded, keys)
	}

	// A fresh engine prewarmed from the file serves the same requests from
	// cache: the replayed runs are the only computations.
	e2 := New(Options{Shards: 1, Capacity: 16})
	h2 := e2.Register(gen.Cycle(64))
	warmed, err := e2.Prewarm(ctx, h2, loaded)
	if err != nil || warmed != len(loaded) {
		t.Fatalf("prewarm: warmed %d, err %v", warmed, err)
	}
	before := e2.Stats()
	if _, err := e2.Run(ctx, h2, "changli", algo.Params{"eps": "0.3", "scale": "0.05"}); err != nil {
		t.Fatal(err)
	}
	after := e2.Stats()
	if after.Computations != before.Computations || after.Hits != before.Hits+1 {
		t.Fatalf("prewarmed request recomputed: before %+v after %+v", before, after)
	}
}

func TestPrewarmSkipsBadKeys(t *testing.T) {
	e := New(Options{Shards: 1, Capacity: 8})
	h := e.Register(gen.Cycle(32))
	keys := []string{
		"no-such-algorithm|x=1", // unknown name
		"changli|eps",           // malformed token
		"changli|bogus=1",       // unknown parameter
		"en|lambda=0.4",         // valid
	}
	warmed, err := e.Prewarm(context.Background(), h, keys)
	if err != nil {
		t.Fatalf("prewarm returned %v for skippable keys", err)
	}
	if warmed != 1 {
		t.Fatalf("warmed %d keys, want 1", warmed)
	}
	// Cancelled context aborts instead of skipping.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Prewarm(ctx, h, []string{"en|lambda=0.4"}); err == nil {
		t.Fatal("prewarm ignored a dead context")
	}
}
