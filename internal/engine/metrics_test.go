package engine

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestEngineMetricsPopulate drives hits, a compute, and joiners through the
// engine and checks the right histograms fill.
func TestEngineMetricsPopulate(t *testing.T) {
	g := benchGraph()
	// Sample every hit so the test is deterministic.
	e := New(Options{MetricsSampleEvery: 1})
	h := e.Register(g)
	p := benchParams()

	if _, err := e.ChangLi(context.Background(), h, p); err != nil {
		t.Fatal(err)
	}
	const hits = 50
	for i := 0; i < hits; i++ {
		if _, err := e.ChangLi(context.Background(), h, p); err != nil {
			t.Fatal(err)
		}
	}

	m := e.Metrics()
	if m.SampleEvery() != 1 {
		t.Fatalf("SampleEvery = %d want 1", m.SampleEvery())
	}
	if got := m.Compute.Snapshot().Count; got != 1 {
		t.Fatalf("compute observations = %d want 1", got)
	}
	hitSnap := m.Hit.Snapshot()
	if hitSnap.Count != hits {
		t.Fatalf("hit observations = %d want %d", hitSnap.Count, hits)
	}
	if hitSnap.Quantile(0.5) <= 0 {
		t.Fatal("hit p50 must be positive")
	}
	// All hits for one key land on one shard.
	if len(m.ShardHit) != e.NumShards() {
		t.Fatalf("ShardHit len %d want %d", len(m.ShardHit), e.NumShards())
	}
	var shardTotal uint64
	nonEmpty := 0
	for i := range m.ShardHit {
		c := m.ShardHit[i].Snapshot().Count
		shardTotal += c
		if c > 0 {
			nonEmpty++
		}
	}
	if shardTotal != hits || nonEmpty != 1 {
		t.Fatalf("per-shard hits: total %d (want %d) across %d shards (want 1)", shardTotal, hits, nonEmpty)
	}
}

// TestEngineJoinWaitMetric forces joiners behind one slow compute.
func TestEngineJoinWaitMetric(t *testing.T) {
	g := benchGraph()
	e := New(Options{MetricsSampleEvery: 1})
	h := e.Register(g)
	p := benchParams()

	const joiners = 4
	var wg sync.WaitGroup
	for i := 0; i < joiners+1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.ChangLi(context.Background(), h, p); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	m := e.Metrics()
	st := e.Stats()
	if got := m.JoinWait.Snapshot().Count; got != st.Dedup {
		t.Fatalf("join-wait observations = %d, dedup = %d; must agree", got, st.Dedup)
	}
}

// TestEngineStampsTraceLabels verifies the engine labels a carried trace
// with algo, canonical key, and snapshot fingerprint, and that the compute
// phase lands in the trace.
func TestEngineStampsTraceLabels(t *testing.T) {
	g := benchGraph()
	e := New(Options{})
	h := e.Register(g)
	p := benchParams()

	tracer := obs.NewTracer(obs.TracerOptions{RingSize: 4})
	ctx, tr := tracer.Start(context.Background(), "test-run")
	if _, err := e.ChangLi(ctx, h, p); err != nil {
		t.Fatal(err)
	}
	tr.Finish(0)

	s := tracer.Recent(1)[0]
	if s.Algo != "changli" {
		t.Fatalf("algo = %q", s.Algo)
	}
	if !strings.HasPrefix(s.Key, "changli|") {
		t.Fatalf("key = %q", s.Key)
	}
	if s.Snapshot != h.Fingerprint().String() {
		t.Fatalf("snapshot = %q want %q", s.Snapshot, h.Fingerprint().String())
	}
	foundCompute := false
	for _, ph := range s.Phases {
		if ph.Name == "compute" && ph.Dur > 0 {
			foundCompute = true
		}
	}
	if !foundCompute {
		t.Fatalf("no compute phase in trace: %+v", s.Phases)
	}
}
