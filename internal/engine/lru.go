package engine

import "repro/internal/graphio"

type fingerprint = graphio.Fingerprint

// lruCache is a minimal intrusive LRU map from cache key to completed
// entry. It is not goroutine-safe; the Engine guards it with its mutex.
type lruCache struct {
	capacity   int
	items      map[cacheKey]*lruNode
	head, tail *lruNode // sentinels; head.next is most recently used
}

type lruNode struct {
	key        cacheKey
	ent        *entry
	prev, next *lruNode
}

func newLRU(capacity int) *lruCache {
	c := &lruCache{capacity: capacity, items: make(map[cacheKey]*lruNode)}
	c.head = &lruNode{}
	c.tail = &lruNode{}
	c.head.next = c.tail
	c.tail.prev = c.head
	return c
}

func (c *lruCache) len() int { return len(c.items) }

func (c *lruCache) unlink(n *lruNode) {
	n.prev.next = n.next
	n.next.prev = n.prev
}

func (c *lruCache) pushFront(n *lruNode) {
	n.next = c.head.next
	n.prev = c.head
	c.head.next.prev = n
	c.head.next = n
}

// get returns the entry for key, promoting it to most recently used.
func (c *lruCache) get(key cacheKey) (*entry, bool) {
	n, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.unlink(n)
	c.pushFront(n)
	return n.ent, true
}

// removeFingerprint drops every entry whose key carries the given
// fingerprint and returns how many were removed.
func (c *lruCache) removeFingerprint(fp fingerprint) (removed int) {
	for key, n := range c.items {
		if key.fp == fp {
			c.unlink(n)
			delete(c.items, key)
			removed++
		}
	}
	return removed
}

// keysMRU appends every resident cache key to out, most recently used
// first — the enumeration order hot-key persistence wants, so the keys
// most worth prewarming survive any truncation of the list.
func (c *lruCache) keysMRU(out []cacheKey) []cacheKey {
	for n := c.head.next; n != c.tail; n = n.next {
		out = append(out, n.key)
	}
	return out
}

// add inserts (or refreshes) key and reports how many entries were evicted
// to respect the capacity.
func (c *lruCache) add(key cacheKey, ent *entry) (evicted int) {
	if n, ok := c.items[key]; ok {
		n.ent = ent
		c.unlink(n)
		c.pushFront(n)
		return 0
	}
	n := &lruNode{key: key, ent: ent}
	c.items[key] = n
	c.pushFront(n)
	for len(c.items) > c.capacity {
		last := c.tail.prev
		c.unlink(last)
		delete(c.items, last.key)
		evicted++
	}
	return evicted
}
