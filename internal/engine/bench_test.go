package engine

import (
	"context"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/ldd"
	"repro/internal/xrand"
)

func benchGraph() *graph.Graph {
	return gen.GNP(2000, 8.0/2000, xrand.New(1))
}

func benchParams() ldd.Params {
	return ldd.Params{Epsilon: 0.3, Seed: 11, Scale: 0.05}
}

// BenchmarkEngineCachedQuery times the cache-hit request path: the
// decomposition is computed once in warm-up, then every iteration is a
// fingerprint-keyed lookup. Compare against BenchmarkColdChangLi on the
// same graph and parameters: the acceptance bar is a >= 10x speedup, and in
// practice the gap is several orders of magnitude.
func BenchmarkEngineCachedQuery(b *testing.B) {
	g := benchGraph()
	e := New(Options{})
	h := e.Register(g)
	p := benchParams()
	if _, err := e.ChangLi(context.Background(), h, p); err != nil {
		b.Fatal(err)
	}
	base := e.Stats().Computations
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ChangLi(context.Background(), h, p); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if got := e.Stats().Computations; got != base {
		b.Fatalf("cached path ran %d decompositions", got-base)
	}
}

// BenchmarkColdChangLi is the uncached baseline: a full ldd.ChangLi run per
// iteration on the same graph and parameters as BenchmarkEngineCachedQuery.
func BenchmarkColdChangLi(b *testing.B) {
	g := benchGraph()
	p := benchParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ldd.ChangLi(g, p)
	}
}

// BenchmarkEngineBallsBatch times the workspace-reservoir query path: 64
// radius-2 ball lookups per iteration.
func BenchmarkEngineBallsBatch(b *testing.B) {
	g := benchGraph()
	e := New(Options{})
	h := e.Register(g)
	vs := make([]int32, 64)
	for i := range vs {
		vs[i] = int32(i * 31 % g.N())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Balls(context.Background(), h, vs, 2, 0); err != nil {
			b.Fatal(err)
		}
	}
}
