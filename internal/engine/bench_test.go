package engine

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/ldd"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/xrand"
)

func benchGraph() *graph.Graph {
	return gen.GNP(2000, 8.0/2000, xrand.New(1))
}

func benchParams() ldd.Params {
	return ldd.Params{Epsilon: 0.3, Seed: 11, Scale: 0.05}
}

// BenchmarkEngineCachedQuery times the cache-hit request path: the
// decomposition is computed once in warm-up, then every iteration is a
// fingerprint-keyed lookup. Compare against BenchmarkColdChangLi on the
// same graph and parameters: the acceptance bar is a >= 10x speedup, and in
// practice the gap is several orders of magnitude.
func BenchmarkEngineCachedQuery(b *testing.B) {
	g := benchGraph()
	e := New(Options{})
	h := e.Register(g)
	p := benchParams()
	if _, err := e.ChangLi(context.Background(), h, p); err != nil {
		b.Fatal(err)
	}
	base := e.Stats().Computations
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ChangLi(context.Background(), h, p); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if got := e.Stats().Computations; got != base {
		b.Fatalf("cached path ran %d decompositions", got-base)
	}
	reportHitTail(b, e)
}

// reportHitTail surfaces the sampled hit-latency tail next to the mean so
// BENCH files carry p99 data, not just ns/op averages. Skipped when the
// run was too short to collect samples.
func reportHitTail(b *testing.B, e *Engine) {
	s := e.Metrics().Hit.Snapshot()
	if s.Count == 0 {
		return
	}
	b.ReportMetric(float64(s.Quantile(0.99)), "p99-ns")
	b.ReportMetric(float64(s.Quantile(0.50)), "p50-ns")
}

// BenchmarkColdChangLi is the uncached baseline: a full ldd.ChangLi run per
// iteration on the same graph and parameters as BenchmarkEngineCachedQuery.
func BenchmarkColdChangLi(b *testing.B) {
	g := benchGraph()
	p := benchParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ldd.ChangLi(g, p)
	}
}

// BenchmarkEngineBallsBatch times the workspace-reservoir query path: 64
// radius-2 ball lookups per iteration.
func BenchmarkEngineBallsBatch(b *testing.B) {
	g := benchGraph()
	e := New(Options{})
	h := e.Register(g)
	vs := make([]int32, 64)
	for i := range vs {
		vs[i] = int32(i * 31 % g.N())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Balls(context.Background(), h, vs, 2, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWarmSeeds warms one cached decomposition per seed so every
// benchmark iteration is a hit; 16 seeds spread the keys across shards the
// way a mixed multi-tenant workload would.
const benchSeeds = 16

func warmSeeds(b *testing.B, e *Engine, h Handle) [benchSeeds]ldd.Params {
	b.Helper()
	var ps [benchSeeds]ldd.Params
	for s := range ps {
		ps[s] = benchParams()
		ps[s].Seed = uint64(s)
		if _, err := e.ChangLi(context.Background(), h, ps[s]); err != nil {
			b.Fatal(err)
		}
	}
	return ps
}

// benchCachedParallel is the contended cache-hit path under b.RunParallel:
// every goroutine streams hits over a 16-seed key space. shards=1
// reproduces the pre-shard single-mutex engine, so
// BenchmarkEngineCachedQueryParallel vs ...SingleShard is the sharding
// speedup at the current GOMAXPROCS (compare with -cpu 8 or higher).
func benchCachedParallel(b *testing.B, shards int) {
	g := benchGraph()
	// Capacity 256 keeps per-shard capacity (32 at 8 shards) above the
	// warm key count for any per-process hash seed, so no shard can evict
	// warm entries and turn the hit benchmark into a recompute benchmark.
	e := New(Options{Capacity: 256, Shards: shards})
	h := e.Register(g)
	ps := warmSeeds(b, e, h)
	var next atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Stagger the per-goroutine walk so concurrent goroutines hit
		// different keys (and hence different shards) at any instant.
		i := next.Add(1) * 7
		for pb.Next() {
			if _, err := e.ChangLi(context.Background(), h, ps[i%benchSeeds]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
	b.StopTimer()
	if got := e.Stats().Computations; got != benchSeeds {
		b.Fatalf("timed loop recomputed: %d computations, want %d warm-only", got, benchSeeds)
	}
	reportHitTail(b, e)
}

func BenchmarkEngineCachedQueryParallel(b *testing.B) {
	benchCachedParallel(b, 0)
}

func BenchmarkEngineCachedQueryParallelSingleShard(b *testing.B) {
	benchCachedParallel(b, 1)
}

// benchChurn is the mixed churn workload behind the repair benchmarks: a
// 10k-vertex store-backed graph, 4 warm decomposition seeds, and a 5%
// chance per request that an edge toggles first (invalidating every warm
// fingerprint). With repairK=0 each invalidation forces up to 4 full
// recomputes; with repair enabled the misses patch the cached ancestor.
// Reported metrics: hit_rate is the effective (recompute-avoiding) rate
// including repairs, p99-ns/p50-ns the per-request latency tail.
func benchChurn(b *testing.B, repairK int) {
	g := gen.GNP(10000, 8.0/10000, xrand.New(1))
	st := store.New(g)
	e := New(Options{Capacity: 256, RepairK: repairK})
	h := e.RegisterStore(st)
	const seeds = 4
	var ps [seeds]ldd.Params
	for s := range ps {
		ps[s] = benchParams()
		ps[s].Seed = uint64(s)
		if _, err := e.ChangLi(context.Background(), h, ps[s]); err != nil {
			b.Fatal(err)
		}
	}
	rng := xrand.New(7)
	var lat obs.Histogram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rng.Bernoulli(0.05) {
			u, v := rng.Intn(st.N()), rng.Intn(st.N())
			if u != v && !st.AddEdge(u, v) {
				st.DeleteEdge(u, v)
			}
		}
		t0 := time.Now()
		if _, err := e.ChangLi(context.Background(), h, ps[i%seeds]); err != nil {
			b.Fatal(err)
		}
		lat.Observe(time.Since(t0))
	}
	b.StopTimer()
	est := e.Stats()
	if lookups := est.Hits + est.Misses + est.Dedup; lookups > 0 {
		b.ReportMetric(float64(est.Hits+est.Dedup+est.RepairHits)/float64(lookups), "hit_rate")
	}
	if s := lat.Snapshot(); s.Count > 0 {
		b.ReportMetric(float64(s.Quantile(0.99)), "p99-ns")
		b.ReportMetric(float64(s.Quantile(0.50)), "p50-ns")
	}
}

// BenchmarkEngineChurnRepair serves the churn mix with delta repair on.
func BenchmarkEngineChurnRepair(b *testing.B) {
	benchChurn(b, 16)
}

// BenchmarkEngineChurnRecompute is the same workload with repair disabled:
// every invalidated fingerprint recomputes from scratch. The p99 gap to
// BenchmarkEngineChurnRepair is the repair speedup on the miss path.
func BenchmarkEngineChurnRecompute(b *testing.B) {
	benchChurn(b, 0)
}

// BenchmarkEngineStoreCachedQuery measures the store-handle resolve
// overhead on the hit path: snapshot resolution + fingerprint key vs the
// immutable handle of BenchmarkEngineCachedQuery.
func BenchmarkEngineStoreCachedQuery(b *testing.B) {
	g := benchGraph()
	st := store.New(g)
	e := New(Options{})
	h := e.RegisterStore(st)
	p := benchParams()
	if _, err := e.ChangLi(context.Background(), h, p); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ChangLi(context.Background(), h, p); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportHitTail(b, e)
}
