package engine

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/algo"
	"repro/internal/graph/gen"
	"repro/internal/ldd"
	"repro/internal/netdecomp"
	"repro/internal/xrand"
)

// TestWorkersDefaultInjection pins the Options.Workers contract: the
// engine-level default reaches both the typed and the generic request
// paths, never changes results (parallel execution is bit-identical to
// serial), and never splits cache slots.
func TestWorkersDefaultInjection(t *testing.T) {
	g := gen.GNP(800, 10.0/800, xrand.New(7))
	p := testParams()
	serial := ldd.ChangLi(g, p)

	e := New(Options{Workers: 4})
	if e.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", e.Workers())
	}
	h := e.Register(g)

	// Typed path: the injected default must not perturb the output.
	d, err := e.ChangLi(bg, h, p)
	if err != nil {
		t.Fatal(err)
	}
	for v := range serial.ClusterOf {
		if d.ClusterOf[v] != serial.ClusterOf[v] {
			t.Fatalf("vertex %d: engine(Workers:4) %d != serial %d", v, d.ClusterOf[v], serial.ClusterOf[v])
		}
	}

	// Generic path with no workers param: the injection happens on a
	// cloned bag (the caller's map must stay untouched) and shares the
	// cache slot with the typed request above.
	bag := algo.Params{"eps": "0.3", "seed": "11", "scale": "0.05"}
	r, err := e.Run(bg, h, "changli", bag)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := bag["workers"]; ok {
		t.Fatal("engine mutated the caller's params map")
	}
	if r.Raw.(*ldd.Decomposition) != d {
		t.Fatal("generic and typed requests with injected workers split the cache")
	}

	// An explicit per-request worker count wins over the default and
	// still lands in the same cache slot (workers is excluded from keys).
	pw := p
	pw.Workers = 1
	if d1, err := e.ChangLi(bg, h, pw); err != nil || d1 != d {
		t.Fatalf("explicit Workers:1 missed the cache: %v %v", d1, err)
	}
	if st := e.Stats(); st.Computations != 1 {
		t.Fatalf("computations = %d, want 1", st.Computations)
	}
}

// TestWorkersAccessorDefault pins the unset accessor to GOMAXPROCS.
func TestWorkersAccessorDefault(t *testing.T) {
	e := New(Options{})
	if got, want := e.Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers() = %d, want GOMAXPROCS = %d", got, want)
	}
}

// TestConcurrentParallelQueries hammers a Workers:4 engine from many
// goroutines mixing algorithm families and seeds, so the race detector
// sees engine-level concurrency stacked on top of intra-query
// parallelism (shared par pool, shared graph CSR, per-query parallel
// workspaces). Every repetition of a request must be bit-identical.
func TestConcurrentParallelQueries(t *testing.T) {
	g := gen.GNP(2000, 12.0/2000, xrand.New(3))
	e := New(Options{Workers: 4})
	h := e.Register(g)

	want, err := e.ChangLi(bg, h, testParams())
	if err != nil {
		t.Fatal(err)
	}
	wantND, err := e.NetDecomp(bg, h, netdecomp.Params{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const iters = 6
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				switch (i + it) % 3 {
				case 0:
					d, err := e.ChangLi(bg, h, testParams())
					if err == nil && d != want {
						err = errDifferentInstance
					}
					errs[i] = err
				case 1:
					nd, err := e.NetDecomp(bg, h, netdecomp.Params{Seed: 5})
					if err == nil && nd != wantND {
						err = errDifferentInstance
					}
					errs[i] = err
				default:
					// Distinct seeds force fresh parallel computations
					// racing against the cache hits above.
					p := testParams()
					p.Seed = uint64(1000 + i*iters + it)
					_, err := e.ChangLi(bg, h, p)
					errs[i] = err
				}
				if errs[i] != nil {
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
}

var errDifferentInstance = errInstance{}

type errInstance struct{}

func (errInstance) Error() string { return "cached request returned a different result instance" }
