package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/algo"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/graphio"
	"repro/internal/store"
	"repro/internal/xrand"
)

// totalInflight sums singleflight occupancy across shards from Stats.
func totalInflight(e *Engine) int {
	n := 0
	for _, s := range e.Stats().Shards {
		n += s.Inflight
	}
	return n
}

func TestShardCountNormalization(t *testing.T) {
	cases := []struct {
		opt  Options
		want int
	}{
		{Options{}, defaultShards},
		{Options{Shards: 1}, 1},
		{Options{Shards: 3}, 4},
		{Options{Shards: 16}, 16},
		{Options{Capacity: 2, Shards: 16}, 2}, // clamped: per-shard capacity >= 1
		{Options{Capacity: 1, Shards: 8}, 1},
		{Options{Capacity: 1 << 20, Shards: 1<<63 - 1}, maxShards}, // absurd counts clamp, never spin
	}
	for _, c := range cases {
		if got := New(c.opt).NumShards(); got != c.want {
			t.Errorf("%+v: shards = %d, want %d", c.opt, got, c.want)
		}
	}
	// Total capacity is split exactly, remainder spread over leading shards.
	e := New(Options{Capacity: 100, Shards: 8})
	total := 0
	for _, sh := range e.shards {
		total += sh.cache.capacity
	}
	if total != 100 {
		t.Fatalf("shard capacities sum to %d, want 100", total)
	}
}

// TestShardRoutingIsStable pins that a key always routes to the same shard
// and that distinct fingerprints spread (statistically) across shards.
func TestShardRoutingIsStable(t *testing.T) {
	e := New(Options{Capacity: 64, Shards: 8})
	seen := make(map[uint64]int)
	for i := 0; i < 256; i++ {
		var fp graphio.Fingerprint
		fp[0] = byte(i)
		fp[1] = byte(i >> 8)
		key := cacheKey{fp: fp, key: "changli|eps=0.3"}
		idx := e.shardIndex(key)
		if again := e.shardIndex(key); again != idx {
			t.Fatal("routing is not deterministic")
		}
		seen[idx]++
	}
	if len(seen) < 4 {
		t.Fatalf("256 fingerprints landed on only %d of 8 shards", len(seen))
	}
}

// TestPerShardEviction is the satellite coverage for per-shard LRU: filling
// one shard past its capacity evicts only there, other shards retain their
// entries, and the Stats eviction counters match per-shard occupancy.
func TestPerShardEviction(t *testing.T) {
	const shards = 4
	const capacity = 8 // per-shard capacity 2
	e := New(Options{Capacity: capacity, Shards: shards})
	perShard := capacity / shards

	// Synthetic keyed entries via the do() path: cheap computes, keys
	// bucketed by the engine's own routing.
	byShard := make(map[uint64][]cacheKey)
	for i := 0; len(byShard[0]) < perShard+2 || len(byShard[1]) < 1; i++ {
		key := cacheKey{key: fmt.Sprintf("test|seed=%d", i)}
		idx := e.shardIndex(key)
		byShard[idx] = append(byShard[idx], key)
		if i > 1<<12 {
			t.Fatal("hash never hit shards 0 and 1")
		}
	}

	fill := func(key cacheKey) {
		t.Helper()
		if _, err := e.do(bg, key, func(context.Context) (any, error) { return key.key, nil }); err != nil {
			t.Fatal(err)
		}
	}
	// One resident entry in shard 1, then overflow shard 0 by two.
	other := byShard[1][0]
	fill(other)
	for _, key := range byShard[0][:perShard+2] {
		fill(key)
	}

	st := e.Stats()
	if st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.Evictions)
	}
	if got := st.Shards[0]; got.Evictions != 2 || got.Entries != perShard {
		t.Fatalf("shard 0 stats %+v, want 2 evictions and %d entries", got, perShard)
	}
	if got := st.Shards[1]; got.Evictions != 0 || got.Entries != 1 {
		t.Fatalf("shard 1 stats %+v, want 0 evictions and 1 entry", got)
	}
	var entries int
	for _, s := range st.Shards {
		entries += s.Entries
	}
	if entries != perShard+1 {
		t.Fatalf("total entries = %d, want %d", entries, perShard+1)
	}
	// The other shard's entry survived the overflow: re-requesting is a hit.
	before := e.Stats().Hits
	fill(other)
	if e.Stats().Hits != before+1 {
		t.Fatal("shard 1 entry was disturbed by shard 0 overflow")
	}
}

// TestNoDanglingInflightUnderRacingCancel is the do() audit regression:
// many joiners pile on one key while the initiator's context is cancelled
// concurrently with the compute failing (ctx error or plain error). No
// schedule may leave an entry in any shard's singleflight table, and every
// joiner must get either a result or a definite error.
func TestNoDanglingInflightUnderRacingCancel(t *testing.T) {
	e := New(Options{})
	for round := 0; round < 40; round++ {
		key := cacheKey{key: fmt.Sprintf("test|race=%d", round)}
		plainError := round%2 == 1
		initiatorCtx, cancelInitiator := context.WithCancel(context.Background())
		computeStarted := make(chan struct{})

		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = e.do(initiatorCtx, key, func(ctx context.Context) (any, error) {
				close(computeStarted)
				<-ctx.Done()
				if plainError {
					// A compute failure racing the cancel: surfaced as a
					// non-ctx error to every waiter.
					return nil, errors.New("compute failed")
				}
				return nil, ctx.Err()
			})
		}()
		<-computeStarted

		const joiners = 12
		results := make([]any, joiners)
		errs := make([]error, joiners)
		for j := 0; j < joiners; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				results[j], errs[j] = e.do(context.Background(), key, func(context.Context) (any, error) {
					return "retried", nil
				})
			}(j)
		}
		cancelInitiator() // race the cancel against the joiners parking
		wg.Wait()

		for j := 0; j < joiners; j++ {
			if plainError {
				// Joiners either saw the propagated compute error or raced
				// ahead/behind it and retried successfully.
				if errs[j] == nil && results[j] != "retried" {
					t.Fatalf("round %d joiner %d: (%v, %v)", round, j, results[j], errs[j])
				}
				if errs[j] != nil && !strings.Contains(errs[j].Error(), "compute failed") {
					t.Fatalf("round %d joiner %d: unexpected error %v", round, j, errs[j])
				}
			} else if errs[j] != nil || results[j] != "retried" {
				t.Fatalf("round %d joiner %d: (%v, %v), want retried", round, j, results[j], errs[j])
			}
		}
		if n := totalInflight(e); n != 0 {
			t.Fatalf("round %d: %d dangling inflight entries", round, n)
		}
		// The key is still serviceable afterwards.
		if v, err := e.do(bg, key, func(context.Context) (any, error) { return "fresh", nil }); err != nil {
			t.Fatalf("round %d: engine wedged: %v (%v)", round, err, v)
		}
	}
}

// blockingSpec registers a test-only registry algorithm whose runner
// handshakes with the test: it reports the edge count of the graph it was
// handed, so snapshot isolation is directly observable.
var blockingOnce sync.Once

var blockingGate struct {
	mu      sync.Mutex
	started chan struct{}
	release chan struct{}
}

func registerBlockingSpec() {
	blockingOnce.Do(func() {
		algo.Register(&algo.Spec{
			Name:    "enginetest-blocking",
			Summary: "test-only: blocks until released, reports M(g)",
			Caps:    algo.Capabilities{Kind: algo.KindDecomposition},
			Run: func(ctx context.Context, g *graph.Graph, p algo.Params) (*algo.Result, error) {
				blockingGate.mu.Lock()
				started, release := blockingGate.started, blockingGate.release
				blockingGate.mu.Unlock()
				if started != nil {
					close(started)
				}
				if release != nil {
					select {
					case <-release:
					case <-ctx.Done():
						return nil, ctx.Err()
					}
				}
				res := &algo.Result{NumClusters: g.M()}
				res.ClusterOf = make([]int32, g.N())
				return res, nil
			},
		})
	})
}

// TestStoreSnapshotIsolationInFlight pins the acceptance property: a
// request resolves its snapshot at request start, so a mutation landing
// mid-compute does not leak into the in-flight computation, and the result
// records the snapshot it was computed against.
func TestStoreSnapshotIsolationInFlight(t *testing.T) {
	registerBlockingSpec()
	g := gen.Cycle(64) // 64 edges
	st := store.New(g)
	e := New(Options{})
	h := e.RegisterStore(st)
	oldFP := st.Snapshot().Fingerprint()

	blockingGate.mu.Lock()
	blockingGate.started = make(chan struct{})
	blockingGate.release = make(chan struct{})
	started, release := blockingGate.started, blockingGate.release
	blockingGate.mu.Unlock()

	type outcome struct {
		res *algo.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := e.Run(context.Background(), h, "enginetest-blocking", nil)
		done <- outcome{res, err}
	}()
	<-started
	// Mutate while the old-snapshot request is in flight.
	if !st.AddEdge(0, 32) {
		t.Fatal("AddEdge failed")
	}
	close(release)
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.res.NumClusters != 64 {
		t.Fatalf("in-flight request saw %d edges, want the pre-mutation 64", out.res.NumClusters)
	}
	if out.res.Snapshot != oldFP.String() {
		t.Fatalf("result records snapshot %s, want %s", out.res.Snapshot, oldFP.Short())
	}

	// A fresh request resolves the new snapshot: new fingerprint, new cache
	// slot, post-mutation view.
	blockingGate.mu.Lock()
	blockingGate.started, blockingGate.release = nil, nil
	blockingGate.mu.Unlock()
	res2, err := e.Run(context.Background(), h, "enginetest-blocking", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.NumClusters != 65 {
		t.Fatalf("post-mutation request saw %d edges, want 65", res2.NumClusters)
	}
	if res2.Snapshot == out.res.Snapshot {
		t.Fatal("pre- and post-mutation results share a snapshot identity")
	}
	if st := e.Stats(); st.Computations != 2 {
		t.Fatalf("computations = %d, want 2 (one per snapshot)", st.Computations)
	}
	// The old snapshot's entry is still a live cache slot (it ages out via
	// LRU, not via invalidation): nothing to assert but absence of sweeps —
	// re-running against the new snapshot hits the cache.
	if _, err := e.Run(context.Background(), h, "enginetest-blocking", nil); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Computations != 2 {
		t.Fatal("post-mutation result was not cached")
	}
}

// TestStoreHandleServing drives the typed and batch paths through a store
// handle: mutation changes the served fingerprint, old results age out via
// LRU, and Balls runs on the overlay without materializing.
func TestStoreHandleServing(t *testing.T) {
	g := gen.GNP(200, 6.0/200, xrand.New(8))
	st := store.New(g)
	e := New(Options{})
	h := e.RegisterStore(st)
	p := testParams()

	d1, err := e.ChangLi(bg, h, p)
	if err != nil {
		t.Fatal(err)
	}
	// Unchanged store: second request is a pure cache hit.
	if d2, err := e.ChangLi(bg, h, p); err != nil || d2 != d1 {
		t.Fatalf("unchanged store missed the cache: %v", err)
	}
	// Mutation: same params, new snapshot, recompute.
	for i := 0; i < 5; i++ {
		if st.AddEdge(i, 100+i) {
			break
		}
	}
	d3, err := e.ChangLi(bg, h, p)
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Fatal("mutated store served the stale decomposition instance")
	}
	if got := e.Stats(); got.Computations != 2 {
		t.Fatalf("computations = %d, want 2", got.Computations)
	}

	// Balls on the overlay agree with balls on the materialized snapshot.
	snap := st.Snapshot()
	mat := snap.Graph()
	vs := []int32{0, 9, 150}
	got, err := e.Balls(bg, h, vs, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vs {
		want := mat.Ball(int(v), 2)
		if len(got[i]) != len(want) {
			t.Fatalf("vertex %d: ball size %d != %d", v, len(got[i]), len(want))
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("vertex %d: ball element %d mismatch", v, j)
			}
		}
	}
	if _, err := e.Balls(bg, h, []int32{int32(snap.N())}, 1, 1); err == nil {
		t.Fatal("out-of-range vertex accepted on store path")
	}

	// ClusterOf through the store handle stays consistent with ChangLi.
	cl, err := e.ClusterOf(bg, h, p, []int32{0, 42})
	if err != nil {
		t.Fatal(err)
	}
	if cl[0] != d3.ClusterOf[0] || cl[1] != d3.ClusterOf[42] {
		t.Fatal("ClusterOf disagrees with the current-snapshot decomposition")
	}
}

// TestStoreChurnAgesOutEntries pins the no-invalidation-sweep design: under
// mutation churn each snapshot computes into its own LRU slot and old slots
// are evicted by capacity pressure alone.
func TestStoreChurnAgesOutEntries(t *testing.T) {
	st := store.New(gen.Cycle(60))
	e := New(Options{Capacity: 4, Shards: 1})
	h := e.RegisterStore(st)
	p := testParams()
	for i := 0; i < 8; i++ {
		if _, err := e.ChangLi(bg, h, p); err != nil {
			t.Fatal(err)
		}
		if !st.AddEdge(i, 30+i) {
			t.Fatalf("AddEdge(%d,%d) rejected", i, 30+i)
		}
	}
	got := e.Stats()
	if got.Computations != 8 {
		t.Fatalf("computations = %d, want 8 (one per snapshot)", got.Computations)
	}
	if got.Evictions != 4 {
		t.Fatalf("evictions = %d, want 4 (capacity pressure only)", got.Evictions)
	}
}

// TestStatsTotals pins the aggregate helpers the HTTP serving layer reports
// from: the sums must match the per-shard breakdown.
func TestStatsTotals(t *testing.T) {
	// Ample per-shard capacity: all 5 keys stay resident however the hash
	// distributes them (a tight capacity would LRU-evict within one shard).
	e := New(Options{Capacity: 32, Shards: 4})
	bg := context.Background()
	for i := 0; i < 5; i++ {
		key := cacheKey{key: fmt.Sprintf("totals|%d", i)}
		if _, err := e.do(bg, key, func(context.Context) (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	wantEntries, wantInflight := 0, 0
	for _, sh := range st.Shards {
		wantEntries += sh.Entries
		wantInflight += sh.Inflight
	}
	if st.EntriesTotal() != wantEntries || wantEntries != 5 {
		t.Fatalf("EntriesTotal %d, per-shard sum %d, want 5", st.EntriesTotal(), wantEntries)
	}
	if st.InflightTotal() != wantInflight || wantInflight != 0 {
		t.Fatalf("InflightTotal %d, per-shard sum %d, want 0", st.InflightTotal(), wantInflight)
	}
}
