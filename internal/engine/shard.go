package engine

import (
	"encoding/binary"
	"hash/maphash"
	"sync"

	"repro/internal/graph"
	"repro/internal/graphio"
)

// shard is one independently locked slice of the engine's state: a bounded
// LRU of completed results, the singleflight table of in-flight
// computations, and a slice of the graph registry. Requests are routed to
// shards by a hash of (fingerprint, cache key), so unrelated requests never
// contend on a lock; per-shard capacity is total capacity / shard count.
type shard struct {
	mu       sync.Mutex
	cache    *lruCache
	inflight map[cacheKey]*entry
	graphs   map[graphio.Fingerprint]*graph.Graph

	// evictions is this shard's slice of the global eviction counter,
	// kept separately so eviction skew across shards is observable.
	evictions uint64 // guarded by mu
}

func newShard(capacity int) *shard {
	return &shard{
		cache:    newLRU(capacity),
		inflight: make(map[cacheKey]*entry),
		graphs:   make(map[graphio.Fingerprint]*graph.Graph),
	}
}

// keySeed seeds the shard router's string hash. Per-process randomness is
// fine: shard routing only needs to be stable within one engine's
// lifetime, and a fresh seed per process hardens the router against
// crafted key sets that pile onto one shard.
var keySeed = maphash.MakeSeed()

// shardIndex routes a cache key to its shard: the runtime's AES-based
// string hash over the canonical algorithm key (a few ns regardless of key
// length — this runs on the cache-hit path), folded with the (already
// uniform) fingerprint prefix.
func (e *Engine) shardIndex(key cacheKey) uint64 {
	h := maphash.String(keySeed, key.key) ^ binary.LittleEndian.Uint64(key.fp[:8])
	return h & e.mask
}

func (e *Engine) shardFor(key cacheKey) *shard {
	return e.shards[e.shardIndex(key)]
}

// shardForFP routes a graph-registry fingerprint to its shard. SHA-256
// output is uniform, so the first eight bytes are hash enough.
func (e *Engine) shardForFP(fp graphio.Fingerprint) *shard {
	return e.shards[binary.LittleEndian.Uint64(fp[:8])&e.mask]
}
