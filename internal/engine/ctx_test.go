package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/algo"
	"repro/internal/graph/gen"
	"repro/internal/ldd"
	"repro/internal/xrand"
)

// TestRunRegistryPath drives the generic name-indexed request path: every
// registered algorithm family is servable through the engine, cached by
// (fingerprint, algo, params).
func TestRunRegistryPath(t *testing.T) {
	g := gen.Cycle(150)
	e := New(Options{})
	h := e.Register(g)
	cases := []struct {
		name string
		p    algo.Params
	}{
		{"changli", algo.Params{"eps": "0.3", "scale": "0.05"}},
		{"weighted", algo.Params{"eps": "0.3", "scale": "0.05"}},
		{"en", algo.Params{"lambda": "0.4"}},
		{"mpx", algo.Params{"lambda": "0.4"}},
		{"blackbox", algo.Params{"eps": "0.3", "scale": "0.05"}},
		{"sparsecover", algo.Params{"lambda": "0.5"}},
		{"netdecomp", algo.Params{"lambda": "0.5"}},
		{"packing", algo.Params{"problem": "mis", "prep": "2"}},
		{"covering", algo.Params{"problem": "vc", "prep": "2"}},
		{"gkm", algo.Params{"problem": "mis", "scale": "0.4"}},
		{"solve", algo.Params{"problem": "mis"}},
	}
	for _, c := range cases {
		res, err := e.Run(context.Background(), h, c.name, c.p)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if res.Algorithm != c.name {
			t.Fatalf("%s: envelope says %q", c.name, res.Algorithm)
		}
		// Second request is a cache hit returning the same instance.
		res2, err := e.Run(context.Background(), h, c.name, c.p)
		if err != nil || res2 != res {
			t.Fatalf("%s: cache miss on identical request (%v)", c.name, err)
		}
	}
	if st := e.Stats(); st.Computations != uint64(len(cases)) {
		t.Fatalf("computations = %d, want %d", st.Computations, len(cases))
	}
	if _, err := e.Run(context.Background(), h, "nope", nil); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := e.Run(context.Background(), h, "changli", algo.Params{"bogus": "1"}); err == nil {
		t.Fatal("unknown param accepted")
	}
}

// TestTypedAndGenericShareCache pins the tentpole cache-key property: the
// typed ChangLi path and the generic Run("changli") path collide on the
// same cache slot.
func TestTypedAndGenericShareCache(t *testing.T) {
	g := gen.Grid(12, 12)
	e := New(Options{})
	h := e.Register(g)
	p := ldd.Params{Epsilon: 0.3, Seed: 11, Scale: 0.05}
	d, err := e.ChangLi(context.Background(), h, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), h, "changli",
		algo.Params{"eps": "0.3", "seed": "11", "scale": "0.05"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Raw.(*ldd.Decomposition) != d {
		t.Fatal("typed and generic requests did not share a cache slot")
	}
	if st := e.Stats(); st.Computations != 1 {
		t.Fatalf("computations = %d, want 1", st.Computations)
	}
}

// TestDeadlineBoundedRequest verifies a deadline-expired request returns
// promptly with context.DeadlineExceeded, the error is not cached, and the
// engine remains serviceable.
func TestDeadlineBoundedRequest(t *testing.T) {
	g := gen.RandomRegular(8000, 4, xrand.New(7))
	e := New(Options{})
	h := e.Register(g)
	p := ldd.Params{Epsilon: 0.1, Seed: 3} // paper constants: seconds of work
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.ChangLi(ctx, h, p)
	if err == nil {
		t.Skip("machine fast enough to finish inside the deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline-bounded request held for %v", elapsed)
	}
	if st := e.Stats(); st.Cancellations == 0 {
		t.Fatal("cancellation not counted")
	}
	// The failure was not cached; a fresh unbounded request computes fine
	// on a small graph.
	h2 := e.Register(gen.Cycle(200))
	p2 := ldd.Params{Epsilon: 0.3, Seed: 3, Scale: 0.05}
	if _, err := e.ChangLi(context.Background(), h2, p2); err != nil {
		t.Fatalf("engine unusable after deadline: %v", err)
	}
}

// TestJoinerAbandonsWaitOnCancel verifies a singleflight joiner whose own
// context dies stops waiting without disturbing the initiator's
// computation.
func TestJoinerAbandonsWaitOnCancel(t *testing.T) {
	e := New(Options{})
	release := make(chan struct{})
	key := cacheKey{key: "test|slow"}

	var initiator sync.WaitGroup
	initiator.Add(1)
	started := make(chan struct{})
	go func() {
		defer initiator.Done()
		_, _ = e.do(context.Background(), key, func(context.Context) (any, error) {
			close(started)
			<-release
			return 42, nil
		})
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, err := e.do(ctx, key, func(context.Context) (any, error) { return nil, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("joiner err = %v, want context.Canceled", err)
	}

	close(release)
	initiator.Wait()
	// The initiator's result was cached despite the joiner bailing.
	v, err := e.do(context.Background(), key, func(context.Context) (any, error) { return nil, nil })
	if err != nil || v.(int) != 42 {
		t.Fatalf("initiator result lost: %v %v", v, err)
	}
	st := e.Stats()
	if st.Dedup != 1 || st.Cancellations != 1 {
		t.Fatalf("dedup=%d cancellations=%d, want 1 and 1", st.Dedup, st.Cancellations)
	}
}

// TestJoinerRetriesAfterInitiatorCancelled verifies the foreign-cancel
// path: when the initiating request is cancelled mid-compute, a joiner
// with a live context retries the computation itself instead of
// propagating the stranger's cancellation.
func TestJoinerRetriesAfterInitiatorCancelled(t *testing.T) {
	e := New(Options{})
	key := cacheKey{key: "test|retry"}
	initiatorCtx, cancelInitiator := context.WithCancel(context.Background())

	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = e.do(initiatorCtx, key, func(ctx context.Context) (any, error) {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		})
	}()
	<-started

	joined := make(chan struct{})
	var joinVal any
	var joinErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(joined)
		joinVal, joinErr = e.do(context.Background(), key, func(context.Context) (any, error) {
			return "recomputed", nil
		})
	}()
	<-joined
	time.Sleep(20 * time.Millisecond) // let the joiner park on the entry
	cancelInitiator()
	wg.Wait()

	if joinErr != nil || joinVal != "recomputed" {
		t.Fatalf("joiner got (%v, %v), want recomputed", joinVal, joinErr)
	}
	if st := e.Stats(); st.Computations != 2 {
		t.Fatalf("computations = %d, want 2 (cancelled + retry)", st.Computations)
	}
}

// TestEvictionAndDedupCountersExposed pins the Stats satellite: evictions
// and dedup joins are counted and visible in a snapshot.
func TestEvictionAndDedupCountersExposed(t *testing.T) {
	g := gen.Cycle(120)
	e := New(Options{Capacity: 1, Shards: 1})
	h := e.Register(g)
	for seed := uint64(0); seed < 3; seed++ {
		if _, err := e.ChangLi(context.Background(), h, ldd.Params{Epsilon: 0.3, Seed: seed, Scale: 0.05}); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.Evictions)
	}
}
