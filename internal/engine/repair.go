package engine

import (
	"context"
	"sort"
	"time"

	"repro/internal/algo"
	"repro/internal/ldd"
	"repro/internal/obs"
	"repro/internal/store"
)

// repairFn patches a cached ancestor result onto the current snapshot's
// graph given the collapsed net edge delta between the two versions.
type repairFn func(ctx context.Context, old *algo.Result, delta ldd.EdgeDelta) (*algo.Result, error)

// tryRepair is the miss-path shortcut behind Options.RepairK: instead of
// recomputing from scratch, walk the snapshot's ancestry (store delta log
// + fingerprint chain) newest-first for a cached result under the same
// algorithm key, and delta-repair the first one found. Runs inside a do()
// compute closure — the caller holds no shard lock, so the cross-shard
// cache peeks cannot deadlock, and singleflight dedup covers the repair
// exactly like a full computation.
//
// Returns (result, true) on a successful repair (the result is stamped
// with the current snapshot's fingerprint and will be cached under it by
// do). Returns (nil, false) — counting a fallback — when no ancestor is
// cached within RepairK deltas, the repair generation cap is reached, or
// the repair itself declines; the caller then recomputes in full.
func (e *Engine) tryRepair(ctx context.Context, sv sourceView, key string, fn repairFn) (*algo.Result, bool) {
	if e.repairK <= 0 || sv.snap == nil {
		return nil, false
	}
	ancestors := sv.snap.Ancestry(e.repairK)
	if len(ancestors) == 0 {
		// Nothing to walk (pristine or freshly compacted store): this miss
		// was never repairable, so it is not a fallback.
		return nil, false
	}
	for _, anc := range ancestors {
		old, ok := e.peek(cacheKey{fp: anc.Fingerprint, key: key})
		if !ok {
			continue
		}
		if algo.RepairGen(old) >= float64(e.repairMaxGen) {
			// Drift cap: certificates admit slightly weaker structure than
			// a fresh run, so chains of repairs-of-repairs are bounded and
			// the next full computation resets the generation.
			e.repairFallbacks.Add(1)
			return nil, false
		}
		delta := collapseDeltas(anc.Deltas)
		endRepair := obs.StartPhase(ctx, "repair")
		t0 := time.Now()
		var res *algo.Result
		var err error
		if delta.Empty() {
			// The pending mutations cancelled out (e.g. an add and its
			// delete): the edge sets are identical, only the incremental
			// fingerprint differs. Re-stamp a copy of the cached envelope.
			clone := *old
			res = &clone
		} else {
			res, err = fn(ctx, old, delta)
		}
		e.met.Repair.Observe(time.Since(t0))
		endRepair()
		if err != nil {
			if !ctxErr(err) {
				e.repairFallbacks.Add(1)
			}
			return nil, false
		}
		e.repairHits.Add(1)
		if res.Metrics != nil {
			e.repairedClusters.Add(uint64(res.Metrics["repaired_clusters"]))
		}
		return stamp(res, sv.fp), true
	}
	e.repairFallbacks.Add(1)
	return nil, false
}

// peek looks up a cached result under an ancestor's key without touching
// the hit counters (the request's own lookup already counted a miss).
func (e *Engine) peek(key cacheKey) (*algo.Result, bool) {
	sh := e.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if ent, ok := sh.cache.get(key); ok {
		if r, ok := ent.val.(*algo.Result); ok {
			return r, true
		}
	}
	return nil, false
}

// collapseDeltas nets a raw mutation suffix into the edge difference
// between the two versions it spans. Store mutations on one edge strictly
// alternate (an add applies only when absent, a delete only when present),
// so an even op count returns the edge to its ancestor state and an odd
// count nets to the last op. The result is sorted for determinism — the
// repair outcome must not depend on map iteration order.
func collapseDeltas(deltas []store.Delta) ldd.EdgeDelta {
	type edge struct{ u, v int32 }
	parity := make(map[edge]store.Op, len(deltas))
	for _, d := range deltas {
		k := edge{d.U, d.V}
		if _, dup := parity[k]; dup {
			delete(parity, k) // even count so far: cancelled out
		} else {
			parity[k] = d.Op
		}
	}
	var out ldd.EdgeDelta
	for k, op := range parity {
		if op == store.OpAdd {
			out.Added = append(out.Added, [2]int32{k.u, k.v})
		} else {
			out.Removed = append(out.Removed, [2]int32{k.u, k.v})
		}
	}
	sortEdges(out.Added)
	sortEdges(out.Removed)
	return out
}

func sortEdges(es [][2]int32) {
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
}
