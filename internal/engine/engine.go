// Package engine is the concurrent serving layer over the algorithm
// registry (internal/algo): any registered algorithm family is invocable by
// name against a registered graph behind a request API that amortizes work
// across callers. A result is computed at most once per (graph fingerprint,
// algorithm, canonical parameters) triple — an LRU cache holds completed
// results, a singleflight table collapses N concurrent identical requests
// into one underlying computation, and a sync.Pool-backed workspace
// reservoir keeps the traversal scratch of the batch query paths warm
// across requests.
//
// The request flow for every call is
//
//	fingerprint → cache lookup → singleflight join → compute → cache fill
//
// and the batch query methods (cluster-of-vertex, ball lookup, per-cluster
// local solves) serve from the cached decomposition without recomputing it.
//
// Every request takes a context: a cancelled or deadline-expired request
// stops promptly — computations poll the context in their outer loops, a
// joiner abandons its singleflight wait without disturbing the computation,
// and a computation cancelled by its initiating request is retried by any
// surviving joiner whose own context is still live. Error results are never
// cached.
//
// Results returned by the engine are shared across callers and must be
// treated as immutable; copy anything you need to mutate.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/algo"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/ilp"
	"repro/internal/ldd"
	"repro/internal/netdecomp"
	"repro/internal/par"
	"repro/internal/solve"
)

// Options configures an Engine.
type Options struct {
	// Capacity bounds the number of cached results across all graphs and
	// algorithms. <= 0 means the default (64).
	Capacity int
}

func (o Options) capacity() int {
	if o.Capacity <= 0 {
		return 64
	}
	return o.Capacity
}

// Stats is a snapshot of the engine's monotonic counters.
type Stats struct {
	// Hits counts requests answered from the completed-result cache.
	Hits uint64
	// Misses counts requests that started a new computation.
	Misses uint64
	// Dedup counts requests that joined an in-flight identical computation
	// instead of starting their own (the singleflight savings).
	Dedup uint64
	// Computations counts underlying algorithm runs; Misses and
	// Computations agree unless a computation panicked or was retried
	// after a cancelled initiator abandoned it.
	Computations uint64
	// Evictions counts cache entries dropped by the LRU policy (capacity
	// overflow or Unregister).
	Evictions uint64
	// Queries counts batch query calls (cluster-of, balls, local solves).
	Queries uint64
	// Cancellations counts requests that returned a context error
	// (deadline exceeded or cancelled) instead of a result.
	Cancellations uint64
}

// cacheKey identifies one cached result: the graph's content fingerprint
// plus the algorithm's canonical cache key (name + canonicalized
// parameters, parallelism knobs excluded — results are bit-identical for
// every worker count, so they must share a cache slot).
type cacheKey struct {
	fp  graphio.Fingerprint
	key string
}

// entry is one cache slot: completed when ready is closed. Cluster
// materialization is cached lazily so repeated per-cluster queries do not
// rebuild the vertex lists.
type entry struct {
	ready chan struct{}
	val   any
	err   error

	clustersOnce sync.Once
	clusters     [][]int32
}

// Engine is the concurrent algorithm server. The zero value is not
// usable; construct with New. All methods are safe for concurrent use.
type Engine struct {
	capacity int

	mu       sync.Mutex
	graphs   map[graphio.Fingerprint]*graph.Graph
	cache    *lruCache           // completed entries, LRU-bounded
	inflight map[cacheKey]*entry // computations in progress

	hits          atomic.Uint64
	misses        atomic.Uint64
	dedup         atomic.Uint64
	computations  atomic.Uint64
	evictions     atomic.Uint64
	queries       atomic.Uint64
	cancellations atomic.Uint64

	wsPool sync.Pool // *graph.Workspace reservoir for the query paths
}

// New constructs an Engine.
func New(o Options) *Engine {
	e := &Engine{
		capacity: o.capacity(),
		graphs:   make(map[graphio.Fingerprint]*graph.Graph),
		inflight: make(map[cacheKey]*entry),
	}
	e.cache = newLRU(e.capacity)
	e.wsPool.New = func() any { return graph.NewWorkspace(0) }
	return e
}

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Hits:          e.hits.Load(),
		Misses:        e.misses.Load(),
		Dedup:         e.dedup.Load(),
		Computations:  e.computations.Load(),
		Evictions:     e.evictions.Load(),
		Queries:       e.queries.Load(),
		Cancellations: e.cancellations.Load(),
	}
}

// Handle names a registered graph: the graph plus its content fingerprint,
// computed once at registration.
type Handle struct {
	g  *graph.Graph
	fp graphio.Fingerprint
}

// Graph returns the underlying graph.
func (h Handle) Graph() *graph.Graph { return h.g }

// Fingerprint returns the graph's content fingerprint.
func (h Handle) Fingerprint() graphio.Fingerprint { return h.fp }

// Register fingerprints g and returns a request handle. Graphs with equal
// fingerprints collapse to the first registered instance, so two callers
// that loaded the same file through different formats share cache entries
// and backing storage. Registered graphs are retained until Unregister —
// the LRU capacity bounds cached results, not graphs — so long-running
// multi-tenant servers must Unregister graphs they are done with.
func (e *Engine) Register(g *graph.Graph) Handle {
	fp := graphio.FingerprintOf(g)
	e.mu.Lock()
	if prev, ok := e.graphs[fp]; ok {
		g = prev
	} else {
		e.graphs[fp] = g
	}
	e.mu.Unlock()
	return Handle{g: g, fp: fp}
}

// Unregister drops the engine's reference to h's graph and every cached
// result for it. Outstanding handles and results remain valid (they hold
// their own references); subsequent requests through such a handle simply
// recompute and re-cache. In-flight computations are left to finish and
// cache normally.
func (e *Engine) Unregister(h Handle) {
	e.mu.Lock()
	delete(e.graphs, h.fp)
	if removed := e.cache.removeFingerprint(h.fp); removed > 0 {
		e.evictions.Add(uint64(removed))
	}
	e.mu.Unlock()
}

// ctxErr reports whether err is a context cancellation/deadline error.
func ctxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// do runs the cache → singleflight → compute flow for one request key. The
// compute closure receives the initiating request's context; a joiner whose
// own context dies abandons the wait, and a joiner that outlives a
// cancelled initiator retries the computation under its own context.
func (e *Engine) do(ctx context.Context, key cacheKey, compute func(context.Context) (any, error)) (any, error) {
	for {
		e.mu.Lock()
		if ent, ok := e.cache.get(key); ok {
			e.hits.Add(1)
			e.mu.Unlock()
			return ent.val, nil
		}
		if ent, ok := e.inflight[key]; ok {
			e.dedup.Add(1)
			e.mu.Unlock()
			select {
			case <-ent.ready:
			case <-ctx.Done():
				e.cancellations.Add(1)
				return nil, ctx.Err()
			}
			if ent.err != nil {
				if ctxErr(ent.err) && ctx.Err() == nil {
					// The initiator was cancelled, we were not: retry under
					// our own context.
					continue
				}
				if ctxErr(ent.err) {
					e.cancellations.Add(1)
				}
				return nil, ent.err
			}
			return ent.val, nil
		}
		ent := &entry{ready: make(chan struct{})}
		e.inflight[key] = ent
		e.misses.Add(1)
		e.mu.Unlock()

		func() {
			defer func() {
				if r := recover(); r != nil {
					ent.err = fmt.Errorf("engine: computation for %q panicked: %v", key.key, r)
				}
				close(ent.ready)
				e.mu.Lock()
				delete(e.inflight, key)
				if ent.err == nil {
					if ev := e.cache.add(key, ent); ev > 0 {
						e.evictions.Add(uint64(ev))
					}
				}
				e.mu.Unlock()
			}()
			e.computations.Add(1)
			ent.val, ent.err = compute(ctx)
		}()
		if ctxErr(ent.err) {
			e.cancellations.Add(1)
		}
		return ent.val, ent.err
	}
}

// getEntry is the read path of do used by the cluster queries: it returns
// the entry itself so lazily materialized per-entry state can be shared.
func (e *Engine) getEntry(ctx context.Context, key cacheKey, compute func(context.Context) (any, error)) (*entry, error) {
	e.mu.Lock()
	if ent, ok := e.cache.get(key); ok {
		e.hits.Add(1)
		e.mu.Unlock()
		return ent, nil
	}
	e.mu.Unlock()
	if _, err := e.do(ctx, key, compute); err != nil {
		return nil, err
	}
	// The entry is now cached (do only stores successful computations).
	e.mu.Lock()
	defer e.mu.Unlock()
	if ent, ok := e.cache.get(key); ok {
		return ent, nil
	}
	// Evicted between fill and re-read under heavy churn: extremely small
	// window; surface as a retryable error rather than recursing.
	return nil, fmt.Errorf("engine: result for %q evicted before use; raise Options.Capacity", key.key)
}

// Run invokes any registered algorithm by name against h's graph,
// computing it at most once per (fingerprint, algorithm, canonical params).
// The returned envelope is shared; treat it as immutable.
func (e *Engine) Run(ctx context.Context, h Handle, name string, p algo.Params) (*algo.Result, error) {
	s, ok := algo.Get(name)
	if !ok {
		return nil, fmt.Errorf("engine: unknown algorithm %q", name)
	}
	key, err := s.CacheKey(p)
	if err != nil {
		return nil, err
	}
	v, err := e.do(ctx, cacheKey{fp: h.fp, key: key}, func(ctx context.Context) (any, error) {
		return s.RunSpec(ctx, h.g, p)
	})
	if err != nil {
		return nil, err
	}
	return v.(*algo.Result), nil
}

// ChangLi returns the Theorem 1.1 decomposition of h's graph under p,
// computing it at most once per (fingerprint, params). This is the typed
// hot path of Run("changli", ...): it shares cache slots with the generic
// path (algo.ChangLiKey == Spec.CacheKey by construction) while building
// the key with a single Sprintf. The result is shared; treat it as
// immutable.
func (e *Engine) ChangLi(ctx context.Context, h Handle, p ldd.Params) (*ldd.Decomposition, error) {
	v, err := e.do(ctx, cacheKey{fp: h.fp, key: algo.ChangLiKey(p)}, func(ctx context.Context) (any, error) {
		return algo.RunChangLi(ctx, h.g, p)
	})
	if err != nil {
		return nil, err
	}
	return v.(*algo.Result).Raw.(*ldd.Decomposition), nil
}

// SparseCover returns the Lemma C.2 sparse cover of h's graph under p,
// cached like ChangLi.
func (e *Engine) SparseCover(ctx context.Context, h Handle, p ldd.ENParams) (*ldd.Cover, error) {
	v, err := e.do(ctx, cacheKey{fp: h.fp, key: algo.SparseCoverKey(p)}, func(ctx context.Context) (any, error) {
		return algo.RunSparseCover(ctx, h.g, p)
	})
	if err != nil {
		return nil, err
	}
	return v.(*algo.Result).Raw.(*ldd.Cover), nil
}

// NetDecomp returns the Linial–Saks style colored network decomposition of
// h's graph under p, cached like ChangLi.
func (e *Engine) NetDecomp(ctx context.Context, h Handle, p netdecomp.Params) (*netdecomp.Decomposition, error) {
	v, err := e.do(ctx, cacheKey{fp: h.fp, key: algo.NetDecompKey(p)}, func(ctx context.Context) (any, error) {
		return algo.RunNetDecomp(ctx, h.g, p)
	})
	if err != nil {
		return nil, err
	}
	return v.(*algo.Result).Raw.(*netdecomp.Decomposition), nil
}

// ClusterOf answers a batch of cluster-of-vertex queries against the cached
// ChangLi decomposition (computing it on first use). The returned slice is
// caller-owned.
func (e *Engine) ClusterOf(ctx context.Context, h Handle, p ldd.Params, vs []int32) ([]int32, error) {
	e.queries.Add(1)
	d, err := e.ChangLi(ctx, h, p)
	if err != nil {
		return nil, err
	}
	out := make([]int32, len(vs))
	for i, v := range vs {
		if v < 0 || int(v) >= len(d.ClusterOf) {
			return nil, fmt.Errorf("engine: vertex %d out of range [0, %d)", v, len(d.ClusterOf))
		}
		out[i] = d.ClusterOf[v]
	}
	return out, nil
}

// Balls answers a batch of ball queries N^radius(v) on h's graph, fanning
// out across the worker pool with per-worker workspaces drawn from the
// engine's reservoir. workers <= 0 means GOMAXPROCS. The returned slices
// are caller-owned.
func (e *Engine) Balls(ctx context.Context, h Handle, vs []int32, radius, workers int) ([][]int32, error) {
	e.queries.Add(1)
	n := h.g.N()
	for _, v := range vs {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("engine: vertex %d out of range [0, %d)", v, n)
		}
	}
	out := make([][]int32, len(vs))
	workers = min(par.Workers(workers), len(vs))
	if workers == 0 {
		return out, nil
	}
	wss := make([]*graph.Workspace, workers)
	for i := range wss {
		wss[i] = e.acquireWS()
	}
	err := par.ForEachCtx(ctx, workers, len(vs), func(w, i int) {
		ball := h.g.BallWithWorkspace(wss[w], int(vs[i]), radius)
		out[i] = append([]int32(nil), ball...)
	})
	for _, ws := range wss {
		e.releaseWS(ws)
	}
	if err != nil {
		e.cancellations.Add(1)
		return nil, err
	}
	return out, nil
}

// ClusterSolve is the result of one per-cluster local solve.
type ClusterSolve struct {
	// Cluster is the cluster id in the decomposition.
	Cluster int
	// Value is the local objective value (weight packed / weight paid).
	Value int64
	// Method is the solver path that produced it.
	Method solve.Method
}

// LocalSolves runs the per-cluster local solve of inst over every cluster
// of the cached ChangLi decomposition of h's graph under p, computing the
// decomposition at most once and fanning the independent per-cluster
// solves out across the worker pool (workers <= 0 means GOMAXPROCS).
// Packing instances use solve.PackingLocal, covering instances
// solve.CoveringLocal; inst must have one variable per graph vertex.
func (e *Engine) LocalSolves(ctx context.Context, h Handle, p ldd.Params, inst *ilp.Instance, opt solve.Options, workers int) ([]ClusterSolve, error) {
	e.queries.Add(1)
	if inst.NumVars() != h.g.N() {
		return nil, fmt.Errorf("engine: instance has %d variables, graph has %d vertices", inst.NumVars(), h.g.N())
	}
	key := cacheKey{fp: h.fp, key: algo.ChangLiKey(p)}
	ent, err := e.getEntry(ctx, key, func(ctx context.Context) (any, error) {
		return algo.RunChangLi(ctx, h.g, p)
	})
	if err != nil {
		return nil, err
	}
	d := ent.val.(*algo.Result).Raw.(*ldd.Decomposition)
	ent.clustersOnce.Do(func() { ent.clusters = d.Clusters() })
	clusters := ent.clusters

	out := make([]ClusterSolve, len(clusters))
	errs := make([]error, len(clusters))
	ferr := par.ForEachCtx(ctx, workers, len(clusters), func(_, c int) {
		switch inst.Kind() {
		case ilp.Covering:
			_, val, m, err := solve.CoveringLocalCtx(ctx, inst, clusters[c], opt)
			out[c] = ClusterSolve{Cluster: c, Value: val, Method: m}
			errs[c] = err
		default:
			_, val, m, err := solve.PackingLocalCtx(ctx, inst, clusters[c], opt)
			out[c] = ClusterSolve{Cluster: c, Value: val, Method: m}
			errs[c] = err
		}
	})
	if ferr != nil {
		e.cancellations.Add(1)
		return nil, ferr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (e *Engine) acquireWS() *graph.Workspace   { return e.wsPool.Get().(*graph.Workspace) }
func (e *Engine) releaseWS(ws *graph.Workspace) { e.wsPool.Put(ws) }
