// Package engine is the concurrent serving layer over the algorithm
// registry (internal/algo): any registered algorithm family is invocable by
// name against a registered graph — immutable or mutable — behind a request
// API that amortizes work across callers. A result is computed at most once
// per (graph snapshot fingerprint, algorithm, canonical parameters) triple.
//
// The engine's state is split into N power-of-two shards, each with its own
// lock, LRU cache of completed results, singleflight table, and slice of
// the graph registry; requests route to shards by a hash of (fingerprint,
// cache key), so throughput scales with cores instead of serializing on one
// mutex. Stats counters stay atomic and global; per-shard occupancy and
// evictions are exposed so cache skew is observable.
//
// The request flow for every call is
//
//	resolve source → fingerprint → cache lookup → singleflight join →
//	compute → cache fill
//
// A Source is either a Handle (an immutable graph registered once) or a
// StoreHandle (a mutable store.Store): the engine resolves a store handle
// to its current snapshot at request start, keys the cache by the snapshot
// fingerprint, and stamps the snapshot identity into the result — so
// in-flight requests are isolated from concurrent mutations, and results
// computed against superseded snapshots age out of the sharded LRU
// naturally instead of requiring invalidation sweeps.
//
// Under churn, a cache miss against a store-backed source does not always
// recompute: with Options.RepairK > 0 the engine walks the snapshot's
// ancestry (the store's delta log and fingerprint chain) up to RepairK
// mutations back for a cached result under the same algorithm key, and
// delta-repairs it onto the current snapshot (ldd.RepairDelta /
// ldd.RepairCoverDelta) — certifying untouched clusters and re-carving
// only what the net edge delta broke. Repairs run on the snapshot's
// overlay view, so a certificate-only repair never materializes a CSR.
// Chains of repairs-of-repairs are capped at Options.RepairMaxGen before a
// full recompute resets the drift; repairs that decline (region too large,
// failed certificate, quality regression) fall back to a recompute and are
// counted in Stats.RepairFallbacks.
//
// Every request takes a context: a cancelled or deadline-expired request
// stops promptly — computations poll the context in their outer loops, a
// joiner abandons its singleflight wait without disturbing the computation,
// and a computation cancelled by its initiating request is retried by any
// surviving joiner whose own context is still live. Error results are never
// cached, and a finished computation is unpublished (inflight entry removed,
// successful result cached) before any joiner wakes, so joiners can never
// re-observe a dead in-flight entry.
//
// Results returned by the engine are shared across callers and must be
// treated as immutable; copy anything you need to mutate.
package engine

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algo"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/ilp"
	"repro/internal/ldd"
	"repro/internal/netdecomp"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/solve"
	"repro/internal/store"
)

// defaultShards is the shard count when Options.Shards is unset. Eight
// keeps per-shard capacity meaningful at the default total capacity while
// removing essentially all lock contention at laptop-to-server core counts.
const defaultShards = 8

// Options configures an Engine.
type Options struct {
	// Capacity bounds the number of cached results across all graphs and
	// algorithms (split evenly across shards). <= 0 means the default (64).
	Capacity int
	// Shards is the number of independently locked cache/singleflight
	// shards; it is rounded up to a power of two and clamped so every
	// shard has capacity >= 1. <= 0 means the default (8). Shards = 1
	// reproduces the single-mutex engine (useful as a contention
	// baseline and for tests that pin global LRU order).
	Shards int
	// MetricsSampleEvery sets the cached-hit latency sampling interval:
	// one request in every MetricsSampleEvery (rounded up to a power of
	// two) pays for clock reads and a histogram record. <= 0 means the
	// default (obs.DefaultSampleEvery); 1 times every request. Compute
	// and joiner-wait latency are always recorded — they are orders of
	// magnitude slower than the instrumentation.
	MetricsSampleEvery int
	// RepairK enables incremental repair on the miss path for store-backed
	// snapshots: a request whose fingerprint misses walks up to RepairK
	// deltas back through the snapshot's ancestry, and if a cached result
	// exists for an ancestor (for a repairable algorithm family) it is
	// delta-repaired onto the current graph instead of recomputed from
	// scratch. <= 0 disables repair (the default): results are then
	// produced exclusively by full runs.
	RepairK int
	// RepairMaxGen caps consecutive repairs of the same cached lineage:
	// once a result's repair generation reaches the cap, the next miss
	// recomputes in full, resetting drift accumulated by repair
	// certificates. <= 0 means the default (32).
	RepairMaxGen int
	// Workers is the default per-query worker bound injected into requests
	// for worker-capable algorithm families (and the Balls/LocalSolves fan
	// outs) when the request leaves its own workers knob unset. <= 0 keeps
	// the downstream default (GOMAXPROCS). Worker counts never change
	// results (parallel execution is bit-identical to serial) and are
	// excluded from cache keys, so this knob only shapes CPU usage.
	Workers int
}

func (o Options) capacity() int {
	if o.Capacity <= 0 {
		return 64
	}
	return o.Capacity
}

func (o Options) repairMaxGen() int {
	if o.RepairMaxGen <= 0 {
		return 32
	}
	return o.RepairMaxGen
}

// maxShards caps the shard count: beyond this, per-shard state is all
// overhead (and an unbounded round-up could overflow).
const maxShards = 1 << 10

func (o Options) shardCount() int {
	n := o.Shards
	if n <= 0 {
		n = defaultShards
	}
	if n > maxShards {
		n = maxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	for p > 1 && o.capacity()/p < 1 {
		p >>= 1
	}
	return p
}

// ShardStat is one shard's occupancy snapshot, for observing skew.
type ShardStat struct {
	// Entries is the number of cached results resident in the shard.
	Entries int
	// Evictions counts entries this shard dropped (LRU overflow or
	// Unregister).
	Evictions uint64
	// Inflight is the number of computations currently in flight in the
	// shard's singleflight table.
	Inflight int
}

// Stats is a snapshot of the engine's monotonic counters.
type Stats struct {
	// Hits counts requests answered from the completed-result cache.
	Hits uint64
	// Misses counts requests that started a new computation.
	Misses uint64
	// Dedup counts requests that joined an in-flight identical computation
	// instead of starting their own (the singleflight savings).
	Dedup uint64
	// Computations counts underlying algorithm runs, including delta
	// repairs; Misses and Computations agree unless a computation panicked
	// or was retried after a cancelled initiator abandoned it. Full
	// recomputes are Computations - RepairHits.
	Computations uint64
	// RepairHits counts misses served by delta-repairing a cached ancestor
	// result instead of recomputing from scratch (a subset of Misses;
	// requires Options.RepairK > 0 and a store-backed snapshot).
	RepairHits uint64
	// RepairFallbacks counts miss-path repair attempts that fell through
	// to a full recompute: no cached ancestor within RepairK deltas, the
	// generation cap was reached, or the repair itself declined (delta too
	// large, certificate failure, invariant violation).
	RepairFallbacks uint64
	// RepairedClusters totals the clusters re-carved or patched across all
	// successful repairs (the incremental work actually done).
	RepairedClusters uint64
	// Evictions counts cache entries dropped by the LRU policy (capacity
	// overflow or Unregister), summed over shards.
	Evictions uint64
	// Queries counts batch query calls (cluster-of, balls, local solves).
	Queries uint64
	// Cancellations counts requests that returned a context error
	// (deadline exceeded or cancelled) instead of a result.
	Cancellations uint64
	// Shards is the per-shard occupancy, indexed by shard; eviction skew
	// shows up as unequal Entries/Evictions across shards.
	Shards []ShardStat
}

// InflightTotal sums the in-flight computations across shards. After a
// serving layer has drained (no requests outstanding), it must be zero —
// any residue is a dangling singleflight entry.
func (s Stats) InflightTotal() int {
	total := 0
	for _, sh := range s.Shards {
		total += sh.Inflight
	}
	return total
}

// EntriesTotal sums the resident cache entries across shards.
func (s Stats) EntriesTotal() int {
	total := 0
	for _, sh := range s.Shards {
		total += sh.Entries
	}
	return total
}

// cacheKey identifies one cached result: the graph snapshot's fingerprint
// plus the algorithm's canonical cache key (name + canonicalized
// parameters, parallelism knobs excluded — results are bit-identical for
// every worker count, so they must share a cache slot).
type cacheKey struct {
	fp  graphio.Fingerprint
	key string
}

// entry is one cache slot: completed when ready is closed. Cluster
// materialization is cached lazily so repeated per-cluster queries do not
// rebuild the vertex lists.
type entry struct {
	ready chan struct{}
	val   any
	err   error

	clustersOnce sync.Once
	clusters     [][]int32
}

// Engine is the concurrent algorithm server. The zero value is not
// usable; construct with New. All methods are safe for concurrent use.
type Engine struct {
	shards []*shard
	mask   uint64

	hits          atomic.Uint64
	misses        atomic.Uint64
	dedup         atomic.Uint64
	computations  atomic.Uint64
	evictions     atomic.Uint64
	queries       atomic.Uint64
	cancellations atomic.Uint64

	repairK          int
	repairMaxGen     int
	workers          int
	repairHits       atomic.Uint64
	repairFallbacks  atomic.Uint64
	repairedClusters atomic.Uint64

	met *obs.EngineMetrics

	wsPool sync.Pool // *graph.Workspace reservoir for the query paths
}

// New constructs an Engine.
func New(o Options) *Engine {
	nshards := o.shardCount()
	capacity := o.capacity()
	e := &Engine{
		shards:       make([]*shard, nshards),
		mask:         uint64(nshards - 1),
		repairK:      o.RepairK,
		repairMaxGen: o.repairMaxGen(),
		workers:      o.Workers,
		met:          obs.NewEngineMetrics(nshards, o.MetricsSampleEvery),
	}
	// Split the total capacity exactly: the first capacity%nshards shards
	// take one extra slot, so Options.Capacity is never silently shrunk by
	// flooring.
	per, extra := capacity/nshards, capacity%nshards
	if per < 1 {
		per, extra = 1, 0
	}
	for i := range e.shards {
		c := per
		if i < extra {
			c++
		}
		e.shards[i] = newShard(c)
	}
	e.wsPool.New = func() any { return graph.NewWorkspace(0) }
	return e
}

// Workers reports the effective per-query worker bound: Options.Workers
// if set, otherwise GOMAXPROCS.
func (e *Engine) Workers() int {
	return par.Workers(e.workers)
}

// defaultWorkers applies the engine's configured worker bound to a request
// that left its own workers knob unset (<= 0). An explicit per-request
// value always wins.
func (e *Engine) defaultWorkers(requested int) int {
	if requested <= 0 && e.workers > 0 {
		return e.workers
	}
	return requested
}

// Stats returns a snapshot of the counters. The per-shard occupancy is
// gathered shard by shard (each under its own lock), so the slice is
// internally consistent per shard but not a global atomic cut.
func (e *Engine) Stats() Stats {
	st := Stats{
		Hits:          e.hits.Load(),
		Misses:        e.misses.Load(),
		Dedup:         e.dedup.Load(),
		Computations:  e.computations.Load(),
		Evictions:     e.evictions.Load(),
		Queries:       e.queries.Load(),
		Cancellations: e.cancellations.Load(),

		RepairHits:       e.repairHits.Load(),
		RepairFallbacks:  e.repairFallbacks.Load(),
		RepairedClusters: e.repairedClusters.Load(),

		Shards: make([]ShardStat, len(e.shards)),
	}
	for i, sh := range e.shards {
		sh.mu.Lock()
		st.Shards[i] = ShardStat{
			Entries:   sh.cache.len(),
			Evictions: sh.evictions,
			Inflight:  len(sh.inflight),
		}
		sh.mu.Unlock()
	}
	return st
}

// NumShards returns the engine's shard count.
func (e *Engine) NumShards() int { return len(e.shards) }

// Metrics returns the engine's latency histograms (hit, compute,
// joiner-wait, per-shard hit). Always non-nil; hit latency is sampled per
// Options.MetricsSampleEvery.
func (e *Engine) Metrics() *obs.EngineMetrics { return e.met }

// sourceView is a resolved Source: the snapshot fingerprint that keys the
// cache, plus access to the graph at that version. Exactly one of g / snap
// is set.
type sourceView struct {
	fp   graphio.Fingerprint
	g    *graph.Graph    // immutable Handle
	snap *store.Snapshot // mutable StoreHandle, pinned at resolve time
}

func (v sourceView) n() int {
	if v.g != nil {
		return v.g.N()
	}
	return v.snap.N()
}

// graph returns the concrete CSR graph of the resolved version,
// materializing a store snapshot at most once.
func (v sourceView) graph() *graph.Graph {
	if v.g != nil {
		return v.g
	}
	return v.snap.Graph()
}

// view returns the resolved version as a read view without forcing
// materialization: store snapshots serve adjacency through their overlay,
// so certificate-only repairs skip the O(n+m) CSR build entirely (a
// re-carve materializes on demand via Snapshot.Graph).
func (v sourceView) view() graph.View {
	if v.g != nil {
		return v.g
	}
	return v.snap
}

// Source is anything the engine can serve requests against: a Handle to a
// registered immutable graph, or a StoreHandle to a mutable store resolved
// to its current snapshot at each request.
type Source interface {
	resolve() sourceView
}

// Handle names a registered immutable graph: the graph plus its content
// fingerprint, computed once at registration. A Handle wraps exactly one
// pointer so converting it to Source never allocates (the request hot path
// passes handles as interfaces); the zero Handle is not usable.
type Handle struct {
	d *handleData
}

type handleData struct {
	g  *graph.Graph
	fp graphio.Fingerprint
}

// Graph returns the underlying graph.
func (h Handle) Graph() *graph.Graph { return h.d.g }

// Fingerprint returns the graph's content fingerprint.
func (h Handle) Fingerprint() graphio.Fingerprint { return h.d.fp }

func (h Handle) resolve() sourceView { return sourceView{fp: h.d.fp, g: h.d.g} }

// StoreHandle serves requests against a mutable store.Store: every request
// resolves the store's current snapshot and is keyed by that snapshot's
// fingerprint, so a mutation simply changes which cache slots subsequent
// requests hit, while in-flight requests keep the snapshot they resolved.
type StoreHandle struct {
	st *store.Store
}

// Store returns the underlying store.
func (sh StoreHandle) Store() *store.Store { return sh.st }

func (sh StoreHandle) resolve() sourceView {
	snap := sh.st.Snapshot()
	return sourceView{fp: snap.Fingerprint(), snap: snap}
}

// Register fingerprints g and returns a request handle. Graphs with equal
// fingerprints collapse to the first registered instance, so two callers
// that loaded the same file through different formats share cache entries
// and backing storage. Registered graphs are retained until Unregister —
// the LRU capacity bounds cached results, not graphs — so long-running
// multi-tenant servers must Unregister graphs they are done with.
func (e *Engine) Register(g *graph.Graph) Handle {
	fp := graphio.FingerprintOf(g)
	sh := e.shardForFP(fp)
	sh.mu.Lock()
	if prev, ok := sh.graphs[fp]; ok {
		g = prev
	} else {
		sh.graphs[fp] = g
	}
	sh.mu.Unlock()
	return Handle{d: &handleData{g: g, fp: fp}}
}

// RegisterStore wraps a mutable store for serving. No registry entry is
// kept (the store owns its graph versions, and its fingerprint changes
// with every mutation); results for superseded snapshots age out of the
// sharded LRU rather than being swept eagerly.
func (e *Engine) RegisterStore(st *store.Store) StoreHandle {
	return StoreHandle{st: st}
}

// Unregister drops the engine's reference to h's graph and every cached
// result for it (across all shards). Outstanding handles and results
// remain valid (they hold their own references); subsequent requests
// through such a handle simply recompute and re-cache. In-flight
// computations are left to finish and cache normally.
func (e *Engine) Unregister(h Handle) {
	gsh := e.shardForFP(h.d.fp)
	gsh.mu.Lock()
	delete(gsh.graphs, h.d.fp)
	gsh.mu.Unlock()
	for _, sh := range e.shards {
		sh.mu.Lock()
		if removed := sh.cache.removeFingerprint(h.d.fp); removed > 0 {
			sh.evictions += uint64(removed)
			e.evictions.Add(uint64(removed))
		}
		sh.mu.Unlock()
	}
}

// ctxErr reports whether err is a context cancellation/deadline error.
func ctxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// do runs the cache → singleflight → compute flow for one request key on
// the key's shard. The compute closure receives the initiating request's
// context; a joiner whose own context dies abandons the wait, and a joiner
// that outlives a cancelled initiator retries the computation under its own
// context.
//
// Publication protocol: the initiator removes the inflight entry — and, on
// success, installs the cache entry — in one critical section *before*
// closing ready. A woken joiner therefore never re-observes the dead
// inflight entry (the pre-shard engine had a window where a retrying joiner
// could spin on an already-completed entry that the initiator had not yet
// unlinked), and a compute error can never leave a dangling inflight entry
// behind, however the initiator's context races with the failure.
func (e *Engine) do(ctx context.Context, key cacheKey, compute func(context.Context) (any, error)) (any, error) {
	// Hit-path timing is sampled: the cached-hit path runs in hundreds of
	// nanoseconds, so only one request in SampleEvery pays for clock reads
	// and histogram records. Compute and joiner-wait are always timed.
	m := e.met
	var t0 time.Time
	sampled := m.Sample()
	if sampled {
		t0 = time.Now()
	}
	idx := e.shardIndex(key)
	sh := e.shards[idx]
	for {
		sh.mu.Lock()
		if ent, ok := sh.cache.get(key); ok {
			e.hits.Add(1)
			sh.mu.Unlock()
			if sampled {
				d := time.Since(t0)
				m.Hit.Observe(d)
				m.ShardHit[idx].Observe(d)
			}
			return ent.val, nil
		}
		if ent, ok := sh.inflight[key]; ok {
			e.dedup.Add(1)
			sh.mu.Unlock()
			// A hit after a joiner wait would record the wait as lookup
			// time; keep the hit histogram honest.
			sampled = false
			endWait := obs.StartPhase(ctx, "joiner-wait")
			tw := time.Now()
			select {
			case <-ent.ready:
				m.JoinWait.Observe(time.Since(tw))
				endWait()
			case <-ctx.Done():
				m.JoinWait.Observe(time.Since(tw))
				endWait()
				e.cancellations.Add(1)
				return nil, ctx.Err()
			}
			if ent.err != nil {
				if ctxErr(ent.err) && ctx.Err() == nil {
					// The initiator was cancelled, we were not: retry under
					// our own context.
					continue
				}
				if ctxErr(ent.err) {
					e.cancellations.Add(1)
				}
				return nil, ent.err
			}
			return ent.val, nil
		}
		ent := &entry{ready: make(chan struct{})}
		sh.inflight[key] = ent
		e.misses.Add(1)
		sh.mu.Unlock()

		func() {
			defer func() {
				if r := recover(); r != nil {
					ent.err = fmt.Errorf("engine: computation for %q panicked: %v", key.key, r)
				}
				sh.mu.Lock()
				delete(sh.inflight, key)
				if ent.err == nil {
					if ev := sh.cache.add(key, ent); ev > 0 {
						sh.evictions += uint64(ev)
						e.evictions.Add(uint64(ev))
					}
				}
				sh.mu.Unlock()
				close(ent.ready)
			}()
			e.computations.Add(1)
			endCompute := obs.StartPhase(ctx, "compute")
			tc := time.Now()
			ent.val, ent.err = compute(ctx)
			m.Compute.Observe(time.Since(tc))
			endCompute()
		}()
		if ctxErr(ent.err) {
			e.cancellations.Add(1)
		}
		return ent.val, ent.err
	}
}

// getEntry is the read path of do used by the cluster queries: it returns
// the entry itself so lazily materialized per-entry state can be shared.
func (e *Engine) getEntry(ctx context.Context, key cacheKey, compute func(context.Context) (any, error)) (*entry, error) {
	sh := e.shardFor(key)
	sh.mu.Lock()
	if ent, ok := sh.cache.get(key); ok {
		e.hits.Add(1)
		sh.mu.Unlock()
		return ent, nil
	}
	sh.mu.Unlock()
	if _, err := e.do(ctx, key, compute); err != nil {
		return nil, err
	}
	// The entry is now cached (do only stores successful computations).
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if ent, ok := sh.cache.get(key); ok {
		return ent, nil
	}
	// Evicted between fill and re-read under heavy churn: extremely small
	// window; surface as a retryable error rather than recursing.
	return nil, fmt.Errorf("engine: result for %q evicted before use; raise Options.Capacity", key.key)
}

// stamp records the snapshot identity a result was computed against, so
// callers (and tests) can audit which graph version produced a cached
// entry.
func stamp(r *algo.Result, fp graphio.Fingerprint) *algo.Result {
	r.Snapshot = fp.String()
	return r
}

// Run invokes any registered algorithm by name against src's current
// snapshot, computing it at most once per (snapshot fingerprint, algorithm,
// canonical params). The returned envelope is shared; treat it as
// immutable.
func (e *Engine) Run(ctx context.Context, src Source, name string, p algo.Params) (*algo.Result, error) {
	s, ok := algo.Get(name)
	if !ok {
		return nil, fmt.Errorf("engine: unknown algorithm %q", name)
	}
	if e.workers > 0 && s.Caps.Workers {
		if v, ok := p["workers"]; !ok || v == "" || v == "0" {
			q := make(algo.Params, len(p)+1)
			for k, v := range p {
				q[k] = v
			}
			q["workers"] = strconv.Itoa(e.workers)
			p = q
		}
	}
	key, err := s.CacheKey(p)
	if err != nil {
		return nil, err
	}
	sv := src.resolve()
	if tr := obs.FromContext(ctx); tr != nil {
		tr.SetRequest(name, key, sv.fp.String())
	}
	v, err := e.do(ctx, cacheKey{fp: sv.fp, key: key}, func(ctx context.Context) (any, error) {
		if s.Caps.Repairable {
			if r, ok := e.tryRepair(ctx, sv, key, func(ctx context.Context, old *algo.Result, delta ldd.EdgeDelta) (*algo.Result, error) {
				return s.RepairSpec(ctx, sv.view(), old, p, delta)
			}); ok {
				return r, nil
			}
		}
		r, err := s.RunSpec(ctx, sv.graph(), p)
		if err != nil {
			return nil, err
		}
		return stamp(r, sv.fp), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*algo.Result), nil
}

// ChangLi returns the Theorem 1.1 decomposition of src's snapshot under p,
// computing it at most once per (fingerprint, params). This is the typed
// hot path of Run("changli", ...): it shares cache slots with the generic
// path (algo.ChangLiKey == Spec.CacheKey by construction) while building
// the key with strconv appends. The result is shared; treat it as
// immutable.
func (e *Engine) ChangLi(ctx context.Context, src Source, p ldd.Params) (*ldd.Decomposition, error) {
	p.Workers = e.defaultWorkers(p.Workers)
	sv := src.resolve()
	key := algo.ChangLiKey(p)
	if tr := obs.FromContext(ctx); tr != nil {
		tr.SetRequest("changli", key, sv.fp.String())
	}
	v, err := e.do(ctx, cacheKey{fp: sv.fp, key: key}, func(ctx context.Context) (any, error) {
		if r, ok := e.tryRepair(ctx, sv, key, func(ctx context.Context, old *algo.Result, delta ldd.EdgeDelta) (*algo.Result, error) {
			return algo.RepairChangLi(ctx, sv.view(), old, p, delta)
		}); ok {
			return r, nil
		}
		r, err := algo.RunChangLi(ctx, sv.graph(), p)
		if err != nil {
			return nil, err
		}
		return stamp(r, sv.fp), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*algo.Result).Raw.(*ldd.Decomposition), nil
}

// SparseCover returns the Lemma C.2 sparse cover of src's snapshot under
// p, cached like ChangLi.
func (e *Engine) SparseCover(ctx context.Context, src Source, p ldd.ENParams) (*ldd.Cover, error) {
	p.Workers = e.defaultWorkers(p.Workers)
	sv := src.resolve()
	key := algo.SparseCoverKey(p)
	if tr := obs.FromContext(ctx); tr != nil {
		tr.SetRequest("sparsecover", key, sv.fp.String())
	}
	v, err := e.do(ctx, cacheKey{fp: sv.fp, key: key}, func(ctx context.Context) (any, error) {
		if r, ok := e.tryRepair(ctx, sv, key, func(ctx context.Context, old *algo.Result, delta ldd.EdgeDelta) (*algo.Result, error) {
			return algo.RepairSparseCover(ctx, sv.view(), old, p, delta)
		}); ok {
			return r, nil
		}
		r, err := algo.RunSparseCover(ctx, sv.graph(), p)
		if err != nil {
			return nil, err
		}
		return stamp(r, sv.fp), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*algo.Result).Raw.(*ldd.Cover), nil
}

// NetDecomp returns the Linial–Saks style colored network decomposition of
// src's snapshot under p, cached like ChangLi.
func (e *Engine) NetDecomp(ctx context.Context, src Source, p netdecomp.Params) (*netdecomp.Decomposition, error) {
	p.Workers = e.defaultWorkers(p.Workers)
	sv := src.resolve()
	key := algo.NetDecompKey(p)
	if tr := obs.FromContext(ctx); tr != nil {
		tr.SetRequest("netdecomp", key, sv.fp.String())
	}
	v, err := e.do(ctx, cacheKey{fp: sv.fp, key: key}, func(ctx context.Context) (any, error) {
		r, err := algo.RunNetDecomp(ctx, sv.graph(), p)
		if err != nil {
			return nil, err
		}
		return stamp(r, sv.fp), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*algo.Result).Raw.(*netdecomp.Decomposition), nil
}

// ClusterOf answers a batch of cluster-of-vertex queries against the cached
// ChangLi decomposition of src's current snapshot (computing it on first
// use). The returned slice is caller-owned.
func (e *Engine) ClusterOf(ctx context.Context, src Source, p ldd.Params, vs []int32) ([]int32, error) {
	e.queries.Add(1)
	d, err := e.ChangLi(ctx, src, p)
	if err != nil {
		return nil, err
	}
	out := make([]int32, len(vs))
	for i, v := range vs {
		if v < 0 || int(v) >= len(d.ClusterOf) {
			return nil, fmt.Errorf("engine: vertex %d out of range [0, %d)", v, len(d.ClusterOf))
		}
		out[i] = d.ClusterOf[v]
	}
	return out, nil
}

// Balls answers a batch of ball queries N^radius(v) on src's current
// snapshot, fanning out across the worker pool. Immutable handles run the
// zero-allocation workspace path; store snapshots run directly on the
// delta overlay (no CSR materialization). workers <= 0 means GOMAXPROCS.
// The returned slices are caller-owned.
func (e *Engine) Balls(ctx context.Context, src Source, vs []int32, radius, workers int) ([][]int32, error) {
	e.queries.Add(1)
	sv := src.resolve()
	n := sv.n()
	for _, v := range vs {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("engine: vertex %d out of range [0, %d)", v, n)
		}
	}
	out := make([][]int32, len(vs))
	workers = min(par.Workers(e.defaultWorkers(workers)), len(vs))
	if workers == 0 {
		return out, nil
	}
	if sv.snap != nil {
		err := par.ForEachCtx(ctx, workers, len(vs), func(_, i int) {
			out[i] = sv.snap.Ball(int(vs[i]), radius)
		})
		if err != nil {
			e.cancellations.Add(1)
			return nil, err
		}
		return out, nil
	}
	g := sv.g
	wss := make([]*graph.Workspace, workers)
	for i := range wss {
		wss[i] = e.acquireWS()
	}
	err := par.ForEachCtx(ctx, workers, len(vs), func(w, i int) {
		ball := g.BallWithWorkspace(wss[w], int(vs[i]), radius)
		out[i] = append([]int32(nil), ball...)
	})
	for _, ws := range wss {
		e.releaseWS(ws)
	}
	if err != nil {
		e.cancellations.Add(1)
		return nil, err
	}
	return out, nil
}

// ClusterSolve is the result of one per-cluster local solve.
type ClusterSolve struct {
	// Cluster is the cluster id in the decomposition.
	Cluster int
	// Value is the local objective value (weight packed / weight paid).
	Value int64
	// Method is the solver path that produced it.
	Method solve.Method
}

// LocalSolves runs the per-cluster local solve of inst over every cluster
// of the cached ChangLi decomposition of src's current snapshot, computing
// the decomposition at most once and fanning the independent per-cluster
// solves out across the worker pool (workers <= 0 means GOMAXPROCS).
// Packing instances use solve.PackingLocal, covering instances
// solve.CoveringLocal; inst must have one variable per graph vertex.
func (e *Engine) LocalSolves(ctx context.Context, src Source, p ldd.Params, inst *ilp.Instance, opt solve.Options, workers int) ([]ClusterSolve, error) {
	e.queries.Add(1)
	p.Workers = e.defaultWorkers(p.Workers)
	sv := src.resolve()
	if inst.NumVars() != sv.n() {
		return nil, fmt.Errorf("engine: instance has %d variables, graph has %d vertices", inst.NumVars(), sv.n())
	}
	key := cacheKey{fp: sv.fp, key: algo.ChangLiKey(p)}
	ent, err := e.getEntry(ctx, key, func(ctx context.Context) (any, error) {
		if r, ok := e.tryRepair(ctx, sv, key.key, func(ctx context.Context, old *algo.Result, delta ldd.EdgeDelta) (*algo.Result, error) {
			return algo.RepairChangLi(ctx, sv.view(), old, p, delta)
		}); ok {
			return r, nil
		}
		r, err := algo.RunChangLi(ctx, sv.graph(), p)
		if err != nil {
			return nil, err
		}
		return stamp(r, sv.fp), nil
	})
	if err != nil {
		return nil, err
	}
	d := ent.val.(*algo.Result).Raw.(*ldd.Decomposition)
	ent.clustersOnce.Do(func() { ent.clusters = d.Clusters() })
	clusters := ent.clusters

	out := make([]ClusterSolve, len(clusters))
	errs := make([]error, len(clusters))
	ferr := par.ForEachCtx(ctx, e.defaultWorkers(workers), len(clusters), func(_, c int) {
		switch inst.Kind() {
		case ilp.Covering:
			_, val, m, err := solve.CoveringLocalCtx(ctx, inst, clusters[c], opt)
			out[c] = ClusterSolve{Cluster: c, Value: val, Method: m}
			errs[c] = err
		default:
			_, val, m, err := solve.PackingLocalCtx(ctx, inst, clusters[c], opt)
			out[c] = ClusterSolve{Cluster: c, Value: val, Method: m}
			errs[c] = err
		}
	})
	if ferr != nil {
		e.cancellations.Add(1)
		return nil, ferr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (e *Engine) acquireWS() *graph.Workspace   { return e.wsPool.Get().(*graph.Workspace) }
func (e *Engine) releaseWS(ws *graph.Workspace) { e.wsPool.Put(ws) }
