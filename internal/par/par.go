// Package par provides the bounded worker pool used to fan out the
// embarrassingly parallel steps of the pipeline (per-vertex ball queries,
// the independent preparation sparse covers, per-region local solves).
//
// The contract is built for determinism: callers index their inputs and
// outputs by task id, workers write only to their own task's output slot,
// and the caller merges results in task order afterwards. Under that
// discipline the observable result is bit-identical for any worker count,
// which is what lets the parallel and sequential paths of the solvers
// cross-check against each other.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values <= 0 mean GOMAXPROCS.
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// ForEach runs fn(worker, i) for every i in [0, n), using at most
// `workers` goroutines (<= 0 means GOMAXPROCS). The worker argument is a
// stable id in [0, workers), so callers can give each worker its own
// scratch space (e.g. a graph.Workspace). Tasks are handed out dynamically
// via an atomic counter; ForEach returns once every invocation finished.
//
// With one worker (or n <= 1) everything runs inline on the calling
// goroutine with zero overhead — the sequential path is literally the same
// code, which keeps "Workers: 1" runs trivially identical to parallel ones
// for deterministic fn.
//
// A panic inside fn does not crash the process from a worker goroutine: the
// first panic value observed is re-thrown on the calling goroutine after
// the surviving workers drain (a panicking worker stops pulling tasks, so
// remaining tasks may or may not run — callers must treat a panicked
// ForEach as having no usable output).
func ForEach(workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicVal any
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}
