// Package par provides the bounded worker pool used to fan out the
// embarrassingly parallel steps of the pipeline (per-vertex ball queries,
// the independent preparation sparse covers, per-region local solves).
//
// The contract is built for determinism: callers index their inputs and
// outputs by task id, workers write only to their own task's output slot,
// and the caller merges results in task order afterwards. Under that
// discipline the observable result is bit-identical for any worker count,
// which is what lets the parallel and sequential paths of the solvers
// cross-check against each other.
//
// Every fan-out is cancellable: ForEachCtx stops handing out new tasks the
// moment its context is cancelled (tasks already started run to completion)
// and returns the context's error, so a deadline-bounded request never
// holds the pool hostage. ForEach is the uncancellable wrapper.
//
// Tasks are scheduled dynamically: workers grab the next undone index (or,
// with ForEachChunk, the next contiguous chunk of indices) from a shared
// atomic counter, so skewed per-item costs balance across workers without
// any static assignment. Chunking trades scheduling granularity for fewer
// atomic operations on cheap items; both schedules run every index exactly
// once and preserve the in-order merge contract, so the observable output
// is identical to a static partitioning.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values <= 0 mean GOMAXPROCS.
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// ForEach runs fn(worker, i) for every i in [0, n), using at most
// `workers` goroutines (<= 0 means GOMAXPROCS). The worker argument is a
// stable id in [0, workers), so callers can give each worker its own
// scratch space (e.g. a graph.Workspace). Tasks are handed out dynamically
// via an atomic counter; ForEach returns once every invocation finished.
//
// With one worker (or n <= 1) everything runs inline on the calling
// goroutine with zero overhead — the sequential path is literally the same
// code, which keeps "Workers: 1" runs trivially identical to parallel ones
// for deterministic fn.
//
// A panic inside fn does not crash the process from a worker goroutine: the
// first panic value observed is re-thrown on the calling goroutine after
// the surviving workers drain (a panicking worker stops pulling tasks, so
// remaining tasks may or may not run — callers must treat a panicked
// ForEach as having no usable output).
func ForEach(workers, n int, fn func(worker, i int)) {
	forEach(nil, workers, n, 1, fn)
}

// ForEachChunk is ForEach with chunked dynamic scheduling: workers grab
// contiguous chunks of `chunk` indices from the shared atomic counter and
// run fn on each index of the chunk in order. One atomic operation per
// chunk instead of per item makes this the right schedule when individual
// items are cheap but their costs are skewed (per-vertex ball queries,
// per-vertex RNG draws): small chunks still balance the skew, and the
// in-order merge contract is unchanged — every index runs exactly once, so
// callers that write out[i] from task i observe output identical to
// ForEach or any static partitioning. chunk <= 1 degenerates to ForEach.
func ForEachChunk(workers, n, chunk int, fn func(worker, i int)) {
	forEach(nil, workers, n, chunk, fn)
}

// ForEachChunkCtx is ForEachChunk with cancellation: the done channel is
// polled once per chunk (not per item), so in-flight chunks finish before
// the fan-out stops. See ForEachCtx for the error contract.
func ForEachChunkCtx(ctx context.Context, workers, n, chunk int, fn func(worker, i int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	forEach(ctx.Done(), workers, n, chunk, fn)
	return ctx.Err()
}

// ForEachCtx is ForEach with cancellation: once ctx is cancelled, no new
// task is dispatched (in-flight tasks finish) and the context's error is
// returned. A nil-Done context (context.Background, context.TODO) takes the
// exact ForEach fast path with no per-task overhead. On a non-nil error the
// output is incomplete and callers must discard it; on a nil return every
// task ran.
func ForEachCtx(ctx context.Context, workers, n int, fn func(worker, i int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	forEach(ctx.Done(), workers, n, 1, fn)
	return ctx.Err()
}

// stopped polls a done channel without blocking; a nil channel never stops.
func stopped(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

func forEach(done <-chan struct{}, workers, n, chunk int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	workers = Workers(workers)
	chunks := (n + chunk - 1) / chunk
	if workers > chunks {
		workers = chunks
	}
	if workers == 1 {
		if done == nil {
			for i := 0; i < n; i++ {
				fn(0, i)
			}
			return
		}
		// The sequential path polls at the same chunk granularity as the
		// parallel one, so cancellation latency does not depend on the
		// worker count.
		for lo := 0; lo < n; lo += chunk {
			if stopped(done) {
				return
			}
			for i := lo; i < min(lo+chunk, n); i++ {
				fn(0, i)
			}
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicVal any
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			for {
				if stopped(done) {
					return
				}
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				for i := c * chunk; i < min((c+1)*chunk, n); i++ {
					fn(worker, i)
				}
			}
		}(w)
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}
