// Package par provides the bounded worker pool used to fan out the
// embarrassingly parallel steps of the pipeline (per-vertex ball queries,
// the independent preparation sparse covers, per-region local solves).
//
// The contract is built for determinism: callers index their inputs and
// outputs by task id, workers write only to their own task's output slot,
// and the caller merges results in task order afterwards. Under that
// discipline the observable result is bit-identical for any worker count,
// which is what lets the parallel and sequential paths of the solvers
// cross-check against each other.
//
// Every fan-out is cancellable: ForEachCtx stops handing out new tasks the
// moment its context is cancelled (tasks already started run to completion)
// and returns the context's error, so a deadline-bounded request never
// holds the pool hostage. ForEach is the uncancellable wrapper.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values <= 0 mean GOMAXPROCS.
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// ForEach runs fn(worker, i) for every i in [0, n), using at most
// `workers` goroutines (<= 0 means GOMAXPROCS). The worker argument is a
// stable id in [0, workers), so callers can give each worker its own
// scratch space (e.g. a graph.Workspace). Tasks are handed out dynamically
// via an atomic counter; ForEach returns once every invocation finished.
//
// With one worker (or n <= 1) everything runs inline on the calling
// goroutine with zero overhead — the sequential path is literally the same
// code, which keeps "Workers: 1" runs trivially identical to parallel ones
// for deterministic fn.
//
// A panic inside fn does not crash the process from a worker goroutine: the
// first panic value observed is re-thrown on the calling goroutine after
// the surviving workers drain (a panicking worker stops pulling tasks, so
// remaining tasks may or may not run — callers must treat a panicked
// ForEach as having no usable output).
func ForEach(workers, n int, fn func(worker, i int)) {
	forEach(nil, workers, n, fn)
}

// ForEachCtx is ForEach with cancellation: once ctx is cancelled, no new
// task is dispatched (in-flight tasks finish) and the context's error is
// returned. A nil-Done context (context.Background, context.TODO) takes the
// exact ForEach fast path with no per-task overhead. On a non-nil error the
// output is incomplete and callers must discard it; on a nil return every
// task ran.
func ForEachCtx(ctx context.Context, workers, n int, fn func(worker, i int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	forEach(ctx.Done(), workers, n, fn)
	return ctx.Err()
}

// stopped polls a done channel without blocking; a nil channel never stops.
func stopped(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

func forEach(done <-chan struct{}, workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		if done == nil {
			for i := 0; i < n; i++ {
				fn(0, i)
			}
			return
		}
		for i := 0; i < n; i++ {
			if stopped(done) {
				return
			}
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicVal any
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			for {
				if stopped(done) {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}
