package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7} {
		n := 1000
		hits := make([]int32, n)
		ForEach(workers, n, func(worker, i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, h)
			}
		}
	}
}

func TestForEachWorkerIDsBounded(t *testing.T) {
	n := 200
	ids := make([]int, n)
	ForEach(3, n, func(worker, i int) { ids[i] = worker })
	for i, w := range ids {
		if w < 0 || w >= 3 {
			t.Fatalf("index %d ran on out-of-range worker %d", i, w)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ForEach(4, 0, func(worker, i int) { t.Fatal("must not run") })
}

func TestWorkersNormalization(t *testing.T) {
	for _, req := range []int{0, -1, -100} {
		if got := Workers(req); got != runtime.GOMAXPROCS(0) {
			t.Fatalf("Workers(%d) = %d, want GOMAXPROCS = %d", req, got, runtime.GOMAXPROCS(0))
		}
	}
	for _, req := range []int{1, 2, 1000} {
		if got := Workers(req); got != req {
			t.Fatalf("Workers(%d) = %d, want %d", req, got, req)
		}
	}
}

// TestForEachSingleWorkerOrdering pins the documented sequential-path
// contract: with one worker every task runs inline, in index order, on
// worker id 0.
func TestForEachSingleWorkerOrdering(t *testing.T) {
	n := 500
	var order []int
	ForEach(1, n, func(worker, i int) {
		if worker != 0 {
			t.Fatalf("single-worker task %d ran on worker %d", i, worker)
		}
		order = append(order, i)
	})
	if len(order) != n {
		t.Fatalf("ran %d tasks, want %d", len(order), n)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("task order[%d] = %d; single-worker path must run in index order", i, got)
		}
	}
	// n <= workers collapses to the inline path too: a single task must
	// also run inline in order.
	ran := false
	ForEach(8, 1, func(worker, i int) { ran = worker == 0 && i == 0 })
	if !ran {
		t.Fatal("n=1 did not run inline on worker 0")
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic swallowed", workers)
				}
				if s, ok := r.(string); !ok || s != "boom" {
					t.Fatalf("workers=%d: recovered %v, want \"boom\"", workers, r)
				}
			}()
			ForEach(workers, 64, func(worker, i int) {
				if i == 13 {
					panic("boom")
				}
			})
		}()
	}
}

// TestForEachPanicDrains checks that a panicking worker does not leak the
// others: ForEach re-panics only after every worker goroutine exited.
func TestForEachPanicDrains(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic swallowed")
		}
	}()
	ForEach(4, 1000, func(worker, i int) {
		panic(i) // every task panics; only one value is re-thrown
	})
}

// --- Context cancellation -------------------------------------------------

func TestForEachCtxBackgroundCoversAll(t *testing.T) {
	for _, workers := range []int{1, 4} {
		n := 500
		hits := make([]int32, n)
		if err := ForEachCtx(context.Background(), workers, n, func(worker, i int) { hits[i]++ }); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, h)
			}
		}
	}
}

func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := ForEachCtx(ctx, 4, 100, func(worker, i int) { ran = true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("task dispatched after cancellation")
	}
}

func TestForEachCtxStopsDispatching(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		const n = 100000
		err := ForEachCtx(ctx, workers, n, func(worker, i int) {
			if ran.Add(1) == 5 {
				cancel()
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// In-flight tasks (at most one per worker) may complete after the
		// cancel, but dispatch must stop almost immediately.
		if got := ran.Load(); got > int64(5+workers) {
			t.Fatalf("workers=%d: %d tasks ran after cancellation", workers, got)
		}
		cancel()
	}
}

// TestForEachCtxDeadline verifies a deadline-bounded fan-out over slow
// tasks returns promptly with DeadlineExceeded instead of draining all n.
func TestForEachCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	var ran atomic.Int64
	start := time.Now()
	err := ForEachCtx(ctx, 2, 10000, func(worker, i int) {
		ran.Add(1)
		time.Sleep(time.Millisecond)
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("fan-out held for %v after deadline", elapsed)
	}
	if got := ran.Load(); got == 10000 {
		t.Fatal("every task ran despite the deadline")
	}
}

func TestForEachCtxNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for trial := 0; trial < 20; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		_ = ForEachCtx(ctx, 8, 1000, func(worker, i int) {
			if i == 3 {
				cancel()
			}
		})
		cancel()
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines leaked: before=%d after=%d", before, after)
	}
}

// --- Chunked scheduling -----------------------------------------------------

// TestForEachChunkMatchesStaticPartitioning pins the satellite contract:
// chunked dynamic scheduling observes output identical to a static
// partitioning (and to plain ForEach) — every index exactly once, and
// out[i] written from task i merges to the same slice for any worker
// count or chunk size.
func TestForEachChunkMatchesStaticPartitioning(t *testing.T) {
	n := 1003
	want := make([]int64, n)
	for i := range want { // static partitioning reference: fn in index order
		want[i] = int64(i) * 3
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, chunk := range []int{0, 1, 3, 16, 1024, 5000} {
			got := make([]int64, n)
			var calls atomic.Int64
			ForEachChunk(workers, n, chunk, func(worker, i int) {
				calls.Add(1)
				got[i] = int64(i) * 3
			})
			if calls.Load() != int64(n) {
				t.Fatalf("workers=%d chunk=%d: %d calls, want %d", workers, chunk, calls.Load(), n)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d chunk=%d: out[%d] = %d, want %d", workers, chunk, i, got[i], want[i])
				}
			}
		}
	}
}

// TestForEachChunkContiguousInOrder verifies each chunk runs its indices
// contiguously in ascending order on a single worker — the property that
// lets callers build per-chunk buffers and merge them in chunk order.
func TestForEachChunkContiguousInOrder(t *testing.T) {
	n, chunk := 517, 8
	owner := make([]int32, n)
	ForEachChunk(4, n, chunk, func(worker, i int) {
		owner[i] = int32(worker) + 1
	})
	for c := 0; c*chunk < n; c++ {
		lo, hi := c*chunk, min((c+1)*chunk, n)
		for i := lo; i < hi; i++ {
			if owner[i] == 0 {
				t.Fatalf("index %d never ran", i)
			}
			if owner[i] != owner[lo] {
				t.Fatalf("chunk %d split across workers: owner[%d]=%d owner[%d]=%d", c, lo, owner[lo]-1, i, owner[i]-1)
			}
		}
	}
}

func TestForEachChunkCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if err := ForEachChunkCtx(ctx, 4, 100, 8, func(worker, i int) { ran = true }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("task dispatched after cancellation")
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var count atomic.Int64
	const chunk = 4
	err := ForEachChunkCtx(ctx2, 2, 100000, chunk, func(worker, i int) {
		if count.Add(1) == 3 {
			cancel2()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// In-flight chunks finish; dispatch stops after at most one extra
	// chunk per worker.
	if got := count.Load(); got > 3+2*chunk {
		t.Fatalf("%d tasks ran after cancellation", got)
	}
}
