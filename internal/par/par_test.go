package par

import "testing"

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7} {
		n := 1000
		hits := make([]int32, n)
		ForEach(workers, n, func(worker, i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, h)
			}
		}
	}
}

func TestForEachWorkerIDsBounded(t *testing.T) {
	n := 200
	ids := make([]int, n)
	ForEach(3, n, func(worker, i int) { ids[i] = worker })
	for i, w := range ids {
		if w < 0 || w >= 3 {
			t.Fatalf("index %d ran on out-of-range worker %d", i, w)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	ForEach(4, 0, func(worker, i int) { t.Fatal("must not run") })
}
