package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// testRecords builds a deterministic record sequence with contiguous epochs
// starting at 1.
func testRecords(k int) []Record {
	out := make([]Record, k)
	for i := range out {
		op := OpAddEdge
		if i%3 == 2 {
			op = OpDelEdge
		}
		out[i] = Record{Op: op, Epoch: uint64(i + 1), U: int32(i % 7), V: int32(i%7 + 1 + i%5)}
	}
	return out
}

// writeLog writes records through a Writer and closes it.
func writeLog(t *testing.T, path string, recs []Record, o Options) {
	t.Helper()
	w, err := Create(path, o)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatalf("Append(%+v): %v", r, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// replayAll collects every record Replay delivers.
func replayAll(t *testing.T, path string, repair bool) ([]Record, ReplayInfo) {
	t.Helper()
	var got []Record
	info, err := Replay(path, repair, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got, info
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	recs := testRecords(57)
	writeLog(t, path, recs, Options{})
	got, info := replayAll(t, path, false)
	if info.Truncated {
		t.Fatal("clean log reported truncated")
	}
	if info.Records != len(recs) || info.ValidBytes != int64(len(recs)*FrameSize) {
		t.Fatalf("info = %+v, want %d records / %d bytes", info, len(recs), len(recs)*FrameSize)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestTornTailTruncates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	recs := testRecords(10)
	writeLog(t, path, recs, Options{})
	// Append half a frame of a would-be 11th record: a torn tail.
	torn := AppendRecord(nil, Record{Op: OpAddEdge, Epoch: 11, U: 1, V: 2})
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:FrameSize/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, info := replayAll(t, path, true)
	if !info.Truncated || len(got) != 10 {
		t.Fatalf("got %d records, truncated=%v; want 10, true", len(got), info.Truncated)
	}
	if fi, _ := os.Stat(path); fi.Size() != int64(10*FrameSize) {
		t.Fatalf("repair left %d bytes, want %d", fi.Size(), 10*FrameSize)
	}
	// A repaired log replays clean.
	if _, info := replayAll(t, path, false); info.Truncated {
		t.Fatal("repaired log still reports truncation")
	}
}

func TestCorruptFrameStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	recs := testRecords(10)
	writeLog(t, path, recs, Options{})
	// Flip one payload byte of frame 6 (0-based 5): replay must stop at 5
	// records even though frames 7..10 are intact — a mid-log corruption
	// makes everything after it untrustworthy.
	data, _ := os.ReadFile(path)
	data[5*FrameSize+headerSize+3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, info := replayAll(t, path, true)
	if !info.Truncated || len(got) != 5 {
		t.Fatalf("got %d records, truncated=%v; want 5, true", len(got), info.Truncated)
	}
	if fi, _ := os.Stat(path); fi.Size() != int64(5*FrameSize) {
		t.Fatalf("repair left %d bytes, want %d", fi.Size(), 5*FrameSize)
	}
}

func TestStopReplayTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	writeLog(t, path, testRecords(8), Options{})
	seen := 0
	info, err := Replay(path, true, func(r Record) error {
		if r.Epoch == 5 {
			return ErrStopReplay // logical rejection, e.g. epoch discontinuity
		}
		seen++
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if seen != 4 || !info.Truncated || info.ValidBytes != int64(4*FrameSize) {
		t.Fatalf("seen=%d info=%+v; want 4 records kept", seen, info)
	}
}

func TestReplayCallbackError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	writeLog(t, path, testRecords(3), Options{})
	boom := errors.New("boom")
	if _, err := Replay(path, false, func(Record) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Replay error = %v, want %v", err, boom)
	}
}

func TestOpenAppendContinues(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	recs := testRecords(12)
	writeLog(t, path, recs[:7], Options{})
	w, err := OpenAppend(path, int64(7*FrameSize), Options{})
	if err != nil {
		t.Fatalf("OpenAppend: %v", err)
	}
	for _, r := range recs[7:] {
		if err := w.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, info := replayAll(t, path, false)
	if info.Truncated || len(got) != 12 {
		t.Fatalf("got %d records truncated=%v, want 12 clean", len(got), info.Truncated)
	}
}

func TestGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	// A byte threshold of 4 frames: 10 appends must sync at least twice
	// without any explicit Sync call.
	w, err := Create(path, Options{FlushInterval: time.Hour, FlushBytes: 4 * FrameSize})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range testRecords(10) {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, syncs := w.Counters(); syncs < 2 {
		t.Fatalf("byte-threshold group commit synced %d times, want >= 2", syncs)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// The interval path: one append, no threshold pressure, and the
	// background flusher syncs within the window.
	path2 := filepath.Join(t.TempDir(), "wal2.log")
	w2, err := Create(path2, Options{FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(Record{Op: OpAddEdge, Epoch: 1, U: 0, V: 1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, syncs := w2.Counters(); syncs >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval flusher never synced")
		}
		time.Sleep(time.Millisecond)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncEveryAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Create(path, Options{FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range testRecords(5) {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, syncs := w.Counters(); syncs != 5 {
		t.Fatalf("FlushInterval<0 synced %d times over 5 appends", syncs)
	}
	w.Close()
}

func TestInjectedFailAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Create(path, Options{Injector: new(Injector).FailAppend(4)})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(6)
	var appendErr error
	for _, r := range recs {
		if appendErr = w.Append(r); appendErr != nil {
			break
		}
	}
	if !errors.Is(appendErr, ErrInjectedFailure) {
		t.Fatalf("append error = %v, want injected failure", appendErr)
	}
	// Sticky: the writer refuses further appends.
	if err := w.Append(recs[4]); !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("post-failure append error = %v, want sticky injected failure", err)
	}
	w.Close()
	got, info := replayAll(t, path, true)
	if len(got) != 3 || info.Truncated {
		t.Fatalf("failed-write log recovered %d records truncated=%v, want 3 clean", len(got), info.Truncated)
	}
}

func TestInjectedShortAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Create(path, Options{Injector: new(Injector).ShortAppend(3)})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(5)
	var appendErr error
	for _, r := range recs {
		if appendErr = w.Append(r); appendErr != nil {
			break
		}
	}
	if !errors.Is(appendErr, ErrInjectedFailure) {
		t.Fatalf("append error = %v, want injected failure", appendErr)
	}
	w.Close()
	// The torn half-frame is on disk; recovery drops it.
	if fi, _ := os.Stat(path); fi.Size() != int64(2*FrameSize+FrameSize/2) {
		t.Fatalf("file size %d, want torn %d", fi.Size(), 2*FrameSize+FrameSize/2)
	}
	got, info := replayAll(t, path, true)
	if len(got) != 2 || !info.Truncated {
		t.Fatalf("torn log recovered %d records truncated=%v, want 2 truncated", len(got), info.Truncated)
	}
	if fi, _ := os.Stat(path); fi.Size() != int64(2*FrameSize) {
		t.Fatalf("repair left %d bytes, want %d", fi.Size(), 2*FrameSize)
	}
}

func TestInjectedCorruptAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Create(path, Options{Injector: new(Injector).CorruptAppend(2)})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(5)
	for _, r := range recs {
		// Silent corruption: every append reports success.
		if err := w.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	w.Close()
	got, info := replayAll(t, path, true)
	if len(got) != 1 || !info.Truncated {
		t.Fatalf("corrupt log recovered %d records truncated=%v, want 1 truncated", len(got), info.Truncated)
	}
}

func TestInjectedCrashAfterSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	// Sync on every append; crash right after the 3rd fsync.
	w, err := Create(path, Options{FlushInterval: -1, Injector: new(Injector).CrashAfterSync(3)})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(6)
	var appendErr error
	applied := 0
	for _, r := range recs {
		if appendErr = w.Append(r); appendErr != nil {
			break
		}
		applied++
	}
	if !errors.Is(appendErr, ErrInjectedCrash) {
		t.Fatalf("append error = %v, want injected crash", appendErr)
	}
	// The crashing append's own bytes were written and synced before the
	// crash fired, so the durable prefix includes it.
	if applied != 2 {
		t.Fatalf("%d appends returned success before the crash, want 2", applied)
	}
	w.Close()
	got, info := replayAll(t, path, true)
	if len(got) != 3 || info.Truncated {
		t.Fatalf("post-crash log recovered %d records truncated=%v, want 3 clean", len(got), info.Truncated)
	}
}

func TestDecodeHostileInputsNeverPanic(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x11},
		make([]byte, headerSize-1),
		make([]byte, headerSize),             // zero length payload
		{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}, // absurd length
		AppendRecord(nil, Record{Op: 0, Epoch: 1}),  // unknown op 0, valid CRC
		AppendRecord(nil, Record{Op: 77, Epoch: 1}), // unknown op, valid CRC
	}
	for i, b := range cases {
		if _, _, err := DecodeRecord(b); err == nil {
			t.Fatalf("case %d: hostile input decoded cleanly", i)
		}
	}
}
