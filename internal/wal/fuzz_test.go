package wal

import (
	"bytes"
	"errors"
	"testing"
)

// decodeAll scans b like Replay does, returning the decoded valid prefix.
func decodeAll(b []byte) (recs []Record, validBytes int) {
	off := 0
	for off < len(b) {
		r, n, err := DecodeRecord(b[off:])
		if err != nil {
			break
		}
		recs = append(recs, r)
		off += n
	}
	return recs, off
}

// fuzzCorpus builds seed inputs: a few valid record streams plus hand-torn
// and hand-corrupted variants.
func fuzzCorpus() [][]byte {
	streams := [][]Record{
		nil,
		{{Op: OpAddEdge, Epoch: 1, U: 0, V: 1}},
		{
			{Op: OpAddEdge, Epoch: 1, U: 3, V: 9},
			{Op: OpDelEdge, Epoch: 2, U: 3, V: 9},
			{Op: OpAddEdge, Epoch: 3, U: 7, V: 8},
		},
		{
			{Op: OpAddEdge, Epoch: 100, U: 2147483646, V: 2147483647},
			{Op: OpDelEdge, Epoch: 101, U: 0, V: 2147483647},
		},
	}
	var out [][]byte
	for _, s := range streams {
		var b []byte
		for _, r := range s {
			b = AppendRecord(b, r)
		}
		out = append(out, b)
		if len(b) > 0 {
			out = append(out, b[:len(b)-5]) // torn tail
			corrupt := append([]byte(nil), b...)
			corrupt[len(corrupt)/2] ^= 0x01 // mid-stream bit flip
			out = append(out, corrupt)
		}
	}
	return out
}

// FuzzWALDecoder pins the replayer's safety contract on arbitrary bytes:
// never panic, stop cleanly at the first bad frame, and decode a prefix
// that round-trips — re-encoding the decoded records reproduces exactly
// the bytes that were accepted.
func FuzzWALDecoder(f *testing.F) {
	for _, seed := range fuzzCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid := decodeAll(data)
		if valid > len(data) {
			t.Fatalf("valid prefix %d exceeds input length %d", valid, len(data))
		}
		if valid != len(recs)*FrameSize {
			t.Fatalf("%d records but %d valid bytes (frame size %d)", len(recs), valid, FrameSize)
		}
		// Round trip: replay(encode(ops)) must reproduce the op list, and
		// the canonical encoding must reproduce the accepted bytes.
		var re []byte
		for _, r := range recs {
			if r.Op != OpAddEdge && r.Op != OpDelEdge {
				t.Fatalf("decoder accepted unknown op %d", r.Op)
			}
			re = AppendRecord(re, r)
		}
		if !bytes.Equal(re, data[:valid]) {
			t.Fatalf("re-encoding the decoded prefix diverged from the input")
		}
		back, n := decodeAll(re)
		if n != len(re) || len(back) != len(recs) {
			t.Fatalf("re-decode: %d records / %d bytes, want %d / %d", len(back), n, len(recs), len(re))
		}
		for i := range recs {
			if back[i] != recs[i] {
				t.Fatalf("record %d changed across round trip: %+v vs %+v", i, back[i], recs[i])
			}
		}
		// The tail beyond the valid prefix, if any, must decode to an error,
		// not a record.
		if valid < len(data) {
			if _, _, err := DecodeRecord(data[valid:]); err == nil {
				t.Fatal("decoder stopped before a frame it would accept")
			} else if !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("tail error is neither torn nor corrupt: %v", err)
			}
		}
	})
}
