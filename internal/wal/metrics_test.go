package wal

import (
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// TestWriterMetrics checks the append/fsync/batch histograms fill and
// agree with the writer's own counters, across both inline and forced
// syncs.
func TestWriterMetrics(t *testing.T) {
	m := obs.NewWALMetrics()
	path := filepath.Join(t.TempDir(), "wal.log")
	// FlushInterval large so only explicit Syncs and the inline FlushBytes
	// trigger fire; FlushBytes = 4 frames.
	w, err := Create(path, Options{FlushInterval: 1e9, FlushBytes: 4 * FrameSize, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	const records = 10
	for i := 0; i < records; i++ {
		if err := w.Append(Record{Op: OpAddEdge, Epoch: uint64(i + 1), U: 0, V: int32(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	appends, syncs := w.Counters()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	if got := m.Append.Snapshot().Count; got != uint64(appends) || got != records {
		t.Fatalf("append observations = %d, counters say %d appends", got, appends)
	}
	fs := m.Fsync.Snapshot()
	if fs.Count != uint64(syncs) {
		t.Fatalf("fsync observations = %d, counters say %d syncs", fs.Count, syncs)
	}
	if fs.Count < 2 {
		t.Fatalf("expected at least one inline + one forced sync, got %d", fs.Count)
	}
	// Batch sizes: every appended record is attributed to exactly one sync.
	bs := m.Batch.Snapshot()
	if bs.Count != fs.Count {
		t.Fatalf("batch observations %d != fsync observations %d", bs.Count, fs.Count)
	}
	if bs.Sum != records {
		t.Fatalf("batch sizes sum to %d, want %d (each record in exactly one group commit)", bs.Sum, records)
	}
}

// TestWriterNoMetrics pins that a nil Metrics stays nil-safe on every path.
func TestWriterNoMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Create(path, Options{FlushInterval: -1}) // sync every append
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(Record{Op: OpAddEdge, Epoch: uint64(i + 1), U: 0, V: int32(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}
