// Package wal is the durable append-only write-ahead log under the
// versioned graph store: every applied mutation is framed, checksummed, and
// written to disk before it is acknowledged, so a process that dies —
// kill -9 included — reboots into exactly the state its callers were told
// about.
//
// Framing. A record is one fixed-shape mutation (op, epoch, edge endpoints)
// encoded as a length-prefixed, CRC32C-protected frame:
//
//	[payload length: uint32 LE][crc32c(payload): uint32 LE][payload]
//	payload = [op: byte][epoch: uint64 LE][u: int32 LE][v: int32 LE]
//
// The length prefix makes the stream self-describing, the Castagnoli CRC
// catches torn and bit-rotted frames, and the embedded epoch makes the log
// self-sequencing: a replayer can verify that record k really is mutation
// checkpointEpoch+k without trusting file order alone.
//
// Durability. Append writes the frame to the file immediately (so a killed
// process loses nothing it acknowledged — the bytes are in the kernel) and
// batches the expensive fsync: a group-commit goroutine syncs every
// FlushInterval, and an append that pushes the unsynced byte count past
// FlushBytes syncs inline. Sync and Close force the flush. Power loss can
// drop the tail beyond the last fsync; what remains is always a valid
// prefix, which is the crash-consistency contract the store recovers under.
//
// Recovery. Replay scans a log sequentially, stopping cleanly at the first
// torn or corrupt frame (or at a frame the caller's callback rejects with
// ErrStopReplay, e.g. an epoch discontinuity); with repair enabled the file
// is truncated to the valid prefix so the writer can append again. Replay
// never panics on hostile bytes — the fuzz harness pins that.
//
// Fault injection. An Injector deterministically fails, shortens, or
// corrupts the Nth append, or kills the writer right after the Nth fsync,
// so recovery paths are tested against the exact failure shapes real disks
// produce.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
)

// Record ops. The values are written to disk and must never be renumbered;
// they deliberately match graphio's fingerprint-chain op bytes so one
// constant describes a mutation everywhere.
const (
	// OpAddEdge records an edge insertion.
	OpAddEdge byte = 1
	// OpDelEdge records an edge deletion.
	OpDelEdge byte = 2
)

const (
	headerSize  = 8  // payload length + CRC32C, both uint32 LE
	payloadSize = 17 // op + epoch + u + v
	// FrameSize is the on-disk footprint of one record; every frame is the
	// same size, so pending-delta byte footprints are exact, not estimates.
	FrameSize = headerSize + payloadSize
)

// Record is one logged mutation: the op, the epoch the store assigned to
// it (epochs increase by exactly 1 per applied mutation), and the
// normalized (U < V) edge endpoints.
type Record struct {
	Op    byte
	Epoch uint64
	U, V  int32
}

// castagnoli is the CRC32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Decode errors. ErrTorn marks an incomplete tail frame (clean truncation
// point — the record was never fully written); ErrCorrupt marks a frame
// that is structurally complete but fails validation (CRC mismatch, absurd
// length, unknown op). Recovery treats both as "the log ends here".
var (
	ErrTorn    = errors.New("wal: torn frame")
	ErrCorrupt = errors.New("wal: corrupt frame")
)

// AppendRecord encodes r as one frame and appends it to buf.
func AppendRecord(buf []byte, r Record) []byte {
	var p [payloadSize]byte
	p[0] = r.Op
	binary.LittleEndian.PutUint64(p[1:9], r.Epoch)
	binary.LittleEndian.PutUint32(p[9:13], uint32(r.U))
	binary.LittleEndian.PutUint32(p[13:17], uint32(r.V))
	buf = binary.LittleEndian.AppendUint32(buf, payloadSize)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(p[:], castagnoli))
	return append(buf, p[:]...)
}

// DecodeRecord decodes the first frame of b, returning the record and the
// number of bytes consumed. ErrTorn means b ends mid-frame; ErrCorrupt
// means the frame is complete but invalid. Decoding never panics, whatever
// the input.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < headerSize {
		return Record{}, 0, ErrTorn
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if n != payloadSize {
		// v1 frames are fixed-size; any other length is garbage (and an
		// unvalidated huge length must not drive a huge read).
		return Record{}, 0, fmt.Errorf("%w: payload length %d", ErrCorrupt, n)
	}
	if len(b) < headerSize+payloadSize {
		return Record{}, 0, ErrTorn
	}
	p := b[headerSize : headerSize+payloadSize]
	if crc32.Checksum(p, castagnoli) != binary.LittleEndian.Uint32(b[4:8]) {
		return Record{}, 0, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	r := Record{
		Op:    p[0],
		Epoch: binary.LittleEndian.Uint64(p[1:9]),
		U:     int32(binary.LittleEndian.Uint32(p[9:13])),
		V:     int32(binary.LittleEndian.Uint32(p[13:17])),
	}
	if r.Op != OpAddEdge && r.Op != OpDelEdge {
		return Record{}, 0, fmt.Errorf("%w: unknown op %d", ErrCorrupt, r.Op)
	}
	return r, FrameSize, nil
}

// ErrStopReplay is returned by a Replay callback to reject a record that
// decoded cleanly but is logically impossible (epoch discontinuity, edge
// op that cannot apply): replay stops, the record does not count toward
// the valid prefix, and with repair enabled the file is truncated before
// it — the same treatment as a corrupt frame, because that is what it is.
var ErrStopReplay = errors.New("wal: stop replay")

// ReplayInfo summarizes one replay pass.
type ReplayInfo struct {
	// Records is the number of valid records delivered to the callback.
	Records int
	// ValidBytes is the byte length of the valid prefix.
	ValidBytes int64
	// Truncated reports whether bytes after the valid prefix were dropped
	// (torn tail, corrupt frame, or a callback rejection).
	Truncated bool
}

// Replay scans the log at path, invoking fn for each valid record in
// order. The scan stops cleanly at the first torn or corrupt frame — a
// damaged tail is expected after a crash, not a boot failure. If repair is
// true the file is truncated to the valid prefix so a writer can reopen it
// for appending. Any other error from fn aborts the replay and is returned
// as-is.
func Replay(path string, repair bool, fn func(Record) error) (ReplayInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ReplayInfo{}, err
	}
	var info ReplayInfo
	off := 0
	for off < len(data) {
		r, n, derr := DecodeRecord(data[off:])
		if derr != nil {
			info.Truncated = true
			break
		}
		if ferr := fn(r); ferr != nil {
			if errors.Is(ferr, ErrStopReplay) {
				info.Truncated = true
				break
			}
			info.ValidBytes = int64(off)
			return info, ferr
		}
		off += n
		info.Records++
	}
	info.ValidBytes = int64(off)
	if repair && info.Truncated {
		if err := os.Truncate(path, info.ValidBytes); err != nil {
			return info, fmt.Errorf("wal: truncating %s to %d bytes: %w", path, info.ValidBytes, err)
		}
	}
	return info, nil
}

// Options configures a Writer's group commit.
type Options struct {
	// FlushInterval is the group-commit window: a background goroutine
	// fsyncs the log this often while unsynced bytes are pending. 0 means
	// the default (2ms); negative means fsync on every append (slow, but
	// the strongest contract — useful in tests).
	FlushInterval time.Duration
	// FlushBytes triggers an inline fsync once this many unsynced bytes
	// accumulate, bounding how much a power loss can drop regardless of the
	// interval. <= 0 means the default (256 KiB).
	FlushBytes int
	// Injector, when non-nil, deterministically injects write/sync faults
	// (tests only).
	Injector *Injector
	// Metrics, when non-nil, receives append latency, fsync latency, and
	// group-commit batch sizes (records per fsync). Recording is a few
	// atomic adds; nil disables all timing.
	Metrics *obs.WALMetrics
}

func (o Options) flushInterval() time.Duration {
	if o.FlushInterval == 0 {
		return 2 * time.Millisecond
	}
	return o.FlushInterval
}

func (o Options) flushBytes() int {
	if o.FlushBytes <= 0 {
		return 256 << 10
	}
	return o.FlushBytes
}

// Writer appends framed records to a log file with batched fsync. Safe for
// concurrent use. Errors are sticky: after a failed append or sync the
// writer refuses further work, so a store layered above cannot silently
// acknowledge mutations past a dead log.
type Writer struct {
	mu       sync.Mutex
	f        *os.File
	opts     Options
	off      int64 // bytes successfully appended
	unsynced int
	appends  uint64
	syncs    uint64
	// batch counts records appended since the last fsync, so the metrics
	// can histogram group-commit batch sizes.
	batch  int
	err    error
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup
}

// Create creates (or truncates) the log at path and starts the group-commit
// flusher.
func Create(path string, o Options) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return newWriter(f, 0, o), nil
}

// OpenAppend opens an existing log for appending at offset off (the valid
// prefix length established by Replay with repair).
func OpenAppend(path string, off int64, o Options) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(off, 0); err != nil {
		f.Close()
		return nil, err
	}
	return newWriter(f, off, o), nil
}

func newWriter(f *os.File, off int64, o Options) *Writer {
	w := &Writer{f: f, opts: o, off: off, done: make(chan struct{})}
	if o.flushInterval() > 0 {
		w.wg.Add(1)
		go w.flushLoop(o.flushInterval())
	}
	return w
}

// flushLoop is the group-commit goroutine: while unsynced bytes are
// pending, fsync once per interval, so many appends share one disk flush.
func (w *Writer) flushLoop(interval time.Duration) {
	defer w.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-w.done:
			return
		case <-t.C:
			w.mu.Lock()
			if w.unsynced > 0 && w.err == nil && !w.closed {
				w.syncLocked()
			}
			w.mu.Unlock()
		}
	}
}

// Append frames r and writes it to the file immediately (the write(2) is
// synchronous, so an acknowledged record survives a process kill); the
// fsync is batched per Options. The first failure is sticky.
func (w *Writer) Append(r Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errors.New("wal: writer closed")
	}
	var t0 time.Time
	if w.opts.Metrics != nil {
		t0 = time.Now()
	}
	frame := AppendRecord(make([]byte, 0, FrameSize), r)
	if inj := w.opts.Injector; inj != nil {
		mutated, err := inj.transformAppend(frame)
		if err != nil {
			if len(mutated) > 0 {
				// Short write: part of the frame reaches the disk, exactly
				// like a torn sector. The writer is poisoned; recovery must
				// drop the torn tail.
				w.f.Write(mutated)
			}
			w.err = err
			return err
		}
		frame = mutated
	}
	if _, err := w.f.Write(frame); err != nil {
		w.err = fmt.Errorf("wal: append: %w", err)
		return w.err
	}
	w.off += int64(len(frame))
	w.unsynced += len(frame)
	w.appends++
	w.batch++
	if w.unsynced >= w.opts.flushBytes() || w.opts.flushInterval() < 0 {
		err := w.syncLocked()
		if m := w.opts.Metrics; m != nil {
			m.Append.Observe(time.Since(t0))
		}
		return err
	}
	if m := w.opts.Metrics; m != nil {
		m.Append.Observe(time.Since(t0))
	}
	return nil
}

// syncLocked fsyncs pending bytes; caller holds w.mu.
func (w *Writer) syncLocked() error {
	m := w.opts.Metrics
	var t0 time.Time
	if m != nil {
		t0 = time.Now()
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("wal: fsync: %w", err)
		return w.err
	}
	if m != nil {
		m.Fsync.Observe(time.Since(t0))
		m.Batch.ObserveValue(int64(w.batch))
	}
	w.unsynced = 0
	w.batch = 0
	w.syncs++
	if inj := w.opts.Injector; inj != nil {
		if err := inj.afterSync(); err != nil {
			// Crash-after-fsync: everything synced so far is durable; the
			// writer dies here, as if the process did.
			w.err = err
			return err
		}
	}
	return nil
}

// Sync forces an fsync of everything appended so far.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errors.New("wal: writer closed")
	}
	if w.unsynced == 0 {
		return nil
	}
	return w.syncLocked()
}

// Close stops the flusher, syncs pending bytes, and closes the file.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	var err error
	if w.err == nil && w.unsynced > 0 {
		err = w.syncLocked()
	}
	w.mu.Unlock()
	close(w.done)
	w.wg.Wait()
	if cerr := w.f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	return err
}

// Offset returns the byte length of the log's valid appended prefix.
func (w *Writer) Offset() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.off
}

// Counters returns the lifetime append and fsync counts.
func (w *Writer) Counters() (appends, syncs uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appends, w.syncs
}

// Err returns the sticky error, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}
