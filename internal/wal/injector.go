package wal

import (
	"errors"
	"sync"
)

// Injected failure sentinels, distinguishable from real I/O errors in test
// assertions.
var (
	// ErrInjectedFailure marks an append the injector refused or tore.
	ErrInjectedFailure = errors.New("wal: injected write failure")
	// ErrInjectedCrash marks the writer dying right after an fsync (the
	// synced prefix is durable; nothing after it ever reaches the file).
	ErrInjectedCrash = errors.New("wal: injected crash after fsync")
)

// Injector deterministically injects the classic disk failure shapes into a
// Writer: a failed write (nothing reaches the file), a short write (a torn
// frame reaches the file), a silent corruption (a bit-flipped frame reaches
// the file and the writer does not notice), and a crash immediately after
// an fsync. Counts are 1-based over the writer's append/sync sequence; zero
// disables a fault. One Injector drives one failure-shape experiment; it is
// safe for concurrent use.
type Injector struct {
	mu             sync.Mutex
	failAt         int
	shortAt        int
	corruptAt      int
	crashAfterSync int
	appends        int
	syncs          int
}

// FailAppend makes the Nth append fail with no bytes written.
func (i *Injector) FailAppend(n int) *Injector { i.failAt = n; return i }

// ShortAppend makes the Nth append write only half its frame, then fail —
// a torn write.
func (i *Injector) ShortAppend(n int) *Injector { i.shortAt = n; return i }

// CorruptAppend makes the Nth append write a bit-flipped frame and report
// success — a silent corruption only the replayer's CRC can catch.
func (i *Injector) CorruptAppend(n int) *Injector { i.corruptAt = n; return i }

// CrashAfterSync kills the writer immediately after its Nth fsync.
func (i *Injector) CrashAfterSync(n int) *Injector { i.crashAfterSync = n; return i }

// transformAppend applies the configured fault to the current append.
// Returning (prefix, err) with a non-empty prefix means "these bytes made
// it to the platter before the failure".
func (i *Injector) transformAppend(frame []byte) ([]byte, error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.appends++
	switch i.appends {
	case i.failAt:
		return nil, ErrInjectedFailure
	case i.shortAt:
		return frame[:len(frame)/2], ErrInjectedFailure
	case i.corruptAt:
		mutated := append([]byte(nil), frame...)
		mutated[len(mutated)-1] ^= 0x40 // flip a payload bit; the CRC now lies
		return mutated, nil
	}
	return frame, nil
}

// afterSync applies the crash-after-fsync fault.
func (i *Injector) afterSync() error {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.syncs++
	if i.crashAfterSync != 0 && i.syncs == i.crashAfterSync {
		return ErrInjectedCrash
	}
	return nil
}
