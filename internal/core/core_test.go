package core

import (
	"errors"
	"testing"

	"repro/internal/graph/gen"
	"repro/internal/ilp"
	"repro/internal/problems"
)

func TestDecomposeDefault(t *testing.T) {
	g := gen.Grid(15, 15)
	d, err := Decompose(g, DecomposeOptions{Epsilon: 0.25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ok, u, v := d.ValidateSeparation(g); !ok {
		t.Fatalf("adjacent clusters %d-%d", u, v)
	}
	if d.UnclusteredFraction() > 0.25 {
		t.Fatalf("unclustered fraction %v", d.UnclusteredFraction())
	}
}

func TestDecomposeAlgorithms(t *testing.T) {
	g := gen.Cycle(500)
	for _, algo := range []Decomposer{DecomposerChangLi, DecomposerElkinNeiman, DecomposerBlackbox} {
		d, err := Decompose(g, DecomposeOptions{Epsilon: 0.3, Algorithm: algo, Seed: 2, Scale: 0.01})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if ok, _, _ := d.ValidateSeparation(g); !ok {
			t.Fatalf("%v: separation violated", algo)
		}
		if algo.String() == "" {
			t.Fatal("empty algorithm name")
		}
	}
}

func TestDecomposeRepair(t *testing.T) {
	g := gen.Cycle(800)
	d, err := Decompose(g, DecomposeOptions{Epsilon: 0.3, Seed: 3, RepairDiameter: true})
	if err != nil {
		t.Fatal(err)
	}
	if sd := d.MaxStrongDiameter(g); sd == -1 {
		t.Fatal("repaired cluster disconnected")
	}
}

func TestDecomposeValidation(t *testing.T) {
	if _, err := Decompose(nil, DecomposeOptions{Epsilon: 0.5}); !errors.Is(err, ErrBadOptions) {
		t.Fatal("nil graph accepted")
	}
	g := gen.Path(5)
	if _, err := Decompose(g, DecomposeOptions{Epsilon: 0}); !errors.Is(err, ErrBadOptions) {
		t.Fatal("epsilon 0 accepted")
	}
	if _, err := Decompose(g, DecomposeOptions{Epsilon: 0.5, Algorithm: Decomposer(42)}); !errors.Is(err, ErrBadOptions) {
		t.Fatal("unknown decomposer accepted")
	}
}

func TestSolveMISWithRatio(t *testing.T) {
	g := gen.Cycle(200)
	rep, err := Solve(problems.MIS, g, Options{Epsilon: 0.25, Seed: 4, PrepRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible {
		t.Fatal("infeasible")
	}
	if rep.Optimum != 100 {
		t.Fatalf("optimum = %d, want 100", rep.Optimum)
	}
	if rep.Ratio < 0.75 {
		t.Fatalf("ratio %v < 1-eps", rep.Ratio)
	}
	if rep.Kind != ilp.Packing {
		t.Fatal("wrong kind")
	}
}

func TestSolveCoveringWithRatio(t *testing.T) {
	g := gen.Cycle(200)
	rep, err := Solve(problems.MinVertexCover, g, Options{Epsilon: 0.25, Seed: 5, PrepRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible {
		t.Fatal("infeasible")
	}
	if rep.Ratio > 1.25 {
		t.Fatalf("ratio %v > 1+eps", rep.Ratio)
	}
	if rep.Kind != ilp.Covering {
		t.Fatal("wrong kind")
	}
}

func TestSolveGKM(t *testing.T) {
	g := gen.Cycle(100)
	rep, err := Solve(problems.MIS, g, Options{Epsilon: 0.3, Algorithm: SolverGKM, Seed: 6, Scale: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible || rep.Algorithm != SolverGKM {
		t.Fatalf("GKM report wrong: %+v", rep)
	}
	if rep.Ratio < 0.7 {
		t.Fatalf("GKM ratio %v", rep.Ratio)
	}
	if SolverGKM.String() != "gkm" || SolverChangLi.String() != "chang-li" {
		t.Fatal("solver names")
	}
}

func TestSolveNoOracle(t *testing.T) {
	// Odd cycle MDS: no exact oracle -> Optimum = -1, Ratio = 0.
	g := gen.Cycle(51)
	rep, err := Solve(problems.MinDominatingSet, g, Options{Epsilon: 0.3, Seed: 7, PrepRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible {
		t.Fatal("infeasible")
	}
	if rep.Optimum != -1 || rep.Ratio != 0 {
		t.Fatalf("oracle fields: opt=%d ratio=%v", rep.Optimum, rep.Ratio)
	}
}

func TestSolveILPValidation(t *testing.T) {
	if _, err := SolveILP(nil, Options{Epsilon: 0.5}); !errors.Is(err, ErrBadOptions) {
		t.Fatal("nil instance accepted")
	}
	g := gen.Path(4)
	inst, _ := problems.Build(problems.MIS, g, nil)
	if _, err := SolveILP(inst, Options{Epsilon: -1}); !errors.Is(err, ErrBadOptions) {
		t.Fatal("bad epsilon accepted")
	}
	if _, err := SolveILP(inst, Options{Epsilon: 0.5, Algorithm: Solver(42)}); !errors.Is(err, ErrBadOptions) {
		t.Fatal("unknown solver accepted")
	}
}

func TestSolveILPDirect(t *testing.T) {
	// A general (non-graph-problem) packing ILP through the facade.
	b := ilp.NewBuilder(ilp.Packing, []int64{3, 2, 2})
	b.AddConstraint([]ilp.Term{{Var: 0, Coeff: 2}, {Var: 1, Coeff: 1}, {Var: 2, Coeff: 1}}, 3)
	inst, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := SolveILP(inst, Options{Epsilon: 0.2, Seed: 8, PrepRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible {
		t.Fatal("infeasible")
	}
	// OPT = 5 (vars 0 and 1, or 0 and 2); one cluster covers everything, so
	// the exact local solve should find it.
	if rep.Value < 4 {
		t.Fatalf("value = %d", rep.Value)
	}
}
