// Package core is the public API of the repository: one-call entry points
// for the paper's two headline capabilities —
//
//   - low-diameter decomposition with a with-high-probability guarantee
//     (Theorem 1.1, plus the prior algorithms and the Section 1.6 boost for
//     comparison), via Decompose;
//   - (1±ε)-approximate packing and covering integer linear programs
//     (Theorems 1.2 and 1.3, plus the GKM17 baseline), via Solve and
//     SolveILP.
//
// Everything underneath (the LOCAL-model runtime, the decomposition
// algorithms, the local solvers) is reachable through the internal packages
// for advanced use; examples/ shows both levels.
package core

import (
	"errors"
	"fmt"

	"repro/internal/covering"
	"repro/internal/gkm"
	"repro/internal/graph"
	"repro/internal/ilp"
	"repro/internal/ldd"
	"repro/internal/packing"
	"repro/internal/problems"
	"repro/internal/solve"
)

// Decomposer selects a low-diameter decomposition algorithm.
type Decomposer int

const (
	// DecomposerChangLi is Theorem 1.1: the ε|V| unclustered bound holds
	// with probability 1 - 1/poly(n). The default.
	DecomposerChangLi Decomposer = iota + 1
	// DecomposerElkinNeiman is Lemma C.1: the bound holds in expectation
	// only (Appendix C exhibits failure families).
	DecomposerElkinNeiman
	// DecomposerBlackbox is the Section 1.6 boost: w.h.p. guarantee with a
	// log(1/ε) round factor instead of log³(1/ε).
	DecomposerBlackbox
)

// String implements fmt.Stringer.
func (d Decomposer) String() string {
	switch d {
	case DecomposerChangLi:
		return "chang-li"
	case DecomposerElkinNeiman:
		return "elkin-neiman"
	case DecomposerBlackbox:
		return "blackbox"
	default:
		return fmt.Sprintf("Decomposer(%d)", int(d))
	}
}

// DecomposeOptions configures Decompose.
type DecomposeOptions struct {
	// Epsilon bounds the unclustered fraction. Required (0 < ε <= 1).
	Epsilon float64
	// Algorithm selects the decomposer; zero means DecomposerChangLi.
	Algorithm Decomposer
	// Seed drives all randomness.
	Seed uint64
	// Scale trades round fidelity for laptop-scale radii (see
	// ldd.Params.Scale); zero means the paper's constants.
	Scale float64
	// NTilde is the known upper bound on n; zero means n.
	NTilde int
	// RepairDiameter post-processes clusters down to the ideal
	// O(log n / ε) strong-diameter bound (free in the LOCAL model).
	RepairDiameter bool
}

// ErrBadOptions is returned for invalid configuration.
var ErrBadOptions = errors.New("core: invalid options")

// Decompose computes an (ε, O(log n / ε)) low-diameter decomposition.
func Decompose(g *graph.Graph, opt DecomposeOptions) (*ldd.Decomposition, error) {
	if g == nil {
		return nil, fmt.Errorf("%w: nil graph", ErrBadOptions)
	}
	if opt.Epsilon <= 0 || opt.Epsilon > 1 {
		return nil, fmt.Errorf("%w: epsilon %v outside (0, 1]", ErrBadOptions, opt.Epsilon)
	}
	algo := opt.Algorithm
	if algo == 0 {
		algo = DecomposerChangLi
	}
	var d *ldd.Decomposition
	switch algo {
	case DecomposerChangLi:
		d = ldd.ChangLi(g, ldd.Params{
			Epsilon: opt.Epsilon, NTilde: opt.NTilde, Seed: opt.Seed, Scale: opt.Scale,
		})
	case DecomposerElkinNeiman:
		d = ldd.ElkinNeiman(g, nil, ldd.ENParams{
			Lambda: opt.Epsilon, NTilde: opt.NTilde, Seed: opt.Seed,
		})
	case DecomposerBlackbox:
		d = ldd.Blackbox(g, ldd.BlackboxParams{
			Epsilon: opt.Epsilon, NTilde: opt.NTilde, Seed: opt.Seed, Scale: opt.Scale,
		})
	default:
		return nil, fmt.Errorf("%w: unknown decomposer %d", ErrBadOptions, int(algo))
	}
	if opt.RepairDiameter {
		d = ldd.RepairDiameter(g, d, opt.Epsilon, 0)
	}
	return d, nil
}

// Solver selects the ILP approximation algorithm.
type Solver int

const (
	// SolverChangLi is Theorems 1.2/1.3 (the paper's contribution). Default.
	SolverChangLi Solver = iota + 1
	// SolverGKM is the Ghaffari–Kuhn–Maus STOC 2017 baseline.
	SolverGKM
)

// String implements fmt.Stringer.
func (s Solver) String() string {
	switch s {
	case SolverChangLi:
		return "chang-li"
	case SolverGKM:
		return "gkm"
	default:
		return fmt.Sprintf("Solver(%d)", int(s))
	}
}

// Options configures Solve / SolveILP.
type Options struct {
	// Epsilon is the approximation parameter (0 < ε <= 1). Required.
	Epsilon float64
	// Algorithm selects the solver; zero means SolverChangLi.
	Algorithm Solver
	// Seed drives all randomness.
	Seed uint64
	// Scale trades fidelity for laptop-scale radii.
	Scale float64
	// NTilde is the known upper bound on max(n, total weight); zero = n.
	NTilde int
	// PrepRuns overrides the Θ(log ñ) preparation decompositions of the
	// Chang–Li solvers (zero = paper value); used to keep sweeps fast.
	PrepRuns int
	// LocalSolve tunes the per-cluster optimizers.
	LocalSolve solve.Options
}

// Report is the outcome of a solve.
type Report struct {
	// Solution is the 0/1 assignment (indexed by ILP variable).
	Solution ilp.Solution
	// Value is the objective value.
	Value int64
	// Rounds is the LOCAL round complexity charged.
	Rounds int
	// Feasible reports whether every constraint holds (always true unless
	// something is deeply wrong; surfaced for the harness's assertions).
	Feasible bool
	// Exact reports whether all local solves were exact, which is what the
	// (1±ε) guarantee is conditioned on at laptop scale.
	Exact bool
	// Optimum is the exact optimum when a poly-time oracle applied, else -1.
	Optimum int64
	// Ratio is Value/Optimum (packing) or Value/Optimum (covering) when
	// Optimum >= 0; else 0. For packing a ratio >= 1-ε certifies the run;
	// for covering a ratio <= 1+ε does.
	Ratio float64
	// Algorithm and Kind echo the configuration.
	Algorithm Solver
	Kind      ilp.Kind
}

// SolveILP approximates an arbitrary packing or covering ILP instance.
func SolveILP(inst *ilp.Instance, opt Options) (*Report, error) {
	if inst == nil {
		return nil, fmt.Errorf("%w: nil instance", ErrBadOptions)
	}
	if opt.Epsilon <= 0 || opt.Epsilon > 1 {
		return nil, fmt.Errorf("%w: epsilon %v outside (0, 1]", ErrBadOptions, opt.Epsilon)
	}
	algo := opt.Algorithm
	if algo == 0 {
		algo = SolverChangLi
	}
	rep := &Report{Algorithm: algo, Kind: inst.Kind(), Optimum: -1}
	switch {
	case algo == SolverChangLi && inst.Kind() == ilp.Packing:
		r := packing.Solve(inst, packing.Params{
			Epsilon: opt.Epsilon, NTilde: opt.NTilde, Seed: opt.Seed,
			Scale: opt.Scale, PrepRuns: opt.PrepRuns, Solve: opt.LocalSolve,
		})
		rep.Solution, rep.Value, rep.Rounds, rep.Exact = r.Solution, r.Value, r.Rounds, r.Exact
	case algo == SolverChangLi && inst.Kind() == ilp.Covering:
		r, err := covering.Solve(inst, covering.Params{
			Epsilon: opt.Epsilon, NTilde: opt.NTilde, Seed: opt.Seed,
			Scale: opt.Scale, PrepRuns: opt.PrepRuns, Solve: opt.LocalSolve,
		})
		if err != nil {
			return nil, err
		}
		rep.Solution, rep.Value, rep.Rounds, rep.Exact = r.Solution, r.Value, r.Rounds, r.Exact
	case algo == SolverGKM && inst.Kind() == ilp.Packing:
		r := gkm.SolvePacking(inst, gkm.Params{
			Epsilon: opt.Epsilon, NTilde: opt.NTilde, Seed: opt.Seed,
			Scale: opt.Scale, Solve: opt.LocalSolve,
		})
		rep.Solution, rep.Value, rep.Rounds, rep.Exact = r.Solution, r.Value, r.Rounds, r.Exact
	case algo == SolverGKM && inst.Kind() == ilp.Covering:
		r := gkm.SolveCovering(inst, gkm.Params{
			Epsilon: opt.Epsilon, NTilde: opt.NTilde, Seed: opt.Seed,
			Scale: opt.Scale, Solve: opt.LocalSolve,
		})
		rep.Solution, rep.Value, rep.Rounds, rep.Exact = r.Solution, r.Value, r.Rounds, r.Exact
	default:
		return nil, fmt.Errorf("%w: unknown solver %d", ErrBadOptions, int(algo))
	}
	rep.Feasible, _ = inst.Feasible(rep.Solution)
	return rep, nil
}

// Solve builds the named problem on g and approximates it, attaching the
// exact-optimum ratio when a polynomial oracle applies to g.
func Solve(p problems.Problem, g *graph.Graph, opt Options) (*Report, error) {
	inst, err := problems.Build(p, g, nil)
	if err != nil {
		return nil, err
	}
	rep, err := SolveILP(inst, opt)
	if err != nil {
		return nil, err
	}
	if !problems.Verify(p, g, rep.Solution) {
		rep.Feasible = false
	}
	if optVal, err := problems.ExactOptimum(p, g); err == nil && optVal > 0 {
		rep.Optimum = optVal
		rep.Ratio = float64(rep.Value) / float64(optVal)
	}
	return rep, nil
}
