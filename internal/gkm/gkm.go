// Package gkm reproduces the Ghaffari–Kuhn–Maus (STOC 2017) baseline for
// (1±ε)-approximate packing and covering ILPs in the LOCAL model — the
// algorithm the reproduced paper (Chang–Li, PODC 2023) improves upon.
//
// The GKM scheme (Section 1.2 of the paper):
//
//  1. pick k = Θ(log(ñ)/ε), the horizon of the sequential
//     ball-growing-and-carving argument;
//  2. compute a (C, D) network decomposition of the power graph G^{2k}
//     (C = O(log n) colors, D = O(log n) weak diameter), so same-color
//     clusters are more than 2k apart in G;
//  3. process color classes sequentially: every cluster of the current
//     color gathers its k-radius neighborhood and simulates the sequential
//     carving process on the residual instance, fixing local solutions as
//     it goes.
//
// Round complexity O(k · C · D) = O(log³(n)/ε), versus the reproduced
// paper's O(log³(1/ε)·log(n)/ε). The experiment harness compares the two
// head-to-head (experiments E6/E7).
//
// The carving step at a centre v on the residual instance: grow balls
// N^1(v) ⊆ N^2(v) ⊆ ... and stop at the first i where the local optimum
// value stabilizes (within a 1±ε factor); fix the ball's local solution and
// remove the ball. The stabilization index exists within k levels because
// the local value otherwise grows geometrically and is bounded by the total
// weight.
package gkm

import (
	"context"
	"math"

	"repro/internal/graph"
	"repro/internal/ilp"
	"repro/internal/local"
	"repro/internal/netdecomp"
	"repro/internal/solve"
)

// Params configures a GKM run.
type Params struct {
	// Epsilon is the approximation parameter.
	Epsilon float64
	// NTilde is the known upper bound on max(n, total weight); zero = n.
	NTilde int
	// Seed drives the network-decomposition randomness.
	Seed uint64
	// Scale multiplies the horizon k = ⌈ln(ñ)/ε⌉, mirroring ldd.Params.
	Scale float64
	// Solve tunes the local optimizers.
	Solve solve.Options
}

// Result is the outcome of a GKM run.
type Result struct {
	Solution ilp.Solution
	Value    int64
	Rounds   int
	// Exact reports whether every local solve used an exact method.
	Exact bool
	// Colors and Horizon expose the internals for the experiments.
	Colors  int
	Horizon int
}

func (p Params) horizon(nTilde int) int {
	eps := p.Epsilon
	if eps <= 0 || eps > 1 {
		eps = 0.5
	}
	scale := p.Scale
	if scale <= 0 {
		scale = 1
	}
	k := int(math.Ceil(math.Log(float64(nTilde)+3) / eps * scale))
	if k < 2 {
		k = 2
	}
	return k
}

// SolvePacking runs the baseline on a packing instance. The communication
// graph is the instance's primal graph, where every constraint is a clique —
// this guarantees that any constraint touching a removed ball lies entirely
// within the one-larger ball.
func SolvePacking(inst *ilp.Instance, p Params) *Result {
	r, _ := run(context.Background(), inst, p, true)
	return r
}

// SolvePackingCtx is SolvePacking with cancellation: the context is
// checked per color class and per carved cluster.
func SolvePackingCtx(ctx context.Context, inst *ilp.Instance, p Params) (*Result, error) {
	return run(ctx, inst, p, true)
}

// SolveCovering runs the baseline on a covering instance.
func SolveCovering(inst *ilp.Instance, p Params) *Result {
	r, _ := run(context.Background(), inst, p, false)
	return r
}

// SolveCoveringCtx is SolveCovering with cancellation.
func SolveCoveringCtx(ctx context.Context, inst *ilp.Instance, p Params) (*Result, error) {
	return run(ctx, inst, p, false)
}

func run(ctx context.Context, inst *ilp.Instance, p Params, packing bool) (*Result, error) {
	g := inst.Hypergraph().Primal()
	n := g.N()
	nTilde := p.NTilde
	if nTilde < n {
		nTilde = n
	}
	k := p.horizon(nTilde)
	var rc local.RoundCounter
	ws := graph.AcquireWorkspace()
	defer graph.ReleaseWorkspace(ws)

	// Step 2: network decomposition of G^{2k}. Building the power graph is
	// free locally; the decomposition itself costs rounds_nd * 2k in G.
	power := g.PowerWithWorkspace(ws, 2*k)
	nd, err := netdecomp.DecomposeCtx(ctx, power, netdecomp.Params{NTilde: nTilde, Seed: p.Seed})
	if err != nil {
		return nil, err
	}
	rc.Charge(nd.Rounds * 2 * k)

	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	solution := inst.NewSolution()
	exact := true

	// used[j] tracks how much of constraint j's budget (packing) or demand
	// (covering) the fixed partial solution consumes.
	used := make([]float64, inst.NumConstraints())

	clusters := nd.Clusters()
	byColor := nd.ClustersByColor()
	var scratch gkmScratch
	for _, clusterIDs := range byColor {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Same-color clusters are > 2k apart in G; their k-radius carving
		// regions are disjoint, so they run in parallel: one phase.
		rc.StartPhase()
		for _, cid := range clusterIDs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			cluster := clusters[cid]
			// The cluster leader gathers N^k(cluster) and simulates the
			// sequential carving for the centres inside the cluster.
			rc.Charge(k * 2)
			for _, centre := range cluster {
				if !alive[centre] {
					continue
				}
				ok := carve(inst, g, int(centre), k, alive, solution, used, packing, p, ws, &scratch)
				if !ok {
					exact = false
				}
			}
		}
		rc.EndPhase()
	}
	// Covering: isolated leftovers (alive vertices whose constraints are
	// still unmet) cannot remain — every vertex was in some cluster and was
	// processed as a centre, so alive vertices at this point have all their
	// constraints already satisfied or belong to carved regions. Verify and
	// patch defensively (never needed in tests; cheap insurance).
	if !packing {
		patchUncovered(inst, solution, used)
	}
	return &Result{
		Solution: solution,
		Value:    inst.Value(solution),
		Rounds:   rc.Total(),
		Exact:    exact,
		Colors:   nd.NumColors,
		Horizon:  k,
	}, nil
}

// carve runs the sequential ball-growing step at a centre on the residual
// instance, fixes the chosen ball's local solution into solution/used, and
// removes the ball from alive. Returns whether all local solves were exact.
func carve(inst *ilp.Instance, g *graph.Graph, centre, k int, alive []bool,
	solution ilp.Solution, used []float64, packing bool, p Params,
	ws *graph.Workspace, scratch *gkmScratch) bool {

	eps := p.Epsilon
	if eps <= 0 || eps > 1 {
		eps = 0.5
	}
	// layers alias ws and stay valid through the local solves below, which
	// never touch the traversal workspace.
	layers := g.BallLayersWithWorkspace(ws, centre, k+1, alive)
	if layers == nil {
		return true
	}
	// prefix[i] = vertices within distance i.
	exact := true
	var ball []int32
	values := make([]int64, 0, len(layers)+1)
	sols := make([]ilp.Solution, 0, len(layers)+1)
	for i := 0; i < len(layers); i++ {
		ball = append(ball, layers[i]...)
		sol, val, ex := localSolve(inst, ball, used, solution, packing, p, scratch)
		if !ex {
			exact = false
		}
		values = append(values, val)
		sols = append(sols, sol)
	}
	// Pick the stabilization index i*: the first i with
	//   packing:  value_i >= (1-eps) * value_{i+1}
	//   covering: value_{i+1} <= (1+eps) * value_i
	// Fall back to the last level if none stabilizes within the horizon.
	iStar := len(values) - 1
	for i := 0; i+1 < len(values); i++ {
		if packing {
			if float64(values[i]) >= (1-eps)*float64(values[i+1]) {
				iStar = i
				break
			}
		} else {
			if float64(values[i+1]) <= (1+eps)*float64(values[i]) {
				iStar = i
				break
			}
		}
	}
	// Fix the solution: packing fixes the ball-i* solution and removes ball
	// i*; covering fixes the ball-(i*+1) solution (it covers every residual
	// constraint touching ball i*) and removes ball i*.
	fixIdx := iStar
	if !packing && iStar+1 < len(sols) {
		fixIdx = iStar + 1
	}
	fixed := sols[fixIdx]
	for v, set := range fixed {
		if !set || solution[v] {
			continue
		}
		solution[v] = true
		for _, cj := range inst.ConstraintsOf(v) {
			used[cj] += coeff(inst, int(cj), v)
		}
	}
	// Remove ball i* (all of it, clustered or not).
	removeUpTo := iStar
	for i := 0; i <= removeUpTo && i < len(layers); i++ {
		for _, v := range layers[i] {
			alive[v] = false
		}
	}
	return exact
}

// gkmScratch holds the dense remaps replacing localSolve's per-call hash
// maps; one per carve suffices (carves run sequentially).
type gkmScratch struct {
	pos  graph.Remap // ball vertex -> local variable index
	seen graph.Remap // constraint-id marks
}

// localSolve optimizes the residual instance restricted to the alive ball:
// a derived ILP over the ball variables with residual budgets/demands.
func localSolve(inst *ilp.Instance, ball []int32, used []float64, fixed ilp.Solution, packing bool, p Params, sc *gkmScratch) (ilp.Solution, int64, bool) {
	// Remap ball variables. Variables already fixed to 1 by an earlier
	// carve (possible for covering, whose fix region exceeds its removal
	// region) are free to reuse: their weight is already paid.
	pos := &sc.pos
	pos.Reset(inst.NumVars())
	weights := make([]int64, len(ball))
	for i, v := range ball {
		pos.Set(v, int32(i))
		weights[i] = inst.Weight(int(v))
		if fixed[v] {
			weights[i] = 0
		}
	}
	kind := ilp.Covering
	if packing {
		kind = ilp.Packing
	}
	b := ilp.NewBuilder(kind, weights)
	seen := &sc.seen
	seen.Reset(inst.NumConstraints())
	for _, v := range ball {
		for _, cj := range inst.ConstraintsOf(int(v)) {
			if seen.Has(cj) {
				continue
			}
			seen.Set(cj, 1)
			c := inst.Constraint(int(cj))
			if packing {
				// Enforce every touching constraint with residual budget;
				// outside-unfixed variables are zero-extended.
				var terms []ilp.Term
				for _, t := range c.Terms {
					if idx, ok := pos.Get(int32(t.Var)); ok {
						terms = append(terms, ilp.Term{Var: int(idx), Coeff: t.Coeff})
					}
				}
				res := c.B - used[cj]
				if res < 0 {
					res = 0
				}
				if len(terms) > 0 {
					b.AddConstraint(terms, res)
				}
			} else {
				// Enforce constraints whose unmet demand can and must be
				// covered inside the ball: all unfixed variables in the ball.
				res := c.B - used[cj]
				if res <= 1e-9 {
					continue
				}
				inside := true
				var terms []ilp.Term
				for _, t := range c.Terms {
					idx, ok := pos.Get(int32(t.Var))
					if !ok {
						inside = false
						break
					}
					terms = append(terms, ilp.Term{Var: int(idx), Coeff: t.Coeff})
				}
				if inside && len(terms) > 0 {
					b.AddConstraint(terms, res)
				}
			}
		}
	}
	localInst, err := b.Build()
	if err != nil {
		// Residual local instance invalid (cannot happen for well-formed
		// inputs); degrade to the empty solution.
		return inst.NewSolution(), 0, false
	}
	allVars := make([]int32, len(ball))
	for i := range allVars {
		allVars[i] = int32(i)
	}
	var localSol ilp.Solution
	var val int64
	exact := true
	if packing {
		var m solve.Method
		localSol, val, m = solve.PackingLocal(localInst, allVars, p.Solve)
		exact = m.Exact()
	} else {
		var m solve.Method
		var cerr error
		localSol, val, m, cerr = solve.CoveringLocal(localInst, allVars, p.Solve)
		if cerr != nil {
			return inst.NewSolution(), 0, false
		}
		exact = m.Exact()
	}
	// Lift back to global indices.
	out := inst.NewSolution()
	for i, set := range localSol {
		if set {
			out[ball[i]] = true
		}
	}
	return out, val, exact
}

// coeff returns constraint j's coefficient on variable v (0 when absent).
func coeff(inst *ilp.Instance, j, v int) float64 {
	for _, t := range inst.Constraint(j).Terms {
		if t.Var == v {
			return t.Coeff
		}
	}
	return 0
}

// patchUncovered is defensive insurance for covering runs: any constraint
// still unmet is fixed by setting all its variables (always feasible for a
// well-formed instance). It should never trigger; the experiments assert on
// feasibility, not on this path.
func patchUncovered(inst *ilp.Instance, solution ilp.Solution, used []float64) {
	for j := 0; j < inst.NumConstraints(); j++ {
		c := inst.Constraint(j)
		if used[j] >= c.B-1e-9 {
			continue
		}
		for _, t := range c.Terms {
			if !solution[t.Var] {
				solution[t.Var] = true
				for _, cj := range inst.ConstraintsOf(t.Var) {
					used[cj] += coeff(inst, int(cj), t.Var)
				}
			}
		}
	}
}
