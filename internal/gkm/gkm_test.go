package gkm

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/ilp"
	"repro/internal/problems"
)

func misOn(t testing.TB, g *graph.Graph) *ilp.Instance {
	t.Helper()
	inst, err := problems.Build(problems.MIS, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestPackingMISFeasibleAndGood(t *testing.T) {
	g := gen.Cycle(120)
	inst := misOn(t, g)
	eps := 0.25
	r := SolvePacking(inst, Params{Epsilon: eps, Seed: 1, Scale: 0.4})
	if ok, j := inst.Feasible(r.Solution); !ok {
		t.Fatalf("infeasible at constraint %d", j)
	}
	if !problems.Verify(problems.MIS, g, r.Solution) {
		t.Fatal("not an independent set")
	}
	opt, err := problems.ExactOptimum(problems.MIS, g)
	if err != nil {
		t.Fatal(err)
	}
	if float64(r.Value) < (1-eps)*float64(opt) {
		t.Fatalf("value %d < (1-eps)*opt (%d)", r.Value, opt)
	}
	if r.Rounds <= 0 || r.Colors < 1 || r.Horizon < 2 {
		t.Fatalf("bogus accounting: %+v", r)
	}
}

func TestPackingMISOnTree(t *testing.T) {
	g := gen.CompleteDAryTree(2, 6) // 127 vertices
	inst := misOn(t, g)
	eps := 0.2
	r := SolvePacking(inst, Params{Epsilon: eps, Seed: 2, Scale: 0.5})
	if !problems.Verify(problems.MIS, g, r.Solution) {
		t.Fatal("not independent")
	}
	opt, _ := problems.ExactOptimum(problems.MIS, g)
	if float64(r.Value) < (1-eps)*float64(opt) {
		t.Fatalf("tree MIS %d < (1-eps)*%d", r.Value, opt)
	}
}

func TestCoveringVCFeasibleAndGood(t *testing.T) {
	g := gen.Cycle(120)
	inst, err := problems.Build(problems.MinVertexCover, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	eps := 0.25
	r := SolveCovering(inst, Params{Epsilon: eps, Seed: 3, Scale: 0.4})
	if ok, j := inst.Feasible(r.Solution); !ok {
		t.Fatalf("cover infeasible at %d", j)
	}
	if !problems.Verify(problems.MinVertexCover, g, r.Solution) {
		t.Fatal("not a vertex cover")
	}
	opt, _ := problems.ExactOptimum(problems.MinVertexCover, g)
	if float64(r.Value) > (1+eps)*float64(opt) {
		t.Fatalf("cover value %d > (1+eps)*opt (%d)", r.Value, opt)
	}
}

func TestCoveringMDSFeasible(t *testing.T) {
	g := gen.Grid(8, 10)
	inst, err := problems.Build(problems.MinDominatingSet, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := SolveCovering(inst, Params{Epsilon: 0.3, Seed: 4, Scale: 0.4})
	if ok, j := inst.Feasible(r.Solution); !ok {
		t.Fatalf("dominating set infeasible at %d", j)
	}
	if !problems.Verify(problems.MinDominatingSet, g, r.Solution) {
		t.Fatal("not dominating")
	}
}

func TestDeterministic(t *testing.T) {
	g := gen.Cycle(60)
	inst := misOn(t, g)
	p := Params{Epsilon: 0.3, Seed: 7, Scale: 0.5}
	r1 := SolvePacking(inst, p)
	r2 := SolvePacking(inst, p)
	if r1.Value != r2.Value || r1.Rounds != r2.Rounds {
		t.Fatal("nondeterministic")
	}
	for v := range r1.Solution {
		if r1.Solution[v] != r2.Solution[v] {
			t.Fatal("solutions differ")
		}
	}
}

func TestHorizonScaling(t *testing.T) {
	pSmall := Params{Epsilon: 0.5}
	pBig := Params{Epsilon: 0.1}
	if pBig.horizon(1000) <= pSmall.horizon(1000) {
		t.Fatal("horizon should grow as epsilon shrinks")
	}
	if p := (Params{Epsilon: 0.2, Scale: 0.1}); p.horizon(1000) >= (Params{Epsilon: 0.2}).horizon(1000) {
		t.Fatal("scale should shrink the horizon")
	}
}

func TestPackingSeveralSeeds(t *testing.T) {
	g := gen.Path(80)
	inst := misOn(t, g)
	opt, _ := problems.ExactOptimum(problems.MIS, g)
	eps := 0.25
	for seed := uint64(0); seed < 5; seed++ {
		r := SolvePacking(inst, Params{Epsilon: eps, Seed: seed, Scale: 0.5})
		if !problems.Verify(problems.MIS, g, r.Solution) {
			t.Fatalf("seed %d: invalid", seed)
		}
		if float64(r.Value) < (1-eps)*float64(opt) {
			t.Fatalf("seed %d: %d < (1-eps)*%d", seed, r.Value, opt)
		}
	}
}

func BenchmarkGKMPackingCycle(b *testing.B) {
	g := gen.Cycle(100)
	inst := misOn(b, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SolvePacking(inst, Params{Epsilon: 0.3, Seed: uint64(i), Scale: 0.4})
	}
}
