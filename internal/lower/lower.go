// Package lower implements the Appendix B lower-bound machinery of the
// paper (Theorem 1.4): the reductions and the indistinguishability argument
// showing that (1±ε)-approximate MIS, MaxCut, MinVC and MinDS require
// Ω(log n / ε) rounds in the LOCAL model.
//
// The paper's proof uses LPS Ramanujan graphs X^{p,q}; per the substitution
// table in DESIGN.md we use high-girth random regular graphs, which provide
// the two properties the argument actually needs: girth Ω(log n) (so small
// balls are trees) and an independence-number gap between the bipartite and
// non-bipartite family members.
//
// The experimental core is the indistinguishability mechanism (Theorem
// B.2): a t-round randomized algorithm's per-vertex output distribution
// depends only on the isomorphism type of the vertex's t-ball, so on two
// d-regular graphs of girth > 2t+2 every vertex joins the output with the
// same probability p*. We verify this by running an honest t-round
// algorithm (iterated Luby MIS) on bipartite and non-bipartite high-girth
// graphs and comparing the per-vertex inclusion rates.
//
// The reductions:
//
//   - Theorem B.3: edge subdivision amplifies the lower bound from constant
//     ε₀ to any ε (SubdivideForMIS / LiftMIS);
//   - Theorem B.5: the dominating-set-to-vertex-cover gadget with
//     γ(G*) = τ(G) (Gadget);
//   - Theorem B.7: the MaxCut subdivision with the parity lift (LiftCut).
package lower

import (
	"context"
	"repro/internal/graph"
	"repro/internal/xrand"
)

// PriorityMIS runs `rounds` iterations of Luby's priority algorithm: in
// each iteration every live vertex draws a fresh random priority, local
// maxima join the independent set, and they and their neighbors leave the
// graph. The output after t iterations is a function of the t-ball only —
// exactly the class of algorithms the Theorem B.2 argument quantifies over.
func PriorityMIS(g *graph.Graph, rounds int, seed uint64) []bool {
	n := g.N()
	inSet := make([]bool, n)
	live := make([]bool, n)
	for i := range live {
		live[i] = true
	}
	prio := make([]uint64, n)
	for r := 0; r < rounds; r++ {
		for v := 0; v < n; v++ {
			prio[v] = xrand.Stream(seed, v, uint64(r)+0x10b9).Uint64()
		}
		var joined []int32
		for v := 0; v < n; v++ {
			if !live[v] {
				continue
			}
			isMax := true
			for _, w := range g.Neighbors(v) {
				if live[w] && (prio[w] > prio[v] || (prio[w] == prio[v] && int(w) > v)) {
					isMax = false
					break
				}
			}
			if isMax {
				joined = append(joined, int32(v))
			}
		}
		for _, v := range joined {
			inSet[v] = true
			live[v] = false
			for _, w := range g.Neighbors(int(v)) {
				live[w] = false
			}
		}
	}
	return inSet
}

// InclusionRate runs PriorityMIS over many seeds and returns the average
// fraction of vertices included — the empirical per-vertex inclusion
// probability p* (identical for all vertices of a graph whose t-balls are
// isomorphic).
func InclusionRate(g *graph.Graph, rounds, trials int, seed uint64) float64 {
	r, _ := InclusionRateCtx(context.Background(), g, rounds, trials, seed)
	return r
}

// InclusionRateCtx is InclusionRate with cancellation: the context is
// checked once per trial, so a deadline-bounded estimate returns ctx.Err()
// promptly instead of draining all trials.
func InclusionRateCtx(ctx context.Context, g *graph.Graph, rounds, trials int, seed uint64) (float64, error) {
	if g.N() == 0 || trials <= 0 {
		return 0, nil
	}
	total := 0
	for trial := 0; trial < trials; trial++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		set := PriorityMIS(g, rounds, seed+uint64(trial)*0x9e37)
		for _, in := range set {
			if in {
				total++
			}
		}
	}
	return float64(total) / float64(trials) / float64(g.N()), nil
}

// Gadget builds the Theorem B.5 graph G*: for every edge e = {u, v} of g a
// new vertex w_e adjacent to u and v is added, so that the minimum
// dominating set of G* equals the minimum vertex cover of g.
func Gadget(g *graph.Graph) *graph.Graph {
	n := g.N()
	b := graph.NewBuilder(n + g.M())
	next := n
	g.Edges(func(u, v int) {
		b.AddEdge(u, v)
		b.AddEdge(u, next)
		b.AddEdge(v, next)
		next++
	})
	return b.Build()
}

// GadgetToCover converts a dominating set of Gadget(g) into a vertex cover
// of g of no larger size (the Theorem B.5 transformation): every chosen
// edge-gadget vertex w_e is replaced by one endpoint of e.
func GadgetToCover(g *graph.Graph, dom []bool) []bool {
	cover := make([]bool, g.N())
	for v := 0; v < g.N() && v < len(dom); v++ {
		cover[v] = dom[v]
	}
	idx := g.N()
	g.Edges(func(u, v int) {
		if idx < len(dom) && dom[idx] {
			cover[u] = true
		}
		idx++
	})
	// The result covers every edge: w_e dominated requires u, v, or w_e in
	// the set; the replacement keeps that endpoint.
	g.Edges(func(u, v int) {
		if !cover[u] && !cover[v] {
			// dom did not dominate w_e's neighborhood through u/v/w_e — can
			// only happen for an invalid input; patch to stay a cover.
			cover[u] = true
		}
	})
	return cover
}

// SubdivideForMIS returns G_x: every edge replaced by a path of length
// 2x+1 (Theorem B.3). Original vertices keep their ids. alpha(G_x) =
// (d·x + 1)·n/2 for a d-regular bipartite G on n vertices.
func SubdivideForMIS(g *graph.Graph, x int) *graph.Graph {
	return g.Subdivide(2 * x)
}

// LiftMIS converts an independent set of G_x back to an independent set of
// g using the random-tiebreak rule of Theorem B.3: an original vertex stays
// iff it is in the subdivided solution and wins the random ID tiebreak
// against every neighboring original vertex also in the solution.
func LiftMIS(g *graph.Graph, sub []bool, seed uint64) []bool {
	n := g.N()
	id := make([]uint64, n)
	for v := 0; v < n; v++ {
		id[v] = xrand.Stream(seed, v, 0x11f7).Uint64()
	}
	out := make([]bool, n)
	for v := 0; v < n; v++ {
		if v >= len(sub) || !sub[v] {
			continue
		}
		keep := true
		for _, w := range g.Neighbors(v) {
			if int(w) < len(sub) && sub[w] && (id[w] > id[v] || (id[w] == id[v] && int(w) > v)) {
				keep = false
				break
			}
		}
		out[v] = keep
	}
	return out
}

// LiftCut converts a cut of G_x (an edge subset, given as a per-edge
// boolean aligned with Subdivide's path edges) back to a cut of g using the
// parity rule of Theorem B.7: an original edge joins the lifted cut iff its
// path contains an odd number of cut edges. Here the cut of G_x is provided
// as a side assignment (per-vertex boolean), which determines edge cuts.
func LiftCut(g *graph.Graph, x int, sideGx []bool) []bool {
	// Reconstruct path structure: Subdivide(2x) numbers internal vertices
	// consecutively per edge in Edges() order.
	extra := 2 * x
	sideG := make([]bool, g.N())
	cutEdge := make([]bool, 0, g.M())
	next := g.N()
	g.Edges(func(u, v int) {
		// Walk the path u - w1 - ... - w_extra - v and count parity.
		parity := false
		prev := u
		for i := 0; i < extra; i++ {
			if sideGx[prev] != sideGx[next] {
				parity = !parity
			}
			prev = next
			next++
		}
		if sideGx[prev] != sideGx[v] {
			parity = !parity
		}
		cutEdge = append(cutEdge, parity)
	})
	_ = sideG
	return cutEdge
}

// CutSize counts the cut edges in a per-edge boolean aligned with Edges()
// order.
func CutSize(cut []bool) int {
	c := 0
	for _, b := range cut {
		if b {
			c++
		}
	}
	return c
}

// BallIsomorphic reports whether the radius-t balls of every vertex in g
// are trees (i.e. t < girth/2), the precondition for the
// indistinguishability argument. It checks girth > 2t.
func BallIsomorphic(g *graph.Graph, t int) bool {
	girth := g.Girth()
	return girth == -1 || girth > 2*t
}
