package lower

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/matching"
	"repro/internal/xrand"
)

func TestPriorityMISValid(t *testing.T) {
	g := gen.Torus(10, 10)
	for seed := uint64(0); seed < 5; seed++ {
		set := PriorityMIS(g, 3, seed)
		ok := true
		g.Edges(func(u, v int) {
			if set[u] && set[v] {
				ok = false
			}
		})
		if !ok {
			t.Fatalf("seed %d: not independent", seed)
		}
	}
}

func TestPriorityMISConvergesToMaximal(t *testing.T) {
	// With enough rounds the set is maximal.
	g := gen.Grid(8, 8)
	set := PriorityMIS(g, 64, 7)
	for v := 0; v < g.N(); v++ {
		if set[v] {
			continue
		}
		hasNeighborIn := false
		for _, w := range g.Neighbors(v) {
			if set[w] {
				hasNeighborIn = true
				break
			}
		}
		if !hasNeighborIn {
			t.Fatalf("vertex %d not dominated: set not maximal", v)
		}
	}
}

func TestIndistinguishability(t *testing.T) {
	// The headline lower-bound mechanism: a t-round algorithm has the same
	// per-vertex inclusion rate on any two d-regular graphs whose t-balls
	// are trees, even though their independence numbers differ.
	rng := xrand.New(5)
	bip := gen.Cycle(400)    // 2-regular bipartite, girth 400
	nonBip := gen.Cycle(401) // 2-regular odd, girth 401
	const rounds, trials = 3, 300
	if !BallIsomorphic(bip, rounds) || !BallIsomorphic(nonBip, rounds) {
		t.Fatal("precondition: balls must be trees")
	}
	rateA := InclusionRate(bip, rounds, trials, 1)
	rateB := InclusionRate(nonBip, rounds, trials, 2)
	if math.Abs(rateA-rateB) > 0.01 {
		t.Fatalf("t-round algorithm distinguished the graphs: %v vs %v", rateA, rateB)
	}
	// But the optima differ: alpha(C400)/400 = 0.5, alpha(C401)/401 = 200/401.
	_ = rng
	// And the inclusion rate is bounded away from 1/2 at 3 rounds, i.e. the
	// algorithm is NOT (1-eps)-approximate for small eps — the lower bound's
	// quantitative content.
	if rateA > 0.49 {
		t.Fatalf("3-round MIS rate %v suspiciously close to optimal", rateA)
	}
}

func TestIndistinguishabilityRegular(t *testing.T) {
	rng := xrand.New(11)
	gA, girthA := gen.HighGirthRegular(300, 3, 6, rng)
	gB, girthB := gen.HighGirthRegular(302, 3, 6, rng)
	tRounds := 2
	if girthA <= 2*tRounds || girthB <= 2*tRounds {
		t.Skipf("generator girths %d/%d too small for t=%d", girthA, girthB, tRounds)
	}
	rateA := InclusionRate(gA, tRounds, 200, 3)
	rateB := InclusionRate(gB, tRounds, 200, 4)
	if math.Abs(rateA-rateB) > 0.02 {
		t.Fatalf("rates differ: %v vs %v", rateA, rateB)
	}
}

func TestGadgetDominationEqualsCover(t *testing.T) {
	// gamma(G*) == tau(G), checked by brute force on small graphs.
	for _, g := range []*graph.Graph{gen.Cycle(5), gen.Path(5), gen.Complete(4), gen.Star(5)} {
		gs := Gadget(g)
		if gs.N() != g.N()+g.M() {
			t.Fatalf("gadget size wrong: %d", gs.N())
		}
		tau := bruteVC(g)
		gamma := bruteDS(gs)
		if tau != gamma {
			t.Fatalf("gamma(G*) = %d != tau(G) = %d", gamma, tau)
		}
	}
}

func TestGadgetToCover(t *testing.T) {
	g := gen.Cycle(6)
	gs := Gadget(g)
	// A dominating set of G* that uses gadget vertices.
	dom := make([]bool, gs.N())
	// Dominate via edge gadgets only won't dominate other gadget vertices;
	// build a valid dominating set: vertices 0 and 3 dominate originals
	// 0,1,5 and 2,3,4; gadget vertices w_e adjacent to endpoints are
	// dominated iff an endpoint is in. Take {0, 2, 4}: every edge has an
	// endpoint in the set -> every w_e dominated; every original dominated.
	dom[0], dom[2], dom[4] = true, true, true
	cover := GadgetToCover(g, dom)
	if !matching.VerifyVertexCover(g, boolsToList(cover)) {
		t.Fatal("lifted set is not a cover")
	}
	// Size must not grow.
	if count(cover) > count(dom) {
		t.Fatalf("cover %d > dom %d", count(cover), count(dom))
	}
}

func TestSubdivideForMIS(t *testing.T) {
	g := gen.Cycle(6)
	gx := SubdivideForMIS(g, 2) // each edge becomes a path of length 5
	if gx.N() != 6+4*6 {
		t.Fatalf("subdivided n = %d", gx.N())
	}
	// C6 subdivided by 4 per edge = C30: alpha = 15.
	r := matching.BipartiteAuto(gx)
	if r == nil || len(r.MaxIndependentSet) != 15 {
		t.Fatalf("alpha(Gx) = %v", r)
	}
}

func TestLiftMIS(t *testing.T) {
	g := gen.Cycle(8)
	gx := SubdivideForMIS(g, 1)
	// Take the exact MIS of Gx and lift it.
	r := matching.BipartiteAuto(gx)
	sub := make([]bool, gx.N())
	for _, v := range r.MaxIndependentSet {
		sub[v] = true
	}
	lifted := LiftMIS(g, sub, 42)
	ok := true
	g.Edges(func(u, v int) {
		if lifted[u] && lifted[v] {
			ok = false
		}
	})
	if !ok {
		t.Fatal("lifted set not independent")
	}
	// Theorem B.3's accounting: |I| >= |I_sub| - 9x|V| specialized to
	// 2-regular graphs gives a positive set here.
	if count(lifted) == 0 {
		t.Fatal("lift produced empty set from a maximum subdivided MIS")
	}
}

func TestLiftCutParity(t *testing.T) {
	g := gen.Cycle(4)
	x := 1
	gx := g.Subdivide(2 * x) // C12
	// Optimal cut of C12: alternate sides.
	side := make([]bool, gx.N())
	// Build proper 2-coloring of the subdivided cycle.
	ok, coloring := gx.IsBipartite()
	if !ok {
		t.Fatal("C12 not bipartite?")
	}
	for v, c := range coloring {
		side[v] = c == 1
	}
	cut := LiftCut(g, x, side)
	if len(cut) != g.M() {
		t.Fatalf("cut length %d != m", len(cut))
	}
	// The optimal cut of Gx cuts every path edge, so each path of length 3
	// has odd parity: every original edge is cut; C4 is bipartite so a cut
	// of size 4 = |E| is consistent.
	if CutSize(cut) != 4 {
		t.Fatalf("lifted cut = %d, want 4", CutSize(cut))
	}
}

func TestBallIsomorphic(t *testing.T) {
	if !BallIsomorphic(gen.Cycle(20), 9) {
		t.Fatal("C20 t=9 balls are trees")
	}
	if BallIsomorphic(gen.Cycle(20), 10) {
		t.Fatal("C20 t=10 balls contain the cycle")
	}
	if !BallIsomorphic(gen.Path(10), 100) {
		t.Fatal("forest balls are always trees")
	}
}

// --- helpers ---------------------------------------------------------------

func bruteVC(g *graph.Graph) int {
	n := g.N()
	best := n
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		g.Edges(func(u, v int) {
			if mask&(1<<u) == 0 && mask&(1<<v) == 0 {
				ok = false
			}
		})
		if !ok {
			continue
		}
		c := popcount(mask)
		if c < best {
			best = c
		}
	}
	return best
}

func bruteDS(g *graph.Graph) int {
	n := g.N()
	best := n
	for mask := 0; mask < 1<<n; mask++ {
		dominated := 0
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				dominated |= 1 << v
				for _, u := range g.Neighbors(v) {
					dominated |= 1 << u
				}
			}
		}
		if dominated != (1<<n)-1 {
			continue
		}
		c := popcount(mask)
		if c < best {
			best = c
		}
	}
	return best
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func count(bs []bool) int {
	c := 0
	for _, b := range bs {
		if b {
			c++
		}
	}
	return c
}

func boolsToList(bs []bool) []int32 {
	var out []int32
	for v, b := range bs {
		if b {
			out = append(out, int32(v))
		}
	}
	return out
}
