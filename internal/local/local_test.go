package local

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
)

// floodMachine implements distributed BFS from a root: the root announces
// distance 0 in round 1, everyone else adopts 1 + min(received) once and
// propagates. Each machine halts after a fixed horizon of rounds.
type floodMachine struct {
	v       int
	root    int
	horizon int
	dist    int
	sent    bool
	degree  int
}

type distMsg int

func (m distMsg) SizeBits() int { return 32 }

func (f *floodMachine) Round(round int, inbox []Message) ([]Message, bool) {
	if f.dist == -1 {
		best := -1
		for _, msg := range inbox {
			if msg == nil {
				continue
			}
			d := int(msg.(distMsg))
			if best == -1 || d < best {
				best = d
			}
		}
		if best >= 0 {
			f.dist = best + 1
		}
	}
	var out []Message
	if f.dist >= 0 && !f.sent {
		f.sent = true
		out = make([]Message, f.degree)
		for i := range out {
			out[i] = distMsg(f.dist)
		}
	}
	return out, round >= f.horizon
}

func runFlood(t *testing.T, g *graph.Graph, root int, sequential bool) []int {
	t.Helper()
	n := g.N()
	machines := make([]*floodMachine, n)
	cfg := Config{
		Graph: g,
		NewMachine: func(v int) Machine {
			m := &floodMachine{v: v, root: root, horizon: n + 2, dist: -1, degree: g.Degree(v)}
			if v == root {
				m.dist = 0
			}
			machines[v] = m
			return m
		},
		Sequential: sequential,
		MaxRounds:  n + 10,
	}
	if _, err := Run(cfg); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := make([]int, n)
	for v, m := range machines {
		out[v] = m.dist
	}
	return out
}

func TestFloodMatchesBFS(t *testing.T) {
	g := gen.Grid(8, 9)
	dist := runFlood(t, g, 0, true)
	want := g.BFS(0)
	for v := range dist {
		if dist[v] != int(want[v]) {
			t.Fatalf("vertex %d: flood=%d bfs=%d", v, dist[v], want[v])
		}
	}
}

func TestParallelEqualsSequential(t *testing.T) {
	g := gen.Torus(10, 10)
	seq := runFlood(t, g, 17, true)
	par := runFlood(t, g, 17, false)
	for v := range seq {
		if seq[v] != par[v] {
			t.Fatalf("executor divergence at vertex %d: %d vs %d", v, seq[v], par[v])
		}
	}
}

func TestDisconnectedStaysUnreached(t *testing.T) {
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	dist := runFlood(t, g, 0, true)
	if dist[2] != -1 || dist[4] != -1 {
		t.Fatalf("flood crossed components: %v", dist)
	}
}

func TestStatsCounting(t *testing.T) {
	g := gen.Path(5)
	var stats Stats
	cfg := Config{
		Graph: g,
		NewMachine: func(v int) Machine {
			m := &floodMachine{v: v, root: 0, horizon: 6, dist: -1, degree: g.Degree(v)}
			if v == 0 {
				m.dist = 0
			}
			return m
		},
		Sequential: true,
	}
	stats, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 6 {
		t.Fatalf("rounds = %d, want 6 (horizon)", stats.Rounds)
	}
	// Each vertex sends to all neighbors exactly once; path has 8 directed
	// messages, but messages to already-halted machines are dropped and the
	// last vertex's send happens at round 5 before anyone halts, so all 8
	// arrive.
	if stats.Messages != 8 {
		t.Fatalf("messages = %d, want 8", stats.Messages)
	}
	if stats.MaxMessageBits != 32 {
		t.Fatalf("max message bits = %d", stats.MaxMessageBits)
	}
	if !stats.CongestOK {
		t.Fatal("32-bit messages should satisfy CONGEST")
	}
}

// bigMsg violates the CONGEST bound.
type bigMsg struct{}

func (bigMsg) SizeBits() int { return 1 << 20 }

type bigSender struct{ degree int }

func (b *bigSender) Round(round int, inbox []Message) ([]Message, bool) {
	out := make([]Message, b.degree)
	for i := range out {
		out[i] = bigMsg{}
	}
	return out, true
}

func TestCongestAudit(t *testing.T) {
	g := gen.Path(3)
	stats, err := Run(Config{
		Graph:      g,
		NewMachine: func(v int) Machine { return &bigSender{degree: g.Degree(v)} },
		Sequential: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CongestOK {
		t.Fatal("megabit messages passed the CONGEST audit")
	}
}

// neverHalt runs forever.
type neverHalt struct{}

func (neverHalt) Round(int, []Message) ([]Message, bool) { return nil, false }

func TestMaxRounds(t *testing.T) {
	g := gen.Path(3)
	_, err := Run(Config{
		Graph:      g,
		NewMachine: func(int) Machine { return neverHalt{} },
		MaxRounds:  7,
		Sequential: true,
	})
	if !errors.Is(err, ErrNoHalt) {
		t.Fatalf("err = %v, want ErrNoHalt", err)
	}
}

func TestNilGraph(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("nil graph accepted")
	}
}

// lateActor is silent until a target round, then halts; exercises the
// "waiting silently is legal" semantics.
type lateActor struct {
	target int
	acted  *bool
}

func (l *lateActor) Round(round int, inbox []Message) ([]Message, bool) {
	if round >= l.target {
		*l.acted = true
		return nil, true
	}
	return nil, false
}

func TestSilentWaitingIsAllowed(t *testing.T) {
	g := gen.Path(2)
	acted := make([]bool, 2)
	stats, err := Run(Config{
		Graph: g,
		NewMachine: func(v int) Machine {
			return &lateActor{target: 5 + v, acted: &acted[v]}
		},
		Sequential: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !acted[0] || !acted[1] {
		t.Fatal("late actors never acted")
	}
	if stats.Rounds != 6 {
		t.Fatalf("rounds = %d, want 6", stats.Rounds)
	}
}

func TestRoundCounterPhases(t *testing.T) {
	var rc RoundCounter
	rc.StartPhase()
	rc.Charge(5)
	rc.Charge(3)
	rc.Charge(9) // parallel: max = 9
	rc.EndPhase()
	rc.StartPhase()
	rc.Charge(2)
	rc.EndPhase()
	if got := rc.Total(); got != 11 {
		t.Fatalf("total = %d, want 11", got)
	}
}

func TestRoundCounterSequentialCharges(t *testing.T) {
	var rc RoundCounter
	rc.Charge(4)
	rc.Charge(6) // outside a phase: additive
	if got := rc.Total(); got != 10 {
		t.Fatalf("total = %d, want 10", got)
	}
}

func TestRoundCounterAutoClose(t *testing.T) {
	var rc RoundCounter
	rc.StartPhase()
	rc.Charge(7)
	rc.StartPhase() // implicitly closes the previous phase
	rc.Charge(2)
	if got := rc.Total(); got != 9 {
		t.Fatalf("total = %d, want 9", got)
	}
	rc2 := RoundCounter{}
	rc2.Charge(-5) // negative charges ignored
	if rc2.Total() != 0 {
		t.Fatal("negative charge counted")
	}
}

func BenchmarkFloodTorusParallel(b *testing.B) {
	g := gen.Torus(40, 40)
	for i := 0; i < b.N; i++ {
		n := g.N()
		_, err := Run(Config{
			Graph: g,
			NewMachine: func(v int) Machine {
				m := &floodMachine{v: v, root: 0, horizon: 45, dist: -1, degree: g.Degree(v)}
				if v == 0 {
					m.dist = 0
				}
				return m
			},
			MaxRounds: n,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
