// Package local implements the LOCAL model of distributed computing
// (Linial 1992) used throughout the paper: a synchronous message-passing
// network where, in each round, every vertex receives the messages sent by
// its neighbors in the previous round, performs arbitrary local computation,
// and sends one (arbitrarily large) message per incident edge.
//
// The package provides two interchangeable executors with identical
// semantics and identical round accounting:
//
//   - a goroutine-per-worker parallel executor, where vertex programs run
//     concurrently between round barriers — the "real" message-passing
//     substrate (the repro hint: goroutines map to message passing);
//   - a sequential executor, useful for deterministic profiling and
//     debugging.
//
// Since vertex programs are deterministic given their random streams, both
// executors produce bit-identical outputs; the ldd package's tests rely on
// this to cross-check the distributed Elkin–Neiman implementation against
// its centralized counterpart.
//
// For the ball-gathering algorithms (grow-and-carve and friends) the
// package also provides RoundCounter, the standard accounting device for
// LOCAL algorithms expressed as "gather N^k(v), then decide locally": a
// k-radius gather costs k rounds, parallel gathers in the same phase cost
// the maximum radius, and the counter accumulates phase costs.
package local

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/graph"
)

// Message is an opaque payload exchanged between neighbors. Implementations
// that want CONGEST auditing should implement Sizer.
type Message interface{}

// Sizer optionally reports a message's size in bits for CONGEST audits.
type Sizer interface {
	SizeBits() int
}

// Machine is a vertex program. The engine calls Round once per synchronous
// round with the messages received from each neighbor (indexed by the
// position in graph.Neighbors; nil when the neighbor sent nothing). The
// returned outbox is indexed the same way (nil entries send nothing; a nil
// or short outbox sends nothing on the remaining edges). Returning
// halt=true removes the machine from subsequent rounds.
type Machine interface {
	Round(round int, inbox []Message) (outbox []Message, halt bool)
}

// Config configures an engine run.
type Config struct {
	Graph *graph.Graph
	// NewMachine constructs the program for vertex v.
	NewMachine func(v int) Machine
	// MaxRounds bounds the execution; 0 means a default of 10 * (n + 10).
	MaxRounds int
	// Sequential forces the single-threaded executor.
	Sequential bool
	// Workers bounds parallel workers; 0 means GOMAXPROCS.
	Workers int
}

// Stats reports what an engine run cost.
type Stats struct {
	// Rounds is the number of synchronous rounds executed.
	Rounds int
	// Messages is the total number of (non-nil) messages delivered.
	Messages int64
	// MaxMessageBits is the largest message size observed, when messages
	// implement Sizer; 0 otherwise.
	MaxMessageBits int
	// CongestOK reports whether every sized message fit in O(log n) bits,
	// using the conventional threshold 32 * ceil(log2(n+2)).
	CongestOK bool
}

// ErrNoHalt is returned when MaxRounds elapses before all machines halt.
var ErrNoHalt = errors.New("local: machines did not halt within MaxRounds")

// Run executes the configured network to quiescence and returns statistics.
func Run(cfg Config) (Stats, error) {
	g := cfg.Graph
	if g == nil {
		return Stats{}, errors.New("local: nil graph")
	}
	n := g.N()
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 10 * (n + 10)
	}
	machines := make([]Machine, n)
	for v := 0; v < n; v++ {
		machines[v] = cfg.NewMachine(v)
	}
	// reverseIdx[v][i] = position of v in the neighbor list of its i-th
	// neighbor; needed to route v's i-th outbox entry into the right inbox
	// slot on the other side.
	reverseIdx := make([][]int32, n)
	for v := 0; v < n; v++ {
		nb := g.Neighbors(v)
		reverseIdx[v] = make([]int32, len(nb))
		for i, w := range nb {
			wNb := g.Neighbors(int(w))
			j := sort.Search(len(wNb), func(k int) bool { return wNb[k] >= int32(v) })
			reverseIdx[v][i] = int32(j)
		}
	}

	inboxes := make([][]Message, n)
	outboxes := make([][]Message, n)
	for v := 0; v < n; v++ {
		inboxes[v] = make([]Message, g.Degree(v))
	}
	halted := make([]bool, n)
	haltedCount := 0

	stats := Stats{CongestOK: true}
	logN := 1
	for (1 << logN) < n+2 {
		logN++
	}
	congestLimit := 32 * logN

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Sequential {
		workers = 1
	}

	for round := 1; haltedCount < n; round++ {
		if round > maxRounds {
			return stats, fmt.Errorf("%w (round %d)", ErrNoHalt, maxRounds)
		}
		stats.Rounds = round

		// Step every non-halted machine (possibly in parallel). Each worker
		// writes only outboxes[v] and haltNow[v] for its own vertices, so no
		// locking is needed.
		haltNow := make([]bool, n)
		step := func(v int) {
			if halted[v] {
				outboxes[v] = nil
				return
			}
			out, h := machines[v].Round(round, inboxes[v])
			outboxes[v] = out
			haltNow[v] = h
		}
		if workers == 1 || n < 64 {
			for v := 0; v < n; v++ {
				step(v)
			}
		} else {
			var wg sync.WaitGroup
			chunk := (n + workers - 1) / workers
			for w := 0; w < workers; w++ {
				lo := w * chunk
				hi := min(lo+chunk, n)
				if lo >= hi {
					break
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					for v := lo; v < hi; v++ {
						step(v)
					}
				}(lo, hi)
			}
			wg.Wait()
		}

		// Barrier: deliver messages, clear inboxes, apply halts.
		for v := 0; v < n; v++ {
			for i := range inboxes[v] {
				inboxes[v][i] = nil
			}
		}
		for v := 0; v < n; v++ {
			out := outboxes[v]
			if out == nil {
				continue
			}
			nb := g.Neighbors(v)
			for i := 0; i < len(out) && i < len(nb); i++ {
				msg := out[i]
				if msg == nil {
					continue
				}
				w := nb[i]
				// Audit at send time: a message counts against the CONGEST
				// budget even if its receiver halts this round.
				if s, ok := msg.(Sizer); ok {
					bits := s.SizeBits()
					if bits > stats.MaxMessageBits {
						stats.MaxMessageBits = bits
					}
					if bits > congestLimit {
						stats.CongestOK = false
					}
				}
				if halted[w] || haltNow[w] {
					continue // dropped: receiver is done
				}
				inboxes[w][reverseIdx[v][i]] = msg
				stats.Messages++
			}
		}
		// Waiting silently is legitimate in a synchronous model (machines may
		// key behavior off the round number), so quiescence is not an error;
		// only MaxRounds bounds the run.
		for v := 0; v < n; v++ {
			if haltNow[v] && !halted[v] {
				halted[v] = true
				haltedCount++
			}
		}
	}
	return stats, nil
}

// RoundCounter is the accounting device for LOCAL algorithms expressed in
// gather-and-decide style. A phase groups operations that run in parallel
// across the network: its cost is the maximum radius charged within it.
// Total returns the sum of completed phase costs.
type RoundCounter struct {
	total   int
	current int
	open    bool
}

// StartPhase begins a new parallel phase, closing any open one.
func (rc *RoundCounter) StartPhase() {
	rc.EndPhase()
	rc.open = true
	rc.current = 0
}

// Charge records that some vertex performed a k-radius gather (or k rounds
// of communication) in the current phase. Outside a phase, the charge is
// sequential and added directly.
func (rc *RoundCounter) Charge(k int) {
	if k < 0 {
		return
	}
	if rc.open {
		if k > rc.current {
			rc.current = k
		}
	} else {
		rc.total += k
	}
}

// EndPhase closes the current phase, adding its cost to the total.
func (rc *RoundCounter) EndPhase() {
	if rc.open {
		rc.total += rc.current
		rc.open = false
		rc.current = 0
	}
}

// Total returns the accumulated round count (closing any open phase).
func (rc *RoundCounter) Total() int {
	rc.EndPhase()
	return rc.total
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
