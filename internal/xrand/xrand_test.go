package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	c1 := r.Split(1)
	c2 := r.Split(2)
	c1again := r.Split(1)
	if c1.Uint64() != c1again.Uint64() {
		t.Fatal("Split is not deterministic for equal labels")
	}
	if c1.state == c2.state {
		t.Fatal("Split with different labels produced identical state")
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a, b := New(9), New(9)
	_ = a.Split(5)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Split advanced the parent stream")
	}
}

func TestStreamPerVertex(t *testing.T) {
	s1 := Stream(3, 10, 0)
	s2 := Stream(3, 10, 0)
	s3 := Stream(3, 11, 0)
	if s1.Uint64() != s2.Uint64() {
		t.Fatal("Stream not reproducible")
	}
	if s1.state == s3.state {
		t.Fatal("different vertices got identical streams")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(17)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	if r.Intn(0) != 0 || r.Intn(-3) != 0 {
		t.Fatal("Intn should return 0 for non-positive n")
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(23)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Intn(10)]++
	}
	for d, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("digit %d frequency %v, want ~0.1", d, frac)
		}
	}
}

func TestBernoulli(t *testing.T) {
	r := New(31)
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency %v", frac)
	}
}

func TestExpMean(t *testing.T) {
	r := New(41)
	const lambda = 2.0
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(lambda)
		if v < 0 {
			t.Fatalf("negative exponential %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/lambda) > 0.01 {
		t.Fatalf("Exp(%v) mean = %v, want %v", lambda, mean, 1/lambda)
	}
}

func TestExpMemoryless(t *testing.T) {
	// Pr[X > a+b | X > a] should equal Pr[X > b]. Verify empirically.
	r := New(43)
	const lambda = 1.0
	const n = 400000
	var gtA, gtAB, gtB int
	for i := 0; i < n; i++ {
		v := r.Exp(lambda)
		if v > 1 {
			gtA++
			if v > 2 {
				gtAB++
			}
		}
		if r.Exp(lambda) > 1 {
			gtB++
		}
	}
	cond := float64(gtAB) / float64(gtA)
	uncond := float64(gtB) / n
	if math.Abs(cond-uncond) > 0.02 {
		t.Fatalf("memorylessness violated: cond=%v uncond=%v", cond, uncond)
	}
}

func TestExpDegenerate(t *testing.T) {
	r := New(47)
	if !math.IsInf(r.Exp(0), 1) {
		t.Fatal("Exp(0) should be +Inf")
	}
	if !math.IsInf(r.Exp(-1), 1) {
		t.Fatal("Exp(-1) should be +Inf")
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(53)
	const p = 0.25
	const n = 200000
	sum := 0
	for i := 0; i < n; i++ {
		g := r.Geometric(p)
		if g < 1 {
			t.Fatalf("geometric below support: %d", g)
		}
		sum += g
	}
	mean := float64(sum) / n
	if math.Abs(mean-1/p) > 0.05 {
		t.Fatalf("Geometric(%v) mean = %v, want %v", p, mean, 1/p)
	}
}

func TestGeometricEdge(t *testing.T) {
	r := New(59)
	if g := r.Geometric(1); g != 1 {
		t.Fatalf("Geometric(1) = %d, want 1", g)
	}
	if g := r.Geometric(1.5); g != 1 {
		t.Fatalf("Geometric(1.5) = %d, want 1", g)
	}
	if g := r.Geometric(0); g != math.MaxInt32 {
		t.Fatalf("Geometric(0) = %d, want MaxInt32", g)
	}
}

func TestGeometricTail(t *testing.T) {
	// Pr[X >= k] = (1-p)^(k-1); check at k = 5, p = 0.5 -> 1/16.
	r := New(61)
	const n = 200000
	count := 0
	for i := 0; i < n; i++ {
		if r.Geometric(0.5) >= 5 {
			count++
		}
	}
	frac := float64(count) / n
	if math.Abs(frac-1.0/16) > 0.005 {
		t.Fatalf("tail frequency %v, want ~%v", frac, 1.0/16)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(67)
	if err := quick.Check(func(seed uint64) bool {
		rr := New(seed)
		p := rr.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestPermUniform(t *testing.T) {
	// Position of element 0 should be uniform over 5 slots.
	r := New(71)
	counts := make([]int, 5)
	const n = 50000
	for i := 0; i < n; i++ {
		p := r.Perm(5)
		for idx, v := range p {
			if v == 0 {
				counts[idx]++
			}
		}
	}
	for idx, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.2) > 0.02 {
			t.Fatalf("slot %d frequency %v", idx, frac)
		}
	}
}

func TestShuffle(t *testing.T) {
	r := New(73)
	s := []string{"a", "b", "c", "d", "e"}
	Shuffle(r, s)
	seen := map[string]bool{}
	for _, v := range s {
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("shuffle lost elements: %v", s)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r RNG
	_ = r.Uint64() // must not panic
	_ = r.Float64()
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Exp(0.5)
	}
}
