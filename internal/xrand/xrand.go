// Package xrand provides a small, deterministic, splittable pseudo-random
// number generator used by every randomized algorithm in this repository.
//
// Reproducibility is a hard requirement for the experiment harness: every
// algorithm takes an explicit seed, and every per-vertex random stream is
// derived deterministically from (seed, vertex id, stream label). This makes
// distributed algorithms replayable and lets the tests cross-check the
// message-passing and oracle implementations of the same algorithm bit for
// bit.
//
// The core generator is SplitMix64 (Steele, Lea, Vigna), which has a 64-bit
// state, passes BigCrush when used as intended, and — crucially — supports
// cheap splitting: mixing extra words into the state yields statistically
// independent streams.
package xrand

import "math"

// golden is the 64-bit golden ratio constant used by SplitMix64.
const golden = 0x9e3779b97f4a7c15

// RNG is a deterministic SplitMix64 pseudo-random generator.
// The zero value is a valid generator seeded with 0.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// mix64 is the SplitMix64 output function.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += golden
	return mix64(r.state)
}

// Split returns a new generator whose stream is statistically independent of
// the receiver's, derived from the receiver's state and the given labels.
// Splitting does not advance the receiver, so the same (seed, labels) pair
// always yields the same child stream; this is what makes per-vertex streams
// replayable.
func (r *RNG) Split(labels ...uint64) *RNG {
	s := mix64(r.state + golden)
	for _, l := range labels {
		s = mix64(s ^ mix64(l+golden))
	}
	return &RNG{state: s}
}

// Stream returns the canonical per-(vertex, label) generator for a given
// top-level seed. It is a convenience for algorithms that hand each vertex
// its own independent stream.
func Stream(seed uint64, vertex int, label uint64) *RNG {
	base := New(seed)
	return base.Split(uint64(vertex)+1, label+1)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	// Use the top 53 bits for a uniformly distributed double.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). n must be positive; if n <= 0 the
// result is 0, which keeps callers panic-free per the style guide (don't
// panic in library code).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	// Lemire's nearly-divisionless bounded generation would be faster, but
	// modulo of a 64-bit value by small n has negligible bias (< 2^-50 for
	// n < 2^13) and keeps the code obvious.
	return int(r.Uint64() % uint64(n))
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with rate lambda
// (mean 1/lambda). For lambda <= 0 it returns +Inf, matching the convention
// that a rate-0 exponential never fires.
func (r *RNG) Exp(lambda float64) float64 {
	if lambda <= 0 {
		return math.Inf(1)
	}
	u := r.Float64()
	// 1-u is in (0,1]; log is finite.
	return -math.Log(1-u) / lambda
}

// Geometric returns a geometric random variable with success probability p,
// supported on {1, 2, 3, ...} with Pr[X = k] = (1-p)^(k-1) p, matching the
// convention of the paper's Lemma A.2 (E[X] = 1/p). For p >= 1 it returns 1;
// for p <= 0 it returns a very large value (the distribution is degenerate).
func (r *RNG) Geometric(p float64) int {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		return math.MaxInt32
	}
	// Inversion: X = ceil(log(1-U) / log(1-p)).
	u := r.Float64()
	x := math.Ceil(math.Log1p(-u) / math.Log1p(-p))
	if x < 1 {
		return 1
	}
	if x > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(x)
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the elements of the slice in place.
func Shuffle[T any](r *RNG, s []T) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}
