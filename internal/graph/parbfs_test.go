package graph_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
)

// parTestGraphs returns the determinism-sweep topologies: a random graph
// whose middle frontiers cross the parallel threshold, a star whose leaf
// frontier is one giant skewed level, a path whose frontiers never leave
// the serial fast path, and a grid in between.
func parTestGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"random": randomGraph(20000, 60000, 42),
		"star":   gen.Star(20000),
		"path":   gen.Path(2000),
		"grid":   gen.Grid(70, 70),
	}
}

var parWorkerSweep = []int{1, 2, 4, 8}

func int32s(s []int32) []int32 { return append([]int32(nil), s...) }

func copyLayers(layers [][]int32) [][]int32 {
	if layers == nil {
		return nil
	}
	out := make([][]int32, len(layers))
	for i, l := range layers {
		out[i] = int32s(l)
	}
	return out
}

// TestParBFSBitIdenticalToSerial pins the tentpole contract: every Par*
// traversal returns output bit-identical to its serial workspace
// counterpart for every worker count, on every topology, with and without
// alive masks.
func TestParBFSBitIdenticalToSerial(t *testing.T) {
	for name, g := range parTestGraphs() {
		n := g.N()
		ws := graph.NewWorkspace(0)
		alive := randomAlive(n, uint64(n)+3)
		sources := []int{0, n / 3, n - 1}
		seeds := []int32{int32(n - 1), int32(n / 2), 1, int32(n / 2)} // dup on purpose
		multiSrc := []int{n - 1, n / 2, 1, n / 2}

		for _, workers := range parWorkerSweep {
			pw := graph.NewParWorkspace()
			label := fmt.Sprintf("%s/workers=%d", name, workers)

			for _, src := range sources {
				for _, radius := range []int{-1, 2, 7} {
					want := int32s(g.BFSBoundedWithWorkspace(ws, src, radius))
					got := int32s(graph.ParBFSBounded(pw, g, src, radius, workers))
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("%s: ParBFSBounded(src=%d r=%d) differs from serial", label, src, radius)
					}
				}
			}

			wantD, wantF := g.MultiBFSWithWorkspace(ws, multiSrc)
			wantD, wantF = int32s(wantD), int32s(wantF)
			gotD, gotF := graph.ParMultiBFS(pw, g, multiSrc, workers)
			if !reflect.DeepEqual(wantD, int32s(gotD)) {
				t.Fatalf("%s: ParMultiBFS dist differs from serial", label)
			}
			if !reflect.DeepEqual(wantF, int32s(gotF)) {
				t.Fatalf("%s: ParMultiBFS from differs from serial (tie-break broken)", label)
			}

			for _, a := range [][]bool{nil, alive} {
				for _, radius := range []int{0, 1, 4} {
					wantL := copyLayers(g.BallLayersFromSetWithWorkspace(ws, seeds, radius, a))
					gotL := copyLayers(graph.ParBallLayersFromSet(pw, g, seeds, radius, a, workers))
					if !reflect.DeepEqual(wantL, gotL) {
						t.Fatalf("%s: ParBallLayersFromSet(r=%d alive=%v) differs from serial", label, radius, a != nil)
					}
					wantB := int32s(g.BallFromSetWithWorkspace(ws, seeds, radius, a))
					gotB := int32s(graph.ParBallFromSet(pw, g, seeds, radius, a, workers))
					if !reflect.DeepEqual(wantB, gotB) {
						t.Fatalf("%s: ParBallFromSet(r=%d alive=%v) differs from serial", label, radius, a != nil)
					}
				}
				wantL := copyLayers(g.BallLayersWithWorkspace(ws, n/2, 3, a))
				gotL := copyLayers(graph.ParBallLayers(pw, g, n/2, 3, a, workers))
				if !reflect.DeepEqual(wantL, gotL) {
					t.Fatalf("%s: ParBallLayers differs from serial", label)
				}

				wantComp, wantCount := g.ComponentsAliveWithWorkspace(ws, a)
				wantComp = int32s(wantComp)
				gotComp, gotCount := graph.ParComponents(pw, g, a, workers)
				if wantCount != gotCount || !reflect.DeepEqual(wantComp, int32s(gotComp)) {
					t.Fatalf("%s: ParComponents(alive=%v) differs from serial", label, a != nil)
				}
			}
		}
	}
}

// TestParSweepsMatchSerial covers the source-parallel sweep wrappers
// (eccentricity, diameter, weak diameter) on a graph small enough for the
// quadratic serial reference.
func TestParSweepsMatchSerial(t *testing.T) {
	g := randomGraph(300, 500, 8)
	ws := graph.NewWorkspace(0)
	members := []int32{1, 5, 44, 120, 299}
	for _, workers := range parWorkerSweep {
		pw := graph.NewParWorkspace()
		if want, got := g.EccentricityWithWorkspace(ws, 7), graph.ParEccentricity(pw, g, 7, workers); want != got {
			t.Fatalf("workers=%d: ParEccentricity = %d, serial = %d", workers, got, want)
		}
		if want, got := g.DiameterWithWorkspace(ws), g.ParDiameter(workers); want != got {
			t.Fatalf("workers=%d: ParDiameter = %d, serial = %d", workers, got, want)
		}
		if want, got := g.WeakDiameterWithWorkspace(ws, members), g.ParWeakDiameter(members, workers); want != got {
			t.Fatalf("workers=%d: ParWeakDiameter = %d, serial = %d", workers, got, want)
		}
	}
	// Disconnected member sets must report -1 like the serial sweep.
	b := graph.NewBuilder(12)
	for i := 0; i+1 < 10; i++ {
		b.AddEdge(i, i+1)
	}
	b.AddEdge(10, 11)
	two := b.Build()
	if got := two.ParWeakDiameter([]int32{0, 11}, 4); got != -1 {
		t.Fatalf("ParWeakDiameter across components = %d, want -1", got)
	}
}

// TestParWorkspaceReuse pins that results stay correct across workspace
// reuse and epoch rollover pressure: many traversals back to back on one
// ParWorkspace, interleaved across modes.
func TestParWorkspaceReuse(t *testing.T) {
	g := randomGraph(5000, 15000, 17)
	alive := randomAlive(g.N(), 23)
	ws := graph.NewWorkspace(0)
	pw := graph.AcquireParWorkspace()
	defer graph.ReleaseParWorkspace(pw)
	for trial := 0; trial < 30; trial++ {
		src := (trial * 131) % g.N()
		want := int32s(g.BFSBoundedWithWorkspace(ws, src, -1))
		if got := int32s(graph.ParBFS(pw, g, src, 4)); !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: ParBFS drifted from serial on reuse", trial)
		}
		seeds := []int32{int32(src), int32((src + 7) % g.N())}
		wantB := int32s(g.BallFromSetWithWorkspace(ws, seeds, 3, alive))
		if gotB := int32s(graph.ParBallFromSet(pw, g, seeds, 3, alive, 4)); !reflect.DeepEqual(wantB, gotB) {
			t.Fatalf("trial %d: ParBallFromSet drifted from serial on reuse", trial)
		}
	}
}

// TestParBFSZeroAllocBelowThreshold pins the dispatcher cost contract: on
// a graph whose frontiers stay below the parallel threshold, a warm
// parallel-capable call allocates nothing — Workers: 1 and small graphs
// pay zero for the parallel machinery.
func TestParBFSZeroAllocBelowThreshold(t *testing.T) {
	g := randomGraph(400, 700, 21)
	alive := randomAlive(400, 31)
	seeds := []int32{3, 9}
	pw := graph.NewParWorkspace()
	// Warm every buffer (prefix sums are computed once frontiers pass 64
	// vertices even when the level stays serial).
	graph.ParBFSBounded(pw, g, 0, -1, 4)
	graph.ParBallFromSet(pw, g, seeds, 5, alive, 4)
	graph.ParComponents(pw, g, alive, 4)

	if n := testing.AllocsPerRun(50, func() {
		graph.ParBFSBounded(pw, g, 5, -1, 4)
	}); n != 0 {
		t.Errorf("ParBFSBounded below threshold: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		graph.ParBallFromSet(pw, g, seeds, 5, alive, 4)
	}); n != 0 {
		t.Errorf("ParBallFromSet below threshold: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		graph.ParComponents(pw, g, alive, 4)
	}); n != 0 {
		t.Errorf("ParComponents below threshold: %v allocs/op, want 0", n)
	}
}

// TestParConcurrentQueries runs parallel traversals from many goroutines
// at once (each with its own ParWorkspace, like concurrent engine
// queries); under -race this doubles as the data-race suite for the
// claim/emit passes.
func TestParConcurrentQueries(t *testing.T) {
	g := randomGraph(20000, 60000, 7)
	want := make(map[int][]int32)
	ws := graph.NewWorkspace(0)
	srcs := []int{0, 999, 5000, 19999}
	for _, s := range srcs {
		want[s] = int32s(g.BFSWithWorkspace(ws, s))
	}
	var wg sync.WaitGroup
	for worker := 0; worker < 4; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			pw := graph.AcquireParWorkspace()
			defer graph.ReleaseParWorkspace(pw)
			for trial := 0; trial < 5; trial++ {
				s := srcs[(worker+trial)%len(srcs)]
				got := graph.ParBFS(pw, g, s, 4)
				if !reflect.DeepEqual(want[s], int32s(got)) {
					t.Errorf("worker %d: concurrent ParBFS(src=%d) differs from serial", worker, s)
					return
				}
			}
		}(worker)
	}
	wg.Wait()
}

// --- Benchmarks -------------------------------------------------------------

func benchParGraph(b *testing.B) *graph.Graph {
	b.Helper()
	return randomGraph(200000, 800000, 99)
}

func BenchmarkParBFS(b *testing.B) {
	g := benchParGraph(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pw := graph.NewParWorkspace()
			graph.ParBFS(pw, g, 0, workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				graph.ParBFS(pw, g, i%g.N(), workers)
			}
		})
	}
}

func BenchmarkParComponents(b *testing.B) {
	g := benchParGraph(b)
	alive := randomAlive(g.N(), 5)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pw := graph.NewParWorkspace()
			graph.ParComponents(pw, g, alive, workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				graph.ParComponents(pw, g, alive, workers)
			}
		})
	}
}

func BenchmarkParBallFromSet(b *testing.B) {
	g := benchParGraph(b)
	seeds := []int32{1, 77777, 123456}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pw := graph.NewParWorkspace()
			graph.ParBallFromSet(pw, g, seeds, 6, nil, workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				graph.ParBallFromSet(pw, g, seeds, 6, nil, workers)
			}
		})
	}
}
