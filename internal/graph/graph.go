// Package graph provides the undirected-graph substrate used by every
// algorithm in this repository: a compact immutable adjacency structure,
// breadth-first searches (single-source, multi-source, and radius-bounded),
// ball queries N^k(v), connected components, induced subgraphs with vertex
// remapping, graph powers, edge subdivision, and structural predicates
// (bipartiteness, girth, diameter).
//
// Vertices are dense integers 0..N-1. Graphs are simple (no self-loops, no
// multi-edges) and immutable after construction; algorithms that "delete"
// vertices operate on an alive-mask or build induced subgraphs, which keeps
// the base structure shareable across goroutines without locks.
//
// Every traversal comes in two flavors: the classic form (BFSBounded, Ball,
// Induced, ...), which returns caller-owned results, and a *WithWorkspace
// form that runs on a reusable Workspace and performs zero allocations once
// warm. The classic forms are thin wrappers over a pooled workspace, so hot
// loops should hold an explicit Workspace — one per goroutine — and call the
// *WithWorkspace variants directly. See Workspace for the ownership and
// aliasing rules.
//
// A third flavor parallelizes inside one traversal: the Par* family
// (ParBFSBounded, ParMultiBFS, ParBallFromSet, ParComponents, ParDiameter,
// ...) expands BFS levels across a worker pool with merges that are
// bit-identical to the serial traversals at every worker count, dispatching
// to the serial loop whenever a frontier is too small to be worth fanning
// out. See parbfs.go for the claim/emit discipline and ParWorkspace for the
// shared-scratch rules.
package graph

import (
	"fmt"
	"slices"
	"sort"
)

// Graph is an immutable simple undirected graph in compressed adjacency
// form. Construct one with NewBuilder / Build. The zero value is an empty
// graph with no vertices.
type Graph struct {
	offsets []int32 // len n+1; adjacency of v is adj[offsets[v]:offsets[v+1]]
	adj     []int32 // concatenated sorted neighbor lists
	m       int     // number of edges
}

// N returns the number of vertices.
func (g *Graph) N() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted neighbor list of v. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether {u, v} is an edge. O(log deg(u)).
func (g *Graph) HasEdge(u, v int) bool {
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= int32(v) })
	return i < len(nb) && nb[i] == int32(v)
}

// Edges calls fn for every edge {u, v} with u < v.
func (g *Graph) Edges(fn func(u, v int)) {
	for u := 0; u < g.N(); u++ {
		for _, w := range g.Neighbors(u) {
			if int(w) > u {
				fn(u, int(w))
			}
		}
	}
}

// EdgeList returns all edges as [2]int pairs with u < v.
func (g *Graph) EdgeList() [][2]int {
	out := make([][2]int, 0, g.m)
	g.Edges(func(u, v int) { out = append(out, [2]int{u, v}) })
	return out
}

// String implements fmt.Stringer with a short structural summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d)", g.N(), g.M())
}

// Builder accumulates edges and produces an immutable Graph. Duplicate edges
// and self-loops are silently dropped, so builders can be fed redundant edge
// streams (e.g. from generators) without pre-deduplication.
type Builder struct {
	n     int
	edges [][2]int32
}

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u, v}. Out-of-range endpoints and
// self-loops are ignored.
func (b *Builder) AddEdge(u, v int) {
	if u == v || u < 0 || v < 0 || u >= b.n || v >= b.n {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, [2]int32{int32(u), int32(v)})
}

// Build finalizes the graph. The builder can be reused afterwards, but any
// further AddEdge calls do not affect already-built graphs.
func (b *Builder) Build() *Graph {
	// Sort and deduplicate edge list.
	slices.SortFunc(b.edges, compareEdges)
	dedup := b.edges[:0]
	var prev [2]int32 = [2]int32{-1, -1}
	for _, e := range b.edges {
		if e != prev {
			dedup = append(dedup, e)
			prev = e
		}
	}
	b.edges = dedup

	deg := make([]int32, b.n)
	for _, e := range b.edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	offsets := make([]int32, b.n+1)
	for i := 0; i < b.n; i++ {
		offsets[i+1] = offsets[i] + deg[i]
	}
	adj := make([]int32, offsets[b.n])
	cursor := make([]int32, b.n)
	copy(cursor, offsets[:b.n])
	for _, e := range b.edges {
		adj[cursor[e[0]]] = e[1]
		cursor[e[0]]++
		adj[cursor[e[1]]] = e[0]
		cursor[e[1]]++
	}
	// Neighbor lists are already sorted because edges were emitted in sorted
	// order for the first endpoint, but second-endpoint insertions interleave;
	// sort each list to guarantee the invariant HasEdge relies on.
	g := &Graph{offsets: offsets, adj: adj, m: len(b.edges)}
	for v := 0; v < b.n; v++ {
		slices.Sort(adj[offsets[v]:offsets[v+1]])
	}
	return g
}

// compareEdges orders edge pairs lexicographically.
func compareEdges(a, b [2]int32) int {
	if a[0] != b[0] {
		return int(a[0]) - int(b[0])
	}
	return int(a[1]) - int(b[1])
}

// CSR exposes the raw compressed-sparse-row arrays: offsets has length N()+1
// and adj holds the concatenated sorted neighbor lists. Both slices alias
// internal storage and must not be modified. This is the stable wire form
// used by internal/graphio for streaming serialization and fingerprinting.
func (g *Graph) CSR() (offsets, adj []int32) {
	return g.offsets, g.adj
}

// FromCSR constructs a Graph directly from compressed-sparse-row arrays,
// validating the representation invariants the rest of the package relies
// on: len(offsets) >= 1, offsets monotone with offsets[0] == 0 and
// offsets[n] == len(adj), every neighbor in range, each list strictly
// sorted (no duplicate edges), no self-loops, and adjacency symmetry. The
// arrays are retained (not copied); callers must not modify them afterwards.
func FromCSR(offsets, adj []int32) (*Graph, error) {
	if len(offsets) == 0 || offsets[0] != 0 {
		return nil, fmt.Errorf("graph: CSR offsets must start with 0 (len %d)", len(offsets))
	}
	n := len(offsets) - 1
	if int(offsets[n]) != len(adj) {
		return nil, fmt.Errorf("graph: CSR offsets[n]=%d != len(adj)=%d", offsets[n], len(adj))
	}
	for v := 0; v < n; v++ {
		if offsets[v] > offsets[v+1] {
			return nil, fmt.Errorf("graph: CSR offsets not monotone at vertex %d", v)
		}
		nb := adj[offsets[v]:offsets[v+1]]
		for i, w := range nb {
			if w < 0 || int(w) >= n {
				return nil, fmt.Errorf("graph: neighbor %d of vertex %d out of range [0,%d)", w, v, n)
			}
			if int(w) == v {
				return nil, fmt.Errorf("graph: self-loop on vertex %d", v)
			}
			if i > 0 && nb[i-1] >= w {
				return nil, fmt.Errorf("graph: adjacency of vertex %d not strictly sorted at position %d", v, i)
			}
		}
	}
	g := &Graph{offsets: offsets, adj: adj, m: len(adj) / 2}
	if len(adj)%2 != 0 {
		return nil, fmt.Errorf("graph: odd adjacency length %d cannot be symmetric", len(adj))
	}
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(v) {
			if !g.HasEdge(int(w), v) {
				return nil, fmt.Errorf("graph: asymmetric edge %d->%d", v, w)
			}
		}
	}
	return g, nil
}

// FromEdges builds a graph on n vertices from an explicit edge list.
func FromEdges(n int, edges [][2]int) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// View is the minimal read-only adjacency surface a traversal needs: the
// vertex count and per-vertex sorted neighbor lists. Graph implements it
// directly; store snapshots implement it over a base CSR plus a mutation
// overlay, so point queries can run against a mutated graph without
// materializing a new CSR. Neighbor slices returned through a View alias
// internal storage and must not be modified.
type View interface {
	N() int
	Degree(v int) int
	Neighbors(v int) []int32
}

var _ View = (*Graph)(nil)

// BallOnView is Ball over any View: the vertices of N^k(src) in BFS order
// (sorted by distance, src first). Out-of-range sources yield nil. Unlike
// the *WithWorkspace traversals this allocates its scratch per call — it is
// the read path for overlay-backed snapshots, where the adjacency is an
// interface, not a CSR.
func BallOnView(v View, src, k int) []int32 {
	n := v.N()
	if src < 0 || src >= n {
		return nil
	}
	visited := make([]bool, n)
	visited[src] = true
	out := make([]int32, 1, 16)
	out[0] = int32(src)
	head := 0
	for depth := 0; depth < k && head < len(out); depth++ {
		levelEnd := len(out)
		for ; head < levelEnd; head++ {
			for _, w := range v.Neighbors(int(out[head])) {
				if !visited[w] {
					visited[w] = true
					out = append(out, w)
				}
			}
		}
	}
	return out
}

// Unreachable is the distance value reported for vertices not reached by a
// bounded or disconnected BFS.
const Unreachable = int32(-1)

// BFS computes single-source distances from src. dist[v] == Unreachable for
// vertices in other components.
func (g *Graph) BFS(src int) []int32 {
	return g.BFSBounded(src, -1)
}

// BFSBounded computes distances from src up to the given radius (inclusive).
// A negative radius means unbounded. The caller owns the returned slice; for
// an allocation-free variant see BFSBoundedWithWorkspace.
func (g *Graph) BFSBounded(src, radius int) []int32 {
	ws := AcquireWorkspace()
	dist := append([]int32(nil), g.BFSBoundedWithWorkspace(ws, src, radius)...)
	ReleaseWorkspace(ws)
	return dist
}

// MultiBFS computes, for every vertex, the distance to the nearest source
// and the identity of that source (ties broken toward the earlier BFS
// settlement, which for equal distances is the smaller queue position).
// Vertices unreachable from any source get distance Unreachable and source
// -1.
func (g *Graph) MultiBFS(sources []int) (dist []int32, from []int32) {
	ws := AcquireWorkspace()
	d, f := g.MultiBFSWithWorkspace(ws, sources)
	dist = append([]int32(nil), d...)
	from = append([]int32(nil), f...)
	ReleaseWorkspace(ws)
	return dist, from
}

// Ball returns the vertices of N^k(v) = {u : dist(u,v) <= k}, in BFS order
// (hence sorted by distance), including v itself.
func (g *Graph) Ball(v, k int) []int32 {
	return g.BallAlive(v, k, nil)
}

// BallAlive returns N^k(v) restricted to the subgraph induced by vertices u
// with alive[u] == true. A nil alive mask means all vertices are alive. If v
// itself is dead the ball is empty. The caller owns the returned slice; for
// an allocation-free variant see BallAliveWithWorkspace.
func (g *Graph) BallAlive(v, k int, alive []bool) []int32 {
	ws := AcquireWorkspace()
	res := g.BallAliveWithWorkspace(ws, v, k, alive)
	var ball []int32
	if res != nil {
		ball = append([]int32(nil), res...)
	}
	ReleaseWorkspace(ws)
	return ball
}

// BallLayers returns the layers S_0, S_1, ..., S_k of the BFS from v in the
// alive-induced subgraph: S_j is the set of alive vertices at distance
// exactly j from v. Trailing empty layers are trimmed.
func (g *Graph) BallLayers(v, k int, alive []bool) [][]int32 {
	ws := AcquireWorkspace()
	res := g.BallLayersWithWorkspace(ws, v, k, alive)
	var layers [][]int32
	if res != nil {
		layers = make([][]int32, len(res))
		for i, l := range res {
			layers[i] = append([]int32(nil), l...)
		}
	}
	ReleaseWorkspace(ws)
	return layers
}

// Components returns the connected-component id of each vertex (ids are
// dense, 0-based, in order of first discovery) and the number of components.
func (g *Graph) Components() (comp []int32, count int) {
	return g.ComponentsAlive(nil)
}

// ComponentsAlive is Components restricted to the alive-induced subgraph.
// Dead vertices get component id -1.
func (g *Graph) ComponentsAlive(alive []bool) (comp []int32, count int) {
	ws := AcquireWorkspace()
	c, count := g.ComponentsAliveWithWorkspace(ws, alive)
	comp = append([]int32(nil), c...)
	ReleaseWorkspace(ws)
	return comp, count
}

// Induced builds the subgraph induced by the given vertex set. It returns
// the new graph and the mapping newID -> oldID (the inverse mapping can be
// derived by the caller). Duplicate vertices in the input are collapsed.
func (g *Graph) Induced(vertices []int32) (*Graph, []int32) {
	ws := AcquireWorkspace()
	sub, back := g.InducedWithWorkspace(ws, vertices)
	out := &Graph{
		offsets: append([]int32(nil), sub.offsets...),
		adj:     append([]int32(nil), sub.adj...),
		m:       sub.m,
	}
	newToOld := append([]int32(nil), back...)
	ReleaseWorkspace(ws)
	return out, newToOld
}

// Power returns the k-th power graph G^k: same vertex set, an edge between
// any two distinct vertices at distance <= k in G. Quadratic in ball sizes;
// intended for the moderate k used by the GKM baseline.
func (g *Graph) Power(k int) *Graph {
	if k <= 1 {
		// G^1 == G; return a copy-free alias (Graph is immutable).
		return g
	}
	ws := AcquireWorkspace()
	p := g.PowerWithWorkspace(ws, k)
	ReleaseWorkspace(ws)
	return p
}

// Subdivide returns the graph obtained by replacing every edge {u, v} with a
// path u - w_1 - ... - w_{extra} - v of extra new internal vertices (so the
// path has length extra+1). extra = 0 returns an isomorphic copy. This is
// the reduction used in Theorems B.3 and B.7 with extra = 2x.
func (g *Graph) Subdivide(extra int) *Graph {
	if extra < 0 {
		extra = 0
	}
	n := g.N()
	b := NewBuilder(n + extra*g.M())
	next := n
	g.Edges(func(u, v int) {
		if extra == 0 {
			b.AddEdge(u, v)
			return
		}
		prev := u
		for i := 0; i < extra; i++ {
			b.AddEdge(prev, next)
			prev = next
			next++
		}
		b.AddEdge(prev, v)
	})
	return b.Build()
}

// IsBipartite reports whether the graph is bipartite, and if so returns a
// valid 2-coloring (side[v] in {0, 1}); otherwise side is nil.
func (g *Graph) IsBipartite() (bool, []int8) {
	side := make([]int8, g.N())
	for i := range side {
		side[i] = -1
	}
	var queue []int32
	for s := 0; s < g.N(); s++ {
		if side[s] != -1 {
			continue
		}
		side[s] = 0
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(int(v)) {
				if side[w] == -1 {
					side[w] = 1 - side[v]
					queue = append(queue, w)
				} else if side[w] == side[v] {
					return false, nil
				}
			}
		}
	}
	return true, side
}

// Girth returns the length of a shortest cycle, or -1 for a forest.
// O(n·m) BFS-based bound; fine at laptop scale.
func (g *Graph) Girth() int {
	best := -1
	dist := make([]int32, g.N())
	parent := make([]int32, g.N())
	for s := 0; s < g.N(); s++ {
		for i := range dist {
			dist[i] = Unreachable
			parent[i] = -1
		}
		dist[s] = 0
		queue := []int32{int32(s)}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if best >= 0 && int(dist[v])*2 >= best {
				// No shorter cycle through s can be found beyond this depth.
				continue
			}
			for _, w := range g.Neighbors(int(v)) {
				if w == parent[v] {
					// Skip the tree edge back to the parent once; parallel
					// edges are impossible in a simple graph.
					parent[v] = -2 // consume the single back-edge allowance
					continue
				}
				if dist[w] == Unreachable {
					dist[w] = dist[v] + 1
					parent[w] = v
					queue = append(queue, w)
				} else {
					// Non-tree edge closes a cycle of length d(v)+d(w)+1.
					c := int(dist[v] + dist[w] + 1)
					if best < 0 || c < best {
						best = c
					}
				}
			}
		}
	}
	return best
}

// Diameter returns the maximum eccentricity over all vertices, treating each
// connected component separately and returning the max over components.
// Returns 0 for an empty or edgeless graph.
func (g *Graph) Diameter() int {
	ws := AcquireWorkspace()
	best := g.DiameterWithWorkspace(ws)
	ReleaseWorkspace(ws)
	return best
}

// Eccentricity returns max_u dist(v, u) within v's component.
func (g *Graph) Eccentricity(v int) int {
	ws := AcquireWorkspace()
	best := g.EccentricityWithWorkspace(ws, v)
	ReleaseWorkspace(ws)
	return best
}

// WeakDiameter returns max over u,v in S of dist_G(u, v): distances are
// measured in the whole graph g, not the induced subgraph. Returns -1 if
// some pair of S is disconnected in g.
func (g *Graph) WeakDiameter(s []int32) int {
	ws := AcquireWorkspace()
	best := g.WeakDiameterWithWorkspace(ws, s)
	ReleaseWorkspace(ws)
	return best
}

// StrongDiameter returns the diameter of the subgraph induced by S, or -1 if
// that subgraph is disconnected.
func (g *Graph) StrongDiameter(s []int32) int {
	ws := AcquireWorkspace()
	best := g.StrongDiameterWithWorkspace(ws, s)
	ReleaseWorkspace(ws)
	return best
}
