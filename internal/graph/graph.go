// Package graph provides the undirected-graph substrate used by every
// algorithm in this repository: a compact immutable adjacency structure,
// breadth-first searches (single-source, multi-source, and radius-bounded),
// ball queries N^k(v), connected components, induced subgraphs with vertex
// remapping, graph powers, edge subdivision, and structural predicates
// (bipartiteness, girth, diameter).
//
// Vertices are dense integers 0..N-1. Graphs are simple (no self-loops, no
// multi-edges) and immutable after construction; algorithms that "delete"
// vertices operate on an alive-mask or build induced subgraphs, which keeps
// the base structure shareable across goroutines without locks.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable simple undirected graph in compressed adjacency
// form. Construct one with NewBuilder / Build. The zero value is an empty
// graph with no vertices.
type Graph struct {
	offsets []int32 // len n+1; adjacency of v is adj[offsets[v]:offsets[v+1]]
	adj     []int32 // concatenated sorted neighbor lists
	m       int     // number of edges
}

// N returns the number of vertices.
func (g *Graph) N() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted neighbor list of v. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether {u, v} is an edge. O(log deg(u)).
func (g *Graph) HasEdge(u, v int) bool {
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= int32(v) })
	return i < len(nb) && nb[i] == int32(v)
}

// Edges calls fn for every edge {u, v} with u < v.
func (g *Graph) Edges(fn func(u, v int)) {
	for u := 0; u < g.N(); u++ {
		for _, w := range g.Neighbors(u) {
			if int(w) > u {
				fn(u, int(w))
			}
		}
	}
}

// EdgeList returns all edges as [2]int pairs with u < v.
func (g *Graph) EdgeList() [][2]int {
	out := make([][2]int, 0, g.m)
	g.Edges(func(u, v int) { out = append(out, [2]int{u, v}) })
	return out
}

// String implements fmt.Stringer with a short structural summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d)", g.N(), g.M())
}

// Builder accumulates edges and produces an immutable Graph. Duplicate edges
// and self-loops are silently dropped, so builders can be fed redundant edge
// streams (e.g. from generators) without pre-deduplication.
type Builder struct {
	n     int
	edges [][2]int32
}

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u, v}. Out-of-range endpoints and
// self-loops are ignored.
func (b *Builder) AddEdge(u, v int) {
	if u == v || u < 0 || v < 0 || u >= b.n || v >= b.n {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, [2]int32{int32(u), int32(v)})
}

// Build finalizes the graph. The builder can be reused afterwards, but any
// further AddEdge calls do not affect already-built graphs.
func (b *Builder) Build() *Graph {
	// Sort and deduplicate edge list.
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i][0] != b.edges[j][0] {
			return b.edges[i][0] < b.edges[j][0]
		}
		return b.edges[i][1] < b.edges[j][1]
	})
	dedup := b.edges[:0]
	var prev [2]int32 = [2]int32{-1, -1}
	for _, e := range b.edges {
		if e != prev {
			dedup = append(dedup, e)
			prev = e
		}
	}
	b.edges = dedup

	deg := make([]int32, b.n)
	for _, e := range b.edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	offsets := make([]int32, b.n+1)
	for i := 0; i < b.n; i++ {
		offsets[i+1] = offsets[i] + deg[i]
	}
	adj := make([]int32, offsets[b.n])
	cursor := make([]int32, b.n)
	copy(cursor, offsets[:b.n])
	for _, e := range b.edges {
		adj[cursor[e[0]]] = e[1]
		cursor[e[0]]++
		adj[cursor[e[1]]] = e[0]
		cursor[e[1]]++
	}
	// Neighbor lists are already sorted because edges were emitted in sorted
	// order for the first endpoint, but second-endpoint insertions interleave;
	// sort each list to guarantee the invariant HasEdge relies on.
	g := &Graph{offsets: offsets, adj: adj, m: len(b.edges)}
	for v := 0; v < b.n; v++ {
		nb := adj[offsets[v]:offsets[v+1]]
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	}
	return g
}

// FromEdges builds a graph on n vertices from an explicit edge list.
func FromEdges(n int, edges [][2]int) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// Unreachable is the distance value reported for vertices not reached by a
// bounded or disconnected BFS.
const Unreachable = int32(-1)

// BFS computes single-source distances from src. dist[v] == Unreachable for
// vertices in other components.
func (g *Graph) BFS(src int) []int32 {
	return g.BFSBounded(src, -1)
}

// BFSBounded computes distances from src up to the given radius (inclusive).
// A negative radius means unbounded.
func (g *Graph) BFSBounded(src, radius int) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = Unreachable
	}
	if src < 0 || src >= g.N() {
		return dist
	}
	dist[src] = 0
	queue := []int32{int32(src)}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		d := dist[v]
		if radius >= 0 && int(d) >= radius {
			continue
		}
		for _, w := range g.Neighbors(int(v)) {
			if dist[w] == Unreachable {
				dist[w] = d + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// MultiBFS computes, for every vertex, the distance to the nearest source
// and the identity of that source (ties broken toward the earlier BFS
// settlement, which for equal distances is the smaller queue position).
// Vertices unreachable from any source get distance Unreachable and source
// -1.
func (g *Graph) MultiBFS(sources []int) (dist []int32, from []int32) {
	dist = make([]int32, g.N())
	from = make([]int32, g.N())
	for i := range dist {
		dist[i] = Unreachable
		from[i] = -1
	}
	queue := make([]int32, 0, len(sources))
	for _, s := range sources {
		if s < 0 || s >= g.N() || dist[s] == 0 {
			continue
		}
		dist[s] = 0
		from[s] = int32(s)
		queue = append(queue, int32(s))
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(int(v)) {
			if dist[w] == Unreachable {
				dist[w] = dist[v] + 1
				from[w] = from[v]
				queue = append(queue, w)
			}
		}
	}
	return dist, from
}

// Ball returns the vertices of N^k(v) = {u : dist(u,v) <= k}, in BFS order
// (hence sorted by distance), including v itself.
func (g *Graph) Ball(v, k int) []int32 {
	return g.BallAlive(v, k, nil)
}

// BallAlive returns N^k(v) restricted to the subgraph induced by vertices u
// with alive[u] == true. A nil alive mask means all vertices are alive. If v
// itself is dead the ball is empty.
func (g *Graph) BallAlive(v, k int, alive []bool) []int32 {
	if v < 0 || v >= g.N() {
		return nil
	}
	if alive != nil && !alive[v] {
		return nil
	}
	// Reuse a visited map sized to the graph only when cheap; for large
	// graphs with small balls a map would be slower than a slice, and the
	// slice is O(n) per call. We use an epoch-free local slice: acceptable
	// because callers batch balls per phase and n is laptop-scale.
	seen := make([]bool, g.N())
	seen[v] = true
	ball := []int32{int32(v)}
	frontier := []int32{int32(v)}
	for d := 0; d < k && len(frontier) > 0; d++ {
		var next []int32
		for _, u := range frontier {
			for _, w := range g.Neighbors(int(u)) {
				if seen[w] || (alive != nil && !alive[w]) {
					continue
				}
				seen[w] = true
				next = append(next, w)
				ball = append(ball, w)
			}
		}
		frontier = next
	}
	return ball
}

// BallLayers returns the layers S_0, S_1, ..., S_k of the BFS from v in the
// alive-induced subgraph: S_j is the set of alive vertices at distance
// exactly j from v. Trailing empty layers are trimmed.
func (g *Graph) BallLayers(v, k int, alive []bool) [][]int32 {
	if v < 0 || v >= g.N() || (alive != nil && !alive[v]) {
		return nil
	}
	seen := make([]bool, g.N())
	seen[v] = true
	layers := [][]int32{{int32(v)}}
	frontier := []int32{int32(v)}
	for d := 0; d < k && len(frontier) > 0; d++ {
		var next []int32
		for _, u := range frontier {
			for _, w := range g.Neighbors(int(u)) {
				if seen[w] || (alive != nil && !alive[w]) {
					continue
				}
				seen[w] = true
				next = append(next, w)
			}
		}
		if len(next) == 0 {
			break
		}
		layers = append(layers, next)
		frontier = next
	}
	return layers
}

// Components returns the connected-component id of each vertex (ids are
// dense, 0-based, in order of first discovery) and the number of components.
func (g *Graph) Components() (comp []int32, count int) {
	return g.ComponentsAlive(nil)
}

// ComponentsAlive is Components restricted to the alive-induced subgraph.
// Dead vertices get component id -1.
func (g *Graph) ComponentsAlive(alive []bool) (comp []int32, count int) {
	comp = make([]int32, g.N())
	for i := range comp {
		comp[i] = -1
	}
	var queue []int32
	for s := 0; s < g.N(); s++ {
		if comp[s] != -1 || (alive != nil && !alive[s]) {
			continue
		}
		id := int32(count)
		count++
		comp[s] = id
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(int(v)) {
				if comp[w] == -1 && (alive == nil || alive[w]) {
					comp[w] = id
					queue = append(queue, w)
				}
			}
		}
	}
	return comp, count
}

// Induced builds the subgraph induced by the given vertex set. It returns
// the new graph and the mapping newID -> oldID (the inverse mapping can be
// derived by the caller). Duplicate vertices in the input are collapsed.
func (g *Graph) Induced(vertices []int32) (*Graph, []int32) {
	oldToNew := make(map[int32]int32, len(vertices))
	newToOld := make([]int32, 0, len(vertices))
	for _, v := range vertices {
		if _, ok := oldToNew[v]; ok {
			continue
		}
		oldToNew[v] = int32(len(newToOld))
		newToOld = append(newToOld, v)
	}
	b := NewBuilder(len(newToOld))
	for newU, oldU := range newToOld {
		for _, w := range g.Neighbors(int(oldU)) {
			if newW, ok := oldToNew[w]; ok && int32(newU) < newW {
				b.AddEdge(newU, int(newW))
			}
		}
	}
	return b.Build(), newToOld
}

// Power returns the k-th power graph G^k: same vertex set, an edge between
// any two distinct vertices at distance <= k in G. Quadratic in ball sizes;
// intended for the moderate k used by the GKM baseline.
func (g *Graph) Power(k int) *Graph {
	if k <= 1 {
		// G^1 == G; return a copy-free alias (Graph is immutable).
		return g
	}
	b := NewBuilder(g.N())
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Ball(v, k) {
			if int(u) > v {
				b.AddEdge(v, int(u))
			}
		}
	}
	return b.Build()
}

// Subdivide returns the graph obtained by replacing every edge {u, v} with a
// path u - w_1 - ... - w_{extra} - v of extra new internal vertices (so the
// path has length extra+1). extra = 0 returns an isomorphic copy. This is
// the reduction used in Theorems B.3 and B.7 with extra = 2x.
func (g *Graph) Subdivide(extra int) *Graph {
	if extra < 0 {
		extra = 0
	}
	n := g.N()
	b := NewBuilder(n + extra*g.M())
	next := n
	g.Edges(func(u, v int) {
		if extra == 0 {
			b.AddEdge(u, v)
			return
		}
		prev := u
		for i := 0; i < extra; i++ {
			b.AddEdge(prev, next)
			prev = next
			next++
		}
		b.AddEdge(prev, v)
	})
	return b.Build()
}

// IsBipartite reports whether the graph is bipartite, and if so returns a
// valid 2-coloring (side[v] in {0, 1}); otherwise side is nil.
func (g *Graph) IsBipartite() (bool, []int8) {
	side := make([]int8, g.N())
	for i := range side {
		side[i] = -1
	}
	var queue []int32
	for s := 0; s < g.N(); s++ {
		if side[s] != -1 {
			continue
		}
		side[s] = 0
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(int(v)) {
				if side[w] == -1 {
					side[w] = 1 - side[v]
					queue = append(queue, w)
				} else if side[w] == side[v] {
					return false, nil
				}
			}
		}
	}
	return true, side
}

// Girth returns the length of a shortest cycle, or -1 for a forest.
// O(n·m) BFS-based bound; fine at laptop scale.
func (g *Graph) Girth() int {
	best := -1
	dist := make([]int32, g.N())
	parent := make([]int32, g.N())
	for s := 0; s < g.N(); s++ {
		for i := range dist {
			dist[i] = Unreachable
			parent[i] = -1
		}
		dist[s] = 0
		queue := []int32{int32(s)}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if best >= 0 && int(dist[v])*2 >= best {
				// No shorter cycle through s can be found beyond this depth.
				continue
			}
			for _, w := range g.Neighbors(int(v)) {
				if w == parent[v] {
					// Skip the tree edge back to the parent once; parallel
					// edges are impossible in a simple graph.
					parent[v] = -2 // consume the single back-edge allowance
					continue
				}
				if dist[w] == Unreachable {
					dist[w] = dist[v] + 1
					parent[w] = v
					queue = append(queue, w)
				} else {
					// Non-tree edge closes a cycle of length d(v)+d(w)+1.
					c := int(dist[v] + dist[w] + 1)
					if best < 0 || c < best {
						best = c
					}
				}
			}
		}
	}
	return best
}

// Diameter returns the maximum eccentricity over all vertices, treating each
// connected component separately and returning the max over components.
// Returns 0 for an empty or edgeless graph.
func (g *Graph) Diameter() int {
	best := 0
	for s := 0; s < g.N(); s++ {
		dist := g.BFS(s)
		for _, d := range dist {
			if int(d) > best {
				best = int(d)
			}
		}
	}
	return best
}

// Eccentricity returns max_u dist(v, u) within v's component.
func (g *Graph) Eccentricity(v int) int {
	dist := g.BFS(v)
	best := 0
	for _, d := range dist {
		if int(d) > best {
			best = int(d)
		}
	}
	return best
}

// WeakDiameter returns max over u,v in S of dist_G(u, v): distances are
// measured in the whole graph g, not the induced subgraph. Returns -1 if
// some pair of S is disconnected in g.
func (g *Graph) WeakDiameter(s []int32) int {
	best := 0
	for _, v := range s {
		dist := g.BFS(int(v))
		for _, u := range s {
			d := dist[u]
			if d == Unreachable {
				return -1
			}
			if int(d) > best {
				best = int(d)
			}
		}
	}
	return best
}

// StrongDiameter returns the diameter of the subgraph induced by S, or -1 if
// that subgraph is disconnected.
func (g *Graph) StrongDiameter(s []int32) int {
	sub, _ := g.Induced(s)
	comp, count := sub.Components()
	_ = comp
	if count > 1 {
		return -1
	}
	return sub.Diameter()
}
