package graph_test

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// randomGraph builds a deterministic pseudo-random graph for the
// equivalence tests: n vertices, ~m edge attempts, plus a sprinkling of
// isolated vertices and a second component.
func randomGraph(n, m int, seed uint64) *graph.Graph {
	rng := xrand.New(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return b.Build()
}

func randomAlive(n int, seed uint64) []bool {
	rng := xrand.New(seed)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = rng.Float64() < 0.8
	}
	return alive
}

// --- Reference (naive) implementations ------------------------------------

func refBFSBounded(g *graph.Graph, src, radius int) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = graph.Unreachable
	}
	if src < 0 || src >= g.N() {
		return dist
	}
	dist[src] = 0
	queue := []int32{int32(src)}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if radius >= 0 && int(dist[v]) >= radius {
			continue
		}
		for _, w := range g.Neighbors(int(v)) {
			if dist[w] == graph.Unreachable {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

func refBallAlive(g *graph.Graph, v, k int, alive []bool) []int32 {
	if v < 0 || v >= g.N() || (alive != nil && !alive[v]) {
		return nil
	}
	seen := make([]bool, g.N())
	seen[v] = true
	ball := []int32{int32(v)}
	frontier := []int32{int32(v)}
	for d := 0; d < k && len(frontier) > 0; d++ {
		var next []int32
		for _, u := range frontier {
			for _, w := range g.Neighbors(int(u)) {
				if seen[w] || (alive != nil && !alive[w]) {
					continue
				}
				seen[w] = true
				next = append(next, w)
				ball = append(ball, w)
			}
		}
		frontier = next
	}
	return ball
}

func refBallLayers(g *graph.Graph, v, k int, alive []bool) [][]int32 {
	if v < 0 || v >= g.N() || (alive != nil && !alive[v]) {
		return nil
	}
	seen := make([]bool, g.N())
	seen[v] = true
	layers := [][]int32{{int32(v)}}
	frontier := []int32{int32(v)}
	for d := 0; d < k && len(frontier) > 0; d++ {
		var next []int32
		for _, u := range frontier {
			for _, w := range g.Neighbors(int(u)) {
				if seen[w] || (alive != nil && !alive[w]) {
					continue
				}
				seen[w] = true
				next = append(next, w)
			}
		}
		if len(next) == 0 {
			break
		}
		layers = append(layers, next)
		frontier = next
	}
	return layers
}

// --- Equivalence: workspace variants vs reference semantics ----------------

func TestWorkspaceTraversalsMatchReference(t *testing.T) {
	ws := graph.NewWorkspace(0)
	for _, tc := range []struct{ n, m int }{{1, 0}, {17, 20}, {120, 200}, {300, 260}} {
		g := randomGraph(tc.n, tc.m, uint64(tc.n)*13+1)
		alive := randomAlive(tc.n, uint64(tc.m)+7)
		for _, src := range []int{0, tc.n / 2, tc.n - 1} {
			for _, radius := range []int{-1, 0, 1, 3, tc.n} {
				want := refBFSBounded(g, src, radius)
				got := g.BFSBoundedWithWorkspace(ws, src, radius)
				if !reflect.DeepEqual(want, append([]int32(nil), got...)) {
					t.Fatalf("BFSBounded(n=%d src=%d r=%d) mismatch", tc.n, src, radius)
				}
			}
			for _, k := range []int{0, 1, 2, 5, tc.n} {
				for _, a := range [][]bool{nil, alive} {
					want := refBallAlive(g, src, k, a)
					got := g.BallAliveWithWorkspace(ws, src, k, a)
					if len(want) != len(got) || (want != nil && !reflect.DeepEqual(want, append([]int32(nil), got...))) {
						t.Fatalf("BallAlive(n=%d v=%d k=%d) mismatch: want %v got %v", tc.n, src, k, want, got)
					}
					wantL := refBallLayers(g, src, k, a)
					gotL := g.BallLayersWithWorkspace(ws, src, k, a)
					if len(wantL) != len(gotL) {
						t.Fatalf("BallLayers(n=%d v=%d k=%d) layer count %d != %d", tc.n, src, k, len(gotL), len(wantL))
					}
					for i := range wantL {
						if !reflect.DeepEqual(wantL[i], append([]int32(nil), gotL[i]...)) {
							t.Fatalf("BallLayers(n=%d v=%d k=%d) layer %d mismatch", tc.n, src, k, i)
						}
					}
				}
			}
		}
	}
}

func TestWorkspaceComponentsAndMultiBFSMatchWrappers(t *testing.T) {
	ws := graph.NewWorkspace(0)
	g := randomGraph(150, 170, 99)
	alive := randomAlive(150, 5)

	wantComp, wantCount := g.ComponentsAlive(alive)
	gotComp, gotCount := g.ComponentsAliveWithWorkspace(ws, alive)
	if wantCount != gotCount || !reflect.DeepEqual(wantComp, append([]int32(nil), gotComp...)) {
		t.Fatal("ComponentsAlive mismatch between wrapper and workspace variant")
	}

	sources := []int{3, 77, 149, 3}
	wantD, wantF := g.MultiBFS(sources)
	gotD, gotF := g.MultiBFSWithWorkspace(ws, sources)
	if !reflect.DeepEqual(wantD, append([]int32(nil), gotD...)) || !reflect.DeepEqual(wantF, append([]int32(nil), gotF...)) {
		t.Fatal("MultiBFS mismatch between wrapper and workspace variant")
	}
}

func TestInducedWithWorkspaceMatchesReference(t *testing.T) {
	ws := graph.NewWorkspace(0)
	g := randomGraph(80, 140, 17)
	rng := xrand.New(123)
	for trial := 0; trial < 20; trial++ {
		var vertices []int32
		for v := 0; v < g.N(); v++ {
			if rng.Float64() < 0.5 {
				vertices = append(vertices, int32(v))
			}
		}
		// Duplicates must collapse.
		vertices = append(vertices, vertices...)

		sub, back := g.InducedWithWorkspace(ws, vertices)

		// Reference: dedup in input order, edges via membership.
		seen := map[int32]int32{}
		var wantBack []int32
		for _, v := range vertices {
			if _, ok := seen[v]; ok {
				continue
			}
			seen[v] = int32(len(wantBack))
			wantBack = append(wantBack, v)
		}
		if !reflect.DeepEqual(wantBack, append([]int32(nil), back...)) {
			t.Fatalf("trial %d: newToOld mismatch", trial)
		}
		var wantEdges [][2]int
		for newU, oldU := range wantBack {
			for _, w := range g.Neighbors(int(oldU)) {
				if nw, ok := seen[w]; ok && int32(newU) < nw {
					wantEdges = append(wantEdges, [2]int{newU, int(nw)})
				}
			}
		}
		want := graph.FromEdges(len(wantBack), wantEdges)
		if sub.N() != want.N() || sub.M() != want.M() || !reflect.DeepEqual(sub.EdgeList(), want.EdgeList()) {
			t.Fatalf("trial %d: induced graph mismatch: got %v want %v", trial, sub, want)
		}
	}
}

// TestBallOutputStableAcrossReuse is the regression test for the reused
// ball output buffer: repeated queries on a warm workspace — interleaved
// with unrelated traversals that share the same buffers — must return
// exactly the same contents as a fresh computation.
func TestBallOutputStableAcrossReuse(t *testing.T) {
	g := randomGraph(200, 320, 3)
	alive := randomAlive(200, 11)
	ws := graph.NewWorkspace(0)
	for v := 0; v < g.N(); v += 7 {
		fresh := g.BallAlive(v, 4, alive)
		warm := append([]int32(nil), g.BallAliveWithWorkspace(ws, v, 4, alive)...)
		// Interleave other traversals, then re-query.
		g.BFSBoundedWithWorkspace(ws, (v+13)%g.N(), 3)
		g.ComponentsAliveWithWorkspace(ws, alive)
		again := append([]int32(nil), g.BallAliveWithWorkspace(ws, v, 4, alive)...)
		if !reflect.DeepEqual(fresh, warm) || !reflect.DeepEqual(fresh, again) {
			t.Fatalf("ball contents changed across workspace reuse at v=%d:\nfresh %v\nwarm  %v\nagain %v", v, fresh, warm, again)
		}
	}
}

// --- Allocation regressions ------------------------------------------------

func TestZeroAllocTraversalsWarmWorkspace(t *testing.T) {
	g := randomGraph(400, 700, 21)
	alive := randomAlive(400, 31)
	ws := graph.NewWorkspace(g.N())
	vertices := make([]int32, 0, g.N()/2)
	for v := 0; v < g.N(); v += 2 {
		vertices = append(vertices, int32(v))
	}
	// Warm up every buffer once.
	g.BFSBoundedWithWorkspace(ws, 0, -1)
	g.BallAliveWithWorkspace(ws, 0, 8, alive)
	g.InducedWithWorkspace(ws, vertices)

	if n := testing.AllocsPerRun(50, func() {
		g.BFSBoundedWithWorkspace(ws, 5, -1)
	}); n != 0 {
		t.Errorf("BFSBoundedWithWorkspace: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		g.BallAliveWithWorkspace(ws, 9, 8, alive)
	}); n != 0 {
		t.Errorf("BallAliveWithWorkspace: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		g.InducedWithWorkspace(ws, vertices)
	}); n != 0 {
		t.Errorf("InducedWithWorkspace: %v allocs/op, want 0", n)
	}
}

// --- Concurrency: one workspace per goroutine is race-free -----------------

func TestConcurrentWorkspaces(t *testing.T) {
	g := randomGraph(300, 500, 8)
	alive := randomAlive(300, 9)
	want := make([][]int32, g.N())
	for v := range want {
		want[v] = g.BallAlive(v, 5, alive)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			ws := graph.NewWorkspace(0)
			for v := worker; v < g.N(); v += 8 {
				got := g.BallAliveWithWorkspace(ws, v, 5, alive)
				if len(got) != len(want[v]) {
					t.Errorf("worker %d: ball size mismatch at v=%d", worker, v)
					return
				}
				for i := range got {
					if got[i] != want[v][i] {
						t.Errorf("worker %d: ball content mismatch at v=%d", worker, v)
						return
					}
				}
				sub, _ := g.InducedWithWorkspace(ws, got)
				if sub.N() != len(got) {
					t.Errorf("worker %d: induced size mismatch at v=%d", worker, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
