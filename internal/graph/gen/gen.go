// Package gen provides graph generators for the experiment harness: standard
// topologies (paths, cycles, grids, tori, trees, hypercubes), random models
// (G(n,p), random d-regular, random trees), high-girth regular graphs for
// the lower-bound experiments, and the two adversarial families from
// Appendix C of Chang–Li (PODC 2023) on which the in-expectation
// low-diameter decompositions of Elkin–Neiman and Miller–Peng–Xu fail with
// probability Ω(ε).
package gen

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// FamilyNames lists the topology families Family accepts, in the order the
// CLIs document them.
var FamilyNames = []string{"cycle", "path", "grid", "torus", "gnp", "regular"}

// Family builds the named standard topology on roughly n vertices from a
// seeded RNG: the shared vocabulary of cmd/serve and the HTTP serving
// layer's generate endpoint, so both produce the identical graph for the
// same (family, n, seed) triple. (cmd/ldd keeps its own, differently
// parameterized families.) Grid and torus round n to the nearest square;
// gnp draws G(n, 6/n) and regular a random 4-regular graph.
func Family(kind string, n int, seed uint64) (*graph.Graph, error) {
	if n < 2 {
		return nil, errors.New("gen: family size n must be >= 2")
	}
	rng := xrand.New(seed + 0x5e7e)
	switch kind {
	case "cycle":
		return Cycle(n), nil
	case "path":
		return Path(n), nil
	case "grid":
		side := int(math.Round(math.Sqrt(float64(n))))
		return Grid(side, side), nil
	case "torus":
		side := int(math.Round(math.Sqrt(float64(n))))
		return Torus(side, side), nil
	case "gnp":
		return GNP(n, 6/float64(n), rng), nil
	case "regular":
		return RandomRegular(n, 4, rng), nil
	default:
		return nil, fmt.Errorf("gen: unknown graph family %q", kind)
	}
}

// Path returns the path graph on n vertices: 0-1-2-...-(n-1).
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

// Cycle returns the cycle graph on n vertices (n >= 3 for a true cycle;
// smaller n degenerates to a path).
func Cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	if n >= 3 {
		b.AddEdge(n-1, 0)
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

// CompleteBipartite returns K_{a,b} with sides {0..a-1} and {a..a+b-1}.
func CompleteBipartite(a, b int) *graph.Graph {
	bb := graph.NewBuilder(a + b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			bb.AddEdge(i, a+j)
		}
	}
	return bb.Build()
}

// Grid returns the rows x cols grid graph; vertex (r, c) has id r*cols+c.
func Grid(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// Torus returns the rows x cols torus (grid with wraparound in both
// dimensions). Degenerate dimensions (< 3) avoid duplicate wrap edges by the
// builder's dedup.
func Torus(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int { return ((r+rows)%rows)*cols + (c+cols)%cols }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddEdge(id(r, c), id(r, c+1))
			b.AddEdge(id(r, c), id(r+1, c))
		}
	}
	return b.Build()
}

// Hypercube returns the d-dimensional hypercube on 2^d vertices.
func Hypercube(d int) *graph.Graph {
	n := 1 << d
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			b.AddEdge(v, v^(1<<bit))
		}
	}
	return b.Build()
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	return b.Build()
}

// CompleteDAryTree returns the complete rooted tree of the given arity and
// depth (root at vertex 0; depth 0 is a single vertex).
func CompleteDAryTree(arity, depth int) *graph.Graph {
	// Count vertices: 1 + a + a^2 + ... + a^depth.
	n := 1
	levelSize := 1
	for d := 0; d < depth; d++ {
		levelSize *= arity
		n += levelSize
	}
	b := graph.NewBuilder(n)
	// BFS-order ids: children of node i start after all previously placed.
	next := 1
	frontier := []int{0}
	for d := 0; d < depth; d++ {
		var newFrontier []int
		for _, v := range frontier {
			for c := 0; c < arity; c++ {
				b.AddEdge(v, next)
				newFrontier = append(newFrontier, next)
				next++
			}
		}
		frontier = newFrontier
	}
	return b.Build()
}

// RandomTree returns a uniformly random labeled tree on n vertices via a
// random Prüfer-like attachment: vertex i attaches to a uniform earlier
// vertex. (This is the random recursive tree, not uniform over all labeled
// trees; it has the logarithmic height useful for the experiments.)
func RandomTree(n int, rng *xrand.RNG) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(i, rng.Intn(i))
	}
	return b.Build()
}

// Caterpillar returns a path of length spine with legs pendant vertices
// attached to every spine vertex.
func Caterpillar(spine, legs int) *graph.Graph {
	n := spine * (1 + legs)
	b := graph.NewBuilder(n)
	for i := 0; i+1 < spine; i++ {
		b.AddEdge(i, i+1)
	}
	next := spine
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			b.AddEdge(i, next)
			next++
		}
	}
	return b.Build()
}

// GNP returns an Erdős–Rényi G(n, p) random graph.
func GNP(n int, p float64, rng *xrand.RNG) *graph.Graph {
	b := graph.NewBuilder(n)
	if p <= 0 {
		return b.Build()
	}
	if p >= 1 {
		return Complete(n)
	}
	// Geometric skipping over the implicit edge enumeration would be faster,
	// but the quadratic loop is clear and fine at laptop scale.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Bernoulli(p) {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build()
}

// RandomRegular returns a random d-regular simple graph on n vertices using
// the configuration model with restart on collision. n*d must be even and
// d < n; otherwise it returns the closest achievable graph by dropping the
// violating constraint (an empty graph for nonsensical input). The result is
// approximately uniform for the small d used in the experiments.
func RandomRegular(n, d int, rng *xrand.RNG) *graph.Graph {
	if n <= 0 || d <= 0 || d >= n {
		return graph.NewBuilder(max(n, 0)).Build()
	}
	if n*d%2 != 0 {
		n++ // round up to make the pairing feasible
	}
	stubs := make([]int, 0, n*d)
	for attempt := 0; attempt < 200; attempt++ {
		stubs = stubs[:0]
		for v := 0; v < n; v++ {
			for i := 0; i < d; i++ {
				stubs = append(stubs, v)
			}
		}
		xrand.Shuffle(rng, stubs)
		ok := true
		seen := make(map[[2]int]bool, n*d/2)
		b := graph.NewBuilder(n)
		for i := 0; i+1 < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v {
				ok = false
				break
			}
			if u > v {
				u, v = v, u
			}
			if seen[[2]int{u, v}] {
				ok = false
				break
			}
			seen[[2]int{u, v}] = true
			b.AddEdge(u, v)
		}
		if ok {
			return b.Build()
		}
	}
	// Fall back to a d-connected circulant, which is d-regular and simple.
	return Circulant(n, d)
}

// Circulant returns the circulant graph C_n(1, 2, ..., ceil(d/2)); it is
// d-regular when n > d (for even d; for odd d the last offset n/2 is used
// when available).
func Circulant(n, d int) *graph.Graph {
	b := graph.NewBuilder(n)
	half := d / 2
	for v := 0; v < n; v++ {
		for k := 1; k <= half; k++ {
			b.AddEdge(v, (v+k)%n)
		}
		if d%2 == 1 && n%2 == 0 {
			b.AddEdge(v, (v+n/2)%n)
		}
	}
	return b.Build()
}

// HighGirthRegular returns a d-regular graph on ~n vertices with girth at
// least the requested value, built by repeatedly sampling random d-regular
// graphs and locally rewiring short cycles; if the girth target cannot be
// met within the attempt budget it returns the best graph found along with
// its girth. This substitutes for the LPS Ramanujan graphs X^{p,q} in the
// Appendix B experiments: the lower-bound argument only needs girth
// Ω(log n), which random regular graphs achieve for small d.
func HighGirthRegular(n, d, girthTarget int, rng *xrand.RNG) (*graph.Graph, int) {
	var best *graph.Graph
	bestGirth := -1
	for attempt := 0; attempt < 30; attempt++ {
		g := RandomRegular(n, d, rng)
		gg := g.Girth()
		if gg < 0 {
			gg = 1 << 30 // forest: infinite girth
		}
		if gg > bestGirth {
			best, bestGirth = g, gg
		}
		if bestGirth >= girthTarget {
			break
		}
	}
	return best, bestGirth
}

// CliquePlusPath is the Claim C.1 adversarial family: a clique on
// cliqueSize vertices with a path of pathLen extra vertices appended to
// clique vertex 0. On the bare clique, the Elkin–Neiman decomposition
// deletes at least cliqueSize-1 vertices whenever the top two exponential
// shifts are within 1 of each other, which happens with probability Ω(ε);
// the path padding raises the diameter without changing that event.
func CliquePlusPath(cliqueSize, pathLen int) *graph.Graph {
	n := cliqueSize + pathLen
	b := graph.NewBuilder(n)
	for i := 0; i < cliqueSize; i++ {
		for j := i + 1; j < cliqueSize; j++ {
			b.AddEdge(i, j)
		}
	}
	prev := 0
	for i := 0; i < pathLen; i++ {
		b.AddEdge(prev, cliqueSize+i)
		prev = cliqueSize + i
	}
	return b.Build()
}

// MPXBad is the Claim C.2 adversarial family for the Miller–Peng–Xu edge
// decomposition, on n = 4t+2 vertices and t^2+4t edges: vertex sets SL, SR,
// L, R each of size t, a complete bipartite graph between L and R, a hub u
// adjacent to SL ∪ L and a hub v adjacent to SR ∪ R. When the two largest
// shifts land in SL and SR with a gap, all t^2 (L, R) edges are cut.
//
// Vertex layout: u = 0, v = 1, SL = [2, 2+t), SR = [2+t, 2+2t),
// L = [2+2t, 2+3t), R = [2+3t, 2+4t).
func MPXBad(t int) *graph.Graph {
	n := 4*t + 2
	b := graph.NewBuilder(n)
	u, v := 0, 1
	sl := func(i int) int { return 2 + i }
	sr := func(i int) int { return 2 + t + i }
	l := func(i int) int { return 2 + 2*t + i }
	r := func(i int) int { return 2 + 3*t + i }
	for i := 0; i < t; i++ {
		b.AddEdge(u, sl(i))
		b.AddEdge(u, l(i))
		b.AddEdge(v, sr(i))
		b.AddEdge(v, r(i))
		for j := 0; j < t; j++ {
			b.AddEdge(l(i), r(j))
		}
	}
	return b.Build()
}

// MPXBadParts returns the index ranges of the L and R sides of MPXBad(t),
// so experiments can count how many of the t^2 cross edges were cut.
func MPXBadParts(t int) (lo1, hi1, lo2, hi2 int) {
	return 2 + 2*t, 2 + 3*t, 2 + 3*t, 2 + 4*t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
