package gen

import (
	"testing"

	"repro/internal/xrand"
)

func TestPath(t *testing.T) {
	g := Path(5)
	if g.N() != 5 || g.M() != 4 {
		t.Fatalf("path(5): n=%d m=%d", g.N(), g.M())
	}
	if g.Diameter() != 4 {
		t.Fatal("path diameter")
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(7)
	if g.M() != 7 {
		t.Fatalf("cycle(7) m = %d", g.M())
	}
	for v := 0; v < 7; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("cycle degree(%d) = %d", v, g.Degree(v))
		}
	}
	if Cycle(2).M() != 1 {
		t.Fatal("cycle(2) should degenerate to an edge")
	}
}

func TestComplete(t *testing.T) {
	g := Complete(6)
	if g.M() != 15 {
		t.Fatalf("K6 m = %d", g.M())
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 4)
	if g.N() != 7 || g.M() != 12 {
		t.Fatalf("K(3,4): n=%d m=%d", g.N(), g.M())
	}
	ok, _ := g.IsBipartite()
	if !ok {
		t.Fatal("K(3,4) must be bipartite")
	}
}

func TestGrid(t *testing.T) {
	g := Grid(4, 5)
	if g.N() != 20 {
		t.Fatalf("grid n = %d", g.N())
	}
	if g.M() != 4*4+3*5 {
		t.Fatalf("grid m = %d", g.M())
	}
	if ok, _ := g.IsBipartite(); !ok {
		t.Fatal("grid must be bipartite")
	}
	if g.Diameter() != 3+4 {
		t.Fatalf("grid diameter = %d", g.Diameter())
	}
}

func TestTorus(t *testing.T) {
	g := Torus(4, 6)
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus degree(%d) = %d", v, g.Degree(v))
		}
	}
	if g.M() != 2*4*6 {
		t.Fatalf("torus m = %d", g.M())
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("Q4: n=%d m=%d", g.N(), g.M())
	}
	if g.Diameter() != 4 {
		t.Fatalf("Q4 diameter = %d", g.Diameter())
	}
	if ok, _ := g.IsBipartite(); !ok {
		t.Fatal("hypercube must be bipartite")
	}
}

func TestStar(t *testing.T) {
	g := Star(10)
	if g.Degree(0) != 9 {
		t.Fatal("star center degree")
	}
	if g.Diameter() != 2 {
		t.Fatal("star diameter")
	}
}

func TestCompleteDAryTree(t *testing.T) {
	g := CompleteDAryTree(2, 3) // 1+2+4+8 = 15
	if g.N() != 15 || g.M() != 14 {
		t.Fatalf("binary tree depth 3: n=%d m=%d", g.N(), g.M())
	}
	if g.Girth() != -1 {
		t.Fatal("tree has a cycle?")
	}
	// Root degree is arity; leaves degree 1.
	if g.Degree(0) != 2 {
		t.Fatalf("root degree = %d", g.Degree(0))
	}
	// Regular tree used in the lower bound: arity d-1 per internal node.
	g18 := CompleteDAryTree(3, 2)
	if g18.N() != 1+3+9 {
		t.Fatalf("3-ary depth-2 n = %d", g18.N())
	}
}

func TestRandomTree(t *testing.T) {
	rng := xrand.New(1)
	g := RandomTree(50, rng)
	if g.N() != 50 || g.M() != 49 {
		t.Fatalf("random tree: n=%d m=%d", g.N(), g.M())
	}
	_, count := g.Components()
	if count != 1 {
		t.Fatal("random tree disconnected")
	}
	if g.Girth() != -1 {
		t.Fatal("random tree has a cycle")
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(5, 3)
	if g.N() != 5*4 {
		t.Fatalf("caterpillar n = %d", g.N())
	}
	if g.M() != 4+15 {
		t.Fatalf("caterpillar m = %d", g.M())
	}
	if g.Girth() != -1 {
		t.Fatal("caterpillar must be a tree")
	}
}

func TestGNP(t *testing.T) {
	rng := xrand.New(2)
	g := GNP(100, 0.1, rng)
	expected := 0.1 * 100 * 99 / 2
	if float64(g.M()) < expected*0.7 || float64(g.M()) > expected*1.3 {
		t.Fatalf("G(100,0.1) m = %d, expected ~%v", g.M(), expected)
	}
	if GNP(10, 0, rng).M() != 0 {
		t.Fatal("G(n,0) must be empty")
	}
	if GNP(5, 1, rng).M() != 10 {
		t.Fatal("G(n,1) must be complete")
	}
}

func TestRandomRegular(t *testing.T) {
	rng := xrand.New(3)
	g := RandomRegular(100, 4, rng)
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
	// Odd n*d gets rounded up.
	g = RandomRegular(9, 3, rng)
	if g.N()%2 != 0 {
		t.Fatalf("odd-product regular graph should round n up, n = %d", g.N())
	}
	// Degenerate inputs.
	if RandomRegular(0, 3, rng).N() != 0 {
		t.Fatal("n=0 should yield empty graph")
	}
	if RandomRegular(5, 0, rng).M() != 0 {
		t.Fatal("d=0 should yield edgeless graph")
	}
}

func TestCirculant(t *testing.T) {
	g := Circulant(10, 4)
	for v := 0; v < 10; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("circulant degree(%d) = %d", v, g.Degree(v))
		}
	}
}

func TestHighGirthRegular(t *testing.T) {
	rng := xrand.New(4)
	g, girth := HighGirthRegular(200, 3, 6, rng)
	if g == nil {
		t.Fatal("no graph returned")
	}
	if girth < 4 {
		t.Fatalf("high-girth generator achieved girth %d", girth)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("not 3-regular at %d", v)
		}
	}
}

func TestCliquePlusPath(t *testing.T) {
	g := CliquePlusPath(10, 20)
	if g.N() != 30 {
		t.Fatalf("n = %d", g.N())
	}
	if g.M() != 45+20 {
		t.Fatalf("m = %d", g.M())
	}
	// Clique vertices 1..9 have degree 9; vertex 0 has degree 9+1.
	if g.Degree(0) != 10 {
		t.Fatalf("hub degree = %d", g.Degree(0))
	}
	if g.Degree(5) != 9 {
		t.Fatalf("clique degree = %d", g.Degree(5))
	}
	// Path end has degree 1.
	if g.Degree(29) != 1 {
		t.Fatalf("path end degree = %d", g.Degree(29))
	}
	if g.Diameter() != 20+1 {
		t.Fatalf("diameter = %d", g.Diameter())
	}
}

func TestMPXBad(t *testing.T) {
	tt := 8
	g := MPXBad(tt)
	if g.N() != 4*tt+2 {
		t.Fatalf("n = %d", g.N())
	}
	if g.M() != tt*tt+4*tt {
		t.Fatalf("m = %d, want %d", g.M(), tt*tt+4*tt)
	}
	lo1, hi1, lo2, hi2 := MPXBadParts(tt)
	// Every L vertex is adjacent to every R vertex.
	for l := lo1; l < hi1; l++ {
		for r := lo2; r < hi2; r++ {
			if !g.HasEdge(l, r) {
				t.Fatalf("missing cross edge %d-%d", l, r)
			}
		}
	}
	// Hubs: u=0 adjacent to SL and L; v=1 adjacent to SR and R.
	if g.Degree(0) != 2*tt || g.Degree(1) != 2*tt {
		t.Fatalf("hub degrees %d, %d", g.Degree(0), g.Degree(1))
	}
}

func TestFamily(t *testing.T) {
	for _, kind := range FamilyNames {
		g, err := Family(kind, 64, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if g.N() < 2 {
			t.Fatalf("%s: degenerate graph %v", kind, g)
		}
		// Seeded families are deterministic: same triple, same graph.
		h, err := Family(kind, 64, 1)
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != h.N() || g.M() != h.M() {
			t.Fatalf("%s: not deterministic: %v vs %v", kind, g, h)
		}
	}
	if _, err := Family("mobius", 64, 1); err == nil {
		t.Fatal("unknown family accepted")
	}
	if _, err := Family("cycle", 1, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
	// Grid and torus round n to the nearest square.
	g, err := Family("grid", 100, 1)
	if err != nil || g.N() != 100 {
		t.Fatalf("grid rounding: %v %v", g, err)
	}
}
