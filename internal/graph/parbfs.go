package graph

import (
	"sync"
	"sync/atomic"

	"repro/internal/par"
)

// This file implements level-synchronous parallel BFS over any View (CSR
// graphs and store-snapshot overlays alike) with merges that are
// bit-identical to the serial traversals for every worker count.
//
// Each level expands in two passes over the same degree-balanced frontier
// chunks:
//
//  1. Claim: every worker scans its chunk and, for each undiscovered
//     neighbor, atomically lowers that neighbor's claim word to
//     (epoch<<32)|frontierIndex. The minimum frontier index wins — exactly
//     the vertex that would have discovered the neighbor first in the
//     serial scan.
//  2. Emit: after a barrier, every worker rescans its chunk and appends a
//     neighbor to its chunk-local buffer only where its own frontier index
//     owns the claim, stamping distances/marks as the serial code would.
//     Each vertex has exactly one owner, so the writes are race-free.
//
// Concatenating the chunk buffers in chunk order then reproduces the
// serial discovery order — within a chunk the scan order is the serial
// order, and chunks partition the frontier contiguously — so downstream
// seeded decisions see identical inputs no matter how many workers ran.
//
// Frontiers are partitioned by degree prefix sums, not vertex counts, so a
// star-like frontier (one hub holding most of the edges) still splits its
// edge work across workers. Levels whose total degree is below
// ParLevelEdgeThreshold expand serially inside the same call: the output
// is identical either way, and tiny graphs or frontier tails never pay
// goroutine or atomics overhead (a warm below-threshold ParBFS allocates
// nothing, which the workspace test suite pins).

// ParLevelEdgeThreshold is the frontier degree sum below which a level
// expands serially even when more workers are available. Parallel
// expansion costs two goroutine fan-outs plus one atomic per discovered
// edge; under ~4k edges that overhead beats the win on every box we have
// measured.
const ParLevelEdgeThreshold = 4096

// parMinFrontier is the frontier size below which the dispatcher skips
// even the degree prefix sum and goes straight to the serial expansion.
const parMinFrontier = 64

// parChunkBuf is one chunk's next-frontier buffer, padded so the slice
// headers of adjacent chunks never share a cache line while workers append
// concurrently.
type parChunkBuf struct {
	buf []int32
	_   [40]byte
}

// ParWorkspace bundles the scratch state of the parallel traversals: the
// serial Workspace substrate (distance/stamp arrays, queue and output
// buffers — parallel results alias it exactly like serial ones), the
// atomic claim array, the degree prefix sums, and the per-chunk output
// buffers. Like Workspace it is owned by one goroutine at a time; the
// worker goroutines a traversal spawns internally never outlive the call.
type ParWorkspace struct {
	ws *Workspace

	// claim[v] = (epoch<<32)|frontierIndex; entries from earlier epochs
	// are stale and lose to any current-epoch claim.
	claim []int64
	epoch int64

	prefix []int64      // frontier degree prefix sums (len frontier+1)
	cuts   []int32      // chunk boundaries into the frontier (len chunks+1)
	bufs   []parChunkBuf
}

// NewParWorkspace returns an empty ParWorkspace; buffers grow on first
// use.
func NewParWorkspace() *ParWorkspace {
	return &ParWorkspace{ws: NewWorkspace(0)}
}

// parPool backs AcquireParWorkspace like wsPool backs AcquireWorkspace.
var parPool = sync.Pool{New: func() any { return NewParWorkspace() }}

// AcquireParWorkspace takes a ParWorkspace from the shared pool; pair with
// ReleaseParWorkspace.
func AcquireParWorkspace() *ParWorkspace { return parPool.Get().(*ParWorkspace) }

// ReleaseParWorkspace returns a workspace to the shared pool. The caller
// must not use the workspace, or any result aliasing it, afterwards.
func ReleaseParWorkspace(pw *ParWorkspace) { parPool.Put(pw) }

// reserve sizes the claim array for n vertices and rolls the claim epoch.
func (pw *ParWorkspace) reserve(n int) {
	pw.ws.Reserve(n)
	if n > len(pw.claim) {
		pw.claim = append(pw.claim, make([]int64, n-len(pw.claim))...)
	}
	// Rolling the epoch invalidates every stale claim in O(1). The epoch
	// only ever grows within a traversal (one bump per parallel level), so
	// a reset is needed at most once every ~2^30 levels.
	if pw.epoch >= 1<<30 {
		for i := range pw.claim {
			pw.claim[i] = 0
		}
		pw.epoch = 0
	}
}

// nextEpoch starts a new claim epoch and returns its base word.
func (pw *ParWorkspace) nextEpoch() int64 {
	pw.epoch++
	return pw.epoch << 32
}

// claimMin atomically lowers *p to word unless *p already holds a
// same-epoch claim with an equal or smaller frontier index. base is the
// epoch's base word; anything below it is stale and always loses.
func claimMin(p *int64, base, word int64) {
	for {
		cur := atomic.LoadInt64(p)
		if cur >= base && cur <= word {
			return
		}
		if atomic.CompareAndSwapInt64(p, cur, word) {
			return
		}
	}
}

// partition computes the degree prefix sums of frontier f and cuts it into
// up to `workers` contiguous chunks of roughly equal degree. It returns
// false when the frontier's total degree is below ParLevelEdgeThreshold —
// the level should expand serially.
func (pw *ParWorkspace) partition(g View, f []int32, workers int) bool {
	if len(f) < parMinFrontier {
		return false
	}
	prefix := pw.prefix
	if cap(prefix) < len(f)+1 {
		prefix = make([]int64, len(f)+1)
	}
	prefix = prefix[:len(f)+1]
	prefix[0] = 0
	for i, v := range f {
		prefix[i+1] = prefix[i] + int64(g.Degree(int(v)))
	}
	pw.prefix = prefix
	total := prefix[len(f)]
	if total < ParLevelEdgeThreshold {
		return false
	}
	chunks := workers
	if int64(chunks) > total {
		chunks = int(total)
	}
	cuts := pw.cuts
	if cap(cuts) < chunks+1 {
		cuts = make([]int32, chunks+1)
	}
	cuts = cuts[:chunks+1]
	cuts[0] = 0
	// cut[k] = first index whose prefix reaches k/chunks of the total. A
	// hub vertex heavier than a whole share simply produces empty chunks
	// after it, which cost nothing.
	idx := 0
	for k := 1; k < chunks; k++ {
		want := total * int64(k) / int64(chunks)
		for idx < len(f) && prefix[idx] < want {
			idx++
		}
		cuts[k] = int32(idx)
	}
	cuts[chunks] = int32(len(f))
	pw.cuts = cuts
	if len(pw.bufs) < chunks {
		pw.bufs = append(pw.bufs, make([]parChunkBuf, chunks-len(pw.bufs))...)
	}
	return true
}

// mergeChunks appends the chunk buffers to q in chunk order — the
// deterministic merge that restores serial discovery order.
func (pw *ParWorkspace) mergeChunks(q []int32) []int32 {
	for c := range pw.cuts[:len(pw.cuts)-1] {
		q = append(q, pw.bufs[c].buf...)
	}
	return q
}

// --- distance-mode expansion (BFS, MultiBFS) -------------------------------

// expandLevelDist expands frontier f — all at the same distance — into q,
// stamping dist (and from, when non-nil) exactly like the serial BFS.
func (pw *ParWorkspace) expandLevelDist(g View, f, q []int32, dist, from []int32, workers int) []int32 {
	if workers <= 1 || !pw.partition(g, f, workers) {
		for _, v := range f {
			d := dist[v] + 1
			for _, w := range g.Neighbors(int(v)) {
				if dist[w] == Unreachable {
					dist[w] = d
					if from != nil {
						from[w] = from[v]
					}
					q = append(q, w)
				}
			}
		}
		return q
	}
	claim, base := pw.claim, pw.nextEpoch()
	cuts := pw.cuts
	chunks := len(cuts) - 1
	par.ForEach(chunks, chunks, func(_, c int) {
		for idx := int(cuts[c]); idx < int(cuts[c+1]); idx++ {
			word := base | int64(idx)
			for _, w := range g.Neighbors(int(f[idx])) {
				if dist[w] == Unreachable {
					claimMin(&claim[w], base, word)
				}
			}
		}
	})
	par.ForEach(chunks, chunks, func(_, c int) {
		buf := pw.bufs[c].buf[:0]
		for idx := int(cuts[c]); idx < int(cuts[c+1]); idx++ {
			v := f[idx]
			word := base | int64(idx)
			d := dist[v] + 1
			for _, w := range g.Neighbors(int(v)) {
				if claim[w] == word {
					dist[w] = d
					if from != nil {
						from[w] = from[v]
					}
					buf = append(buf, w)
				}
			}
		}
		pw.bufs[c].buf = buf
	})
	return pw.mergeChunks(q)
}

// --- stamp-mode expansion (balls, layers) ----------------------------------

// expandLevelStamp expands frontier f into out under the workspace's
// current stamp epoch, honoring the alive mask, exactly like the serial
// ballLayersCore level step.
func (pw *ParWorkspace) expandLevelStamp(g View, f, out []int32, seen []int32, epoch int32, alive []bool, workers int) []int32 {
	if workers <= 1 || !pw.partition(g, f, workers) {
		for _, v := range f {
			for _, w := range g.Neighbors(int(v)) {
				if seen[w] == epoch || (alive != nil && !alive[w]) {
					continue
				}
				seen[w] = epoch
				out = append(out, w)
			}
		}
		return out
	}
	claim, base := pw.claim, pw.nextEpoch()
	cuts := pw.cuts
	chunks := len(cuts) - 1
	par.ForEach(chunks, chunks, func(_, c int) {
		for idx := int(cuts[c]); idx < int(cuts[c+1]); idx++ {
			word := base | int64(idx)
			for _, w := range g.Neighbors(int(f[idx])) {
				if seen[w] == epoch || (alive != nil && !alive[w]) {
					continue
				}
				claimMin(&claim[w], base, word)
			}
		}
	})
	par.ForEach(chunks, chunks, func(_, c int) {
		buf := pw.bufs[c].buf[:0]
		for idx := int(cuts[c]); idx < int(cuts[c+1]); idx++ {
			word := base | int64(idx)
			for _, w := range g.Neighbors(int(f[idx])) {
				if claim[w] == word {
					seen[w] = epoch
					buf = append(buf, w)
				}
			}
		}
		pw.bufs[c].buf = buf
	})
	return pw.mergeChunks(out)
}

// --- component-mode expansion ----------------------------------------------

// expandLevelComp expands frontier f into q, labeling discovered vertices
// with component id in comp, exactly like the serial component sweep.
func (pw *ParWorkspace) expandLevelComp(g View, f, q []int32, comp []int32, id int32, alive []bool, workers int) []int32 {
	if workers <= 1 || !pw.partition(g, f, workers) {
		for _, v := range f {
			for _, w := range g.Neighbors(int(v)) {
				if comp[w] == -1 && (alive == nil || alive[w]) {
					comp[w] = id
					q = append(q, w)
				}
			}
		}
		return q
	}
	claim, base := pw.claim, pw.nextEpoch()
	cuts := pw.cuts
	chunks := len(cuts) - 1
	par.ForEach(chunks, chunks, func(_, c int) {
		for idx := int(cuts[c]); idx < int(cuts[c+1]); idx++ {
			word := base | int64(idx)
			for _, w := range g.Neighbors(int(f[idx])) {
				if comp[w] == -1 && (alive == nil || alive[w]) {
					claimMin(&claim[w], base, word)
				}
			}
		}
	})
	par.ForEach(chunks, chunks, func(_, c int) {
		buf := pw.bufs[c].buf[:0]
		for idx := int(cuts[c]); idx < int(cuts[c+1]); idx++ {
			word := base | int64(idx)
			for _, w := range g.Neighbors(int(f[idx])) {
				if claim[w] == word {
					comp[w] = id
					buf = append(buf, w)
				}
			}
		}
		pw.bufs[c].buf = buf
	})
	return pw.mergeChunks(q)
}

// --- public traversals -----------------------------------------------------

// ParBFSBounded computes distances from src up to radius (negative =
// unbounded) over g, expanding each frontier level across up to `workers`
// goroutines (<= 0 means GOMAXPROCS). The result is bit-identical to
// BFSBoundedWithWorkspace for every worker count and aliases the
// workspace; it is valid until the workspace's next use.
func ParBFSBounded(pw *ParWorkspace, g View, src, radius, workers int) []int32 {
	workers = par.Workers(workers)
	n := g.N()
	pw.reserve(n)
	ws := pw.ws
	ws.resetDist()
	dist := ws.dist[:n]
	if src < 0 || src >= n {
		return dist
	}
	dist[src] = 0
	q := append(ws.queue[:0], int32(src))
	levelStart := 0
	for depth := 0; (radius < 0 || depth < radius) && levelStart < len(q); depth++ {
		f := q[levelStart:len(q):len(q)]
		levelStart = len(q)
		q = pw.expandLevelDist(g, f, q, dist, nil, workers)
	}
	// Like the serial BFS: the dirtied dist entries are exactly the queue
	// contents, so swap the buffers instead of copying.
	ws.queue, ws.distDirty = ws.distDirty[:0], q
	return dist
}

// ParBFS is ParBFSBounded with no radius bound.
func ParBFS(pw *ParWorkspace, g View, src, workers int) []int32 {
	return ParBFSBounded(pw, g, src, -1, workers)
}

// ParMultiBFS computes nearest-source distances and source provenance from
// a seed set, bit-identical to MultiBFSWithWorkspace for every worker
// count (ties break toward the earlier queue position, exactly as the
// serial scan settles them). Both results alias the workspace.
func ParMultiBFS(pw *ParWorkspace, g View, sources []int, workers int) (dist []int32, from []int32) {
	workers = par.Workers(workers)
	n := g.N()
	pw.reserve(n)
	ws := pw.ws
	ws.resetDist()
	dist = ws.dist[:n]
	from = ws.from[:n]
	q := ws.queue[:0]
	for _, s := range sources {
		if s < 0 || s >= n || dist[s] == 0 {
			continue
		}
		dist[s] = 0
		from[s] = int32(s)
		q = append(q, int32(s))
	}
	levelStart := 0
	for levelStart < len(q) {
		f := q[levelStart:len(q):len(q)]
		levelStart = len(q)
		q = pw.expandLevelDist(g, f, q, dist, from, workers)
	}
	ws.queue, ws.distDirty = ws.distDirty[:0], q
	return dist, from
}

// ParBallLayersFromSet is BallLayersFromSetWithWorkspace with parallel
// level expansion: layer 0 is the deduplicated alive subset of seeds (in
// input order), layer j the alive vertices at distance exactly j. Returns
// nil when no seed is alive. Bit-identical to the serial code for every
// worker count; the result aliases the workspace.
func ParBallLayersFromSet(pw *ParWorkspace, g View, seeds []int32, radius int, alive []bool, workers int) [][]int32 {
	workers = par.Workers(workers)
	pw.reserve(g.N())
	ws := pw.ws
	seen, epoch := ws.beginStamp()
	out := ws.out[:0]
	for _, s := range seeds {
		if seen[s] == epoch || (alive != nil && !alive[s]) {
			continue
		}
		seen[s] = epoch
		out = append(out, s)
	}
	if len(out) == 0 {
		ws.out = out
		return nil
	}
	layers := append(ws.layers[:0], out[0:len(out):len(out)])
	start, end := 0, len(out)
	for d := 0; d < radius && start < end; d++ {
		f := out[start:end:end]
		out = pw.expandLevelStamp(g, f, out, seen, epoch, alive, workers)
		if len(out) == end {
			break
		}
		layers = append(layers, out[end:len(out):len(out)])
		start, end = end, len(out)
	}
	ws.out = out
	ws.layers = layers
	return layers
}

// ParBallFromSet returns the flattened layers of ParBallLayersFromSet: the
// vertices within distance `radius` of the seed set, in BFS order. The
// result aliases the workspace.
func ParBallFromSet(pw *ParWorkspace, g View, seeds []int32, radius int, alive []bool, workers int) []int32 {
	layers := ParBallLayersFromSet(pw, g, seeds, radius, alive, workers)
	if layers == nil {
		return nil
	}
	total := 0
	for _, l := range layers {
		total += len(l)
	}
	return pw.ws.out[:total]
}

// ParBallLayers is ParBallLayersFromSet for a single centre, matching
// BallLayersWithWorkspace.
func ParBallLayers(pw *ParWorkspace, g View, v, radius int, alive []bool, workers int) [][]int32 {
	if v < 0 || v >= g.N() {
		return nil
	}
	seed := [1]int32{int32(v)}
	return ParBallLayersFromSet(pw, g, seed[:], radius, alive, workers)
}

// ParComponents labels connected components of the alive-induced subgraph,
// bit-identical to ComponentsAliveWithWorkspace: ids are dense, 0-based,
// in order of first discovery, dead vertices get -1. Each component's BFS
// expands its levels in parallel, so one giant component still uses every
// worker. The result aliases the workspace.
func ParComponents(pw *ParWorkspace, g View, alive []bool, workers int) (comp []int32, count int) {
	workers = par.Workers(workers)
	n := g.N()
	pw.reserve(n)
	ws := pw.ws
	comp = ws.comp[:n]
	for i := range comp {
		comp[i] = -1
	}
	q := ws.queue[:0]
	for s := 0; s < n; s++ {
		if comp[s] != -1 || (alive != nil && !alive[s]) {
			continue
		}
		id := int32(count)
		count++
		comp[s] = id
		q = append(q[:0], int32(s))
		levelStart := 0
		for levelStart < len(q) {
			f := q[levelStart:len(q):len(q)]
			levelStart = len(q)
			q = pw.expandLevelComp(g, f, q, comp, id, alive, workers)
		}
	}
	ws.queue = q
	return comp, count
}

// ParEccentricity is Eccentricity with parallel BFS level expansion.
func ParEccentricity(pw *ParWorkspace, g View, v, workers int) int {
	dist := ParBFS(pw, g, v, workers)
	best := 0
	for _, d := range dist {
		if int(d) > best {
			best = int(d)
		}
	}
	return best
}

// ParDiameter is Diameter with the per-source BFS sweeps fanned out across
// the worker pool (one serial workspace per worker; the max over sources
// is order-independent, so the result is identical for any worker count).
func (g *Graph) ParDiameter(workers int) int {
	n := g.N()
	workers = min(par.Workers(workers), max(n, 1))
	if workers <= 1 {
		return g.Diameter()
	}
	best := make([]int, workers)
	wss := make([]*Workspace, workers)
	for i := range wss {
		wss[i] = AcquireWorkspace()
	}
	par.ForEachChunk(workers, n, 16, func(w, s int) {
		dist := g.BFSWithWorkspace(wss[w], s)
		for _, d := range dist {
			if int(d) > best[w] {
				best[w] = int(d)
			}
		}
	})
	for _, ws := range wss {
		ReleaseWorkspace(ws)
	}
	out := 0
	for _, b := range best {
		if b > out {
			out = b
		}
	}
	return out
}

// ParWeakDiameter is WeakDiameter with the per-member BFS sweeps fanned
// out across the worker pool. Returns -1 if some pair of s is disconnected
// in g, exactly like the serial sweep.
func (g *Graph) ParWeakDiameter(s []int32, workers int) int {
	workers = min(par.Workers(workers), max(len(s), 1))
	if workers <= 1 {
		return g.WeakDiameter(s)
	}
	best := make([]int, workers)
	wss := make([]*Workspace, workers)
	for i := range wss {
		wss[i] = AcquireWorkspace()
	}
	par.ForEachChunk(workers, len(s), 4, func(w, i int) {
		if best[w] == -1 {
			return
		}
		dist := g.BFSWithWorkspace(wss[w], int(s[i]))
		for _, u := range s {
			d := dist[u]
			if d == Unreachable {
				best[w] = -1
				return
			}
			if int(d) > best[w] {
				best[w] = int(d)
			}
		}
	})
	for _, ws := range wss {
		ReleaseWorkspace(ws)
	}
	out := 0
	for _, b := range best {
		if b == -1 {
			return -1
		}
		if b > out {
			out = b
		}
	}
	return out
}
