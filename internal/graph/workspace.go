package graph

import (
	"math"
	"slices"
	"sync"
)

// Workspace holds the reusable scratch state for the traversal primitives:
// an epoch-stamped visited array (O(1) reset), distance/provenance arrays
// with dirty-list resets, a preallocated queue that doubles as the BFS-order
// output buffer, reusable layer headers, a dense old→new Remap, and the
// storage backing InducedWithWorkspace results. After a few warm-up calls a
// Workspace makes every *WithWorkspace traversal allocation-free.
//
// Ownership rule: a Workspace must be owned by exactly one goroutine at a
// time. Concurrent traversals must each use their own Workspace (the graph
// itself is immutable and freely shared). Results returned by
// *WithWorkspace methods alias Workspace storage and are valid only until
// the next call on the same Workspace; callers that need to retain a result
// must copy it.
type Workspace struct {
	// epoch-stamped visited marks: stamp[v] == epoch means "seen in the
	// current traversal".
	stamp []int32
	epoch int32

	// dist/from are maintained all-Unreachable / all -1 between calls; the
	// dirty list records which entries the previous BFS touched so the next
	// call resets O(visited), not O(n).
	dist      []int32
	from      []int32
	distDirty []int32

	// queue is the BFS queue; for ball queries the output buffer itself is
	// the queue (BFS order == queue order).
	queue []int32
	out   []int32
	// layers holds reusable layer headers; each header subslices out.
	layers [][]int32

	// comp backs ComponentsAliveWithWorkspace results.
	comp []int32

	// Remap is the dense old→new vertex id map used by
	// InducedWithWorkspace; it is reset at the start of that call but is
	// otherwise free for callers to use between traversals.
	Remap Remap

	// Induced storage: the result graph of InducedWithWorkspace is built in
	// place from these buffers.
	newToOld   []int32
	indOffsets []int32
	indAdj     []int32
	indCursor  []int32
	indG       Graph
}

// NewWorkspace returns a Workspace pre-sized for graphs of up to n
// vertices. Buffers grow on demand, so n = 0 is a valid starting point.
func NewWorkspace(n int) *Workspace {
	ws := &Workspace{}
	ws.Reserve(n)
	return ws
}

// Reserve grows the vertex-indexed buffers to hold n vertices. It is called
// automatically by every traversal; explicit calls just pre-warm.
func (ws *Workspace) Reserve(n int) {
	if n <= len(ws.stamp) {
		return
	}
	old := len(ws.stamp)
	ws.stamp = append(ws.stamp, make([]int32, n-old)...)
	grown := make([]int32, n-len(ws.dist))
	for i := range grown {
		grown[i] = Unreachable
	}
	ws.dist = append(ws.dist, grown...)
	grownFrom := make([]int32, n-len(ws.from))
	for i := range grownFrom {
		grownFrom[i] = -1
	}
	ws.from = append(ws.from, grownFrom...)
	if cap(ws.comp) < n {
		ws.comp = make([]int32, n)
	}
}

// beginStamp starts a new traversal epoch and returns the stamp array and
// the fresh epoch value.
func (ws *Workspace) beginStamp() ([]int32, int32) {
	if ws.epoch == math.MaxInt32 {
		for i := range ws.stamp {
			ws.stamp[i] = 0
		}
		ws.epoch = 0
	}
	ws.epoch++
	return ws.stamp, ws.epoch
}

// resetDist restores the all-Unreachable / all -1 invariant on dist/from by
// clearing only the entries dirtied by the previous BFS.
func (ws *Workspace) resetDist() {
	for _, v := range ws.distDirty {
		ws.dist[v] = Unreachable
		ws.from[v] = -1
	}
	ws.distDirty = ws.distDirty[:0]
}

// wsPool backs the legacy (workspace-free) wrappers so they stay cheap
// without changing their allocation contract: results are copied out before
// the workspace returns to the pool.
var wsPool = sync.Pool{New: func() any { return NewWorkspace(0) }}

// AcquireWorkspace takes a Workspace from the shared pool. Pair with
// ReleaseWorkspace. Useful for call sites that want reuse without managing
// a long-lived workspace of their own.
func AcquireWorkspace() *Workspace { return wsPool.Get().(*Workspace) }

// ReleaseWorkspace returns a workspace to the shared pool. The caller must
// not use the workspace, or any result aliasing it, afterwards.
func ReleaseWorkspace(ws *Workspace) { wsPool.Put(ws) }

// --- BFS ------------------------------------------------------------------

// BFSBoundedWithWorkspace is BFSBounded on reusable storage. The returned
// slice aliases the workspace and is valid until its next use.
func (g *Graph) BFSBoundedWithWorkspace(ws *Workspace, src, radius int) []int32 {
	n := g.N()
	ws.Reserve(n)
	ws.resetDist()
	dist := ws.dist[:n]
	if src < 0 || src >= n {
		return dist
	}
	dist[src] = 0
	q := append(ws.queue[:0], int32(src))
	for head := 0; head < len(q); head++ {
		v := q[head]
		d := dist[v]
		if radius >= 0 && int(d) >= radius {
			continue
		}
		for _, w := range g.Neighbors(int(v)) {
			if dist[w] == Unreachable {
				dist[w] = d + 1
				q = append(q, w)
			}
		}
	}
	// The dirtied dist entries are exactly the queue contents: swap the two
	// buffers instead of copying (distDirty was emptied by resetDist above).
	ws.queue, ws.distDirty = ws.distDirty[:0], q
	return dist
}

// BFSWithWorkspace is BFS on reusable storage; see BFSBoundedWithWorkspace.
func (g *Graph) BFSWithWorkspace(ws *Workspace, src int) []int32 {
	return g.BFSBoundedWithWorkspace(ws, src, -1)
}

// MultiBFSWithWorkspace is MultiBFS on reusable storage. Both returned
// slices alias the workspace and are valid until its next use.
func (g *Graph) MultiBFSWithWorkspace(ws *Workspace, sources []int) (dist []int32, from []int32) {
	n := g.N()
	ws.Reserve(n)
	ws.resetDist()
	dist = ws.dist[:n]
	from = ws.from[:n]
	q := ws.queue[:0]
	for _, s := range sources {
		if s < 0 || s >= n || dist[s] == 0 {
			continue
		}
		dist[s] = 0
		from[s] = int32(s)
		q = append(q, int32(s))
	}
	for head := 0; head < len(q); head++ {
		v := q[head]
		for _, w := range g.Neighbors(int(v)) {
			if dist[w] == Unreachable {
				dist[w] = dist[v] + 1
				from[w] = from[v]
				q = append(q, w)
			}
		}
	}
	// Swap, don't copy: the dirtied entries are exactly the queue contents.
	ws.queue, ws.distDirty = ws.distDirty[:0], q
	return dist, from
}

// --- Balls and layers -----------------------------------------------------

// BallWithWorkspace is Ball on reusable storage; the result aliases the
// workspace.
func (g *Graph) BallWithWorkspace(ws *Workspace, v, k int) []int32 {
	return g.BallAliveWithWorkspace(ws, v, k, nil)
}

// BallAliveWithWorkspace is BallAlive on reusable storage: the output
// buffer doubles as the BFS queue, so a warm call performs zero
// allocations. The result aliases the workspace.
func (g *Graph) BallAliveWithWorkspace(ws *Workspace, v, k int, alive []bool) []int32 {
	if v < 0 || v >= g.N() {
		return nil
	}
	if alive != nil && !alive[v] {
		return nil
	}
	ws.Reserve(g.N())
	seen, epoch := ws.beginStamp()
	out := append(ws.out[:0], int32(v))
	seen[v] = epoch
	start, end := 0, 1
	for d := 0; d < k && start < end; d++ {
		for i := start; i < end; i++ {
			for _, w := range g.Neighbors(int(out[i])) {
				if seen[w] == epoch || (alive != nil && !alive[w]) {
					continue
				}
				seen[w] = epoch
				out = append(out, w)
			}
		}
		start, end = end, len(out)
	}
	ws.out = out
	return out
}

// BallLayersWithWorkspace is BallLayers on reusable storage: the layers
// subslice a single flat buffer and the headers are reused, so a warm call
// performs zero allocations. The result aliases the workspace.
func (g *Graph) BallLayersWithWorkspace(ws *Workspace, v, k int, alive []bool) [][]int32 {
	if v < 0 || v >= g.N() || (alive != nil && !alive[v]) {
		return nil
	}
	ws.Reserve(g.N())
	seen, epoch := ws.beginStamp()
	seen[v] = epoch
	out := append(ws.out[:0], int32(v))
	return g.ballLayersCore(ws, out, k, alive)
}

// BallLayersFromSetWithWorkspace generalizes BallLayersWithWorkspace to a
// multi-source seed set: layer 0 is the deduplicated alive subset of seeds
// (in input order), layer j the alive vertices at distance exactly j from
// it. Returns nil when no seed is alive. The result aliases the workspace.
func (g *Graph) BallLayersFromSetWithWorkspace(ws *Workspace, seeds []int32, radius int, alive []bool) [][]int32 {
	ws.Reserve(g.N())
	seen, epoch := ws.beginStamp()
	out := ws.out[:0]
	for _, s := range seeds {
		if seen[s] == epoch || (alive != nil && !alive[s]) {
			continue
		}
		seen[s] = epoch
		out = append(out, s)
	}
	if len(out) == 0 {
		ws.out = out
		return nil
	}
	return g.ballLayersCore(ws, out, radius, alive)
}

// BallFromSetWithWorkspace returns the flattened layers of
// BallLayersFromSetWithWorkspace; the result aliases the workspace.
func (g *Graph) BallFromSetWithWorkspace(ws *Workspace, seeds []int32, radius int, alive []bool) []int32 {
	layers := g.BallLayersFromSetWithWorkspace(ws, seeds, radius, alive)
	if layers == nil {
		return nil
	}
	// The layers subslice ws.out contiguously: the flat ball is the prefix.
	total := 0
	for _, l := range layers {
		total += len(l)
	}
	return ws.out[:total]
}

// ballLayersCore expands the current epoch's frontier (out, already marked
// as layer 0) level by level, filling ws.layers with subslices of the flat
// buffer.
func (g *Graph) ballLayersCore(ws *Workspace, out []int32, radius int, alive []bool) [][]int32 {
	seen, epoch := ws.stamp, ws.epoch
	layers := append(ws.layers[:0], out[0:len(out):len(out)])
	start, end := 0, len(out)
	for d := 0; d < radius && start < end; d++ {
		for i := start; i < end; i++ {
			for _, w := range g.Neighbors(int(out[i])) {
				if seen[w] == epoch || (alive != nil && !alive[w]) {
					continue
				}
				seen[w] = epoch
				out = append(out, w)
			}
		}
		if len(out) == end {
			break
		}
		layers = append(layers, out[end:len(out):len(out)])
		start, end = end, len(out)
	}
	ws.out = out
	ws.layers = layers
	return layers
}

// --- Components -----------------------------------------------------------

// ComponentsWithWorkspace is Components on reusable storage; the result
// aliases the workspace.
func (g *Graph) ComponentsWithWorkspace(ws *Workspace) (comp []int32, count int) {
	return g.ComponentsAliveWithWorkspace(ws, nil)
}

// ComponentsAliveWithWorkspace is ComponentsAlive on reusable storage; the
// result aliases the workspace.
func (g *Graph) ComponentsAliveWithWorkspace(ws *Workspace, alive []bool) (comp []int32, count int) {
	n := g.N()
	ws.Reserve(n)
	comp = ws.comp[:n]
	for i := range comp {
		comp[i] = -1
	}
	q := ws.queue[:0]
	for s := 0; s < n; s++ {
		if comp[s] != -1 || (alive != nil && !alive[s]) {
			continue
		}
		id := int32(count)
		count++
		comp[s] = id
		q = append(q[:0], int32(s))
		for head := 0; head < len(q); head++ {
			v := q[head]
			for _, w := range g.Neighbors(int(v)) {
				if comp[w] == -1 && (alive == nil || alive[w]) {
					comp[w] = id
					q = append(q, w)
				}
			}
		}
	}
	ws.queue = q
	return comp, count
}

// --- Induced and Power ----------------------------------------------------

// InducedWithWorkspace is Induced on reusable storage: the old→new mapping
// uses the workspace's dense Remap instead of a hash map, and the result
// graph is built directly in CSR form inside workspace-owned buffers. Both
// returned values alias the workspace and are valid until its next
// InducedWithWorkspace call.
func (g *Graph) InducedWithWorkspace(ws *Workspace, vertices []int32) (*Graph, []int32) {
	ws.Reserve(g.N())
	rm := &ws.Remap
	rm.Reset(g.N())
	newToOld := ws.newToOld[:0]
	for _, v := range vertices {
		if rm.Has(v) {
			continue
		}
		rm.Set(v, int32(len(newToOld)))
		newToOld = append(newToOld, v)
	}
	ws.newToOld = newToOld
	n2 := len(newToOld)

	offsets := growInt32(ws.indOffsets, n2+1)
	for i := range offsets {
		offsets[i] = 0
	}
	for newU, oldU := range newToOld {
		deg := int32(0)
		for _, w := range g.Neighbors(int(oldU)) {
			if rm.Has(w) {
				deg++
			}
		}
		offsets[newU+1] = deg
	}
	for i := 0; i < n2; i++ {
		offsets[i+1] += offsets[i]
	}
	adj := growInt32(ws.indAdj, int(offsets[n2]))
	cursor := growInt32(ws.indCursor, n2)
	copy(cursor, offsets[:n2])
	for _, oldU := range newToOld {
		newU, _ := rm.Get(oldU)
		for _, w := range g.Neighbors(int(oldU)) {
			if nw, ok := rm.Get(w); ok {
				adj[cursor[newU]] = nw
				cursor[newU]++
			}
		}
	}
	// New ids follow input order, not old-id order, so each adjacency list
	// must be re-sorted to restore the Graph invariant.
	for u := 0; u < n2; u++ {
		slices.Sort(adj[offsets[u]:offsets[u+1]])
	}
	ws.indOffsets, ws.indAdj, ws.indCursor = offsets, adj, cursor
	ws.indG = Graph{offsets: offsets, adj: adj, m: int(offsets[n2]) / 2}
	return &ws.indG, newToOld
}

// PowerWithWorkspace is Power with the per-vertex ball queries running on
// the workspace. The returned graph is freshly allocated (it does not alias
// the workspace).
func (g *Graph) PowerWithWorkspace(ws *Workspace, k int) *Graph {
	if k <= 1 {
		return g
	}
	b := NewBuilder(g.N())
	for v := 0; v < g.N(); v++ {
		for _, u := range g.BallWithWorkspace(ws, v, k) {
			if int(u) > v {
				b.AddEdge(v, int(u))
			}
		}
	}
	return b.Build()
}

// growInt32 returns buf resized to n, reusing capacity when possible.
func growInt32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// --- Eccentricity and diameters -------------------------------------------

// EccentricityWithWorkspace is Eccentricity on reusable storage.
func (g *Graph) EccentricityWithWorkspace(ws *Workspace, v int) int {
	dist := g.BFSWithWorkspace(ws, v)
	best := 0
	for _, d := range dist {
		if int(d) > best {
			best = int(d)
		}
	}
	return best
}

// DiameterWithWorkspace is Diameter on reusable storage.
func (g *Graph) DiameterWithWorkspace(ws *Workspace) int {
	best := 0
	for s := 0; s < g.N(); s++ {
		dist := g.BFSWithWorkspace(ws, s)
		for _, d := range dist {
			if int(d) > best {
				best = int(d)
			}
		}
	}
	return best
}

// WeakDiameterWithWorkspace is WeakDiameter on reusable storage.
func (g *Graph) WeakDiameterWithWorkspace(ws *Workspace, s []int32) int {
	best := 0
	for _, v := range s {
		dist := g.BFSWithWorkspace(ws, int(v))
		for _, u := range s {
			d := dist[u]
			if d == Unreachable {
				return -1
			}
			if int(d) > best {
				best = int(d)
			}
		}
	}
	return best
}

// StrongDiameterWithWorkspace is StrongDiameter on reusable storage. It
// uses the workspace's Induced buffers and traversal buffers back to back;
// the two sets do not overlap, so a single workspace suffices.
func (g *Graph) StrongDiameterWithWorkspace(ws *Workspace, s []int32) int {
	sub, _ := g.InducedWithWorkspace(ws, s)
	_, count := sub.ComponentsWithWorkspace(ws)
	if count > 1 {
		return -1
	}
	return sub.DiameterWithWorkspace(ws)
}

// --- Dense remap ----------------------------------------------------------

// Remap is a dense, epoch-stamped old→new id map: a drop-in replacement for
// the map[int32]int32 pattern with O(1) reset and no hashing. The zero
// value is ready to use.
type Remap struct {
	ids   []int32
	stamp []int32
	epoch int32
}

// Reset clears the map and sizes it for keys in [0, n).
func (r *Remap) Reset(n int) {
	if n > len(r.ids) {
		r.ids = make([]int32, n)
		r.stamp = make([]int32, n)
		r.epoch = 0
	}
	if r.epoch == math.MaxInt32 {
		for i := range r.stamp {
			r.stamp[i] = 0
		}
		r.epoch = 0
	}
	r.epoch++
}

// Set records old → new.
func (r *Remap) Set(old, new int32) {
	r.ids[old] = new
	r.stamp[old] = r.epoch
}

// Get returns the mapping for old and whether it is present.
func (r *Remap) Get(old int32) (int32, bool) {
	if r.stamp[old] != r.epoch {
		return 0, false
	}
	return r.ids[old], true
}

// Has reports whether old has a mapping.
func (r *Remap) Has(old int32) bool { return r.stamp[old] == r.epoch }
