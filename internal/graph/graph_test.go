package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

func cycle(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

func complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph: n=%d m=%d", g.N(), g.M())
	}
	var zero Graph
	if zero.N() != 0 {
		t.Fatal("zero value should have 0 vertices")
	}
}

func TestBuilderDedupAndLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self loop
	b.AddEdge(0, 5) // out of range
	b.AddEdge(-1, 0)
	g := b.Build()
	if g.M() != 1 {
		t.Fatalf("m = %d, want 1", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge 0-1 missing")
	}
	if g.HasEdge(2, 2) || g.HasEdge(0, 2) {
		t.Fatal("phantom edge")
	}
}

func TestDegreesAndNeighbors(t *testing.T) {
	g := complete(5)
	for v := 0; v < 5; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("K5 degree(%d) = %d", v, g.Degree(v))
		}
	}
	nb := g.Neighbors(2)
	want := []int32{0, 1, 3, 4}
	if len(nb) != len(want) {
		t.Fatalf("neighbors(2) = %v", nb)
	}
	for i := range nb {
		if nb[i] != want[i] {
			t.Fatalf("neighbors(2) = %v, want sorted %v", nb, want)
		}
	}
}

func TestEdgesIteration(t *testing.T) {
	g := cycle(6)
	count := 0
	g.Edges(func(u, v int) {
		if u >= v {
			t.Fatalf("edge order violated: %d >= %d", u, v)
		}
		count++
	})
	if count != 6 {
		t.Fatalf("cycle(6) edge count = %d", count)
	}
	if len(g.EdgeList()) != 6 {
		t.Fatal("EdgeList length mismatch")
	}
}

func TestBFSPath(t *testing.T) {
	g := path(10)
	dist := g.BFS(0)
	for v := 0; v < 10; v++ {
		if int(dist[v]) != v {
			t.Fatalf("dist[%d] = %d", v, dist[v])
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build()
	dist := g.BFS(0)
	if dist[2] != Unreachable || dist[3] != Unreachable {
		t.Fatalf("disconnected vertices reachable: %v", dist)
	}
}

func TestBFSBounded(t *testing.T) {
	g := path(10)
	dist := g.BFSBounded(0, 3)
	if dist[3] != 3 {
		t.Fatalf("dist[3] = %d", dist[3])
	}
	if dist[4] != Unreachable {
		t.Fatalf("radius-3 BFS reached distance 4: %v", dist)
	}
}

func TestMultiBFS(t *testing.T) {
	g := path(10)
	dist, from := g.MultiBFS([]int{0, 9})
	if dist[4] != 4 || dist[5] != 4 {
		t.Fatalf("multi-source distances wrong: %v", dist)
	}
	if from[1] != 0 || from[8] != 9 {
		t.Fatalf("source attribution wrong: %v", from)
	}
	// No sources.
	dist, _ = g.MultiBFS(nil)
	for _, d := range dist {
		if d != Unreachable {
			t.Fatal("no-source BFS reached a vertex")
		}
	}
}

func TestBall(t *testing.T) {
	g := path(10)
	ball := g.Ball(5, 2)
	if len(ball) != 5 { // {3,4,5,6,7}
		t.Fatalf("ball size = %d, want 5", len(ball))
	}
	if ball[0] != 5 {
		t.Fatal("ball must start at center")
	}
}

func TestBallAlive(t *testing.T) {
	g := path(10)
	alive := make([]bool, 10)
	for i := range alive {
		alive[i] = true
	}
	alive[4] = false // cuts off the left side from 5
	ball := g.BallAlive(5, 5, alive)
	for _, v := range ball {
		if v <= 4 {
			t.Fatalf("ball crossed dead vertex: %v", ball)
		}
	}
	if got := g.BallAlive(4, 3, alive); got != nil {
		t.Fatal("ball of a dead center should be empty")
	}
}

func TestBallLayers(t *testing.T) {
	g := cycle(8)
	layers := g.BallLayers(0, 3, nil)
	wantSizes := []int{1, 2, 2, 2}
	if len(layers) != len(wantSizes) {
		t.Fatalf("layers = %d, want %d", len(layers), len(wantSizes))
	}
	for i, l := range layers {
		if len(l) != wantSizes[i] {
			t.Fatalf("layer %d size = %d, want %d", i, len(l), wantSizes[i])
		}
	}
	// Layers should stop early when the graph is exhausted.
	layers = g.BallLayers(0, 100, nil)
	total := 0
	for _, l := range layers {
		total += len(l)
	}
	if total != 8 {
		t.Fatalf("layers cover %d vertices, want 8", total)
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.Build()
	comp, count := g.Components()
	if count != 3 {
		t.Fatalf("components = %d, want 3", count)
	}
	if comp[0] != comp[2] || comp[3] != comp[4] || comp[0] == comp[3] || comp[5] == comp[0] {
		t.Fatalf("component ids wrong: %v", comp)
	}
}

func TestComponentsAlive(t *testing.T) {
	g := path(5)
	alive := []bool{true, true, false, true, true}
	comp, count := g.ComponentsAlive(alive)
	if count != 2 {
		t.Fatalf("alive components = %d, want 2", count)
	}
	if comp[2] != -1 {
		t.Fatal("dead vertex should have component -1")
	}
	if comp[0] != comp[1] || comp[3] != comp[4] || comp[0] == comp[3] {
		t.Fatalf("alive component structure wrong: %v", comp)
	}
}

func TestInduced(t *testing.T) {
	g := complete(5)
	sub, back := g.Induced([]int32{1, 3, 4, 3}) // duplicate collapses
	if sub.N() != 3 {
		t.Fatalf("induced n = %d", sub.N())
	}
	if sub.M() != 3 {
		t.Fatalf("induced m = %d (K3 expected)", sub.M())
	}
	if len(back) != 3 || back[0] != 1 || back[1] != 3 || back[2] != 4 {
		t.Fatalf("mapping wrong: %v", back)
	}
}

func TestPower(t *testing.T) {
	g := path(5)
	g2 := g.Power(2)
	if !g2.HasEdge(0, 2) || !g2.HasEdge(1, 3) {
		t.Fatal("power graph missing distance-2 edges")
	}
	if g2.HasEdge(0, 3) {
		t.Fatal("power graph has distance-3 edge")
	}
	if g.Power(1) != g {
		t.Fatal("Power(1) should alias the graph")
	}
}

func TestSubdivide(t *testing.T) {
	g := cycle(4)
	s := g.Subdivide(2)
	if s.N() != 4+2*4 {
		t.Fatalf("subdivided n = %d", s.N())
	}
	if s.M() != 3*4 {
		t.Fatalf("subdivided m = %d", s.M())
	}
	// Cycle of 4 subdivided by 2 per edge = cycle of 12; girth 12.
	if girth := s.Girth(); girth != 12 {
		t.Fatalf("subdivided girth = %d, want 12", girth)
	}
	// Subdivide(0) is an isomorphic copy.
	c := g.Subdivide(0)
	if c.N() != g.N() || c.M() != g.M() {
		t.Fatal("Subdivide(0) changed the graph")
	}
}

func TestIsBipartite(t *testing.T) {
	if ok, side := path(6).IsBipartite(); !ok || side == nil {
		t.Fatal("path must be bipartite")
	}
	if ok, _ := cycle(6).IsBipartite(); !ok {
		t.Fatal("even cycle must be bipartite")
	}
	if ok, _ := cycle(5).IsBipartite(); ok {
		t.Fatal("odd cycle must not be bipartite")
	}
	ok, side := path(4).IsBipartite()
	if !ok {
		t.Fatal("path not bipartite?")
	}
	for i := 0; i+1 < 4; i++ {
		if side[i] == side[i+1] {
			t.Fatal("2-coloring invalid")
		}
	}
}

func TestGirth(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{path(10), -1},
		{cycle(5), 5},
		{cycle(12), 12},
		{complete(4), 3},
		{complete(2), -1},
	}
	for i, c := range cases {
		if got := c.g.Girth(); got != c.want {
			t.Fatalf("case %d: girth = %d, want %d", i, got, c.want)
		}
	}
}

func TestGirthPetersen(t *testing.T) {
	// The Petersen graph: 3-regular, girth 5.
	b := NewBuilder(10)
	for i := 0; i < 5; i++ {
		b.AddEdge(i, (i+1)%5)     // outer cycle
		b.AddEdge(5+i, 5+(i+2)%5) // inner pentagram
		b.AddEdge(i, 5+i)         // spokes
	}
	g := b.Build()
	if g.M() != 15 {
		t.Fatalf("petersen m = %d", g.M())
	}
	if got := g.Girth(); got != 5 {
		t.Fatalf("petersen girth = %d, want 5", got)
	}
}

func TestDiameterAndEccentricity(t *testing.T) {
	if d := path(10).Diameter(); d != 9 {
		t.Fatalf("path diameter = %d", d)
	}
	if d := cycle(10).Diameter(); d != 5 {
		t.Fatalf("cycle diameter = %d", d)
	}
	if e := path(10).Eccentricity(5); e != 5 {
		t.Fatalf("eccentricity = %d", e)
	}
}

func TestWeakVsStrongDiameter(t *testing.T) {
	g := cycle(10)
	// S = {0, 5}: weak diameter 5 (through the graph), strong diameter -1
	// (induced subgraph is disconnected).
	s := []int32{0, 5}
	if wd := g.WeakDiameter(s); wd != 5 {
		t.Fatalf("weak diameter = %d", wd)
	}
	if sd := g.StrongDiameter(s); sd != -1 {
		t.Fatalf("strong diameter = %d, want -1", sd)
	}
	// A contiguous arc has equal weak/strong diameter only when the arc is
	// at most half the cycle.
	arc := []int32{0, 1, 2, 3}
	if wd := g.WeakDiameter(arc); wd != 3 {
		t.Fatalf("arc weak diameter = %d", wd)
	}
	if sd := g.StrongDiameter(arc); sd != 3 {
		t.Fatalf("arc strong diameter = %d", sd)
	}
}

func TestFromEdges(t *testing.T) {
	g := FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	if g.M() != 2 || !g.HasEdge(1, 2) {
		t.Fatal("FromEdges failed")
	}
}

// Property: for random graphs, dist computed by BFS satisfies the triangle
// inequality through any intermediate vertex.
func TestBFSTriangleProperty(t *testing.T) {
	rng := xrand.New(99)
	f := func(seed uint64) bool {
		r := rng.Split(seed)
		n := 12 + r.Intn(10)
		b := NewBuilder(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Bernoulli(0.2) {
					b.AddEdge(i, j)
				}
			}
		}
		g := b.Build()
		d0 := g.BFS(0)
		for w := 0; w < n; w++ {
			if d0[w] == Unreachable {
				continue
			}
			dw := g.BFS(w)
			for v := 0; v < n; v++ {
				if d0[v] == Unreachable || dw[v] == Unreachable {
					continue
				}
				if d0[v] > d0[w]+dw[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the union of Ball(v, k) over increasing k is monotone and
// eventually equals v's component.
func TestBallMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 10 + r.Intn(15)
		b := NewBuilder(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Bernoulli(0.15) {
					b.AddEdge(i, j)
				}
			}
		}
		g := b.Build()
		prev := 0
		for k := 0; k <= n; k++ {
			size := len(g.Ball(0, k))
			if size < prev {
				return false
			}
			prev = size
		}
		// Final ball = component of 0.
		comp, _ := g.Components()
		compSize := 0
		for _, c := range comp {
			if c == comp[0] {
				compSize++
			}
		}
		return prev == compSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBFSGrid(b *testing.B) {
	side := 100
	bb := NewBuilder(side * side)
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				bb.AddEdge(r*side+c, r*side+c+1)
			}
			if r+1 < side {
				bb.AddEdge(r*side+c, (r+1)*side+c)
			}
		}
	}
	g := bb.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.BFS(0)
	}
}

// gnpView builds a random graph for the View tests.
func gnpView(n int, deg float64, seed uint64) *Graph {
	rng := xrand.New(seed)
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < deg/float64(n) {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build()
}

func TestBallOnViewMatchesBall(t *testing.T) {
	for _, g := range []*Graph{path(30), cycle(25), gnpView(200, 6, 3)} {
		for _, src := range []int{0, g.N() / 2, g.N() - 1} {
			for k := 0; k <= 4; k++ {
				got := BallOnView(g, src, k)
				want := g.Ball(src, k)
				if len(got) != len(want) {
					t.Fatalf("%v src=%d k=%d: size %d != %d", g, src, k, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%v src=%d k=%d: order differs at %d (%d != %d)", g, src, k, i, got[i], want[i])
					}
				}
			}
		}
	}
	if got := BallOnView(path(5), -1, 2); got != nil {
		t.Fatalf("out-of-range source returned %v", got)
	}
	if got := BallOnView(path(5), 5, 2); got != nil {
		t.Fatalf("out-of-range source returned %v", got)
	}
}
