package ilp

import (
	"errors"
	"testing"
)

// misInstance builds the MIS packing ILP for a triangle plus a pendant:
// vertices 0-1-2 form a triangle, 3 hangs off 2. Constraint per edge:
// x_u + x_v <= 1.
func misInstance(t *testing.T) *Instance {
	t.Helper()
	b := NewBuilder(Packing, []int64{1, 1, 1, 1})
	edges := [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}}
	for _, e := range edges {
		b.AddConstraint([]Term{{e[0], 1}, {e[1], 1}}, 1)
	}
	inst, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return inst
}

// vcInstance builds the vertex-cover covering ILP on the same graph.
func vcInstance(t *testing.T) *Instance {
	t.Helper()
	b := NewBuilder(Covering, []int64{1, 1, 1, 1})
	edges := [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}}
	for _, e := range edges {
		b.AddConstraint([]Term{{e[0], 1}, {e[1], 1}}, 1)
	}
	inst, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return inst
}

func TestKindString(t *testing.T) {
	if Packing.String() != "packing" || Covering.String() != "covering" {
		t.Fatal("kind strings")
	}
	if Kind(0).String() == "" {
		t.Fatal("unknown kind should still print")
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := NewBuilder(Kind(99), []int64{1}).Build(); !errors.Is(err, ErrBadInstance) {
		t.Fatal("bad kind accepted")
	}
	if _, err := NewBuilder(Packing, []int64{-1}).Build(); !errors.Is(err, ErrBadInstance) {
		t.Fatal("negative weight accepted")
	}
	b := NewBuilder(Packing, []int64{1, 1})
	b.AddConstraint([]Term{{0, -2}}, 1)
	if _, err := b.Build(); !errors.Is(err, ErrBadInstance) {
		t.Fatal("negative coefficient accepted")
	}
	b = NewBuilder(Packing, []int64{1})
	b.AddConstraint([]Term{{5, 1}}, 1)
	if _, err := b.Build(); !errors.Is(err, ErrBadInstance) {
		t.Fatal("out-of-range variable accepted")
	}
	b = NewBuilder(Covering, []int64{1})
	b.AddConstraint(nil, 2)
	if _, err := b.Build(); !errors.Is(err, ErrBadInstance) {
		t.Fatal("unsatisfiable empty covering constraint accepted")
	}
	// Empty packing constraint with rhs 0 is fine (vacuous).
	b = NewBuilder(Packing, []int64{1})
	b.AddConstraint(nil, 0)
	if _, err := b.Build(); err != nil {
		t.Fatalf("vacuous constraint rejected: %v", err)
	}
}

func TestFeasibilityPacking(t *testing.T) {
	inst := misInstance(t)
	s := inst.NewSolution()
	if ok, _ := inst.Feasible(s); !ok {
		t.Fatal("all-zero must be feasible for packing")
	}
	s[0], s[3] = true, true // independent set {0, 3}
	if ok, j := inst.Feasible(s); !ok {
		t.Fatalf("independent set rejected at constraint %d", j)
	}
	if inst.Value(s) != 2 {
		t.Fatalf("value = %d", inst.Value(s))
	}
	s[1] = true // 0 and 1 adjacent
	if ok, _ := inst.Feasible(s); ok {
		t.Fatal("non-independent set accepted")
	}
}

func TestFeasibilityCovering(t *testing.T) {
	inst := vcInstance(t)
	s := inst.NewSolution()
	if ok, _ := inst.Feasible(s); ok {
		t.Fatal("all-zero must violate covering")
	}
	s[0], s[2] = true, true // {0, 2} is a vertex cover
	if ok, j := inst.Feasible(s); !ok {
		t.Fatalf("vertex cover rejected at %d", j)
	}
	s[0] = false // {2} misses edge 0-1
	if ok, _ := inst.Feasible(s); ok {
		t.Fatal("non-cover accepted")
	}
}

func TestFeasibleOn(t *testing.T) {
	inst := vcInstance(t)
	s := inst.NewSolution()
	s[2] = true
	// Constraint 3 is edge {2,3}, satisfied; constraint 0 is {0,1}, not.
	if ok, _ := inst.FeasibleOn(s, []int32{3}); !ok {
		t.Fatal("satisfied subset reported infeasible")
	}
	if ok, j := inst.FeasibleOn(s, []int32{0}); ok || j != 0 {
		t.Fatal("violated subset reported feasible")
	}
}

func TestWeights(t *testing.T) {
	b := NewBuilder(Packing, []int64{3, 5, 7})
	inst, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if inst.TotalWeight() != 15 {
		t.Fatalf("total weight = %d", inst.TotalWeight())
	}
	s := inst.NewSolution()
	s[1] = true
	if inst.Value(s) != 5 {
		t.Fatalf("value = %d", inst.Value(s))
	}
	if inst.WeightOf(s, []int32{0, 1}) != 5 {
		t.Fatal("WeightOf restricted")
	}
	if inst.WeightOf(s, []int32{0, 2}) != 0 {
		t.Fatal("WeightOf should ignore unset vars")
	}
}

func TestHypergraphOfInstance(t *testing.T) {
	inst := misInstance(t)
	h := inst.Hypergraph()
	if h.N() != 4 || h.M() != 4 {
		t.Fatalf("hypergraph n=%d m=%d", h.N(), h.M())
	}
	// Primal graph should match the original triangle+pendant.
	p := h.Primal()
	if p.M() != 4 {
		t.Fatalf("primal m = %d", p.M())
	}
	if !p.HasEdge(2, 3) || p.HasEdge(0, 3) {
		t.Fatal("primal structure wrong")
	}
}

func TestConstraintsOf(t *testing.T) {
	inst := misInstance(t)
	if got := inst.ConstraintsOf(2); len(got) != 3 {
		t.Fatalf("vertex 2 constraints = %v", got)
	}
	if got := inst.ConstraintsOf(3); len(got) != 1 {
		t.Fatalf("vertex 3 constraints = %v", got)
	}
}

func TestLocalConstraintsPacking(t *testing.T) {
	inst := misInstance(t)
	// Restrict to {2, 3}: packing keeps every constraint touching the set —
	// all four constraints touch vertex 2 or 3 here except {0,1}.
	in := []bool{false, false, true, true}
	local := inst.LocalConstraints(in)
	if len(local) != 3 {
		t.Fatalf("packing local constraints = %v", local)
	}
}

func TestLocalConstraintsCovering(t *testing.T) {
	inst := vcInstance(t)
	// Restrict to {2, 3}: covering keeps only fully-contained constraints,
	// i.e. the single edge {2,3}.
	in := []bool{false, false, true, true}
	local := inst.LocalConstraints(in)
	if len(local) != 1 || local[0] != 3 {
		t.Fatalf("covering local constraints = %v", local)
	}
}

func TestObservation21(t *testing.T) {
	// Observation 2.1: for packing, a local solution on S extended by zeros
	// is globally feasible.
	inst := misInstance(t)
	in := []bool{false, false, true, true}
	s := inst.NewSolution()
	s[3] = true // local optimum on {2,3} avoiding the shared vertex 2
	local := inst.LocalConstraints(in)
	if ok, _ := inst.FeasibleOn(s, local); !ok {
		t.Fatal("local solution infeasible on local constraints")
	}
	if ok, _ := inst.Feasible(s); !ok {
		t.Fatal("Observation 2.1 violated: zero extension infeasible")
	}
}

func TestSolutionHelpers(t *testing.T) {
	inst := misInstance(t)
	s := inst.NewSolution()
	s[0] = true
	c := s.Clone()
	c[1] = true
	if s[1] {
		t.Fatal("clone aliases original")
	}
	if c.CountOnes() != 2 || s.CountOnes() != 1 {
		t.Fatal("CountOnes wrong")
	}
}

func TestDecomposeBounded(t *testing.T) {
	// One variable x in [0,5] with weight 2, constraint x <= 4 (packing:
	// maximize 2x). Bits: 3 (values up to 7). Optimal 0/1 solution should
	// encode x = 4.
	vars := []BoundedIntVar{{Weight: 2, Max: 5}}
	cons := []BoundedConstraint{{Terms: []BoundedTerm{{0, 1}}, B: 4}}
	inst, origin, err := DecomposeBounded(Packing, vars, cons)
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumVars() != 3 {
		t.Fatalf("bit count = %d, want 3", inst.NumVars())
	}
	if inst.Weight(0) != 2 || inst.Weight(1) != 4 || inst.Weight(2) != 8 {
		t.Fatalf("bit weights = %v %v %v", inst.Weight(0), inst.Weight(1), inst.Weight(2))
	}
	// Solution with bit 2 set encodes x = 4; feasible since 4 <= 4.
	s := inst.NewSolution()
	s[2] = true
	if ok, _ := inst.Feasible(s); !ok {
		t.Fatal("x=4 should be feasible")
	}
	// Adding bit 0 encodes x = 5 > 4: infeasible.
	s[0] = true
	if ok, _ := inst.Feasible(s); ok {
		t.Fatal("x=5 should violate")
	}
	s[0] = false
	vals := RecomposeBounded(1, origin, s)
	if vals[0] != 4 {
		t.Fatalf("recomposed x = %d", vals[0])
	}
}

func TestDecomposeBoundedZeroMax(t *testing.T) {
	vars := []BoundedIntVar{{Weight: 1, Max: 0}, {Weight: 1, Max: 1}}
	inst, origin, err := DecomposeBounded(Covering, vars, []BoundedConstraint{
		{Terms: []BoundedTerm{{1, 1}}, B: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumVars() != 1 {
		t.Fatalf("vars = %d, want 1 (Max=0 contributes no bits)", inst.NumVars())
	}
	s := inst.NewSolution()
	s[0] = true
	vals := RecomposeBounded(2, origin, s)
	if vals[0] != 0 || vals[1] != 1 {
		t.Fatalf("recomposed = %v", vals)
	}
}

func TestDecomposeBoundedErrors(t *testing.T) {
	if _, _, err := DecomposeBounded(Packing, []BoundedIntVar{{Weight: -1, Max: 1}}, nil); !errors.Is(err, ErrBadInstance) {
		t.Fatal("negative weight accepted")
	}
	if _, _, err := DecomposeBounded(Packing, []BoundedIntVar{{Weight: 1, Max: 1}},
		[]BoundedConstraint{{Terms: []BoundedTerm{{7, 1}}, B: 1}}); !errors.Is(err, ErrBadInstance) {
		t.Fatal("bad constraint variable accepted")
	}
}
