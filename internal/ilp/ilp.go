// Package ilp represents packing and covering integer linear programs in the
// sparse form used throughout the paper (Definitions 1.1 and 1.2):
//
//	packing:  max  w·x  subject to  A x <= b,  x in {0,1}^n
//	covering: min  w·x  subject to  A x >= b,  x in {0,1}^n
//
// with A >= 0, b >= 0, w >= 0 integral. The package provides the instance
// representation, feasibility and objective evaluation, the associated
// hypergraph of Definition 1.3 (variables = vertices, constraints =
// hyperedges on the variables with nonzero coefficients), local restriction
// semantics (Observations 2.1 and 2.2), and the bit-decomposition reduction
// from bounded-integer variables to 0/1 variables described in Section 1.
package ilp

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"repro/internal/hypergraph"
)

// Kind distinguishes packing from covering instances.
type Kind int

const (
	// Packing is maximize w.x subject to Ax <= b.
	Packing Kind = iota + 1
	// Covering is minimize w.x subject to Ax >= b.
	Covering
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Packing:
		return "packing"
	case Covering:
		return "covering"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Term is one nonzero coefficient a_{j,i} of constraint j on variable i.
type Term struct {
	Var   int
	Coeff float64
}

// Constraint is one row of A together with its right-hand side.
type Constraint struct {
	Terms []Term
	B     float64
}

// Instance is an immutable packing or covering ILP. Build with NewBuilder.
type Instance struct {
	kind        Kind
	weights     []int64
	constraints []Constraint
	varCons     [][]int32 // constraint ids per variable
	hyper       *hypergraph.H
}

// ErrBadInstance is returned for structurally invalid instances (negative
// data, empty unsatisfiable covering rows, ...).
var ErrBadInstance = errors.New("ilp: invalid instance")

// Builder accumulates an instance.
type Builder struct {
	kind    Kind
	weights []int64
	cons    []Constraint
	err     error
}

// NewBuilder returns a builder for an instance of the given kind with the
// given variable weights (one per variable; all must be >= 0).
func NewBuilder(kind Kind, weights []int64) *Builder {
	b := &Builder{kind: kind, weights: append([]int64(nil), weights...)}
	if kind != Packing && kind != Covering {
		b.err = fmt.Errorf("%w: unknown kind %d", ErrBadInstance, kind)
	}
	for i, w := range weights {
		if w < 0 {
			b.err = fmt.Errorf("%w: negative weight on variable %d", ErrBadInstance, i)
			break
		}
	}
	return b
}

// AddConstraint records a row. Nonpositive coefficients and out-of-range
// variables invalidate the builder (the paper's formulation requires
// A >= 0; zero coefficients should simply be omitted).
func (b *Builder) AddConstraint(terms []Term, rhs float64) *Builder {
	if b.err != nil {
		return b
	}
	if rhs < 0 || math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		b.err = fmt.Errorf("%w: bad rhs %v", ErrBadInstance, rhs)
		return b
	}
	row := Constraint{Terms: make([]Term, 0, len(terms)), B: rhs}
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(b.weights) {
			b.err = fmt.Errorf("%w: variable %d out of range", ErrBadInstance, t.Var)
			return b
		}
		if t.Coeff <= 0 || math.IsNaN(t.Coeff) || math.IsInf(t.Coeff, 0) {
			b.err = fmt.Errorf("%w: nonpositive coefficient %v on variable %d", ErrBadInstance, t.Coeff, t.Var)
			return b
		}
		row.Terms = append(row.Terms, t)
	}
	slices.SortFunc(row.Terms, func(x, y Term) int { return x.Var - y.Var })
	b.cons = append(b.cons, row)
	return b
}

// Build finalizes the instance.
func (b *Builder) Build() (*Instance, error) {
	if b.err != nil {
		return nil, b.err
	}
	n := len(b.weights)
	inst := &Instance{
		kind:        b.kind,
		weights:     b.weights,
		constraints: b.cons,
		varCons:     make([][]int32, n),
	}
	hb := hypergraph.NewBuilder(n)
	for ci, c := range b.cons {
		if b.kind == Covering && len(c.Terms) == 0 && c.B > 0 {
			return nil, fmt.Errorf("%w: covering constraint %d has no variables but rhs %v", ErrBadInstance, ci, c.B)
		}
		vars := make([]int, len(c.Terms))
		for i, t := range c.Terms {
			vars[i] = t.Var
			inst.varCons[t.Var] = append(inst.varCons[t.Var], int32(ci))
		}
		hb.AddEdge(vars...)
	}
	inst.hyper = hb.Build()
	return inst, nil
}

// Kind returns whether this is a packing or covering instance.
func (inst *Instance) Kind() Kind { return inst.kind }

// NumVars returns the number of variables.
func (inst *Instance) NumVars() int { return len(inst.weights) }

// NumConstraints returns the number of constraints.
func (inst *Instance) NumConstraints() int { return len(inst.constraints) }

// Weight returns the objective weight of variable v.
func (inst *Instance) Weight(v int) int64 { return inst.weights[v] }

// TotalWeight returns the sum of all variable weights (the paper assumes
// this is polynomial in n).
func (inst *Instance) TotalWeight() int64 {
	var s int64
	for _, w := range inst.weights {
		s += w
	}
	return s
}

// Constraint returns constraint j. The struct aliases internal storage.
func (inst *Instance) Constraint(j int) Constraint { return inst.constraints[j] }

// ConstraintsOf returns the ids of constraints containing variable v.
func (inst *Instance) ConstraintsOf(v int) []int32 { return inst.varCons[v] }

// Hypergraph returns the Definition 1.3 hypergraph of the instance.
func (inst *Instance) Hypergraph() *hypergraph.H { return inst.hyper }

// Solution is a 0/1 assignment to the variables.
type Solution []bool

// NewSolution returns the all-zero solution for the instance.
func (inst *Instance) NewSolution() Solution { return make(Solution, inst.NumVars()) }

// Clone returns a copy of the solution.
func (s Solution) Clone() Solution { return append(Solution(nil), s...) }

// CountOnes returns the number of variables set to 1.
func (s Solution) CountOnes() int {
	c := 0
	for _, v := range s {
		if v {
			c++
		}
	}
	return c
}

// Value returns the objective value w·x of the solution.
func (inst *Instance) Value(s Solution) int64 {
	var total int64
	for v, set := range s {
		if set {
			total += inst.weights[v]
		}
	}
	return total
}

// WeightOf returns W(s, S) = sum over v in subset of w_v * s(v), the
// paper's restricted-weight notation.
func (inst *Instance) WeightOf(s Solution, subset []int32) int64 {
	var total int64
	for _, v := range subset {
		if s[v] {
			total += inst.weights[v]
		}
	}
	return total
}

// lhs returns the left-hand side of constraint j under s.
func (inst *Instance) lhs(j int, s Solution) float64 {
	sum := 0.0
	for _, t := range inst.constraints[j].Terms {
		if s[t.Var] {
			sum += t.Coeff
		}
	}
	return sum
}

// Feasible reports whether s satisfies every constraint, returning the first
// violated constraint id otherwise (for diagnostics).
func (inst *Instance) Feasible(s Solution) (bool, int) {
	const tol = 1e-9
	for j := range inst.constraints {
		l := inst.lhs(j, s)
		switch inst.kind {
		case Packing:
			if l > inst.constraints[j].B+tol {
				return false, j
			}
		case Covering:
			if l < inst.constraints[j].B-tol {
				return false, j
			}
		}
	}
	return true, -1
}

// FeasibleOn checks only the constraints whose ids are listed.
func (inst *Instance) FeasibleOn(s Solution, constraintIDs []int32) (bool, int) {
	const tol = 1e-9
	for _, j := range constraintIDs {
		l := inst.lhs(int(j), s)
		switch inst.kind {
		case Packing:
			if l > inst.constraints[j].B+tol {
				return false, int(j)
			}
		case Covering:
			if l < inst.constraints[j].B-tol {
				return false, int(j)
			}
		}
	}
	return true, -1
}

// LocalConstraints returns, per the paper's local-restriction semantics, the
// constraint ids relevant to solving the instance restricted to the vertex
// set marked inSet:
//
//   - packing (Observation 2.1): every constraint touching the set — the
//     local solution sets all outside variables to zero, and must not violate
//     any constraint, including partially-contained ones;
//   - covering (Observation 2.2): only constraints entirely inside the set —
//     inter-cluster constraints are discarded and handled elsewhere.
func (inst *Instance) LocalConstraints(inSet []bool) []int32 {
	var out []int32
	for j, c := range inst.constraints {
		switch inst.kind {
		case Packing:
			touch := false
			for _, t := range c.Terms {
				if inSet[t.Var] {
					touch = true
					break
				}
			}
			if touch {
				out = append(out, int32(j))
			}
		case Covering:
			inside := len(c.Terms) > 0
			for _, t := range c.Terms {
				if !inSet[t.Var] {
					inside = false
					break
				}
			}
			if inside {
				out = append(out, int32(j))
			}
		}
	}
	return out
}

// BoundedIntVar describes one bounded-integer variable x in [0, Max] with
// objective weight Weight, for DecomposeBounded.
type BoundedIntVar struct {
	Weight int64
	Max    int64
}

// BoundedTerm is a coefficient on a bounded-integer variable.
type BoundedTerm struct {
	Var   int
	Coeff float64
}

// BoundedConstraint is a constraint over bounded-integer variables.
type BoundedConstraint struct {
	Terms []BoundedTerm
	B     float64
}

// DecomposeBounded performs the bit-decomposition reduction from Section 1:
// each integer variable x_i in [0, s] becomes ceil(log2(s+1)) binary
// variables x_i^(k) representing its bits, with weight w_i*2^k and
// coefficient a_{j,i}*2^k. It returns the 0/1 instance and a mapping
// bit -> (original variable, bit position) so solutions can be recomposed.
func DecomposeBounded(kind Kind, vars []BoundedIntVar, cons []BoundedConstraint) (*Instance, [][2]int, error) {
	var weights []int64
	var origin [][2]int
	bitStart := make([]int, len(vars))
	for i, v := range vars {
		if v.Max < 0 || v.Weight < 0 {
			return nil, nil, fmt.Errorf("%w: variable %d has negative bound or weight", ErrBadInstance, i)
		}
		bitStart[i] = len(weights)
		// bits = smallest b with 2^b > Max, i.e. enough bits to represent
		// Max; a variable with Max == 0 contributes no bits. As in the
		// paper's reduction, the binary encoding can represent values up to
		// 2^bits - 1 >= Max; for packing instances larger values are already
		// cut off by Ax <= b, and callers with exact upper bounds should add
		// them as explicit constraints.
		bits := 0
		if v.Max > 0 {
			bits = 1
			for (int64(1) << bits) <= v.Max {
				bits++
			}
		}
		for k := 0; k < bits; k++ {
			weights = append(weights, v.Weight<<k)
			origin = append(origin, [2]int{i, k})
		}
	}
	b := NewBuilder(kind, weights)
	for _, c := range cons {
		var terms []Term
		for _, t := range c.Terms {
			if t.Var < 0 || t.Var >= len(vars) {
				return nil, nil, fmt.Errorf("%w: constraint references variable %d", ErrBadInstance, t.Var)
			}
			start := bitStart[t.Var]
			end := len(weights)
			if t.Var+1 < len(vars) {
				end = bitStart[t.Var+1]
			}
			for k := 0; start+k < end; k++ {
				terms = append(terms, Term{Var: start + k, Coeff: t.Coeff * float64(int64(1)<<k)})
			}
		}
		b.AddConstraint(terms, c.B)
	}
	inst, err := b.Build()
	return inst, origin, err
}

// RecomposeBounded converts a 0/1 solution of a DecomposeBounded instance
// back to integer values of the original variables.
func RecomposeBounded(numVars int, origin [][2]int, s Solution) []int64 {
	out := make([]int64, numVars)
	for bit, set := range s {
		if set {
			ov := origin[bit]
			out[ov[0]] += int64(1) << ov[1]
		}
	}
	return out
}
