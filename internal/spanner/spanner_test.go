package spanner

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/xrand"
)

func TestK1ReturnsGraph(t *testing.T) {
	g := gen.Cycle(20)
	r := BaswanaSen(g, 1, 1)
	if len(r.Edges) != g.M() || r.Stretch != 1 {
		t.Fatalf("k=1: edges=%d stretch=%d", len(r.Edges), r.Stretch)
	}
}

func TestStretchOnRandomGraphs(t *testing.T) {
	rng := xrand.New(2)
	for trial := 0; trial < 10; trial++ {
		n := 60 + rng.Intn(60)
		g := gen.GNP(n, 6.0/float64(n), rng)
		for _, k := range []int{2, 3} {
			r := BaswanaSen(g, k, uint64(trial)*31+uint64(k))
			if r.Stretch != 2*k-1 {
				t.Fatalf("stretch = %d", r.Stretch)
			}
			if ok, u, v := VerifyStretch(g, r); !ok {
				t.Fatalf("trial %d k=%d: stretch violated at %d-%d", trial, k, u, v)
			}
		}
	}
}

func TestStretchOnDenseGraph(t *testing.T) {
	g := gen.Complete(60)
	r := BaswanaSen(g, 2, 7)
	if ok, u, v := VerifyStretch(g, r); !ok {
		t.Fatalf("stretch violated at %d-%d", u, v)
	}
	// A 3-spanner of K60 must be far sparser than the 1770 edges.
	if len(r.Edges) >= g.M() {
		t.Fatalf("spanner did not sparsify: %d of %d", len(r.Edges), g.M())
	}
}

func TestSizeNearExpectationBound(t *testing.T) {
	// Mean realized size should be within a small constant of k*n^{1+1/k}.
	rng := xrand.New(3)
	g := gen.GNP(300, 0.15, rng) // dense enough that sparsification matters
	k := 2
	sizes := SizeTail(g, k, 20, 5)
	var sum int
	for _, s := range sizes {
		sum += s
	}
	mean := float64(sum) / float64(len(sizes))
	bound := ExpectationBound(g.N(), k)
	if mean > 3*bound {
		t.Fatalf("mean size %.0f >> expectation bound %.0f", mean, bound)
	}
	// Sorted output.
	for i := 1; i < len(sizes); i++ {
		if sizes[i] < sizes[i-1] {
			t.Fatal("SizeTail not sorted")
		}
	}
}

func TestSpannerConnectivityPreserved(t *testing.T) {
	// A spanner preserves connectivity (stretch is finite on every edge).
	rng := xrand.New(4)
	g := gen.GNP(120, 0.08, rng)
	r := BaswanaSen(g, 3, 9)
	s := r.Graph(g.N())
	compG, nG := g.Components()
	compS, nS := s.Components()
	if nG != nS {
		t.Fatalf("components: graph %d, spanner %d", nG, nS)
	}
	// Same partition (up to relabeling): vertices in the same g-component
	// must share an s-component.
	repr := map[int32]int32{}
	for v := range compG {
		if r, ok := repr[compG[v]]; ok {
			if compS[v] != r {
				t.Fatal("spanner split a component")
			}
		} else {
			repr[compG[v]] = compS[v]
		}
	}
}

func TestSpannerOnTreeIsTree(t *testing.T) {
	// A tree has no redundant edges: any spanner with finite stretch must
	// keep all n-1 edges.
	g := gen.RandomTree(80, xrand.New(5))
	r := BaswanaSen(g, 3, 11)
	if len(r.Edges) != g.M() {
		t.Fatalf("tree spanner has %d edges, want %d", len(r.Edges), g.M())
	}
}

func TestVerifyStretchCatchesViolations(t *testing.T) {
	// Hand-build a bogus "spanner" missing a bridge: verification must fail.
	g := gen.Path(5)
	bogus := &Result{Edges: [][2]int{{0, 1}, {1, 2}, {3, 4}}, Stretch: 3}
	ok, u, v := VerifyStretch(g, bogus)
	if ok {
		t.Fatal("missing bridge not detected")
	}
	if u != 2 || v != 3 {
		t.Fatalf("wrong violation reported: %d-%d", u, v)
	}
	_ = graph.Unreachable
}

func BenchmarkBaswanaSenGNP(b *testing.B) {
	rng := xrand.New(1)
	g := gen.GNP(500, 0.05, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BaswanaSen(g, 3, uint64(i))
	}
}
