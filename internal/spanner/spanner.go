// Package spanner implements the (2k−1)-spanner application discussed in
// the paper's introduction and conclusion: Elkin–Neiman (2018) build a
// spanner of stretch 2k−1 and *expected* size O(n^{1+1/k}) from the random
// shift machinery, and the paper (following FGdV22) poses as an open
// question whether that size bound can be made to hold with high
// probability — the very expectation-vs-whp gap Theorem 1.1 closes for
// low-diameter decompositions.
//
// We implement the classical Baswana–Sen clustering construction, which
// has the same guarantee profile (stretch 2k−1 always; size O(k·n^{1+1/k})
// in expectation, achieved by k−1 rounds of cluster sampling at rate
// n^{−1/k}), and expose the realized-size distribution so the open
// question's object of study — the upper tail of the spanner size — can be
// measured (see SizeTail and the tests).
package spanner

import (
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// Result is a constructed spanner.
type Result struct {
	// Edges are the spanner edges (u < v).
	Edges [][2]int
	// Stretch is the guaranteed multiplicative stretch 2k-1.
	Stretch int
	// Rounds is the LOCAL round complexity charged (O(k): each of the k
	// phases needs O(1) rounds of neighbor communication).
	Rounds int
}

// Graph materializes the spanner as a graph on the same vertex set.
func (r *Result) Graph(n int) *graph.Graph {
	return graph.FromEdges(n, r.Edges)
}

// BaswanaSen builds a (2k-1)-spanner of g. k >= 1; k = 1 returns the graph
// itself (stretch 1).
func BaswanaSen(g *graph.Graph, k int, seed uint64) *Result {
	n := g.N()
	if k <= 1 {
		return &Result{Edges: g.EdgeList(), Stretch: 1, Rounds: 0}
	}
	rng := xrand.New(seed)
	p := math.Pow(float64(n), -1.0/float64(k))

	// cluster[v] = id of v's cluster (its center), or -1 once v leaves the
	// clustered part.
	cluster := make([]int32, n)
	for v := range cluster {
		cluster[v] = int32(v)
	}
	type edgeKey struct{ u, v int32 }
	spanner := make(map[edgeKey]bool)
	addEdge := func(u, v int32) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		spanner[edgeKey{u, v}] = true
	}

	// Phases 1..k-1: sample cluster centers, connect unsampled vertices.
	for phase := 1; phase < k; phase++ {
		// Sample the surviving clusters.
		sampled := map[int32]bool{}
		seen := map[int32]bool{}
		for v := 0; v < n; v++ {
			c := cluster[v]
			if c < 0 || seen[c] {
				continue
			}
			seen[c] = true
			if rng.Bernoulli(p) {
				sampled[c] = true
			}
		}
		newCluster := make([]int32, n)
		for v := 0; v < n; v++ {
			newCluster[v] = -1
			c := cluster[v]
			if c < 0 {
				continue
			}
			if sampled[c] {
				newCluster[v] = c // stays in its (sampled) cluster
				continue
			}
			// v's cluster died. If v neighbors a sampled cluster, join the
			// first one through one edge; otherwise add one edge to EVERY
			// neighboring cluster and leave the clustered part.
			var joinC int32 = -1
			var joinW int32 = -1
			perCluster := map[int32]int32{}
			for _, w := range g.Neighbors(v) {
				cw := cluster[w]
				if cw < 0 {
					continue
				}
				if _, ok := perCluster[cw]; !ok {
					perCluster[cw] = w
				}
				if sampled[cw] && joinC == -1 {
					joinC = cw
					joinW = w
				}
			}
			if joinC >= 0 {
				addEdge(int32(v), joinW)
				newCluster[v] = joinC
			} else {
				for _, w := range perCluster {
					addEdge(int32(v), w)
				}
			}
		}
		cluster = newCluster
	}

	// Final phase: every vertex still clustered adds one edge to each
	// neighboring cluster.
	for v := 0; v < n; v++ {
		perCluster := map[int32]int32{}
		for _, w := range g.Neighbors(v) {
			cw := cluster[w]
			if cw < 0 {
				continue
			}
			if _, ok := perCluster[cw]; !ok {
				perCluster[cw] = w
			}
		}
		for _, w := range perCluster {
			addEdge(int32(v), w)
		}
	}

	edges := make([][2]int, 0, len(spanner))
	for e := range spanner {
		edges = append(edges, [2]int{int(e.u), int(e.v)})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	return &Result{Edges: edges, Stretch: 2*k - 1, Rounds: 3 * k}
}

// VerifyStretch checks dist_S(u, v) <= stretch * dist_G(u, v) for every
// edge of g (which suffices: stretch on edges implies stretch on paths).
// Returns the first violated edge if any.
func VerifyStretch(g *graph.Graph, r *Result) (ok bool, badU, badV int) {
	s := r.Graph(g.N())
	ok = true
	badU, badV = -1, -1
	// BFS in the spanner from each endpoint of a violating candidate would
	// be O(n·m); instead BFS once per vertex bounded by stretch.
	for u := 0; u < g.N() && ok; u++ {
		dist := s.BFSBounded(u, r.Stretch)
		for _, w := range g.Neighbors(u) {
			if int(w) < u {
				continue
			}
			if dist[w] == graph.Unreachable || int(dist[w]) > r.Stretch {
				ok = false
				badU, badV = u, int(w)
				break
			}
		}
	}
	return ok, badU, badV
}

// SizeTail runs the construction over many seeds and reports the realized
// sizes — the object of the FGdV22/Section 6 open question (is the
// O(n^{1+1/k}) size bound achievable with high probability, not just in
// expectation?). The caller compares the tail against the expectation
// bound k * n^{1+1/k}.
func SizeTail(g *graph.Graph, k, trials int, seed uint64) []int {
	sizes := make([]int, 0, trials)
	for trial := 0; trial < trials; trial++ {
		r := BaswanaSen(g, k, seed+uint64(trial)*0x51a)
		sizes = append(sizes, len(r.Edges))
	}
	sort.Ints(sizes)
	return sizes
}

// ExpectationBound returns the Baswana–Sen expected size bound k·n^{1+1/k}.
func ExpectationBound(n, k int) float64 {
	return float64(k) * math.Pow(float64(n), 1+1.0/float64(k))
}
