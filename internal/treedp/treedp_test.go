package treedp

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/xrand"
)

// Brute-force reference solvers on tiny graphs.

func bruteMIS(g *graph.Graph, w []int64) int64 {
	n := g.N()
	var best int64
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		g.Edges(func(u, v int) {
			if mask&(1<<u) != 0 && mask&(1<<v) != 0 {
				ok = false
			}
		})
		if !ok {
			continue
		}
		var val int64
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				val += w[v]
			}
		}
		if val > best {
			best = val
		}
	}
	return best
}

func bruteMVC(g *graph.Graph, w []int64) int64 {
	n := g.N()
	best := int64(1) << 60
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		g.Edges(func(u, v int) {
			if mask&(1<<u) == 0 && mask&(1<<v) == 0 {
				ok = false
			}
		})
		if !ok {
			continue
		}
		var val int64
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				val += w[v]
			}
		}
		if val < best {
			best = val
		}
	}
	return best
}

func bruteMDS(g *graph.Graph, w []int64) int64 {
	n := g.N()
	best := int64(1) << 60
	for mask := 0; mask < 1<<n; mask++ {
		dominated := 0
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				dominated |= 1 << v
				for _, u := range g.Neighbors(v) {
					dominated |= 1 << u
				}
			}
		}
		if dominated != (1<<n)-1 {
			continue
		}
		var val int64
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				val += w[v]
			}
		}
		if val < best {
			best = val
		}
	}
	return best
}

func randomWeights(n int, rng *xrand.RNG) []int64 {
	w := make([]int64, n)
	for i := range w {
		w[i] = 1 + int64(rng.Intn(5))
	}
	return w
}

func verifyIS(t *testing.T, g *graph.Graph, set []int32) {
	t.Helper()
	in := make([]bool, g.N())
	for _, v := range set {
		in[v] = true
	}
	g.Edges(func(u, v int) {
		if in[u] && in[v] {
			t.Fatalf("not independent: edge %d-%d", u, v)
		}
	})
}

func verifyVC(t *testing.T, g *graph.Graph, cover []int32) {
	t.Helper()
	in := make([]bool, g.N())
	for _, v := range cover {
		in[v] = true
	}
	g.Edges(func(u, v int) {
		if !in[u] && !in[v] {
			t.Fatalf("edge %d-%d uncovered", u, v)
		}
	})
}

func verifyDS(t *testing.T, g *graph.Graph, set []int32) {
	t.Helper()
	dom := make([]bool, g.N())
	for _, v := range set {
		dom[v] = true
		for _, u := range g.Neighbors(int(v)) {
			dom[u] = true
		}
	}
	for v, d := range dom {
		if !d {
			t.Fatalf("vertex %d undominated", v)
		}
	}
}

func setWeight(set []int32, w []int64) int64 {
	var s int64
	for _, v := range set {
		s += w[v]
	}
	return s
}

func TestPathUnit(t *testing.T) {
	g := gen.Path(7)
	set, val, err := MaxIndependentSet(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if val != 4 {
		t.Fatalf("P7 MIS = %d, want 4", val)
	}
	verifyIS(t, g, set)

	cover, cval, err := MinVertexCover(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cval != 3 {
		t.Fatalf("P7 MVC = %d, want 3", cval)
	}
	verifyVC(t, g, cover)

	ds, dval, err := MinDominatingSet(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dval != 3 { // ceil(7/3)
		t.Fatalf("P7 MDS = %d, want 3", dval)
	}
	verifyDS(t, g, ds)
}

func TestStar(t *testing.T) {
	g := gen.Star(10)
	_, val, _ := MaxIndependentSet(g, nil)
	if val != 9 {
		t.Fatalf("star MIS = %d", val)
	}
	_, cval, _ := MinVertexCover(g, nil)
	if cval != 1 {
		t.Fatalf("star MVC = %d", cval)
	}
	_, dval, _ := MinDominatingSet(g, nil)
	if dval != 1 {
		t.Fatalf("star MDS = %d", dval)
	}
}

func TestSingletonAndEmpty(t *testing.T) {
	g := graph.NewBuilder(1).Build()
	set, val, err := MaxIndependentSet(g, nil)
	if err != nil || val != 1 || len(set) != 1 {
		t.Fatalf("singleton MIS: %v %d", err, val)
	}
	_, dval, err := MinDominatingSet(g, nil)
	if err != nil || dval != 1 {
		t.Fatalf("singleton MDS = %d", dval)
	}
	empty := graph.NewBuilder(0).Build()
	_, val, err = MaxIndependentSet(empty, nil)
	if err != nil || val != 0 {
		t.Fatal("empty graph MIS")
	}
}

func TestForest(t *testing.T) {
	// Two disjoint paths.
	b := graph.NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	g := b.Build()
	_, val, err := MaxIndependentSet(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// P3 gives 2, isolated vertex 3 gives 1, P3 gives 2: total 5.
	if val != 5 {
		t.Fatalf("forest MIS = %d, want 5", val)
	}
	_, dval, _ := MinDominatingSet(g, nil)
	if dval != 3 { // one per path + isolated vertex
		t.Fatalf("forest MDS = %d, want 3", dval)
	}
}

func TestCycleRejected(t *testing.T) {
	g := gen.Cycle(5)
	if _, _, err := MaxIndependentSet(g, nil); !errors.Is(err, ErrNotForest) {
		t.Fatal("cycle accepted by MIS")
	}
	if _, _, err := MinVertexCover(g, nil); !errors.Is(err, ErrNotForest) {
		t.Fatal("cycle accepted by MVC")
	}
	if _, _, err := MinDominatingSet(g, nil); !errors.Is(err, ErrNotForest) {
		t.Fatal("cycle accepted by MDS")
	}
}

func TestRandomTreesAgainstBrute(t *testing.T) {
	rng := xrand.New(123)
	for trial := 0; trial < 80; trial++ {
		n := 2 + rng.Intn(12)
		g := gen.RandomTree(n, rng)
		w := randomWeights(n, rng)

		set, val, err := MaxIndependentSet(g, w)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteMIS(g, w); val != want {
			t.Fatalf("trial %d: MIS dp=%d brute=%d", trial, val, want)
		}
		verifyIS(t, g, set)
		if setWeight(set, w) != val {
			t.Fatalf("trial %d: MIS set weight mismatch", trial)
		}

		cover, cval, err := MinVertexCover(g, w)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteMVC(g, w); cval != want {
			t.Fatalf("trial %d: MVC dp=%d brute=%d", trial, cval, want)
		}
		verifyVC(t, g, cover)
		if setWeight(cover, w) != cval {
			t.Fatalf("trial %d: MVC set weight mismatch", trial)
		}

		ds, dval, err := MinDominatingSet(g, w)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteMDS(g, w); dval != want {
			t.Fatalf("trial %d: MDS dp=%d brute=%d", trial, dval, want)
		}
		verifyDS(t, g, ds)
		if setWeight(ds, w) != dval {
			t.Fatalf("trial %d: MDS set weight mismatch", trial)
		}
	}
}

func TestMISVCWeightedDuality(t *testing.T) {
	// On any graph, max-weight IS + min-weight VC = total weight.
	rng := xrand.New(321)
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(20)
		g := gen.RandomTree(n, rng)
		w := randomWeights(n, rng)
		var total int64
		for _, x := range w {
			total += x
		}
		_, mis, _ := MaxIndependentSet(g, w)
		_, mvc, _ := MinVertexCover(g, w)
		if mis+mvc != total {
			t.Fatalf("trial %d: duality violated: %d + %d != %d", trial, mis, mvc, total)
		}
	}
}

func TestDeepPathNoStackOverflow(t *testing.T) {
	// The DFS is iterative; a 200k path must work.
	g := gen.Path(200000)
	_, val, err := MaxIndependentSet(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if val != 100000 {
		t.Fatalf("deep path MIS = %d", val)
	}
}

func BenchmarkMDSLargeTree(b *testing.B) {
	rng := xrand.New(5)
	g := gen.RandomTree(100000, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = MinDominatingSet(g, nil)
	}
}
