// Package treedp provides linear-time exact dynamic programming on trees
// (and forests) for the three combinatorial problems used as ground truth in
// the experiments: maximum-weight independent set, minimum-weight vertex
// cover, and minimum-weight dominating set. All routines accept arbitrary
// nonnegative integer vertex weights and operate on each connected component
// independently, so any forest works. Inputs containing a cycle are
// rejected.
package treedp

import (
	"errors"

	"repro/internal/graph"
)

// ErrNotForest is returned when the input graph contains a cycle.
var ErrNotForest = errors.New("treedp: graph is not a forest")

const inf = int64(1) << 60

// orderForest returns vertices of g in an order where children precede
// parents (post-order per component) together with the parent array; returns
// ErrNotForest if a cycle exists.
func orderForest(g *graph.Graph) (post []int32, parent []int32, err error) {
	n := g.N()
	parent = make([]int32, n)
	state := make([]int8, n) // 0 unseen, 1 queued, 2 done
	for i := range parent {
		parent[i] = -1
	}
	post = make([]int32, 0, n)
	// Iterative DFS to avoid recursion depth limits on path-like trees.
	type frame struct {
		v    int32
		next int
	}
	var stack []frame
	for root := 0; root < n; root++ {
		if state[root] != 0 {
			continue
		}
		state[root] = 1
		stack = append(stack[:0], frame{v: int32(root)})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			nb := g.Neighbors(int(f.v))
			advanced := false
			for f.next < len(nb) {
				w := nb[f.next]
				f.next++
				if w == parent[f.v] {
					continue
				}
				if state[w] != 0 {
					return nil, nil, ErrNotForest
				}
				state[w] = 1
				parent[w] = f.v
				stack = append(stack, frame{v: w})
				advanced = true
				break
			}
			if !advanced {
				state[f.v] = 2
				post = append(post, f.v)
				stack = stack[:len(stack)-1]
			}
		}
	}
	return post, parent, nil
}

// MaxIndependentSet returns a maximum-weight independent set of the forest g
// and its total weight. weights may be nil for unit weights.
func MaxIndependentSet(g *graph.Graph, weights []int64) ([]int32, int64, error) {
	post, parent, err := orderForest(g)
	if err != nil {
		return nil, 0, err
	}
	n := g.N()
	w := unitIfNil(weights, n)
	// in[v]: best weight in subtree of v with v included;
	// out[v]: best with v excluded.
	in := make([]int64, n)
	out := make([]int64, n)
	for _, v := range post {
		in[v] = w[v]
		for _, c := range g.Neighbors(int(v)) {
			if c == parent[v] {
				continue
			}
			in[v] += out[c]
			out[v] += maxI64(in[c], out[c])
		}
	}
	// Reconstruct top-down.
	take := make([]int8, n) // -1 undecided, 0 skip, 1 take
	for i := range take {
		take[i] = -1
	}
	var set []int32
	var total int64
	for i := len(post) - 1; i >= 0; i-- {
		v := post[i]
		if parent[v] == -1 {
			total += maxI64(in[v], out[v])
			if in[v] >= out[v] {
				take[v] = 1
			} else {
				take[v] = 0
			}
		} else {
			p := parent[v]
			if take[p] == 1 {
				take[v] = 0
			} else if in[v] >= out[v] {
				take[v] = 1
			} else {
				take[v] = 0
			}
		}
		if take[v] == 1 {
			set = append(set, v)
		}
	}
	return set, total, nil
}

// MinVertexCover returns a minimum-weight vertex cover of the forest g and
// its weight. weights may be nil for unit weights.
func MinVertexCover(g *graph.Graph, weights []int64) ([]int32, int64, error) {
	post, parent, err := orderForest(g)
	if err != nil {
		return nil, 0, err
	}
	n := g.N()
	w := unitIfNil(weights, n)
	in := make([]int64, n)  // v in cover
	out := make([]int64, n) // v not in cover: all children must be in
	for _, v := range post {
		in[v] = w[v]
		for _, c := range g.Neighbors(int(v)) {
			if c == parent[v] {
				continue
			}
			in[v] += minI64(in[c], out[c])
			out[v] += in[c]
		}
	}
	take := make([]int8, n)
	for i := range take {
		take[i] = -1
	}
	var cover []int32
	var total int64
	for i := len(post) - 1; i >= 0; i-- {
		v := post[i]
		if parent[v] == -1 {
			total += minI64(in[v], out[v])
			if in[v] <= out[v] {
				take[v] = 1
			} else {
				take[v] = 0
			}
		} else {
			p := parent[v]
			if take[p] == 0 {
				take[v] = 1 // parent uncovered: v must cover the edge
			} else if in[v] <= out[v] {
				take[v] = 1
			} else {
				take[v] = 0
			}
		}
		if take[v] == 1 {
			cover = append(cover, v)
		}
	}
	return cover, total, nil
}

// MinDominatingSet returns a minimum-weight dominating set of the forest g
// and its weight. weights may be nil for unit weights.
//
// Standard 3-state DP: for each vertex,
//
//	s0: v in the set;
//	s1: v not in set, dominated by some child;
//	s2: v not in set, not yet dominated (must be dominated by its parent).
func MinDominatingSet(g *graph.Graph, weights []int64) ([]int32, int64, error) {
	post, parent, err := orderForest(g)
	if err != nil {
		return nil, 0, err
	}
	n := g.N()
	w := unitIfNil(weights, n)
	s0 := make([]int64, n)
	s1 := make([]int64, n)
	s2 := make([]int64, n)
	// choice tracking for reconstruction: for s1 we remember which child was
	// forced into state 0 (or -1 if some child's optimum is already s0).
	s1Forced := make([]int32, n)
	for _, v := range post {
		s0[v] = w[v]
		s2[v] = 0
		var sumMin01 int64 // sum over children of min(s0, s1)
		var bestPenalty int64 = inf
		var forced int32 = -1
		anyChild := false
		for _, c := range g.Neighbors(int(v)) {
			if c == parent[v] {
				continue
			}
			anyChild = true
			s0[v] += minI64(minI64(s0[c], s1[c]), s2[c])
			m01 := minI64(s0[c], s1[c])
			sumMin01 += m01
			s2[v] += m01
			// For s1, at least one child must be in state 0.
			penalty := s0[c] - m01
			if penalty < bestPenalty {
				bestPenalty = penalty
				forced = c
			}
		}
		if !anyChild {
			s1[v] = inf // leaf cannot be dominated by a child
			s1Forced[v] = -1
		} else {
			s1[v] = sumMin01 + bestPenalty
			if bestPenalty == 0 {
				forced = -1 // some child naturally in s0
			}
			s1Forced[v] = forced
		}
	}
	// Reconstruction, top-down. state[v] in {0,1,2}.
	state := make([]int8, n)
	for i := range state {
		state[i] = -1
	}
	var set []int32
	var total int64
	for i := len(post) - 1; i >= 0; i-- {
		v := post[i]
		if parent[v] == -1 {
			// Root may not be in state 2 (nobody above to dominate it).
			if s0[v] <= s1[v] {
				state[v] = 0
			} else {
				state[v] = 1
			}
			total += minI64(s0[v], s1[v])
		}
		sv := state[v]
		if sv == 0 {
			set = append(set, v)
		}
		for _, c := range g.Neighbors(int(v)) {
			if c == parent[v] {
				continue
			}
			switch sv {
			case 0:
				// child free: take its overall min.
				if s0[c] <= s1[c] && s0[c] <= s2[c] {
					state[c] = 0
				} else if s1[c] <= s2[c] {
					state[c] = 1
				} else {
					state[c] = 2
				}
			case 1:
				if s1Forced[v] == c {
					state[c] = 0
				} else if s0[c] <= s1[c] {
					state[c] = 0
				} else {
					state[c] = 1
				}
			case 2:
				if s0[c] <= s1[c] {
					state[c] = 0
				} else {
					state[c] = 1
				}
			}
		}
	}
	return set, total, nil
}

func unitIfNil(w []int64, n int) []int64 {
	if w != nil {
		return w
	}
	u := make([]int64, n)
	for i := range u {
		u[i] = 1
	}
	return u
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
