package stats

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Variance-2.5) > 1e-9 {
		t.Fatalf("variance = %v", s.Variance)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Fatal("empty summary nonzero")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{0, 10, 20, 30, 40}
	if q := Quantile(sorted, 0.5); q != 20 {
		t.Fatalf("median = %v", q)
	}
	if q := Quantile(sorted, 0); q != 0 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(sorted, 1); q != 40 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(sorted, 0.25); q != 10 {
		t.Fatalf("q25 = %v", q)
	}
	if q := Quantile(nil, 0.5); q != 0 {
		t.Fatal("nil quantile")
	}
}

// TestChernoffEmpirical verifies Lemma A.1 by simulation: the empirical
// upper tail of a Binomial(n, p) must not exceed the bound.
func TestChernoffEmpirical(t *testing.T) {
	rng := xrand.New(1)
	const n, p, trials = 500, 0.1, 4000
	mu := float64(n) * p
	for _, delta := range []float64{0.3, 0.5, 1.0} {
		threshold := (1 + delta) * mu
		exceeded := 0
		for trial := 0; trial < trials; trial++ {
			x := 0
			for i := 0; i < n; i++ {
				if rng.Bernoulli(p) {
					x++
				}
			}
			if float64(x) > threshold {
				exceeded++
			}
		}
		emp := float64(exceeded) / trials
		bound := ChernoffUpper(mu, delta)
		// Allow small-sample noise: empirical must not exceed bound by more
		// than a 2-sigma binomial fluctuation.
		slack := 2 * math.Sqrt(bound*(1-bound)/trials)
		if emp > bound+slack+0.01 {
			t.Fatalf("delta=%v: empirical %v > bound %v", delta, emp, bound)
		}
	}
}

func TestChernoffLowerEmpirical(t *testing.T) {
	rng := xrand.New(2)
	const n, p, trials = 500, 0.2, 2000
	mu := float64(n) * p
	delta := 0.4
	threshold := (1 - delta) * mu
	exceeded := 0
	for trial := 0; trial < trials; trial++ {
		x := 0
		for i := 0; i < n; i++ {
			if rng.Bernoulli(p) {
				x++
			}
		}
		if float64(x) < threshold {
			exceeded++
		}
	}
	emp := float64(exceeded) / trials
	if bound := ChernoffLower(mu, delta); emp > bound+0.01 {
		t.Fatalf("empirical lower tail %v > bound %v", emp, bound)
	}
}

func TestChernoffDegenerate(t *testing.T) {
	if ChernoffUpper(-1, 0.5) != 1 || ChernoffUpper(10, -0.5) != 1 {
		t.Fatal("degenerate Chernoff should return 1")
	}
	if ChernoffLower(10, 1.5) != 1 {
		t.Fatal("delta > 1 lower bound should return 1")
	}
}

// TestGeometricSumTailEmpirical verifies Lemma A.2 by simulation.
func TestGeometricSumTailEmpirical(t *testing.T) {
	rng := xrand.New(3)
	const n, trials = 200, 3000
	p := 0.5
	mu := float64(n) / p
	delta := 1.5 // > 1/p - 1 = 1
	threshold := mu + delta*float64(n)
	exceeded := 0
	for trial := 0; trial < trials; trial++ {
		sum := 0
		for i := 0; i < n; i++ {
			sum += rng.Geometric(p)
		}
		if float64(sum) > threshold {
			exceeded++
		}
	}
	emp := float64(exceeded) / trials
	bound := GeometricSumTail(n, p, delta)
	if emp > bound+0.01 {
		t.Fatalf("empirical geometric tail %v > bound %v", emp, bound)
	}
	// Degenerate parameter ranges.
	if GeometricSumTail(0, 0.5, 2) != 1 || GeometricSumTail(10, 0.5, 0.5) != 1 {
		t.Fatal("degenerate geometric tail should return 1")
	}
}

func TestEmpiricalTail(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if f := EmpiricalTail(xs, 3); f != 0.4 {
		t.Fatalf("tail = %v", f)
	}
	if f := EmpiricalTail(nil, 0); f != 0 {
		t.Fatal("nil tail")
	}
}

func TestFailureRate(t *testing.T) {
	rate := FailureRate(10, func(i int) bool { return i%2 == 0 })
	if rate != 0.5 {
		t.Fatalf("rate = %v", rate)
	}
	if FailureRate(0, nil) != 0 {
		t.Fatal("zero trials")
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(50, 100)
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("interval [%v, %v] should bracket 0.5", lo, hi)
	}
	if lo < 0.38 || hi > 0.62 {
		t.Fatalf("interval [%v, %v] too wide for n=100", lo, hi)
	}
	lo, hi = WilsonInterval(0, 100)
	if lo != 0 || hi < 0.01 || hi > 0.06 {
		t.Fatalf("zero-success interval [%v, %v]", lo, hi)
	}
	if lo, hi = WilsonInterval(0, 0); lo != 0 || hi != 1 {
		t.Fatal("no-trials interval should be [0,1]")
	}
}

func TestInts(t *testing.T) {
	out := Ints([]int{1, 2, 3})
	if len(out) != 3 || out[2] != 3 {
		t.Fatalf("Ints = %v", out)
	}
}

func TestLogLogSlope(t *testing.T) {
	// y = x^2 exactly.
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = x * x
	}
	if slope := LogLogSlope(xs, ys); math.Abs(slope-2) > 1e-9 {
		t.Fatalf("slope = %v, want 2", slope)
	}
	// Constant y: slope 0.
	if slope := LogLogSlope(xs, []float64{5, 5, 5, 5, 5}); math.Abs(slope) > 1e-9 {
		t.Fatalf("constant slope = %v", slope)
	}
	// Degenerate inputs.
	if LogLogSlope(nil, nil) != 0 {
		t.Fatal("nil slope")
	}
	if LogLogSlope([]float64{1}, []float64{1}) != 0 {
		t.Fatal("single-point slope")
	}
	if LogLogSlope([]float64{-1, 0}, []float64{1, 2}) != 0 {
		t.Fatal("nonpositive points should be skipped")
	}
}
