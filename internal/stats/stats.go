// Package stats provides the statistical utilities used by the experiment
// harness and by the tests that empirically verify the paper's
// concentration lemmas (Appendix A): summary statistics over trial runs,
// the Chernoff bounds of Lemma A.1, the geometric-sum tail of Lemma A.2,
// and empirical tail comparison helpers for the bounded-dependence variants
// (Lemmas A.3–A.6).
package stats

import (
	"math"
	"sort"
)

// Summary holds order statistics of a sample.
type Summary struct {
	N                int
	Mean, Min, Max   float64
	P50, P90, P95    float64
	Variance, StdDev float64
}

// Summarize computes summary statistics; an empty sample yields zeros.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.P50 = Quantile(sorted, 0.50)
	s.P90 = Quantile(sorted, 0.90)
	s.P95 = Quantile(sorted, 0.95)
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(len(sorted))
	var ss float64
	for _, x := range sorted {
		d := x - s.Mean
		ss += d * d
	}
	if len(sorted) > 1 {
		s.Variance = ss / float64(len(sorted)-1)
	}
	s.StdDev = math.Sqrt(s.Variance)
	return s
}

// Quantile returns the q-th quantile of a sorted sample via linear
// interpolation; q is clamped to [0, 1].
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// ChernoffUpper is the Lemma A.1 upper-tail bound for a sum of independent
// 0-1 variables with mean mu: Pr[X > (1+delta) mu] <= exp(-delta² mu /
// (2+delta)), for delta >= 0.
func ChernoffUpper(mu, delta float64) float64 {
	if delta < 0 || mu <= 0 {
		return 1
	}
	return math.Exp(-delta * delta * mu / (2 + delta))
}

// ChernoffLower is the Lemma A.1 lower-tail bound:
// Pr[X < (1-delta) mu] <= exp(-delta² mu / 2), for 0 <= delta <= 1.
func ChernoffLower(mu, delta float64) float64 {
	if delta < 0 || delta > 1 || mu <= 0 {
		return 1
	}
	return math.Exp(-delta * delta * mu / 2)
}

// GeometricSumTail is the Lemma A.2 bound for a sum X of n independent
// Geometric(p) variables with mean mu = n/p:
// Pr[X > mu + delta·n] <= exp(-p² delta n / 6), for delta > 1/p - 1.
func GeometricSumTail(n int, p, delta float64) float64 {
	if n <= 0 || p <= 0 || p > 1 || delta <= 1/p-1 {
		return 1
	}
	return math.Exp(-p * p * delta * float64(n) / 6)
}

// EmpiricalTail returns the fraction of samples strictly exceeding the
// threshold.
func EmpiricalTail(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	count := 0
	for _, x := range xs {
		if x > threshold {
			count++
		}
	}
	return float64(count) / float64(len(xs))
}

// FailureRate returns the fraction of trials where pred holds — used by the
// whp-vs-expectation experiments (E2/E3) to estimate failure probabilities.
func FailureRate(trials int, pred func(trial int) bool) float64 {
	if trials <= 0 {
		return 0
	}
	fails := 0
	for i := 0; i < trials; i++ {
		if pred(i) {
			fails++
		}
	}
	return float64(fails) / float64(trials)
}

// WilsonInterval returns the 95% Wilson score interval for a binomial
// proportion observed as successes/trials; useful for reporting empirical
// failure probabilities with honest uncertainty.
func WilsonInterval(successes, trials int) (lo, hi float64) {
	if trials <= 0 {
		return 0, 1
	}
	const z = 1.96
	n := float64(trials)
	p := float64(successes) / n
	denom := 1 + z*z/n
	center := (p + z*z/(2*n)) / denom
	half := z * math.Sqrt(p*(1-p)/n+z*z/(4*n*n)) / denom
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Ints converts an int sample to float64 for Summarize.
func Ints(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// LogLogSlope fits the least-squares slope of log(y) against log(x) —
// the exponent estimator used by the round-scaling experiments (E6/E7):
// if y ~ x^alpha the returned slope approximates alpha. Points with
// nonpositive coordinates are skipped; fewer than two usable points yield 0.
func LogLogSlope(xs, ys []float64) float64 {
	var lx, ly []float64
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	n := float64(len(lx))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range lx {
		sx += lx[i]
		sy += ly[i]
		sxx += lx[i] * lx[i]
		sxy += lx[i] * ly[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / denom
}
