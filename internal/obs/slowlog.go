package obs

import (
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"
)

// Event is one slow-query record: which request, what work it named, and
// where the time went. Serialized as a single NDJSON line by AppendEvent.
type Event struct {
	UnixNanos int64 // wall-clock completion time
	TraceID   uint64
	Name      string // endpoint or operation name
	Algo      string // algorithm name, e.g. "changli"
	Key       string // canonical cache key
	Snapshot  string // snapshot fingerprint (hex)
	Status    int
	TotalNS   int64
	Phases    []Phase
}

func eventFromSnapshot(s TraceSnapshot) Event {
	return Event{
		UnixNanos: s.Start.Add(s.Total).UnixNano(),
		TraceID:   s.ID,
		Name:      s.Name,
		Algo:      s.Algo,
		Key:       s.Key,
		Snapshot:  s.Snapshot,
		Status:    s.Status,
		TotalNS:   int64(s.Total),
		Phases:    s.Phases,
	}
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal (including the
// surrounding quotes). It escapes quotes, backslashes, and control bytes,
// and replaces invalid UTF-8 with U+FFFD so the output is always valid
// JSON regardless of input.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	for i := 0; i < len(s); {
		b := s[i]
		if b < utf8.RuneSelf {
			switch {
			case b == '"':
				buf = append(buf, '\\', '"')
			case b == '\\':
				buf = append(buf, '\\', '\\')
			case b >= 0x20:
				buf = append(buf, b)
			case b == '\n':
				buf = append(buf, '\\', 'n')
			case b == '\r':
				buf = append(buf, '\\', 'r')
			case b == '\t':
				buf = append(buf, '\\', 't')
			default:
				buf = append(buf, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xf])
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			buf = append(buf, `�`...)
			i++
			continue
		}
		buf = append(buf, s[i:i+size]...)
		i += size
	}
	return append(buf, '"')
}

// AppendEvent appends ev encoded as one JSON object (no trailing newline)
// to buf and returns the extended buffer. The encoding is hand-rolled so
// the hot path allocates nothing beyond buf growth; the output is always
// one syntactically valid JSON object.
func AppendEvent(buf []byte, ev Event) []byte {
	buf = append(buf, `{"ts":`...)
	buf = appendJSONString(buf, time.Unix(0, ev.UnixNanos).UTC().Format(time.RFC3339Nano))
	buf = append(buf, `,"trace":`...)
	buf = strconv.AppendUint(buf, ev.TraceID, 10)
	buf = append(buf, `,"name":`...)
	buf = appendJSONString(buf, ev.Name)
	if ev.Algo != "" {
		buf = append(buf, `,"algo":`...)
		buf = appendJSONString(buf, ev.Algo)
	}
	if ev.Key != "" {
		buf = append(buf, `,"key":`...)
		buf = appendJSONString(buf, ev.Key)
	}
	if ev.Snapshot != "" {
		buf = append(buf, `,"snapshot":`...)
		buf = appendJSONString(buf, ev.Snapshot)
	}
	buf = append(buf, `,"status":`...)
	buf = strconv.AppendInt(buf, int64(ev.Status), 10)
	buf = append(buf, `,"total_ns":`...)
	buf = strconv.AppendInt(buf, ev.TotalNS, 10)
	buf = append(buf, `,"phases":[`...)
	for i, ph := range ev.Phases {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, `{"name":`...)
		buf = appendJSONString(buf, ph.Name)
		buf = append(buf, `,"start_ns":`...)
		buf = strconv.AppendInt(buf, int64(ph.Offset), 10)
		buf = append(buf, `,"dur_ns":`...)
		buf = strconv.AppendInt(buf, int64(ph.Dur), 10)
		buf = append(buf, '}')
	}
	return append(buf, `]}`...)
}

// SlowLog serializes Events as NDJSON lines onto a writer. Safe for
// concurrent use; each Record writes exactly one line.
type SlowLog struct {
	mu     sync.Mutex
	w      io.Writer
	buf    []byte
	events atomic.Uint64
	errs   atomic.Uint64
}

// NewSlowLog returns a SlowLog writing NDJSON lines to w.
func NewSlowLog(w io.Writer) *SlowLog {
	return &SlowLog{w: w}
}

// Record encodes and writes one event. Write errors are counted, not
// propagated: losing a slow-log line must never fail a request.
func (l *SlowLog) Record(ev Event) {
	l.mu.Lock()
	l.buf = AppendEvent(l.buf[:0], ev)
	l.buf = append(l.buf, '\n')
	_, err := l.w.Write(l.buf)
	l.mu.Unlock()
	l.events.Add(1)
	if err != nil {
		l.errs.Add(1)
	}
}

// Events reports how many events have been recorded.
func (l *SlowLog) Events() uint64 { return l.events.Load() }

// WriteErrors reports how many event writes failed.
func (l *SlowLog) WriteErrors() uint64 { return l.errs.Load() }
