package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
	"unicode/utf8"
)

func decodeEvent(t *testing.T, line []byte) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(line, &m); err != nil {
		t.Fatalf("encoder output is not valid JSON: %v\n%s", err, line)
	}
	return m
}

func TestAppendEventRoundTrip(t *testing.T) {
	ev := Event{
		UnixNanos: time.Date(2026, 8, 8, 12, 0, 0, 123456789, time.UTC).UnixNano(),
		TraceID:   42,
		Name:      "run",
		Algo:      "changli",
		Key:       `changli|eps=0.3|seed=11`,
		Snapshot:  "deadbeefcafe",
		Status:    200,
		TotalNS:   1_234_567,
		Phases: []Phase{
			{Name: "estimate", Offset: 10, Dur: 100},
			{Name: "carve-1", Offset: 120, Dur: 900},
		},
	}
	out := AppendEvent(nil, ev)
	m := decodeEvent(t, out)
	if m["name"] != "run" || m["algo"] != "changli" || m["snapshot"] != "deadbeefcafe" {
		t.Fatalf("fields lost: %v", m)
	}
	if m["trace"].(float64) != 42 || m["status"].(float64) != 200 || m["total_ns"].(float64) != 1234567 {
		t.Fatalf("numeric fields lost: %v", m)
	}
	phases := m["phases"].([]any)
	if len(phases) != 2 {
		t.Fatalf("phases: %v", phases)
	}
	p0 := phases[0].(map[string]any)
	if p0["name"] != "estimate" || p0["start_ns"].(float64) != 10 || p0["dur_ns"].(float64) != 100 {
		t.Fatalf("phase 0: %v", p0)
	}
	if ts, _ := m["ts"].(string); !strings.HasPrefix(ts, "2026-08-08T12:00:00.123456789") {
		t.Fatalf("ts = %v", m["ts"])
	}
}

func TestAppendEventEscaping(t *testing.T) {
	ev := Event{
		Name: "quote\" slash\\ newline\n tab\t ctrl\x01 unicode€ high ",
		Key:  string([]byte{0xff, 0xfe, 'o', 'k'}), // invalid UTF-8
	}
	out := AppendEvent(nil, ev)
	m := decodeEvent(t, out)
	if m["name"] != "quote\" slash\\ newline\n tab\t ctrl\x01 unicode€ high " {
		t.Fatalf("escaped round-trip failed: %q", m["name"])
	}
	if m["key"] != "��ok" {
		t.Fatalf("invalid UTF-8 not replaced: %q", m["key"])
	}
	if strings.ContainsAny(string(out), "\n\r") {
		t.Fatalf("encoded line must not contain raw newlines: %q", out)
	}
}

func TestAppendEventOmitsEmptyLabels(t *testing.T) {
	out := string(AppendEvent(nil, Event{Name: "op"}))
	for _, absent := range []string{`"algo"`, `"key"`, `"snapshot"`} {
		if strings.Contains(out, absent) {
			t.Fatalf("empty label %s must be omitted: %s", absent, out)
		}
	}
	decodeEvent(t, []byte(out))
}

func TestSlowLogConcurrentLines(t *testing.T) {
	var mu safeBuffer
	l := NewSlowLog(&mu)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				l.Record(Event{Name: "op", TraceID: uint64(g*1000 + i)})
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if l.Events() != 400 {
		t.Fatalf("events = %d", l.Events())
	}
	lines := strings.Split(strings.TrimSuffix(mu.String(), "\n"), "\n")
	if len(lines) != 400 {
		t.Fatalf("lines = %d want 400", len(lines))
	}
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("interleaved/corrupt line: %v\n%s", err, ln)
		}
	}
}

type safeBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *safeBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *safeBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// FuzzSlowLogEncoder: for arbitrary strings and numbers the encoder must
// never panic and must always emit exactly one valid JSON object whose
// string fields round-trip (modulo U+FFFD replacement of invalid UTF-8).
func FuzzSlowLogEncoder(f *testing.F) {
	f.Add("run", "changli", "k|v=1", "fp", int64(123), 200, "phase")
	f.Add("", "", "", "", int64(-1), -7, "")
	f.Add("quote\"", "back\\slash", "new\nline", "\x00\x01", int64(1<<62), 999, "€�")
	f.Add(string([]byte{0xff, 0x80, 0x41}), "ok", "k", "s", int64(0), 0, string([]byte{0xc3, 0x28}))
	f.Fuzz(func(t *testing.T, name, algo, key, snap string, total int64, status int, phase string) {
		ev := Event{
			UnixNanos: total, // arbitrary timestamp
			TraceID:   uint64(status),
			Name:      name,
			Algo:      algo,
			Key:       key,
			Snapshot:  snap,
			Status:    status,
			TotalNS:   total,
			Phases:    []Phase{{Name: phase, Offset: time.Duration(total), Dur: time.Duration(status)}},
		}
		out := AppendEvent(nil, ev)
		var m map[string]any
		if err := json.Unmarshal(out, &m); err != nil {
			t.Fatalf("invalid JSON: %v\n%q", err, out)
		}
		if strings.ContainsAny(string(out), "\n\r") {
			t.Fatalf("raw newline in encoded line: %q", out)
		}
		if got, _ := m["name"].(string); utf8ValidOrReplaced(name) != got {
			t.Fatalf("name round-trip: %q -> %q", name, got)
		}
	})
}

// utf8ValidOrReplaced mirrors the encoder's policy: each invalid byte
// (not each invalid run) becomes one U+FFFD.
func utf8ValidOrReplaced(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); {
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b.WriteRune(utf8.RuneError)
			i++
			continue
		}
		b.WriteString(s[i : i+size])
		i += size
	}
	return b.String()
}
