package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTracePhasesAndLabels(t *testing.T) {
	tr8 := NewTracer(TracerOptions{RingSize: 8})
	ctx, tr := tr8.Start(context.Background(), "run")
	if FromContext(ctx) != tr {
		t.Fatal("context does not carry the trace")
	}
	tr.SetRequest("changli", "changli|eps=0.3", "deadbeef")
	end := StartPhase(ctx, "estimate")
	time.Sleep(2 * time.Millisecond)
	end()
	end2 := tr.StartPhase("carve-1")
	time.Sleep(time.Millisecond)
	end2()
	tr.Finish(200)
	tr.Finish(500) // idempotent: second call must not re-record

	if got := tr8.Finished(); got != 1 {
		t.Fatalf("finished = %d want 1", got)
	}
	recent := tr8.Recent(0)
	if len(recent) != 1 {
		t.Fatalf("recent = %d want 1", len(recent))
	}
	s := recent[0]
	if s.Algo != "changli" || s.Key != "changli|eps=0.3" || s.Snapshot != "deadbeef" {
		t.Fatalf("labels not recorded: %+v", s)
	}
	if s.Status != 200 {
		t.Fatalf("status = %d want 200 (Finish must be idempotent)", s.Status)
	}
	if len(s.Phases) != 2 || s.Phases[0].Name != "estimate" || s.Phases[1].Name != "carve-1" {
		t.Fatalf("phases: %+v", s.Phases)
	}
	if s.Phases[0].Dur <= 0 || s.Phases[1].Offset <= s.Phases[0].Offset {
		t.Fatalf("phase timing wrong: %+v", s.Phases)
	}
	var phaseSum time.Duration
	for _, ph := range s.Phases {
		phaseSum += ph.Dur
	}
	if phaseSum > s.Total {
		t.Fatalf("sequential phases exceed total: %v > %v", phaseSum, s.Total)
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.SetRequest("a", "b", "c")
	end := tr.StartPhase("x")
	end()
	tr.Finish(0)
	if got := FromContext(context.Background()); got != nil {
		t.Fatal("background context must carry no trace")
	}
	StartPhase(context.Background(), "noop")()
}

func TestRingBounded(t *testing.T) {
	tracer := NewTracer(TracerOptions{RingSize: 4})
	for i := 0; i < 10; i++ {
		_, tr := tracer.Start(context.Background(), "op")
		tr.Finish(i)
	}
	recent := tracer.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("ring holds %d want 4", len(recent))
	}
	// Newest first: statuses 9,8,7,6.
	for i, s := range recent {
		if s.Status != 9-i {
			t.Fatalf("recent[%d].Status = %d want %d", i, s.Status, 9-i)
		}
	}
	if got := tracer.Recent(2); len(got) != 2 || got[0].Status != 9 {
		t.Fatalf("Recent(2) = %+v", got)
	}
}

func TestPhaseCapDropsExcess(t *testing.T) {
	tracer := NewTracer(TracerOptions{RingSize: 1})
	_, tr := tracer.Start(context.Background(), "op")
	for i := 0; i < maxPhasesPerTrace+10; i++ {
		tr.StartPhase("p")()
	}
	tr.Finish(0)
	s := tracer.Recent(1)[0]
	if len(s.Phases) != maxPhasesPerTrace || s.Dropped != 10 {
		t.Fatalf("phases=%d dropped=%d", len(s.Phases), s.Dropped)
	}
}

func TestSlowThresholdGatesLog(t *testing.T) {
	var sb strings.Builder
	sl := NewSlowLog(&sb)
	tracer := NewTracer(TracerOptions{RingSize: 8, SlowLog: sl, SlowThreshold: 5 * time.Millisecond})

	_, fast := tracer.Start(context.Background(), "fast")
	fast.Finish(200)

	ctx, slow := tracer.Start(context.Background(), "slow")
	end := StartPhase(ctx, "compute")
	time.Sleep(8 * time.Millisecond)
	end()
	slow.SetRequest("changli", "k", "fp")
	slow.Finish(200)

	if tracer.Slow() != 1 || sl.Events() != 1 {
		t.Fatalf("slow=%d events=%d, want 1/1", tracer.Slow(), sl.Events())
	}
	line := sb.String()
	if strings.Count(line, "\n") != 1 {
		t.Fatalf("want exactly one NDJSON line, got %q", line)
	}
	for _, want := range []string{`"name":"slow"`, `"algo":"changli"`, `"phases":[{"name":"compute"`} {
		if !strings.Contains(line, want) {
			t.Fatalf("slow log line missing %s: %s", want, line)
		}
	}
}

func TestZeroThresholdLogsEverything(t *testing.T) {
	var sb strings.Builder
	tracer := NewTracer(TracerOptions{SlowLog: NewSlowLog(&sb)})
	for i := 0; i < 3; i++ {
		_, tr := tracer.Start(context.Background(), "op")
		tr.Finish(0)
	}
	if got := strings.Count(sb.String(), "\n"); got != 3 {
		t.Fatalf("zero threshold must log all traces, got %d lines", got)
	}
}
