package obs

import (
	"fmt"
	"io"
	"strconv"
)

// Exposition helpers for the Prometheus text format (version 0.0.4).
// Callers pre-render label sets as `name="value"` fragments (no braces);
// these helpers take care of # HELP / # TYPE headers, brace placement, and
// histogram family layout.

// WriteHeader writes the # HELP and # TYPE lines for a metric family.
func WriteHeader(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// WriteSample writes one sample line: name{labels} value. labels may be
// empty.
func WriteSample(w io.Writer, name, labels string, value float64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(value))
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatFloat(value))
}

// WriteUintSample writes one sample line with an integer value.
func WriteUintSample(w io.Writer, name, labels string, value uint64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %d\n", name, value)
		return
	}
	fmt.Fprintf(w, "%s{%s} %d\n", name, labels, value)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// WriteDurationSeries writes one labeled series of a Prometheus histogram
// family whose observations were recorded in nanoseconds; boundaries, sum,
// and quantile-free exposition are converted to seconds. Only non-empty
// buckets get a line (plus the mandatory +Inf), which keeps the ~350-bucket
// layout compact on the wire. Cumulative counts are preserved exactly.
func WriteDurationSeries(w io.Writer, name, labels string, s *HistSnapshot) {
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		cum += c
		le := float64(BucketUpper(i)) / 1e9
		WriteUintSample(w, name+"_bucket", joinLabels(labels, `le="`+formatFloat(le)+`"`), cum)
	}
	WriteUintSample(w, name+"_bucket", joinLabels(labels, `le="+Inf"`), s.Count)
	WriteSample(w, name+"_sum", labels, float64(s.Sum)/1e9)
	WriteUintSample(w, name+"_count", labels, s.Count)
}

// WriteQuantileSeries writes p50/p90/p99/p999 of a nanosecond-valued
// snapshot as a gauge family with a quantile label, in seconds.
func WriteQuantileSeries(w io.Writer, name, labels string, s *HistSnapshot) {
	for _, q := range [...]struct {
		label string
		q     float64
	}{{"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}, {"0.999", 0.999}} {
		v := float64(s.Quantile(q.q)) / 1e9
		WriteSample(w, name, joinLabels(labels, `quantile="`+q.label+`"`), v)
	}
}

// WriteValueQuantileSeries is WriteQuantileSeries for unit-less value
// histograms (e.g. batch sizes): no nanosecond conversion.
func WriteValueQuantileSeries(w io.Writer, name, labels string, s *HistSnapshot) {
	for _, q := range [...]struct {
		label string
		q     float64
	}{{"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}, {"0.999", 0.999}} {
		WriteSample(w, name, joinLabels(labels, `quantile="`+q.label+`"`), float64(s.Quantile(q.q)))
	}
}
