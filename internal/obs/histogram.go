// Package obs is the zero-dependency observability core: lock-cheap
// log-bucketed latency histograms, a span-style tracer carried through
// context.Context, and a threshold-gated NDJSON slow-query log.
//
// The package is deliberately tiny and self-contained (standard library
// only) so that every other layer — engine, server, WAL, CLI — can depend
// on it without dragging in an external metrics stack. Histograms are the
// workhorse: recording is a handful of atomic adds on striped counters, so
// they can sit on hot paths (the engine's cached-hit path budgets a few
// nanoseconds for instrumentation); snapshots are mergeable and render to
// Prometheus text exposition with p50/p90/p99/p999 summaries.
package obs

import (
	"math/bits"
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// Bucket layout. Values below linearBuckets get an exact bucket each; above
// that, each power-of-two octave is split into 8 sub-buckets, so the relative
// bucket width is at most 1/8 = 12.5% (midpoint error ≤ 6.25%). With octaves
// up to 2^45 the scheme covers 1ns .. ~9.7h when values are nanoseconds;
// anything larger clamps into the final bucket.
const (
	linearBuckets = 16
	subBits       = 3
	subBuckets    = 1 << subBits
	minOctave     = 4  // first bucketed octave: values 16..31
	maxOctave     = 45 // values up to 2^46-1 resolve exactly; beyond clamps

	// NumBuckets is the total number of histogram buckets.
	NumBuckets = linearBuckets + (maxOctave-minOctave+1)*subBuckets
)

// nStripes is the number of independently updated counter stripes. Writers
// pick a stripe with a cheap per-P random draw, so concurrent recorders
// rarely contend on the same cache lines. Must be a power of two.
const nStripes = 4

type histStripe struct {
	counts [NumBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
	_      [48]byte // keep adjacent stripes' tail counters off one line
}

// Histogram is a fixed-size log-bucketed histogram safe for concurrent use.
// The zero value is ready to use and must not be copied after first use.
type Histogram struct {
	stripes [nStripes]histStripe
}

// bucketIndex maps a value to its bucket. Negative values count as zero.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	uv := uint64(v)
	if uv < linearBuckets {
		return int(uv)
	}
	o := bits.Len64(uv) - 1
	if o > maxOctave {
		return NumBuckets - 1
	}
	sub := (uv >> (uint(o) - subBits)) & (subBuckets - 1)
	return linearBuckets + (o-minOctave)*subBuckets + int(sub)
}

// BucketUpper returns the largest value that falls into bucket i (the
// inclusive upper bound, i.e. a Prometheus `le` boundary when interpreted
// in the recorded unit).
func BucketUpper(i int) int64 {
	if i < linearBuckets {
		return int64(i)
	}
	j := i - linearBuckets
	o := uint(j/subBuckets) + minOctave
	sub := uint64(j % subBuckets)
	return int64(uint64(1)<<o + (sub+1)<<(o-subBits) - 1)
}

// bucketMid returns a representative value for bucket i, used when a
// quantile lands inside the bucket.
func bucketMid(i int) int64 {
	if i < linearBuckets {
		return int64(i)
	}
	j := i - linearBuckets
	o := uint(j/subBuckets) + minOctave
	sub := uint64(j % subBuckets)
	lower := uint64(1)<<o + sub<<(o-subBits)
	return int64(lower + (uint64(1)<<(o-subBits))/2)
}

// Observe records a duration in nanoseconds.
func (h *Histogram) Observe(d time.Duration) { h.ObserveValue(int64(d)) }

// ObserveValue records a raw value (nanoseconds for latency histograms,
// counts for size histograms). Cost is one cheap random draw plus three
// atomic adds on a randomly chosen stripe; it never allocates.
func (h *Histogram) ObserveValue(v int64) {
	s := &h.stripes[rand.Uint64()&(nStripes-1)]
	s.counts[bucketIndex(v)].Add(1)
	s.count.Add(1)
	if v > 0 {
		s.sum.Add(uint64(v))
	}
}

// HistSnapshot is a point-in-time copy of a Histogram, suitable for
// quantile queries, merging, and exposition. Snapshots taken while writers
// are active are internally consistent per-stripe but may straddle a small
// number of in-flight observations; for metrics that is immaterial.
type HistSnapshot struct {
	Counts [NumBuckets]uint64
	Count  uint64
	Sum    uint64
}

// Snapshot folds all stripes into one consistent-enough view.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.stripes {
		st := &h.stripes[i]
		for b := range st.counts {
			s.Counts[b] += st.counts[b].Load()
		}
		s.Count += st.count.Load()
		s.Sum += st.sum.Load()
	}
	return s
}

// Merge adds o into s. Merging is commutative and associative, so shard- or
// process-level snapshots can be combined in any order.
func (s *HistSnapshot) Merge(o *HistSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Quantile returns an approximation of the q-quantile (0 < q <= 1) of the
// recorded values, with relative error bounded by half a bucket width
// (≤ 6.25% for values ≥ 16). Returns 0 when the snapshot is empty.
func (s *HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			return bucketMid(i)
		}
	}
	return BucketUpper(NumBuckets - 1)
}

// Mean returns the arithmetic mean of recorded values, or 0 when empty.
func (s *HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Summary bundles the standard latency quantiles for reporting.
type Summary struct {
	Count               uint64
	Mean                float64
	P50, P90, P99, P999 int64
}

// Summarize computes the standard p50/p90/p99/p999 summary in one pass
// over the snapshot per quantile.
func (s *HistSnapshot) Summarize() Summary {
	return Summary{
		Count: s.Count,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
		P999:  s.Quantile(0.999),
	}
}
