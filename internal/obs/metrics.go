package obs

import (
	"math/bits"
	"sync/atomic"
)

// EngineMetrics is the engine's latency bundle: where did a request's time
// go — cache lookup (hit), joiner wait behind an in-flight computation, or
// the computation itself — plus per-shard hit latency for spotting skew.
//
// The cached-hit path runs at hundreds of nanoseconds, so hit timing is
// sampled: Sample ticks an atomic sequence counter and returns true once
// every SampleEvery calls, and only sampled calls pay for clock reads.
// Compute and joiner-wait are rare and slow, so they are always timed.
type EngineMetrics struct {
	mask uint64
	seq  atomic.Uint64

	Hit      Histogram
	Compute  Histogram
	JoinWait Histogram
	Repair   Histogram
	ShardHit []Histogram
}

// DefaultSampleEvery is the default hit-path sampling interval.
const DefaultSampleEvery = 64

// NewEngineMetrics builds an EngineMetrics with one per-shard hit
// histogram per shard. sampleEvery is rounded up to a power of two;
// values <= 0 select DefaultSampleEvery, 1 samples every call.
func NewEngineMetrics(shards, sampleEvery int) *EngineMetrics {
	if sampleEvery <= 0 {
		sampleEvery = DefaultSampleEvery
	}
	if sampleEvery&(sampleEvery-1) != 0 {
		sampleEvery = 1 << bits.Len(uint(sampleEvery))
	}
	if shards < 1 {
		shards = 1
	}
	return &EngineMetrics{
		mask:     uint64(sampleEvery - 1),
		ShardHit: make([]Histogram, shards),
	}
}

// Sample ticks the sequence counter and reports whether this call should
// be timed. One atomic add, no branches on the common path.
func (m *EngineMetrics) Sample() bool {
	return m.seq.Add(1)&m.mask == 0
}

// SampleEvery reports the effective sampling interval.
func (m *EngineMetrics) SampleEvery() int { return int(m.mask) + 1 }

// WALMetrics is the write-ahead log's latency bundle: append latency
// (frame encode + buffered write), fsync latency, and the group-commit
// batch size (records flushed per fsync).
type WALMetrics struct {
	Append Histogram // nanoseconds per Append
	Fsync  Histogram // nanoseconds per fsync
	Batch  Histogram // records per group commit (unit-less)
}

// NewWALMetrics returns an empty WALMetrics.
func NewWALMetrics() *WALMetrics { return &WALMetrics{} }
