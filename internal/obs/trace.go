package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// maxPhasesPerTrace bounds per-trace memory; phases past the cap are
// counted in Trace.Dropped instead of stored.
const maxPhasesPerTrace = 256

// Phase is one named, timed span inside a trace. Offset is measured from
// the trace start; Dur is zero until the phase is closed.
type Phase struct {
	Name   string        `json:"name"`
	Offset time.Duration `json:"start_ns"`
	Dur    time.Duration `json:"dur_ns"`
}

// Trace is one request's span record: a request ID, coarse labels
// identifying the work (algorithm, canonical cache key, snapshot
// fingerprint), and an append-only list of named phases with nanosecond
// timestamps. A nil *Trace is valid and all methods are no-ops, so callers
// can thread traces unconditionally.
type Trace struct {
	tracer *Tracer

	ID    uint64
	Name  string
	Start time.Time

	mu       sync.Mutex
	algo     string
	key      string
	snapshot string
	phases   []Phase
	dropped  int
	total    time.Duration
	status   int
	finished bool
}

type traceCtxKey struct{}

// WithTrace returns a context carrying tr.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tr)
}

// FromContext returns the trace carried by ctx, or nil. The nil return is
// the common fast path: untraced requests pay one context lookup and
// nothing else.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return tr
}

var noopEnd = func() {}

// StartPhase opens a named phase on the trace in ctx and returns the
// closer. When ctx carries no trace it returns a shared no-op.
func StartPhase(ctx context.Context, name string) func() {
	tr := FromContext(ctx)
	if tr == nil {
		return noopEnd
	}
	return tr.StartPhase(name)
}

// StartPhase opens a named phase and returns a func that closes it. Phases
// may overlap (concurrent shards each opening their own) and may be left
// unclosed on error paths — an unclosed phase simply reports Dur 0.
func (tr *Trace) StartPhase(name string) func() {
	if tr == nil {
		return noopEnd
	}
	tr.mu.Lock()
	if len(tr.phases) >= maxPhasesPerTrace {
		tr.dropped++
		tr.mu.Unlock()
		return noopEnd
	}
	idx := len(tr.phases)
	tr.phases = append(tr.phases, Phase{Name: name, Offset: time.Since(tr.Start)})
	tr.mu.Unlock()
	return func() {
		tr.mu.Lock()
		ph := &tr.phases[idx]
		ph.Dur = time.Since(tr.Start) - ph.Offset
		tr.mu.Unlock()
	}
}

// SetRequest attaches the work labels: algorithm name, canonical cache
// key, and snapshot fingerprint. Later calls win, so the deepest layer
// that knows the true identity (the engine) stamps it.
func (tr *Trace) SetRequest(algo, key, snapshot string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.algo, tr.key, tr.snapshot = algo, key, snapshot
	tr.mu.Unlock()
}

// Finish closes the trace with a status code (HTTP status, or 0 for
// in-process callers), pushes it into the tracer's ring of recent traces,
// and emits a slow-log event if the total latency crossed the tracer's
// threshold. Finish is idempotent; only the first call records.
func (tr *Trace) Finish(status int) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	if tr.finished {
		tr.mu.Unlock()
		return
	}
	tr.finished = true
	tr.total = time.Since(tr.Start)
	tr.status = status
	tr.mu.Unlock()
	tr.tracer.record(tr)
}

// snapshotLocked assumes tr.mu is held.
func (tr *Trace) snapshotLocked() TraceSnapshot {
	s := TraceSnapshot{
		ID:       tr.ID,
		Name:     tr.Name,
		Start:    tr.Start,
		Algo:     tr.algo,
		Key:      tr.key,
		Snapshot: tr.snapshot,
		Total:    tr.total,
		Status:   tr.status,
		Dropped:  tr.dropped,
		Phases:   append([]Phase(nil), tr.phases...),
	}
	return s
}

// TraceSnapshot is an immutable copy of a finished trace, safe to hand to
// encoders and HTTP handlers.
type TraceSnapshot struct {
	ID       uint64        `json:"id"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Algo     string        `json:"algo,omitempty"`
	Key      string        `json:"key,omitempty"`
	Snapshot string        `json:"snapshot,omitempty"`
	Status   int           `json:"status"`
	Total    time.Duration `json:"total_ns"`
	Dropped  int           `json:"dropped_phases,omitempty"`
	Phases   []Phase       `json:"phases"`
}

// TracerOptions configures a Tracer.
type TracerOptions struct {
	// RingSize bounds the buffer of recent finished traces (default 128).
	RingSize int
	// SlowLog, when non-nil, receives an event for every finished trace
	// whose total latency is >= SlowThreshold.
	SlowLog *SlowLog
	// SlowThreshold gates slow-log emission. Zero means every finished
	// trace is logged (useful for tests and demos).
	SlowThreshold time.Duration
}

// Tracer mints traces and retains a bounded ring of recent ones.
type Tracer struct {
	opts TracerOptions

	seq      atomic.Uint64
	finished atomic.Uint64
	slow     atomic.Uint64

	mu   sync.Mutex
	ring []TraceSnapshot
	next int
}

// NewTracer returns a Tracer with the given options.
func NewTracer(opts TracerOptions) *Tracer {
	if opts.RingSize <= 0 {
		opts.RingSize = 128
	}
	return &Tracer{opts: opts, ring: make([]TraceSnapshot, 0, opts.RingSize)}
}

// Start mints a new trace named name and returns a derived context
// carrying it. The caller must eventually call Finish on the trace.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Trace) {
	tr := &Trace{
		tracer: t,
		ID:     t.seq.Add(1),
		Name:   name,
		Start:  time.Now(),
	}
	return WithTrace(ctx, tr), tr
}

// Finished reports how many traces have completed.
func (t *Tracer) Finished() uint64 { return t.finished.Load() }

// SlowLog returns the slow log this tracer emits into, or nil.
func (t *Tracer) SlowLog() *SlowLog { return t.opts.SlowLog }

// Slow reports how many finished traces crossed the slow threshold.
func (t *Tracer) Slow() uint64 { return t.slow.Load() }

func (t *Tracer) record(tr *Trace) {
	tr.mu.Lock()
	snap := tr.snapshotLocked()
	tr.mu.Unlock()

	t.finished.Add(1)
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, snap)
	} else {
		t.ring[t.next] = snap
		t.next = (t.next + 1) % cap(t.ring)
	}
	t.mu.Unlock()

	if t.opts.SlowLog != nil && snap.Total >= t.opts.SlowThreshold {
		t.slow.Add(1)
		t.opts.SlowLog.Record(eventFromSnapshot(snap))
	}
}

// Recent returns up to n recent finished traces, newest first. n <= 0
// means all retained traces.
func (t *Tracer) Recent(n int) []TraceSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	total := len(t.ring)
	if n <= 0 || n > total {
		n = total
	}
	out := make([]TraceSnapshot, 0, n)
	// Newest element is just before t.next once the ring has wrapped;
	// before wrapping it is the last appended element.
	for i := 0; i < n; i++ {
		var idx int
		if len(t.ring) < cap(t.ring) {
			idx = total - 1 - i
		} else {
			idx = ((t.next-1-i)%total + total) % total
		}
		out = append(out, t.ring[idx])
	}
	return out
}
