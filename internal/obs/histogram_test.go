package obs

import (
	"math"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexMonotoneAndConsistent(t *testing.T) {
	// Every value maps into a bucket whose bounds actually contain it, and
	// bucket indices are monotone in the value.
	vals := []int64{0, 1, 2, 15, 16, 17, 31, 32, 100, 1000, 4095, 4096,
		1 << 20, 1<<20 + 1, 1 << 30, 1 << 40, 1 << 45, 1<<46 - 1, 1 << 50, math.MaxInt64}
	prev := -1
	for _, v := range vals {
		i := bucketIndex(v)
		if i < 0 || i >= NumBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
		upper := BucketUpper(i)
		if v <= 1<<46-1 && v > upper {
			t.Fatalf("value %d above its bucket upper %d (bucket %d)", v, upper, i)
		}
		if i > 0 && v <= 1<<46-1 && v <= BucketUpper(i-1) {
			t.Fatalf("value %d should be in an earlier bucket than %d (prev upper %d)", v, i, BucketUpper(i-1))
		}
	}
	if bucketIndex(-5) != 0 {
		t.Fatalf("negative values must clamp to bucket 0")
	}
}

func TestBucketUpperStrictlyIncreasing(t *testing.T) {
	for i := 1; i < NumBuckets; i++ {
		if BucketUpper(i) <= BucketUpper(i-1) {
			t.Fatalf("BucketUpper not strictly increasing at %d: %d <= %d",
				i, BucketUpper(i), BucketUpper(i-1))
		}
	}
}

// lcg is a tiny deterministic generator so the adversarial distributions
// are reproducible without seeding global state.
type lcg struct{ s uint64 }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s >> 11
}

func exactQuantile(sorted []int64, q float64) int64 {
	rank := int(q * float64(len(sorted)))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func checkQuantiles(t *testing.T, name string, vals []int64) {
	t.Helper()
	var h Histogram
	for _, v := range vals {
		h.ObserveValue(v)
	}
	sorted := append([]int64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s := h.Snapshot()
	if s.Count != uint64(len(vals)) {
		t.Fatalf("%s: count %d want %d", name, s.Count, len(vals))
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := s.Quantile(q)
		want := exactQuantile(sorted, q)
		// The quantile may land anywhere in the exact value's bucket, and
		// concurrent-free recording means the bucket is the right one; the
		// bucket midpoint is within 1/8 of the true value for v >= 16
		// (plus one ulp of bucket-boundary slack for the rank rounding).
		relErr := math.Abs(float64(got)-float64(want)) / math.Max(float64(want), 1)
		if want >= 16 && relErr > 0.13 {
			t.Errorf("%s: q=%g got %d want %d relErr %.3f > 0.13", name, q, got, want, relErr)
		}
		if want < 16 && got != want {
			t.Errorf("%s: q=%g got %d want exact %d (linear range)", name, q, got, want)
		}
	}
}

func TestQuantileBimodal(t *testing.T) {
	// Bimodal: 90% fast-path around 300ns, 10% slow-path around 40ms.
	// Adversarial for averaged summaries; the histogram must keep the modes
	// separate and nail p99 in the slow mode.
	g := &lcg{s: 42}
	vals := make([]int64, 0, 200000)
	for i := 0; i < 180000; i++ {
		vals = append(vals, 250+int64(g.next()%100)) // 250..349ns
	}
	for i := 0; i < 20000; i++ {
		vals = append(vals, 35_000_000+int64(g.next()%10_000_000)) // 35..45ms
	}
	checkQuantiles(t, "bimodal", vals)
}

func TestQuantileHeavyTail(t *testing.T) {
	// Pareto-ish heavy tail: x = minv / u^(1/alpha) with alpha ~ 1.2.
	g := &lcg{s: 7}
	vals := make([]int64, 0, 100000)
	for i := 0; i < 100000; i++ {
		u := (float64(g.next()%1_000_000) + 1) / 1_000_001
		x := 1000.0 / math.Pow(u, 1/1.2)
		if x > 1e15 {
			x = 1e15
		}
		vals = append(vals, int64(x))
	}
	checkQuantiles(t, "heavy-tail", vals)
}

func TestQuantileSmallExactRange(t *testing.T) {
	var h Histogram
	for v := int64(0); v < 16; v++ {
		h.ObserveValue(v)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 7 {
		t.Fatalf("p50 of 0..15 = %d, want 7", got)
	}
	if got := s.Quantile(1.0); got != 15 {
		t.Fatalf("p100 of 0..15 = %d, want 15", got)
	}
}

func TestQuantileEmpty(t *testing.T) {
	var s HistSnapshot
	if s.Quantile(0.99) != 0 || s.Mean() != 0 {
		t.Fatal("empty snapshot must report zeros")
	}
}

func TestConcurrentObservers(t *testing.T) {
	// Hammer one histogram from many goroutines; total count and sum must
	// be conserved exactly (run under -race in CI).
	const (
		goroutines = 8
		perG       = 5000
	)
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := &lcg{s: seed}
			for i := 0; i < perG; i++ {
				h.ObserveValue(int64(r.next() % 1_000_000))
			}
		}(uint64(g + 1))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("count %d want %d", s.Count, goroutines*perG)
	}
	var bucketTotal uint64
	for _, c := range s.Counts {
		bucketTotal += c
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
}

func TestMergeAssociativityAndCommutativity(t *testing.T) {
	mk := func(seed uint64, n int) HistSnapshot {
		var h Histogram
		r := &lcg{s: seed}
		for i := 0; i < n; i++ {
			h.ObserveValue(int64(r.next() % 10_000_000))
		}
		return h.Snapshot()
	}
	a, b, c := mk(1, 1000), mk(2, 2000), mk(3, 3000)

	// (a+b)+c
	ab := a
	ab.Merge(&b)
	abc1 := ab
	abc1.Merge(&c)
	// a+(b+c)
	bc := b
	bc.Merge(&c)
	abc2 := a
	abc2.Merge(&bc)
	// (c+b)+a — commutativity too
	cb := c
	cb.Merge(&b)
	abc3 := cb
	abc3.Merge(&a)

	for _, other := range []*HistSnapshot{&abc2, &abc3} {
		if abc1.Count != other.Count || abc1.Sum != other.Sum || abc1.Counts != other.Counts {
			t.Fatal("merge is not associative/commutative")
		}
	}
	if abc1.Count != 6000 {
		t.Fatalf("merged count %d want 6000", abc1.Count)
	}
}

func TestObserveZeroAlloc(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Observe(1234 * time.Nanosecond) }); n != 0 {
		t.Fatalf("Observe allocates %v per run, want 0", n)
	}
	m := NewEngineMetrics(4, 0)
	if n := testing.AllocsPerRun(1000, func() {
		if m.Sample() {
			m.Hit.ObserveValue(300)
		}
	}); n != 0 {
		t.Fatalf("sampled record path allocates %v per run, want 0", n)
	}
}

func TestSummarize(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.ObserveValue(i * 1000) // 1µs .. 1ms
	}
	snap := h.Snapshot()
	sum := snap.Summarize()
	if sum.Count != 1000 {
		t.Fatalf("count %d", sum.Count)
	}
	if sum.P50 <= 0 || sum.P90 < sum.P50 || sum.P99 < sum.P90 || sum.P999 < sum.P99 {
		t.Fatalf("quantiles not ordered: %+v", sum)
	}
}

func TestEngineMetricsSampling(t *testing.T) {
	m := NewEngineMetrics(2, 8)
	if m.SampleEvery() != 8 {
		t.Fatalf("SampleEvery = %d want 8", m.SampleEvery())
	}
	hits := 0
	for i := 0; i < 80; i++ {
		if m.Sample() {
			hits++
		}
	}
	if hits != 10 {
		t.Fatalf("sampled %d of 80 at 1/8, want 10", hits)
	}
	// Non-power-of-two rounds up.
	if m2 := NewEngineMetrics(1, 3); m2.SampleEvery() != 4 {
		t.Fatalf("SampleEvery(3) = %d want 4", m2.SampleEvery())
	}
}

// BenchmarkHistogramObserve pins the record path's cost; it must stay a
// few atomic ops (regression gate for the engine hot path).
func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveValue(int64(i)&0xfffff + 100)
	}
}

// BenchmarkSampledRecord measures what the engine hit path actually pays
// per request: one Sample tick, occasionally a full Observe.
func BenchmarkSampledRecord(b *testing.B) {
	m := NewEngineMetrics(8, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if m.Sample() {
			m.Hit.ObserveValue(300)
		}
	}
}
