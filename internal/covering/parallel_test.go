package covering

import (
	"reflect"
	"testing"

	"repro/internal/graph/gen"
	"repro/internal/problems"
)

// TestParallelPreparationBitIdentical is the determinism cross-check: a
// seeded run must produce the exact same result — solution bits, value,
// rounds, region count — whether the preparation covers and Phase-2 region
// solves run sequentially (Workers: 1) or fan out across a pool.
func TestParallelPreparationBitIdentical(t *testing.T) {
	for _, build := range []struct {
		name string
		prob problems.Problem
		n    int
	}{
		{"vc-cycle", problems.MinVertexCover, 60},
		{"mds-cycle", problems.MinDominatingSet, 48},
	} {
		g := gen.Cycle(build.n)
		inst, err := problems.Build(build.prob, g, nil)
		if err != nil {
			t.Fatalf("%s: build: %v", build.name, err)
		}
		for _, seed := range []uint64{1, 7, 42} {
			base := Params{Epsilon: 0.3, Seed: seed, PrepRuns: 3}
			seq := base
			seq.Workers = 1
			parl := base
			parl.Workers = 6
			rs, err := Solve(inst, seq)
			if err != nil {
				t.Fatalf("%s seed %d sequential: %v", build.name, seed, err)
			}
			rp, err := Solve(inst, parl)
			if err != nil {
				t.Fatalf("%s seed %d parallel: %v", build.name, seed, err)
			}
			if !reflect.DeepEqual(rs, rp) {
				t.Fatalf("%s seed %d: sequential and parallel results differ:\nseq %+v\npar %+v",
					build.name, seed, rs, rp)
			}
		}
	}
}
