package covering

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/ilp"
	"repro/internal/problems"
	"repro/internal/solve"
)

// multiCoverInstance builds a 2-cover dominating-set variant: every vertex
// must have at least 2 closed-neighborhood members selected. Exercises
// non-unit right-hand sides throughout the covering pipeline.
func multiCoverInstance(t testing.TB, g *graph.Graph) *ilp.Instance {
	t.Helper()
	w := make([]int64, g.N())
	for i := range w {
		w[i] = 1
	}
	b := ilp.NewBuilder(ilp.Covering, w)
	for v := 0; v < g.N(); v++ {
		terms := []ilp.Term{{Var: v, Coeff: 1}}
		for _, u := range g.Neighbors(v) {
			terms = append(terms, ilp.Term{Var: int(u), Coeff: 1})
		}
		b.AddConstraint(terms, 2)
	}
	inst, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestMultiCoverFeasible(t *testing.T) {
	g := gen.Cycle(90)
	inst := multiCoverInstance(t, g)
	for seed := uint64(0); seed < 3; seed++ {
		r, err := Solve(inst, Params{Epsilon: 0.3, Seed: seed, PrepRuns: 2})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if ok, j := inst.Feasible(r.Solution); !ok {
			t.Fatalf("seed %d: 2-cover violated at constraint %d", seed, j)
		}
		// gamma_2(C90): every closed neighborhood has 3 vertices and needs 2
		// selected -> at least 2n/3 vertices; at most n.
		if r.Value < 60 || r.Value > 90 {
			t.Fatalf("seed %d: implausible 2-cover size %d", seed, r.Value)
		}
	}
}

func TestMultiCoverWithCoefficients(t *testing.T) {
	// A vertex with coefficient 2 can satisfy a demand-2 constraint alone.
	b := ilp.NewBuilder(ilp.Covering, []int64{1, 5, 5})
	b.AddConstraint([]ilp.Term{{Var: 0, Coeff: 2}, {Var: 1, Coeff: 1}, {Var: 2, Coeff: 1}}, 2)
	inst, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Solve(inst, Params{Epsilon: 0.2, Seed: 1, PrepRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := inst.Feasible(r.Solution); !ok {
		t.Fatal("infeasible")
	}
	if r.Value != 1 { // picking the cheap coefficient-2 vertex is optimal
		t.Fatalf("value = %d, want 1", r.Value)
	}
}

func TestDisconnectedCovering(t *testing.T) {
	b := graph.NewBuilder(40)
	for i := 0; i+1 < 20; i++ {
		b.AddEdge(i, i+1)
	}
	for i := 20; i+1 < 40; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.Build()
	inst, err := problems.Build(problems.MinVertexCover, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Solve(inst, Params{Epsilon: 0.25, Seed: 4, PrepRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !problems.Verify(problems.MinVertexCover, g, r.Solution) {
		t.Fatal("not a cover")
	}
	// Two P20s: MVC = 10 + 10.
	if r.Value > 25 {
		t.Fatalf("disconnected VC = %d", r.Value)
	}
}

func TestCoveringGreedyAblation(t *testing.T) {
	g := gen.Cycle(120)
	inst, err := problems.Build(problems.MinVertexCover, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Epsilon: 0.3, Seed: 5, PrepRuns: 2}
	p.Solve = solve.Options{ForceGreedy: true}
	r, err := Solve(inst, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Exact {
		t.Fatal("greedy-only run claimed exact")
	}
	if !problems.Verify(problems.MinVertexCover, g, r.Solution) {
		t.Fatal("greedy cover invalid")
	}
}

func TestCoveringIsolatedVertices(t *testing.T) {
	// Isolated vertices with a self-covering demand (x_v >= 1).
	b := ilp.NewBuilder(ilp.Covering, []int64{1, 1, 1})
	b.AddConstraint([]ilp.Term{{Var: 0, Coeff: 1}}, 1)
	b.AddConstraint([]ilp.Term{{Var: 2, Coeff: 1}}, 1)
	inst, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Solve(inst, Params{Epsilon: 0.3, Seed: 6, PrepRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Solution[0] || !r.Solution[2] {
		t.Fatal("forced singletons not taken")
	}
	if r.Solution[1] {
		t.Fatal("unconstrained variable taken")
	}
}

func TestCoveringSmallScaleLongCycleCarves(t *testing.T) {
	// Small scale on a long cycle: Phase-1 carving must actually fire and
	// fix some weight, and the result must stay within budget-ish bounds.
	g := gen.Cycle(1000)
	inst, err := problems.Build(problems.MinVertexCover, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Solve(inst, Params{Epsilon: 0.3, Seed: 7, Scale: 0.0005, PrepRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !problems.Verify(problems.MinVertexCover, g, r.Solution) {
		t.Fatal("not a cover")
	}
	if r.FixedWeight == 0 {
		t.Log("warning: no carving fired at this scale (acceptable but unexpected)")
	}
	// Feasible cover of a cycle is at least n/2.
	if r.Value < 500 {
		t.Fatalf("impossible cover size %d", r.Value)
	}
}
