package covering

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/ilp"
	"repro/internal/problems"
)

func build(t testing.TB, p problems.Problem, g *graph.Graph) *ilp.Instance {
	t.Helper()
	inst, err := problems.Build(p, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestDeriveStructure(t *testing.T) {
	d := derive(100000, Params{Epsilon: 0.2})
	base := 7 // ceil(log2(1/0.2)) alone
	if d.t <= base {
		t.Fatalf("covering t = %d should include log log n term", d.t)
	}
	if len(d.intervals) != d.t {
		t.Fatalf("intervals = %d, want t", len(d.intervals))
	}
	for i, iv := range d.intervals {
		if iv[1]-iv[0]+1 != 2*d.r {
			t.Fatalf("interval %d length %d != 2R", i, iv[1]-iv[0]+1)
		}
		if i > 0 && iv[1] >= d.intervals[i-1][0] {
			t.Fatalf("intervals overlap at %d", i)
		}
	}
}

func TestVCOnEvenCycle(t *testing.T) {
	g := gen.Cycle(200)
	inst := build(t, problems.MinVertexCover, g)
	eps := 0.25
	opt, err := problems.ExactOptimum(problems.MinVertexCover, g)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 4; seed++ {
		r, err := Solve(inst, Params{Epsilon: eps, Seed: seed, PrepRuns: 2})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if ok, j := inst.Feasible(r.Solution); !ok {
			t.Fatalf("seed %d: infeasible at %d", seed, j)
		}
		if !problems.Verify(problems.MinVertexCover, g, r.Solution) {
			t.Fatalf("seed %d: not a cover", seed)
		}
		if float64(r.Value) > (1+eps)*float64(opt) {
			t.Fatalf("seed %d: value %d > (1+eps)*opt (%d)", seed, r.Value, opt)
		}
		if r.Rounds <= 0 {
			t.Fatal("no rounds charged")
		}
	}
}

func TestVCOnTree(t *testing.T) {
	g := gen.CompleteDAryTree(2, 6) // 127 vertices
	inst := build(t, problems.MinVertexCover, g)
	eps := 0.25
	opt, _ := problems.ExactOptimum(problems.MinVertexCover, g)
	r, err := Solve(inst, Params{Epsilon: eps, Seed: 3, PrepRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !problems.Verify(problems.MinVertexCover, g, r.Solution) {
		t.Fatal("not a cover")
	}
	if float64(r.Value) > (1+eps)*float64(opt) {
		t.Fatalf("value %d > (1+eps)*%d", r.Value, opt)
	}
}

func TestMDSOnTree(t *testing.T) {
	g := gen.CompleteDAryTree(3, 3) // 40 vertices
	inst := build(t, problems.MinDominatingSet, g)
	eps := 0.3
	opt, _ := problems.ExactOptimum(problems.MinDominatingSet, g)
	r, err := Solve(inst, Params{Epsilon: eps, Seed: 4, PrepRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !problems.Verify(problems.MinDominatingSet, g, r.Solution) {
		t.Fatal("not dominating")
	}
	if float64(r.Value) > (1+eps)*float64(opt) {
		t.Fatalf("value %d > (1+eps)*%d", r.Value, opt)
	}
}

func TestMDSOnGrid(t *testing.T) {
	g := gen.Grid(7, 8)
	inst := build(t, problems.MinDominatingSet, g)
	r, err := Solve(inst, Params{Epsilon: 0.3, Seed: 5, PrepRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !problems.Verify(problems.MinDominatingSet, g, r.Solution) {
		t.Fatal("not dominating")
	}
	// No exact oracle here; sanity-check against the trivial bounds:
	// gamma(G) >= n/(1+maxdeg) = 56/5, and the solution is at most n.
	if r.Value < 11 || r.Value > 56 {
		t.Fatalf("implausible MDS value %d", r.Value)
	}
}

func TestKDistanceDominatingSet(t *testing.T) {
	// The Definition 1.3 example: k-distance dominating set; constraints are
	// radius-k balls, so the primal graph is G^2k-ish and dense.
	g := gen.Cycle(80)
	inst, err := problems.BuildK(2, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Solve(inst, Params{Epsilon: 0.3, Seed: 6, PrepRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !problems.VerifyK(problems.KDominatingSet, 2, g, r.Solution) {
		t.Fatal("not 2-dominating")
	}
	// gamma_2(C80) = 16; allow (1+eps) plus greedy slack.
	if r.Value > 26 {
		t.Fatalf("2-dominating value %d too large", r.Value)
	}
}

func TestSmallScaleStillFeasible(t *testing.T) {
	g := gen.Cycle(400)
	inst := build(t, problems.MinVertexCover, g)
	r, err := Solve(inst, Params{Epsilon: 0.3, Seed: 7, Scale: 0.002, PrepRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ok, j := inst.Feasible(r.Solution); !ok {
		t.Fatalf("infeasible at %d", j)
	}
}

func TestDeterministic(t *testing.T) {
	g := gen.Cycle(100)
	inst := build(t, problems.MinVertexCover, g)
	p := Params{Epsilon: 0.3, Seed: 11, PrepRuns: 2}
	r1, err1 := Solve(inst, p)
	r2, err2 := Solve(inst, p)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.Value != r2.Value || r1.Rounds != r2.Rounds {
		t.Fatal("nondeterministic")
	}
}

func TestWeightedCovering(t *testing.T) {
	// Star with cheap center: cover should prefer the center for MDS.
	g := gen.Star(20)
	w := make([]int64, 20)
	w[0] = 1
	for i := 1; i < 20; i++ {
		w[i] = 10
	}
	inst, err := problems.Build(problems.MinDominatingSet, g, w)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Solve(inst, Params{Epsilon: 0.2, Seed: 12, PrepRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !problems.Verify(problems.MinDominatingSet, g, r.Solution) {
		t.Fatal("not dominating")
	}
	if r.Value > 1 {
		t.Fatalf("weighted MDS = %d, want 1 (the center)", r.Value)
	}
}

func TestFixedWeightReported(t *testing.T) {
	g := gen.Cycle(400)
	inst := build(t, problems.MinVertexCover, g)
	r, err := Solve(inst, Params{Epsilon: 0.3, Seed: 13, Scale: 0.002, PrepRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.FixedWeight < 0 || r.FixedWeight > r.Value {
		t.Fatalf("fixed weight %d outside [0, %d]", r.FixedWeight, r.Value)
	}
	if r.NumRegions < 1 {
		t.Fatal("no regions")
	}
}

func BenchmarkCoveringVCCycle200(b *testing.B) {
	g := gen.Cycle(200)
	inst := build(b, problems.MinVertexCover, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Solve(inst, Params{Epsilon: 0.25, Seed: uint64(i), PrepRuns: 2})
	}
}
