package covering

import (
	"testing"

	"repro/internal/graph/gen"
	"repro/internal/problems"
	"repro/internal/solve"
)

func TestGrowCarveCoveringWindow(t *testing.T) {
	// Path P40, VC instance, centre 0, interval [3, 8]. The carve must pick
	// an odd j* in the window, fix the local cover on layers {j*, j*+1},
	// delete the crossing constraints (they become satisfied), and remove
	// radius <= j*.
	g := gen.Path(40)
	inst, err := problems.Build(problems.MinVertexCover, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := &state{
		inst:     inst,
		g:        g,
		alive:    make([]bool, 40),
		removed:  make([]bool, 40),
		solution: inst.NewSolution(),
		used:     make([]float64, inst.NumConstraints()),
		exact:    true,
		opt:      solve.Options{},
	}
	for i := range st.alive {
		st.alive[i] = true
	}
	if err := st.growCarveCovering([]int32{0}, 3, 8, testWorker()); err != nil {
		t.Fatal(err)
	}
	// Some interior must be removed and some weight fixed.
	removedCount := 0
	for _, r := range st.removed {
		if r {
			removedCount++
		}
	}
	if removedCount < 4 {
		t.Fatalf("removed %d vertices, want >= 4 (radius >= 3)", removedCount)
	}
	fixed := st.solution.CountOnes()
	if fixed == 0 {
		t.Fatal("carve fixed no assignment")
	}
	// The crossing edge at the removal boundary must be satisfied: the edge
	// between the last removed layer and the first alive one.
	boundary := removedCount // vertices 0..removedCount-1 removed on a path
	if boundary < 40 {
		if !st.solution[boundary-1] && !st.solution[boundary] {
			t.Fatalf("boundary edge %d-%d uncovered after carve", boundary-1, boundary)
		}
	}
}

func TestGrowCarveCoveringExhausted(t *testing.T) {
	g := gen.Path(5)
	inst, err := problems.Build(problems.MinVertexCover, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := &state{
		inst:     inst,
		g:        g,
		alive:    []bool{true, true, true, true, true},
		removed:  make([]bool, 5),
		solution: inst.NewSolution(),
		used:     make([]float64, inst.NumConstraints()),
		exact:    true,
	}
	if err := st.growCarveCovering([]int32{2}, 8, 12, testWorker()); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		if !st.removed[v] {
			t.Fatalf("vertex %d not removed in exhausted component", v)
		}
	}
	if st.solution.CountOnes() != 0 {
		t.Fatal("exhausted removal should fix nothing (handled in Phase 2)")
	}
}

func TestGrowCarveCoveringDeadSeed(t *testing.T) {
	g := gen.Path(5)
	inst, err := problems.Build(problems.MinVertexCover, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := &state{
		inst:     inst,
		g:        g,
		alive:    make([]bool, 5),
		removed:  make([]bool, 5),
		solution: inst.NewSolution(),
		used:     make([]float64, inst.NumConstraints()),
	}
	if err := st.growCarveCovering([]int32{2}, 1, 3, testWorker()); err != nil {
		t.Fatal(err)
	}
	for _, r := range st.removed {
		if r {
			t.Fatal("dead seed removed vertices")
		}
	}
}

func TestSmallIntervalEndToEndCovering(t *testing.T) {
	// Tiny scale on a long cycle so Phase-1 carving fires for real; result
	// must remain a valid cover.
	g := gen.Cycle(800)
	inst, err := problems.Build(problems.MinVertexCover, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Solve(inst, Params{Epsilon: 0.3, Seed: 9, Scale: 0.0005, PrepRuns: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !problems.Verify(problems.MinVertexCover, g, r.Solution) {
		t.Fatal("not a cover")
	}
	if r.Value < 400 {
		t.Fatalf("cycle cover %d < n/2", r.Value)
	}
}

// testWorker returns a fresh worker scratch for direct carve tests.
func testWorker() *worker { return newWorkers(1)[0] }
