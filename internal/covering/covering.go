// Package covering implements the paper's Theorem 1.3: a distributed
// (1+ε)-approximation for any covering integer linear program in the LOCAL
// model, running in O((log log n + log(1/ε))³·log(n)/ε) rounds with
// probability 1 - 1/poly(n).
//
// Structure (Section 5):
//
//   - Preparation: Θ(log ñ) independent sparse covers (Lemma C.2) of the
//     communication (primal) graph with λ = ln(21/20); every cluster C
//     computes W(Q^local_C, C) and the value of its (8tR)-radius
//     neighborhood, driving its sampling rate.
//   - Phase 1: t = ⌈log log n + log(1/ε) + 8⌉ iterations (no Phase-2
//     shortcut — bad vertices cannot be tolerated for covering);
//     Grow-and-Carve-Covering (Algorithm 7) finds the odd layer pair
//     S_{j*} ∪ S_{j*+1} with the cheapest local covering weight, FIXES the
//     local solution on that pair (permanently assigning those variables
//     1), which satisfies — and therefore deletes — every constraint
//     crossing the removal boundary, then removes the interior.
//   - Phase 2 (final): a sparse cover with λ = ln(1+ε/5) on the residual;
//     every cover cluster solves its local covering instance (Lemma C.3)
//     against the residual demands, the removed components do the same, and
//     the union (bitwise OR) of all local solutions is returned.
package covering

import (
	"context"
	"math"
	"strconv"

	"repro/internal/graph"
	"repro/internal/ilp"
	"repro/internal/ldd"
	"repro/internal/local"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/solve"
	"repro/internal/xrand"
)

// coverLabel salts the per-cluster sampling streams.
const coverLabel = 0xc04e4

// Params configures a Theorem 1.3 run.
type Params struct {
	// Epsilon is the approximation parameter: the output is a feasible
	// solution of weight <= (1+ε)·OPT w.h.p. (given exact local solves).
	Epsilon float64
	// NTilde is the known polynomial upper bound on max(|V|, W(Q*, V));
	// zero means n.
	NTilde int
	// Seed drives all randomness.
	Seed uint64
	// Scale multiplies the paper's radius constant (see ldd.Params.Scale).
	Scale float64
	// PrepRuns overrides the number of preparation covers (paper: 16 ln ñ).
	PrepRuns int
	// Solve tunes the local optimizers.
	Solve solve.Options
	// Workers bounds the worker pool for the independent preparation
	// sparse covers and the Phase-2 per-region local solves. <= 0 means
	// GOMAXPROCS; 1 forces the sequential path. Seeded runs are
	// bit-identical for every worker count: every task's randomness is
	// derived from (Seed, task id) and results merge in task order.
	Workers int
}

// Result is the outcome of a run.
type Result struct {
	Solution ilp.Solution
	Value    int64
	Rounds   int
	// Exact reports whether every local solve used an exact method.
	Exact bool
	// FixedWeight is the weight committed during Phase-1 carving (the
	// ε/2-loss term of Lemma 5.3).
	FixedWeight int64
	// NumRegions is the number of final regions solved in Phase 2.
	NumRegions int
}

type derived struct {
	t         int
	r         int
	nTilde    int
	ln        float64
	intervals [][2]int // length-2R intervals, i = 1..t
	prepRuns  int
	estRadius int
}

func derive(n int, p Params) derived {
	nTilde := p.NTilde
	if nTilde < n {
		nTilde = n
	}
	eps := clampEps(p.Epsilon)
	scale := p.Scale
	if scale <= 0 {
		scale = 1
	}
	ln := math.Log(float64(nTilde) + 3)
	t := int(math.Ceil(math.Log2(ln) + math.Log2(1/eps) + 8))
	if t < 1 {
		t = 1
	}
	r := int(math.Ceil(200 * float64(t) * ln / eps * scale))
	if r < 2 {
		r = 2
	}
	d := derived{t: t, r: r, nTilde: nTilde, ln: ln, estRadius: 8 * t * r}
	// I_i = [(t-i+1)·2R + 1, (t-i+2)·2R], i = 1..t.
	for i := 1; i <= t; i++ {
		a := (t-i+1)*2*r + 1
		b := (t - i + 2) * 2 * r
		d.intervals = append(d.intervals, [2]int{a, b})
	}
	d.prepRuns = p.PrepRuns
	if d.prepRuns <= 0 {
		d.prepRuns = int(math.Ceil(16 * ln))
	}
	return d
}

func clampEps(eps float64) float64 {
	if eps <= 0 || eps > 1 {
		return 0.5
	}
	return eps
}

type prepCluster struct {
	members []int32
	wC      int64
	wSC     int64
}

// state carries the mutable run state shared by the carving steps.
type state struct {
	inst     *ilp.Instance
	g        *graph.Graph
	alive    []bool
	removed  []bool
	solution ilp.Solution
	used     []float64 // committed coverage per constraint
	exact    bool
	opt      solve.Options
}

// worker is the per-goroutine scratch for the fan-out steps: a traversal
// workspace plus the dense remaps and buffers that replace the per-call
// hash maps of the local-ILP extraction. Read-only state (inst, g, alive
// snapshots, used snapshots) is shared; everything mutable lives here.
type worker struct {
	lws   *ldd.Workspace // also provides the traversal workspace (lws.G)
	rmap  graph.Remap    // region vertex -> local variable index
	cons  graph.Remap    // constraint-id marks
	vmark graph.Remap    // solution-membership marks (grow-and-carve)
	ball  []int32
	vars  []int32
	wts   []int64
	all   []int32
	terms []ilp.Term
}

func newWorkers(k int) []*worker {
	out := make([]*worker, k)
	for i := range out {
		out[i] = &worker{lws: ldd.AcquireWorkspace()}
	}
	return out
}

func releaseWorkers(wks []*worker) {
	for _, wk := range wks {
		ldd.ReleaseWorkspace(wk.lws)
	}
}

// fix permanently assigns variable v = 1 and updates the residual demands.
func (s *state) fix(v int32) {
	if s.solution[v] {
		return
	}
	s.solution[v] = true
	for _, cj := range s.inst.ConstraintsOf(int(v)) {
		s.used[cj] += coeffOf(s.inst, int(cj), int(v))
	}
}

// Solve runs the Theorem 1.3 algorithm on a covering instance.
func Solve(inst *ilp.Instance, p Params) (*Result, error) {
	return SolveCtx(context.Background(), inst, p)
}

// SolveCtx is Solve with cancellation: the context is checked between the
// preparation fan-out, each Phase-1 carving iteration (and each carve
// within it), and the Phase-2 per-region fan-out; a cancelled run returns
// ctx.Err() promptly and releases its pooled workspaces.
func SolveCtx(ctx context.Context, inst *ilp.Instance, p Params) (*Result, error) {
	g := inst.Hypergraph().Primal()
	n := g.N()
	d := derive(n, p)
	eps := clampEps(p.Epsilon)
	rootRNG := xrand.New(p.Seed)
	var rc local.RoundCounter
	// Phase timings go only into the trace carried by ctx (nil for
	// untraced runs); the Result is bit-identical either way.
	tr := obs.FromContext(ctx)

	st := &state{
		inst:     inst,
		g:        g,
		alive:    make([]bool, n),
		removed:  make([]bool, n),
		solution: inst.NewSolution(),
		used:     make([]float64, inst.NumConstraints()),
		exact:    true,
		opt:      p.Solve,
	}
	for i := range st.alive {
		st.alive[i] = true
	}

	// --- Preparation: sparse covers for weight estimates ------------------
	// The Θ(log ñ) covers are mutually independent (each has its own split
	// of the root seed), and so are the per-cluster weight estimates, so
	// both fan out across the worker pool. Merging in (run, cluster) order
	// keeps the cluster indexing — and hence the Phase-1 sampling streams —
	// bit-identical to the sequential path.
	workers := par.Workers(p.Workers)
	wks := newWorkers(workers)
	defer releaseWorkers(wks)

	endPrep := tr.StartPhase("preparation")
	lambdaPrep := math.Log(21.0 / 20.0)
	prepSeeds := make([]uint64, d.prepRuns)
	for run := range prepSeeds {
		prepSeeds[run] = rootRNG.Split(uint64(run) + 0xc0e).Uint64()
	}
	covs := make([]*ldd.Cover, d.prepRuns)
	if err := par.ForEachCtx(ctx, workers, d.prepRuns, func(w, run int) {
		covs[run] = ldd.SparseCoverWS(g, nil, ldd.ENParams{
			Lambda: lambdaPrep,
			NTilde: d.nTilde,
			Seed:   prepSeeds[run],
		}, wks[w].lws)
	}); err != nil {
		return nil, err
	}
	var members [][]int32
	for _, cov := range covs {
		for _, m := range cov.Clusters {
			if len(m) > 0 {
				members = append(members, m)
			}
		}
	}
	clusters := make([]prepCluster, len(members))
	prepErrs := make([]error, len(members))
	prepExact := make([]bool, len(members))
	if err := par.ForEachCtx(ctx, workers, len(members), func(w, i int) {
		wk := wks[w]
		pc := prepCluster{members: members[i]}
		var ex1, ex2 bool
		pc.wC, ex1, prepErrs[i] = st.localValue(members[i])
		if prepErrs[i] != nil {
			return
		}
		sc := g.BallFromSetWithWorkspace(wk.lws.G, members[i], d.estRadius, nil)
		pc.wSC, ex2, prepErrs[i] = st.localValue(sc)
		prepExact[i] = ex1 && ex2
		clusters[i] = pc
	}); err != nil {
		return nil, err
	}
	rc.StartPhase()
	for _, cov := range covs {
		rc.Charge(cov.Rounds)
	}
	for i := range clusters {
		if prepErrs[i] != nil {
			return nil, prepErrs[i]
		}
		if !prepExact[i] {
			st.exact = false
		}
		rc.Charge(min(d.estRadius, n))
	}
	rc.EndPhase()
	endPrep()

	// --- Phase 1: t carving iterations -------------------------------------
	// Unlike the decomposition's Phase 1, each carve here fixes variables
	// and updates the residual demands that the next carve's local solve
	// sees, so the iteration is inherently sequential; it runs on worker
	// 0's scratch.
	for i := 1; i <= d.t; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		interval := d.intervals[i-1]
		endCarve := func() {}
		if tr != nil {
			endCarve = tr.StartPhase("carve-" + strconv.Itoa(i))
		}
		rc.StartPhase()
		for ci := range clusters {
			pc := clusters[ci]
			if pc.wSC <= 0 || pc.wC <= 0 {
				continue
			}
			prob := math.Exp2(float64(i)) * float64(pc.wC) / float64(pc.wSC)
			if prob > 1 {
				prob = 1
			}
			if !xrand.Stream(p.Seed, ci, uint64(coverLabel+i)).Bernoulli(prob) {
				continue
			}
			if err := ctx.Err(); err != nil {
				endCarve()
				return nil, err
			}
			if err := st.growCarveCovering(pc.members, interval[0], interval[1], wks[0]); err != nil {
				endCarve()
				return nil, err
			}
			rc.Charge(interval[1])
		}
		rc.EndPhase()
		endCarve()
	}
	fixedWeight := inst.Value(st.solution)

	// --- Phase 2: sparse cover + per-region local solves --------------------
	endP2 := tr.StartPhase("phase2-solves")
	defer endP2()
	lambdaFinal := math.Log1p(eps / 5)
	cov, err := ldd.SparseCoverCtx(ctx, g, st.alive, ldd.ENParams{
		Lambda: lambdaFinal,
		NTilde: d.nTilde,
		Seed:   rootRNG.Split(0xf17a1).Uint64(),
	})
	if err != nil {
		return nil, err
	}
	rc.Charge(cov.Rounds)

	// Regions: residual sparse-cover clusters plus removed components. All
	// local solves run against the Phase-1 residual demands and are OR-ed
	// (Lemma C.3); overlap cost is the geometric multiplicity.
	var regions [][]int32
	regions = append(regions, cov.Clusters...)
	comp, count := g.ComponentsAlive(st.removed)
	removedRegions := make([][]int32, count)
	for v := 0; v < n; v++ {
		if st.removed[v] {
			removedRegions[comp[v]] = append(removedRegions[comp[v]], int32(v))
		}
	}
	regions = append(regions, removedRegions...)

	// The per-region local solves all run against the same Phase-1
	// residual snapshot, so they fan out across the pool; the fixes are
	// applied afterwards in region order.
	usedSnapshot := append([]float64(nil), st.used...)
	chosen := make([][]int32, len(regions))
	regionErrs := make([]error, len(regions))
	regionExact := make([]bool, len(regions))
	if err := par.ForEachCtx(ctx, workers, len(regions), func(w, i int) {
		chosen[i], regionExact[i], regionErrs[i] = st.localCoverAgainst(regions[i], usedSnapshot, wks[w])
	}); err != nil {
		return nil, err
	}
	rc.StartPhase()
	for i := range regions {
		if regionErrs[i] != nil {
			return nil, regionErrs[i]
		}
		if !regionExact[i] {
			st.exact = false
		}
		rc.Charge(cov.Rounds)
	}
	rc.EndPhase()
	for _, picks := range chosen {
		for _, v := range picks {
			st.fix(v)
		}
	}

	return &Result{
		Solution:    st.solution,
		Value:       inst.Value(st.solution),
		Rounds:      rc.Total(),
		Exact:       st.exact,
		FixedWeight: fixedWeight,
		NumRegions:  len(regions),
	}, nil
}

// localValue computes W(Q^local_S, S): the optimal covering weight of the
// constraints fully inside S (against the original demands — preparation
// happens before any fixing). Safe for concurrent use: it only reads the
// shared state and reports exactness to the caller.
func (s *state) localValue(members []int32) (int64, bool, error) {
	_, val, m, err := solve.CoveringLocal(s.inst, members, s.opt)
	if err != nil {
		return 0, false, err
	}
	return val, m.Exact(), nil
}

// growCarveCovering implements Algorithm 7 for a cluster seed set. It
// mutates the run state and therefore always runs sequentially, on the
// caller's scratch.
func (s *state) growCarveCovering(seed []int32, a, b int, wk *worker) error {
	layers := s.g.BallLayersFromSetWithWorkspace(wk.lws.G, seed, b, s.alive)
	if layers == nil {
		return nil
	}
	if len(layers) <= a {
		// Component exhausted before the window: remove it whole; its
		// constraints are handled by the removed-region solve in Phase 2.
		for _, l := range layers {
			for _, v := range l {
				s.alive[v] = false
				s.removed[v] = true
			}
		}
		return nil
	}
	ball := wk.ball[:0]
	for _, l := range layers {
		ball = append(ball, l...)
	}
	wk.ball = ball
	// Q^local of the gathered ball, against current residual demands.
	sol, exact, err := s.localCoverAgainst(ball, s.used, wk)
	if err != nil {
		return err
	}
	if !exact {
		s.exact = false
	}
	inSol := &wk.vmark
	inSol.Reset(s.g.N())
	for _, v := range sol {
		inSol.Set(v, 1)
	}
	pairWeight := func(j int) int64 {
		var w int64
		for _, idx := range []int{j, j + 1} {
			if idx >= len(layers) {
				continue
			}
			for _, v := range layers[idx] {
				if inSol.Has(v) {
					w += s.inst.Weight(int(v))
				}
			}
		}
		return w
	}
	// Odd j* in [a, b] minimizing the pair weight.
	jStar, best := -1, int64(-1)
	start := a
	if start%2 == 0 {
		start++
	}
	for j := start; j <= b && j < len(layers); j += 2 {
		w := pairWeight(j)
		if best == -1 || w < best {
			best = w
			jStar = j
		}
	}
	if jStar == -1 {
		for _, l := range layers {
			for _, v := range l {
				s.alive[v] = false
				s.removed[v] = true
			}
		}
		return nil
	}
	// Fix the local solution on S_{j*} ∪ S_{j*+1}: every constraint crossing
	// the removal boundary lies inside the pair (constraints are cliques in
	// the primal graph) and is satisfied by the fixed assignment.
	for _, idx := range []int{jStar, jStar + 1} {
		if idx >= len(layers) {
			continue
		}
		for _, v := range layers[idx] {
			if inSol.Has(v) {
				s.fix(v)
			}
		}
	}
	// Remove the interior N^{j*}.
	for j := 0; j <= jStar && j < len(layers); j++ {
		for _, v := range layers[j] {
			s.alive[v] = false
			s.removed[v] = true
		}
	}
	return nil
}

// localCoverAgainst solves the covering problem restricted to the region:
// constraints with positive residual demand (w.r.t. used) whose variables
// all lie inside region ∪ {already-fixed vertices}; fixed vertices are free
// (weight 0). Returns the chosen vertices (global ids) and whether the
// local solve was exact. Safe for concurrent use across distinct workers:
// shared state is only read, and all scratch lives in wk.
func (s *state) localCoverAgainst(region []int32, used []float64, wk *worker) ([]int32, bool, error) {
	inRegion := &wk.rmap
	inRegion.Reset(s.g.N())
	vars := wk.vars[:0]
	for _, v := range region {
		if inRegion.Has(v) {
			continue
		}
		inRegion.Set(v, int32(len(vars)))
		vars = append(vars, v)
	}
	wk.vars = vars
	weights := wk.wts[:0]
	for _, v := range vars {
		w := s.inst.Weight(int(v))
		if s.solution[v] {
			w = 0
		}
		weights = append(weights, w)
	}
	wk.wts = weights
	b := ilp.NewBuilder(ilp.Covering, weights)
	seen := &wk.cons
	seen.Reset(s.inst.NumConstraints())
	for _, v := range vars {
		for _, cj := range s.inst.ConstraintsOf(int(v)) {
			if seen.Has(cj) {
				continue
			}
			seen.Set(cj, 1)
			res := s.inst.Constraint(int(cj)).B - used[cj]
			if res <= 1e-9 {
				continue
			}
			inside := true
			terms := wk.terms[:0]
			for _, t := range s.inst.Constraint(int(cj)).Terms {
				idx, ok := inRegion.Get(int32(t.Var))
				if !ok {
					inside = false
					break
				}
				terms = append(terms, ilp.Term{Var: int(idx), Coeff: t.Coeff})
			}
			wk.terms = terms
			if inside && len(terms) > 0 {
				b.AddConstraint(terms, res)
			}
		}
	}
	localInst, err := b.Build()
	if err != nil {
		return nil, false, err
	}
	all := wk.all[:0]
	for i := range vars {
		all = append(all, int32(i))
	}
	wk.all = all
	sol, _, m, err := solve.CoveringLocal(localInst, all, s.opt)
	if err != nil {
		return nil, false, err
	}
	var out []int32
	for i, set := range sol {
		if set {
			out = append(out, vars[i])
		}
	}
	return out, m.Exact(), nil
}

func coeffOf(inst *ilp.Instance, j, v int) float64 {
	for _, t := range inst.Constraint(j).Terms {
		if t.Var == v {
			return t.Coeff
		}
	}
	return 0
}
