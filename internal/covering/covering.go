// Package covering implements the paper's Theorem 1.3: a distributed
// (1+ε)-approximation for any covering integer linear program in the LOCAL
// model, running in O((log log n + log(1/ε))³·log(n)/ε) rounds with
// probability 1 - 1/poly(n).
//
// Structure (Section 5):
//
//   - Preparation: Θ(log ñ) independent sparse covers (Lemma C.2) of the
//     communication (primal) graph with λ = ln(21/20); every cluster C
//     computes W(Q^local_C, C) and the value of its (8tR)-radius
//     neighborhood, driving its sampling rate.
//   - Phase 1: t = ⌈log log n + log(1/ε) + 8⌉ iterations (no Phase-2
//     shortcut — bad vertices cannot be tolerated for covering);
//     Grow-and-Carve-Covering (Algorithm 7) finds the odd layer pair
//     S_{j*} ∪ S_{j*+1} with the cheapest local covering weight, FIXES the
//     local solution on that pair (permanently assigning those variables
//     1), which satisfies — and therefore deletes — every constraint
//     crossing the removal boundary, then removes the interior.
//   - Phase 2 (final): a sparse cover with λ = ln(1+ε/5) on the residual;
//     every cover cluster solves its local covering instance (Lemma C.3)
//     against the residual demands, the removed components do the same, and
//     the union (bitwise OR) of all local solutions is returned.
package covering

import (
	"math"

	"repro/internal/graph"
	"repro/internal/ilp"
	"repro/internal/ldd"
	"repro/internal/local"
	"repro/internal/solve"
	"repro/internal/xrand"
)

// coverLabel salts the per-cluster sampling streams.
const coverLabel = 0xc04e4

// Params configures a Theorem 1.3 run.
type Params struct {
	// Epsilon is the approximation parameter: the output is a feasible
	// solution of weight <= (1+ε)·OPT w.h.p. (given exact local solves).
	Epsilon float64
	// NTilde is the known polynomial upper bound on max(|V|, W(Q*, V));
	// zero means n.
	NTilde int
	// Seed drives all randomness.
	Seed uint64
	// Scale multiplies the paper's radius constant (see ldd.Params.Scale).
	Scale float64
	// PrepRuns overrides the number of preparation covers (paper: 16 ln ñ).
	PrepRuns int
	// Solve tunes the local optimizers.
	Solve solve.Options
}

// Result is the outcome of a run.
type Result struct {
	Solution ilp.Solution
	Value    int64
	Rounds   int
	// Exact reports whether every local solve used an exact method.
	Exact bool
	// FixedWeight is the weight committed during Phase-1 carving (the
	// ε/2-loss term of Lemma 5.3).
	FixedWeight int64
	// NumRegions is the number of final regions solved in Phase 2.
	NumRegions int
}

type derived struct {
	t         int
	r         int
	nTilde    int
	ln        float64
	intervals [][2]int // length-2R intervals, i = 1..t
	prepRuns  int
	estRadius int
}

func derive(n int, p Params) derived {
	nTilde := p.NTilde
	if nTilde < n {
		nTilde = n
	}
	eps := clampEps(p.Epsilon)
	scale := p.Scale
	if scale <= 0 {
		scale = 1
	}
	ln := math.Log(float64(nTilde) + 3)
	t := int(math.Ceil(math.Log2(ln) + math.Log2(1/eps) + 8))
	if t < 1 {
		t = 1
	}
	r := int(math.Ceil(200 * float64(t) * ln / eps * scale))
	if r < 2 {
		r = 2
	}
	d := derived{t: t, r: r, nTilde: nTilde, ln: ln, estRadius: 8 * t * r}
	// I_i = [(t-i+1)·2R + 1, (t-i+2)·2R], i = 1..t.
	for i := 1; i <= t; i++ {
		a := (t-i+1)*2*r + 1
		b := (t - i + 2) * 2 * r
		d.intervals = append(d.intervals, [2]int{a, b})
	}
	d.prepRuns = p.PrepRuns
	if d.prepRuns <= 0 {
		d.prepRuns = int(math.Ceil(16 * ln))
	}
	return d
}

func clampEps(eps float64) float64 {
	if eps <= 0 || eps > 1 {
		return 0.5
	}
	return eps
}

type prepCluster struct {
	members []int32
	wC      int64
	wSC     int64
}

// state carries the mutable run state shared by the carving steps.
type state struct {
	inst     *ilp.Instance
	g        *graph.Graph
	alive    []bool
	removed  []bool
	solution ilp.Solution
	used     []float64 // committed coverage per constraint
	exact    bool
	opt      solve.Options
}

// fix permanently assigns variable v = 1 and updates the residual demands.
func (s *state) fix(v int32) {
	if s.solution[v] {
		return
	}
	s.solution[v] = true
	for _, cj := range s.inst.ConstraintsOf(int(v)) {
		s.used[cj] += coeffOf(s.inst, int(cj), int(v))
	}
}

// Solve runs the Theorem 1.3 algorithm on a covering instance.
func Solve(inst *ilp.Instance, p Params) (*Result, error) {
	g := inst.Hypergraph().Primal()
	n := g.N()
	d := derive(n, p)
	eps := clampEps(p.Epsilon)
	rootRNG := xrand.New(p.Seed)
	var rc local.RoundCounter

	st := &state{
		inst:     inst,
		g:        g,
		alive:    make([]bool, n),
		removed:  make([]bool, n),
		solution: inst.NewSolution(),
		used:     make([]float64, inst.NumConstraints()),
		exact:    true,
		opt:      p.Solve,
	}
	for i := range st.alive {
		st.alive[i] = true
	}

	// --- Preparation: sparse covers for weight estimates ------------------
	lambdaPrep := math.Log(21.0 / 20.0)
	var clusters []prepCluster
	rc.StartPhase()
	for run := 0; run < d.prepRuns; run++ {
		cov := ldd.SparseCover(g, nil, ldd.ENParams{
			Lambda: lambdaPrep,
			NTilde: d.nTilde,
			Seed:   rootRNG.Split(uint64(run) + 0xc0e).Uint64(),
		})
		rc.Charge(cov.Rounds)
		for _, members := range cov.Clusters {
			if len(members) == 0 {
				continue
			}
			pc := prepCluster{members: members}
			var err error
			pc.wC, err = st.localValue(members)
			if err != nil {
				return nil, err
			}
			sc := ballFromSet(g, members, d.estRadius, nil)
			rc.Charge(min(d.estRadius, n))
			pc.wSC, err = st.localValue(sc)
			if err != nil {
				return nil, err
			}
			clusters = append(clusters, pc)
		}
	}
	rc.EndPhase()

	// --- Phase 1: t carving iterations -------------------------------------
	for i := 1; i <= d.t; i++ {
		interval := d.intervals[i-1]
		rc.StartPhase()
		for ci, pc := range clusters {
			if pc.wSC <= 0 || pc.wC <= 0 {
				continue
			}
			prob := math.Exp2(float64(i)) * float64(pc.wC) / float64(pc.wSC)
			if prob > 1 {
				prob = 1
			}
			if !xrand.Stream(p.Seed, ci, uint64(coverLabel+i)).Bernoulli(prob) {
				continue
			}
			if err := st.growCarveCovering(pc.members, interval[0], interval[1]); err != nil {
				return nil, err
			}
			rc.Charge(interval[1])
		}
		rc.EndPhase()
	}
	fixedWeight := inst.Value(st.solution)

	// --- Phase 2: sparse cover + per-region local solves --------------------
	lambdaFinal := math.Log1p(eps / 5)
	cov := ldd.SparseCover(g, st.alive, ldd.ENParams{
		Lambda: lambdaFinal,
		NTilde: d.nTilde,
		Seed:   rootRNG.Split(0xf17a1).Uint64(),
	})
	rc.Charge(cov.Rounds)

	// Regions: residual sparse-cover clusters plus removed components. All
	// local solves run against the Phase-1 residual demands and are OR-ed
	// (Lemma C.3); overlap cost is the geometric multiplicity.
	var regions [][]int32
	regions = append(regions, cov.Clusters...)
	comp, count := g.ComponentsAlive(st.removed)
	removedRegions := make([][]int32, count)
	for v := 0; v < n; v++ {
		if st.removed[v] {
			removedRegions[comp[v]] = append(removedRegions[comp[v]], int32(v))
		}
	}
	regions = append(regions, removedRegions...)

	usedSnapshot := append([]float64(nil), st.used...)
	var chosen [][]int32
	rc.StartPhase()
	for _, region := range regions {
		picks, err := st.localCoverAgainst(region, usedSnapshot)
		if err != nil {
			return nil, err
		}
		chosen = append(chosen, picks)
		rc.Charge(cov.Rounds)
	}
	rc.EndPhase()
	for _, picks := range chosen {
		for _, v := range picks {
			st.fix(v)
		}
	}

	return &Result{
		Solution:    st.solution,
		Value:       inst.Value(st.solution),
		Rounds:      rc.Total(),
		Exact:       st.exact,
		FixedWeight: fixedWeight,
		NumRegions:  len(regions),
	}, nil
}

// localValue computes W(Q^local_S, S): the optimal covering weight of the
// constraints fully inside S (against the original demands — preparation
// happens before any fixing).
func (s *state) localValue(members []int32) (int64, error) {
	_, val, m, err := solve.CoveringLocal(s.inst, members, s.opt)
	if err != nil {
		return 0, err
	}
	if !m.Exact() {
		s.exact = false
	}
	return val, nil
}

// growCarveCovering implements Algorithm 7 for a cluster seed set.
func (s *state) growCarveCovering(seed []int32, a, b int) error {
	layers := ballLayersFromSet(s.g, seed, b, s.alive)
	if layers == nil {
		return nil
	}
	if len(layers) <= a {
		// Component exhausted before the window: remove it whole; its
		// constraints are handled by the removed-region solve in Phase 2.
		for _, l := range layers {
			for _, v := range l {
				s.alive[v] = false
				s.removed[v] = true
			}
		}
		return nil
	}
	var ball []int32
	for _, l := range layers {
		ball = append(ball, l...)
	}
	// Q^local of the gathered ball, against current residual demands.
	sol, err := s.localCoverAgainst(ball, s.used)
	if err != nil {
		return err
	}
	inSol := make(map[int32]bool, len(sol))
	for _, v := range sol {
		inSol[v] = true
	}
	pairWeight := func(j int) int64 {
		var w int64
		for _, idx := range []int{j, j + 1} {
			if idx >= len(layers) {
				continue
			}
			for _, v := range layers[idx] {
				if inSol[v] {
					w += s.inst.Weight(int(v))
				}
			}
		}
		return w
	}
	// Odd j* in [a, b] minimizing the pair weight.
	jStar, best := -1, int64(-1)
	start := a
	if start%2 == 0 {
		start++
	}
	for j := start; j <= b && j < len(layers); j += 2 {
		w := pairWeight(j)
		if best == -1 || w < best {
			best = w
			jStar = j
		}
	}
	if jStar == -1 {
		for _, l := range layers {
			for _, v := range l {
				s.alive[v] = false
				s.removed[v] = true
			}
		}
		return nil
	}
	// Fix the local solution on S_{j*} ∪ S_{j*+1}: every constraint crossing
	// the removal boundary lies inside the pair (constraints are cliques in
	// the primal graph) and is satisfied by the fixed assignment.
	for _, idx := range []int{jStar, jStar + 1} {
		if idx >= len(layers) {
			continue
		}
		for _, v := range layers[idx] {
			if inSol[v] {
				s.fix(v)
			}
		}
	}
	// Remove the interior N^{j*}.
	for j := 0; j <= jStar && j < len(layers); j++ {
		for _, v := range layers[j] {
			s.alive[v] = false
			s.removed[v] = true
		}
	}
	return nil
}

// localCoverAgainst solves the covering problem restricted to the region:
// constraints with positive residual demand (w.r.t. used) whose variables
// all lie inside region ∪ {already-fixed vertices}; fixed vertices are free
// (weight 0). Returns the chosen vertices (global ids).
func (s *state) localCoverAgainst(region []int32, used []float64) ([]int32, error) {
	inRegion := make(map[int32]int, len(region))
	vars := make([]int32, 0, len(region))
	for _, v := range region {
		if _, dup := inRegion[v]; dup {
			continue
		}
		inRegion[v] = len(vars)
		vars = append(vars, v)
	}
	weights := make([]int64, len(vars))
	for i, v := range vars {
		weights[i] = s.inst.Weight(int(v))
		if s.solution[v] {
			weights[i] = 0
		}
	}
	b := ilp.NewBuilder(ilp.Covering, weights)
	seen := make(map[int32]bool)
	for _, v := range vars {
		for _, cj := range s.inst.ConstraintsOf(int(v)) {
			if seen[cj] {
				continue
			}
			seen[cj] = true
			res := s.inst.Constraint(int(cj)).B - used[cj]
			if res <= 1e-9 {
				continue
			}
			inside := true
			var terms []ilp.Term
			for _, t := range s.inst.Constraint(int(cj)).Terms {
				idx, ok := inRegion[int32(t.Var)]
				if !ok {
					inside = false
					break
				}
				terms = append(terms, ilp.Term{Var: idx, Coeff: t.Coeff})
			}
			if inside && len(terms) > 0 {
				b.AddConstraint(terms, res)
			}
		}
	}
	localInst, err := b.Build()
	if err != nil {
		return nil, err
	}
	all := make([]int32, len(vars))
	for i := range all {
		all[i] = int32(i)
	}
	sol, _, m, err := solve.CoveringLocal(localInst, all, s.opt)
	if err != nil {
		return nil, err
	}
	if !m.Exact() {
		s.exact = false
	}
	var out []int32
	for i, set := range sol {
		if set {
			out = append(out, vars[i])
		}
	}
	return out, nil
}

func coeffOf(inst *ilp.Instance, j, v int) float64 {
	for _, t := range inst.Constraint(j).Terms {
		if t.Var == v {
			return t.Coeff
		}
	}
	return 0
}

// ballFromSet and ballLayersFromSet mirror the packing package's helpers.
func ballFromSet(g *graph.Graph, seed []int32, radius int, alive []bool) []int32 {
	layers := ballLayersFromSet(g, seed, radius, alive)
	var out []int32
	for _, l := range layers {
		out = append(out, l...)
	}
	return out
}

func ballLayersFromSet(g *graph.Graph, seed []int32, radius int, alive []bool) [][]int32 {
	seen := make(map[int32]bool, len(seed)*4)
	var layer0 []int32
	for _, s := range seed {
		if seen[s] || (alive != nil && !alive[s]) {
			continue
		}
		seen[s] = true
		layer0 = append(layer0, s)
	}
	if len(layer0) == 0 {
		return nil
	}
	layers := [][]int32{layer0}
	frontier := layer0
	for dd := 0; dd < radius && len(frontier) > 0; dd++ {
		var next []int32
		for _, u := range frontier {
			for _, w := range g.Neighbors(int(u)) {
				if seen[w] || (alive != nil && !alive[w]) {
					continue
				}
				seen[w] = true
				next = append(next, w)
			}
		}
		if len(next) == 0 {
			break
		}
		layers = append(layers, next)
		frontier = next
	}
	return layers
}
