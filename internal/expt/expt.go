// Package expt is the experiment harness: one function per experiment in
// the index of DESIGN.md (E1–E14), each regenerating the corresponding
// "table" of the reproduction. The paper is a theory paper with no
// empirical tables of its own, so each experiment measures the quantity a
// theorem bounds and reports whether the claimed shape holds (see
// EXPERIMENTS.md for the recorded outcomes).
//
// Every experiment takes a Config and returns a Table; cmd/experiments
// renders them to stdout, and bench_test.go at the repository root exposes
// one testing.B target per experiment.
package expt

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Config tunes an experiment run.
type Config struct {
	// Seed is the root seed; all experiments are deterministic given it.
	Seed uint64
	// Quick shrinks trial counts and graph sizes (used by the benchmark
	// targets so `go test -bench=.` completes in minutes).
	Quick bool
	// Ctx bounds the run (nil means context.Background()): experiments
	// that invoke algorithms through the registry stop at its deadline.
	Ctx context.Context
}

func (c Config) trials(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	// Notes carries the interpretation: the claim being tested and whether
	// the observed shape matches.
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Note appends an interpretation line.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Experiment is a registry entry.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) *Table
}

// All returns the registry in ID order.
func All() []Experiment {
	exps := []Experiment{
		{"E1", "LDD quality: unclustered fraction and diameter (Thm 1.1)", E1LDDQuality},
		{"E2", "whp vs expectation on the Claim C.1 family", E2WHPFailure},
		{"E3", "MPX edge-cut failure on the Claim C.2 family", E3MPXFailure},
		{"E4", "packing (1-eps) approximation ratios (Thm 1.2)", E4PackingRatio},
		{"E5", "covering (1+eps) approximation ratios (Thm 1.3)", E5CoveringRatio},
		{"E6", "round complexity scaling in 1/eps (Chang-Li vs GKM)", E6RoundScalingEps},
		{"E7", "round complexity scaling in n (Chang-Li vs GKM)", E7RoundScalingN},
		{"E8", "Section 1.6 blackbox boost", E8Blackbox},
		{"E9", "sparse cover multiplicity (Lemma C.2)", E9SparseCover},
		{"E10", "lower-bound indistinguishability (Thm 1.4 / App. B)", E10LowerBound},
		{"E11", "k-distance dominating set (Def. 1.3 example)", E11KDomSet},
		{"E12", "concentration lemmas A.1-A.2 empirical tails", E12Concentration},
		{"E13", "spanner size tail (Sec 6 / FGdV22 open question)", E13SpannerTail},
		{"E14", "unified algorithm registry sweep", E14RegistrySweep},
	}
	sort.Slice(exps, func(i, j int) bool { return lessID(exps[i].ID, exps[j].ID) })
	return exps
}

// Lookup finds an experiment by (case-insensitive) id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

func lessID(a, b string) bool {
	// E2 < E10 numerically.
	var na, nb int
	fmt.Sscanf(a, "E%d", &na)
	fmt.Sscanf(b, "E%d", &nb)
	return na < nb
}

// f formats a float compactly.
func f(x float64) string {
	return fmt.Sprintf("%.4g", x)
}

// d formats an int.
func d(x int) string { return fmt.Sprintf("%d", x) }
