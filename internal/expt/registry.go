package expt

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/algo"
	"repro/internal/graph/gen"
	"repro/internal/xrand"
)

// E14RegistrySweep runs every algorithm family in the unified registry
// (internal/algo) by name on a common test graph and tabulates the uniform
// Result envelope — one row per family: kind, capabilities, headline
// quality number, rounds, and wall time. This is the serving-surface
// acceptance experiment: if a family cannot be invoked by name with a
// context, this table breaks.
func E14RegistrySweep(cfg Config) *Table {
	t := &Table{
		ID:      "E14",
		Title:   "unified algorithm registry sweep (one row per family)",
		Headers: []string{"algo", "kind", "caps", "quality", "value", "rounds", "ms"},
	}
	n := 400
	if cfg.Quick {
		n = 150
	}
	g := gen.RandomRegular(n, 4, xrand.New(cfg.Seed+0xe14))
	ctx := cfg.context()
	failures := 0
	for _, spec := range algo.All() {
		p := sweepParams(spec.Name, cfg)
		res, err := algo.Run(ctx, spec.Name, g, p)
		if err != nil {
			failures++
			t.AddRow(spec.Name, spec.Caps.Kind.String(), "-", "ERROR", err.Error(), "-", "-")
			continue
		}
		var caps []string
		if spec.Caps.Seeded {
			caps = append(caps, "seeded")
		}
		if spec.Caps.Weighted {
			caps = append(caps, "weighted")
		}
		if spec.Caps.Workers {
			caps = append(caps, "workers")
		}
		quality := "-"
		switch spec.Caps.Kind {
		case algo.KindDecomposition:
			quality = fmt.Sprintf("uncl=%s", f(res.Metrics["unclustered_frac"]))
		case algo.KindCover:
			quality = fmt.Sprintf("mult=%s", f(res.Metrics["mean_multiplicity"]))
		case algo.KindColoring:
			quality = fmt.Sprintf("colors=%d", res.NumColors)
		case algo.KindEdgeCut:
			quality = fmt.Sprintf("cut=%s", f(res.Metrics["cut_frac"]))
		case algo.KindILP:
			quality = fmt.Sprintf("feas=%t exact=%t", res.Feasible, res.Exact)
		}
		t.AddRow(spec.Name, spec.Caps.Kind.String(), strings.Join(caps, "+"),
			quality, fmt.Sprintf("%d", res.Value), d(res.Rounds),
			fmt.Sprintf("%.1f", float64(res.Elapsed)/float64(time.Millisecond)))
	}
	if failures == 0 {
		t.Note("shape holds: every registered family ran by name through internal/algo")
	} else {
		t.Note("SHAPE VIOLATION: %d families failed to run through the registry", failures)
	}
	return t
}

// sweepParams picks small-but-representative parameters per family.
func sweepParams(name string, cfg Config) algo.Params {
	seed := fmt.Sprintf("%d", cfg.Seed+1)
	switch name {
	case "changli", "blackbox", "weighted":
		return algo.Params{"eps": "0.3", "scale": "0.05", "seed": seed}
	case "en", "mpx", "sparsecover", "netdecomp":
		return algo.Params{"lambda": "0.4", "seed": seed}
	case "packing":
		return algo.Params{"problem": "mis", "prep": "2", "seed": seed}
	case "covering":
		return algo.Params{"problem": "vc", "prep": "2", "seed": seed}
	case "gkm":
		return algo.Params{"problem": "mis", "scale": "0.4", "seed": seed}
	case "solve":
		return algo.Params{"problem": "mis"}
	default:
		// New families run on their declared defaults until given a case.
		return algo.Params{}
	}
}

// context returns the run context (Background when unset).
func (c Config) context() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}
