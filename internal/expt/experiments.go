package expt

import (
	"fmt"
	"math"

	"repro/internal/covering"
	"repro/internal/fractional"
	"repro/internal/gkm"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/ldd"
	"repro/internal/lower"
	"repro/internal/packing"
	"repro/internal/problems"
	"repro/internal/spanner"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// E1LDDQuality measures, per (graph, ε), the worst-case unclustered
// fraction over trials and the maximum weak diameter, for Elkin–Neiman
// (expectation-only) and Chang–Li (w.h.p.), both at the paper's constants.
func E1LDDQuality(cfg Config) *Table {
	t := &Table{
		ID:      "E1",
		Title:   "LDD quality at paper constants",
		Headers: []string{"graph", "n", "eps", "algo", "maxUnclustered", "p95Unclustered", "maxWeakDiam", "rounds", "bound eps"},
	}
	trials := cfg.trials(12, 4)
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", gen.Grid(24, 24)},
		{"cycle", gen.Cycle(1200)},
		{"regular4", gen.RandomRegular(800, 4, xrand.New(cfg.Seed+100))},
	}
	if cfg.Quick {
		graphs = graphs[:2]
	}
	worstCLExceeded := false
	for _, gc := range graphs {
		for _, eps := range []float64{0.4, 0.2, 0.1} {
			for _, algo := range []string{"elkin-neiman", "chang-li"} {
				var fracs []float64
				maxWD, maxRounds := 0, 0
				for trial := 0; trial < trials; trial++ {
					seed := cfg.Seed + uint64(trial)*7919
					var dec *ldd.Decomposition
					if algo == "elkin-neiman" {
						dec = ldd.ElkinNeiman(gc.g, nil, ldd.ENParams{Lambda: eps, Seed: seed})
					} else {
						dec = ldd.ChangLi(gc.g, ldd.Params{Epsilon: eps, Seed: seed})
					}
					fracs = append(fracs, dec.UnclusteredFraction())
					if wd := dec.MaxWeakDiameter(gc.g); wd > maxWD {
						maxWD = wd
					}
					if dec.Rounds > maxRounds {
						maxRounds = dec.Rounds
					}
				}
				s := stats.Summarize(fracs)
				if algo == "chang-li" && s.Max > eps {
					worstCLExceeded = true
				}
				t.AddRow(gc.name, d(gc.g.N()), f(eps), algo, f(s.Max), f(s.P95), d(maxWD), d(maxRounds), f(eps))
			}
		}
	}
	if worstCLExceeded {
		t.Note("SHAPE VIOLATION: Chang-Li exceeded eps·n in some trial")
	} else {
		t.Note("shape holds: Chang-Li never exceeded eps·n in any trial (Thm 1.1 whp claim)")
	}
	return t
}

// E2WHPFailure reproduces Claim C.1: on the clique+path family the
// Elkin–Neiman bound fails with probability Ω(ε) while Chang–Li never
// fails.
func E2WHPFailure(cfg Config) *Table {
	t := &Table{
		ID:      "E2",
		Title:   "failure frequency Pr[unclustered > eps·n] on clique+path (Claim C.1)",
		Headers: []string{"eps", "n", "EN16 failRate", "95% CI", "ChangLi failRate", "theory"},
	}
	n := 600
	if cfg.Quick {
		n = 200
	}
	g := gen.CliquePlusPath(n/2, n/2)
	enTrials := cfg.trials(400, 60)
	clTrials := cfg.trials(60, 10)
	for _, eps := range []float64{0.3, 0.2, 0.1} {
		enFails := 0
		for trial := 0; trial < enTrials; trial++ {
			dec := ldd.ElkinNeiman(g, nil, ldd.ENParams{Lambda: eps, Seed: cfg.Seed + uint64(trial)*13})
			if dec.UnclusteredFraction() > eps {
				enFails++
			}
		}
		clFails := 0
		for trial := 0; trial < clTrials; trial++ {
			dec := ldd.ChangLi(g, ldd.Params{Epsilon: eps, Seed: cfg.Seed + uint64(trial)*17})
			if dec.UnclusteredFraction() > eps {
				clFails++
			}
		}
		lo, hi := stats.WilsonInterval(enFails, enTrials)
		t.AddRow(f(eps), d(g.N()),
			f(float64(enFails)/float64(enTrials)),
			fmt.Sprintf("[%s,%s]", f(lo), f(hi)),
			f(float64(clFails)/float64(clTrials)),
			"Omega(eps) vs 0")
	}
	t.Note("shape: EN16 fails with frequency Omega(eps); Chang-Li with frequency 0 (whp)")
	return t
}

// E3MPXFailure reproduces Claim C.2: on the MPXBad family the
// Miller–Peng–Xu decomposition cuts the whole t² cross-edge block with
// probability Ω(ε).
func E3MPXFailure(cfg Config) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "Pr[all t² cross edges cut] on the MPXBad family (Claim C.2)",
		Headers: []string{"eps", "t", "n", "m", "failRate", "95% CI", "meanCutFrac"},
	}
	tt := 20
	if cfg.Quick {
		tt = 10
	}
	g := gen.MPXBad(tt)
	lo1, hi1, lo2, hi2 := gen.MPXBadParts(tt)
	trials := cfg.trials(400, 60)
	for _, eps := range []float64{0.3, 0.2, 0.1} {
		fails := 0
		var cutFracs []float64
		for trial := 0; trial < trials; trial++ {
			r := ldd.MPX(g, ldd.ENParams{Lambda: eps, Seed: cfg.Seed + uint64(trial)*19})
			crossCut := 0
			for _, e := range r.CutEdges {
				u, v := e[0], e[1]
				if u >= lo1 && u < hi1 && v >= lo2 && v < hi2 {
					crossCut++
				}
			}
			cutFracs = append(cutFracs, float64(len(r.CutEdges))/float64(g.M()))
			if crossCut == tt*tt {
				fails++
			}
		}
		lo, hi := stats.WilsonInterval(fails, trials)
		t.AddRow(f(eps), d(tt), d(g.N()), d(g.M()),
			f(float64(fails)/float64(trials)),
			fmt.Sprintf("[%s,%s]", f(lo), f(hi)),
			f(stats.Summarize(cutFracs).Mean))
	}
	t.Note("shape: the whole (1-O(1/n)) edge block is cut with frequency Omega(eps)")
	return t
}

// E4PackingRatio measures (1-ε)-approximation ratios for MIS against exact
// optima, Chang–Li vs GKM vs a greedy-local ablation.
func E4PackingRatio(cfg Config) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "packing (MIS) approximation ratio vs exact optimum",
		Headers: []string{"graph", "n", "eps", "algo", "minRatio", "meanRatio", "rounds", "exactLocal", "target"},
	}
	trials := cfg.trials(5, 2)
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle", gen.Cycle(240)},
		{"tree", gen.CompleteDAryTree(2, 7)},
		{"grid", gen.Grid(12, 14)},
	}
	if cfg.Quick {
		graphs = graphs[:2]
	}
	violated := false
	for _, gc := range graphs {
		opt, err := problems.ExactOptimum(problems.MIS, gc.g)
		if err != nil {
			continue
		}
		inst, err := problems.Build(problems.MIS, gc.g, nil)
		if err != nil {
			continue
		}
		for _, eps := range []float64{0.3, 0.15} {
			for _, algo := range []string{"chang-li", "gkm", "chang-li-greedy"} {
				var ratios []float64
				rounds, allExact := 0, true
				for trial := 0; trial < trials; trial++ {
					seed := cfg.Seed + uint64(trial)*23
					var val int64
					var rr int
					var ex bool
					switch algo {
					case "chang-li":
						r := packing.Solve(inst, packing.Params{Epsilon: eps, Seed: seed, PrepRuns: 2})
						val, rr, ex = r.Value, r.Rounds, r.Exact
					case "gkm":
						r := gkm.SolvePacking(inst, gkm.Params{Epsilon: eps, Seed: seed, Scale: 0.4})
						val, rr, ex = r.Value, r.Rounds, r.Exact
					case "chang-li-greedy":
						p := packing.Params{Epsilon: eps, Seed: seed, PrepRuns: 2}
						p.Solve.ForceGreedy = true
						r := packing.Solve(inst, p)
						val, rr, ex = r.Value, r.Rounds, r.Exact
					}
					ratios = append(ratios, float64(val)/float64(opt))
					if rr > rounds {
						rounds = rr
					}
					allExact = allExact && ex
				}
				s := stats.Summarize(ratios)
				if algo != "chang-li-greedy" && allExact && s.Min < 1-eps-1e-9 {
					violated = true
				}
				t.AddRow(gc.name, d(gc.g.N()), f(eps), algo, f(s.Min), f(s.Mean), d(rounds),
					fmt.Sprintf("%v", allExact), f(1-eps))
			}
		}
	}
	if violated {
		t.Note("SHAPE VIOLATION: an exact-local run fell below 1-eps")
	} else {
		t.Note("shape holds: every exact-local run achieved ratio >= 1-eps (Thm 1.2)")
	}
	// Odd cycle: no integral oracle, so score against the fractional LP
	// upper bound alpha* (the KMW16 fractional side the paper contrasts
	// with); the true ratio is at least the reported one.
	odd := gen.Cycle(241)
	_, alphaStar := fractional.IndependentSetLP(odd)
	oddInst, err := problems.Build(problems.MIS, odd, nil)
	if err == nil {
		r := packing.Solve(oddInst, packing.Params{Epsilon: 0.3, Seed: cfg.Seed, PrepRuns: 2})
		t.AddRow("cycle-odd", d(odd.N()), f(0.3), "chang-li (vs LP bound)",
			f(float64(r.Value)/alphaStar.Float()), "-", d(r.Rounds),
			fmt.Sprintf("%v", r.Exact), f(0.7))
		t.Note("the odd-cycle row is scored against the fractional optimum alpha* = %s (integral alpha = %d),", f(alphaStar.Float()), odd.N()/2)
		t.Note("so its printed ratio understates the true one — the fractional/integral gap of Section 1.2")
	}
	return t
}

// E5CoveringRatio measures (1+ε) ratios for vertex cover and dominating
// set against exact optima.
func E5CoveringRatio(cfg Config) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "covering (VC/MDS) approximation ratio vs exact optimum",
		Headers: []string{"problem", "graph", "n", "eps", "algo", "maxRatio", "meanRatio", "rounds", "target"},
	}
	trials := cfg.trials(4, 2)
	type job struct {
		prob problems.Problem
		name string
		g    *graph.Graph
	}
	jobs := []job{
		{problems.MinVertexCover, "cycle", gen.Cycle(240)},
		{problems.MinVertexCover, "tree", gen.CompleteDAryTree(2, 7)},
		{problems.MinDominatingSet, "tree", gen.CompleteDAryTree(3, 4)},
	}
	if cfg.Quick {
		jobs = jobs[:2]
	}
	violated := false
	for _, j := range jobs {
		opt, err := problems.ExactOptimum(j.prob, j.g)
		if err != nil || opt == 0 {
			continue
		}
		inst, err := problems.Build(j.prob, j.g, nil)
		if err != nil {
			continue
		}
		for _, eps := range []float64{0.3, 0.15} {
			for _, algo := range []string{"chang-li", "gkm"} {
				var ratios []float64
				rounds := 0
				for trial := 0; trial < trials; trial++ {
					seed := cfg.Seed + uint64(trial)*29
					var val int64
					var rr int
					if algo == "chang-li" {
						r, err := covering.Solve(inst, covering.Params{Epsilon: eps, Seed: seed, PrepRuns: 2})
						if err != nil {
							continue
						}
						val, rr = r.Value, r.Rounds
					} else {
						r := gkm.SolveCovering(inst, gkm.Params{Epsilon: eps, Seed: seed, Scale: 0.4})
						val, rr = r.Value, r.Rounds
					}
					ratios = append(ratios, float64(val)/float64(opt))
					if rr > rounds {
						rounds = rr
					}
				}
				s := stats.Summarize(ratios)
				if s.Max > 1+eps+1e-9 {
					violated = true
				}
				t.AddRow(j.prob.String(), j.name, d(j.g.N()), f(eps), algo,
					f(s.Max), f(s.Mean), d(rounds), f(1+eps))
			}
		}
	}
	if violated {
		t.Note("SHAPE VIOLATION: a run exceeded 1+eps")
	} else {
		t.Note("shape holds: every run achieved ratio <= 1+eps (Thm 1.3)")
	}
	return t
}

// E6RoundScalingEps sweeps ε at fixed n and reports the round counts of
// the decomposers; the claim is Chang–Li ~ log³(1/ε)·log(n)/ε versus GKM ~
// log³(n)/ε, i.e. GKM pays log²(n) where Chang–Li pays log²(1/ε).
func E6RoundScalingEps(cfg Config) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "rounds vs eps at fixed n (scaled constants)",
		Headers: []string{"eps", "ChangLi", "ChangLi(noPhase2)", "Blackbox", "GKM(MIS)", "CL theory", "GKM theory"},
	}
	n := 1600
	gkmN := 160
	if cfg.Quick {
		n, gkmN = 600, 80
	}
	g := gen.Cycle(n)
	gkmG := gen.Cycle(gkmN)
	gkmInst, _ := problems.Build(problems.MIS, gkmG, nil)
	var epsList = []float64{0.4, 0.2, 0.1, 0.05}
	var invEps, clRounds []float64
	for _, eps := range epsList {
		cl := ldd.ChangLi(g, ldd.Params{Epsilon: eps, Seed: cfg.Seed, Scale: 0.001})
		clNo := ldd.ChangLi(g, ldd.Params{Epsilon: eps, Seed: cfg.Seed, Scale: 0.001, SkipPhase2: true})
		bb := ldd.Blackbox(g, ldd.BlackboxParams{Epsilon: eps, Seed: cfg.Seed, Scale: 0.001})
		gk := gkm.SolvePacking(gkmInst, gkm.Params{Epsilon: eps, Seed: cfg.Seed, Scale: 0.25})
		lnn := math.Log(float64(n))
		clTheory := math.Pow(math.Log2(1/eps), 3) * lnn / eps
		gkTheory := math.Pow(math.Log(float64(gkmN)), 3) / eps
		t.AddRow(f(eps), d(cl.Rounds), d(clNo.Rounds), d(bb.Rounds), d(gk.Rounds),
			f(clTheory), f(gkTheory))
		invEps = append(invEps, 1/eps)
		clRounds = append(clRounds, float64(cl.Rounds))
	}
	slope := stats.LogLogSlope(invEps, clRounds)
	t.Note("Chang-Li rounds grow ~ (1/eps)^%s in this sweep (theory: ~1/eps with polylog(1/eps) factors)", f(slope))
	t.Note("GKM at n=%d already needs more rounds than Chang-Li at n=%d: the log^2 n vs log^2(1/eps) gap", gkmN, n)
	return t
}

// E7RoundScalingN sweeps n at fixed ε.
func E7RoundScalingN(cfg Config) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "rounds vs n at fixed eps = 0.2 (scaled constants)",
		Headers: []string{"n", "ChangLi", "GKM(MIS)", "CL/log(n)", "GKM/log^3(n)"},
	}
	eps := 0.2
	ns := []int{400, 800, 1600, 3200}
	gkmNs := []int{60, 120, 240, 480}
	if cfg.Quick {
		ns = ns[:2]
		gkmNs = gkmNs[:2]
	}
	var nsF, clF []float64
	for i, n := range ns {
		g := gen.Cycle(n)
		cl := ldd.ChangLi(g, ldd.Params{Epsilon: eps, Seed: cfg.Seed, Scale: 0.001})
		gkmG := gen.Cycle(gkmNs[i])
		gkmInst, _ := problems.Build(problems.MIS, gkmG, nil)
		gk := gkm.SolvePacking(gkmInst, gkm.Params{Epsilon: eps, Seed: cfg.Seed, Scale: 0.25})
		lnn := math.Log(float64(n))
		lnk := math.Log(float64(gkmNs[i]))
		t.AddRow(d(n), d(cl.Rounds), fmt.Sprintf("%d (n=%d)", gk.Rounds, gkmNs[i]),
			f(float64(cl.Rounds)/lnn), f(float64(gk.Rounds)/(lnk*lnk*lnk)))
		nsF = append(nsF, float64(n))
		clF = append(clF, float64(cl.Rounds))
	}
	slope := stats.LogLogSlope(nsF, clF)
	t.Note("Chang-Li rounds grow ~ n^%s in this sweep; theory predicts ~log n, i.e. slope -> 0 as n grows.", f(slope))
	t.Note("GKM's column is noisy because the Linial-Saks color count is itself a random variable;")
	t.Note("its scale (per-n normalized by log^3) sits well above Chang-Li's log-normalized column throughout")
	return t
}

// E8Blackbox compares the Section 1.6 boost against plain Chang–Li as ε
// shrinks: the rounds ratio should grow like log²(1/ε).
func E8Blackbox(cfg Config) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "blackbox boost (Sec 1.6): rounds vs Chang-Li as eps shrinks",
		Headers: []string{"eps", "ChangLi", "Blackbox", "CL/BB", "unclustered CL", "unclustered BB"},
	}
	n := 2000
	if cfg.Quick {
		n = 600
	}
	g := gen.Cycle(n)
	for _, eps := range []float64{0.4, 0.2, 0.1, 0.05} {
		cl := ldd.ChangLi(g, ldd.Params{Epsilon: eps, Seed: cfg.Seed, Scale: 0.001})
		bb := ldd.Blackbox(g, ldd.BlackboxParams{Epsilon: eps, Seed: cfg.Seed, Scale: 0.001})
		ratio := 0.0
		if bb.Rounds > 0 {
			ratio = float64(cl.Rounds) / float64(bb.Rounds)
		}
		t.AddRow(f(eps), d(cl.Rounds), d(bb.Rounds), f(ratio),
			f(cl.UnclusteredFraction()), f(bb.UnclusteredFraction()))
	}
	t.Note("shape: the CL/BB round ratio grows as eps shrinks (the log^3(1/eps) vs log(1/eps) factor);")
	t.Note("at laptop-scale eps the boost's constant overhead (inner ChangLi(1/2) runs per repetition)")
	t.Note("still dominates, so the crossover where Blackbox wins outright lies below the measured eps range")
	return t
}

// E9SparseCover measures the Lemma C.2 multiplicity guarantees.
func E9SparseCover(cfg Config) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "sparse cover multiplicity vs Geometric(e^-lambda) (Lemma C.2)",
		Headers: []string{"lambda", "meanMult", "e^lambda", "maxMult", "fracMult>=3", "geomTail>=3"},
	}
	n := 2000
	if cfg.Quick {
		n = 600
	}
	g := gen.Cycle(n)
	trials := cfg.trials(8, 3)
	for _, lambda := range []float64{0.1, 0.3, 0.5} {
		var means []float64
		maxMult := 0
		ge3 := 0
		total := 0
		for trial := 0; trial < trials; trial++ {
			c := ldd.SparseCover(g, nil, ldd.ENParams{Lambda: lambda, Seed: cfg.Seed + uint64(trial)*31})
			means = append(means, c.MeanMultiplicity())
			if m := c.MaxMultiplicity(); m > maxMult {
				maxMult = m
			}
			for v := 0; v < g.N(); v++ {
				total++
				if c.Multiplicity(v) >= 3 {
					ge3++
				}
			}
		}
		p := math.Exp(-lambda)
		geomTail := (1 - p) * (1 - p) // Pr[Geometric(p) >= 3]
		t.AddRow(f(lambda), f(stats.Summarize(means).Mean), f(math.Exp(lambda)),
			d(maxMult), f(float64(ge3)/float64(total)), f(geomTail))
	}
	t.Note("shape: mean multiplicity tracks e^lambda and the >=3 tail is dominated by the geometric tail")
	return t
}

// E10LowerBound runs the Appendix B indistinguishability experiment.
func E10LowerBound(cfg Config) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "t-round indistinguishability on high-girth graphs (Thm 1.4)",
		Headers: []string{"t", "rate bipartite", "rate odd", "|diff|", "opt bip", "opt odd", "deficit vs opt"},
	}
	n := 400
	trials := cfg.trials(200, 50)
	if cfg.Quick {
		n = 200
	}
	bip := gen.Cycle(n)
	odd := gen.Cycle(n + 1)
	optBip := 0.5
	optOdd := float64((n+1)/2) / float64(n+1)
	for _, rounds := range []int{1, 2, 3, 5} {
		rateA := lower.InclusionRate(bip, rounds, trials, cfg.Seed+1)
		rateB := lower.InclusionRate(odd, rounds, trials, cfg.Seed+2)
		t.AddRow(d(rounds), f(rateA), f(rateB), f(math.Abs(rateA-rateB)),
			f(optBip), f(optOdd), f(optBip-rateA))
	}
	t.Note("shape: rates on the two graphs are statistically identical at every t < girth/2,")
	t.Note("while the optimum differs; closing the deficit requires radius ~ girth = Omega(log n) on expanders.")
	t.Note("Below: the Thm B.3 subdivision. The fixed-round ratio stays pinned near its t-round plateau")
	t.Note("for every x — growing the instance by x ~ 1/eps buys the algorithm nothing, which is why the")
	t.Note("lower bound scales as log(n)/eps rather than log(n).")
	// Subdivision scaling (Theorem B.3): fixed t, growing x.
	base := gen.Cycle(60)
	for _, x := range []int{0, 1, 2, 4} {
		gx := lower.SubdivideForMIS(base, x)
		rate := lower.InclusionRate(gx, 3, cfg.trials(100, 30), cfg.Seed+3)
		t.Note("subdivision x=%d: 3-round MIS rate %s of alpha %s -> ratio %s",
			x, f(rate), f(0.5), f(rate/0.5))
		_ = gx
	}
	return t
}

// E11KDomSet runs the paper's Definition 1.3 motivating example.
func E11KDomSet(cfg Config) *Table {
	t := &Table{
		ID:      "E11",
		Title:   "k-distance dominating set on a torus network (Def. 1.3)",
		Headers: []string{"k", "n", "value", "lower bound n/ball", "ratio vs LB", "base-graph rounds (k x hyper-rounds)"},
	}
	rows, cols := 12, 12
	if cfg.Quick {
		rows, cols = 8, 8
	}
	g := gen.Torus(rows, cols)
	for _, k := range []int{1, 2} {
		inst, err := problems.BuildK(k, g, nil)
		if err != nil {
			continue
		}
		r, err := covering.Solve(inst, covering.Params{Epsilon: 0.3, Seed: cfg.Seed, PrepRuns: 2})
		if err != nil {
			continue
		}
		ballSize := len(g.Ball(0, k))
		lb := (g.N() + ballSize - 1) / ballSize
		// One hypergraph round costs k base rounds (Definition 1.3).
		t.AddRow(d(k), d(g.N()), d(int(r.Value)), d(lb),
			f(float64(r.Value)/float64(lb)), d(r.Rounds*k))
	}
	t.Note("shape: the covering solver returns valid k-dominating sets within a small factor of the packing lower bound")
	return t
}

// E12Concentration verifies the Appendix A tail bounds by simulation.
func E12Concentration(cfg Config) *Table {
	t := &Table{
		ID:      "E12",
		Title:   "concentration bounds: empirical tail vs bound (Lemmas A.1, A.2)",
		Headers: []string{"bound", "params", "empirical", "theoretical", "holds"},
	}
	rng := xrand.New(cfg.Seed + 77)
	trials := cfg.trials(3000, 500)
	// Chernoff upper.
	{
		const n, p, delta = 400, 0.1, 0.5
		mu := float64(n) * p
		exceeded := 0
		for trial := 0; trial < trials; trial++ {
			x := 0
			for i := 0; i < n; i++ {
				if rng.Bernoulli(p) {
					x++
				}
			}
			if float64(x) > (1+delta)*mu {
				exceeded++
			}
		}
		emp := float64(exceeded) / float64(trials)
		bound := stats.ChernoffUpper(mu, delta)
		t.AddRow("Chernoff upper", "n=400 p=0.1 delta=0.5", f(emp), f(bound),
			fmt.Sprintf("%v", emp <= bound+0.02))
	}
	// Geometric sum.
	{
		const n, p, delta = 150, 0.5, 1.5
		mu := float64(n) / p
		exceeded := 0
		for trial := 0; trial < trials; trial++ {
			sum := 0
			for i := 0; i < n; i++ {
				sum += rng.Geometric(p)
			}
			if float64(sum) > mu+delta*float64(n) {
				exceeded++
			}
		}
		emp := float64(exceeded) / float64(trials)
		bound := stats.GeometricSumTail(n, p, delta)
		t.AddRow("Geometric sum (A.2)", "n=150 p=0.5 delta=1.5", f(emp), f(bound),
			fmt.Sprintf("%v", emp <= bound+0.02))
	}
	t.Note("both empirical tails sit below the analytic bounds, as the lemmas require")
	return t
}

// E13SpannerTail measures the realized-size distribution of the
// (2k-1)-spanner construction against its expectation bound — the object
// of the Section 6 / FGdV22 open question: can the O(n^{1+1/k}) size bound
// hold with high probability rather than in expectation? (The analogous
// gap for low-diameter decompositions is exactly what Theorem 1.1 closes.)
func E13SpannerTail(cfg Config) *Table {
	t := &Table{
		ID:      "E13",
		Title:   "spanner size distribution vs expectation bound (open question)",
		Headers: []string{"k", "stretch", "n", "m", "meanSize", "p95Size", "maxSize", "k*n^(1+1/k)", "max/bound"},
	}
	// Dense enough that the n^{1+1/k} bound is below m and sparsification
	// is visible (on sparse inputs every spanner is trivially the graph).
	n := 500
	trials := cfg.trials(40, 10)
	if cfg.Quick {
		n = 200
	}
	g := gen.GNP(n, 60.0/float64(n), xrand.New(cfg.Seed+0x57a))
	for _, k := range []int{2, 3, 4} {
		sizes := spanner.SizeTail(g, k, trials, cfg.Seed)
		fs := stats.Ints(sizes)
		s := stats.Summarize(fs)
		bound := spanner.ExpectationBound(g.N(), k)
		t.AddRow(d(k), d(2*k-1), d(g.N()), d(g.M()),
			f(s.Mean), f(s.P95), f(s.Max), f(bound), f(s.Max/bound))
	}
	t.Note("the max/bound column is the open question's object: the upper tail stays within a small")
	t.Note("constant of the expectation bound on these inputs, but no whp guarantee is known — the")
	t.Note("same expectation-vs-whp gap that Theorem 1.1 closed for low-diameter decompositions")
	return t
}
