package expt

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	exps := All()
	if len(exps) != 14 {
		t.Fatalf("registry has %d experiments, want 14", len(exps))
	}
	// IDs are E1..E12 in numeric order.
	for i, e := range exps {
		want := "E" + itoa(i+1)
		if e.ID != want {
			t.Fatalf("position %d: id %s, want %s", i, e.ID, want)
		}
		if e.Title == "" || e.Run == nil {
			t.Fatalf("%s: incomplete entry", e.ID)
		}
	}
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return "1" + string(rune('0'+i-10))
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("e4"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, ok := Lookup("E99"); ok {
		t.Fatal("phantom experiment found")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{ID: "X", Title: "demo", Headers: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	tbl.Note("hello %d", 5)
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== X: demo ==", "333", "hello 5", "a", "bb"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestAllExperimentsQuick runs every experiment in Quick mode and asserts
// the structural invariants: rows exist, row widths match headers, and no
// experiment reports a SHAPE VIOLATION.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still take seconds; skipped with -short")
	}
	cfg := Config{Seed: 7, Quick: true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl := e.Run(cfg)
			if tbl == nil || len(tbl.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Headers) {
					t.Fatalf("%s: row width %d != headers %d", e.ID, len(row), len(tbl.Headers))
				}
			}
			for _, n := range tbl.Notes {
				if strings.Contains(n, "SHAPE VIOLATION") {
					t.Fatalf("%s: %s", e.ID, n)
				}
			}
		})
	}
}
