package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

func TestClassifyEndpoint(t *testing.T) {
	cases := []struct {
		method, path, want string
	}{
		{"GET", "/healthz", "healthz"},
		{"GET", "/metrics", "metrics"},
		{"GET", "/debug/traces", "traces"},
		{"GET", "/debug/pprof/", "pprof"},
		{"GET", "/debug/pprof/profile", "pprof"},
		{"GET", "/v1/algorithms", "algorithms"},
		{"GET", "/v1/graphs", "graphs.list"},
		{"POST", "/v1/graphs", "graphs.create"},
		{"GET", "/v1/graphs/g1", "graph.info"},
		{"DELETE", "/v1/graphs/g1", "graph.delete"},
		{"POST", "/v1/graphs/g1/run", "run"},
		{"POST", "/v1/graphs/g1/query", "query"},
		{"POST", "/v1/graphs/g1/addedge", "addedge"},
		{"POST", "/v1/graphs/g1/deledge", "deledge"},
		{"POST", "/v1/graphs/g1/compact", "compact"},
		{"POST", "/v1/graphs/g1/batch", "batch"},
		{"POST", "/v1/graphs/g1/nonsense", "other"},
		{"GET", "/favicon.ico", "other"},
	}
	for _, c := range cases {
		r := httptest.NewRequest(c.method, c.path, nil)
		if got := classifyEndpoint(r); got != c.want {
			t.Errorf("classify(%s %s) = %q, want %q", c.method, c.path, got, c.want)
		}
	}
}

// sampleLine matches one exposition sample: name, optional {labels}, value.
var sampleLine = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (-?[0-9].*|[+-]Inf|NaN)$`)

// TestMetricsExpositionWellFormed scrapes a live server and checks the
// whole /metrics payload against the text-format grammar: every sample
// belongs to a family announced by # HELP + # TYPE, every family carries
// the repro_ prefix, values parse, and histogram buckets are cumulative
// with a closing +Inf equal to _count.
func TestMetricsExpositionWellFormed(t *testing.T) {
	tracer := obs.NewTracer(obs.TracerOptions{})
	s, c := newTestServer(t, Options{Tracer: tracer})
	_ = s
	ctx := context.Background()
	if _, err := c.Generate(ctx, "cycle", 60, 1); err != nil {
		t.Fatal(err)
	}
	// Traffic: one miss, then hits, so latency histograms have content.
	for i := 0; i < 5; i++ {
		if _, err := c.Run(ctx, "g1", RunRequest{Algo: "changli"}); err != nil {
			t.Fatal(err)
		}
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}

	types := map[string]string{} // family -> declared type
	helped := map[string]bool{}
	// bucket series -> last cumulative value, +Inf seen, count value
	type histState struct {
		last    uint64
		inf     uint64
		infSeen bool
		count   uint64
	}
	hists := map[string]*histState{}
	stateFor := func(series string) *histState {
		st := hists[series]
		if st == nil {
			st = &histState{}
			hists[series] = st
		}
		return st
	}
	samples := 0
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line in exposition", ln+1)
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			helped[strings.Fields(rest)[0]] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			f := strings.Fields(rest)
			if len(f) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch f[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown metric type %q", ln+1, f[1])
			}
			if !helped[f[0]] {
				t.Fatalf("line %d: TYPE for %s without preceding HELP", ln+1, f[0])
			}
			types[f[0]] = f[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: stray comment %q", ln+1, line)
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: does not match the sample grammar: %q", ln+1, line)
		}
		samples++
		name, labels, value := m[1], m[2], m[4]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, value, err)
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suffix); ok && types[base] == "histogram" {
				family = base
			}
		}
		if types[family] == "" {
			t.Fatalf("line %d: sample %s has no # TYPE", ln+1, name)
		}
		if !strings.HasPrefix(family, "repro_") {
			t.Fatalf("line %d: family %s lacks the repro_ prefix", ln+1, family)
		}
		if types[family] != "histogram" {
			continue
		}
		// Histogram shape checks. The series key is the label set minus le.
		switch {
		case strings.HasSuffix(name, "_bucket"):
			v, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				t.Fatalf("line %d: bucket value %q: %v", ln+1, value, err)
			}
			le := ""
			var rest []string
			for _, l := range strings.Split(strings.Trim(labels, "{}"), ",") {
				if s, ok := strings.CutPrefix(l, "le="); ok {
					le = strings.Trim(s, `"`)
				} else {
					rest = append(rest, l)
				}
			}
			if le == "" {
				t.Fatalf("line %d: bucket without le label: %q", ln+1, line)
			}
			key := family
			if len(rest) > 0 {
				key += "{" + strings.Join(rest, ",") + "}"
			}
			st := stateFor(key)
			if le == "+Inf" {
				st.inf, st.infSeen = v, true
				break
			}
			if v < st.last {
				t.Fatalf("line %d: bucket counts not cumulative: %d after %d", ln+1, v, st.last)
			}
			st.last = v
		case strings.HasSuffix(name, "_count"):
			v, _ := strconv.ParseUint(value, 10, 64)
			st := stateFor(family + labels)
			st.count = v
			if !st.infSeen || st.inf != v {
				t.Fatalf("series %s%s: +Inf bucket %d (seen=%v) != count %d",
					family, labels, st.inf, st.infSeen, v)
			}
		}
	}
	if samples == 0 {
		t.Fatal("no samples scraped")
	}
	// The families the rest of the system depends on must be present.
	for _, want := range []string{
		"repro_engine_hit_seconds", "repro_engine_compute_seconds",
		"repro_http_request_seconds", "repro_http_requests_total",
		"repro_runtime_goroutines", "repro_traces_finished_total",
		"repro_runtime_gomaxprocs", "repro_runtime_num_cpu",
		"repro_engine_query_workers",
	} {
		if types[want] == "" {
			t.Errorf("family %s missing from exposition", want)
		}
	}
}

// TestDebugEndpoints checks the pprof and trace-ring endpoints serve, and
// keep serving while the server is draining (observability must survive
// shutdown).
func TestDebugEndpoints(t *testing.T) {
	tracer := obs.NewTracer(obs.TracerOptions{RingSize: 8})
	s := New(engine.New(engine.Options{}), Options{Tracer: tracer})
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client())
	ctx := context.Background()

	if _, err := c.Generate(ctx, "cycle", 40, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(ctx, "g1", RunRequest{Algo: "changli"}); err != nil {
		t.Fatal(err)
	}

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	if code, body := get("/debug/pprof/"); code != http.StatusOK || !bytes.Contains(body, []byte("goroutine")) {
		t.Fatalf("pprof index: status %d", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("pprof cmdline: status %d", code)
	}
	if code, body := get("/debug/pprof/goroutine?debug=1"); code != http.StatusOK || len(body) == 0 {
		t.Fatalf("pprof goroutine profile: status %d, %d bytes", code, len(body))
	}

	code, body := get("/debug/traces?n=4")
	if code != http.StatusOK {
		t.Fatalf("/debug/traces: status %d", code)
	}
	var traces []obs.TraceSnapshot
	if err := json.Unmarshal(body, &traces); err != nil {
		t.Fatalf("/debug/traces body: %v\n%s", err, body)
	}
	var run *obs.TraceSnapshot
	for i := range traces {
		if traces[i].Name == "run" {
			run = &traces[i]
		}
	}
	if run == nil {
		t.Fatalf("no run trace in %s", body)
	}
	if run.Status != http.StatusOK || run.Algo != "changli" || run.Snapshot == "" {
		t.Fatalf("run trace not fully labeled: %+v", run)
	}

	// Draining must not cut off the debug plane.
	drainCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}
	if code, _ := get("/debug/traces"); code != http.StatusOK {
		t.Fatalf("/debug/traces while draining: status %d", code)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("pprof while draining: status %d", code)
	}
}

// syncBuffer is a goroutine-safe writer for slow-log assertions.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSlowLogEndToEnd drives a traced request through the HTTP layer with a
// zero slow threshold and checks the NDJSON slow log names the work (algo,
// key, snapshot) and carries per-phase timings, each nested inside the
// recorded total. Phases may nest (the algorithm's spans run inside the
// engine's compute span), so the invariant is containment, not a flat sum.
func TestSlowLogEndToEnd(t *testing.T) {
	var out syncBuffer
	tracer := obs.NewTracer(obs.TracerOptions{
		SlowLog: obs.NewSlowLog(&out),
		// Zero threshold: every finished trace is logged.
	})
	_, c := newTestServer(t, Options{Tracer: tracer})
	ctx := context.Background()
	if _, err := c.Generate(ctx, "grid", 400, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(ctx, "g1", RunRequest{Algo: "changli"}); err != nil {
		t.Fatal(err)
	}

	// The trace finishes in a ServeHTTP defer that can race the client's
	// read of the response body; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	var line string
	for {
		for _, l := range strings.Split(out.String(), "\n") {
			if strings.Contains(l, `"name":"run"`) {
				line = l
			}
		}
		if line != "" || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if line == "" {
		t.Fatalf("no run event in slow log:\n%s", out.String())
	}

	var ev struct {
		TS      string `json:"ts"`
		Trace   uint64 `json:"trace"`
		Name    string `json:"name"`
		Algo    string `json:"algo"`
		Key     string `json:"key"`
		Snap    string `json:"snapshot"`
		Status  int    `json:"status"`
		TotalNS int64  `json:"total_ns"`
		Phases  []struct {
			Name    string `json:"name"`
			StartNS int64  `json:"start_ns"`
			DurNS   int64  `json:"dur_ns"`
		} `json:"phases"`
	}
	if err := json.Unmarshal([]byte(line), &ev); err != nil {
		t.Fatalf("slow-log line is not valid JSON: %v\n%s", err, line)
	}
	if ev.Algo != "changli" || ev.Snap == "" || !strings.HasPrefix(ev.Key, "changli|") {
		t.Fatalf("event does not name the work: %+v", ev)
	}
	if ev.Status != http.StatusOK || ev.TotalNS <= 0 {
		t.Fatalf("event status/total: %+v", ev)
	}
	var computeNS int64
	names := make([]string, 0, len(ev.Phases))
	for _, ph := range ev.Phases {
		names = append(names, ph.Name)
		if ph.StartNS < 0 || ph.DurNS < 0 || ph.StartNS+ph.DurNS > ev.TotalNS {
			t.Fatalf("phase %s [%d, +%d] escapes the trace total %d",
				ph.Name, ph.StartNS, ph.DurNS, ev.TotalNS)
		}
		if ph.Name == "compute" {
			computeNS = ph.DurNS
		}
	}
	joined := strings.Join(names, ",")
	if computeNS == 0 {
		t.Fatalf("no compute phase in %s", joined)
	}
	for _, want := range []string{"estimate", "phase3-en", "assemble"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing algorithm phase %q in %s", want, joined)
		}
	}
	// The nested algorithm phases account for time inside compute; each
	// must fit within it.
	for _, ph := range ev.Phases {
		if ph.Name != "compute" && ph.DurNS > computeNS {
			t.Fatalf("nested phase %s (%dns) exceeds compute (%dns)", ph.Name, ph.DurNS, computeNS)
		}
	}
}

// TestShedRequestsCounted pins that rejected requests still land in the
// endpoint histograms and status counters — overload must not be invisible.
func TestShedRequestsCounted(t *testing.T) {
	s, c := newTestServer(t, Options{})
	ctx := context.Background()
	drainCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Graphs(ctx); err == nil {
		t.Fatal("expected 503 while draining")
	}
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf(`repro_http_requests_total{endpoint="graphs.list",status="%d"} 1`, http.StatusServiceUnavailable)
	if !strings.Contains(text, want) {
		t.Fatalf("metrics missing %q", want)
	}
}
