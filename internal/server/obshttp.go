package server

import (
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// httpEndpoints is the fixed endpoint label set for HTTP metrics. Requests
// are classified before routing, so even rejected (shed, 404) requests land
// in a bounded set of series — client-controlled paths never mint labels.
var httpEndpoints = []string{
	"healthz", "metrics", "pprof", "traces",
	"algorithms", "graphs.list", "graphs.create", "graph.info", "graph.delete",
	"run", "query", "addedge", "deledge", "compact", "batch",
	"deltas", "export", "install",
	"other",
}

// classifyEndpoint maps a request to its endpoint label.
func classifyEndpoint(r *http.Request) string {
	p := r.URL.Path
	switch p {
	case "/healthz":
		return "healthz"
	case "/metrics":
		return "metrics"
	case "/debug/traces":
		return "traces"
	case "/v1/algorithms":
		return "algorithms"
	case "/v1/graphs":
		if r.Method == http.MethodPost {
			return "graphs.create"
		}
		return "graphs.list"
	case "/v1/graphs/install":
		return "install"
	}
	if strings.HasPrefix(p, "/debug/pprof") {
		return "pprof"
	}
	if rest, ok := strings.CutPrefix(p, "/v1/graphs/"); ok {
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			switch rest[i+1:] {
			case "run", "query", "addedge", "deledge", "compact", "batch", "deltas", "export":
				return rest[i+1:]
			}
			return "other"
		}
		if r.Method == http.MethodDelete {
			return "graph.delete"
		}
		return "graph.info"
	}
	return "other"
}

// statusWriter records the response status so the serving layer can label
// metrics and finish traces with the terminal code. It passes Flush through
// so the NDJSON batch endpoint still streams.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// status returns the recorded code, defaulting to 200 for handlers that
// never wrote an explicit header.
func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

type statusKey struct {
	endpoint string
	code     int
}

// httpMetrics holds the serving layer's per-endpoint latency histograms and
// per-(endpoint, status) request counters. The histogram map is built once
// and read-only afterwards, so observation is lock-free up to the status
// counter update.
type httpMetrics struct {
	dur map[string]*obs.Histogram

	mu     sync.Mutex
	status map[statusKey]uint64
}

func newHTTPMetrics() *httpMetrics {
	m := &httpMetrics{
		dur:    make(map[string]*obs.Histogram, len(httpEndpoints)),
		status: make(map[statusKey]uint64),
	}
	for _, ep := range httpEndpoints {
		m.dur[ep] = &obs.Histogram{}
	}
	return m
}

func (m *httpMetrics) observe(endpoint string, code int, d time.Duration) {
	h := m.dur[endpoint]
	if h == nil {
		h = m.dur["other"]
	}
	h.Observe(d)
	m.mu.Lock()
	m.status[statusKey{endpoint, code}]++
	m.mu.Unlock()
}

type statusCount struct {
	statusKey
	n uint64
}

// statusCounts snapshots the request counters in deterministic order.
func (m *httpMetrics) statusCounts() []statusCount {
	m.mu.Lock()
	out := make([]statusCount, 0, len(m.status))
	for k, n := range m.status {
		out = append(out, statusCount{k, n})
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].endpoint != out[j].endpoint {
			return out[i].endpoint < out[j].endpoint
		}
		return out[i].code < out[j].code
	})
	return out
}

// handleTraces serves the tracer's ring of recent finished traces as JSON,
// newest first. ?n= bounds the count (default: all retained).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		var err error
		if n, err = strconv.Atoi(v); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad n: %v", err))
			return
		}
	}
	out := []obs.TraceSnapshot{}
	if s.tracer != nil {
		out = s.tracer.Recent(n)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleMetrics renders every layer's state in the Prometheus text
// exposition format (version 0.0.4): engine cache/singleflight counters and
// latency histograms, HTTP serving histograms, Go runtime gauges, tracer and
// slow-log counters, and per-graph store + WAL state. Each family carries
// # HELP / # TYPE and the repro_ prefix; histogram buckets are cumulative
// with le boundaries in seconds.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")

	counter := func(name, help string, v uint64) {
		obs.WriteHeader(w, name, "counter", help)
		obs.WriteUintSample(w, name, "", v)
	}
	gauge := func(name, help string, v uint64) {
		obs.WriteHeader(w, name, "gauge", help)
		obs.WriteUintSample(w, name, "", v)
	}
	durHist := func(name, help string, snap obs.HistSnapshot) {
		obs.WriteHeader(w, name, "histogram", help)
		obs.WriteDurationSeries(w, name, "", &snap)
	}

	// Engine: result cache and singleflight.
	est := s.e.Stats()
	counter("repro_engine_hits_total", "requests answered from the completed-result cache", est.Hits)
	counter("repro_engine_misses_total", "requests that started a new computation", est.Misses)
	counter("repro_engine_dedup_total", "requests that joined an in-flight identical computation", est.Dedup)
	counter("repro_engine_computations_total", "underlying algorithm runs", est.Computations)
	counter("repro_engine_evictions_total", "cache entries dropped by the LRU policy", est.Evictions)
	counter("repro_engine_queries_total", "batch query calls (cluster-of, balls, local solves)", est.Queries)
	counter("repro_engine_cancellations_total", "requests that returned a context error", est.Cancellations)
	counter("repro_engine_repair_hits_total", "misses served by delta-repairing a cached ancestor result", est.RepairHits)
	counter("repro_engine_repair_fallbacks_total", "repair attempts that fell through to a full recompute", est.RepairFallbacks)
	counter("repro_engine_repaired_clusters_total", "clusters re-carved or patched by successful repairs", est.RepairedClusters)
	gauge("repro_engine_cache_entries", "resident completed results across shards", uint64(est.EntriesTotal()))
	gauge("repro_engine_inflight_computations", "computations currently running", uint64(est.InflightTotal()))
	gauge("repro_engine_shards", "number of cache shards", uint64(len(est.Shards)))

	obs.WriteHeader(w, "repro_engine_shard_entries", "gauge", "resident results per shard")
	for i, sh := range est.Shards {
		obs.WriteUintSample(w, "repro_engine_shard_entries", fmt.Sprintf(`shard="%d"`, i), uint64(sh.Entries))
	}
	obs.WriteHeader(w, "repro_engine_shard_evictions_total", "counter", "LRU evictions per shard")
	for i, sh := range est.Shards {
		obs.WriteUintSample(w, "repro_engine_shard_evictions_total", fmt.Sprintf(`shard="%d"`, i), sh.Evictions)
	}
	obs.WriteHeader(w, "repro_engine_shard_inflight", "gauge", "in-flight computations per shard")
	for i, sh := range est.Shards {
		obs.WriteUintSample(w, "repro_engine_shard_inflight", fmt.Sprintf(`shard="%d"`, i), uint64(sh.Inflight))
	}

	// Engine: where the time goes.
	em := s.e.Metrics()
	durHist("repro_engine_hit_seconds",
		"cache-hit lookup latency (sampled; see repro_engine_hit_sample_interval)", em.Hit.Snapshot())
	durHist("repro_engine_compute_seconds", "cache-miss computation latency", em.Compute.Snapshot())
	durHist("repro_engine_joinwait_seconds", "wait behind an in-flight identical computation", em.JoinWait.Snapshot())
	durHist("repro_engine_repair_seconds", "delta-repair latency on the miss path", em.Repair.Snapshot())
	gauge("repro_engine_hit_sample_interval", "hit-path sampling interval (1 = every hit timed)", uint64(em.SampleEvery()))
	obs.WriteHeader(w, "repro_engine_shard_hit_seconds", "gauge", "per-shard sampled hit latency quantiles")
	for i := range em.ShardHit {
		snap := em.ShardHit[i].Snapshot()
		if snap.Count == 0 {
			continue
		}
		obs.WriteQuantileSeries(w, "repro_engine_shard_hit_seconds", fmt.Sprintf(`shard="%d"`, i), &snap)
	}

	// HTTP serving layer.
	inflight, draining := s.gate.stats()
	gauge("repro_server_inflight_requests", "admitted requests currently in flight", uint64(inflight))
	counter("repro_server_admitted_total", "/v1 requests admitted past the gate", s.admitted.Load())
	counter("repro_server_shed_total", "/v1 requests rejected 503 (overload, drain, or replay)", s.shed.Load())
	gauge("repro_server_draining", "1 once Drain has been called", uint64(boolGauge(draining)))
	gauge("repro_server_replaying", "1 while boot-time recovery is still running", uint64(boolGauge(s.replaying.Load())))
	gauge("repro_server_graphs", "graphs under service", uint64(len(s.graphList())))
	gauge("repro_server_uptime_seconds", "seconds since the server was constructed", uint64(time.Since(s.start).Seconds()))

	obs.WriteHeader(w, "repro_http_request_seconds", "histogram", "request latency by endpoint (all requests, including shed)")
	for _, ep := range httpEndpoints {
		snap := s.httpm.dur[ep].Snapshot()
		if snap.Count == 0 {
			continue
		}
		obs.WriteDurationSeries(w, "repro_http_request_seconds", fmt.Sprintf("endpoint=%q", ep), &snap)
	}
	obs.WriteHeader(w, "repro_http_requests_total", "counter", "requests by endpoint and terminal status")
	for _, sc := range s.httpm.statusCounts() {
		obs.WriteUintSample(w, "repro_http_requests_total",
			fmt.Sprintf(`endpoint=%q,status="%d"`, sc.endpoint, sc.code), sc.n)
	}

	// Replication plane (cluster delta streaming; see replication.go).
	counter("repro_replication_deltas_served_total", "delta entries exported to replicas", s.deltasServed.Load())
	counter("repro_replication_deltas_applied_total", "replicated delta entries applied to local stores", s.deltasApplied.Load())
	counter("repro_replication_installs_total", "checkpoint installs (replica resyncs) accepted", s.installs.Load())

	// Tracer and slow log.
	if t := s.tracer; t != nil {
		counter("repro_traces_finished_total", "finished request traces", t.Finished())
		counter("repro_traces_slow_total", "finished traces over the slow threshold", t.Slow())
		if sl := t.SlowLog(); sl != nil {
			counter("repro_slowlog_events_total", "slow-query log lines emitted", sl.Events())
			counter("repro_slowlog_write_errors_total", "slow-query log lines lost to write errors", sl.WriteErrors())
		}
	}

	// Go runtime and parallel-execution shape: how many cores this process
	// may use, and the engine's per-query worker bound (both needed to read
	// throughput numbers across differently provisioned hosts).
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gauge("repro_runtime_gomaxprocs", "scheduler parallelism (GOMAXPROCS)", uint64(runtime.GOMAXPROCS(0)))
	gauge("repro_runtime_num_cpu", "logical CPUs visible to the process", uint64(runtime.NumCPU()))
	gauge("repro_engine_query_workers", "effective per-query worker bound for parallel algorithm execution", uint64(s.e.Workers()))
	gauge("repro_runtime_goroutines", "live goroutines", uint64(runtime.NumGoroutine()))
	gauge("repro_runtime_heap_alloc_bytes", "bytes of allocated heap objects", ms.HeapAlloc)
	gauge("repro_runtime_heap_sys_bytes", "bytes of heap obtained from the OS", ms.HeapSys)
	counter("repro_runtime_gc_cycles_total", "completed GC cycles", uint64(ms.NumGC))
	obs.WriteHeader(w, "repro_runtime_gc_pause_seconds_total", "counter", "cumulative GC stop-the-world pause")
	obs.WriteSample(w, "repro_runtime_gc_pause_seconds_total", "", float64(ms.PauseTotalNs)/1e9)

	// Per-graph store state, one family at a time (exposition requires a
	// family's series to be contiguous). Epoch advances once per applied
	// mutation.
	list := s.graphList()
	graphFamily := func(name, typ, help string, val func(sg *servedGraph) uint64, keep func(sg *servedGraph) bool) {
		obs.WriteHeader(w, name, typ, help)
		for _, sg := range list {
			if keep != nil && !keep(sg) {
				continue
			}
			obs.WriteUintSample(w, name, fmt.Sprintf("graph=%q", sg.id), val(sg))
		}
	}
	durable := func(sg *servedGraph) bool { return sg.st.Stats().Durable }
	graphFamily("repro_graph_vertices", "gauge", "vertex count",
		func(sg *servedGraph) uint64 { return uint64(sg.st.Stats().N) }, nil)
	graphFamily("repro_graph_edges", "gauge", "current edge count",
		func(sg *servedGraph) uint64 { return uint64(sg.st.Stats().M) }, nil)
	graphFamily("repro_graph_epoch", "counter", "mutations applied over the store's lifetime",
		func(sg *servedGraph) uint64 { return sg.st.Stats().Epoch }, nil)
	graphFamily("repro_graph_pending_deltas", "gauge", "delta-log length since the last compaction",
		func(sg *servedGraph) uint64 { return uint64(sg.st.Stats().PendingDeltas) }, nil)
	graphFamily("repro_graph_patched_vertices", "gauge", "vertices with overlaid adjacency",
		func(sg *servedGraph) uint64 { return uint64(sg.st.Stats().PatchedVertices) }, nil)
	graphFamily("repro_graph_adds_total", "counter", "applied edge insertions",
		func(sg *servedGraph) uint64 { return sg.st.Stats().Adds }, nil)
	graphFamily("repro_graph_dels_total", "counter", "applied edge deletions",
		func(sg *servedGraph) uint64 { return sg.st.Stats().Dels }, nil)
	graphFamily("repro_graph_compactions_total", "counter", "delta-overlay compactions",
		func(sg *servedGraph) uint64 { return sg.st.Stats().Compactions }, nil)
	graphFamily("repro_graph_delta_bytes", "gauge", "on-disk footprint of the pending delta log (0 for memory-only graphs)",
		func(sg *servedGraph) uint64 { return uint64(sg.st.Stats().DeltaBytes) }, nil)
	graphFamily("repro_graph_durable", "gauge", "1 when backed by WAL + checkpoint",
		func(sg *servedGraph) uint64 { return uint64(boolGauge(sg.st.Stats().Durable)) }, nil)
	graphFamily("repro_graph_checkpoint_epoch", "counter", "epoch of the on-disk checkpoint",
		func(sg *servedGraph) uint64 { return sg.st.Stats().CheckpointEpoch }, durable)
	graphFamily("repro_graph_wal_syncs_total", "counter", "WAL fsyncs over the store's lifetime",
		func(sg *servedGraph) uint64 { return sg.st.Stats().WALSyncs }, durable)

	// WAL latency for durable graphs whose store carries a metrics bundle.
	walFamily := func(name, help string, snap func(m *obs.WALMetrics) obs.HistSnapshot) {
		obs.WriteHeader(w, name, "histogram", help)
		for _, sg := range list {
			m := sg.st.WALMetrics()
			if m == nil {
				continue
			}
			s := snap(m)
			obs.WriteDurationSeries(w, name, fmt.Sprintf("graph=%q", sg.id), &s)
		}
	}
	walFamily("repro_wal_append_seconds", "WAL append latency (frame encode + buffered write)",
		func(m *obs.WALMetrics) obs.HistSnapshot { return m.Append.Snapshot() })
	walFamily("repro_wal_fsync_seconds", "WAL fsync latency",
		func(m *obs.WALMetrics) obs.HistSnapshot { return m.Fsync.Snapshot() })
	obs.WriteHeader(w, "repro_wal_batch_records", "gauge", "records per WAL group commit (quantiles)")
	for _, sg := range list {
		m := sg.st.WALMetrics()
		if m == nil {
			continue
		}
		snap := m.Batch.Snapshot()
		if snap.Count == 0 {
			continue
		}
		obs.WriteValueQuantileSeries(w, "repro_wal_batch_records", fmt.Sprintf("graph=%q", sg.id), &snap)
	}
}

func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}
